// E10 (Section 3.2 computation): "for any v up to 10,000, there is a prime
// power q <= v and values of c and w that satisfy (8) and (9)".
// Recomputes that claim exactly -- for every v <= 10,000, find a prime
// power q and feasible (c, w) -- and reports coverage per route (exact
// ring layout at v, Theorem 8/9 removal, stairway), plus the worst-case
// layout sizes encountered.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "algebra/numtheory.hpp"
#include "bench_util.hpp"
#include "design/ring_design.hpp"
#include "layout/feasibility.hpp"

int main() {
  using namespace pdl;
  bench::header("E10 / Section 3.2: stairway coverage up to v = 10,000",
                "every v <= 10,000 has a prime power q <= v with feasible "
                "(c, w) (conditions (8) and (9))");

  constexpr std::uint32_t kVMax = 10'000;
  const std::vector<std::uint32_t> ks = {3, 5, 8, 13};

  for (const std::uint32_t k : ks) {
    // Precompute which q support a ring layout with this k (paper: prime
    // powers; Theorem 2 generalizes to k <= M(q)).
    std::vector<bool> prime_power_ok(kVMax + k + 2, false);
    for (std::uint32_t q = k; q <= kVMax + k + 1; ++q) {
      prime_power_ok[q] = algebra::is_prime_power(q);
    }

    std::uint64_t exact = 0, removal = 0, stairway = 0, uncovered = 0;
    std::uint64_t worst_size = 0;
    std::uint32_t worst_v = 0;
    const auto max_i = static_cast<std::uint32_t>(std::sqrt(double(k)));

    std::vector<std::uint32_t> uncovered_vs;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 64) \
    reduction(+ : exact, removal, stairway, uncovered)
#endif
    for (std::uint32_t v = k + 1; v <= kVMax; ++v) {
      if (prime_power_ok[v]) {
        ++exact;
        continue;
      }
      bool found = false;
      for (std::uint32_t i = 1; i <= max_i && !found; ++i) {
        if (prime_power_ok[v + i]) {
          ++removal;
          found = true;
        }
      }
      if (found) continue;
      std::uint64_t best = 0;
      for (std::uint32_t q = k; q < v; ++q) {
        if (!prime_power_ok[q]) continue;
        if (const auto size = layout::stairway_size(q, v, k)) {
          if (best == 0 || *size < best) best = *size;
        }
      }
      if (best > 0) {
        ++stairway;
#ifdef _OPENMP
#pragma omp critical
#endif
        {
          if (best > worst_size) {
            worst_size = best;
            worst_v = v;
          }
        }
      } else {
        ++uncovered;
#ifdef _OPENMP
#pragma omp critical
#endif
        uncovered_vs.push_back(v);
      }
    }

    std::printf("\nk = %u over v in [%u, %u]:\n", k, k + 1, kVMax);
    std::printf("  exact (v is a prime power):        %6llu\n",
                static_cast<unsigned long long>(exact));
    std::printf("  removal (prime power in (v,v+%u]):  %6llu\n", max_i,
                static_cast<unsigned long long>(removal));
    std::printf("  stairway ((8)&(9) feasible):       %6llu\n",
                static_cast<unsigned long long>(stairway));
    std::printf("  uncovered:                         %6llu   %s\n",
                static_cast<unsigned long long>(uncovered),
                bench::okbad(uncovered == 0));
    if (!uncovered_vs.empty()) {
      std::sort(uncovered_vs.begin(), uncovered_vs.end());
      std::printf("  first uncovered v:                 %u\n",
                  uncovered_vs.front());
    }
    if (worst_v != 0) {
      std::printf("  largest min stairway size: %llu units at v = %u\n",
                  static_cast<unsigned long long>(worst_size), worst_v);
    }
  }

  std::printf("\nresult: the paper's coverage claim is confirmed when "
              "uncovered = 0 for every k above\n");
  return 0;
}
