// Kill-9-during-RMW crash recovery: the two-process harness behind the
// FileBackend parity journal's acceptance claim.  A child process
// (--workload) builds a file-backed, integrity-enabled store and hammers
// it with single-unit writes -- each one a read-modify-write whose
// 1 data + m parity (+ checksum) in-place writes ride one write-ahead
// journal record -- until the driver script SIGKILLs it at an arbitrary
// instant.  A second invocation (--recover) reopens the same directory:
// FileBackend::open replays complete journal records and discards torn
// ones, StripeStore::create re-adopts the checksum region, and the
// parity re-encode audit (verify_stripes) plus a full scrub sweep must
// find ZERO inconsistent stripe instances -- no half-applied RMW may
// survive a crash.
//
//   $ ./bench_crash_recovery --workload --dir DIR [--seed N] [--cache]
//   $ ./bench_crash_recovery --recover  --dir DIR [--seed N] [--cache]
//
// --cache runs the workload leg through the StripeCache's parity-delta
// batching path with deliberately aggressive fold knobs (tiny dirty
// budget, zero flush interval, writes skewed onto a hot span), so the
// SIGKILL routinely lands inside a multi-unit fold batch rather than a
// single RMW.  Folds ride the same journaled batch protocol, so the
// recovery leg is unchanged: replay must still leave zero inconsistent
// instances.
//
// --recover emits one crash_recovery JSON record; its
// "recovered_consistent" field is what scripts/crash-recovery-smoke.sh
// (and CI) greps for.  Exit status mirrors the field.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "api/array.hpp"
#include "bench_util.hpp"
#include "io/disk_backend.hpp"
#include "io/scrubber.hpp"
#include "io/stripe_store.hpp"
#include "io/workload_driver.hpp"

namespace {

using namespace pdl;

constexpr std::uint32_t kV = 17;
constexpr std::uint32_t kK = 5;
constexpr std::uint32_t kUnitBytes = 512;
constexpr std::uint32_t kIterations = 2;

/// The store shape both modes agree on: Reed-Solomon P+Q (the widest
/// shipped RMW -- three in-place writes per update, the largest torn
/// window) with per-unit checksums on.
Result<io::StripeStore> open_store(const std::string& dir,
                                   io::FileBackend** backend_out,
                                   bool cache) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // backend would, but the
  const std::string array_path = dir + "/array.pdl";  // array saves first
  auto loaded = api::Array::load(array_path);
  Result<api::Array> array =
      loaded.ok() ? std::move(loaded)
                  : api::Array::create({kV, kK}, {},
                                       {.codec = core::CodecKind::kReedSolomonPQ,
                                        .integrity = true});
  if (!array.ok()) return array.status();
  if (!loaded.ok())
    if (Status saved = array->save(array_path); !saved.ok()) return saved;

  auto backend = std::make_unique<io::FileBackend>(
      io::FileBackendOptions{.directory = dir});
  if (backend_out) *backend_out = backend.get();
  io::StripeStoreOptions options{.unit_bytes = kUnitBytes,
                                 .iterations = kIterations};
  if (cache) {
    // Everything is hot immediately and the dirty budget is tiny, so
    // nearly every write absorbs into a delta and folds land every few
    // ops -- the SIGKILL has a fold batch in flight most of the time.
    options.cache.enabled = true;
    options.cache.hot_threshold = 1;
    options.cache.max_dirty_instances = 8;
    options.cache.max_dirty_units = 2;
    options.cache.flush_interval_us = 0;
  }
  return io::StripeStore::create(std::move(array).value(), options,
                                 std::move(backend));
}

int run_workload(const std::string& dir, std::uint64_t seed, bool cache) {
  auto store = open_store(dir, nullptr, cache);
  if (!store.ok()) {
    std::fprintf(stderr, "workload store creation failed: %s\n",
                 store.status().to_string().c_str());
    return 1;
  }
  if (Status filled =
          io::fill_canonical(*store, 0, store->num_logical_units(), seed);
      !filled.ok()) {
    std::fprintf(stderr, "fill failed: %s\n", filled.to_string().c_str());
    return 1;
  }
  // The driver script waits for this marker before pulling the plug, so
  // the SIGKILL always lands inside the RMW loop below, not the fill.
  std::printf("workload ready\n");
  std::fflush(stdout);

  std::mt19937_64 rng(seed);
  std::vector<std::uint8_t> unit(kUnitBytes);
  // With the cache on, 3 of 4 writes land in a small hot span so the
  // same stripe instances keep re-absorbing and folding.
  const std::uint64_t total = store->num_logical_units();
  const std::uint64_t hot_span = std::max<std::uint64_t>(total / 16, 1);
  for (std::uint64_t op = 0;; ++op) {
    std::uint64_t logical = rng() % total;
    if (cache && (rng() & 3u) != 0) logical %= hot_span;
    io::canonical_fill(logical, seed ^ (op * 0x9E3779B97F4A7C15ull), unit);
    if (Status written = store->write(logical, unit); !written.ok()) {
      std::fprintf(stderr, "write failed at op %llu: %s\n",
                   static_cast<unsigned long long>(op),
                   written.to_string().c_str());
      return 1;
    }
  }
}

int run_recover(const std::string& dir, std::uint64_t /*seed*/, bool cache) {
  io::FileBackend* backend = nullptr;
  // Recovery always reopens with the cache OFF: the gate must judge the
  // replayed media alone, with no write-path batching in front of it.
  auto store = open_store(dir, &backend, /*cache=*/false);
  if (!store.ok()) {
    std::fprintf(stderr, "recovery reopen failed: %s\n",
                 store.status().to_string().c_str());
    return 1;
  }
  // open() already replayed/discarded whatever the crash left behind.
  const io::FileJournalStats journal = backend->journal_stats();

  // The acceptance gate: every stripe instance's parity must re-encode
  // byte-identically from its data, before any healing runs.
  const auto inconsistent = store->verify_stripes();
  // Then a full scrub pass (verifies every checksum, adopts/heals), and
  // a second audit to prove the store is stable, not just patched.
  const auto sweep = io::Scrubber(*store, {}).run_sweep();
  const auto after_scrub = store->verify_stripes();

  const bool consistent = inconsistent.ok() && inconsistent.value() == 0 &&
                          sweep.ok() && sweep.value().unhealable == 0 &&
                          after_scrub.ok() && after_scrub.value() == 0;
  const io::IntegrityStats stats = store->integrity_stats();

  std::printf("crash recovery: replayed %llu discarded %llu | inconsistent "
              "%llu -> %llu | scrub mismatches %llu unhealable %llu | %s\n",
              static_cast<unsigned long long>(journal.replayed),
              static_cast<unsigned long long>(journal.discarded),
              static_cast<unsigned long long>(
                  inconsistent.ok() ? inconsistent.value() : ~0ull),
              static_cast<unsigned long long>(
                  after_scrub.ok() ? after_scrub.value() : ~0ull),
              static_cast<unsigned long long>(
                  sweep.ok() ? sweep.value().mismatches : ~0ull),
              static_cast<unsigned long long>(
                  sweep.ok() ? sweep.value().unhealable : ~0ull),
              bench::okbad(consistent));

  bench::json_result("crash_recovery", 2)  // v2: added "cache"
      .field("journal_replayed", journal.replayed)
      .field("journal_discarded", journal.discarded)
      .field("inconsistent_instances",
             std::uint64_t{inconsistent.ok() ? inconsistent.value() : ~0ull})
      .field("inconsistent_after_scrub",
             std::uint64_t{after_scrub.ok() ? after_scrub.value() : ~0ull})
      .field("scrub_mismatches",
             std::uint64_t{sweep.ok() ? sweep.value().mismatches : ~0ull})
      .field("scrub_unhealable",
             std::uint64_t{sweep.ok() ? sweep.value().unhealable : ~0ull})
      .field("crc_verified", stats.verified)
      .field("crc_healed", stats.healed)
      .field("cache", cache)
      .field("recovered_consistent", consistent)
      .emit();
  return consistent ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool workload = false;
  bool recover = false;
  bool cache = false;
  std::string dir;
  std::uint64_t seed = 42;
  for (int arg = 1; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "--workload") == 0) {
      workload = true;
    } else if (std::strcmp(argv[arg], "--recover") == 0) {
      recover = true;
    } else if (std::strcmp(argv[arg], "--cache") == 0) {
      cache = true;
    } else if (std::strcmp(argv[arg], "--dir") == 0 && arg + 1 < argc) {
      dir = argv[++arg];
    } else if (std::strcmp(argv[arg], "--seed") == 0 && arg + 1 < argc) {
      seed = std::strtoull(argv[++arg], nullptr, 10);
    } else {
      std::fprintf(
          stderr,
          "usage: %s (--workload|--recover) --dir DIR [--seed N] [--cache]\n",
          argv[0]);
      return 1;
    }
  }
  if (workload == recover || dir.empty()) {
    std::fprintf(
        stderr,
        "usage: %s (--workload|--recover) --dir DIR [--seed N] [--cache]\n",
        argv[0]);
    return 1;
  }
  return workload ? run_workload(dir, seed, cache)
                  : run_recover(dir, seed, cache);
}
