// Byte-level data-path throughput: for every layout construction that
// applies at (v, k), in both sparing modes, over the selected storage
// backends, a multi-threaded workload hammers an io::StripeStore through
// three phases -- healthy, degraded (one disk failed, reads reconstructed
// from survivors), and rebuilding (serving concurrent with physical
// rebuild) -- and reports user MB/s per phase plus rebuild bandwidth.
// Every byte served is verified against the canonical content pattern,
// and the post-rebuild store is swept end-to-end, so the numbers come
// with a built-in correctness proof.
//
//   $ ./bench_datapath_throughput [--smoke] [--backend memory|file|both]
//         [--async] [--scheduler fifo|deadline|rebuild-deprioritizing]
//         [--codec xor|rs] [--integrity] [--cache] [v] [k] (defaults: 17 5)
//
// --smoke shrinks the configuration for CI (tiny units, few ops) and
// defaults to --backend both, so every CI run exercises the file-backed
// substrate; full runs default to --backend memory.  File-backed stores
// live under a per-process temp directory, removed as each run finishes.
//
// --async routes every store through io::AsyncDiskBackend (per-disk
// queues, coalescing, the --scheduler dispatch policy, io_uring when
// available) and appends two async-only experiments after the matrix:
// a queue-depth scaling curve (datapath_async_depth records, depths
// 1/2/4/8) and a fifo vs rebuild-deprioritizing foreground-latency
// comparison under concurrent rebuild (datapath_async_rebuild records).
//
// --codec rs runs every cell over the GF(2^8) Reed-Solomon P+Q codec;
// the degraded phase then fails TWO disks at once (double-degraded
// decodes on the serving path) and the rebuild repairs both.
//
// --integrity runs the whole matrix with per-unit CRC32C checksums on
// (measuring the verify tax) and appends a detect-and-heal experiment
// (datapath_integrity records): seeded single-bit rot -- persistent
// on-media flips plus a FaultInjectionBackend transient read flip -- on
// a healthy store must be detected on read, counted, healed in place,
// and the post-heal data region must checksum-identical to the
// pre-corruption oracle.  The record's "integrity_ok" field is the CI
// gate.
//
// --cache appends the hot-stripe-cache comparison (datapath_cache
// records): identical zipfian(0.99) write-heavy streams against a
// cache-enabled store and an uncached twin; hit rate and both MB/s are
// reported, and the "checksum_identical" field -- media images equal
// after flush_cache() -- plus clean parity audits gate CI.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/array.hpp"
#include "bench_util.hpp"
#include "engine/planner.hpp"
#include "io/async_backend.hpp"
#include "io/disk_backend.hpp"
#include "io/scrubber.hpp"
#include "io/stripe_store.hpp"
#include "io/workload_driver.hpp"

namespace {

using namespace pdl;

struct BenchConfig {
  std::uint32_t unit_bytes = 4096;
  std::uint32_t iterations = 4;
  std::uint32_t threads = 8;
  std::uint64_t ops_per_thread = 20000;
  double read_fraction = 0.7;
  std::uint32_t queue_depth = 8;
  bool async = false;
  std::string scheduler = "fifo";
  core::CodecKind codec = core::CodecKind::kXorParity;
  bool integrity = false;
};

/// The substrate one cell runs over: the selected base backend, wrapped
/// in the async engine when --async is on.
std::unique_ptr<io::DiskBackend> make_backend(
    const std::string& backend_kind, const std::filesystem::path& scratch_dir,
    const BenchConfig& config) {
  std::unique_ptr<io::DiskBackend> backend;
  if (backend_kind == "file")
    backend = io::make_file_backend({.directory = scratch_dir.string()});
  else
    backend = io::make_memory_backend();
  if (config.async)
    backend = io::make_async_backend(std::move(backend),
                                     {.scheduler = config.scheduler});
  return backend;
}

/// "sync" for a plain backend, else the async engine actually running
/// ("io_uring" / "thread-pool").
std::string engine_name(io::StripeStore& store) {
  if (auto* async = dynamic_cast<io::AsyncDiskBackend*>(&store.backend()))
    return std::string(async->engine());
  return "sync";
}

struct PhaseResult {
  double mbps = 0;
  io::WorkloadStats stats;
};

PhaseResult run_phase(io::StripeStore& store, const BenchConfig& config,
                      std::uint64_t seed, double read_fraction_override = -1,
                      std::uint32_t queue_depth_override = 0) {
  io::WorkloadDriver driver(
      store, {.num_threads = config.threads,
              .ops_per_thread = config.ops_per_thread,
              .read_fraction = read_fraction_override >= 0
                                   ? read_fraction_override
                                   : config.read_fraction,
              .pattern = io::AccessPattern::kUniform,
              .queue_depth = queue_depth_override > 0 ? queue_depth_override
                                                      : config.queue_depth,
              .seed = seed,
              .verify_reads = true});
  PhaseResult result;
  result.stats = driver.run();
  result.mbps = result.stats.mb_per_second();
  return result;
}

/// Full sweep of the logical address space; returns mismatching units.
std::uint64_t verify_all(io::StripeStore& store, std::uint64_t seed) {
  std::vector<std::uint8_t> unit(store.unit_bytes());
  std::vector<std::uint8_t> expected(store.unit_bytes());
  std::uint64_t mismatches = 0;
  for (std::uint64_t logical = 0; logical < store.num_logical_units();
       ++logical) {
    io::canonical_fill(logical, seed, expected);
    if (!store.read(logical, unit).ok() || unit != expected) ++mismatches;
  }
  return mismatches;
}

/// One full healthy -> degraded -> rebuilding -> verified run of one
/// (construction, sparing, backend) cell.  Returns false on any
/// verification or I/O failure.  The store (and its file descriptors, for
/// the file backend) is torn down before returning, so the caller may
/// remove `scratch_dir` immediately after.
bool run_one(const engine::LayoutPlan& plan, api::SparingMode sparing,
             const char* mode, const std::string& backend_kind,
             const std::filesystem::path& scratch_dir,
             const BenchConfig& config, std::uint64_t seed) {
  auto array = api::Array::create(plan.spec, {},
                                  {.sparing = sparing,
                                   .construction = plan.construction,
                                   .codec = config.codec,
                                   .integrity = config.integrity});
  if (!array.ok()) {
    std::fprintf(stderr, "skipping %s/%s: %s\n",
                 core::construction_name(plan.construction).c_str(), mode,
                 array.status().to_string().c_str());
    return true;  // inapplicable, not a failure
  }

  auto store = io::StripeStore::create(
      std::move(array).value(),
      {.unit_bytes = config.unit_bytes, .iterations = config.iterations},
      make_backend(backend_kind, scratch_dir, config));
  if (!store.ok()) {
    std::fprintf(stderr, "store creation failed: %s\n",
                 store.status().to_string().c_str());
    return false;
  }

  if (Status filled =
          io::fill_canonical(*store, 0, store->num_logical_units(), seed);
      !filled.ok()) {
    std::fprintf(stderr, "fill failed: %s\n", filled.to_string().c_str());
    return false;
  }
  const auto checksums_before = store->checksum_disks();

  const PhaseResult healthy = run_phase(*store, config, seed);

  // A multi-parity codec earns its keep under MORE failures: fail as
  // many disks as it tolerates, so the degraded phase serves through
  // worst-case (for RS: double-degraded) decodes.
  std::vector<layout::DiskId> failed = {0};
  if (store->array().num_parity_units() > 1)
    failed.push_back(plan.spec.num_disks / 2);
  for (const layout::DiskId disk : failed)
    if (!store->fail_disk(disk).ok()) return false;
  const PhaseResult degraded = run_phase(*store, config, seed);

  // Rebuilding phase: a rebuilder thread drains the repair plan in small
  // batches while the workload keeps serving.
  for (const layout::DiskId disk : failed)
    if (!store->replace_disk(disk).ok()) return false;
  const auto rebuild_start = std::chrono::steady_clock::now();
  std::uint64_t stripes_rebuilt = 0;
  double rebuild_seconds = 0;
  std::thread rebuilder([&] {
    for (;;) {
      const auto applied = store->rebuild_some(4);
      if (!applied.ok() || *applied == 0) break;
      stripes_rebuilt += *applied;
    }
    rebuild_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - rebuild_start)
                          .count();
  });
  const PhaseResult rebuilding = run_phase(*store, config, seed);
  rebuilder.join();
  // The workload may outlast the rebuild (or vice versa); finish any
  // remainder so verification sees a fully repaired store.
  const auto outcome = store->rebuild();
  if (!outcome.ok()) return false;
  stripes_rebuilt += outcome->applied;

  const std::uint64_t mismatches = verify_all(*store, seed);
  const auto checksums_after = store->checksum_disks();
  bool disk_identical = checksums_before.ok() && checksums_after.ok();
  if (disk_identical)
    for (const layout::DiskId disk : failed)
      disk_identical = disk_identical &&
                       (*checksums_after)[disk] == (*checksums_before)[disk];
  const std::uint64_t verify_failures = healthy.stats.verify_failures +
                                        degraded.stats.verify_failures +
                                        rebuilding.stats.verify_failures;
  const bool verified =
      mismatches == 0 && verify_failures == 0 && store->array().healthy() &&
      (sparing == api::SparingMode::kNone ? disk_identical : true);

  const double rebuild_mbps =
      rebuild_seconds > 0
          ? static_cast<double>(stripes_rebuilt) * config.iterations *
                config.unit_bytes / 1e6 / rebuild_seconds
          : 0.0;

  std::printf(
      "%-14s %-11s %-6s %-3s healthy %8.1f MB/s | degraded %8.1f MB/s | "
      "rebuilding %8.1f MB/s | rebuild %7.1f MB/s | %s\n",
      core::construction_name(plan.construction).c_str(), mode,
      backend_kind.c_str(),
      std::string(core::codec_kind_name(config.codec)).c_str(), healthy.mbps,
      degraded.mbps, rebuilding.mbps, rebuild_mbps, bench::okbad(verified));

  // schema_version 6: added the "integrity" field (PR 9; v5 added write
  // p50/p99 latency in PR 8; v4 codec / failed_disks in PR 7; v3 the
  // async engine fields in PR 6; v2 "backend" in PR 5).
  bench::json_result("datapath_throughput", /*schema_version=*/6)
      .field("construction", core::construction_name(plan.construction))
      .field("sparing", mode)
      .field("backend", backend_kind)
      .field("codec", std::string(core::codec_kind_name(config.codec)))
      .field("integrity", config.integrity)
      .field("failed_disks", static_cast<std::uint64_t>(failed.size()))
      .field("async", config.async)
      .field("engine", engine_name(*store))
      .field("scheduler", config.async ? config.scheduler : "none")
      .field("queue_depth", static_cast<std::uint64_t>(config.queue_depth))
      .field("achieved_depth", healthy.stats.achieved_depth())
      .field("read_p99_us", static_cast<std::uint64_t>(
                                healthy.stats.read_latency_quantile_us(0.99)))
      .field("write_p50_us", static_cast<std::uint64_t>(
                                 healthy.stats.write_latency_quantile_us(0.50)))
      .field("write_p99_us", static_cast<std::uint64_t>(
                                 healthy.stats.write_latency_quantile_us(0.99)))
      .field("v", static_cast<std::uint64_t>(plan.spec.num_disks))
      .field("k", static_cast<std::uint64_t>(plan.spec.stripe_size))
      .field("units_per_disk", static_cast<std::uint64_t>(plan.units_per_disk))
      .field("unit_bytes", static_cast<std::uint64_t>(config.unit_bytes))
      .field("iterations", static_cast<std::uint64_t>(config.iterations))
      .field("threads", static_cast<std::uint64_t>(config.threads))
      .field("ops_per_thread", config.ops_per_thread)
      .field("read_fraction", config.read_fraction)
      .field("healthy_mbps", healthy.mbps)
      .field("degraded_mbps", degraded.mbps)
      .field("rebuilding_mbps", rebuilding.mbps)
      .field("rebuild_mbps", rebuild_mbps)
      .field("degraded_reads",
             degraded.stats.degraded_reads + rebuilding.stats.degraded_reads)
      .field("stripes_rebuilt", stripes_rebuilt)
      .field("verify_failures", verify_failures)
      .field("post_rebuild_mismatches", mismatches)
      .field("failed_disks_checksum_identical", disk_identical)
      .field("verified", verified)
      .emit();
  return verified;
}

/// Queue-depth scaling curve: one async store per backend kind, a pure-
/// read uniform workload at depths 1/2/4/8 (each thread's batch goes out
/// as ONE read_batch submission, so the configured depth is real
/// in-flight parallelism).  Deeper queues give the engine more to
/// coalesce and more cross-disk fan-out per submission, so MB/s should
/// rise with depth -- the curve is the PR's acceptance evidence.
bool run_depth_sweep(const engine::LayoutPlan& plan,
                     const std::string& backend_kind,
                     const std::filesystem::path& scratch_dir,
                     const BenchConfig& config, std::uint64_t seed) {
  auto array = api::Array::create(plan.spec, {},
                                  {.construction = plan.construction});
  if (!array.ok()) return true;
  auto store = io::StripeStore::create(
      std::move(array).value(),
      {.unit_bytes = config.unit_bytes, .iterations = config.iterations},
      make_backend(backend_kind, scratch_dir, config));
  if (!store.ok()) return false;
  if (!io::fill_canonical(*store, 0, store->num_logical_units(), seed).ok())
    return false;

  const std::string engine = engine_name(*store);
  bool ok = true;
  for (const std::uint32_t depth : {1u, 2u, 4u, 8u}) {
    const PhaseResult phase =
        run_phase(*store, config, seed, /*read_fraction=*/1.0, depth);
    const bool verified =
        phase.stats.errors == 0 && phase.stats.verify_failures == 0;
    ok = ok && verified;
    std::printf(
        "async depth %-11s qd %2u  %8.1f MB/s  achieved %4.1f  "
        "p99 %6u us  %s\n",
        backend_kind.c_str(), depth, phase.mbps,
        phase.stats.achieved_depth(),
        phase.stats.read_latency_quantile_us(0.99), bench::okbad(verified));
    bench::json_result("datapath_async_depth")
        .field("backend", backend_kind)
        .field("engine", engine)
        .field("scheduler", config.scheduler)
        .field("queue_depth", static_cast<std::uint64_t>(depth))
        .field("achieved_depth", phase.stats.achieved_depth())
        .field("mbps", phase.mbps)
        .field("read_p99_us", static_cast<std::uint64_t>(
                                  phase.stats.read_latency_quantile_us(0.99)))
        .field("verified", verified)
        .emit();
  }
  return ok;
}

/// Foreground latency under concurrent rebuild, fifo vs
/// rebuild-deprioritizing: same store shape, same pure-read foreground
/// workload, a rebuilder thread draining the repair plan -- only the
/// per-disk dispatch policy differs.  The deprioritizing policy holds
/// rebuild waves behind pending foreground requests (up to its bounded
/// delay), so foreground p99 should drop relative to fifo.
bool run_scheduler_compare(const engine::LayoutPlan& plan,
                           const std::string& backend_kind,
                           const std::filesystem::path& scratch_root,
                           const BenchConfig& base_config,
                           std::uint64_t seed) {
  bool ok = true;
  for (const char* scheduler : {"fifo", "rebuild-deprioritizing"}) {
    BenchConfig config = base_config;
    config.scheduler = scheduler;
    // A dispatch policy only matters when disks have a queue to reorder:
    // run the comparison with enough threads and depth to keep per-disk
    // queues nonempty (idle disks dispatch background immediately, and
    // fifo and rebuild-deprioritizing become indistinguishable), and
    // with enough ops that the p99 is sampled from sustained contention
    // rather than warm-up noise.
    config.threads = std::max<std::uint32_t>(base_config.threads * 4, 8);
    config.queue_depth = 16;
    config.ops_per_thread = base_config.ops_per_thread * 4;
    const std::filesystem::path scratch_dir =
        scratch_root / (std::string("sched_") + scheduler);
    auto array = api::Array::create(plan.spec, {},
                                    {.construction = plan.construction});
    if (!array.ok()) return true;
    auto store = io::StripeStore::create(
        std::move(array).value(),
        {.unit_bytes = config.unit_bytes, .iterations = config.iterations},
        make_backend(backend_kind, scratch_dir, config));
    if (!store.ok()) return false;
    if (!io::fill_canonical(*store, 0, store->num_logical_units(), seed).ok())
      return false;
    if (!store->fail_disk(0).ok() || !store->replace_disk(0).ok())
      return false;

    // The rebuilder keeps rebuild pressure on for the WHOLE foreground
    // phase: whenever the plan drains it re-fails and re-replaces the
    // same disk, so every foreground sample contends with rebuild I/O
    // (a one-shot rebuild finishes in the phase's first moments and the
    // remaining samples would measure nothing).
    std::atomic<bool> stop{false};
    std::uint64_t stripes_rebuilt = 0;
    std::thread rebuilder([&] {
      for (;;) {
        const auto applied = store->rebuild_some(4);
        if (!applied.ok()) break;
        stripes_rebuilt += *applied;
        if (*applied == 0) {
          if (stop.load(std::memory_order_relaxed)) break;
          if (!store->fail_disk(0).ok() || !store->replace_disk(0).ok())
            break;
        }
      }
    });
    const PhaseResult rebuilding =
        run_phase(*store, config, seed, /*read_fraction=*/1.0);
    stop.store(true, std::memory_order_relaxed);
    rebuilder.join();
    if (!store->rebuild().ok()) return false;

    const bool verified =
        rebuilding.stats.errors == 0 && rebuilding.stats.verify_failures == 0;
    ok = ok && verified;
    std::printf(
        "async rebuild %-22s %8.1f MB/s  p50 %6u us  p99 %6u us  %s\n",
        scheduler, rebuilding.mbps,
        rebuilding.stats.read_latency_quantile_us(0.50),
        rebuilding.stats.read_latency_quantile_us(0.99),
        bench::okbad(verified));
    bench::json_result("datapath_async_rebuild")
        .field("backend", backend_kind)
        .field("scheduler", scheduler)
        .field("mbps", rebuilding.mbps)
        .field("read_p50_us",
               static_cast<std::uint64_t>(
                   rebuilding.stats.read_latency_quantile_us(0.50)))
        .field("read_p99_us",
               static_cast<std::uint64_t>(
                   rebuilding.stats.read_latency_quantile_us(0.99)))
        .field("stripes_rebuilt", stripes_rebuilt)
        .field("verified", verified)
        .emit();
    std::error_code ec;
    std::filesystem::remove_all(scratch_dir, ec);
  }
  return ok;
}

/// The --integrity acceptance experiment: seeded single-bit rot on a
/// HEALTHY store must be detected on read, counted, healed in place,
/// and leave the data region checksum-identical to the pre-corruption
/// oracle.  Two rot flavours are seeded: persistent on-media flips
/// (written behind the store's back -- the heal path must rewrite the
/// unit) and one FaultInjectionBackend transient read flip (the
/// heal-and-retry path must re-serve correct bytes).  A Scrubber sweep
/// and verify_stripes() then prove the store is fully consistent.
bool run_integrity_smoke(const engine::LayoutPlan& plan,
                         const std::string& backend_kind,
                         const std::filesystem::path& scratch_dir,
                         const BenchConfig& config, std::uint64_t seed) {
  auto array =
      api::Array::create(plan.spec, {},
                         {.construction = plan.construction,
                          .codec = config.codec,
                          .integrity = true});
  if (!array.ok()) return true;  // inapplicable layout, not a failure

  // The fault decorator hides the substrate's memory views, so every
  // unit crosses the streamed read path where rot can be injected.
  std::unique_ptr<io::DiskBackend> base =
      backend_kind == "file"
          ? io::make_file_backend({.directory = scratch_dir.string()})
          : io::make_memory_backend();
  auto fault = std::make_unique<io::FaultInjectionBackend>(
      std::move(base), io::FaultInjectionOptions{.seed = seed});
  io::FaultInjectionBackend* fault_ptr = fault.get();
  std::unique_ptr<io::DiskBackend> backend = std::move(fault);
  if (config.async)
    backend = io::make_async_backend(std::move(backend),
                                     {.scheduler = config.scheduler});

  auto store = io::StripeStore::create(
      std::move(array).value(),
      {.unit_bytes = config.unit_bytes, .iterations = config.iterations},
      std::move(backend));
  if (!store.ok()) {
    std::fprintf(stderr, "integrity store creation failed: %s\n",
                 store.status().to_string().c_str());
    return false;
  }
  if (!io::fill_canonical(*store, 0, store->num_logical_units(), seed).ok())
    return false;
  const auto oracle = store->checksum_disks();
  if (!oracle.ok()) return false;

  // Persistent rot: flip one bit in three spread-out units, behind the
  // store's back (the CRC cache still claims the original bytes).
  const std::uint64_t stride =
      std::max<std::uint64_t>(1, store->num_logical_units() / 3);
  std::uint64_t corrupted = 0;
  for (std::uint64_t logical = 0; logical < store->num_logical_units() &&
                                  corrupted < 3;
       logical += stride, ++corrupted) {
    const api::Physical p = store->array().map(logical);
    const std::uint64_t byte =
        static_cast<std::uint64_t>(p.offset) * config.unit_bytes;
    std::uint8_t media = 0;
    if (!store->backend().read(p.disk, byte, {&media, 1}).ok()) return false;
    media ^= 0x10;
    if (!store->backend().write(p.disk, byte, {&media, 1}).ok()) return false;
  }
  // Transient rot: one scripted read-buffer flip on the very next
  // backend read op.
  const std::uint64_t next_read[] = {fault_ptr->stats().reads + 1};
  fault_ptr->arm_rot_on_reads(next_read);

  // Every byte must still come back canonical: the read path detects
  // each mismatch, reconstructs through the codec, retries.
  const std::uint64_t mismatched_units = verify_all(*store, seed);

  // A paced scrub sweep and the parity re-encode audit close the loop:
  // nothing left to heal, no instance inconsistent.
  io::Scrubber scrubber(*store, {.instances_per_pass = 8});
  const auto sweep = scrubber.run_sweep();
  const auto inconsistent = store->verify_stripes();
  const auto after = store->checksum_disks();
  const io::IntegrityStats stats = store->integrity_stats();

  bool checksum_identical = after.ok();
  if (checksum_identical)
    for (std::size_t d = 0; d < oracle->size(); ++d)
      checksum_identical =
          checksum_identical && (*after)[d] == (*oracle)[d];

  const bool integrity_ok =
      mismatched_units == 0 && checksum_identical && sweep.ok() &&
      sweep.value().unhealable == 0 && inconsistent.ok() &&
      inconsistent.value() == 0 && stats.mismatches >= corrupted &&
      stats.healed >= corrupted && stats.verified > 0;

  std::printf(
      "integrity %-6s rotted %llu units  detected %llu  healed %llu  "
      "verified %llu  %s\n",
      backend_kind.c_str(), static_cast<unsigned long long>(corrupted + 1),
      static_cast<unsigned long long>(stats.mismatches),
      static_cast<unsigned long long>(stats.healed),
      static_cast<unsigned long long>(stats.verified),
      bench::okbad(integrity_ok));

  bench::json_result("datapath_integrity")
      .field("backend", backend_kind)
      .field("codec", std::string(core::codec_kind_name(config.codec)))
      .field("async", config.async)
      .field("units_corrupted", corrupted)
      .field("crc_verified", stats.verified)
      .field("crc_mismatches", stats.mismatches)
      .field("crc_healed", stats.healed)
      .field("crc_unhealable", stats.unhealable)
      .field("crc_adopted", stats.adopted)
      .field("instances_scrubbed", stats.scrubbed)
      .field("inconsistent_instances",
             inconsistent.ok() ? inconsistent.value()
                               : std::numeric_limits<std::uint64_t>::max())
      .field("post_heal_checksum_identical", checksum_identical)
      .field("integrity_ok", integrity_ok)
      .emit();
  return integrity_ok;
}

/// The --cache acceptance experiment: identical zipfian(0.99)
/// write-heavy streams against a cache-enabled store and an uncached
/// twin over the same substrate.  Reports the hit rate, the absorb/fold
/// counters, and both throughputs; acceptance is behavioural (hits,
/// absorbs, and folds all happened) plus the delta-fold oracle: after
/// flush_cache() both media images are checksum-identical -- the folded
/// parity is byte-for-byte what per-op RMW wrote on the twin -- and
/// both parity audits come back clean.  cached_faster is reported but
/// NOT gated (shared CI runners make relative throughput flaky).
bool run_cache_compare(const engine::LayoutPlan& plan,
                       const std::string& backend_kind,
                       const std::filesystem::path& scratch_dir,
                       const BenchConfig& config, std::uint64_t seed) {
  const auto make_store = [&](bool cached) {
    auto array = api::Array::create(plan.spec, {},
                                    {.construction = plan.construction,
                                     .codec = config.codec,
                                     .integrity = config.integrity});
    if (!array.ok()) return pdl::Result<io::StripeStore>(array.status());
    io::StripeStoreOptions options{.unit_bytes = config.unit_bytes,
                                   .iterations = config.iterations};
    if (cached) {
      options.cache.enabled = true;
      options.cache.hot_threshold = 4;
    }
    return io::StripeStore::create(
        std::move(array).value(), options,
        make_backend(backend_kind, scratch_dir / (cached ? "c" : "u"),
                     config));
  };
  auto cached = make_store(true);
  auto uncached = make_store(false);
  if (!cached.ok() || !uncached.ok()) {
    std::fprintf(stderr, "cache store creation failed: %s\n",
                 (cached.ok() ? uncached : cached).status()
                     .to_string()
                     .c_str());
    return false;
  }
  const std::uint64_t n = cached->num_logical_units();
  if (!io::fill_canonical(*cached, 0, n, seed).ok() ||
      !io::fill_canonical(*uncached, 0, n, seed).ok())
    return false;
  if (!cached->flush_cache().ok()) return false;

  // Write-heavy zipfian(0.99): the workload the cache layer exists for.
  // Every read is verified against the canonical pattern in flight.
  const io::WorkloadOptions workload{.num_threads = config.threads,
                                     .ops_per_thread = config.ops_per_thread,
                                     .read_fraction = 0.3,
                                     .pattern = io::AccessPattern::kZipfian,
                                     .zipf_theta = 0.99,
                                     .queue_depth = config.queue_depth,
                                     .seed = seed,
                                     .verify_reads = true};
  io::WorkloadStats cached_stats = io::WorkloadDriver(*cached, workload).run();
  io::WorkloadStats uncached_stats =
      io::WorkloadDriver(*uncached, workload).run();

  // Fold everything, then compare the media images and audit parity.
  if (!cached->flush_cache().ok()) return false;
  const io::HotnessStats hotness = cached->hotness_stats();
  const auto sums_c = cached->checksum_disks();
  const auto sums_u = uncached->checksum_disks();
  bool checksum_identical =
      sums_c.ok() && sums_u.ok() && sums_c->size() == sums_u->size();
  if (checksum_identical)
    for (std::size_t d = 0; d < sums_c->size(); ++d)
      checksum_identical = checksum_identical && (*sums_c)[d] == (*sums_u)[d];
  const auto sweep_c = cached->verify_stripes();
  const auto sweep_u = uncached->verify_stripes();

  const bool cache_ok =
      cached_stats.verify_failures == 0 &&
      uncached_stats.verify_failures == 0 && cached_stats.errors == 0 &&
      uncached_stats.errors == 0 && hotness.hit_rate() > 0.0 &&
      hotness.absorbed_writes > 0 && hotness.folds > 0 &&
      hotness.dirty_instances == 0 && checksum_identical && sweep_c.ok() &&
      sweep_c.value() == 0 && sweep_u.ok() && sweep_u.value() == 0;
  const bool cached_faster =
      cached_stats.mb_per_second() > uncached_stats.mb_per_second();

  std::printf(
      "cache  %-6s hit-rate %5.1f%%  absorbed %llu  folds %llu  "
      "cached %8.1f MB/s  uncached %8.1f MB/s  %s\n",
      backend_kind.c_str(), hotness.hit_rate() * 100.0,
      static_cast<unsigned long long>(hotness.absorbed_writes),
      static_cast<unsigned long long>(hotness.folds),
      cached_stats.mb_per_second(), uncached_stats.mb_per_second(),
      bench::okbad(cache_ok));

  bench::json_result("datapath_cache")
      .field("backend", backend_kind)
      .field("codec", std::string(core::codec_kind_name(config.codec)))
      .field("async", config.async)
      .field("integrity", config.integrity)
      .field("zipf_theta", 0.99)
      .field("read_fraction", 0.3)
      .field("cache_hit_rate", hotness.hit_rate())
      .field("cache_hits", hotness.hits)
      .field("cache_misses", hotness.misses)
      .field("cache_fills", hotness.fills)
      .field("cache_evictions", hotness.evictions)
      .field("absorbed_writes", hotness.absorbed_writes)
      .field("folds", hotness.folds)
      .field("folded_units", hotness.folded_units)
      .field("hotness_decays", hotness.decays)
      .field("cached_mb_per_s", cached_stats.mb_per_second())
      .field("uncached_mb_per_s", uncached_stats.mb_per_second())
      .field("cached_write_p99_us",
             static_cast<std::uint64_t>(
                 cached_stats.write_latency_quantile_us(0.99)))
      .field("uncached_write_p99_us",
             static_cast<std::uint64_t>(
                 uncached_stats.write_latency_quantile_us(0.99)))
      .field("cached_faster", cached_faster)
      .field("checksum_identical", checksum_identical)
      .field("cache_ok", cache_ok)
      .emit();
  return cache_ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool async = false;
  bool integrity = false;
  bool cache = false;
  std::string scheduler = "fifo";
  std::string backend_arg;
  std::string codec_arg = "xor";
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    if (std::strcmp(argv[arg], "--smoke") == 0) {
      smoke = true;
      ++arg;
    } else if (std::strcmp(argv[arg], "--async") == 0) {
      async = true;
      ++arg;
    } else if (std::strcmp(argv[arg], "--scheduler") == 0 && arg + 1 < argc) {
      scheduler = argv[arg + 1];
      arg += 2;
    } else if (std::strcmp(argv[arg], "--backend") == 0 && arg + 1 < argc) {
      backend_arg = argv[arg + 1];
      arg += 2;
    } else if (std::strcmp(argv[arg], "--codec") == 0 && arg + 1 < argc) {
      codec_arg = argv[arg + 1];
      arg += 2;
    } else if (std::strcmp(argv[arg], "--integrity") == 0) {
      integrity = true;
      ++arg;
    } else if (std::strcmp(argv[arg], "--cache") == 0) {
      cache = true;
      ++arg;
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--smoke] [--backend memory|file|both] [--async] "
          "[--scheduler fifo|deadline|rebuild-deprioritizing] "
          "[--codec xor|rs] [--integrity] [--cache] [v] [k]\n",
          argv[0]);
      return 1;
    }
  }
  {
    const auto names = io::io_scheduler_names();
    if (std::find(names.begin(), names.end(), scheduler) == names.end()) {
      std::fprintf(stderr, "unknown --scheduler %s\n", scheduler.c_str());
      return 1;
    }
  }
  const std::uint32_t v = arg < argc ? std::atoi(argv[arg++]) : 17;
  const std::uint32_t k = arg < argc ? std::atoi(argv[arg++]) : 5;
  if (v < 3 || k < 3 || k > v) {
    std::fprintf(stderr, "need 3 <= v and 3 <= k <= v\n");
    return 1;
  }
  if (backend_arg.empty()) backend_arg = smoke ? "both" : "memory";
  std::vector<std::string> backends;
  if (backend_arg == "both") {
    backends = {"memory", "file"};
  } else if (backend_arg == "memory" || backend_arg == "file") {
    backends = {backend_arg};
  } else {
    std::fprintf(stderr, "unknown --backend %s (memory|file|both)\n",
                 backend_arg.c_str());
    return 1;
  }

  BenchConfig config;
  if (smoke) {
    config = {.unit_bytes = 512,
              .iterations = 2,
              .threads = 2,
              .ops_per_thread = 1500,
              .read_fraction = 0.7};
  }
  config.async = async;
  config.scheduler = scheduler;
  config.integrity = integrity;
  if (codec_arg == "rs") {
    config.codec = core::CodecKind::kReedSolomonPQ;
  } else if (codec_arg != "xor") {
    std::fprintf(stderr, "unknown --codec %s (xor|rs)\n", codec_arg.c_str());
    return 1;
  }
  const std::uint64_t seed = 42;

  const std::filesystem::path scratch_root =
      std::filesystem::temp_directory_path() /
      ("pdl_datapath_bench_" +
       std::to_string(static_cast<unsigned long>(::getpid())));

  bench::header("byte-level data-path throughput",
                "declustered parity spreads reconstruction load, so "
                "degraded service and rebuild both run faster (Sections "
                "1-5, measured on real bytes, per storage backend)");

  const auto& planner = engine::ConstructionPlanner::default_planner();
  const auto plans = planner.rank_plans({v, k}, {});
  bool any_failed = false;

  for (const auto& plan : plans) {
    if (plan.units_per_disk > 2000) continue;  // skip lambda blowups
    for (const api::SparingMode sparing :
         {api::SparingMode::kNone, api::SparingMode::kDistributed}) {
      const char* mode =
          sparing == api::SparingMode::kDistributed ? "distributed" : "none";
      for (const std::string& backend_kind : backends) {
        const std::filesystem::path scratch_dir =
            scratch_root /
            (core::construction_name(plan.construction) + "_" + mode);
        if (!run_one(plan, sparing, mode, backend_kind, scratch_dir, config,
                     seed))
          any_failed = true;
        std::error_code ec;
        std::filesystem::remove_all(scratch_dir, ec);
      }
    }
  }
  // The opt-in experiments: one representative layout (the planner's
  // top pick that actually constructs), per backend kind.
  if ((async || integrity || cache) && !plans.empty()) {
    const engine::LayoutPlan* pick = nullptr;
    for (const auto& plan : plans) {
      if (plan.units_per_disk > 2000) continue;
      if (api::Array::create(plan.spec, {},
                             {.construction = plan.construction})
              .ok()) {
        pick = &plan;
        break;
      }
    }
    if (pick != nullptr && integrity) {
      bench::rule();
      for (const std::string& backend_kind : backends) {
        const std::filesystem::path scratch_dir =
            scratch_root / ("integrity_" + backend_kind);
        if (!run_integrity_smoke(*pick, backend_kind, scratch_dir, config,
                                 seed))
          any_failed = true;
        std::error_code ec;
        std::filesystem::remove_all(scratch_dir, ec);
      }
    }
    if (pick != nullptr && cache) {
      bench::rule();
      for (const std::string& backend_kind : backends) {
        const std::filesystem::path scratch_dir =
            scratch_root / ("cache_" + backend_kind);
        if (!run_cache_compare(*pick, backend_kind, scratch_dir, config,
                               seed))
          any_failed = true;
        std::error_code ec;
        std::filesystem::remove_all(scratch_dir, ec);
      }
    }
    if (pick != nullptr && async) {
      bench::rule();
      for (const std::string& backend_kind : backends) {
        const std::filesystem::path scratch_dir =
            scratch_root / ("async_depth_" + backend_kind);
        if (!run_depth_sweep(*pick, backend_kind, scratch_dir, config, seed))
          any_failed = true;
        std::error_code ec;
        std::filesystem::remove_all(scratch_dir, ec);
        if (!run_scheduler_compare(*pick, backend_kind, scratch_root, config,
                                   seed))
          any_failed = true;
      }
    }
  }

  std::error_code ec;
  std::filesystem::remove_all(scratch_root, ec);

  if (any_failed) {
    std::fprintf(stderr, "datapath throughput: verification FAILED\n");
    return 1;
  }
  return 0;
}
