// E17 (Section 5: distributed sparing): spare units distributed per
// stripe by the generalized Theorem 14 assignment, so rebuild writes
// decluster like rebuild reads.  Compares rebuild time and write
// distribution against a dedicated spare (sequential-streaming and
// random-access models).

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/pdl.hpp"

int main() {
  using namespace pdl;
  bench::header("E17 / Section 5: distributed sparing",
                "distributing spare space like parity declusters rebuild "
                "writes; no dedicated spare, no write bottleneck");

  std::printf("%-10s %-4s %-12s %-14s %-14s %-12s\n", "layout", "k",
              "spares/disk", "rebuild(ms)", "dedicated(ms)", "writes max");
  bench::rule();

  for (const std::uint32_t k : {3u, 4u, 5u, 8u}) {
    // The spared ring layout comes through the api::Array front door,
    // pinned to the ring construction for the sweep.
    const auto array = api::Array::create(
        {.num_disks = 17, .stripe_size = k}, {},
        {.sparing = api::SparingMode::kDistributed,
         .construction = core::Construction::kRingLayout});
    if (!array.ok()) {
      std::fprintf(stderr, "ring v=17 k=%u: %s\n", k,
                   array.status().to_string().c_str());
      return 1;
    }
    const layout::SparedLayout& spared = *array->spared_layout();
    const auto spares = spared.spares_per_disk();
    const auto [lo, hi] =
        std::minmax_element(spares.begin(), spares.end());

    const sim::ArraySimulator simulator(
        spared.layout, sim::ArrayConfig{.disk = {}, .rebuild_depth = 4,
                                        .iterations = 1});
    const auto distributed =
        simulator.run_rebuild_distributed({}, 0, spared.spare_pos);
    const auto dedicated = simulator.run_rebuild({}, 0);
    const auto writes = layout::distributed_rebuild_writes(spared, 0);
    const auto max_writes = *std::max_element(writes.begin(), writes.end());

    std::printf("%-10s %-4u %u..%-9u %-14.0f %-14.0f %-12u\n", "ring v=17",
                k, *lo, *hi, distributed.rebuild_ms, dedicated.rebuild_ms,
                max_writes);
  }

  std::printf("\nspare balance: per-disk spare counts within 1 (generalized "
              "Thm 14); rebuild writes spread over all survivors instead of "
              "one spare disk.\n");
  std::printf("note: the dedicated-spare column models a streaming spare "
              "(transfer-only writes), its best case; distributed sparing "
              "still competes while removing the dedicated disk "
              "entirely.\n");
  return 0;
}
