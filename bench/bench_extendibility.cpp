// E18 (Section 5 open problems): extendible layouts and the Stockmeyer
// conditions.  Measures (a) the data fraction that must migrate when
// adding disks under each construction, and (b) Conditions 5/6 (large-
// write contiguity and window parallelism) across layout families.

#include <cstdio>

#include "bench_util.hpp"
#include "core/pdl.hpp"

int main() {
  using namespace pdl;
  bench::header("E18 / Section 5: extendibility and Conditions 5-6",
                "adding disks 'with minimal reconfiguration' is open; we "
                "measure the migration cost of each construction");

  std::printf("migration fraction when growing the array by one disk:\n\n");
  std::printf("%-34s %-12s %-10s\n", "transition", "moved/total", "fraction");
  bench::rule();

  struct Case {
    const char* name;
    layout::Layout from, to;
  };
  const std::vector<Case> cases = {
      {"RAID5 5 -> 6 disks", layout::raid5_layout(5, 12),
       layout::raid5_layout(6, 12)},
      {"ring 8 -> removal 9-1 (q=9)", layout::ring_based_layout(8, 3),
       layout::removal_layout(9, 3, 1)},
      {"stairway q=8: v=10 -> v=11", layout::stairway_layout(8, 10, 3),
       layout::stairway_layout(8, 11, 3)},
      {"stairway q=16: v=20 -> v=21", layout::stairway_layout(16, 20, 4),
       layout::stairway_layout(16, 21, 4)},
  };
  for (const auto& c : cases) {
    const auto plan = layout::plan_migration(c.from, c.to);
    std::printf("%-34s %8llu/%-8llu %-10.3f\n", c.name,
                static_cast<unsigned long long>(plan.moved_units),
                static_cast<unsigned long long>(plan.compared_units),
                plan.moved_fraction());
  }

  std::printf("\nConditions 5 (large-write contiguity) and 6 (window "
              "parallelism):\n\n");
  std::printf("%-26s %-10s %-12s %-12s\n", "layout", "Cond 5",
              "min par.", "mean par.");
  bench::rule();
  struct L {
    const char* name;
    layout::Layout layout;
  };
  const std::vector<L> layouts = {
      {"RAID5 v=9", layout::raid5_layout(9, 9)},
      {"ring v=9 k=3", layout::ring_based_layout(9, 3)},
      {"ring v=17 k=5", layout::ring_based_layout(17, 5)},
      {"stairway 8->10 k=3", layout::stairway_layout(8, 10, 3)},
      {"removal 17-1 k=4", layout::removal_layout(17, 4, 1)},
  };
  for (const auto& l : layouts) {
    std::printf("%-26s %-10.2f %-12u %-12.2f\n", l.name,
                layout::large_write_contiguity(l.layout),
                layout::min_window_parallelism(l.layout),
                layout::mean_window_parallelism(l.layout));
  }
  std::printf("\nexpected shape: stripe-major numbering keeps Condition 5 "
              "at 1.00 everywhere; declustered layouts trade some window "
              "parallelism (Stockmeyer [15]); migration cost is high for "
              "all constructions -- quantifying the open problem, not "
              "solving it.\n");
  return 0;
}
