// E12 (Condition 4 + the paper's headline thesis): how many (v, k) pairs
// admit layouts within the ~10,000-units-per-disk budget under each
// construction route.  The paper's point: complete designs die early,
// known BIBDs are sparse, and the new constructions (reduced/subfield
// designs, single-copy flow balancing, ring layouts, removal, stairway)
// "greatly increase the number of feasible layouts".

#include <cstdio>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "layout/feasibility.hpp"

int main() {
  using namespace pdl;
  bench::header("E12 / feasible (v, k) pairs under the 10,000-unit budget",
                "the new constructions greatly increase the number of "
                "feasible parity-declustered layouts");

  constexpr std::uint64_t kBudget = layout::kDefaultUnitBudget;
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> v_ranges = {
      {10, 50}, {51, 150}, {151, 400}, {401, 1000}};
  const std::vector<std::uint32_t> ks = {3, 5, 8, 11};

  std::printf("counting (v, k) pairs with k in {3, 5, 8, 11}, layout size "
              "<= %llu units/disk:\n\n",
              static_cast<unsigned long long>(kBudget));
  std::printf("%-12s %-10s %-10s %-10s %-10s %-10s %-10s %s\n", "v range",
              "complete", "BIBD+HG", "BIBD+flow", "ring", "removal",
              "stairway", "any");
  bench::rule();

  for (const auto& [lo, hi] : v_ranges) {
    std::uint64_t complete = 0, hg = 0, flow = 0, ring = 0, removal = 0,
                  stairway = 0, any = 0, total = 0;
    for (std::uint32_t v = lo; v <= hi; ++v) {
      for (const std::uint32_t k : ks) {
        if (k >= v) continue;
        ++total;
        const auto feas = layout::summarize_feasibility(v, k).value();
        const auto within = [&](const std::optional<std::uint64_t>& s) {
          return s && *s <= kBudget;
        };
        complete += within(feas.complete_hg);
        hg += within(feas.bibd_hg);
        flow += within(feas.bibd_flow);
        ring += within(feas.ring_layout);
        removal += within(feas.removal);
        stairway += within(feas.stairway);
        any += within(feas.complete_hg) || within(feas.bibd_hg) ||
               within(feas.bibd_flow) || within(feas.ring_layout) ||
               within(feas.removal) || within(feas.stairway);
      }
    }
    std::printf("%4u-%-7u %-10llu %-10llu %-10llu %-10llu %-10llu %-10llu "
                "%llu/%llu\n",
                lo, hi, static_cast<unsigned long long>(complete),
                static_cast<unsigned long long>(hg),
                static_cast<unsigned long long>(flow),
                static_cast<unsigned long long>(ring),
                static_cast<unsigned long long>(removal),
                static_cast<unsigned long long>(stairway),
                static_cast<unsigned long long>(any),
                static_cast<unsigned long long>(total));
  }

  std::printf("\nexpected shape: 'complete' collapses to 0 as v grows; "
              "'BIBD+flow' extends the exact range k-fold beyond 'BIBD+HG'; "
              "removal+stairway keep coverage near-total (paper Secs 1, 3, "
              "4)\n");
  return 0;
}
