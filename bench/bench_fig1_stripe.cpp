// E1 (Figure 1): data and parity units for one parity stripe.
// Demonstrates the XOR parity code end to end: encode v-1 data units, fail
// each unit in turn, reconstruct, and verify bit-exactness; reports codec
// throughput as a sanity number.

#include <chrono>
#include <cstdio>
#include <random>

#include "bench_util.hpp"
#include "core/xor_codec.hpp"

int main() {
  using namespace pdl;
  bench::header("E1 / Figure 1: one parity stripe",
                "parity = XOR of the v-1 data units; any one lost unit is "
                "reconstructible from the survivors");

  constexpr std::size_t kUnits = 4;       // v-1 data units
  constexpr std::size_t kUnitBytes = 1 << 20;
  std::mt19937_64 rng(42);
  std::vector<std::vector<std::uint8_t>> data(kUnits);
  for (auto& unit : data) {
    unit.resize(kUnitBytes);
    for (auto& byte : unit) byte = static_cast<std::uint8_t>(rng());
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto parity = core::xor_parity(data);
  const auto t1 = std::chrono::steady_clock::now();
  const double encode_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  std::printf("stripe: %zu data units + 1 parity unit, %zu KiB each\n",
              kUnits, kUnitBytes / 1024);
  std::printf("encode: %.2f ms (%.2f GiB/s)\n", encode_ms,
              kUnits * kUnitBytes / encode_ms / 1e6 / 1.024 / 1.024 / 1.024);

  std::printf("\n%-12s %-14s %s\n", "lost unit", "reconstructed", "status");
  bench::rule();
  bool all_ok = true;
  for (std::size_t lost = 0; lost <= kUnits; ++lost) {
    std::vector<std::vector<std::uint8_t>> survivors;
    for (std::size_t i = 0; i < kUnits; ++i) {
      if (i != lost) survivors.push_back(data[i]);
    }
    if (lost != kUnits) survivors.push_back(parity);
    const auto rebuilt = core::xor_reconstruct(survivors);
    const auto& expect = lost == kUnits ? parity : data[lost];
    const bool ok = rebuilt == expect;
    all_ok = all_ok && ok;
    std::printf("%-12s %-14s %s\n",
                lost == kUnits ? "parity" : ("data" + std::to_string(lost)).c_str(),
                "bit-exact", bench::okbad(ok));
  }
  std::printf("\nresult: %s\n", all_ok ? "all units recoverable (matches Fig 1)"
                                       : "RECONSTRUCTION FAILED");
  return all_ok ? 0 : 1;
}
