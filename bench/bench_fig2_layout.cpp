// E2 (Figure 2): the parity-declustered layout for v = 4, k = 3.
// Regenerates the figure as an ASCII grid and reports the quality metrics
// the paper reads off it (parity overhead 1/3, reconstruction workload 2/3,
// versus RAID5's 1/4 and 1).

#include <cstdio>

#include "bench_util.hpp"
#include "design/complete_design.hpp"
#include "layout/bibd_layout.hpp"
#include "layout/metrics.hpp"
#include "layout/raid.hpp"

int main() {
  using namespace pdl;
  bench::header("E2 / Figure 2: parity-declustered layout, v=4, k=3",
                "4 stripes of 3 units over 4 disks; parity overhead 1/3; "
                "reconstruction reads 2/3 of each survivor (vs 1 for RAID5)");

  const auto design = design::make_complete_design(4, 3);
  const auto layout = layout::flow_balanced_layout(design, 1);
  std::printf("%s\n", layout::render_layout(layout).c_str());

  const auto m = layout::compute_metrics(layout);
  const auto raid5 = layout::compute_metrics(layout::raid5_layout(4, 4));

  std::printf("%-28s %-16s %-16s\n", "metric", "declustered k=3", "RAID5 k=4");
  bench::rule();
  std::printf("%-28s %-16u %-16u\n", "units per disk", m.units_per_disk,
              raid5.units_per_disk);
  std::printf("%-28s %-16.4f %-16.4f\n", "parity overhead (max)",
              m.max_parity_overhead, raid5.max_parity_overhead);
  std::printf("%-28s %-16.4f %-16.4f\n", "recon workload (max)",
              m.max_recon_workload, raid5.max_recon_workload);
  std::printf("\npaper-vs-measured: overhead %s (expect 0.3333), workload %s "
              "(expect 0.6667)\n",
              bench::okbad(m.max_parity_overhead > 0.33 &&
                           m.max_parity_overhead < 0.34),
              bench::okbad(m.max_recon_workload > 0.66 &&
                           m.max_recon_workload < 0.67));
  return 0;
}
