// E3 (Figure 3): the Holland-Gibson BIBD-based layout for v = 4, k = 3 --
// the k-copy parity rotation that Section 4's flow method improves on.
// Regenerates the figure and contrasts its size (k*r) with the flow-
// balanced single copy (r) at identical balance.

#include <cstdio>

#include "bench_util.hpp"
#include "design/complete_design.hpp"
#include "layout/bibd_layout.hpp"
#include "layout/metrics.hpp"

int main() {
  using namespace pdl;
  bench::header("E3 / Figure 3: Holland-Gibson BIBD layout, v=4, k=3",
                "the BIBD replicated k times with rotated parity: size k*r "
                "= 9 with perfectly balanced parity");

  const auto design = design::make_complete_design(4, 3);
  const auto hg = layout::holland_gibson_layout(design);
  std::printf("%s\n", layout::render_layout(hg).c_str());

  const auto m_hg = layout::compute_metrics(hg);
  const auto m_flow =
      layout::compute_metrics(layout::flow_balanced_layout(design, 1));

  std::printf("%-30s %-14s %-14s\n", "metric", "HG k copies",
              "flow 1 copy");
  bench::rule();
  std::printf("%-30s %-14u %-14u\n", "units per disk (size)",
              m_hg.units_per_disk, m_flow.units_per_disk);
  std::printf("%-30s %u..%-11u %u..%-11u\n", "parity units per disk",
              m_hg.min_parity_units, m_hg.max_parity_units,
              m_flow.min_parity_units, m_flow.max_parity_units);
  std::printf("%-30s %-14.4f %-14.4f\n", "recon workload (max)",
              m_hg.max_recon_workload, m_flow.max_recon_workload);
  std::printf("\npaper-vs-measured: HG size = k*r = 9: %s; flow method gets "
              "the same balance at size r = 3: %s\n",
              bench::okbad(m_hg.units_per_disk == 9),
              bench::okbad(m_flow.units_per_disk == 3 &&
                           m_flow.min_parity_units ==
                               m_flow.max_parity_units));
  return 0;
}
