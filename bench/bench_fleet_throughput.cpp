// Fleet-tier throughput: one heterogeneous fleet (XOR next to
// Reed-Solomon shards, different geometries) served through the
// fleet::Fleet front door by a zipfian workload spanning every shard,
// measured through three phases:
//
//   * healthy          -- no failures, the routing baseline;
//   * rebuilding/fifo  -- one shard rebuilding at an UNGOVERNED rate
//                         (fifo policy, unlimited budget) under
//                         sustained pressure (the rebuilder re-fails
//                         the disk whenever the plan drains, so every
//                         foreground sample contends with rebuild);
//   * rebuilding/foreground-protecting -- the same scenario, but the
//                         RebuildGovernor throttles rebuild to a small
//                         floor whenever foreground traffic is hot.
//
// The fleet-governor trade-off is the headline: the protecting policy
// must buy MORE foreground MB/s than fifo under the same rebuild
// pressure, while the rebuild still completes (the floor is strictly
// positive, so repair is never starved).  A fleet_governor_tradeoff
// JSON record carries the comparison; CI greps tradeoff_ok.  A final
// fair-share experiment rebuilds TWO shards against one rate-limited
// budget and reports the per-shard grant split.
//
//   $ ./bench_fleet_throughput [--smoke]
//
// Every byte served is verified against the canonical content pattern
// and every phase ends with a full-space sweep, so the numbers come
// with a built-in correctness proof.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/array.hpp"
#include "bench_util.hpp"
#include "fleet/fleet.hpp"
#include "fleet/governor.hpp"
#include "fleet/workload.hpp"
#include "io/workload_driver.hpp"

namespace {

using namespace pdl;

struct BenchConfig {
  std::uint32_t block_bytes = 4096;
  std::uint32_t iterations = 4;
  std::uint32_t threads = 8;
  std::uint64_t ops_per_thread = 60000;
  double read_fraction = 0.7;
  double protected_bytes_per_sec = 4.0 * 1024 * 1024;
  std::uint64_t burst_bytes = 256 * 1024;
};

fleet::ShardSpec make_shard(std::uint32_t v, std::uint32_t k,
                            core::CodecKind codec,
                            std::uint32_t iterations) {
  auto array = api::Array::create({.num_disks = v, .stripe_size = k}, {},
                                  {.codec = codec});
  if (!array.ok()) {
    std::fprintf(stderr, "array creation failed: %s\n",
                 array.status().to_string().c_str());
    std::exit(1);
  }
  return fleet::ShardSpec{.array = std::move(array).value(),
                          .iterations = iterations};
}

/// The bench's heterogeneous fleet: two XOR shards around one
/// Reed-Solomon P+Q shard, all behind one block space.
Result<fleet::Fleet> make_fleet(const BenchConfig& config,
                                fleet::GovernorPolicy policy) {
  std::vector<fleet::ShardSpec> shards;
  shards.push_back(make_shard(9, 4, core::CodecKind::kXorParity,
                              config.iterations));
  shards.push_back(make_shard(17, 5, core::CodecKind::kReedSolomonPQ,
                              std::max(1u, config.iterations / 2)));
  shards.push_back(make_shard(9, 4, core::CodecKind::kXorParity,
                              config.iterations));
  fleet::FleetOptions options{.block_bytes = config.block_bytes};
  options.governor.policy = policy;
  options.governor.rebuild_bytes_per_sec = 0;  // unlimited steady-state
  options.governor.protected_bytes_per_sec = config.protected_bytes_per_sec;
  // A small burst keeps the protecting floor binding from the first
  // pass -- a deep bucket would let a whole rebuild cycle through
  // ungoverned before the rate ever mattered.
  options.governor.burst_bytes = config.burst_bytes;
  return fleet::Fleet::create(std::move(shards), options);
}

struct PhaseResult {
  double mbps = 0;
  io::WorkloadStats stats;
};

PhaseResult run_phase(fleet::Fleet& fleet, const BenchConfig& config,
                      std::uint64_t seed) {
  fleet::WorkloadDriver driver(
      fleet, {.num_threads = config.threads,
              .ops_per_thread = config.ops_per_thread,
              .read_fraction = config.read_fraction,
              .pattern = io::AccessPattern::kZipfian,
              .seed = seed,
              .verify_reads = true});
  PhaseResult result;
  result.stats = driver.run();
  result.mbps = result.stats.mb_per_second();
  return result;
}

/// Full sweep of the fleet block space; returns mismatching blocks.
std::uint64_t verify_all(fleet::Fleet& fleet, std::uint64_t seed) {
  std::vector<std::uint8_t> block(fleet.block_bytes());
  std::vector<std::uint8_t> expected(fleet.block_bytes());
  std::uint64_t mismatches = 0;
  for (std::uint64_t b = 0; b < fleet.num_blocks(); ++b) {
    io::canonical_fill(b, seed, expected);
    if (!fleet.read(b, block).ok() || block != expected) ++mismatches;
  }
  return mismatches;
}

struct PolicyResult {
  double fg_mbps = 0;
  std::uint32_t read_p99_us = 0;
  std::uint32_t write_p99_us = 0;
  double rebuild_mbps = 0;
  std::uint64_t stripes_rebuilt = 0;
  bool completed = false;  ///< rebuild quiescent + fleet healthy at the end
  bool verified = false;
};

/// One rebuilding-under-fire phase under `policy`: shard
/// kRebuildShard's disk fails, a rebuilder thread keeps governed
/// rebuild pressure on for the whole foreground phase (re-failing the
/// disk whenever the plan drains), and the foreground workload is
/// measured against it.
constexpr std::uint32_t kRebuildShard = 0;
constexpr layout::DiskId kRebuildDisk = 2;

bool run_policy(fleet::GovernorPolicy policy, const BenchConfig& config,
                std::uint64_t seed, PolicyResult& out,
                fleet::GovernorStats* governor_stats = nullptr) {
  auto created = make_fleet(config, policy);
  if (!created.ok()) {
    std::fprintf(stderr, "fleet creation failed: %s\n",
                 created.status().to_string().c_str());
    return false;
  }
  fleet::Fleet& fleet = created.value();
  if (!fleet::fill_canonical(fleet, 0, fleet.num_blocks(), seed).ok())
    return false;

  if (!fleet.fail_disk(kRebuildShard, kRebuildDisk).ok() ||
      !fleet.replace_disk(kRebuildShard, kRebuildDisk).ok())
    return false;

  // Sustained rebuild pressure: whenever the shard's plan drains, the
  // rebuilder re-fails and re-replaces the same disk -- every
  // foreground sample contends with rebuild work (as governed by the
  // policy), not just the first moments of the phase.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> stripes{0};
  const auto phase_start = std::chrono::steady_clock::now();
  std::thread rebuilder([&] {
    for (;;) {
      const auto applied = fleet.rebuild_some(kRebuildShard, 4);
      if (!applied.ok()) break;
      stripes.fetch_add(*applied, std::memory_order_relaxed);
      if (*applied == 0) {
        if (stop.load(std::memory_order_relaxed)) break;
        if (!fleet.fail_disk(kRebuildShard, kRebuildDisk).ok() ||
            !fleet.replace_disk(kRebuildShard, kRebuildDisk).ok())
          break;
      }
    }
  });
  const PhaseResult foreground = run_phase(fleet, config, seed);
  const double phase_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    phase_start)
          .count();
  stop.store(true, std::memory_order_relaxed);
  rebuilder.join();

  // Finish the in-flight repair so the sweep sees a healed fleet --
  // the governor's floor guarantees this terminates under any policy.
  const auto outcome = fleet.rebuild(kRebuildShard);
  if (!outcome.ok()) return false;

  const std::uint64_t mismatches = verify_all(fleet, seed);
  out.fg_mbps = foreground.mbps;
  out.read_p99_us = foreground.stats.read_latency_quantile_us(0.99);
  out.write_p99_us = foreground.stats.write_latency_quantile_us(0.99);
  out.stripes_rebuilt = stripes.load(std::memory_order_relaxed);
  out.rebuild_mbps =
      phase_seconds > 0
          ? static_cast<double>(out.stripes_rebuilt) *
                fleet.shard(kRebuildShard).iterations() *
                config.block_bytes / 1e6 / phase_seconds
          : 0.0;
  out.completed = fleet.healthy();
  out.verified = mismatches == 0 && foreground.stats.verify_failures == 0 &&
                 foreground.stats.errors == 0 && out.completed;
  if (governor_stats != nullptr)
    *governor_stats = fleet.governor().shard_stats(kRebuildShard);

  std::printf(
      "rebuilding %-22s fg %8.1f MB/s  read p99 %6u us  write p99 %6u us  "
      "rebuild %7.1f MB/s  %s\n",
      std::string(fleet::governor_policy_name(policy)).c_str(), out.fg_mbps,
      out.read_p99_us, out.write_p99_us, out.rebuild_mbps,
      bench::okbad(out.verified));
  bench::json_result("fleet_throughput", /*schema_version=*/1)
      .field("phase", "rebuilding")
      .field("policy", std::string(fleet::governor_policy_name(policy)))
      .field("shards", static_cast<std::uint64_t>(fleet.num_shards()))
      .field("blocks", fleet.num_blocks())
      .field("block_bytes", static_cast<std::uint64_t>(fleet.block_bytes()))
      .field("threads", static_cast<std::uint64_t>(config.threads))
      .field("ops_per_thread", config.ops_per_thread)
      .field("fg_mbps", out.fg_mbps)
      .field("read_p99_us", static_cast<std::uint64_t>(out.read_p99_us))
      .field("write_p99_us", static_cast<std::uint64_t>(out.write_p99_us))
      .field("rebuild_mbps", out.rebuild_mbps)
      .field("stripes_rebuilt", out.stripes_rebuilt)
      .field("rebuild_completed", out.completed)
      .field("verified", out.verified)
      .emit();
  return true;
}

/// Fair-share: TWO shards rebuilding against one rate-limited budget;
/// the governor's grant split should track both shards rather than
/// letting the first-come shard monopolize.  Reported, not CI-gated
/// (the split ratio is timing-dependent).
bool run_fairshare(const BenchConfig& config, std::uint64_t seed) {
  auto created = make_fleet(config, fleet::GovernorPolicy::kFairShare);
  if (!created.ok()) return false;
  fleet::Fleet& fleet = created.value();
  if (!fleet::fill_canonical(fleet, 0, fleet.num_blocks(), seed).ok())
    return false;

  for (const std::uint32_t shard : {0u, 2u})
    if (!fleet.fail_disk(shard, 1).ok() || !fleet.replace_disk(shard, 1).ok())
      return false;

  std::vector<std::thread> rebuilders;
  std::atomic<bool> failed{false};
  for (const std::uint32_t shard : {0u, 2u})
    rebuilders.emplace_back([&fleet, &failed, shard] {
      if (!fleet.rebuild(shard).ok()) failed.store(true);
    });
  const PhaseResult foreground = run_phase(fleet, config, seed);
  for (std::thread& t : rebuilders) t.join();

  const bool verified = !failed.load() && fleet.healthy() &&
                        foreground.stats.verify_failures == 0 &&
                        verify_all(fleet, seed) == 0;
  const fleet::GovernorStats s0 = fleet.governor().shard_stats(0);
  const fleet::GovernorStats s2 = fleet.governor().shard_stats(2);
  std::printf(
      "fair-share  shard0 %8.1f MB granted  shard2 %8.1f MB granted  %s\n",
      static_cast<double>(s0.granted_bytes - s0.refunded_bytes) / 1e6,
      static_cast<double>(s2.granted_bytes - s2.refunded_bytes) / 1e6,
      bench::okbad(verified));
  bench::json_result("fleet_fairshare", /*schema_version=*/1)
      .field("shard0_granted_bytes", s0.granted_bytes - s0.refunded_bytes)
      .field("shard2_granted_bytes", s2.granted_bytes - s2.refunded_bytes)
      .field("fg_mbps", foreground.mbps)
      .field("verified", verified)
      .emit();
  return verified;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int arg = 1; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 1;
    }
  }

  BenchConfig config;
  if (smoke) {
    config = {.block_bytes = 512,
              .iterations = 2,
              .threads = 2,
              .ops_per_thread = 60000,
              .read_fraction = 0.7,
              // A tiny floor makes the policies maximally distinct in
              // the short smoke window; full runs use a realistic one.
              .protected_bytes_per_sec = 64.0 * 1024,
              .burst_bytes = 16 * 1024};
  }
  const std::uint64_t seed = 42;

  bench::header(
      "fleet throughput & the rebuild-bandwidth governor",
      "many declustered arrays behind one front door: a shard map "
      "routes one block space over heterogeneous arrays, and a "
      "fleet-wide governor decides how rebuild bandwidth trades "
      "against foreground service");

  // Healthy baseline (no failures, fifo fleet).
  bool all_ok = true;
  {
    auto created = make_fleet(config, fleet::GovernorPolicy::kFifo);
    if (!created.ok()) {
      std::fprintf(stderr, "fleet creation failed: %s\n",
                   created.status().to_string().c_str());
      return 1;
    }
    fleet::Fleet& fleet = created.value();
    if (!fleet::fill_canonical(fleet, 0, fleet.num_blocks(), seed).ok())
      return 1;
    const PhaseResult healthy = run_phase(fleet, config, seed);
    const bool verified = healthy.stats.verify_failures == 0 &&
                          healthy.stats.errors == 0 &&
                          verify_all(fleet, seed) == 0;
    all_ok = all_ok && verified;
    std::printf(
        "healthy     %-22s fg %8.1f MB/s  read p99 %6u us  write p99 %6u us"
        "  %s\n",
        "(3 shards, no failures)", healthy.mbps,
        healthy.stats.read_latency_quantile_us(0.99),
        healthy.stats.write_latency_quantile_us(0.99),
        bench::okbad(verified));
    bench::json_result("fleet_throughput", /*schema_version=*/1)
        .field("phase", "healthy")
        .field("policy", "none")
        .field("shards", static_cast<std::uint64_t>(fleet.num_shards()))
        .field("blocks", fleet.num_blocks())
        .field("block_bytes", static_cast<std::uint64_t>(fleet.block_bytes()))
        .field("threads", static_cast<std::uint64_t>(config.threads))
        .field("ops_per_thread", config.ops_per_thread)
        .field("fg_mbps", healthy.mbps)
        .field("read_p99_us",
               static_cast<std::uint64_t>(
                   healthy.stats.read_latency_quantile_us(0.99)))
        .field("write_p99_us",
               static_cast<std::uint64_t>(
                   healthy.stats.write_latency_quantile_us(0.99)))
        .field("rebuild_mbps", 0.0)
        .field("stripes_rebuilt", std::uint64_t{0})
        .field("rebuild_completed", true)
        .field("verified", verified)
        .emit();
  }

  // The governor trade-off: identical rebuild pressure, fifo vs
  // foreground-protecting.
  PolicyResult fifo, protecting;
  fleet::GovernorStats protecting_gov;
  if (!run_policy(fleet::GovernorPolicy::kFifo, config, seed, fifo))
    return 1;
  if (!run_policy(fleet::GovernorPolicy::kForegroundProtecting, config, seed,
                  protecting, &protecting_gov))
    return 1;
  all_ok = all_ok && fifo.verified && protecting.verified;

  const bool tradeoff_ok = protecting.fg_mbps > fifo.fg_mbps &&
                           fifo.completed && protecting.completed;
  std::printf(
      "tradeoff    protecting fg %8.1f MB/s vs fifo fg %8.1f MB/s "
      "(%+5.1f%%)  throttled grants %llu  %s\n",
      protecting.fg_mbps, fifo.fg_mbps,
      fifo.fg_mbps > 0
          ? (protecting.fg_mbps / fifo.fg_mbps - 1.0) * 100.0
          : 0.0,
      static_cast<unsigned long long>(protecting_gov.throttled_grants),
      bench::okbad(tradeoff_ok));
  bench::json_result("fleet_governor_tradeoff", /*schema_version=*/1)
      .field("fifo_fg_mbps", fifo.fg_mbps)
      .field("protecting_fg_mbps", protecting.fg_mbps)
      .field("fifo_read_p99_us", static_cast<std::uint64_t>(fifo.read_p99_us))
      .field("protecting_read_p99_us",
             static_cast<std::uint64_t>(protecting.read_p99_us))
      .field("fifo_rebuild_mbps", fifo.rebuild_mbps)
      .field("protecting_rebuild_mbps", protecting.rebuild_mbps)
      .field("protecting_throttled_grants", protecting_gov.throttled_grants)
      .field("protecting_wait_us", protecting_gov.wait_us)
      .field("rebuilds_completed", fifo.completed && protecting.completed)
      .field("tradeoff_ok", tradeoff_ok)
      .emit();
  all_ok = all_ok && tradeoff_ok;

  if (!run_fairshare(config, seed)) all_ok = false;

  if (!all_ok) {
    std::fprintf(stderr, "fleet throughput: verification FAILED\n");
    return 1;
  }
  return 0;
}
