// E15 (Section 4 method cost): the parity-assignment flow solve must be
// cheap enough to run at layout-construction time.  Benchmarks
// assign_parity_balanced on single copies of designs with growing b, and
// full layout constructions end to end.

#include <benchmark/benchmark.h>

#include "core/pdl.hpp"

namespace {

using namespace pdl;

std::vector<std::vector<std::uint32_t>> stripes_of(
    const design::BlockDesign& d) {
  return {d.blocks.begin(), d.blocks.end()};
}

void BM_ParityAssign(benchmark::State& state) {
  const auto v = static_cast<std::uint32_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  const auto design = design::build_best_design(v, k);
  const auto stripes = stripes_of(design);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flow::assign_parity_balanced(stripes, design.v));
  }
  state.counters["b"] = static_cast<double>(design.b());
}
BENCHMARK(BM_ParityAssign)
    ->Args({9, 3})
    ->Args({16, 4})
    ->Args({25, 5})
    ->Args({49, 7})
    ->Args({64, 8})
    ->Args({81, 9})
    ->Args({121, 11});

void BM_RingDesignConstruction(benchmark::State& state) {
  const auto v = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(design::make_ring_design(v, 5));
  }
}
BENCHMARK(BM_RingDesignConstruction)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

void BM_RingLayoutConstruction(benchmark::State& state) {
  const auto v = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout::ring_based_layout(v, 5));
  }
}
BENCHMARK(BM_RingLayoutConstruction)->Arg(16)->Arg(64)->Arg(128);

void BM_StairwayConstruction(benchmark::State& state) {
  // q -> q+3 keeps c moderate; construction is dominated by stripe emission.
  const auto q = static_cast<std::uint32_t>(state.range(0));
  const auto rd = design::make_ring_design(q, 4);
  const auto plan = layout::plan_stairway(q, q + 3, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout::build_stairway_layout(rd, *plan));
  }
}
BENCHMARK(BM_StairwayConstruction)->Arg(16)->Arg(25)->Arg(49);

void BM_BuildLayoutEndToEnd(benchmark::State& state) {
  const auto v = static_cast<std::uint32_t>(state.range(0));
  const engine::ConstructionPlanner& planner =
      engine::ConstructionPlanner::default_planner();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        planner.build_best({.num_disks = v, .stripe_size = 5}));
  }
}
BENCHMARK(BM_BuildLayoutEndToEnd)->Arg(17)->Arg(50)->Arg(100);

void BM_BuildLayoutCached(benchmark::State& state) {
  // The LayoutCache turns repeated sweep points into one hash lookup.
  const auto v = static_cast<std::uint32_t>(state.range(0));
  engine::LayoutCache cache;
  for (auto _ : state) {
    auto result = cache.get({.num_disks = v, .stripe_size = 5});
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_BuildLayoutCached)->Arg(17)->Arg(50)->Arg(100);

}  // namespace
