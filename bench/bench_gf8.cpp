// GF(2^8) kernel throughput: the bit-sliced constant-multiply kernels
// behind the Reed-Solomon P+Q codec (core::gf8::mul_xor_into /
// mul_in_place, the Q-parity inner loops) versus the scalar table-lookup
// references they replaced (core::gf8::detail::*_scalar).  Two operations
// are measured per unit size:
//
//   * mul-xor  -- dst ^= c * src (the Q-parity delta fold of a
//                 read-modify-write, and each survivor's contribution to
//                 a double-erasure decode);
//   * mul      -- dst *= c in place (the Horner doubling pass of
//                 Q = sum alpha^i d_i, and the final inverse scaling of
//                 a decode).
//
// Every measured kernel's output is verified against the scalar result
// before timing counts, so the speedup comes with a correctness proof.
//
//   $ ./bench_gf8 [--smoke]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "core/gf8.hpp"

namespace {

using namespace pdl;
using Clock = std::chrono::steady_clock;

std::vector<std::uint8_t> random_bytes(std::size_t size,
                                       std::mt19937_64& rng) {
  std::vector<std::uint8_t> bytes(size);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
  return bytes;
}

/// Runs `op` until ~target_seconds elapsed; returns MB/s of payload.
template <typename Op>
double measure(double target_seconds, std::uint64_t bytes_per_op, Op&& op) {
  op();  // warm-up
  std::uint64_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  do {
    op();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < target_seconds);
  return static_cast<double>(iters * bytes_per_op) / 1e6 / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const double seconds = smoke ? 0.02 : 0.25;

  bench::header("gf(2^8) kernel throughput",
                "the Reed-Solomon Q parity multiplies every unit by a "
                "field constant; the vectorized kernels must beat the "
                "scalar table loops they replaced");

  std::mt19937_64 rng(0x6F8);
  bool all_verified = true;

  // alpha^7: a mid-table constant with a dense bit pattern (no shortcut
  // for the kernels, representative of decode coefficients).
  const std::uint8_t c = core::gf8::exp_alpha(7);

  for (const std::size_t size : {512u, 4096u, 65536u}) {
    // --------------------------------------------------------- mul-xor
    auto dst_vec = random_bytes(size, rng);
    auto dst_scalar = dst_vec;
    const auto src = random_bytes(size, rng);

    core::gf8::mul_xor_into(dst_vec, src, c);
    core::gf8::detail::mul_xor_into_scalar(dst_scalar, src, c);
    const bool mulxor_ok = dst_vec == dst_scalar;

    const double mulxor_scalar = measure(seconds, size, [&] {
      core::gf8::detail::mul_xor_into_scalar(dst_scalar, src, c);
    });
    const double mulxor_vector = measure(
        seconds, size, [&] { core::gf8::mul_xor_into(dst_vec, src, c); });

    // ---------------------------------------------------- mul in place
    // The timed loops above ran different iteration counts on the two
    // buffers; re-sync so this verification compares equal inputs.
    dst_scalar = dst_vec;
    core::gf8::mul_in_place(dst_vec, c);
    core::gf8::detail::mul_in_place_scalar(dst_scalar, c);
    const bool mul_ok = dst_vec == dst_scalar;

    const double mul_scalar = measure(seconds, size, [&] {
      core::gf8::detail::mul_in_place_scalar(dst_scalar, c);
    });
    const double mul_vector =
        measure(seconds, size, [&] { core::gf8::mul_in_place(dst_vec, c); });

    const bool verified = mulxor_ok && mul_ok;
    if (!verified) all_verified = false;

    std::printf(
        "%6zu B  mul-xor %8.0f -> %8.0f MB/s (%4.1fx) | mul %8.0f -> "
        "%8.0f MB/s (%4.1fx) | %s\n",
        size, mulxor_scalar, mulxor_vector, mulxor_vector / mulxor_scalar,
        mul_scalar, mul_vector, mul_vector / mul_scalar,
        bench::okbad(verified));

    bench::json_result("gf8_kernels", /*schema_version=*/1)
        .field("unit_bytes", static_cast<std::uint64_t>(size))
        .field("coefficient", static_cast<std::uint64_t>(c))
        .field("mulxor_scalar_mbps", mulxor_scalar)
        .field("mulxor_vector_mbps", mulxor_vector)
        .field("mulxor_speedup", mulxor_vector / mulxor_scalar)
        .field("mul_scalar_mbps", mul_scalar)
        .field("mul_vector_mbps", mul_vector)
        .field("mul_speedup", mul_vector / mul_scalar)
        .field("verified", verified)
        .emit();
  }

  if (!all_verified) {
    std::fprintf(stderr, "gf8 kernels: verification FAILED\n");
    return 1;
  }
  return 0;
}
