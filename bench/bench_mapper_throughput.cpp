// Mapper serving-path throughput: AddressMapper vs CompiledMapper on the
// same layouts.  Condition 4 promises "one table lookup plus a constant
// number of arithmetic operations"; this bench measures what each mapper
// actually delivers per lookup for
//
//   * single map()           (random logical -> physical)
//   * single parity_of()
//   * stripe_of()            (AddressMapper allocates; CompiledMapper
//                             writes into caller storage)
//   * batched map            (per-call loop vs CompiledMapper::map_batch)
//
// and emits one machine-readable "JSON {...}" line per measurement for the
// perf trajectory.

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "core/pdl.hpp"

namespace {

using namespace pdl;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kBatch = 4096;
constexpr std::size_t kLookups = 1 << 21;  // per timed repetition
constexpr int kRepetitions = 3;            // best-of

std::vector<std::uint64_t> random_logicals(std::uint64_t working_set,
                                           std::size_t count) {
  std::vector<std::uint64_t> logicals(count);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;  // splitmix64, fixed seed
  for (auto& l : logicals) {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    l = (z ^ (z >> 31)) % working_set;
  }
  return logicals;
}

/// Times fn() over kRepetitions and returns the best lookups/sec; the
/// checksum accumulation keeps the compiler honest.
template <typename Fn>
double best_rate(std::size_t lookups_per_rep, std::uint64_t& checksum,
                 Fn&& fn) {
  double best_sec = 1e300;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto start = Clock::now();
    checksum += fn();
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    best_sec = std::min(best_sec, elapsed.count());
  }
  return static_cast<double>(lookups_per_rep) / best_sec;
}

struct Case {
  std::string name;
  layout::Layout layout;
};

void run_case(const Case& c) {
  const layout::AddressMapper address(c.layout);
  const layout::CompiledMapper compiled(c.layout);
  const std::uint64_t working_set = 4 * compiled.data_units_per_iteration();
  const auto logicals = random_logicals(working_set, kLookups);
  std::uint64_t checksum = 0;

  const auto sum_physical = [](const auto& p) {
    return static_cast<std::uint64_t>(p.disk) + p.offset;
  };

  // --- single map ---------------------------------------------------------
  const double addr_map = best_rate(kLookups, checksum, [&] {
    std::uint64_t acc = 0;
    for (const std::uint64_t l : logicals) acc += sum_physical(address.map(l));
    return acc;
  });
  const double comp_map = best_rate(kLookups, checksum, [&] {
    std::uint64_t acc = 0;
    for (const std::uint64_t l : logicals)
      acc += sum_physical(compiled.map(l));
    return acc;
  });

  // --- single parity_of ---------------------------------------------------
  const double addr_parity = best_rate(kLookups, checksum, [&] {
    std::uint64_t acc = 0;
    for (const std::uint64_t l : logicals)
      acc += sum_physical(address.parity_of(l));
    return acc;
  });
  const double comp_parity = best_rate(kLookups, checksum, [&] {
    std::uint64_t acc = 0;
    for (const std::uint64_t l : logicals)
      acc += sum_physical(compiled.parity_of(l));
    return acc;
  });

  // --- stripe_of ----------------------------------------------------------
  const double addr_stripe = best_rate(kLookups, checksum, [&] {
    std::uint64_t acc = 0;
    for (const std::uint64_t l : logicals) {
      for (const auto& u : address.stripe_of(l)) acc += sum_physical(u);
    }
    return acc;
  });
  std::vector<layout::CompiledMapper::Physical> scratch(
      compiled.max_stripe_size());
  const double comp_stripe = best_rate(kLookups, checksum, [&] {
    std::uint64_t acc = 0;
    for (const std::uint64_t l : logicals) {
      const std::uint32_t n = compiled.stripe_of(l, scratch);
      for (std::uint32_t i = 0; i < n; ++i) acc += sum_physical(scratch[i]);
    }
    return acc;
  });

  // --- batched map --------------------------------------------------------
  // Baseline: the only batch an AddressMapper user can write -- a loop of
  // out-of-line map() calls filling an output buffer.
  std::vector<layout::CompiledMapper::Physical> out(kBatch);
  const double addr_batch = best_rate(kLookups, checksum, [&] {
    std::uint64_t acc = 0;
    for (std::size_t base = 0; base < logicals.size(); base += kBatch) {
      const std::size_t n = std::min(kBatch, logicals.size() - base);
      for (std::size_t i = 0; i < n; ++i)
        out[i] = address.map(logicals[base + i]);
      acc += sum_physical(out[n - 1]);
    }
    return acc;
  });
  const double comp_batch = best_rate(kLookups, checksum, [&] {
    std::uint64_t acc = 0;
    for (std::size_t base = 0; base < logicals.size(); base += kBatch) {
      const std::size_t n = std::min(kBatch, logicals.size() - base);
      compiled.map_batch(std::span(logicals).subspan(base, n),
                         std::span(out).first(n));
      acc += sum_physical(out[n - 1]);
    }
    return acc;
  });

  const auto row = [&](const char* op, double addr, double comp) {
    std::printf("%-28s %-10s %12.1f %12.1f %8.2fx\n", c.name.c_str(), op,
                addr / 1e6, comp / 1e6, comp / addr);
    pdl::bench::json_result("mapper_throughput")
        .field("layout", c.name)
        .field("op", op)
        .field("address_mapper_per_sec", addr)
        .field("compiled_mapper_per_sec", comp)
        .field("speedup", comp / addr)
        .field("table_bytes_address", address.table_bytes())
        .field("table_bytes_compiled", compiled.table_bytes())
        .emit();
  };
  row("map", addr_map, comp_map);
  row("parity_of", addr_parity, comp_parity);
  row("stripe_of", addr_stripe, comp_stripe);
  row("map_batch", addr_batch, comp_batch);
  std::printf("  (checksum %llu)\n",
              static_cast<unsigned long long>(checksum));
}

}  // namespace

int main() {
  pdl::bench::header(
      "mapper serving-path throughput",
      "Condition 4: one table lookup + constant arithmetic per access");
  std::printf("%-28s %-10s %12s %12s %9s\n", "layout", "op",
              "Address M/s", "Compiled M/s", "speedup");
  pdl::bench::rule();

  std::vector<Case> cases;
  cases.push_back({"ring v=17 k=5", layout::ring_based_layout(17, 5)});
  cases.push_back({"ring v=64 k=8", layout::ring_based_layout(64, 8)});
  cases.push_back({"stairway q=16 v=20 k=4", layout::stairway_layout(16, 20, 4)});
  cases.push_back(
      {"raid5 v=12", layout::raid5_layout(12, 12)});
  for (const Case& c : cases) run_case(c);

  pdl::bench::rule();
  std::printf("expected shape: map/parity within ~1.5x of each other per "
              "mapper; CompiledMapper ahead on every op, with the largest "
              "wins on stripe_of (no allocation) and map_batch (inlined "
              "loop over the flat table).\n");
  return 0;
}
