// E14 (Condition 4): the mapping must be one table lookup plus a constant
// number of arithmetic operations.  Benchmarks AddressMapper::map /
// parity_of / logical_at on layouts of increasing size, and reports the
// lookup-table memory footprint per configuration.

#include <benchmark/benchmark.h>

#include "core/pdl.hpp"

namespace {

using namespace pdl;

const layout::Layout& layout_for(std::int64_t which) {
  static const layout::Layout ring_small = layout::ring_based_layout(9, 3);
  static const layout::Layout ring_mid = layout::ring_based_layout(17, 5);
  static const layout::Layout ring_big = layout::ring_based_layout(64, 8);
  static const layout::Layout stairway =
      layout::stairway_layout(16, 20, 4);
  switch (which) {
    case 0: return ring_small;
    case 1: return ring_mid;
    case 2: return ring_big;
    default: return stairway;
  }
}

void BM_Map(benchmark::State& state) {
  const layout::AddressMapper mapper(layout_for(state.range(0)));
  const std::uint64_t d = mapper.data_units_per_iteration();
  std::uint64_t logical = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map(logical % (4 * d)));
    logical += 7919;
  }
  state.counters["table_bytes"] =
      static_cast<double>(mapper.table_bytes());
}
BENCHMARK(BM_Map)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_ParityOf(benchmark::State& state) {
  const layout::AddressMapper mapper(layout_for(state.range(0)));
  const std::uint64_t d = mapper.data_units_per_iteration();
  std::uint64_t logical = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.parity_of(logical % (4 * d)));
    logical += 104729;
  }
}
BENCHMARK(BM_ParityOf)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_LogicalAt(benchmark::State& state) {
  const layout::AddressMapper mapper(layout_for(state.range(0)));
  const std::uint32_t v = mapper.num_disks();
  const std::uint32_t s = mapper.units_per_disk();
  std::uint64_t i = 0;
  for (auto _ : state) {
    const layout::AddressMapper::Physical pos{
        static_cast<std::uint32_t>(i % v), (i * 31) % (4 * s)};
    benchmark::DoNotOptimize(mapper.logical_at(pos));
    ++i;
  }
}
BENCHMARK(BM_LogicalAt)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_MapperConstruction(benchmark::State& state) {
  const layout::Layout& layout = layout_for(state.range(0));
  for (auto _ : state) {
    const layout::AddressMapper mapper(layout);
    benchmark::DoNotOptimize(mapper.data_units_per_iteration());
  }
}
BENCHMARK(BM_MapperConstruction)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
