// Multi-failure storm benchmark: a scripted two-failure scenario (second
// failure arriving mid-rebuild of the first) played across every layout
// construction that applies at (v, k) and every rebuild-scheduler policy,
// in both dedicated-replacement and distributed-sparing modes.  Emits one
// machine-readable "JSON {...}" line per (construction, scheduler, mode)
// run plus one per phase of the fifo/dedicated run, and verifies that the
// deterministic timeline reproduces bit-identical ScenarioResults.
//
//   $ ./bench_multi_failure [v] [k]     (defaults: v = 17, k = 5)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/array.hpp"
#include "bench_util.hpp"
#include "engine/planner.hpp"
#include "sim/fault_timeline.hpp"
#include "sim/rebuild_scheduler.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace pdl;

struct StormStats {
  double last_repair_ms = 0.0;
  double rebuilding_read_mean = 0.0;
  double rebuilding_read_p95 = 0.0;
  double normal_read_mean = 0.0;
  double max_util_rebuilding = 0.0;
};

StormStats summarize(const sim::ScenarioResult& result) {
  StormStats stats;
  for (const sim::RebuildSpan& span : result.rebuilds)
    stats.last_repair_ms = std::max(stats.last_repair_ms, span.end_ms);
  for (const sim::PhaseRecord& phase : result.phases) {
    if (phase.phase == sim::ScenarioPhase::kRebuilding ||
        phase.phase == sim::ScenarioPhase::kDegraded) {
      stats.max_util_rebuilding =
          std::max(stats.max_util_rebuilding, phase.max_disk_utilization());
    }
  }
  // Latency means pooled over phase kinds via count-weighted per-phase
  // means (SampleStats exposes no raw samples); the p95 is taken from the
  // stressed phase with the most samples.
  double stressed_sum = 0.0, normal_sum = 0.0;
  std::size_t stressed_n = 0, normal_n = 0;
  double p95 = 0.0;
  std::size_t p95_n = 0;
  for (const sim::PhaseRecord& phase : result.phases) {
    sim::SampleStats reads = phase.user.read_latency_ms;
    const bool stressed = phase.phase == sim::ScenarioPhase::kRebuilding ||
                          phase.phase == sim::ScenarioPhase::kDegraded;
    if (stressed) {
      stressed_sum += reads.mean() * static_cast<double>(reads.count());
      stressed_n += reads.count();
      if (reads.count() > p95_n) {
        p95_n = reads.count();
        p95 = reads.percentile(0.95);
      }
    } else {
      normal_sum += reads.mean() * static_cast<double>(reads.count());
      normal_n += reads.count();
    }
  }
  if (stressed_n > 0)
    stats.rebuilding_read_mean = stressed_sum / static_cast<double>(stressed_n);
  if (normal_n > 0)
    stats.normal_read_mean = normal_sum / static_cast<double>(normal_n);
  stats.rebuilding_read_p95 = p95;
  return stats;
}

bool same_user(const sim::UserStats& a, const sim::UserStats& b) {
  sim::SampleStats ar = a.read_latency_ms, br = b.read_latency_ms;
  sim::SampleStats aw = a.write_latency_ms, bw = b.write_latency_ms;
  return ar.count() == br.count() && ar.mean() == br.mean() &&
         ar.max() == br.max() && aw.count() == bw.count() &&
         aw.mean() == bw.mean() && aw.max() == bw.max();
}

bool bit_identical(const sim::ScenarioResult& a,
                   const sim::ScenarioResult& b) {
  if (a.horizon_ms != b.horizon_ms || a.events != b.events ||
      a.disk_busy_ms != b.disk_busy_ms ||
      a.disk_accesses != b.disk_accesses ||
      a.rebuild_reads_per_disk != b.rebuild_reads_per_disk ||
      a.rebuild_writes_per_disk != b.rebuild_writes_per_disk ||
      a.data_loss != b.data_loss ||
      a.first_data_loss_ms != b.first_data_loss_ms ||
      a.stripe_instances_lost != b.stripe_instances_lost ||
      a.unserved_reads != b.unserved_reads ||
      a.unserved_writes != b.unserved_writes || !same_user(a.user, b.user))
    return false;
  if (a.rebuilds.size() != b.rebuilds.size()) return false;
  for (std::size_t i = 0; i < a.rebuilds.size(); ++i) {
    if (a.rebuilds[i].disk != b.rebuilds[i].disk ||
        a.rebuilds[i].start_ms != b.rebuilds[i].start_ms ||
        a.rebuilds[i].end_ms != b.rebuilds[i].end_ms ||
        a.rebuilds[i].stripes_rebuilt != b.rebuilds[i].stripes_rebuilt)
      return false;
  }
  if (a.phases.size() != b.phases.size()) return false;
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    const sim::PhaseRecord& pa = a.phases[i];
    const sim::PhaseRecord& pb = b.phases[i];
    if (pa.phase != pb.phase || pa.start_ms != pb.start_ms ||
        pa.end_ms != pb.end_ms || pa.failed_disks != pb.failed_disks ||
        pa.disk_busy_ms != pb.disk_busy_ms ||
        pa.disk_accesses != pb.disk_accesses || !same_user(pa.user, pb.user))
      return false;
  }
  return true;
}

StormStats emit_run(const std::string& construction,
                    const std::string& scheduler, const char* mode,
                    std::uint32_t v, std::uint32_t k,
                    std::uint32_t units_per_disk,
                    const sim::ScenarioResult& result, bool deterministic) {
  const StormStats stats = summarize(result);
  bench::json_result("multi_failure", /*schema_version=*/2)
      .field("construction", construction)
      .field("scheduler", scheduler)
      .field("sparing", mode)
      .field("v", static_cast<std::uint64_t>(v))
      .field("k", static_cast<std::uint64_t>(k))
      .field("units_per_disk", static_cast<std::uint64_t>(units_per_disk))
      .field("data_loss", result.data_loss)
      .field("stripe_instances_lost", result.stripe_instances_lost)
      .field("unserved_reads", result.unserved_reads)
      .field("rebuild_count", static_cast<std::uint64_t>(result.rebuilds.size()))
      .field("last_repair_ms", stats.last_repair_ms)
      .field("normal_read_mean_ms", stats.normal_read_mean)
      .field("rebuilding_read_mean_ms", stats.rebuilding_read_mean)
      .field("rebuilding_read_p95_ms", stats.rebuilding_read_p95)
      .field("max_util_rebuilding", stats.max_util_rebuilding)
      .field("horizon_ms", result.horizon_ms)
      .field("deterministic", deterministic)
      .emit();
  return stats;
}

void emit_phases(const std::string& construction,
                 const std::string& scheduler, const char* mode,
                 const sim::ScenarioResult& result) {
  for (std::size_t i = 0; i < result.phases.size(); ++i) {
    const sim::PhaseRecord& phase = result.phases[i];
    sim::SampleStats reads = phase.user.read_latency_ms;
    bench::json_result("multi_failure_phase", /*schema_version=*/2)
        .field("construction", construction)
        .field("scheduler", scheduler)
        .field("sparing", mode)
        .field("phase_index", static_cast<std::uint64_t>(i))
        .field("phase", std::string(sim::phase_name(phase.phase)))
        .field("start_ms", phase.start_ms)
        .field("end_ms", phase.end_ms)
        .field("failed_disks", static_cast<std::uint64_t>(phase.failed_disks))
        .field("max_disk_utilization", phase.max_disk_utilization())
        .field("read_count", static_cast<std::uint64_t>(reads.count()))
        .field("read_mean_ms", reads.mean())
        .emit();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t v = argc > 1 ? std::atoi(argv[1]) : 17;
  const std::uint32_t k = argc > 2 ? std::atoi(argv[2]) : 5;
  if (v < 3 || k < 2 || k > v) {
    std::fprintf(stderr, "need 3 <= v and 2 <= k <= v\n");
    return 1;
  }

  bench::header("multi-failure fault storm",
                "declustering guarantees under failure sequences and "
                "concurrent rebuilds (Section 5 regime, generalized)");

  const auto& planner = engine::ConstructionPlanner::default_planner();
  const auto plans = planner.rank_plans({v, k}, {});
  const sim::ScenarioConfig config{
      .disk = {}, .rebuild_depth = 4, .iterations = 1,
      .rebuild_delay_ms = 100.0};

  std::size_t constructions_run = 0;
  for (const auto& plan : plans) {
    if (plan.units_per_disk > 2000) continue;  // skip lambda blowups
    // Both rebuild modes come through the api::Array front door, pinned to
    // this plan's construction.
    const auto dedicated_array = api::Array::create(
        {v, k}, {}, {.construction = plan.construction});
    const auto spared_array = api::Array::create(
        {v, k}, {},
        {.sparing = api::SparingMode::kDistributed,
         .construction = plan.construction});
    if (!dedicated_array.ok() || !spared_array.ok()) {
      std::fprintf(stderr, "skipping %s: %s\n",
                   core::construction_name(plan.construction).c_str(),
                   (dedicated_array.ok() ? spared_array : dedicated_array)
                       .status().to_string().c_str());
      continue;
    }
    const std::string construction =
        core::construction_name(dedicated_array->construction());
    const std::uint32_t units_per_disk = dedicated_array->units_per_disk();
    ++constructions_run;

    // One simulator per mode, reused across every scheduler run (the
    // compiled serving tables and the sparing flow are built once).
    const sim::ScenarioSimulator dedicated(*dedicated_array, config);
    const sim::ScenarioSimulator distributed(*spared_array, config);

    // Storm: first failure at t = 500 ms, second mid-rebuild of the first.
    const auto probe = dedicated.run(
        sim::FaultTimeline::scripted({{500.0, 0}}), {},
        *sim::make_fifo_scheduler());
    const double mid =
        500.0 + 0.5 * (probe.rebuilds[0].end_ms - 500.0);
    const auto timeline = sim::FaultTimeline::scripted(
        {{500.0, 0}, {mid, (v / 2)}});

    const sim::WorkloadConfig wconfig{
        .arrival_per_ms = 0.05,
        .write_fraction = 0.3,
        .working_set = dedicated.working_set(),
        .duration_ms = 5000.0,
        .seed = 17};
    const auto requests = sim::generate_workload(wconfig);
    auto spared_wconfig = wconfig;
    spared_wconfig.working_set = distributed.working_set();
    const auto spared_requests = sim::generate_workload(spared_wconfig);

    std::printf("%s (s = %u)\n", construction.c_str(),
                units_per_disk);
    for (const std::string_view name : sim::scheduler_names()) {
      const auto scheduler = sim::make_scheduler(name);
      const auto result = dedicated.run(timeline, requests, *scheduler);
      const bool deterministic = bit_identical(
          result, dedicated.run(timeline, requests, *scheduler));
      const StormStats stats =
          emit_run(construction, std::string(name), "dedicated", v, k,
                   units_per_disk, result, deterministic);
      if (name == "fifo")
        emit_phases(construction, std::string(name), "dedicated", result);

      const auto spared_result =
          distributed.run(timeline, spared_requests, *scheduler);
      const bool spared_deterministic = bit_identical(
          spared_result,
          distributed.run(timeline, spared_requests, *scheduler));
      emit_run(construction, std::string(name), "distributed", v, k,
               units_per_disk, spared_result,
               spared_deterministic);

      std::printf("  %-16s repair %.0f ms, stressed read %.1f ms, "
                  "lost %llu\n",
                  std::string(name).c_str(), stats.last_repair_ms,
                  stats.rebuilding_read_mean,
                  static_cast<unsigned long long>(
                      result.stripe_instances_lost));
    }
  }
  bench::rule();
  std::printf("constructions exercised: %zu (>= 3 expected at the default "
              "spec), schedulers: %zu\n",
              constructions_run, sim::scheduler_names().size());
  if (constructions_run < 3 && v == 17 && k == 5) {
    std::fprintf(stderr, "expected >= 3 constructions at v=17 k=5\n");
    return 1;
  }
  return 0;
}
