// E16 (Condition 2 motivation): parity-update contention under small
// writes.  The disk with the most parity units bottlenecks every write
// burst; compares flow-balanced parity against naive round-robin parity
// and RAID4 (all parity on one disk) under a write-heavy workload.

#include <cstdio>

#include "bench_util.hpp"
#include "core/pdl.hpp"

namespace {

void run_row(const char* name, const pdl::layout::Layout& layout) {
  using namespace pdl;
  const auto m = layout::compute_metrics(layout);
  const sim::ArraySimulator simulator(
      layout, sim::ArrayConfig{.disk = {}, .rebuild_depth = 1,
                               .iterations = 1});
  const sim::WorkloadConfig wconfig{
      .arrival_per_ms = 0.03,
      .write_fraction = 1.0,  // pure small writes: parity traffic dominates
      .working_set = simulator.working_set(),
      .duration_ms = 5000.0,
      .seed = 3};
  const auto result = simulator.run_normal(sim::generate_workload(wconfig));
  auto user = result.user;
  std::printf("%-24s %u..%-8u %-12.1f %-12.1f %.3f\n", name,
              m.min_parity_units, m.max_parity_units,
              user.write_latency_ms.mean(), user.write_latency_ms.max(),
              result.max_disk_utilization());
}

}  // namespace

int main() {
  using namespace pdl;
  bench::header("E16 / parity-update contention (Condition 2)",
                "the disk with the most parity units is the write "
                "bottleneck; balanced parity minimizes it");

  const auto design = design::make_subfield_design(16, 4);  // b = 20, v = 16

  std::printf("write-only workload on (v=16, k=4) layouts:\n\n");
  std::printf("%-24s %-12s %-12s %-12s %s\n", "parity placement",
              "parity/disk", "mean(ms)", "max(ms)", "max util");
  bench::rule();

  run_row("flow-balanced (Thm 14)", layout::flow_balanced_layout(design, 1));
  run_row("round-robin", layout::round_robin_parity_layout(design, 1));
  run_row("perfect (lcm copies)", layout::perfectly_balanced_layout(design));
  run_row("RAID4 (one disk)", layout::raid4_layout(16, 5));

  std::printf("\nexpected shape: mean/max write latency and peak disk "
              "utilization grow with parity imbalance; RAID4 is the "
              "pathology, the flow method the floor\n");
  return 0;
}
