// E19 (Section 5's proposed study): randomized stripe partitioning
// (Merchant & Yu style) vs BIBD-based layouts, with parity balanced
// identically by the Section 4 flow method -- isolating reconstruction-
// workload balance from parity placement, exactly as the paper proposes.

#include <cstdio>

#include "bench_util.hpp"
#include "core/pdl.hpp"

int main() {
  using namespace pdl;
  bench::header("E19 / Section 5: randomized vs BIBD stripe partitioning",
                "flow-balanced parity decouples parity placement; compare "
                "reconstruction-workload balance of the partitions alone");

  std::printf("%-26s %-8s %-14s %-14s %-10s\n", "layout", "size",
              "recon units", "recon frac", "parity");
  bench::rule();

  struct Row {
    std::string name;
    layout::Layout layout;
  };
  const std::uint32_t v = 17, k = 5;
  const std::uint32_t size = k * (v - 1);  // match the ring layout's size
  std::vector<Row> rows;
  rows.push_back({"ring BIBD (exact)", layout::ring_based_layout(v, k)});
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    rows.push_back({"randomized seed=" + std::to_string(seed),
                    layout::randomized_layout(v, k, size, seed)});
  }

  for (const auto& row : rows) {
    const auto m = layout::compute_metrics(row.layout);
    std::printf("%-26s %-8u %3u..%-9u %.3f..%-7.3f %u..%u\n",
                row.name.c_str(), m.units_per_disk, m.min_recon_units,
                m.max_recon_units, m.min_recon_workload,
                m.max_recon_workload, m.min_parity_units,
                m.max_parity_units);
  }

  // Rebuild-time consequence of the workload spread.
  std::printf("\nsimulated rebuild of disk 0 (no user load):\n");
  std::printf("%-26s %-12s %-14s\n", "layout", "rebuild(ms)",
              "max survivor reads");
  bench::rule();
  for (const auto& row : rows) {
    const sim::ArraySimulator simulator(
        row.layout, sim::ArrayConfig{.disk = {}, .rebuild_depth = 4,
                                     .iterations = 1});
    const auto result = simulator.run_rebuild({}, 0);
    std::uint64_t max_reads = 0;
    for (const auto r : result.rebuild_reads_per_disk) {
      max_reads = std::max(max_reads, r);
    }
    std::printf("%-26s %-12.0f %-14llu\n", row.name.c_str(),
                result.rebuild_ms,
                static_cast<unsigned long long>(max_reads));
  }

  std::printf("\nexpected shape: the BIBD layout's reconstruction counts "
              "are a single exact value (lambda = k(k-1)); randomized "
              "partitions spread around the same mean (here roughly "
              "0.5x..1.7x), so their busiest survivor reads 25-70%% more. "
              "Idle rebuild wall-clock stays close (pipelining hides the "
              "imbalance when disks are otherwise idle); the spread is what "
              "degrades tail latency under load.  Parity stays within one "
              "unit everywhere -- the flow method's doing, not the "
              "partition's.\n");
  return 0;
}
