// E13 (Section 5's announced experiments, Holland-Gibson style): failure
// recovery on the event-driven array simulator.  Sweeps the declustering
// ratio alpha = (k-1)/(v-1) at fixed v and reports rebuild time and user
// read latency during rebuild, for exact ring layouts, approximate
// (stairway) layouts, and the RAID5 baseline.

#include <cstdio>

#include "bench_util.hpp"
#include "core/pdl.hpp"

namespace {

struct Row {
  const char* name;
  pdl::layout::Layout layout;
};

void run_row(const char* name, const pdl::layout::Layout& layout,
             double arrival_per_ms) {
  using namespace pdl;
  const sim::ArrayConfig config{
      .disk = {}, .rebuild_depth = 4, .iterations = 1};
  const sim::ArraySimulator simulator(layout, config);
  const sim::WorkloadConfig wconfig{
      .arrival_per_ms = arrival_per_ms,
      .write_fraction = 0.3,
      .working_set = simulator.working_set(),
      .duration_ms = 4000.0,
      .seed = 7};
  const auto requests = sim::generate_workload(wconfig);

  const auto idle = simulator.run_rebuild({}, 0);
  auto loaded = simulator.run_rebuild(requests, 0);
  const auto healthy = simulator.run_normal(requests);
  auto healthy_user = healthy.user;
  const auto analysis = sim::analyze_reconstruction(layout, 0);

  std::printf("%-22s %-6u %-7.3f %-10.0f %-10.0f %-11.1f %-11.1f %.2f\n",
              name, layout.units_per_disk(), analysis.max_fraction(),
              idle.rebuild_ms, loaded.rebuild_ms,
              healthy_user.read_latency_ms.mean(),
              loaded.run.user.read_latency_ms.mean(),
              loaded.run.user.read_latency_ms.mean() /
                  healthy_user.read_latency_ms.mean());
}

}  // namespace

int main() {
  using namespace pdl;
  bench::header("E13 / reconstruction simulation (Holland-Gibson style)",
                "smaller declustering ratio (k-1)/(v-1) => faster rebuild "
                "and less user slowdown; RAID5 (k=v) is the worst case");

  const std::uint32_t v = 17;
  std::printf("array: v = %u disks, 10ms positioning + 2ms/unit transfer, "
              "rebuild depth 4, 30%% writes\n\n", v);
  std::printf("%-22s %-6s %-7s %-10s %-10s %-11s %-11s %s\n", "layout",
              "size", "alpha", "idle(ms)", "loaded(ms)", "healthy(ms)",
              "degraded", "slowdown");
  bench::rule();

  // Exact ring layouts across k (all size k(v-1) <= 10,000).
  for (const std::uint32_t k : {3u, 5u, 9u, 13u}) {
    const auto layout = layout::ring_based_layout(v, k);
    const std::string name = "ring k=" + std::to_string(k);
    run_row(name.c_str(), layout, 0.02);
  }
  // RAID5 at the same size as the largest ring layout.
  run_row("RAID5 (k=v)", layout::raid5_layout(v, 13 * (v - 1)), 0.02);

  // Approximate layouts at v = 18 (no exact needed): removal from 19 and
  // stairway from 16.
  std::printf("\napproximate layouts, v = 18:\n");
  std::printf("%-22s %-6s %-7s %-10s %-10s %-11s %-11s %s\n", "layout",
              "size", "alpha", "idle(ms)", "loaded(ms)", "healthy(ms)",
              "degraded", "slowdown");
  bench::rule();
  {
    const auto removal = layout::removal_layout(19, 4, 1);
    run_row("removal q=19 k=4", removal, 0.02);
    const auto plan = layout::plan_stairway(16, 18, 4);
    if (plan) {
      const auto stairway = layout::build_stairway_layout(
          design::make_ring_design(16, 4), *plan);
      run_row("stairway q=16 k=4", stairway, 0.02);
    }
    const auto exactish =
        api::Array::create({.num_disks = 18, .stripe_size = 4});
    if (exactish.ok()) {
      run_row(("auto: " + exactish->description()).c_str(),
              exactish->layout(), 0.02);
    }
  }

  std::printf("\nexpected shape: rebuild time and degraded latency grow "
              "with alpha; RAID5 reads 100%% of every survivor and sits at "
              "the top; approximate layouts track the exact ones at equal "
              "alpha\n");
  return 0;
}
