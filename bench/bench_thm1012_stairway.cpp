// E9 (Theorems 10-12, Figures 4-6): the stairway transformation.
// Builds stairway layouts across regimes (v = q+1; (v-q) | v; general),
// measures their metrics against the theorems' intervals, and reports the
// size/imbalance trade-off the paper discusses (larger c = bigger layout,
// smaller imbalance).

#include <cstdio>

#include "bench_util.hpp"
#include "design/ring_design.hpp"
#include "layout/metrics.hpp"
#include "layout/stairway.hpp"

int main() {
  using namespace pdl;
  bench::header("E9 / Theorems 10-12: stairway layouts q -> v",
                "size k(c-1)(q-1); overhead in [1/k, 1/k + w/(k(c-1)(q-1))];"
                " workload in [(c-2)/(c-1), 1] * (k-1)/(q-1)");

  std::printf("%-5s %-5s %-3s %-4s %-3s %-8s %-16s %-16s %s\n", "q", "v",
              "k", "c", "w", "size", "overhead", "workload", "ok");
  bench::rule();

  struct Case {
    std::uint32_t q, v, k;
  };
  const std::vector<Case> cases = {
      {8, 9, 3},    // Theorem 10 regime (v = q+1)
      {9, 12, 3},   // Theorem 11 ((v-q) | v, w = 0)
      {16, 20, 4},  // Theorem 11
      {9, 13, 4},   // Theorem 12 (w > 0)
      {13, 17, 5},  {16, 21, 5},  {17, 20, 3},
      {25, 30, 5},  {27, 31, 6},  {32, 40, 8},
      {49, 60, 7},  {64, 75, 8},
  };

  bool all_ok = true;
  for (const auto& [q, v, k] : cases) {
    const auto plan = layout::plan_stairway(q, v, k);
    if (!plan) {
      std::printf("%-5u %-5u %-3u no feasible (c, w)\n", q, v, k);
      continue;
    }
    const auto layout =
        layout::build_stairway_layout(design::make_ring_design(q, k), *plan);
    const auto m = layout::compute_metrics(layout);
    const bool ok =
        layout.validate().empty() &&
        m.min_parity_overhead >= plan->parity_overhead_lo() - 1e-12 &&
        m.max_parity_overhead <= plan->parity_overhead_hi() + 1e-12 &&
        m.max_recon_workload <= plan->recon_workload_hi() + 1e-12 &&
        m.min_recon_workload >= plan->recon_workload_lo() - 1e-12;
    all_ok = all_ok && ok;
    std::printf("%-5u %-5u %-3u %-4u %-3u %-8llu %.4f..%-8.4f %.4f..%-8.4f %s\n",
                q, v, k, plan->copies, plan->wide_steps,
                static_cast<unsigned long long>(plan->size()),
                m.min_parity_overhead, m.max_parity_overhead,
                m.min_recon_workload, m.max_recon_workload,
                bench::okbad(ok));
  }

  // The trade-off series (paper, end of Section 3.2): all feasible c for
  // one transformation, size vs imbalance.
  std::printf("\nsize/imbalance trade-off for q=9 -> v=10, k=3 "
              "(all feasible c):\n");
  std::printf("%-4s %-3s %-8s %-16s %s\n", "c", "w", "size", "overhead",
              "workload lo..hi");
  bench::rule();
  for (const auto& plan : layout::all_stairway_plans(9, 10, 3)) {
    const auto layout =
        layout::build_stairway_layout(design::make_ring_design(9, 3), plan);
    const auto m = layout::compute_metrics(layout);
    std::printf("%-4u %-3u %-8llu %.4f..%-8.4f %.4f..%.4f\n", plan.copies,
                plan.wide_steps,
                static_cast<unsigned long long>(plan.size()),
                m.min_parity_overhead, m.max_parity_overhead,
                m.min_recon_workload, m.max_recon_workload);
  }
  std::printf("\nresult: %s\n",
              all_ok ? "all stairway layouts within Theorem 10-12 intervals;"
                       " larger c trades size for balance as described"
                     : "BOUND VIOLATION");
  return all_ok ? 0 : 1;
}
