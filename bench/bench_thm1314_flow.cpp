// E11 (Theorems 13-14, Corollaries 15-17): network-flow parity balancing.
// For a range of BIBDs, assigns parity on a SINGLE copy via the flow
// method and verifies: per-disk counts within one of each other
// (Cor 16), perfect balance exactly when v | b (Cor 17), and the
// Holland-Gibson lcm-conjecture copy counts.

#include <cstdio>

#include "bench_util.hpp"
#include "design/catalog.hpp"
#include "flow/parity_assign.hpp"
#include "layout/bibd_layout.hpp"
#include "layout/metrics.hpp"

int main() {
  using namespace pdl;
  bench::header("E11 / Theorems 13-14, Cors 15-17: flow parity balancing",
                "single-copy parity counts differ by <= 1; perfect balance "
                "iff v | b; lcm(b,v)/b copies suffice (the HG conjecture)");

  std::printf("%-5s %-4s %-8s %-8s %-12s %-14s %-10s %s\n", "v", "k", "b",
              "b%%v", "counts", "perfect@1copy", "lcm copies", "ok");
  bench::rule();

  bool all_ok = true;
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> cases = {
      {7, 3},  {9, 3},  {13, 4}, {16, 4}, {25, 5}, {27, 3},
      {31, 6}, {15, 3}, {12, 3}, {8, 4},  {11, 5}, {49, 7},
  };
  for (const auto& [v, k] : cases) {
    const auto design = design::build_best_design(v, k);
    const auto params = design::design_params(design);
    const auto layout = layout::flow_balanced_layout(design, 1);
    const auto m = layout::compute_metrics(layout);

    const bool within_one = m.max_parity_units - m.min_parity_units <= 1;
    const bool perfect = m.max_parity_units == m.min_parity_units;
    const bool divisible = params.b % v == 0;
    const auto copies = flow::copies_for_perfect_balance(params.b, v);

    // Cor 17: perfect at one copy iff v | b; and lcm copies always perfect.
    const auto multi = layout::flow_balanced_layout(
        design, static_cast<std::uint32_t>(copies));
    const auto mm = layout::compute_metrics(multi);
    const bool lcm_perfect = mm.min_parity_units == mm.max_parity_units;

    const bool ok = within_one && (perfect == divisible) && lcm_perfect;
    all_ok = all_ok && ok;
    std::printf("%-5u %-4u %-8llu %-8llu %u..%-9u %-14s %-10llu %s\n", v, k,
                static_cast<unsigned long long>(params.b),
                static_cast<unsigned long long>(params.b % v),
                m.min_parity_units, m.max_parity_units,
                bench::yesno(perfect),
                static_cast<unsigned long long>(copies), bench::okbad(ok));
  }

  std::printf("\nablation -- flow vs naive round-robin parity on one copy "
              "(max-min spread):\n");
  std::printf("%-5s %-4s %-10s %-12s\n", "v", "k", "flow", "round-robin");
  bench::rule();
  for (const auto& [v, k] : cases) {
    const auto design = design::build_best_design(v, k);
    const auto fm = layout::compute_metrics(
        layout::flow_balanced_layout(design, 1));
    const auto rm = layout::compute_metrics(
        layout::round_robin_parity_layout(design, 1));
    std::printf("%-5u %-4u %-10u %-12u\n", v, k,
                fm.max_parity_units - fm.min_parity_units,
                rm.max_parity_units - rm.min_parity_units);
  }

  std::printf("\nresult: %s\n",
              all_ok ? "flow balancing achieves the Theorem 14 guarantee "
                       "and proves out the lcm conjecture"
                     : "GUARANTEE VIOLATED");
  return all_ok ? 0 : 1;
}
