// E4 (Theorem 1): ring-based block designs.  Sweeps (v, k) over prime
// powers and composites, constructs each design, verifies the BIBD
// conditions exhaustively, and checks b = v(v-1), r = k(v-1),
// lambda = k(k-1).

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "design/ring_design.hpp"

int main() {
  using namespace pdl;
  bench::header("E4 / Theorem 1: ring-based block designs",
                "for any ring of order v with k generators: a BIBD with "
                "b = v(v-1), r = k(v-1), lambda = k(k-1)");

  std::printf("%-6s %-4s %-22s %-10s %-8s %-8s %-10s %s\n", "v", "k",
              "ring", "b", "r", "lambda", "build(ms)", "verified");
  bench::rule();

  const std::vector<std::pair<std::uint32_t, std::uint32_t>> cases = {
      {5, 3},  {8, 4},   {9, 3},   {13, 5},  {16, 7},  {25, 6},
      {27, 9}, {32, 8},  {49, 10}, {64, 16}, {81, 12}, {128, 9},
      {12, 3}, {15, 3},  {20, 4},  {35, 5},  {45, 5},  {72, 8},
      {99, 9}, {100, 4},
  };

  bool all_ok = true;
  for (const auto& [v, k] : cases) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto rd = design::make_ring_design(v, k);
    const auto t1 = std::chrono::steady_clock::now();
    const auto check = design::verify_bibd(rd.design);
    const auto expect = design::ring_design_params(v, k);
    const bool ok = check.ok && check.params == expect;
    all_ok = all_ok && ok;
    std::printf("%-6u %-4u %-22s %-10llu %-8llu %-8llu %-10.2f %s\n", v, k,
                rd.ring->name().c_str(),
                static_cast<unsigned long long>(check.params.b),
                static_cast<unsigned long long>(check.params.r),
                static_cast<unsigned long long>(check.params.lambda),
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                bench::okbad(ok));
  }
  std::printf("\nresult: %s\n",
              all_ok ? "every constructed design is a BIBD with the "
                       "Theorem 1 parameters"
                     : "MISMATCH FOUND");
  return all_ok ? 0 : 1;
}
