// E5 (Theorem 2): a ring-based design on v elements with tuples of size k
// exists iff k <= M(v) = min prime-power factor of v.  Tabulates M(v) for
// awkward composites, constructively achieves k = M(v) via cross-product
// rings (Lemma 3), and spot-verifies that the achieved designs are BIBDs.

#include <cstdio>

#include "algebra/numtheory.hpp"
#include "bench_util.hpp"
#include "design/ring_design.hpp"

int main() {
  using namespace pdl;
  bench::header("E5 / Theorem 2: achievable stripe sizes k <= M(v)",
                "M(v) = min p_i^e_i; prime-power v gives any k <= v, "
                "2*odd gives only k <= 2");

  std::printf("%-8s %-24s %-8s %-12s %s\n", "v", "factorization", "M(v)",
              "k=M(v) ok", "verified BIBD");
  bench::rule();

  bool all_ok = true;
  for (const std::uint32_t v :
       {6u,  10u, 12u,  20u,  30u,  36u,  60u,  72u,  84u,
        90u, 96u, 100u, 120u, 144u, 180u, 210u, 216u}) {
    const auto factors = algebra::factorize(v);
    std::string fact;
    for (const auto& pp : factors) {
      if (!fact.empty()) fact += " * ";
      fact += std::to_string(pp.prime);
      if (pp.exponent > 1) {
        fact += '^';
        fact += std::to_string(pp.exponent);
      }
    }
    const auto m = static_cast<std::uint32_t>(
        algebra::min_prime_power_factor(v));

    // k = M(v) must work; k = M(v)+1 must not.
    const bool at_m = design::ring_design_exists(v, m);
    const bool above_m = design::ring_design_exists(v, m + 1);
    bool verified = false;
    if (m >= 2) {
      const auto rd = design::make_ring_design(v, m);
      verified = design::verify_bibd(rd.design).ok;
    } else {
      verified = true;  // M(v) < 2: no design possible, nothing to verify
    }
    const bool ok = at_m == (m >= 2) && !above_m && verified;
    all_ok = all_ok && ok;
    std::printf("%-8u %-24s %-8u %-12s %s\n", v, fact.c_str(), m,
                bench::yesno(at_m), bench::okbad(ok));
  }
  std::printf("\nresult: %s\n",
              all_ok ? "the k <= M(v) boundary is exactly as Theorem 2 states"
                     : "BOUNDARY VIOLATION");
  return all_ok ? 0 : 1;
}
