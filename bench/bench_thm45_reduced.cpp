// E6 (Theorems 4 and 5): redundancy-reduced designs via symmetric
// generators.  For prime-power v, tabulates the reduction factors
// gcd(v-1, k-1) (Thm 4) and gcd(v-1, k) (Thm 5) against the unreduced
// Theorem 1 size b = v(v-1), and reports which wins where.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_util.hpp"
#include "design/reduced_design.hpp"

int main() {
  using namespace pdl;
  bench::header("E6 / Theorems 4-5: symmetric-generator reductions",
                "b shrinks from v(v-1) by gcd(v-1,k-1) (Thm 4) or "
                "gcd(v-1,k) (Thm 5); winner depends on divisibility");

  std::printf("%-5s %-4s %-10s %-10s %-10s %-10s %-8s %s\n", "v", "k",
              "Thm1 b", "Thm4 b", "Thm5 b", "winner", "factor", "verified");
  bench::rule();

  bool all_ok = true;
  std::uint32_t thm4_wins = 0, thm5_wins = 0, ties = 0;
  for (const std::uint32_t v : {9u, 13u, 16u, 17u, 25u, 27u, 31u, 32u, 49u}) {
    for (const std::uint32_t k : {3u, 4u, 5u, 6u, 8u}) {
      if (k >= v) continue;
      const auto t1 = design::ring_design_params(v, k);
      const auto t4 = design::theorem4_params(v, k);
      const auto t5 = design::theorem5_params(v, k);

      // Build and verify both reduced designs.
      const auto d4 = design::make_theorem4_design(v, k);
      const auto d5 = design::make_theorem5_design(v, k);
      const auto c4 = design::verify_bibd(d4);
      const auto c5 = design::verify_bibd(d5);
      const bool ok = c4.ok && c5.ok && c4.params == t4 && c5.params == t5;
      all_ok = all_ok && ok;

      const char* winner = t4.b < t5.b ? "Thm 4" : (t5.b < t4.b ? "Thm 5" : "tie");
      if (t4.b < t5.b) ++thm4_wins;
      else if (t5.b < t4.b) ++thm5_wins;
      else ++ties;
      std::printf("%-5u %-4u %-10llu %-10llu %-10llu %-10s %-8llu %s\n", v, k,
                  static_cast<unsigned long long>(t1.b),
                  static_cast<unsigned long long>(t4.b),
                  static_cast<unsigned long long>(t5.b), winner,
                  static_cast<unsigned long long>(
                      t1.b / std::min(t4.b, t5.b)),
                  bench::okbad(ok));
    }
  }
  std::printf("\nwinners: Thm4 %u, Thm5 %u, ties %u -- the two reductions "
              "are incomparable, as the paper notes\n",
              thm4_wins, thm5_wins, ties);
  std::printf("result: %s\n", all_ok ? "all reduced designs verified"
                                     : "VERIFICATION FAILED");
  return all_ok ? 0 : 1;
}
