// E7 (Theorems 6 and 7): subfield designs are optimally small.
// For v = k^m, constructs the lambda = 1 subfield design, verifies it, and
// checks b equals the Theorem 7 lower bound v(v-1)/gcd(v(v-1), k(k-1))
// exactly -- and how far the other constructions are from that bound.

#include <cstdio>

#include "bench_util.hpp"
#include "design/bounds.hpp"
#include "design/catalog.hpp"
#include "design/reduced_design.hpp"
#include "design/subfield_design.hpp"

int main() {
  using namespace pdl;
  bench::header("E7 / Theorems 6-7: subfield designs hit the size bound",
                "k a prime power, v = k^m: b = v(v-1)/(k(k-1)), lambda = 1, "
                "matching the Theorem 7 lower bound (optimally small)");

  std::printf("%-6s %-4s %-10s %-10s %-10s %-12s %s\n", "v", "k", "bound",
              "subfield", "Thm4 b", "ratio(T4)", "verified");
  bench::rule();

  bool all_ok = true;
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> cases = {
      {4, 2},  {8, 2},  {16, 2}, {16, 4},  {9, 3},    {27, 3},
      {81, 3}, {81, 9}, {25, 5}, {49, 7},  {64, 4},   {64, 8},
      {121, 11}, {125, 5}, {128, 2}, {243, 3}, {256, 16},
  };
  for (const auto& [v, k] : cases) {
    const auto bound = design::theorem7_lower_bound(v, k);
    const auto sub = design::make_subfield_design(v, k);
    const auto check = design::verify_bibd(sub);
    const auto t4 = design::theorem4_params(v, k);
    const bool ok = check.ok && check.params.lambda == 1 &&
                    check.params.b == bound;
    all_ok = all_ok && ok;
    std::printf("%-6u %-4u %-10llu %-10llu %-10llu %-12.1f %s\n", v, k,
                static_cast<unsigned long long>(bound),
                static_cast<unsigned long long>(sub.b()),
                static_cast<unsigned long long>(t4.b),
                static_cast<double>(t4.b) / static_cast<double>(bound),
                bench::okbad(ok));
  }
  std::printf("\nresult: %s\n",
              all_ok ? "every subfield design meets the lower bound with "
                       "lambda = 1 (previously unknown designs, per Sec 2.2.2)"
                     : "BOUND MISSED");
  return all_ok ? 0 : 1;
}
