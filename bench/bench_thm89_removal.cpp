// E8 (Theorems 8 and 9): disk-removal layouts.  Builds layouts for v-i
// disks from ring layouts for v, measures parity overhead / reconstruction
// workload / stripe sizes, and compares them against the theorems' stated
// intervals.

#include <cstdio>

#include "bench_util.hpp"
#include "layout/disk_removal.hpp"
#include "layout/metrics.hpp"

int main() {
  using namespace pdl;
  bench::header("E8 / Theorems 8-9: removing disks from ring layouts",
                "i=1: overhead exactly (1/k)(v/(v-1)), workload (k-1)/(v-1); "
                "i<=sqrt(k): parity counts in {v+i-1, v+i}");

  std::printf("%-5s %-4s %-3s %-8s %-14s %-14s %-12s %s\n", "v", "k", "i",
              "size", "parity/disk", "overhead", "workload", "within bounds");
  bench::rule();

  struct Case {
    std::uint32_t v, k, i;
  };
  const std::vector<Case> cases = {
      {9, 4, 1},  {13, 5, 1}, {17, 6, 1}, {25, 5, 1}, {32, 8, 1},
      {9, 4, 2},  {13, 9, 2}, {16, 9, 3}, {17, 4, 2}, {25, 9, 3},
      {27, 16, 4}, {49, 9, 3},
  };

  bool all_ok = true;
  for (const auto& [v, k, i] : cases) {
    const auto layout = layout::removal_layout(v, k, i);
    const auto m = layout::compute_metrics(layout);

    const double overhead_lo =
        static_cast<double>(v + i - 1) / (static_cast<double>(k) * (v - 1));
    const double overhead_hi =
        static_cast<double>(v + i) / (static_cast<double>(k) * (v - 1));
    const double workload = static_cast<double>(k - 1) / (v - 1);

    const bool parity_ok = m.min_parity_units >= v + i - 1 &&
                           m.max_parity_units <= v + i;
    const bool overhead_ok = m.min_parity_overhead >= overhead_lo - 1e-12 &&
                             m.max_parity_overhead <= overhead_hi + 1e-12;
    const bool workload_ok =
        std::abs(m.max_recon_workload - workload) < 1e-12 &&
        std::abs(m.min_recon_workload - workload) < 1e-12;
    const bool ok = parity_ok && overhead_ok && workload_ok &&
                    layout.validate().empty();
    all_ok = all_ok && ok;

    std::printf("%-5u %-4u %-3u %-8u %u..%-11u %.4f..%-6.4f %-12.4f %s\n", v,
                k, i, m.units_per_disk, m.min_parity_units,
                m.max_parity_units, m.min_parity_overhead,
                m.max_parity_overhead, m.max_recon_workload,
                bench::okbad(ok));
  }
  std::printf("\nresult: %s\n",
              all_ok ? "all removal layouts land inside the Theorem 8/9 "
                       "intervals; workload stays perfectly balanced"
                     : "BOUND VIOLATION");
  return all_ok ? 0 : 1;
}
