#pragma once
// Shared formatting helpers for the experiment regeneration binaries.

#include <cstdio>
#include <string>

namespace pdl::bench {

inline void header(const std::string& experiment, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline void rule() {
  std::printf("----------------------------------------------------------------\n");
}

inline const char* yesno(bool b) { return b ? "yes" : "no"; }

inline const char* okbad(bool ok) { return ok ? "OK " : "BAD"; }

}  // namespace pdl::bench
