#pragma once
// Shared formatting helpers for the experiment regeneration binaries.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>

namespace pdl::bench {

inline void header(const std::string& experiment, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline void rule() {
  std::printf("----------------------------------------------------------------\n");
}

inline const char* yesno(bool b) { return b ? "yes" : "no"; }

inline const char* okbad(bool ok) { return ok ? "OK " : "BAD"; }

/// Machine-readable result emission: accumulates fields and prints one
/// JSON object per line, prefixed so downstream tooling can grep it out of
/// the human-readable tables ("JSON {...}").  Keys are emitted in insertion
/// order; values are numbers or strings (quotes/backslashes escaped).
///
/// Every object carries a "schema_version" field (second key) so that
/// BENCH_*.json outputs stay machine-diffable across PRs: bump the version
/// passed by a bench whenever its field set changes meaning.
///
///   json_result("mapper_throughput")
///       .field("layout", "ring v=17 k=5")
///       .field("lookups_per_sec", 1.8e8)
///       .emit();
class json_result {
 public:
  explicit json_result(const std::string& benchmark,
                       std::uint64_t schema_version = 1) {
    char version[32];
    std::snprintf(version, sizeof version, "%" PRIu64, schema_version);
    body_ = "{\"benchmark\":\"" + escape(benchmark) +
            "\",\"schema_version\":" + version;
  }

  json_result& field(const std::string& key, const std::string& value) {
    body_ += ",\"" + escape(key) + "\":\"" + escape(value) + "\"";
    return *this;
  }
  json_result& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  json_result& field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    body_ += ",\"" + escape(key) + "\":" + buf;
    return *this;
  }
  json_result& field(const std::string& key, std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    body_ += ",\"" + escape(key) + "\":" + buf;
    return *this;
  }
  json_result& field(const std::string& key, std::int64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, value);
    body_ += ",\"" + escape(key) + "\":" + buf;
    return *this;
  }
  json_result& field(const std::string& key, bool value) {
    body_ += ",\"" + escape(key) + "\":" + (value ? "true" : "false");
    return *this;
  }

  /// Prints the object as one "JSON {...}" line on stdout.
  void emit() const { std::printf("JSON %s}\n", body_.c_str()); }

 private:
  static std::string escape(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::string body_;
};

}  // namespace pdl::bench
