// XOR codec hot-path throughput: the vectorized word-at-a-time kernels
// (core::xor_into / xor_parity_into, 64-byte blocked, auto-vectorized)
// versus the scalar byte-loop references they replaced
// (core::detail::xor_into_scalar / xor_parity_into_scalar, the PR-4
// baseline shape).  Two operations are measured per unit size:
//
//   * pair XOR     -- dst ^= src (the read-modify-write delta);
//   * parity fold  -- dst = XOR of k units (degraded read / reconstruct
//                     write / rebuild; the blocked kernel makes ONE pass
//                     over dst, the scalar reference k+1).
//
// Every measured kernel's output is verified against the scalar result
// before timing counts, so the speedup comes with a correctness proof.
//
//   $ ./bench_xor_codec [--smoke]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "core/xor_codec.hpp"

namespace {

using namespace pdl;
using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kFanIn = 5;  // stripe size k in the serving paths

std::vector<std::uint8_t> random_bytes(std::size_t size,
                                       std::mt19937_64& rng) {
  std::vector<std::uint8_t> bytes(size);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
  return bytes;
}

/// Runs `op` until ~target_seconds elapsed; returns MB/s of payload.
template <typename Op>
double measure(double target_seconds, std::uint64_t bytes_per_op, Op&& op) {
  // Warm-up.
  op();
  std::uint64_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  do {
    op();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < target_seconds);
  return static_cast<double>(iters * bytes_per_op) / 1e6 / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const double seconds = smoke ? 0.02 : 0.25;

  bench::header("xor codec throughput",
                "Figure 1's parity equations are the data path's inner "
                "loop; the vectorized kernels must beat the scalar "
                "byte loops they replaced");

  std::mt19937_64 rng(0xBE27C);
  bool all_verified = true;

  for (const std::size_t size : {512u, 4096u, 65536u}) {
    // --------------------------------------------------------- pair XOR
    auto dst_vec = random_bytes(size, rng);
    auto dst_scalar = dst_vec;
    const auto src = random_bytes(size, rng);

    core::xor_into(dst_vec, src);
    core::detail::xor_into_scalar(dst_scalar, src);
    const bool pair_ok = dst_vec == dst_scalar;

    const double pair_scalar = measure(seconds, size, [&] {
      core::detail::xor_into_scalar(dst_scalar, src);
    });
    const double pair_vector =
        measure(seconds, size, [&] { core::xor_into(dst_vec, src); });

    // ------------------------------------------------------ parity fold
    std::vector<std::vector<std::uint8_t>> units;
    for (std::uint32_t u = 0; u < kFanIn; ++u)
      units.push_back(random_bytes(size, rng));
    std::vector<std::span<const std::uint8_t>> views;
    for (const auto& unit : units) views.emplace_back(unit);

    core::xor_parity_into(dst_vec, views);
    core::detail::xor_parity_into_scalar(dst_scalar, views);
    const bool parity_ok = dst_vec == dst_scalar;

    const double parity_scalar = measure(seconds, size * kFanIn, [&] {
      core::detail::xor_parity_into_scalar(dst_scalar, views);
    });
    const double parity_vector = measure(seconds, size * kFanIn, [&] {
      core::xor_parity_into(dst_vec, views);
    });

    const bool verified = pair_ok && parity_ok;
    if (!verified) all_verified = false;

    std::printf(
        "%6zu B  pair %8.0f -> %8.0f MB/s (%4.1fx) | parity k=%u %8.0f -> "
        "%8.0f MB/s (%4.1fx) | %s\n",
        size, pair_scalar, pair_vector, pair_vector / pair_scalar, kFanIn,
        parity_scalar, parity_vector, parity_vector / parity_scalar,
        bench::okbad(verified));

    bench::json_result("xor_codec", /*schema_version=*/1)
        .field("unit_bytes", static_cast<std::uint64_t>(size))
        .field("fan_in", static_cast<std::uint64_t>(kFanIn))
        .field("pair_scalar_mbps", pair_scalar)
        .field("pair_vector_mbps", pair_vector)
        .field("pair_speedup", pair_vector / pair_scalar)
        .field("parity_scalar_mbps", parity_scalar)
        .field("parity_vector_mbps", parity_vector)
        .field("parity_speedup", parity_vector / parity_scalar)
        .field("verified", verified)
        .emit();
  }

  if (!all_verified) {
    std::fprintf(stderr, "xor codec: verification FAILED\n");
    return 1;
  }
  return 0;
}
