file(REMOVE_RECURSE
  "CMakeFiles/array_designer.dir/examples/array_designer.cpp.o"
  "CMakeFiles/array_designer.dir/examples/array_designer.cpp.o.d"
  "array_designer"
  "array_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/array_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
