# Empty dependencies file for array_designer.
# This may be replaced when dependencies are built.
