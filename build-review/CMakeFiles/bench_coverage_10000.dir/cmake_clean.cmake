file(REMOVE_RECURSE
  "CMakeFiles/bench_coverage_10000.dir/bench/bench_coverage_10000.cpp.o"
  "CMakeFiles/bench_coverage_10000.dir/bench/bench_coverage_10000.cpp.o.d"
  "bench_coverage_10000"
  "bench_coverage_10000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coverage_10000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
