# Empty compiler generated dependencies file for bench_coverage_10000.
# This may be replaced when dependencies are built.
