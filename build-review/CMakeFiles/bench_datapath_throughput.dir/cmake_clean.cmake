file(REMOVE_RECURSE
  "CMakeFiles/bench_datapath_throughput.dir/bench/bench_datapath_throughput.cpp.o"
  "CMakeFiles/bench_datapath_throughput.dir/bench/bench_datapath_throughput.cpp.o.d"
  "bench_datapath_throughput"
  "bench_datapath_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datapath_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
