# Empty dependencies file for bench_datapath_throughput.
# This may be replaced when dependencies are built.
