file(REMOVE_RECURSE
  "CMakeFiles/bench_distributed_sparing.dir/bench/bench_distributed_sparing.cpp.o"
  "CMakeFiles/bench_distributed_sparing.dir/bench/bench_distributed_sparing.cpp.o.d"
  "bench_distributed_sparing"
  "bench_distributed_sparing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distributed_sparing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
