# Empty dependencies file for bench_distributed_sparing.
# This may be replaced when dependencies are built.
