file(REMOVE_RECURSE
  "CMakeFiles/bench_extendibility.dir/bench/bench_extendibility.cpp.o"
  "CMakeFiles/bench_extendibility.dir/bench/bench_extendibility.cpp.o.d"
  "bench_extendibility"
  "bench_extendibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extendibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
