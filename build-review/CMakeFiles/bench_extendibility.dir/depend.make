# Empty dependencies file for bench_extendibility.
# This may be replaced when dependencies are built.
