file(REMOVE_RECURSE
  "CMakeFiles/bench_feasibility.dir/bench/bench_feasibility.cpp.o"
  "CMakeFiles/bench_feasibility.dir/bench/bench_feasibility.cpp.o.d"
  "bench_feasibility"
  "bench_feasibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
