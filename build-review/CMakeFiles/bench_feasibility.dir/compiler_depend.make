# Empty compiler generated dependencies file for bench_feasibility.
# This may be replaced when dependencies are built.
