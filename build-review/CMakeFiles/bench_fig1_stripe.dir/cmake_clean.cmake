file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_stripe.dir/bench/bench_fig1_stripe.cpp.o"
  "CMakeFiles/bench_fig1_stripe.dir/bench/bench_fig1_stripe.cpp.o.d"
  "bench_fig1_stripe"
  "bench_fig1_stripe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_stripe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
