# Empty dependencies file for bench_fig1_stripe.
# This may be replaced when dependencies are built.
