file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_layout.dir/bench/bench_fig2_layout.cpp.o"
  "CMakeFiles/bench_fig2_layout.dir/bench/bench_fig2_layout.cpp.o.d"
  "bench_fig2_layout"
  "bench_fig2_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
