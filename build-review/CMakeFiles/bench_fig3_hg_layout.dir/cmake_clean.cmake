file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_hg_layout.dir/bench/bench_fig3_hg_layout.cpp.o"
  "CMakeFiles/bench_fig3_hg_layout.dir/bench/bench_fig3_hg_layout.cpp.o.d"
  "bench_fig3_hg_layout"
  "bench_fig3_hg_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_hg_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
