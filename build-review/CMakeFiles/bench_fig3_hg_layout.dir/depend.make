# Empty dependencies file for bench_fig3_hg_layout.
# This may be replaced when dependencies are built.
