file(REMOVE_RECURSE
  "CMakeFiles/bench_flow_scaling.dir/bench/bench_flow_scaling.cpp.o"
  "CMakeFiles/bench_flow_scaling.dir/bench/bench_flow_scaling.cpp.o.d"
  "bench_flow_scaling"
  "bench_flow_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flow_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
