# Empty compiler generated dependencies file for bench_flow_scaling.
# This may be replaced when dependencies are built.
