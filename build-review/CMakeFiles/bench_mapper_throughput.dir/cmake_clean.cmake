file(REMOVE_RECURSE
  "CMakeFiles/bench_mapper_throughput.dir/bench/bench_mapper_throughput.cpp.o"
  "CMakeFiles/bench_mapper_throughput.dir/bench/bench_mapper_throughput.cpp.o.d"
  "bench_mapper_throughput"
  "bench_mapper_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mapper_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
