# Empty compiler generated dependencies file for bench_mapper_throughput.
# This may be replaced when dependencies are built.
