file(REMOVE_RECURSE
  "CMakeFiles/bench_mapping.dir/bench/bench_mapping.cpp.o"
  "CMakeFiles/bench_mapping.dir/bench/bench_mapping.cpp.o.d"
  "bench_mapping"
  "bench_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
