# Empty dependencies file for bench_mapping.
# This may be replaced when dependencies are built.
