file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_failure.dir/bench/bench_multi_failure.cpp.o"
  "CMakeFiles/bench_multi_failure.dir/bench/bench_multi_failure.cpp.o.d"
  "bench_multi_failure"
  "bench_multi_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
