# Empty compiler generated dependencies file for bench_multi_failure.
# This may be replaced when dependencies are built.
