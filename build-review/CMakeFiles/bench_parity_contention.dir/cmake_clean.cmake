file(REMOVE_RECURSE
  "CMakeFiles/bench_parity_contention.dir/bench/bench_parity_contention.cpp.o"
  "CMakeFiles/bench_parity_contention.dir/bench/bench_parity_contention.cpp.o.d"
  "bench_parity_contention"
  "bench_parity_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parity_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
