# Empty dependencies file for bench_parity_contention.
# This may be replaced when dependencies are built.
