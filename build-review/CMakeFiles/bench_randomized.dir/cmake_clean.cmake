file(REMOVE_RECURSE
  "CMakeFiles/bench_randomized.dir/bench/bench_randomized.cpp.o"
  "CMakeFiles/bench_randomized.dir/bench/bench_randomized.cpp.o.d"
  "bench_randomized"
  "bench_randomized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_randomized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
