# Empty compiler generated dependencies file for bench_randomized.
# This may be replaced when dependencies are built.
