file(REMOVE_RECURSE
  "CMakeFiles/bench_reconstruction_sim.dir/bench/bench_reconstruction_sim.cpp.o"
  "CMakeFiles/bench_reconstruction_sim.dir/bench/bench_reconstruction_sim.cpp.o.d"
  "bench_reconstruction_sim"
  "bench_reconstruction_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reconstruction_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
