# Empty compiler generated dependencies file for bench_reconstruction_sim.
# This may be replaced when dependencies are built.
