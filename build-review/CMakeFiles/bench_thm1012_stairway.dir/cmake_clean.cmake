file(REMOVE_RECURSE
  "CMakeFiles/bench_thm1012_stairway.dir/bench/bench_thm1012_stairway.cpp.o"
  "CMakeFiles/bench_thm1012_stairway.dir/bench/bench_thm1012_stairway.cpp.o.d"
  "bench_thm1012_stairway"
  "bench_thm1012_stairway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm1012_stairway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
