# Empty dependencies file for bench_thm1012_stairway.
# This may be replaced when dependencies are built.
