file(REMOVE_RECURSE
  "CMakeFiles/bench_thm1314_flow.dir/bench/bench_thm1314_flow.cpp.o"
  "CMakeFiles/bench_thm1314_flow.dir/bench/bench_thm1314_flow.cpp.o.d"
  "bench_thm1314_flow"
  "bench_thm1314_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm1314_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
