# Empty dependencies file for bench_thm1314_flow.
# This may be replaced when dependencies are built.
