file(REMOVE_RECURSE
  "CMakeFiles/bench_thm1_ring_designs.dir/bench/bench_thm1_ring_designs.cpp.o"
  "CMakeFiles/bench_thm1_ring_designs.dir/bench/bench_thm1_ring_designs.cpp.o.d"
  "bench_thm1_ring_designs"
  "bench_thm1_ring_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm1_ring_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
