# Empty compiler generated dependencies file for bench_thm1_ring_designs.
# This may be replaced when dependencies are built.
