file(REMOVE_RECURSE
  "CMakeFiles/bench_thm2_mv.dir/bench/bench_thm2_mv.cpp.o"
  "CMakeFiles/bench_thm2_mv.dir/bench/bench_thm2_mv.cpp.o.d"
  "bench_thm2_mv"
  "bench_thm2_mv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm2_mv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
