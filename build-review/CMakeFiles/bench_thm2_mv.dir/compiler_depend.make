# Empty compiler generated dependencies file for bench_thm2_mv.
# This may be replaced when dependencies are built.
