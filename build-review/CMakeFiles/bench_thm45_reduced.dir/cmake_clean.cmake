file(REMOVE_RECURSE
  "CMakeFiles/bench_thm45_reduced.dir/bench/bench_thm45_reduced.cpp.o"
  "CMakeFiles/bench_thm45_reduced.dir/bench/bench_thm45_reduced.cpp.o.d"
  "bench_thm45_reduced"
  "bench_thm45_reduced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm45_reduced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
