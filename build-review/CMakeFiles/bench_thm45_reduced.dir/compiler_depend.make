# Empty compiler generated dependencies file for bench_thm45_reduced.
# This may be replaced when dependencies are built.
