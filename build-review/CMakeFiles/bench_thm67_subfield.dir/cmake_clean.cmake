file(REMOVE_RECURSE
  "CMakeFiles/bench_thm67_subfield.dir/bench/bench_thm67_subfield.cpp.o"
  "CMakeFiles/bench_thm67_subfield.dir/bench/bench_thm67_subfield.cpp.o.d"
  "bench_thm67_subfield"
  "bench_thm67_subfield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm67_subfield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
