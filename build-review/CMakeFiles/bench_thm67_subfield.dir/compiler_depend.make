# Empty compiler generated dependencies file for bench_thm67_subfield.
# This may be replaced when dependencies are built.
