file(REMOVE_RECURSE
  "CMakeFiles/bench_thm89_removal.dir/bench/bench_thm89_removal.cpp.o"
  "CMakeFiles/bench_thm89_removal.dir/bench/bench_thm89_removal.cpp.o.d"
  "bench_thm89_removal"
  "bench_thm89_removal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm89_removal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
