# Empty dependencies file for bench_thm89_removal.
# This may be replaced when dependencies are built.
