file(REMOVE_RECURSE
  "CMakeFiles/datapath_demo.dir/examples/datapath_demo.cpp.o"
  "CMakeFiles/datapath_demo.dir/examples/datapath_demo.cpp.o.d"
  "datapath_demo"
  "datapath_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datapath_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
