# Empty dependencies file for datapath_demo.
# This may be replaced when dependencies are built.
