file(REMOVE_RECURSE
  "CMakeFiles/distributed_sparing.dir/examples/distributed_sparing.cpp.o"
  "CMakeFiles/distributed_sparing.dir/examples/distributed_sparing.cpp.o.d"
  "distributed_sparing"
  "distributed_sparing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_sparing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
