# Empty compiler generated dependencies file for distributed_sparing.
# This may be replaced when dependencies are built.
