file(REMOVE_RECURSE
  "CMakeFiles/fault_storm.dir/examples/fault_storm.cpp.o"
  "CMakeFiles/fault_storm.dir/examples/fault_storm.cpp.o.d"
  "fault_storm"
  "fault_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
