# Empty compiler generated dependencies file for fault_storm.
# This may be replaced when dependencies are built.
