file(REMOVE_RECURSE
  "CMakeFiles/figure_gallery.dir/examples/figure_gallery.cpp.o"
  "CMakeFiles/figure_gallery.dir/examples/figure_gallery.cpp.o.d"
  "figure_gallery"
  "figure_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
