# Empty dependencies file for figure_gallery.
# This may be replaced when dependencies are built.
