file(REMOVE_RECURSE
  "CMakeFiles/layout_explorer.dir/examples/layout_explorer.cpp.o"
  "CMakeFiles/layout_explorer.dir/examples/layout_explorer.cpp.o.d"
  "layout_explorer"
  "layout_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
