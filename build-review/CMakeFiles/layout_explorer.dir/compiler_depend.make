# Empty compiler generated dependencies file for layout_explorer.
# This may be replaced when dependencies are built.
