
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/gf.cpp" "CMakeFiles/pdl.dir/src/algebra/gf.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/algebra/gf.cpp.o.d"
  "/root/repo/src/algebra/numtheory.cpp" "CMakeFiles/pdl.dir/src/algebra/numtheory.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/algebra/numtheory.cpp.o.d"
  "/root/repo/src/algebra/polynomial.cpp" "CMakeFiles/pdl.dir/src/algebra/polynomial.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/algebra/polynomial.cpp.o.d"
  "/root/repo/src/algebra/product_ring.cpp" "CMakeFiles/pdl.dir/src/algebra/product_ring.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/algebra/product_ring.cpp.o.d"
  "/root/repo/src/algebra/ring.cpp" "CMakeFiles/pdl.dir/src/algebra/ring.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/algebra/ring.cpp.o.d"
  "/root/repo/src/algebra/zmod.cpp" "CMakeFiles/pdl.dir/src/algebra/zmod.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/algebra/zmod.cpp.o.d"
  "/root/repo/src/api/array.cpp" "CMakeFiles/pdl.dir/src/api/array.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/api/array.cpp.o.d"
  "/root/repo/src/core/declustered_array.cpp" "CMakeFiles/pdl.dir/src/core/declustered_array.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/core/declustered_array.cpp.o.d"
  "/root/repo/src/core/recovery.cpp" "CMakeFiles/pdl.dir/src/core/recovery.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/core/recovery.cpp.o.d"
  "/root/repo/src/core/status.cpp" "CMakeFiles/pdl.dir/src/core/status.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/core/status.cpp.o.d"
  "/root/repo/src/core/xor_codec.cpp" "CMakeFiles/pdl.dir/src/core/xor_codec.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/core/xor_codec.cpp.o.d"
  "/root/repo/src/design/bibd.cpp" "CMakeFiles/pdl.dir/src/design/bibd.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/design/bibd.cpp.o.d"
  "/root/repo/src/design/bounds.cpp" "CMakeFiles/pdl.dir/src/design/bounds.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/design/bounds.cpp.o.d"
  "/root/repo/src/design/catalog.cpp" "CMakeFiles/pdl.dir/src/design/catalog.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/design/catalog.cpp.o.d"
  "/root/repo/src/design/complete_design.cpp" "CMakeFiles/pdl.dir/src/design/complete_design.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/design/complete_design.cpp.o.d"
  "/root/repo/src/design/reduced_design.cpp" "CMakeFiles/pdl.dir/src/design/reduced_design.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/design/reduced_design.cpp.o.d"
  "/root/repo/src/design/ring_design.cpp" "CMakeFiles/pdl.dir/src/design/ring_design.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/design/ring_design.cpp.o.d"
  "/root/repo/src/design/subfield_design.cpp" "CMakeFiles/pdl.dir/src/design/subfield_design.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/design/subfield_design.cpp.o.d"
  "/root/repo/src/engine/builders.cpp" "CMakeFiles/pdl.dir/src/engine/builders.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/engine/builders.cpp.o.d"
  "/root/repo/src/engine/engine.cpp" "CMakeFiles/pdl.dir/src/engine/engine.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/engine/engine.cpp.o.d"
  "/root/repo/src/engine/layout_cache.cpp" "CMakeFiles/pdl.dir/src/engine/layout_cache.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/engine/layout_cache.cpp.o.d"
  "/root/repo/src/engine/planner.cpp" "CMakeFiles/pdl.dir/src/engine/planner.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/engine/planner.cpp.o.d"
  "/root/repo/src/flow/bounded_flow.cpp" "CMakeFiles/pdl.dir/src/flow/bounded_flow.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/flow/bounded_flow.cpp.o.d"
  "/root/repo/src/flow/dinic.cpp" "CMakeFiles/pdl.dir/src/flow/dinic.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/flow/dinic.cpp.o.d"
  "/root/repo/src/flow/matching.cpp" "CMakeFiles/pdl.dir/src/flow/matching.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/flow/matching.cpp.o.d"
  "/root/repo/src/flow/parity_assign.cpp" "CMakeFiles/pdl.dir/src/flow/parity_assign.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/flow/parity_assign.cpp.o.d"
  "/root/repo/src/io/stripe_store.cpp" "CMakeFiles/pdl.dir/src/io/stripe_store.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/io/stripe_store.cpp.o.d"
  "/root/repo/src/io/workload_driver.cpp" "CMakeFiles/pdl.dir/src/io/workload_driver.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/io/workload_driver.cpp.o.d"
  "/root/repo/src/layout/bibd_layout.cpp" "CMakeFiles/pdl.dir/src/layout/bibd_layout.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/layout/bibd_layout.cpp.o.d"
  "/root/repo/src/layout/compiled_mapper.cpp" "CMakeFiles/pdl.dir/src/layout/compiled_mapper.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/layout/compiled_mapper.cpp.o.d"
  "/root/repo/src/layout/disk_removal.cpp" "CMakeFiles/pdl.dir/src/layout/disk_removal.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/layout/disk_removal.cpp.o.d"
  "/root/repo/src/layout/feasibility.cpp" "CMakeFiles/pdl.dir/src/layout/feasibility.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/layout/feasibility.cpp.o.d"
  "/root/repo/src/layout/layout.cpp" "CMakeFiles/pdl.dir/src/layout/layout.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/layout/layout.cpp.o.d"
  "/root/repo/src/layout/mapping.cpp" "CMakeFiles/pdl.dir/src/layout/mapping.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/layout/mapping.cpp.o.d"
  "/root/repo/src/layout/metrics.cpp" "CMakeFiles/pdl.dir/src/layout/metrics.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/layout/metrics.cpp.o.d"
  "/root/repo/src/layout/migration.cpp" "CMakeFiles/pdl.dir/src/layout/migration.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/layout/migration.cpp.o.d"
  "/root/repo/src/layout/parallelism.cpp" "CMakeFiles/pdl.dir/src/layout/parallelism.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/layout/parallelism.cpp.o.d"
  "/root/repo/src/layout/raid.cpp" "CMakeFiles/pdl.dir/src/layout/raid.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/layout/raid.cpp.o.d"
  "/root/repo/src/layout/randomized.cpp" "CMakeFiles/pdl.dir/src/layout/randomized.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/layout/randomized.cpp.o.d"
  "/root/repo/src/layout/ring_layout.cpp" "CMakeFiles/pdl.dir/src/layout/ring_layout.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/layout/ring_layout.cpp.o.d"
  "/root/repo/src/layout/serialize.cpp" "CMakeFiles/pdl.dir/src/layout/serialize.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/layout/serialize.cpp.o.d"
  "/root/repo/src/layout/sparing.cpp" "CMakeFiles/pdl.dir/src/layout/sparing.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/layout/sparing.cpp.o.d"
  "/root/repo/src/layout/stairway.cpp" "CMakeFiles/pdl.dir/src/layout/stairway.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/layout/stairway.cpp.o.d"
  "/root/repo/src/sim/array_sim.cpp" "CMakeFiles/pdl.dir/src/sim/array_sim.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/sim/array_sim.cpp.o.d"
  "/root/repo/src/sim/disk.cpp" "CMakeFiles/pdl.dir/src/sim/disk.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/sim/disk.cpp.o.d"
  "/root/repo/src/sim/fault_timeline.cpp" "CMakeFiles/pdl.dir/src/sim/fault_timeline.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/sim/fault_timeline.cpp.o.d"
  "/root/repo/src/sim/rebuild_scheduler.cpp" "CMakeFiles/pdl.dir/src/sim/rebuild_scheduler.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/sim/rebuild_scheduler.cpp.o.d"
  "/root/repo/src/sim/reconstruction.cpp" "CMakeFiles/pdl.dir/src/sim/reconstruction.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/sim/reconstruction.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "CMakeFiles/pdl.dir/src/sim/scenario.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/sim/scenario.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "CMakeFiles/pdl.dir/src/sim/workload.cpp.o" "gcc" "CMakeFiles/pdl.dir/src/sim/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
