file(REMOVE_RECURSE
  "libpdl.a"
)
