# Empty compiler generated dependencies file for pdl.
# This may be replaced when dependencies are built.
