file(REMOVE_RECURSE
  "CMakeFiles/reconstruction_sim.dir/examples/reconstruction_sim.cpp.o"
  "CMakeFiles/reconstruction_sim.dir/examples/reconstruction_sim.cpp.o.d"
  "reconstruction_sim"
  "reconstruction_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconstruction_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
