# Empty compiler generated dependencies file for reconstruction_sim.
# This may be replaced when dependencies are built.
