file(REMOVE_RECURSE
  "CMakeFiles/test_array_api.dir/tests/test_array_api.cpp.o"
  "CMakeFiles/test_array_api.dir/tests/test_array_api.cpp.o.d"
  "test_array_api"
  "test_array_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_array_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
