# Empty compiler generated dependencies file for test_array_api.
# This may be replaced when dependencies are built.
