file(REMOVE_RECURSE
  "CMakeFiles/test_array_sim.dir/tests/test_array_sim.cpp.o"
  "CMakeFiles/test_array_sim.dir/tests/test_array_sim.cpp.o.d"
  "test_array_sim"
  "test_array_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_array_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
