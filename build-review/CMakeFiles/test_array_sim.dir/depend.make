# Empty dependencies file for test_array_sim.
# This may be replaced when dependencies are built.
