file(REMOVE_RECURSE
  "CMakeFiles/test_bibd.dir/tests/test_bibd.cpp.o"
  "CMakeFiles/test_bibd.dir/tests/test_bibd.cpp.o.d"
  "test_bibd"
  "test_bibd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bibd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
