# Empty compiler generated dependencies file for test_bibd.
# This may be replaced when dependencies are built.
