file(REMOVE_RECURSE
  "CMakeFiles/test_bibd_layout.dir/tests/test_bibd_layout.cpp.o"
  "CMakeFiles/test_bibd_layout.dir/tests/test_bibd_layout.cpp.o.d"
  "test_bibd_layout"
  "test_bibd_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bibd_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
