# Empty dependencies file for test_bibd_layout.
# This may be replaced when dependencies are built.
