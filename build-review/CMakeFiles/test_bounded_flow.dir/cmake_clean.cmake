file(REMOVE_RECURSE
  "CMakeFiles/test_bounded_flow.dir/tests/test_bounded_flow.cpp.o"
  "CMakeFiles/test_bounded_flow.dir/tests/test_bounded_flow.cpp.o.d"
  "test_bounded_flow"
  "test_bounded_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bounded_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
