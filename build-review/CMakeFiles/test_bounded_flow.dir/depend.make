# Empty dependencies file for test_bounded_flow.
# This may be replaced when dependencies are built.
