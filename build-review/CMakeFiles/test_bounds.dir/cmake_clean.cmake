file(REMOVE_RECURSE
  "CMakeFiles/test_bounds.dir/tests/test_bounds.cpp.o"
  "CMakeFiles/test_bounds.dir/tests/test_bounds.cpp.o.d"
  "test_bounds"
  "test_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
