# Empty dependencies file for test_bounds.
# This may be replaced when dependencies are built.
