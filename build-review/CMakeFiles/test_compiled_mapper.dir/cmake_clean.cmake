file(REMOVE_RECURSE
  "CMakeFiles/test_compiled_mapper.dir/tests/test_compiled_mapper.cpp.o"
  "CMakeFiles/test_compiled_mapper.dir/tests/test_compiled_mapper.cpp.o.d"
  "test_compiled_mapper"
  "test_compiled_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiled_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
