# Empty dependencies file for test_compiled_mapper.
# This may be replaced when dependencies are built.
