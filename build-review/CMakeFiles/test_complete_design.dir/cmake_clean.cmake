file(REMOVE_RECURSE
  "CMakeFiles/test_complete_design.dir/tests/test_complete_design.cpp.o"
  "CMakeFiles/test_complete_design.dir/tests/test_complete_design.cpp.o.d"
  "test_complete_design"
  "test_complete_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_complete_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
