# Empty dependencies file for test_complete_design.
# This may be replaced when dependencies are built.
