file(REMOVE_RECURSE
  "CMakeFiles/test_datapath_concurrent.dir/tests/test_datapath_concurrent.cpp.o"
  "CMakeFiles/test_datapath_concurrent.dir/tests/test_datapath_concurrent.cpp.o.d"
  "test_datapath_concurrent"
  "test_datapath_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datapath_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
