# Empty dependencies file for test_datapath_concurrent.
# This may be replaced when dependencies are built.
