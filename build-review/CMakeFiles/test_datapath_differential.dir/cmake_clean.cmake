file(REMOVE_RECURSE
  "CMakeFiles/test_datapath_differential.dir/tests/test_datapath_differential.cpp.o"
  "CMakeFiles/test_datapath_differential.dir/tests/test_datapath_differential.cpp.o.d"
  "test_datapath_differential"
  "test_datapath_differential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datapath_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
