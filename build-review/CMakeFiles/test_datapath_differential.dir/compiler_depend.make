# Empty compiler generated dependencies file for test_datapath_differential.
# This may be replaced when dependencies are built.
