file(REMOVE_RECURSE
  "CMakeFiles/test_declustered_array.dir/tests/test_declustered_array.cpp.o"
  "CMakeFiles/test_declustered_array.dir/tests/test_declustered_array.cpp.o.d"
  "test_declustered_array"
  "test_declustered_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_declustered_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
