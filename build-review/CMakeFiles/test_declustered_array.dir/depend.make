# Empty dependencies file for test_declustered_array.
# This may be replaced when dependencies are built.
