file(REMOVE_RECURSE
  "CMakeFiles/test_dinic.dir/tests/test_dinic.cpp.o"
  "CMakeFiles/test_dinic.dir/tests/test_dinic.cpp.o.d"
  "test_dinic"
  "test_dinic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dinic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
