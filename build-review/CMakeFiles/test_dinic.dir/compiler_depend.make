# Empty compiler generated dependencies file for test_dinic.
# This may be replaced when dependencies are built.
