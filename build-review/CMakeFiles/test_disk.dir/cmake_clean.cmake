file(REMOVE_RECURSE
  "CMakeFiles/test_disk.dir/tests/test_disk.cpp.o"
  "CMakeFiles/test_disk.dir/tests/test_disk.cpp.o.d"
  "test_disk"
  "test_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
