# Empty compiler generated dependencies file for test_disk.
# This may be replaced when dependencies are built.
