file(REMOVE_RECURSE
  "CMakeFiles/test_disk_removal.dir/tests/test_disk_removal.cpp.o"
  "CMakeFiles/test_disk_removal.dir/tests/test_disk_removal.cpp.o.d"
  "test_disk_removal"
  "test_disk_removal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disk_removal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
