# Empty compiler generated dependencies file for test_disk_removal.
# This may be replaced when dependencies are built.
