file(REMOVE_RECURSE
  "CMakeFiles/test_event_queue.dir/tests/test_event_queue.cpp.o"
  "CMakeFiles/test_event_queue.dir/tests/test_event_queue.cpp.o.d"
  "test_event_queue"
  "test_event_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
