# Empty dependencies file for test_event_queue.
# This may be replaced when dependencies are built.
