file(REMOVE_RECURSE
  "CMakeFiles/test_fault_timeline.dir/tests/test_fault_timeline.cpp.o"
  "CMakeFiles/test_fault_timeline.dir/tests/test_fault_timeline.cpp.o.d"
  "test_fault_timeline"
  "test_fault_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
