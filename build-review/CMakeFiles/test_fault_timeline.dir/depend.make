# Empty dependencies file for test_fault_timeline.
# This may be replaced when dependencies are built.
