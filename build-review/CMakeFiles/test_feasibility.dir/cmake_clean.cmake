file(REMOVE_RECURSE
  "CMakeFiles/test_feasibility.dir/tests/test_feasibility.cpp.o"
  "CMakeFiles/test_feasibility.dir/tests/test_feasibility.cpp.o.d"
  "test_feasibility"
  "test_feasibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
