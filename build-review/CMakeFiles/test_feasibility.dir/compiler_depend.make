# Empty compiler generated dependencies file for test_feasibility.
# This may be replaced when dependencies are built.
