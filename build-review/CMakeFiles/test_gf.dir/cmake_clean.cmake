file(REMOVE_RECURSE
  "CMakeFiles/test_gf.dir/tests/test_gf.cpp.o"
  "CMakeFiles/test_gf.dir/tests/test_gf.cpp.o.d"
  "test_gf"
  "test_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
