# Empty compiler generated dependencies file for test_gf.
# This may be replaced when dependencies are built.
