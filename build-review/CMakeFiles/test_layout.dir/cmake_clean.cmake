file(REMOVE_RECURSE
  "CMakeFiles/test_layout.dir/tests/test_layout.cpp.o"
  "CMakeFiles/test_layout.dir/tests/test_layout.cpp.o.d"
  "test_layout"
  "test_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
