# Empty compiler generated dependencies file for test_layout.
# This may be replaced when dependencies are built.
