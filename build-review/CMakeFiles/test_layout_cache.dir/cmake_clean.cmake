file(REMOVE_RECURSE
  "CMakeFiles/test_layout_cache.dir/tests/test_layout_cache.cpp.o"
  "CMakeFiles/test_layout_cache.dir/tests/test_layout_cache.cpp.o.d"
  "test_layout_cache"
  "test_layout_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
