# Empty compiler generated dependencies file for test_layout_cache.
# This may be replaced when dependencies are built.
