file(REMOVE_RECURSE
  "CMakeFiles/test_layout_properties.dir/tests/test_layout_properties.cpp.o"
  "CMakeFiles/test_layout_properties.dir/tests/test_layout_properties.cpp.o.d"
  "test_layout_properties"
  "test_layout_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
