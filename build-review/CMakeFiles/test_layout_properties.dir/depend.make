# Empty dependencies file for test_layout_properties.
# This may be replaced when dependencies are built.
