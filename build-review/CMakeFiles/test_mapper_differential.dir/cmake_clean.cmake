file(REMOVE_RECURSE
  "CMakeFiles/test_mapper_differential.dir/tests/test_mapper_differential.cpp.o"
  "CMakeFiles/test_mapper_differential.dir/tests/test_mapper_differential.cpp.o.d"
  "test_mapper_differential"
  "test_mapper_differential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapper_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
