# Empty compiler generated dependencies file for test_mapper_differential.
# This may be replaced when dependencies are built.
