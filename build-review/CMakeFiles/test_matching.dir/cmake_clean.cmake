file(REMOVE_RECURSE
  "CMakeFiles/test_matching.dir/tests/test_matching.cpp.o"
  "CMakeFiles/test_matching.dir/tests/test_matching.cpp.o.d"
  "test_matching"
  "test_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
