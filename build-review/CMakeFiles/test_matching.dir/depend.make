# Empty dependencies file for test_matching.
# This may be replaced when dependencies are built.
