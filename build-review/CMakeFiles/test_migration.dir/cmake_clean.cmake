file(REMOVE_RECURSE
  "CMakeFiles/test_migration.dir/tests/test_migration.cpp.o"
  "CMakeFiles/test_migration.dir/tests/test_migration.cpp.o.d"
  "test_migration"
  "test_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
