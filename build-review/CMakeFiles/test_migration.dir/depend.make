# Empty dependencies file for test_migration.
# This may be replaced when dependencies are built.
