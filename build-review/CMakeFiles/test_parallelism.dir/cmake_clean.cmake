file(REMOVE_RECURSE
  "CMakeFiles/test_parallelism.dir/tests/test_parallelism.cpp.o"
  "CMakeFiles/test_parallelism.dir/tests/test_parallelism.cpp.o.d"
  "test_parallelism"
  "test_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
