# Empty dependencies file for test_parallelism.
# This may be replaced when dependencies are built.
