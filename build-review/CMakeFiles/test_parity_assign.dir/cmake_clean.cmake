file(REMOVE_RECURSE
  "CMakeFiles/test_parity_assign.dir/tests/test_parity_assign.cpp.o"
  "CMakeFiles/test_parity_assign.dir/tests/test_parity_assign.cpp.o.d"
  "test_parity_assign"
  "test_parity_assign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parity_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
