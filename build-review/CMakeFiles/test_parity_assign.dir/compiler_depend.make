# Empty compiler generated dependencies file for test_parity_assign.
# This may be replaced when dependencies are built.
