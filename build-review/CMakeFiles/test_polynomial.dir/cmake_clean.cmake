file(REMOVE_RECURSE
  "CMakeFiles/test_polynomial.dir/tests/test_polynomial.cpp.o"
  "CMakeFiles/test_polynomial.dir/tests/test_polynomial.cpp.o.d"
  "test_polynomial"
  "test_polynomial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_polynomial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
