# Empty dependencies file for test_polynomial.
# This may be replaced when dependencies are built.
