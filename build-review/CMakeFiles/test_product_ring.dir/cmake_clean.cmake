file(REMOVE_RECURSE
  "CMakeFiles/test_product_ring.dir/tests/test_product_ring.cpp.o"
  "CMakeFiles/test_product_ring.dir/tests/test_product_ring.cpp.o.d"
  "test_product_ring"
  "test_product_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_product_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
