# Empty compiler generated dependencies file for test_product_ring.
# This may be replaced when dependencies are built.
