file(REMOVE_RECURSE
  "CMakeFiles/test_raid.dir/tests/test_raid.cpp.o"
  "CMakeFiles/test_raid.dir/tests/test_raid.cpp.o.d"
  "test_raid"
  "test_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
