# Empty compiler generated dependencies file for test_raid.
# This may be replaced when dependencies are built.
