file(REMOVE_RECURSE
  "CMakeFiles/test_randomized.dir/tests/test_randomized.cpp.o"
  "CMakeFiles/test_randomized.dir/tests/test_randomized.cpp.o.d"
  "test_randomized"
  "test_randomized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_randomized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
