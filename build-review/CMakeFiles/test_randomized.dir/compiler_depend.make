# Empty compiler generated dependencies file for test_randomized.
# This may be replaced when dependencies are built.
