file(REMOVE_RECURSE
  "CMakeFiles/test_reconstruction.dir/tests/test_reconstruction.cpp.o"
  "CMakeFiles/test_reconstruction.dir/tests/test_reconstruction.cpp.o.d"
  "test_reconstruction"
  "test_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
