# Empty compiler generated dependencies file for test_reconstruction.
# This may be replaced when dependencies are built.
