file(REMOVE_RECURSE
  "CMakeFiles/test_reduced_design.dir/tests/test_reduced_design.cpp.o"
  "CMakeFiles/test_reduced_design.dir/tests/test_reduced_design.cpp.o.d"
  "test_reduced_design"
  "test_reduced_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reduced_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
