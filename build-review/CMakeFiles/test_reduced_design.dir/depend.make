# Empty dependencies file for test_reduced_design.
# This may be replaced when dependencies are built.
