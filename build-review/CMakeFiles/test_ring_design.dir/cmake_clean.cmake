file(REMOVE_RECURSE
  "CMakeFiles/test_ring_design.dir/tests/test_ring_design.cpp.o"
  "CMakeFiles/test_ring_design.dir/tests/test_ring_design.cpp.o.d"
  "test_ring_design"
  "test_ring_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ring_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
