# Empty dependencies file for test_ring_design.
# This may be replaced when dependencies are built.
