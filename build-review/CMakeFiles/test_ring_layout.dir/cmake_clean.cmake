file(REMOVE_RECURSE
  "CMakeFiles/test_ring_layout.dir/tests/test_ring_layout.cpp.o"
  "CMakeFiles/test_ring_layout.dir/tests/test_ring_layout.cpp.o.d"
  "test_ring_layout"
  "test_ring_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ring_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
