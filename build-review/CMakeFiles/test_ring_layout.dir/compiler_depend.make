# Empty compiler generated dependencies file for test_ring_layout.
# This may be replaced when dependencies are built.
