file(REMOVE_RECURSE
  "CMakeFiles/test_serialize.dir/tests/test_serialize.cpp.o"
  "CMakeFiles/test_serialize.dir/tests/test_serialize.cpp.o.d"
  "test_serialize"
  "test_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
