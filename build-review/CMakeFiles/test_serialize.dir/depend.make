# Empty dependencies file for test_serialize.
# This may be replaced when dependencies are built.
