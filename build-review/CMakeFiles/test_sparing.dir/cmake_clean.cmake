file(REMOVE_RECURSE
  "CMakeFiles/test_sparing.dir/tests/test_sparing.cpp.o"
  "CMakeFiles/test_sparing.dir/tests/test_sparing.cpp.o.d"
  "test_sparing"
  "test_sparing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
