# Empty compiler generated dependencies file for test_sparing.
# This may be replaced when dependencies are built.
