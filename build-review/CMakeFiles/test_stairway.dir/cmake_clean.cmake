file(REMOVE_RECURSE
  "CMakeFiles/test_stairway.dir/tests/test_stairway.cpp.o"
  "CMakeFiles/test_stairway.dir/tests/test_stairway.cpp.o.d"
  "test_stairway"
  "test_stairway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stairway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
