# Empty dependencies file for test_stairway.
# This may be replaced when dependencies are built.
