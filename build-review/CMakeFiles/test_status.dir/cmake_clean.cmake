file(REMOVE_RECURSE
  "CMakeFiles/test_status.dir/tests/test_status.cpp.o"
  "CMakeFiles/test_status.dir/tests/test_status.cpp.o.d"
  "test_status"
  "test_status.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_status.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
