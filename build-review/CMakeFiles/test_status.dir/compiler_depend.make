# Empty compiler generated dependencies file for test_status.
# This may be replaced when dependencies are built.
