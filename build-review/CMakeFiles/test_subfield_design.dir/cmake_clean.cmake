file(REMOVE_RECURSE
  "CMakeFiles/test_subfield_design.dir/tests/test_subfield_design.cpp.o"
  "CMakeFiles/test_subfield_design.dir/tests/test_subfield_design.cpp.o.d"
  "test_subfield_design"
  "test_subfield_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subfield_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
