# Empty dependencies file for test_subfield_design.
# This may be replaced when dependencies are built.
