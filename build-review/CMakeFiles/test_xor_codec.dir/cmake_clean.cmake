file(REMOVE_RECURSE
  "CMakeFiles/test_xor_codec.dir/tests/test_xor_codec.cpp.o"
  "CMakeFiles/test_xor_codec.dir/tests/test_xor_codec.cpp.o.d"
  "test_xor_codec"
  "test_xor_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xor_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
