# Empty dependencies file for test_xor_codec.
# This may be replaced when dependencies are built.
