file(REMOVE_RECURSE
  "CMakeFiles/test_xor_codec_properties.dir/tests/test_xor_codec_properties.cpp.o"
  "CMakeFiles/test_xor_codec_properties.dir/tests/test_xor_codec_properties.cpp.o.d"
  "test_xor_codec_properties"
  "test_xor_codec_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xor_codec_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
