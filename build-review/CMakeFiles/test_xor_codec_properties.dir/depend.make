# Empty dependencies file for test_xor_codec_properties.
# This may be replaced when dependencies are built.
