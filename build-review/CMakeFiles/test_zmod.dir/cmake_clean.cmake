file(REMOVE_RECURSE
  "CMakeFiles/test_zmod.dir/tests/test_zmod.cpp.o"
  "CMakeFiles/test_zmod.dir/tests/test_zmod.cpp.o.d"
  "test_zmod"
  "test_zmod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zmod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
