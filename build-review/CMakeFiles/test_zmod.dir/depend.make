# Empty dependencies file for test_zmod.
# This may be replaced when dependencies are built.
