// Array designer: sweep the stripe size k for a fixed array of v disks and
// tabulate the trade-off the paper's introduction describes -- parity
// capacity overhead (1/k) against reconstruction read fraction
// ((k-1)/(v-1)) against mapping-table size.
//
//   $ ./array_designer [v]        (default: v = 25)

#include <cstdio>
#include <cstdlib>

#include "core/pdl.hpp"

int main(int argc, char** argv) {
  using namespace pdl;
  const std::uint32_t v = argc > 1 ? std::atoi(argv[1]) : 25;
  if (v < 3) {
    std::fprintf(stderr, "need v >= 3\n");
    return 1;
  }

  std::printf("stripe-size trade-off for a %u-disk array "
              "(budget %llu units/disk):\n\n",
              v, static_cast<unsigned long long>(layout::kDefaultUnitBudget));
  std::printf("%-4s %-30s %-8s %-10s %-10s %-10s\n", "k", "construction",
              "size", "overhead", "recon", "table KiB");
  std::printf("------------------------------------------------------------"
              "--------------\n");

  for (std::uint32_t k = 2; k <= v; ++k) {
    const auto array = api::Array::create({.num_disks = v, .stripe_size = k});
    if (!array.ok()) {
      std::printf("%-4u (%s)\n", k, array.status().to_string().c_str());
      continue;
    }
    std::printf("%-4u %-30s %-8u %-10.4f %-10.4f %-10.1f\n", k,
                construction_name(array->construction()).c_str(),
                array->metrics().units_per_disk,
                array->metrics().max_parity_overhead,
                array->metrics().max_recon_workload,
                array->table_bytes() / 1024.0);
  }
  std::printf("\nsmall k: cheap rebuilds, more capacity spent on parity.\n");
  std::printf("large k: less parity overhead, rebuilds touch more of every "
              "disk.\n");
  return 0;
}
