// Byte-exact recovery end to end: write real data through the declustered
// layout, kill a disk, read every block back through survivor XOR, rebuild
// onto a replacement, and prove the bytes (and the disk image itself) came
// back identical.
//
//   $ ./datapath_demo

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/array.hpp"
#include "io/stripe_store.hpp"
#include "io/workload_driver.hpp"

using namespace pdl;

int main() {
  // 17 disks, stripes of 5 (4 data + parity), best-ranked construction.
  auto array = api::Array::create({.num_disks = 17, .stripe_size = 5});
  if (!array.ok()) {
    std::fprintf(stderr, "create: %s\n", array.status().to_string().c_str());
    return 1;
  }
  auto store = io::StripeStore::create(std::move(array).value(),
                                       {.unit_bytes = 4096, .iterations = 2});
  if (!store.ok()) {
    std::fprintf(stderr, "store: %s\n", store.status().to_string().c_str());
    return 1;
  }
  std::printf("array: %s\n", store->array().description().c_str());
  std::printf("store: %llu logical units x %u bytes over %u disks\n\n",
              static_cast<unsigned long long>(store->num_logical_units()),
              store->unit_bytes(), store->array().num_disks());

  // 1. Write a recognizable message into every logical unit.
  std::vector<std::uint8_t> block(store->unit_bytes());
  for (std::uint64_t logical = 0; logical < store->num_logical_units();
       ++logical) {
    const std::string text =
        "logical unit " + std::to_string(logical) + " says hello";
    std::memset(block.data(), 0, block.size());
    std::memcpy(block.data(), text.data(), text.size());
    if (!store->write(logical, block).ok()) return 1;
  }
  const std::uint64_t disk3_before = store->checksum_disk(3);
  std::printf("wrote %llu units; disk 3 checksum %016llx\n",
              static_cast<unsigned long long>(store->num_logical_units()),
              static_cast<unsigned long long>(disk3_before));

  // 2. Kill disk 3 (its platters are physically poisoned).
  if (!store->fail_disk(3).ok()) return 1;
  std::printf("disk 3 failed: %llu units lost, checksum now %016llx\n",
              static_cast<unsigned long long>(store->array().lost_units()),
              static_cast<unsigned long long>(store->checksum_disk(3)));

  // 3. Every unit still reads back -- lost ones via survivor XOR.
  std::uint64_t degraded = 0, bad = 0;
  for (std::uint64_t logical = 0; logical < store->num_logical_units();
       ++logical) {
    io::ReadReceipt receipt;
    if (!store->read(logical, block, &receipt).ok()) return 1;
    if (receipt.kind == api::ReadPlan::Kind::kDegraded) ++degraded;
    const std::string expect =
        "logical unit " + std::to_string(logical) + " says hello";
    if (std::memcmp(block.data(), expect.data(), expect.size()) != 0) ++bad;
  }
  std::printf("degraded sweep: %llu reconstructed reads, %llu mismatches\n",
              static_cast<unsigned long long>(degraded),
              static_cast<unsigned long long>(bad));

  // 4. Attach a replacement and rebuild it from survivor bytes.
  if (!store->replace_disk(3).ok()) return 1;
  const auto outcome = store->rebuild();
  if (!outcome.ok()) return 1;
  const std::uint64_t disk3_after = store->checksum_disk(3);
  std::printf("rebuild: %llu stripes repaired; disk 3 checksum %016llx (%s)\n",
              static_cast<unsigned long long>(outcome->applied),
              static_cast<unsigned long long>(disk3_after),
              disk3_after == disk3_before ? "identical" : "DIFFERENT");

  std::printf("array healthy again: %s\n",
              store->array().healthy() ? "yes" : "no");
  return disk3_after == disk3_before && bad == 0 &&
                 store->array().healthy()
             ? 0
             : 1;
}
