// Byte-exact recovery end to end, across storage substrates:
//
//   act 1 (memory)  -- write real data through the declustered layout,
//                      kill a disk, read every block back through
//                      survivor XOR, rebuild onto a replacement, and
//                      prove the bytes (and the disk image itself) came
//                      back identical;
//   act 2 (file)    -- the same store over one image file per disk:
//                      write, sync, tear the whole process state down,
//                      REOPEN the directory with a fresh store, and only
//                      then fail + rebuild -- recovery works across
//                      restarts because parity persisted with the data;
//   act 3 (faults)  -- a fault-injection decorator drips transient I/O
//                      errors into the same workload, demonstrating that
//                      substrate failures surface as typed kIoError
//                      Statuses, not corruption;
//   act 4 (RS P+Q)  -- the same store over the GF(2^8) Reed-Solomon
//                      codec: kill TWO disks at once, read every block
//                      back through double-erasure decodes, rebuild both
//                      replacements, and prove both disk images came
//                      back checksum-identical.
//
//   $ ./datapath_demo

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "api/array.hpp"
#include "io/disk_backend.hpp"
#include "io/stripe_store.hpp"
#include "io/workload_driver.hpp"

using namespace pdl;

namespace {

// 17 disks, stripes of 5 (4 data + parity), best-ranked construction.
constexpr std::uint32_t kDisks = 17;
constexpr std::uint32_t kStripe = 5;

Result<io::StripeStore> make_store(
    std::unique_ptr<io::DiskBackend> backend,
    core::CodecKind codec = core::CodecKind::kXorParity) {
  auto array = api::Array::create({.num_disks = kDisks, .stripe_size = kStripe},
                                  {}, {.codec = codec});
  if (!array.ok()) return array.status();
  return io::StripeStore::create(std::move(array).value(),
                                 {.unit_bytes = 4096, .iterations = 2},
                                 std::move(backend));
}

void message_fill(std::uint64_t logical, std::vector<std::uint8_t>& block) {
  const std::string text =
      "logical unit " + std::to_string(logical) + " says hello";
  std::memset(block.data(), 0, block.size());
  std::memcpy(block.data(), text.data(), text.size());
}

bool message_check(std::uint64_t logical,
                   const std::vector<std::uint8_t>& block) {
  const std::string expect =
      "logical unit " + std::to_string(logical) + " says hello";
  return std::memcmp(block.data(), expect.data(), expect.size()) == 0;
}

/// Write every unit, kill `victim`, verify degraded reads, rebuild, and
/// verify the disk image came back identical.  Shared by acts 1 and 2
/// (act 2 skips the fill when reopening an already-written directory).
bool exercise(io::StripeStore& store, layout::DiskId victim, bool fill) {
  std::vector<std::uint8_t> block(store.unit_bytes());

  if (fill) {
    for (std::uint64_t logical = 0; logical < store.num_logical_units();
         ++logical) {
      message_fill(logical, block);
      if (!store.write(logical, block).ok()) return false;
    }
  }
  const auto before = store.checksum_disk(victim);
  if (!before.ok()) return false;
  std::printf("  %llu units hold data; disk %u checksum %016llx\n",
              static_cast<unsigned long long>(store.num_logical_units()),
              victim, static_cast<unsigned long long>(*before));

  if (!store.fail_disk(victim).ok()) return false;
  std::printf("  disk %u failed: %llu units lost, platters poisoned\n",
              victim,
              static_cast<unsigned long long>(store.array().lost_units()));

  std::uint64_t degraded = 0, bad = 0;
  for (std::uint64_t logical = 0; logical < store.num_logical_units();
       ++logical) {
    io::ReadReceipt receipt;
    if (!store.read(logical, block, &receipt).ok()) return false;
    if (receipt.kind == api::ReadPlan::Kind::kDegraded) ++degraded;
    if (!message_check(logical, block)) ++bad;
  }
  std::printf("  degraded sweep: %llu reconstructed reads, %llu mismatches\n",
              static_cast<unsigned long long>(degraded),
              static_cast<unsigned long long>(bad));
  if (bad != 0) return false;

  if (!store.replace_disk(victim).ok()) return false;
  const auto outcome = store.rebuild();
  if (!outcome.ok()) return false;
  const auto after = store.checksum_disk(victim);
  if (!after.ok()) return false;
  std::printf("  rebuild: %llu stripes repaired; disk %u checksum %016llx (%s)\n",
              static_cast<unsigned long long>(outcome->applied), victim,
              static_cast<unsigned long long>(*after),
              *after == *before ? "identical" : "DIFFERENT");
  return *after == *before && store.array().healthy();
}

}  // namespace

int main() {
  // ------------------------------------------------------- act 1: memory
  std::printf("act 1: in-memory backend (zero-copy serving)\n");
  auto mem_store = make_store(io::make_memory_backend());
  if (!mem_store.ok()) {
    std::fprintf(stderr, "store: %s\n", mem_store.status().to_string().c_str());
    return 1;
  }
  std::printf("  array: %s\n  backend: %s\n",
              mem_store->array().description().c_str(),
              std::string(mem_store->backend().name()).c_str());
  if (!exercise(*mem_store, 3, /*fill=*/true)) return 1;

  // ------------------------------------------- act 2: file-backed reopen
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("pdl_datapath_demo_" +
       std::to_string(static_cast<unsigned long>(::getpid())));
  std::printf("\nact 2: file backend with close + reopen (%s)\n",
              dir.string().c_str());
  {
    auto file_store =
        make_store(io::make_file_backend({.directory = dir.string()}));
    if (!file_store.ok()) {
      std::fprintf(stderr, "store: %s\n",
                   file_store.status().to_string().c_str());
      return 1;
    }
    std::vector<std::uint8_t> block(file_store->unit_bytes());
    for (std::uint64_t logical = 0;
         logical < file_store->num_logical_units(); ++logical) {
      message_fill(logical, block);
      if (!file_store->write(logical, block).ok()) return 1;
    }
    if (!file_store->sync().ok()) return 1;
    std::printf("  wrote %llu units through pwrite, synced, closing store\n",
                static_cast<unsigned long long>(
                    file_store->num_logical_units()));
  }  // store destroyed: descriptors closed, nothing survives but the files
  {
    auto reopened =
        make_store(io::make_file_backend({.directory = dir.string()}));
    if (!reopened.ok()) {
      std::fprintf(stderr, "reopen: %s\n",
                   reopened.status().to_string().c_str());
      return 1;
    }
    std::printf("  reopened the directory with a brand-new store\n");
    if (!exercise(*reopened, 3, /*fill=*/false)) return 1;
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  // ------------------------------------------- act 3: injected I/O faults
  std::printf("\nact 3: fault-injection decorator (transient I/O errors)\n");
  auto flaky_store = make_store(io::make_fault_injection_backend(
      io::make_memory_backend(), {.seed = 7,
                                  .read_error_probability = 0.02,
                                  .write_error_probability = 0.02}));
  if (!flaky_store.ok()) {
    std::fprintf(stderr, "store: %s\n",
                 flaky_store.status().to_string().c_str());
    return 1;
  }
  std::vector<std::uint8_t> block(flaky_store->unit_bytes());
  std::uint64_t served = 0, io_errors = 0, write_gave_up = 0, torn = 0,
                other = 0;
  for (std::uint64_t logical = 0; logical < flaky_store->num_logical_units();
       ++logical) {
    message_fill(logical, block);
    Status written = flaky_store->write(logical, block);
    for (int retry = 0;
         retry < 4 && (written.code() == StatusCode::kIoError ||
                       written.code() == StatusCode::kParityInconsistent);
         ++retry) {
      // kIoError is transient; kParityInconsistent means a partial write
      // AND its compensation both faulted -- the stripe is marked torn,
      // and rewriting the unit heals it with a full parity re-encode.
      if (written.code() == StatusCode::kParityInconsistent) ++torn;
      written = flaky_store->write(logical, block);
    }
    if (written.code() == StatusCode::kIoError ||
        written.code() == StatusCode::kParityInconsistent) {
      ++write_gave_up;  // still the typed, expected code -- just unlucky
    } else if (!written.ok()) {
      ++other;
    }
  }
  for (std::uint64_t logical = 0; logical < flaky_store->num_logical_units();
       ++logical) {
    const Status read = flaky_store->read(logical, block);
    if (read.ok()) {
      ++served;
    } else if (read.code() == StatusCode::kIoError) {
      ++io_errors;  // typed, retryable, no corruption
    } else {
      ++other;
    }
  }
  std::printf(
      "  read sweep under 2%% fault rate: %llu served, %llu typed kIoError, "
      "%llu torn stripes healed by rewrite, %llu writes exhausted retries, "
      "%llu other\n",
      static_cast<unsigned long long>(served),
      static_cast<unsigned long long>(io_errors),
      static_cast<unsigned long long>(torn),
      static_cast<unsigned long long>(write_gave_up),
      static_cast<unsigned long long>(other));
  if (other != 0) return 1;  // only NON-typed errors fail the act

  // ------------------------------- act 4: Reed-Solomon, two disks at once
  std::printf("\nact 4: GF(2^8) Reed-Solomon P+Q (two concurrent failures)\n");
  auto rs_store = make_store(io::make_memory_backend(),
                             core::CodecKind::kReedSolomonPQ);
  if (!rs_store.ok()) {
    std::fprintf(stderr, "store: %s\n", rs_store.status().to_string().c_str());
    return 1;
  }
  std::printf("  array: %s\n", rs_store->array().description().c_str());
  {
    std::vector<std::uint8_t> rs_block(rs_store->unit_bytes());
    for (std::uint64_t logical = 0; logical < rs_store->num_logical_units();
         ++logical) {
      message_fill(logical, rs_block);
      if (!rs_store->write(logical, rs_block).ok()) return 1;
    }
    const layout::DiskId victims[2] = {3, 11};
    std::uint64_t before[2];
    for (int i = 0; i < 2; ++i) {
      const auto sum = rs_store->checksum_disk(victims[i]);
      if (!sum.ok()) return 1;
      before[i] = *sum;
      if (!rs_store->fail_disk(victims[i]).ok()) return 1;
    }
    if (rs_store->array().data_loss()) return 1;
    std::printf("  disks %u and %u failed together: %llu units lost, "
                "no data loss declared\n",
                victims[0], victims[1],
                static_cast<unsigned long long>(
                    rs_store->array().lost_units()));

    std::uint64_t degraded = 0, bad = 0;
    for (std::uint64_t logical = 0; logical < rs_store->num_logical_units();
         ++logical) {
      io::ReadReceipt receipt;
      if (!rs_store->read(logical, rs_block, &receipt).ok()) return 1;
      if (receipt.kind == api::ReadPlan::Kind::kDegraded) ++degraded;
      if (!message_check(logical, rs_block)) ++bad;
    }
    std::printf("  double-degraded sweep: %llu decoded reads, "
                "%llu mismatches\n",
                static_cast<unsigned long long>(degraded),
                static_cast<unsigned long long>(bad));
    if (bad != 0) return 1;

    for (int i = 0; i < 2; ++i)
      if (!rs_store->replace_disk(victims[i]).ok()) return 1;
    const auto outcome = rs_store->rebuild();
    if (!outcome.ok()) return 1;
    for (int i = 0; i < 2; ++i) {
      const auto after = rs_store->checksum_disk(victims[i]);
      if (!after.ok()) return 1;
      std::printf("  rebuild: disk %u checksum %016llx (%s)\n", victims[i],
                  static_cast<unsigned long long>(*after),
                  *after == before[i] ? "identical" : "DIFFERENT");
      if (*after != before[i]) return 1;
    }
    if (!rs_store->array().healthy()) return 1;
  }

  std::printf("\nall acts passed\n");
  return 0;
}
