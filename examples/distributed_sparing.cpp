// Distributed sparing demo (the paper's Section 5 direction): reserve one
// spare unit per stripe, balanced across disks by the same network-flow
// machinery as parity, and rebuild a failed disk into the spares -- no
// dedicated spare disk, declustered rebuild writes.
//
//   $ ./distributed_sparing [v] [k]   (defaults: v = 17, k = 4)

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/pdl.hpp"

int main(int argc, char** argv) {
  using namespace pdl;
  const std::uint32_t v = argc > 1 ? std::atoi(argv[1]) : 17;
  const std::uint32_t k = argc > 2 ? std::atoi(argv[2]) : 4;
  if (!design::ring_design_exists(v, k)) {
    std::fprintf(stderr, "need k <= M(v); try a prime-power v\n");
    return 1;
  }

  const auto base = layout::ring_based_layout(v, k);
  const auto spared = layout::add_distributed_sparing(base);

  const auto spares = spared.spares_per_disk();
  const auto [lo, hi] = std::minmax_element(spares.begin(), spares.end());
  std::printf("array: v=%u, k=%u, %u units/disk\n", v, k,
              base.units_per_disk());
  std::printf("spares per disk: %u..%u (balanced by the generalized "
              "Theorem 14 flow)\n",
              *lo, *hi);

  const layout::DiskId failed = 0;
  const auto writes = layout::distributed_rebuild_writes(spared, failed);
  const auto max_w = *std::max_element(writes.begin(), writes.end());
  std::printf("\nafter disk %u fails, rebuild writes per survivor: max %u "
              "(dedicated spare would take all %u)\n",
              failed, max_w, base.units_per_disk());

  const sim::ArraySimulator simulator(
      base, sim::ArrayConfig{.disk = {}, .rebuild_depth = 4,
                             .iterations = 1});
  const auto distributed =
      simulator.run_rebuild_distributed({}, failed, spared.spare_pos);
  const auto dedicated = simulator.run_rebuild({}, failed);
  std::printf("\nsimulated rebuild: distributed %.0f ms vs dedicated spare "
              "%.0f ms\n",
              distributed.rebuild_ms, dedicated.rebuild_ms);
  std::printf("(and the distributed array has no idle spare disk burning a "
              "slot)\n");
  return 0;
}
