// Distributed sparing demo (the paper's Section 5 direction): reserve one
// spare unit per stripe, balanced across disks by the same network-flow
// machinery as parity, and rebuild a failed disk into the spares -- no
// dedicated spare disk, declustered rebuild writes.  Everything runs
// through the pdl::api::Array front door and its online failure/rebuild
// state machine.
//
//   $ ./distributed_sparing [v] [k]   (defaults: v = 17, k = 4)

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/pdl.hpp"

int main(int argc, char** argv) {
  using namespace pdl;
  const std::uint32_t v = argc > 1 ? std::atoi(argv[1]) : 17;
  const std::uint32_t k = argc > 2 ? std::atoi(argv[2]) : 4;

  auto array = api::Array::create({.num_disks = v, .stripe_size = k}, {},
                                  {.sparing = api::SparingMode::kDistributed});
  if (!array.ok()) {
    std::fprintf(stderr, "cannot build spared array: %s\n",
                 array.status().to_string().c_str());
    return 1;
  }

  const layout::SparedLayout& spared = *array->spared_layout();
  const auto spares = spared.spares_per_disk();
  const auto [lo, hi] = std::minmax_element(spares.begin(), spares.end());
  std::printf("array: %s, v=%u, k=%u, %u units/disk\n",
              construction_name(array->construction()).c_str(), v, k,
              array->units_per_disk());
  std::printf("spares per disk: %u..%u (balanced by the generalized "
              "Theorem 14 flow)\n",
              *lo, *hi);

  // Fail a disk and plan the rebuild through the state machine: every
  // lost unit targets its own stripe's spare on a surviving disk.
  const layout::DiskId failed = 0;
  (void)array->fail_disk(failed);
  const auto plan = array->plan_rebuild();
  std::uint32_t max_writes = 0;
  for (std::uint32_t d = 0; d < v; ++d)
    if (d != failed)
      max_writes = std::max(max_writes, plan->writes_per_disk[d]);
  std::printf("\nafter disk %u fails, rebuild writes per survivor: max %u "
              "(dedicated spare would take all %u)\n",
              failed, max_writes, array->units_per_disk());

  const auto outcome = array->rebuild();
  std::printf("rebuilt %llu stripes into distributed spares without a "
              "replacement disk (%llu blocked)\n",
              static_cast<unsigned long long>(outcome->applied),
              static_cast<unsigned long long>(outcome->blocked));

  // Timing on the event-driven simulator: distributed vs dedicated spare.
  const sim::ArraySimulator simulator(
      spared.layout, sim::ArrayConfig{.disk = {}, .rebuild_depth = 4,
                                      .iterations = 1});
  const auto distributed =
      simulator.run_rebuild_distributed({}, failed, spared.spare_pos);
  const auto dedicated = simulator.run_rebuild({}, failed);
  std::printf("\nsimulated rebuild: distributed %.0f ms vs dedicated spare "
              "%.0f ms\n",
              distributed.rebuild_ms, dedicated.rebuild_ms);
  std::printf("(and the distributed array has no idle spare disk burning a "
              "slot)\n");
  return 0;
}
