// Fault storm walkthrough: inject a sequence of disk failures -- the
// second one arriving while the first rebuild is still running -- and
// watch the array move through its service phases, under both
// dedicated-replacement and distributed-sparing rebuilds.  Layouts come
// from the engine cache, so both simulators share one derivation.
//
//   $ ./fault_storm [v] [k] [scheduler]
//     (defaults: v = 17, k = 5, fifo; schedulers: fifo, max-parallelism,
//      throttled)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pdl.hpp"

namespace {

using namespace pdl;

void report(const char* mode, const sim::ScenarioResult& result) {
  std::printf("%s rebuild:\n", mode);
  std::printf("  %-11s %9s %9s %7s %10s %11s\n", "phase", "start", "end",
              "reads", "mean ms", "max util");
  for (const sim::PhaseRecord& phase : result.phases) {
    sim::SampleStats reads = phase.user.read_latency_ms;
    std::printf("  %-11s %9.0f %9.0f %7zu %10.1f %10.0f%%\n",
                std::string(sim::phase_name(phase.phase)).c_str(),
                phase.start_ms, phase.end_ms, reads.count(), reads.mean(),
                100.0 * phase.max_disk_utilization());
  }
  for (const sim::ScenarioEvent& event : result.events) {
    std::printf("  t=%7.0f  %-15s disk %u\n", event.time_ms,
                std::string(sim::event_kind_name(event.kind)).c_str(),
                event.disk);
  }
  if (result.data_loss) {
    std::printf("  DATA LOSS at t=%.0f: %llu stripe instance(s) lost two "
                "units; %llu request(s) unserved\n",
                result.first_data_loss_ms,
                static_cast<unsigned long long>(result.stripe_instances_lost),
                static_cast<unsigned long long>(result.unserved_reads +
                                                result.unserved_writes));
  } else {
    std::printf("  no data loss: every lost unit was rebuilt in time\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t v = argc > 1 ? std::atoi(argv[1]) : 17;
  const std::uint32_t k = argc > 2 ? std::atoi(argv[2]) : 5;
  const std::string policy = argc > 3 ? argv[3] : "fifo";
  if (v < 3 || k < 2 || k > v) {
    std::fprintf(stderr, "need 3 <= v and 2 <= k <= v\n");
    return 1;
  }
  bool known_policy = false;
  for (const std::string_view name : sim::scheduler_names())
    known_policy = known_policy || name == policy;
  if (!known_policy) {
    std::fprintf(stderr,
                 "unknown scheduler '%s' (fifo, max-parallelism, throttled)\n",
                 policy.c_str());
    return 1;
  }

  // Two arrays over one cached layout derivation: dedicated-replacement
  // and distributed-sparing rebuild modes.
  const core::ArraySpec spec{.num_disks = v, .stripe_size = k};
  const auto dedicated_array = api::Array::create(spec);
  const auto spared_array = api::Array::create(
      spec, {}, {.sparing = api::SparingMode::kDistributed});
  if (!dedicated_array.ok() || !spared_array.ok()) {
    std::fprintf(stderr, "no declustered layout for v=%u k=%u: %s\n", v, k,
                 (dedicated_array.ok() ? spared_array : dedicated_array)
                     .status().to_string().c_str());
    return 1;
  }

  const sim::ScenarioConfig config{
      .disk = {}, .rebuild_depth = 4, .iterations = 1,
      .rebuild_delay_ms = 100.0};
  const sim::ScenarioSimulator dedicated(*dedicated_array, config);
  const sim::ScenarioSimulator distributed(*spared_array, config);
  const auto scheduler = sim::make_scheduler(policy);

  // Place the second failure halfway through the first rebuild.
  const auto probe = dedicated.run(
      sim::FaultTimeline::scripted({{400.0, 0}}), {}, *scheduler);
  const double mid = 400.0 + 0.5 * (probe.rebuilds[0].end_ms - 400.0);
  const auto timeline =
      sim::FaultTimeline::scripted({{400.0, 0}, {mid, v / 2}});

  const sim::WorkloadConfig wconfig{
      .arrival_per_ms = 0.05,
      .write_fraction = 0.3,
      .working_set = dedicated.working_set(),
      .duration_ms = 6000.0,
      .seed = 17};

  std::printf("fault storm on %s (v=%u k=%u s=%u), %s scheduler:\n"
              "disk 0 fails at t=400, disk %u fails mid-rebuild at t=%.0f\n\n",
              construction_name(dedicated_array->construction()).c_str(), v,
              k, dedicated_array->units_per_disk(), policy.c_str(), v / 2,
              mid);

  report("dedicated-replacement",
         dedicated.run(timeline, sim::generate_workload(wconfig),
                       *scheduler));

  auto spared_wconfig = wconfig;
  spared_wconfig.working_set = distributed.working_set();
  report("distributed-sparing",
         distributed.run(timeline, sim::generate_workload(spared_wconfig),
                         *scheduler));

  const auto stats = engine::Engine::global().cache().stats();
  std::printf("engine cache: %llu hits, %llu misses (layout derived once, "
              "reused across scenario runs)\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));
  return 0;
}
