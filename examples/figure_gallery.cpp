// Figure gallery: regenerates the paper's illustrative figures as ASCII.
//   Figure 2 -- parity-declustered layout for v=4, k=3
//   Figure 3 -- Holland-Gibson BIBD-based layout for v=4, k=3
//   Figures 4/5 -- small stairway transformations (piece maps)
//
//   $ ./figure_gallery

#include <cstdio>

#include "core/pdl.hpp"

int main() {
  using namespace pdl;

  std::printf("--- Figure 2: parity-declustered layout, v=4, k=3 ---\n");
  const auto d43 = design::make_complete_design(4, 3);
  std::printf("%s\n",
              layout::render_layout(layout::flow_balanced_layout(d43, 1))
                  .c_str());

  std::printf("--- Figure 3: BIBD-based (Holland-Gibson) layout, v=4, k=3 "
              "---\n");
  std::printf("%s\n",
              layout::render_layout(layout::holland_gibson_layout(d43))
                  .c_str());

  std::printf("--- Figure 4 (shape): stairway q=4 -> v=5, k=3 ---\n");
  const auto plan45 = layout::plan_stairway_perfect_parity(4, 5, 3);
  if (plan45) {
    const auto l = layout::build_stairway_layout(
        design::make_ring_design(4, 3), *plan45);
    std::printf("c=%u copies, steps of width %u; size %u units/disk\n",
                plan45->copies, plan45->width, l.units_per_disk());
    const auto m = layout::compute_metrics(l);
    std::printf("%s\n\n", m.to_string().c_str());
  }

  std::printf("--- Figure 5 (shape): stairway q=8 -> v=10, k=3 "
              "(W=2 divides v) ---\n");
  if (const auto plan = layout::plan_stairway_perfect_parity(8, 10, 3)) {
    const auto l = layout::build_stairway_layout(
        design::make_ring_design(8, 3), *plan);
    const auto m = layout::compute_metrics(l);
    std::printf("c=%u, w=%u; %s\n\n", plan->copies, plan->wide_steps,
                m.to_string().c_str());
  }

  std::printf("--- Figure 6 (shape): stairway with wide steps, q=9 -> v=13, "
              "k=4 ---\n");
  if (const auto plan = layout::plan_stairway(9, 13, 4)) {
    const auto l = layout::build_stairway_layout(
        design::make_ring_design(9, 4), *plan);
    const auto m = layout::compute_metrics(l);
    std::printf("c=%u, w=%u wide steps (overlap resolved by Thm 8 "
                "removals); %s\n",
                plan->copies, plan->wide_steps, m.to_string().c_str());
  }
  return 0;
}
