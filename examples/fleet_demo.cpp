// Many arrays behind one front door, end to end:
//
//   act 1 (routing)   -- three heterogeneous shards (XOR next to
//                        Reed-Solomon, different geometries) fused into
//                        one block space; write real data through the
//                        fleet and show where the shard map routes it;
//   act 2 (governed rebuild) -- kill a disk inside one shard, read
//                        through survivors fleet-wide, then rebuild
//                        under a rate-limited RebuildGovernor and show
//                        what the budget cost;
//   act 3 (online expansion) -- attach a fourth shard while serving,
//                        migrate a block range onto it with writes
//                        landing mid-copy (dirty chunks re-staged), and
//                        cut over only after source and target prove
//                        checksum-identical;
//   act 4 (persistence) -- serialize the fleet (shard map + array
//                        headers), reopen it from the text, and show
//                        the routing survived.
//
//   $ ./fleet_demo

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/array.hpp"
#include "fleet/fleet.hpp"
#include "fleet/governor.hpp"

using namespace pdl;

namespace {

constexpr std::uint32_t kBlockBytes = 512;

fleet::ShardSpec make_shard(std::uint32_t v, std::uint32_t k,
                            core::CodecKind codec, std::uint32_t iterations) {
  auto array = api::Array::create({.num_disks = v, .stripe_size = k}, {},
                                  {.codec = codec});
  if (!array.ok()) {
    std::fprintf(stderr, "array: %s\n", array.status().to_string().c_str());
    std::exit(1);
  }
  return fleet::ShardSpec{.array = std::move(array).value(),
                          .iterations = iterations};
}

void message_fill(std::uint64_t block, std::vector<std::uint8_t>& buf) {
  const std::string text = "fleet block " + std::to_string(block);
  std::memset(buf.data(), 0, buf.size());
  std::memcpy(buf.data(), text.data(), text.size());
}

bool message_check(std::uint64_t block,
                   const std::vector<std::uint8_t>& buf) {
  const std::string expect = "fleet block " + std::to_string(block);
  return std::memcmp(buf.data(), expect.data(), expect.size()) == 0;
}

bool sweep(fleet::Fleet& fleet, const char* what) {
  std::vector<std::uint8_t> buf(fleet.block_bytes());
  std::uint64_t degraded = 0, bad = 0;
  for (std::uint64_t block = 0; block < fleet.num_blocks(); ++block) {
    io::ReadReceipt receipt;
    if (!fleet.read(block, buf, &receipt).ok()) return false;
    if (receipt.kind == api::ReadPlan::Kind::kDegraded) ++degraded;
    if (!message_check(block, buf)) ++bad;
  }
  std::printf("  %s sweep: %llu blocks, %llu reconstructed, %llu mismatches\n",
              what, static_cast<unsigned long long>(fleet.num_blocks()),
              static_cast<unsigned long long>(degraded),
              static_cast<unsigned long long>(bad));
  return bad == 0;
}

void print_extents(const fleet::Fleet& fleet) {
  for (const fleet::Extent& e : fleet.extents())
    std::printf("  blocks [%6llu, %6llu) -> shard %u (%s)\n",
                static_cast<unsigned long long>(e.first),
                static_cast<unsigned long long>(e.first + e.count), e.shard,
                fleet.shard(e.shard).array().description().c_str());
}

}  // namespace

int main() {
  // ------------------------------------------- act 1: one front door
  std::printf("act 1: three heterogeneous arrays, one block space\n");
  std::vector<fleet::ShardSpec> shards;
  shards.push_back(make_shard(9, 4, core::CodecKind::kXorParity, 2));
  shards.push_back(make_shard(17, 5, core::CodecKind::kReedSolomonPQ, 1));
  shards.push_back(make_shard(9, 4, core::CodecKind::kXorParity, 1));
  fleet::FleetOptions options{.block_bytes = kBlockBytes,
                              .migration_chunk_blocks = 8};
  // Rate-limit rebuild so act 2 has a visible budget to account for.
  options.governor.policy = fleet::GovernorPolicy::kFairShare;
  options.governor.rebuild_bytes_per_sec = 64.0 * 1024 * 1024;
  auto created = fleet::Fleet::create(std::move(shards), options);
  if (!created.ok()) {
    std::fprintf(stderr, "fleet: %s\n", created.status().to_string().c_str());
    return 1;
  }
  fleet::Fleet& fleet = created.value();
  print_extents(fleet);

  std::vector<std::uint8_t> buf(fleet.block_bytes());
  for (std::uint64_t block = 0; block < fleet.num_blocks(); ++block) {
    message_fill(block, buf);
    if (!fleet.write(block, buf).ok()) return 1;
  }
  if (!sweep(fleet, "healthy")) return 1;

  // -------------------------------------- act 2: governed rebuild
  std::printf("\nact 2: disk failure inside shard 1, governed rebuild\n");
  if (!fleet.fail_disk(1, 6).ok()) return 1;
  std::printf("  (shard 1, disk 6) failed -- the other shards never notice\n");
  if (!sweep(fleet, "degraded")) return 1;
  if (!fleet.replace_disk(1, 6).ok()) return 1;
  const auto outcome = fleet.rebuild(1);
  if (!outcome.ok() || !fleet.healthy()) return 1;
  const fleet::GovernorStats gov = fleet.governor().shard_stats(1);
  std::printf(
      "  rebuilt %llu stripes; governor granted %.1f KiB over %llu grants "
      "(%llu waited, %.1f ms blocked)\n",
      static_cast<unsigned long long>(outcome->applied),
      static_cast<double>(gov.granted_bytes - gov.refunded_bytes) / 1024.0,
      static_cast<unsigned long long>(gov.grants),
      static_cast<unsigned long long>(gov.waits),
      static_cast<double>(gov.wait_us) / 1000.0);
  if (!sweep(fleet, "healed")) return 1;

  // ------------------------------------- act 3: online expansion
  std::printf("\nact 3: attach a fourth shard, migrate blocks onto it\n");
  auto attached =
      fleet.attach_shard(make_shard(9, 4, core::CodecKind::kXorParity, 1));
  if (!attached.ok()) return 1;
  const std::uint64_t count = 48;
  if (!fleet.start_migration(100, count, *attached).ok()) return 1;
  // Stage half, then dirty the migrating range mid-copy: the chunk
  // invalidation protocol re-copies whatever the writes touched.
  if (!fleet.migrate_some(count / 2).ok()) return 1;
  for (std::uint64_t block = 100; block < 100 + count; block += 7) {
    message_fill(block, buf);
    if (!fleet.write(block, buf).ok()) return 1;
  }
  const fleet::MigrationProgress mid = fleet.migration_progress();
  std::printf("  staged %llu blocks, then wrote into the range: %llu chunks "
              "invalidated\n",
              static_cast<unsigned long long>(mid.copied_blocks),
              static_cast<unsigned long long>(mid.dirty_chunks));
  while (true) {
    const auto copied = fleet.migrate_some(16);
    if (!copied.ok()) return 1;
    if (*copied == 0) break;
  }
  const auto report = fleet.complete_migration();
  if (!report.ok()) return 1;
  std::printf(
      "  cutover: %llu blocks moved to shard %u, %llu chunks re-copied, "
      "checksums %016llx == %016llx (%s)\n",
      static_cast<unsigned long long>(report->blocks_moved),
      report->target_shard,
      static_cast<unsigned long long>(report->chunks_recopied),
      static_cast<unsigned long long>(report->source_checksum),
      static_cast<unsigned long long>(report->target_checksum),
      report->source_checksum == report->target_checksum ? "identical"
                                                         : "DIFFERENT");
  print_extents(fleet);
  if (!sweep(fleet, "post-cutover")) return 1;

  // ---------------------------------------- act 4: persistence
  std::printf("\nact 4: serialize, reopen, route again\n");
  const std::string text = fleet.serialize();
  auto reopened = fleet::Fleet::deserialize(text);
  if (!reopened.ok()) {
    std::fprintf(stderr, "reopen: %s\n",
                 reopened.status().to_string().c_str());
    return 1;
  }
  std::printf("  %zu bytes of fleet header; reopened with %u shards, "
              "%llu blocks\n",
              text.size(), reopened->num_shards(),
              static_cast<unsigned long long>(reopened->num_blocks()));
  const auto here = fleet.route_of(100);
  const auto there = reopened->route_of(100);
  if (!here.ok() || !there.ok() || here->shard != there->shard ||
      here->unit != there->unit)
    return 1;
  std::printf("  block 100 routes to (shard %u, unit %llu) in both\n",
              there->shard, static_cast<unsigned long long>(there->unit));

  std::printf("\nall acts passed\n");
  return 0;
}
