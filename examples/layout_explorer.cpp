// Layout explorer: for a given (v, k), show every construction this
// library can produce -- predicted design sizes, feasibility under the
// unit budget, and measured layout metrics for the ones cheap enough to
// materialize.
//
//   $ ./layout_explorer [v] [k]   (defaults: v = 16, k = 4)

#include <cstdio>
#include <cstdlib>

#include "core/pdl.hpp"

int main(int argc, char** argv) {
  using namespace pdl;
  const std::uint32_t v = argc > 1 ? std::atoi(argv[1]) : 16;
  const std::uint32_t k = argc > 2 ? std::atoi(argv[2]) : 4;
  if (v < 2 || k < 2 || k > v) {
    std::fprintf(stderr, "need 2 <= k <= v\n");
    return 1;
  }

  std::printf("=== BIBD constructions at (v=%u, k=%u) ===\n", v, k);
  std::printf("%-22s %-12s %-10s %-10s\n", "method", "b", "r", "lambda");
  const auto methods = design::applicable_methods(v, k);
  if (methods.empty()) std::printf("  (none)\n");
  for (const auto m : methods) {
    const auto params = design::predicted_params(m, v, k);
    std::printf("%-22s %-12llu %-10llu %-10llu\n",
                design::method_name(m).c_str(),
                static_cast<unsigned long long>(params->b),
                static_cast<unsigned long long>(params->r),
                static_cast<unsigned long long>(params->lambda));
  }
  std::printf("Theorem 7 lower bound on b: %llu\n\n",
              static_cast<unsigned long long>(
                  design::theorem7_lower_bound(v, k)));

  std::printf("=== layout routes (sizes in units/disk; budget %llu) ===\n",
              static_cast<unsigned long long>(layout::kDefaultUnitBudget));
  const auto feas = layout::summarize_feasibility(v, k).value();
  auto show = [](const char* name, const std::optional<std::uint64_t>& size,
                 std::uint32_t q) {
    if (size) {
      std::printf("%-28s %10llu%s%s\n", name,
                  static_cast<unsigned long long>(*size),
                  q ? "   from q=" : "",
                  q ? std::to_string(q).c_str() : "");
    } else {
      std::printf("%-28s %10s\n", name, "--");
    }
  };
  show("complete + HG k-copy", feas.complete_hg, 0);
  show("best BIBD + HG k-copy", feas.bibd_hg, 0);
  show("best BIBD + flow (1 copy)", feas.bibd_flow, 0);
  show("best BIBD + perfect (lcm)", feas.bibd_perfect, 0);
  show("ring layout", feas.ring_layout, 0);
  show("removal (Thm 8/9)", feas.removal, feas.removal_q);
  show("stairway (Thm 10-12)", feas.stairway, feas.stairway_q);

  std::printf("\n=== engine plan ranking ===\n");
  auto& eng = engine::Engine::global();
  const auto plans = eng.rank_plans({.num_disks = v, .stripe_size = k});
  if (plans.empty()) std::printf("  (no admissible plan)\n");
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const auto& plan = plans[i];
    std::printf("%2zu. %-28s %10llu units/disk  %-12s %s\n", i + 1,
                construction_name(plan.construction).c_str(),
                static_cast<unsigned long long>(plan.units_per_disk),
                std::string(engine::balance_class_name(plan.balance)).c_str(),
                plan.description.c_str());
  }

  std::printf("\n=== chosen layout (via pdl::api::Array) ===\n");
  const auto array = api::Array::create({.num_disks = v, .stripe_size = k});
  if (!array.ok()) {
    std::printf("%s\n", array.status().to_string().c_str());
    return 0;
  }
  std::printf("%s -- %s\n", construction_name(array->construction()).c_str(),
              array->description().c_str());
  std::printf("%s\n", array->metrics().to_string().c_str());
  if (array->units_per_disk() <= 12 && array->num_disks() <= 16) {
    std::printf("\n%s", layout::render_layout(array->layout()).c_str());
  }
  return 0;
}
