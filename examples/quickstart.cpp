// Quickstart for pdl::api::Array, the library's front door: build an
// array, map logical addresses (single and batched), fail a disk, resolve
// a degraded read to its survivor set, and rebuild back to healthy.
//
//   $ ./quickstart [v] [k]        (defaults: v = 16, k = 4)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/pdl.hpp"

int main(int argc, char** argv) {
  using namespace pdl;
  const std::uint32_t v = argc > 1 ? std::atoi(argv[1]) : 16;
  const std::uint32_t k = argc > 2 ? std::atoi(argv[2]) : 4;
  if (v < 2 || v > 100'000 || k < 2 || k > v) {
    std::fprintf(stderr, "need 2 <= k <= v\n");
    return 1;
  }

  // 1. One call builds the best layout for v disks with parity stripes of
  //    k units (engine-cached construction ranking) and wraps it with the
  //    compiled O(1) mapping tables and the online failure state machine.
  //    Every fallible call returns a typed pdl::Status / Result.
  auto array = api::Array::create({.num_disks = v, .stripe_size = k});
  if (!array.ok()) {
    std::fprintf(stderr, "cannot build array: %s\n",
                 array.status().to_string().c_str());
    return 1;
  }
  std::printf("construction: %s (%s)\n",
              construction_name(array->construction()).c_str(),
              array->description().c_str());
  std::printf("metrics:      %s\n", array->metrics().to_string().c_str());
  std::printf("mapping table: %.1f KiB resident\n\n",
              array->table_bytes() / 1024.0);

  // 2. Address ops (Condition 4: one table lookup + constant arithmetic).
  std::printf("logical -> physical (disk, offset); parity location:\n");
  const std::vector<std::uint64_t> logicals = {0, 1, 1000, 123456};
  std::vector<api::Physical> batch(logicals.size());
  (void)array->map_batch(logicals, batch);  // span-based batched form
  for (std::size_t i = 0; i < logicals.size(); ++i) {
    const auto parity = array->parity_of(logicals[i]);
    std::printf("  unit %8llu -> (disk %2u, offset %6llu)   parity at "
                "(disk %2u, offset %6llu)\n",
                static_cast<unsigned long long>(logicals[i]), batch[i].disk,
                static_cast<unsigned long long>(batch[i].offset), parity.disk,
                static_cast<unsigned long long>(parity.offset));
  }

  // 3. Fail a disk and watch a read degrade: locate() resolves the exact
  //    survivor unit-set to XOR (declustering spreads those reads over all
  //    survivors instead of mirroring RAID5's full-disk sweep).
  const layout::DiskId failed = v / 2;
  (void)array->fail_disk(failed);
  std::printf("\ndisk %u failed: %llu units lost\n", failed,
              static_cast<unsigned long long>(array->lost_units()));
  std::vector<api::Physical> survivors(array->max_stripe_size());
  for (const std::uint64_t logical : logicals) {
    const auto read = array->locate(logical, survivors);
    if (!read.ok()) continue;
    if (read->kind == api::ReadPlan::Kind::kDirect) {
      std::printf("  unit %8llu intact on disk %u\n",
                  static_cast<unsigned long long>(logical),
                  read->target.disk);
    } else {
      std::printf("  unit %8llu degraded: XOR %u survivors (disks",
                  static_cast<unsigned long long>(logical),
                  read->num_survivors);
      for (std::uint32_t i = 0; i < read->num_survivors; ++i)
        std::printf(" %u", survivors[i].disk);
      std::printf(")\n");
    }
  }

  // 4. Replace the disk and rebuild.  plan_rebuild() derives the repair
  //    schedule (per-stripe survivor reads + target writes); rebuild()
  //    applies it and returns the array to healthy.
  (void)array->replace_disk(failed);
  const auto plan = array->plan_rebuild();
  std::uint32_t max_reads = 0;
  for (const std::uint32_t r : plan->reads_per_disk)
    max_reads = std::max(max_reads, r);
  std::printf("\nrebuild plan: %zu stripe repairs; busiest survivor reads "
              "%.1f%% of itself (RAID5 would read 100%%)\n",
              plan->steps.size(),
              100.0 * max_reads / array->units_per_disk());
  const auto outcome = array->rebuild();
  std::printf("rebuilt %llu stripes; array healthy again: %s\n",
              static_cast<unsigned long long>(outcome->applied),
              array->healthy() ? "yes" : "no");
  return 0;
}
