// Quickstart: build a parity-declustered layout, map logical addresses,
// and plan recovery of a failed disk.
//
//   $ ./quickstart [v] [k]        (defaults: v = 16, k = 4)

#include <cstdio>
#include <cstdlib>

#include "core/pdl.hpp"

int main(int argc, char** argv) {
  using namespace pdl;
  const std::uint32_t v = argc > 1 ? std::atoi(argv[1]) : 16;
  const std::uint32_t k = argc > 2 ? std::atoi(argv[2]) : 4;
  if (v < 2 || k < 2 || k > v) {
    std::fprintf(stderr, "need 2 <= k <= v\n");
    return 1;
  }

  // 1. Build the best layout for v disks with parity stripes of k units.
  //    The engine ranks every registered construction's plan and memoizes
  //    the built result.
  const auto built =
      engine::Engine::global().build({.num_disks = v, .stripe_size = k});
  if (!built) {
    std::fprintf(stderr, "no layout for v=%u k=%u fits the unit budget\n", v,
                 k);
    return 1;
  }
  std::printf("construction: %s (%s)\n",
              construction_name(built->construction).c_str(),
              built->description.c_str());
  std::printf("metrics:      %s\n\n", built->metrics.to_string().c_str());

  // 2. Map logical data units to physical positions (Condition 4: one
  //    table lookup + constant arithmetic).  CompiledMapper is the flat,
  //    allocation-free serving-path form.
  const layout::CompiledMapper mapper(built->layout);
  std::printf("logical -> physical (disk, offset); parity location:\n");
  for (const std::uint64_t logical : {0ull, 1ull, 1000ull, 123456ull}) {
    const auto data = mapper.map(logical);
    const auto parity = mapper.parity_of(logical);
    std::printf("  unit %8llu -> (disk %2u, offset %6llu)   parity at "
                "(disk %2u, offset %6llu)\n",
                static_cast<unsigned long long>(logical), data.disk,
                static_cast<unsigned long long>(data.offset), parity.disk,
                static_cast<unsigned long long>(parity.offset));
  }
  std::printf("mapping table: %.1f KiB resident\n\n",
              mapper.table_bytes() / 1024.0);

  // 3. Plan recovery of a failed disk.
  const layout::DiskId failed = v / 2;
  const auto plan = core::plan_recovery(built->layout, failed);
  std::printf("recovery plan for disk %u: %zu stripe repairs\n", failed,
              plan.repairs.size());
  std::printf("busiest survivor reads %.1f%% of itself (RAID5 would read "
              "100%%)\n",
              100.0 * plan.analysis.max_fraction());
  return 0;
}
