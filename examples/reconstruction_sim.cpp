// Reconstruction simulation: fail a disk under live load and watch the
// rebuild race, comparing a parity-declustered layout against RAID5 on the
// event-driven simulator; then replay the failure through the scenario
// engine for the phase-by-phase view (normal -> degraded -> rebuilding ->
// restored) of the same rebuild.
//
//   $ ./reconstruction_sim [v] [k] [arrival_per_sec]
//     (defaults: v = 17, k = 5, 20 req/s)

#include <cstdio>
#include <cstdlib>

#include "core/pdl.hpp"

namespace {

void report(const char* name, const pdl::layout::Layout& layout,
            double arrival_per_ms) {
  using namespace pdl;
  const sim::ArrayConfig config{
      .disk = {}, .rebuild_depth = 4, .iterations = 1};
  const sim::ArraySimulator simulator(layout, config);
  const sim::WorkloadConfig wconfig{
      .arrival_per_ms = arrival_per_ms,
      .write_fraction = 0.3,
      .working_set = simulator.working_set(),
      .duration_ms = 5000.0,
      .seed = 17};
  const auto requests = sim::generate_workload(wconfig);

  const auto healthy = simulator.run_normal(requests);
  const auto rebuild = simulator.run_rebuild(requests, /*failed=*/0);
  const auto analysis = sim::analyze_reconstruction(layout, 0);

  auto healthy_user = healthy.user;
  auto rebuild_user = rebuild.run.user;
  std::printf("%s\n", name);
  std::printf("  size %u units/disk; busiest survivor reads %.1f%% of "
              "itself\n",
              layout.units_per_disk(), 100.0 * analysis.max_fraction());
  std::printf("  rebuild: %.0f ms (%llu stripes)\n", rebuild.rebuild_ms,
              static_cast<unsigned long long>(rebuild.stripes_rebuilt));
  std::printf("  user read latency: healthy %.1f ms -> during rebuild "
              "%.1f ms (p95 %.1f ms)\n\n",
              healthy_user.read_latency_ms.mean(),
              rebuild_user.read_latency_ms.mean(),
              rebuild_user.read_latency_ms.percentile(0.95));
}

// The same failure through the scenario engine: phase timeline with
// per-phase latency and utilization.
void report_phases(const pdl::api::Array& array, double arrival_per_ms) {
  using namespace pdl;
  const sim::ScenarioConfig config{
      .disk = {}, .rebuild_depth = 4, .iterations = 1,
      .rebuild_delay_ms = 100.0};
  const sim::ScenarioSimulator simulator(array, config);
  const sim::WorkloadConfig wconfig{
      .arrival_per_ms = arrival_per_ms,
      .write_fraction = 0.3,
      .working_set = simulator.working_set(),
      .duration_ms = 5000.0,
      .seed = 17};
  const auto scheduler = sim::make_scheduler("fifo");
  const auto result =
      simulator.run(sim::FaultTimeline::scripted({{1000.0, 0}}),
                    sim::generate_workload(wconfig), *scheduler);

  std::printf("phase timeline (failure at t=1000, 100 ms detection):\n");
  for (const sim::PhaseRecord& phase : result.phases) {
    sim::SampleStats reads = phase.user.read_latency_ms;
    std::printf("  %-11s [%6.0f, %6.0f) read mean %5.1f ms, max util %3.0f%%\n",
                std::string(sim::phase_name(phase.phase)).c_str(),
                phase.start_ms, phase.end_ms, reads.mean(),
                100.0 * phase.max_disk_utilization());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdl;
  const std::uint32_t v = argc > 1 ? std::atoi(argv[1]) : 17;
  const std::uint32_t k = argc > 2 ? std::atoi(argv[2]) : 5;
  if (v < 2 || k < 2 || k > v) {
    std::fprintf(stderr, "need 2 <= k <= v\n");
    return 1;
  }
  const double per_sec = argc > 3 ? std::atof(argv[3]) : 20.0;

  const auto array = api::Array::create({.num_disks = v, .stripe_size = k});
  if (!array.ok()) {
    std::fprintf(stderr, "no declustered layout for v=%u k=%u: %s\n", v, k,
                 array.status().to_string().c_str());
    return 1;
  }
  std::printf("failing disk 0 at t=0 under %.0f req/s (30%% writes)...\n\n",
              per_sec);
  const std::string name =
      "declustered: " + construction_name(array->construction());
  report(name.c_str(), array->layout(), per_sec / 1000.0);
  report("RAID5 baseline (k = v)",
         layout::raid5_layout(v, array->units_per_disk()),
         per_sec / 1000.0);
  report_phases(*array, per_sec / 1000.0);
  std::printf("declustering spreads the rebuild load over all survivors: "
              "each reads only (k-1)/(v-1) of itself instead of 100%%.\n");
  return 0;
}
