#!/usr/bin/env bash
# Verifies that every relative markdown link in README.md and docs/*.md
# points at a file or directory that exists in the repo.  External links
# (http/https) and pure anchors (#...) are skipped.  Run from the repo
# root; exits non-zero listing every broken link.
set -u

broken=$(
  for doc in README.md docs/*.md; do
    [ -f "$doc" ] || continue
    dir=$(dirname "$doc")
    # Extract the (target) of every [text](target) markdown link.
    grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/.*(\(.*\))/\1/' |
    while IFS= read -r target; do
      case "$target" in
        http://*|https://*|\#*) continue ;;
      esac
      # Strip a trailing #anchor from relative links.
      path=${target%%#*}
      [ -n "$path" ] || continue
      if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
        echo "BROKEN: $doc -> $target"
      fi
    done
  done
)

if [ -n "$broken" ]; then
  echo "$broken"
  echo "docs link check FAILED"
  exit 1
fi
echo "docs link check OK"
