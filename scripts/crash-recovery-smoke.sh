#!/usr/bin/env bash
# Kill-9-during-RMW crash-recovery smoke.
#
# Drives bench_crash_recovery as two processes: a --workload child fills
# a file-backed, integrity-enabled store and loops journaled RMW writes
# forever; this script SIGKILLs it at an arbitrary instant mid-loop,
# then reopens the directory with --recover, which must report every
# stripe instance parity-consistent ("recovered_consistent":true) after
# journal replay.  Several rounds reuse one directory, so recovery is
# also exercised over a store that already survived earlier crashes.
#
#   usage: crash-recovery-smoke.sh <path-to-bench_crash_recovery> [rounds]

set -u

BENCH="${1:?usage: crash-recovery-smoke.sh <path-to-bench_crash_recovery> [rounds]}"
ROUNDS="${2:-3}"
DIR="$(mktemp -d "${TMPDIR:-/tmp}/pdl_crash_smoke.XXXXXX")"
trap 'rm -rf "$DIR"' EXIT

for round in $(seq 1 "$ROUNDS"); do
  : > "$DIR/workload.log"
  "$BENCH" --workload --dir "$DIR/store" > "$DIR/workload.log" 2>&1 &
  PID=$!

  # Wait for the fill to finish so the kill lands inside the RMW loop.
  ready=0
  for _ in $(seq 1 600); do
    if grep -q "workload ready" "$DIR/workload.log" 2>/dev/null; then
      ready=1
      break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
      cat "$DIR/workload.log"
      echo "crash-recovery smoke: workload died before ready (round $round)"
      exit 1
    fi
    sleep 0.1
  done
  if [ "$ready" -ne 1 ]; then
    cat "$DIR/workload.log"
    echo "crash-recovery smoke: workload never became ready (round $round)"
    kill -9 "$PID" 2>/dev/null || true
    exit 1
  fi

  # Let read-modify-writes pile up, then pull the plug mid-flight.
  sleep 0.5
  kill -9 "$PID" 2>/dev/null || true
  wait "$PID" 2>/dev/null || true

  if ! OUT="$("$BENCH" --recover --dir "$DIR/store")"; then
    echo "$OUT"
    echo "crash-recovery smoke: recover run FAILED (round $round)"
    exit 1
  fi
  echo "$OUT"
  if ! echo "$OUT" | grep -q '"recovered_consistent":true'; then
    echo "crash-recovery smoke: inconsistent stripes after reopen (round $round)"
    exit 1
  fi
done

echo "crash-recovery smoke: OK ($ROUNDS rounds)"
