#!/usr/bin/env bash
# Kill-9-during-RMW crash-recovery smoke.
#
# Drives bench_crash_recovery as two processes: a --workload child fills
# a file-backed, integrity-enabled store and loops journaled RMW writes
# forever; this script SIGKILLs it at an arbitrary instant mid-loop,
# then reopens the directory with --recover, which must report every
# stripe instance parity-consistent ("recovered_consistent":true) after
# journal replay.  Several rounds reuse one directory, so recovery is
# also exercised over a store that already survived earlier crashes.
#
# With --cache the workload leg runs through the StripeCache's
# parity-delta batching (aggressive fold knobs, hot-span-skewed writes),
# so the SIGKILL lands mid-fold -- a multi-unit journaled batch -- and
# replay must still come back consistent.
#
#   usage: crash-recovery-smoke.sh <path-to-bench_crash_recovery> [rounds] [--cache]

set -u

BENCH="${1:?usage: crash-recovery-smoke.sh <path-to-bench_crash_recovery> [rounds] [--cache]}"
ROUNDS="${2:-3}"
CACHE_FLAG=""
if [ "${3:-}" = "--cache" ] || [ "${2:-}" = "--cache" ]; then
  CACHE_FLAG="--cache"
  [ "${2:-}" = "--cache" ] && ROUNDS=3
fi
DIR="$(mktemp -d "${TMPDIR:-/tmp}/pdl_crash_smoke.XXXXXX")"
trap 'rm -rf "$DIR"' EXIT

for round in $(seq 1 "$ROUNDS"); do
  : > "$DIR/workload.log"
  # shellcheck disable=SC2086  # CACHE_FLAG is empty or a single flag
  "$BENCH" --workload --dir "$DIR/store" $CACHE_FLAG > "$DIR/workload.log" 2>&1 &
  PID=$!

  # Wait for the fill to finish so the kill lands inside the RMW loop.
  ready=0
  for _ in $(seq 1 600); do
    if grep -q "workload ready" "$DIR/workload.log" 2>/dev/null; then
      ready=1
      break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
      cat "$DIR/workload.log"
      echo "crash-recovery smoke: workload died before ready (round $round)"
      exit 1
    fi
    sleep 0.1
  done
  if [ "$ready" -ne 1 ]; then
    cat "$DIR/workload.log"
    echo "crash-recovery smoke: workload never became ready (round $round)"
    kill -9 "$PID" 2>/dev/null || true
    exit 1
  fi

  # Let read-modify-writes pile up, then pull the plug mid-flight.
  sleep 0.5
  kill -9 "$PID" 2>/dev/null || true
  wait "$PID" 2>/dev/null || true

  # shellcheck disable=SC2086
  if ! OUT="$("$BENCH" --recover --dir "$DIR/store" $CACHE_FLAG)"; then
    echo "$OUT"
    echo "crash-recovery smoke: recover run FAILED (round $round)"
    exit 1
  fi
  echo "$OUT"
  if ! echo "$OUT" | grep -q '"recovered_consistent":true'; then
    echo "crash-recovery smoke: inconsistent stripes after reopen (round $round)"
    exit 1
  fi
done

echo "crash-recovery smoke: OK ($ROUNDS rounds${CACHE_FLAG:+, cache})"
