#include "algebra/gf.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

#include "algebra/numtheory.hpp"

namespace pdl::algebra {

GaloisField::GaloisField(Elem q) : q_(q), modulus_(2) {
  const PrimePower pp = prime_power_decomposition(q);
  if (pp.prime == 0)
    throw std::invalid_argument("GaloisField: order " + std::to_string(q) +
                                " is not a prime power");
  p_ = static_cast<Elem>(pp.prime);
  m_ = pp.exponent;
  modulus_ = (m_ == 1) ? Polynomial::monomial(p_, 1)
                       : find_irreducible(p_, m_);
  build_tables();
}

GaloisField::GaloisField(Elem q, const Polynomial& modulus)
    : q_(q), modulus_(modulus) {
  const PrimePower pp = prime_power_decomposition(q);
  if (pp.prime == 0)
    throw std::invalid_argument("GaloisField: order " + std::to_string(q) +
                                " is not a prime power");
  p_ = static_cast<Elem>(pp.prime);
  m_ = pp.exponent;
  if (modulus_.modulus() != p_)
    throw std::invalid_argument(
        "GaloisField: modulus polynomial is over Z_" +
        std::to_string(modulus_.modulus()) + ", field characteristic is " +
        std::to_string(p_));
  if (modulus_.degree() != static_cast<int>(m_))
    throw std::invalid_argument(
        "GaloisField: modulus degree " + std::to_string(modulus_.degree()) +
        " does not match extension degree " + std::to_string(m_));
  if (modulus_.coeff(m_) != 1)
    throw std::invalid_argument("GaloisField: modulus must be monic");
  if (m_ > 1 && !is_irreducible(modulus_))
    throw std::invalid_argument("GaloisField: modulus " +
                                modulus_.to_string() + " is reducible");
  build_tables();
}

Elem GaloisField::add(Elem a, Elem b) const {
  if (p_ == 2) return a ^ b;  // characteristic 2: digit-wise sum is XOR
  if (m_ == 1) {
    const std::uint64_t s = static_cast<std::uint64_t>(a) + b;
    return static_cast<Elem>(s >= p_ ? s - p_ : s);
  }
  Elem result = 0;
  Elem stride = 1;
  for (std::uint32_t i = 0; i < m_; ++i) {
    Elem d = a % p_ + b % p_;
    if (d >= p_) d -= p_;
    result += d * stride;
    a /= p_;
    b /= p_;
    stride *= p_;
  }
  return result;
}

Elem GaloisField::neg(Elem a) const {
  if (p_ == 2) return a;
  if (m_ == 1) return a == 0 ? 0 : p_ - a;
  Elem result = 0;
  Elem stride = 1;
  for (std::uint32_t i = 0; i < m_; ++i) {
    const Elem d = a % p_;
    result += (d == 0 ? 0 : p_ - d) * stride;
    a /= p_;
    stride *= p_;
  }
  return result;
}

Elem GaloisField::mul_slow(Elem a, Elem b) const {
  if (a == 0 || b == 0) return 0;
  if (m_ == 1)
    return static_cast<Elem>(static_cast<std::uint64_t>(a) * b % p_);
  auto decode = [&](Elem e) {
    std::vector<std::uint32_t> coeffs(m_);
    for (std::uint32_t i = 0; i < m_; ++i) {
      coeffs[i] = e % p_;
      e /= p_;
    }
    return Polynomial(p_, std::move(coeffs));
  };
  const Polynomial prod = (decode(a) * decode(b)).mod(modulus_);
  Elem result = 0;
  Elem stride = 1;
  for (std::uint32_t i = 0; i < m_; ++i) {
    result += prod.coeff(i) * stride;
    stride *= p_;
  }
  return result;
}

Elem GaloisField::mul(Elem a, Elem b) const {
  if (a == 0 || b == 0) return 0;
  const std::uint64_t s =
      static_cast<std::uint64_t>(log_[a]) + log_[b];
  return exp_[s % (q_ - 1)];
}

std::optional<Elem> GaloisField::inverse(Elem a) const {
  if (a == 0) return std::nullopt;
  return exp_[(q_ - 1 - log_[a]) % (q_ - 1)];
}

std::uint32_t GaloisField::log(Elem a) const {
  if (a == 0) throw std::invalid_argument("GaloisField::log: log of zero");
  if (a >= q_) throw std::invalid_argument("GaloisField::log: out of range");
  return log_[a];
}

std::string GaloisField::name() const {
  return "GF(" + std::to_string(q_) + ")";
}

void GaloisField::build_tables() {
  // Find a primitive element by testing multiplicative orders with the
  // slow (table-free) multiply; then fill exp/log tables in one sweep.
  const std::uint64_t group_order = q_ - 1;
  const auto factors = factorize(group_order);

  auto pow_slow = [&](Elem a, std::uint64_t e) {
    Elem result = 1;
    while (e > 0) {
      if (e & 1) result = mul_slow(result, a);
      a = mul_slow(a, a);
      e >>= 1;
    }
    return result;
  };

  Elem generator = 0;
  for (Elem cand = 1; cand < q_; ++cand) {
    bool primitive = true;
    for (const PrimePower& f : factors) {
      if (pow_slow(cand, group_order / f.prime) == 1) {
        primitive = false;
        break;
      }
    }
    if (primitive) {
      generator = cand;
      break;
    }
  }
  if (generator == 0 && q_ > 2)
    throw std::logic_error("GaloisField: no primitive element found");
  if (q_ == 2) generator = 1;

  exp_.resize(group_order);
  log_.assign(q_, 0);
  Elem acc = 1;
  for (std::uint64_t i = 0; i < group_order; ++i) {
    exp_[i] = acc;
    log_[acc] = static_cast<std::uint32_t>(i);
    acc = mul_slow(acc, generator);
  }
  if (acc != 1)
    throw std::logic_error("GaloisField: exp table did not close (g^(q-1)!=1)");
}

Elem GaloisField::element_of_multiplicative_order(std::uint32_t n) const {
  if (n == 0 || (q_ - 1) % n != 0)
    throw std::invalid_argument(
        "element_of_multiplicative_order: n must divide q-1");
  // For n = 1 the exponent (q-1)/n wraps to 0 (the element is 1).
  return exp_[((q_ - 1) / n) % (q_ - 1)];
}

std::vector<Elem> GaloisField::subfield(Elem k) const {
  const PrimePower pp = prime_power_decomposition(k);
  if (pp.prime != p_ || m_ % pp.exponent != 0)
    throw std::invalid_argument("subfield: GF(" + std::to_string(k) +
                                ") is not a subfield of " + name());
  // The subfield of order k is {0} plus the unique multiplicative subgroup
  // of order k-1: powers of g^((q-1)/(k-1)).
  std::vector<Elem> elems;
  elems.reserve(k);
  elems.push_back(0);
  const std::uint64_t step = (q_ - 1) / (k - 1);
  for (Elem j = 0; j + 1 < k; ++j) {
    elems.push_back(exp_[(static_cast<std::uint64_t>(j) * step) % (q_ - 1)]);
  }
  std::sort(elems.begin(), elems.end());
  return elems;
}

std::shared_ptr<const GaloisField> get_field(Elem q) {
  static std::mutex mutex;
  static std::map<Elem, std::weak_ptr<const GaloisField>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  if (auto it = cache.find(q); it != cache.end()) {
    if (auto field = it->second.lock()) return field;
  }
  auto field = std::make_shared<const GaloisField>(q);
  cache[q] = field;
  return field;
}

}  // namespace pdl::algebra
