#pragma once
// Finite (Galois) fields GF(p^m).  Elements are dense indices: the element
// with polynomial representation c_0 + c_1 x + ... + c_{m-1} x^{m-1} over
// Z_p has index c_0 + c_1 p + ... + c_{m-1} p^{m-1}.  Multiplication uses
// discrete log/antilog tables (O(q) memory), so fields up to q ~ 2^20 are
// practical.

#include <cstdint>
#include <memory>
#include <vector>

#include "algebra/polynomial.hpp"
#include "algebra/ring.hpp"

namespace pdl::algebra {

/// The finite field GF(q) for a prime power q = p^m.
class GaloisField final : public Ring {
 public:
  /// Constructs GF(q).  Throws std::invalid_argument if q is not a prime
  /// power >= 2.  For m > 1 a monic irreducible modulus polynomial is found
  /// deterministically, so two GaloisField(q) instances are identical.
  explicit GaloisField(Elem q);

  /// Constructs GF(q) over an explicitly chosen monic irreducible modulus
  /// (degree m, matching characteristic).  Two fields of the same order
  /// built over different moduli are isomorphic but element indices differ,
  /// so callers that pin a byte-level wire format (e.g. the GF(2^8)
  /// Reed-Solomon codec, which wants x^8+x^4+x^3+x^2+1 where x itself is
  /// primitive) use this to fix the representation.  Throws
  /// std::invalid_argument for a non-prime-power q or a modulus that is not
  /// monic irreducible of the right degree over Z_p.
  GaloisField(Elem q, const Polynomial& modulus);

  [[nodiscard]] Elem order() const noexcept override { return q_; }
  [[nodiscard]] Elem add(Elem a, Elem b) const override;
  [[nodiscard]] Elem neg(Elem a) const override;
  [[nodiscard]] Elem mul(Elem a, Elem b) const override;
  [[nodiscard]] Elem one() const noexcept override { return 1; }
  [[nodiscard]] std::optional<Elem> inverse(Elem a) const override;
  [[nodiscard]] std::string name() const override;

  /// The field characteristic p.
  [[nodiscard]] Elem characteristic() const noexcept { return p_; }

  /// The extension degree m (q = p^m).
  [[nodiscard]] std::uint32_t extension_degree() const noexcept { return m_; }

  /// A fixed generator of the multiplicative group F* (1 for GF(2), whose
  /// multiplicative group is trivial).
  [[nodiscard]] Elem primitive_element() const noexcept {
    return exp_[1 % (q_ - 1)];
  }

  /// g^i for the primitive element g (i taken mod q-1).
  [[nodiscard]] Elem exp(std::uint64_t i) const noexcept {
    return exp_[i % (q_ - 1)];
  }

  /// Discrete log base g of a nonzero element.
  /// Throws std::invalid_argument on 0.
  [[nodiscard]] std::uint32_t log(Elem a) const;

  /// An element of multiplicative order n; requires n | q-1.
  [[nodiscard]] Elem element_of_multiplicative_order(std::uint32_t n) const;

  /// The elements of the unique subfield of order k = p^d (requires d | m),
  /// sorted ascending.  subfield(q) returns the whole field.
  [[nodiscard]] std::vector<Elem> subfield(Elem k) const;

  /// The modulus polynomial used to build the extension (degree m; for
  /// m == 1 this is just x).
  [[nodiscard]] const Polynomial& modulus_polynomial() const noexcept {
    return modulus_;
  }

 private:
  [[nodiscard]] Elem mul_slow(Elem a, Elem b) const;  // polynomial multiply
  void build_tables();

  Elem q_;          // field size p^m
  Elem p_;          // characteristic
  std::uint32_t m_; // extension degree
  Polynomial modulus_;
  std::vector<Elem> exp_;           // exp_[i] = g^i, i in [0, q-1)
  std::vector<std::uint32_t> log_;  // log_[a] for a != 0
};

/// Shared, cached construction of GF(q): building log tables is O(q m^2), so
/// callers constructing many designs over the same field should use this.
[[nodiscard]] std::shared_ptr<const GaloisField> get_field(Elem q);

}  // namespace pdl::algebra
