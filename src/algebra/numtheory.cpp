#include "algebra/numtheory.hpp"

#include <stdexcept>

namespace pdl::algebra {

std::uint64_t PrimePower::value() const noexcept {
  std::uint64_t v = 1;
  for (std::uint32_t i = 0; i < exponent; ++i) v *= prime;
  return v;
}

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b,
                     std::uint64_t m) noexcept {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
  using uint128 = unsigned __int128;
#pragma GCC diagnostic pop
  return static_cast<std::uint64_t>((static_cast<uint128>(a) * b) % m);
}

std::uint64_t powmod(std::uint64_t a, std::uint64_t e,
                     std::uint64_t m) noexcept {
  std::uint64_t result = 1 % m;
  a %= m;
  while (e > 0) {
    if (e & 1) result = mulmod(result, a, m);
    a = mulmod(a, a, m);
    e >>= 1;
  }
  return result;
}

namespace {

// One Miller-Rabin round for witness a; returns true if n passes.
bool miller_rabin_round(std::uint64_t n, std::uint64_t a, std::uint64_t d,
                        std::uint32_t s) noexcept {
  std::uint64_t x = powmod(a, d, n);
  if (x == 1 || x == n - 1) return true;
  for (std::uint32_t i = 1; i < s; ++i) {
    x = mulmod(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

}  // namespace

bool is_prime(std::uint64_t n) noexcept {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  // n is odd and > 37; write n-1 = d * 2^s.
  std::uint64_t d = n - 1;
  std::uint32_t s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  // This witness set is deterministic for all n < 2^64.
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (!miller_rabin_round(n, a, d, s)) return false;
  }
  return true;
}

std::vector<PrimePower> factorize(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("factorize: n must be >= 1");
  std::vector<PrimePower> factors;
  auto take = [&](std::uint64_t p) {
    std::uint32_t e = 0;
    while (n % p == 0) {
      n /= p;
      ++e;
    }
    if (e > 0) factors.push_back({p, e});
  };
  take(2);
  take(3);
  for (std::uint64_t p = 5; p * p <= n; p += 6) {
    take(p);
    take(p + 2);
  }
  if (n > 1) factors.push_back({n, 1});
  return factors;
}

bool is_prime_power(std::uint64_t n) noexcept {
  return prime_power_decomposition(n).prime != 0;
}

PrimePower prime_power_decomposition(std::uint64_t n) noexcept {
  if (n < 2) return {0, 0};
  // Extract the smallest prime factor by trial division; n is a prime power
  // iff dividing it out completely leaves 1.
  std::uint64_t p = 0;
  if (n % 2 == 0) {
    p = 2;
  } else {
    for (std::uint64_t c = 3; c * c <= n; c += 2) {
      if (n % c == 0) {
        p = c;
        break;
      }
    }
    if (p == 0) return {n, 1};  // n itself is prime
  }
  std::uint32_t e = 0;
  while (n % p == 0) {
    n /= p;
    ++e;
  }
  if (n != 1) return {0, 0};
  return {p, e};
}

std::uint64_t min_prime_power_factor(std::uint64_t v) {
  if (v < 2) throw std::invalid_argument("min_prime_power_factor: v >= 2");
  std::uint64_t m = v;
  for (const PrimePower& pp : factorize(v)) m = std::min(m, pp.value());
  return m;
}

std::uint64_t largest_prime_power_leq(std::uint64_t n) noexcept {
  for (std::uint64_t q = n; q >= 2; --q) {
    if (is_prime_power(q)) return q;
  }
  return 0;
}

std::uint64_t smallest_prime_power_geq(std::uint64_t n) noexcept {
  if (n < 2) return 2;
  for (std::uint64_t q = n;; ++q) {
    if (is_prime_power(q)) return q;
  }
}

std::vector<std::uint64_t> prime_powers_in(std::uint64_t lo,
                                           std::uint64_t hi) {
  std::vector<std::uint64_t> result;
  for (std::uint64_t q = std::max<std::uint64_t>(lo, 2); q <= hi; ++q) {
    if (is_prime_power(q)) result.push_back(q);
  }
  return result;
}

std::uint64_t euler_phi(std::uint64_t n) {
  std::uint64_t result = n;
  for (const PrimePower& pp : factorize(n)) {
    result -= result / pp.prime;
  }
  return result;
}

}  // namespace pdl::algebra
