#pragma once
// Elementary number theory used throughout the layout constructions:
// primality, integer factorization, prime powers, and the quantity
// M(v) = min_i p_i^{e_i} from Theorem 2 of Schwabe & Sutherland.

#include <cstdint>
#include <numeric>
#include <vector>

namespace pdl::algebra {

/// One prime-power factor p^e of an integer.
struct PrimePower {
  std::uint64_t prime = 0;
  std::uint32_t exponent = 0;

  /// The value p^e of this factor.
  [[nodiscard]] std::uint64_t value() const noexcept;

  friend bool operator==(const PrimePower&, const PrimePower&) = default;
};

/// Deterministic Miller-Rabin primality test, exact for all 64-bit inputs.
[[nodiscard]] bool is_prime(std::uint64_t n) noexcept;

/// Factorization of n >= 1 into prime powers, sorted by prime.
/// factorize(1) is empty. Trial division; intended for n up to ~10^12.
[[nodiscard]] std::vector<PrimePower> factorize(std::uint64_t n);

/// True iff n = p^e for a single prime p (e >= 1).
[[nodiscard]] bool is_prime_power(std::uint64_t n) noexcept;

/// If n = p^e, returns {p, e}; otherwise returns {0, 0}.
[[nodiscard]] PrimePower prime_power_decomposition(std::uint64_t n) noexcept;

/// M(v) = min{ p_i^{e_i} } over the prime-power factorization of v >= 2.
/// Theorem 2: a ring-based block design on v elements with tuples of size k
/// exists iff k <= M(v).  M(v) = v when v is a prime power.
[[nodiscard]] std::uint64_t min_prime_power_factor(std::uint64_t v);

/// Largest prime power q with q <= n, or 0 if n < 2.
[[nodiscard]] std::uint64_t largest_prime_power_leq(std::uint64_t n) noexcept;

/// Smallest prime power q with q >= n (n >= 2).
[[nodiscard]] std::uint64_t smallest_prime_power_geq(std::uint64_t n) noexcept;

/// All prime powers in [lo, hi], ascending.
[[nodiscard]] std::vector<std::uint64_t> prime_powers_in(std::uint64_t lo,
                                                         std::uint64_t hi);

/// Euler's totient.
[[nodiscard]] std::uint64_t euler_phi(std::uint64_t n);

/// (a * b) mod m without overflow for 64-bit operands.
[[nodiscard]] std::uint64_t mulmod(std::uint64_t a, std::uint64_t b,
                                   std::uint64_t m) noexcept;

/// (a ^ e) mod m without overflow for 64-bit operands.
[[nodiscard]] std::uint64_t powmod(std::uint64_t a, std::uint64_t e,
                                   std::uint64_t m) noexcept;

using std::gcd;
using std::lcm;

/// Ceiling division for nonnegative integers.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace pdl::algebra
