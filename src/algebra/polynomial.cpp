#include "algebra/polynomial.hpp"

#include <stdexcept>

#include "algebra/numtheory.hpp"

namespace pdl::algebra {

namespace {

std::uint32_t inverse_mod_prime(std::uint32_t a, std::uint32_t p) {
  // Fermat: a^(p-2) mod p; p is prime and a != 0 mod p.
  return static_cast<std::uint32_t>(powmod(a, p - 2, p));
}

}  // namespace

Polynomial::Polynomial(std::uint32_t p) : p_(p) {
  if (p < 2) throw std::invalid_argument("Polynomial: modulus must be >= 2");
}

Polynomial::Polynomial(std::uint32_t p, std::vector<std::uint32_t> coefficients)
    : p_(p), coeffs_(std::move(coefficients)) {
  if (p < 2) throw std::invalid_argument("Polynomial: modulus must be >= 2");
  for (auto& c : coeffs_) c %= p_;
  normalize();
}

Polynomial Polynomial::constant(std::uint32_t p, std::uint32_t c) {
  return Polynomial(p, {c});
}

Polynomial Polynomial::monomial(std::uint32_t p, std::uint32_t degree) {
  std::vector<std::uint32_t> coeffs(degree + 1, 0);
  coeffs[degree] = 1;
  return Polynomial(p, std::move(coeffs));
}

void Polynomial::normalize() {
  while (!coeffs_.empty() && coeffs_.back() == 0) coeffs_.pop_back();
}

Polynomial Polynomial::operator+(const Polynomial& rhs) const {
  if (p_ != rhs.p_) throw std::invalid_argument("Polynomial: modulus mismatch");
  std::vector<std::uint32_t> out(std::max(coeffs_.size(), rhs.coeffs_.size()));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = (coeff(i) + rhs.coeff(i)) % p_;
  }
  return Polynomial(p_, std::move(out));
}

Polynomial Polynomial::operator-(const Polynomial& rhs) const {
  if (p_ != rhs.p_) throw std::invalid_argument("Polynomial: modulus mismatch");
  std::vector<std::uint32_t> out(std::max(coeffs_.size(), rhs.coeffs_.size()));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = (coeff(i) + p_ - rhs.coeff(i)) % p_;
  }
  return Polynomial(p_, std::move(out));
}

Polynomial Polynomial::operator*(const Polynomial& rhs) const {
  if (p_ != rhs.p_) throw std::invalid_argument("Polynomial: modulus mismatch");
  if (is_zero() || rhs.is_zero()) return Polynomial(p_);
  std::vector<std::uint32_t> out(coeffs_.size() + rhs.coeffs_.size() - 1, 0);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i] == 0) continue;
    for (std::size_t j = 0; j < rhs.coeffs_.size(); ++j) {
      out[i + j] = static_cast<std::uint32_t>(
          (out[i + j] +
           static_cast<std::uint64_t>(coeffs_[i]) * rhs.coeffs_[j]) %
          p_);
    }
  }
  return Polynomial(p_, std::move(out));
}

Polynomial Polynomial::mod(const Polynomial& divisor) const {
  if (p_ != divisor.p_)
    throw std::invalid_argument("Polynomial: modulus mismatch");
  if (divisor.is_zero())
    throw std::invalid_argument("Polynomial::mod: division by zero");
  std::vector<std::uint32_t> rem = coeffs_;
  const auto& d = divisor.coeffs_;
  const std::uint32_t lead_inv = inverse_mod_prime(d.back(), p_);
  while (rem.size() >= d.size()) {
    const std::uint32_t factor =
        static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(rem.back()) * lead_inv % p_);
    const std::size_t shift = rem.size() - d.size();
    if (factor != 0) {
      for (std::size_t i = 0; i < d.size(); ++i) {
        const std::uint64_t sub =
            static_cast<std::uint64_t>(factor) * d[i] % p_;
        rem[shift + i] = static_cast<std::uint32_t>(
            (rem[shift + i] + p_ - sub) % p_);
      }
    }
    rem.pop_back();
    while (!rem.empty() && rem.back() == 0) rem.pop_back();
    if (rem.size() < d.size()) break;
  }
  return Polynomial(p_, std::move(rem));
}

Polynomial Polynomial::powmod(std::uint64_t e, const Polynomial& divisor) const {
  Polynomial result = constant(p_, 1).mod(divisor);
  Polynomial base = mod(divisor);
  while (e > 0) {
    if (e & 1) result = (result * base).mod(divisor);
    base = (base * base).mod(divisor);
    e >>= 1;
  }
  return result;
}

Polynomial Polynomial::gcd(Polynomial a, Polynomial b) {
  while (!b.is_zero()) {
    Polynomial r = a.mod(b);
    a = std::move(b);
    b = std::move(r);
  }
  return a.monic();
}

Polynomial Polynomial::monic() const {
  if (is_zero()) return *this;
  const std::uint32_t inv = inverse_mod_prime(coeffs_.back(), p_);
  std::vector<std::uint32_t> out(coeffs_.size());
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    out[i] = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(coeffs_[i]) * inv % p_);
  }
  return Polynomial(p_, std::move(out));
}

std::uint32_t Polynomial::evaluate(std::uint32_t x) const noexcept {
  std::uint64_t acc = 0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = (acc * x + coeffs_[i]) % p_;
  }
  return static_cast<std::uint32_t>(acc);
}

std::string Polynomial::to_string() const {
  if (is_zero()) return "0 (mod " + std::to_string(p_) + ")";
  std::string out;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    if (coeffs_[i] == 0) continue;
    if (!out.empty()) out += " + ";
    if (i == 0) {
      out += std::to_string(coeffs_[i]);
    } else {
      if (coeffs_[i] != 1) out += std::to_string(coeffs_[i]);
      out += "x";
      if (i > 1) {
        out += '^';
        out += std::to_string(i);
      }
    }
  }
  return out + " (mod " + std::to_string(p_) + ")";
}

bool is_irreducible(const Polynomial& f) {
  const int n = f.degree();
  if (n < 1) return false;
  if (n == 1) return true;
  const std::uint32_t p = f.modulus();
  const Polynomial x = Polynomial::monomial(p, 1);

  // Rabin's test: f (degree n) is irreducible over Z_p iff
  //   x^(p^n) == x (mod f), and
  //   gcd(x^(p^(n/q)) - x, f) == 1 for every prime q dividing n.
  auto x_pow_p_tower = [&](std::uint32_t height) {
    // Computes x^(p^height) mod f by iterated powering.
    Polynomial acc = x.mod(f);
    for (std::uint32_t i = 0; i < height; ++i) acc = acc.powmod(p, f);
    return acc;
  };

  for (const PrimePower& q : factorize(n)) {
    const auto h = x_pow_p_tower(
        static_cast<std::uint32_t>(n) / static_cast<std::uint32_t>(q.prime));
    const Polynomial g = Polynomial::gcd(h - x.mod(f), f);
    if (g.degree() != 0) return false;
  }
  return x_pow_p_tower(static_cast<std::uint32_t>(n)) == x.mod(f);
}

Polynomial find_irreducible(std::uint32_t p, std::uint32_t degree) {
  if (degree == 0)
    throw std::invalid_argument("find_irreducible: degree must be >= 1");
  if (degree == 1) return Polynomial::monomial(p, 1);
  // Enumerate monic polynomials x^degree + c_{degree-1} x^{degree-1} + ...
  // + c_0 in lexicographic order of (c_0, ..., c_{degree-1}).
  std::vector<std::uint32_t> coeffs(degree + 1, 0);
  coeffs[degree] = 1;
  while (true) {
    Polynomial f(p, coeffs);
    if (is_irreducible(f)) return f;
    // Increment the low coefficients as a base-p counter.
    std::size_t i = 0;
    while (i < degree) {
      if (++coeffs[i] < p) break;
      coeffs[i] = 0;
      ++i;
    }
    if (i == degree)
      throw std::logic_error("find_irreducible: search exhausted");
  }
}

}  // namespace pdl::algebra
