#pragma once
// Dense univariate polynomials over the prime field Z_p, used to construct
// the finite fields GF(p^m) that underlie ring-based block designs.

#include <cstdint>
#include <string>
#include <vector>

namespace pdl::algebra {

/// A polynomial over Z_p with coefficients stored low-degree-first.
/// The zero polynomial has an empty coefficient vector; otherwise the
/// leading coefficient is nonzero (the representation is normalized).
class Polynomial {
 public:
  /// The zero polynomial over Z_p.
  explicit Polynomial(std::uint32_t p);

  /// Polynomial with the given coefficients (low-degree-first); the
  /// coefficients are reduced mod p and trailing zeros are trimmed.
  Polynomial(std::uint32_t p, std::vector<std::uint32_t> coefficients);

  /// The constant polynomial c.
  static Polynomial constant(std::uint32_t p, std::uint32_t c);

  /// The monomial x^degree.
  static Polynomial monomial(std::uint32_t p, std::uint32_t degree);

  [[nodiscard]] std::uint32_t modulus() const noexcept { return p_; }
  [[nodiscard]] bool is_zero() const noexcept { return coeffs_.empty(); }

  /// Degree of the polynomial; the zero polynomial has degree -1.
  [[nodiscard]] int degree() const noexcept {
    return static_cast<int>(coeffs_.size()) - 1;
  }

  /// Coefficient of x^i (0 for i beyond the degree).
  [[nodiscard]] std::uint32_t coeff(std::size_t i) const noexcept {
    return i < coeffs_.size() ? coeffs_[i] : 0;
  }

  [[nodiscard]] const std::vector<std::uint32_t>& coefficients()
      const noexcept {
    return coeffs_;
  }

  [[nodiscard]] Polynomial operator+(const Polynomial& rhs) const;
  [[nodiscard]] Polynomial operator-(const Polynomial& rhs) const;
  [[nodiscard]] Polynomial operator*(const Polynomial& rhs) const;

  /// Remainder of this polynomial modulo divisor (divisor must be nonzero).
  [[nodiscard]] Polynomial mod(const Polynomial& divisor) const;

  /// (this ^ e) mod divisor, by repeated squaring.
  [[nodiscard]] Polynomial powmod(std::uint64_t e,
                                  const Polynomial& divisor) const;

  /// Monic greatest common divisor.
  [[nodiscard]] static Polynomial gcd(Polynomial a, Polynomial b);

  /// Scales so the leading coefficient is 1 (no-op for the zero polynomial).
  [[nodiscard]] Polynomial monic() const;

  /// Evaluates the polynomial at x in Z_p.
  [[nodiscard]] std::uint32_t evaluate(std::uint32_t x) const noexcept;

  /// Human-readable form such as "x^2 + 2x + 1 (mod 3)".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Polynomial&, const Polynomial&) = default;

 private:
  void normalize();

  std::uint32_t p_;
  std::vector<std::uint32_t> coeffs_;
};

/// True iff f is irreducible over Z_p (f must have degree >= 1).
/// Uses the Rabin irreducibility test.
[[nodiscard]] bool is_irreducible(const Polynomial& f);

/// Finds a monic irreducible polynomial of the given degree over Z_p by
/// deterministic search in lexicographic order of coefficient vectors.
/// degree >= 1; for degree 1 returns x.
[[nodiscard]] Polynomial find_irreducible(std::uint32_t p,
                                          std::uint32_t degree);

}  // namespace pdl::algebra
