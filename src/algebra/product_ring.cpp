#include "algebra/product_ring.hpp"

#include <limits>
#include <numeric>
#include <stdexcept>

#include "algebra/gf.hpp"
#include "algebra/numtheory.hpp"

namespace pdl::algebra {

ProductRing::ProductRing(std::vector<std::unique_ptr<const Ring>> components)
    : components_(std::move(components)) {
  if (components_.empty())
    throw std::invalid_argument("ProductRing: needs at least one component");
  strides_.reserve(components_.size());
  std::uint64_t order = 1;
  for (const auto& c : components_) {
    if (!c) throw std::invalid_argument("ProductRing: null component");
    strides_.push_back(static_cast<Elem>(order));
    order *= c->order();
    if (order > std::numeric_limits<Elem>::max())
      throw std::invalid_argument("ProductRing: order overflows element type");
  }
  order_ = static_cast<Elem>(order);
  // one = (1, 1, ..., 1)
  std::vector<Elem> ones;
  ones.reserve(components_.size());
  for (const auto& c : components_) ones.push_back(c->one());
  one_ = compose(ones);
}

std::vector<Elem> ProductRing::decompose(Elem a) const {
  std::vector<Elem> parts(components_.size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    parts[i] = (a / strides_[i]) % components_[i]->order();
  }
  return parts;
}

Elem ProductRing::compose(std::span<const Elem> parts) const {
  if (parts.size() != components_.size())
    throw std::invalid_argument("ProductRing::compose: arity mismatch");
  Elem a = 0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (parts[i] >= components_[i]->order())
      throw std::invalid_argument("ProductRing::compose: index out of range");
    a += parts[i] * strides_[i];
  }
  return a;
}

Elem ProductRing::add(Elem a, Elem b) const {
  Elem result = 0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const Elem n = components_[i]->order();
    const Elem ai = (a / strides_[i]) % n;
    const Elem bi = (b / strides_[i]) % n;
    result += components_[i]->add(ai, bi) * strides_[i];
  }
  return result;
}

Elem ProductRing::neg(Elem a) const {
  Elem result = 0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const Elem n = components_[i]->order();
    const Elem ai = (a / strides_[i]) % n;
    result += components_[i]->neg(ai) * strides_[i];
  }
  return result;
}

Elem ProductRing::mul(Elem a, Elem b) const {
  Elem result = 0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const Elem n = components_[i]->order();
    const Elem ai = (a / strides_[i]) % n;
    const Elem bi = (b / strides_[i]) % n;
    result += components_[i]->mul(ai, bi) * strides_[i];
  }
  return result;
}

std::optional<Elem> ProductRing::inverse(Elem a) const {
  // Invertible iff every component is invertible (noted after Lemma 3).
  Elem result = 0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const Elem n = components_[i]->order();
    const Elem ai = (a / strides_[i]) % n;
    const auto inv = components_[i]->inverse(ai);
    if (!inv) return std::nullopt;
    result += *inv * strides_[i];
  }
  return result;
}

std::string ProductRing::name() const {
  std::string out;
  for (const auto& c : components_) {
    if (!out.empty()) out += " x ";
    out += c->name();
  }
  return out;
}

RingWithGenerators make_ring_with_generators(std::uint64_t v) {
  if (v < 2)
    throw std::invalid_argument("make_ring_with_generators: v must be >= 2");
  if (v > std::numeric_limits<Elem>::max())
    throw std::invalid_argument("make_ring_with_generators: v too large");

  const auto factors = factorize(v);
  const std::uint64_t max_k = min_prime_power_factor(v);

  if (factors.size() == 1) {
    // v is a prime power: GF(v); any k distinct elements are generators.
    auto field = get_field(static_cast<Elem>(v));
    std::vector<Elem> gens(v);
    std::iota(gens.begin(), gens.end(), 0);
    return {std::move(field), std::move(gens)};
  }

  // Lemma 3: cross product of the prime-power fields; the j-th generator is
  // (e_j, ..., e_j) where e_j is the j-th element of each component field.
  std::vector<std::unique_ptr<const Ring>> components;
  components.reserve(factors.size());
  for (const PrimePower& pp : factors) {
    components.push_back(
        std::make_unique<GaloisField>(static_cast<Elem>(pp.value())));
  }
  auto ring = std::make_shared<const ProductRing>(std::move(components));
  std::vector<Elem> gens;
  gens.reserve(max_k);
  for (Elem j = 0; j < max_k; ++j) {
    std::vector<Elem> parts(factors.size(), j);
    gens.push_back(ring->compose(parts));
  }
  return {std::move(ring), std::move(gens)};
}

}  // namespace pdl::algebra
