#pragma once
// Cross products of rings (Lemma 3 of the paper): for composite v with
// prime-power factorization p_1^e_1 ... p_n^e_n, the cross product of the
// fields GF(p_i^e_i) is a ring of order v containing a generator set of the
// maximum possible size M(v) = min_i p_i^e_i (Theorem 2).

#include <memory>
#include <vector>

#include "algebra/ring.hpp"

namespace pdl::algebra {

/// The cross product R_1 x ... x R_n with componentwise operations.
/// Element indices use mixed-radix encoding, little-endian in the component
/// order: index = c_0 + c_1*|R_1| + c_2*|R_1||R_2| + ...
class ProductRing final : public Ring {
 public:
  /// Takes ownership of at least one component ring.  The product of the
  /// component orders must fit in Elem.
  explicit ProductRing(std::vector<std::unique_ptr<const Ring>> components);

  [[nodiscard]] Elem order() const noexcept override { return order_; }
  [[nodiscard]] Elem add(Elem a, Elem b) const override;
  [[nodiscard]] Elem neg(Elem a) const override;
  [[nodiscard]] Elem mul(Elem a, Elem b) const override;
  [[nodiscard]] Elem one() const noexcept override { return one_; }
  [[nodiscard]] std::optional<Elem> inverse(Elem a) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t num_components() const noexcept {
    return components_.size();
  }
  [[nodiscard]] const Ring& component(std::size_t i) const {
    return *components_.at(i);
  }

  /// Splits an index into per-component element indices.
  [[nodiscard]] std::vector<Elem> decompose(Elem a) const;

  /// Inverse of decompose.
  [[nodiscard]] Elem compose(std::span<const Elem> parts) const;

 private:
  std::vector<std::unique_ptr<const Ring>> components_;
  std::vector<Elem> strides_;
  Elem order_ = 1;
  Elem one_ = 0;
};

/// A ring packaged with a generator set for ring-based block designs.
struct RingWithGenerators {
  std::shared_ptr<const Ring> ring;
  /// Generators g_0, ..., g_{M(v)-1}: all pairwise differences are units.
  /// Any prefix of size k (2 <= k <= M(v)) is a valid generator set.
  std::vector<Elem> generators;
};

/// Builds the canonical order-v ring of Lemma 3 -- GF(v) when v is a prime
/// power, otherwise the cross product of the prime-power fields of v --
/// together with a maximum-size generator set (|G| = M(v)).
/// Requires v >= 2.
[[nodiscard]] RingWithGenerators make_ring_with_generators(std::uint64_t v);

}  // namespace pdl::algebra
