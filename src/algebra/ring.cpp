#include "algebra/ring.hpp"

#include <stdexcept>

namespace pdl::algebra {

Elem Ring::pow(Elem a, std::uint64_t e) const {
  Elem result = one();
  while (e > 0) {
    if (e & 1) result = mul(result, a);
    a = mul(a, a);
    e >>= 1;
  }
  return result;
}

std::uint32_t Ring::additive_order(Elem a) const {
  Elem acc = a;
  std::uint32_t m = 1;
  while (acc != zero()) {
    acc = add(acc, a);
    ++m;
    if (m > order())
      throw std::logic_error("additive_order: exceeded ring order");
  }
  return m;
}

std::uint32_t Ring::multiplicative_order(Elem a) const {
  if (!is_unit(a))
    throw std::invalid_argument("multiplicative_order: element is not a unit");
  Elem acc = a;
  std::uint32_t m = 1;
  while (acc != one()) {
    acc = mul(acc, a);
    ++m;
    if (m > order())
      throw std::logic_error("multiplicative_order: exceeded ring order");
  }
  return m;
}

bool is_generator_set(const Ring& ring, std::span<const Elem> generators) {
  for (std::size_t i = 0; i < generators.size(); ++i) {
    for (std::size_t j = i + 1; j < generators.size(); ++j) {
      if (!ring.is_unit(ring.sub(generators[i], generators[j]))) return false;
    }
  }
  return true;
}

std::vector<std::string> check_ring_axioms(const Ring& ring) {
  std::vector<std::string> violations;
  const Elem n = ring.order();
  auto fail = [&](const std::string& msg) {
    if (violations.size() < 16) violations.push_back(msg);
  };

  if (ring.one() == ring.zero()) fail("1 == 0");

  for (Elem a = 0; a < n; ++a) {
    if (ring.add(a, ring.zero()) != a) fail("a + 0 != a");
    if (ring.add(a, ring.neg(a)) != ring.zero()) fail("a + (-a) != 0");
    if (ring.mul(a, ring.one()) != a) fail("a * 1 != a");
    if (auto inv = ring.inverse(a)) {
      if (ring.mul(a, *inv) != ring.one()) fail("a * a^-1 != 1");
    }
    for (Elem b = 0; b < n; ++b) {
      if (ring.add(a, b) != ring.add(b, a)) fail("+ not commutative");
      if (ring.mul(a, b) != ring.mul(b, a)) fail("* not commutative");
      if (ring.add(a, b) >= n) fail("+ out of range");
      if (ring.mul(a, b) >= n) fail("* out of range");
      for (Elem c = 0; c < n; ++c) {
        if (ring.add(ring.add(a, b), c) != ring.add(a, ring.add(b, c)))
          fail("+ not associative");
        if (ring.mul(ring.mul(a, b), c) != ring.mul(a, ring.mul(b, c)))
          fail("* not associative");
        if (ring.mul(a, ring.add(b, c)) !=
            ring.add(ring.mul(a, b), ring.mul(a, c)))
          fail("* does not distribute over +");
      }
      if (!violations.empty()) return violations;  // fail fast
    }
  }
  return violations;
}

}  // namespace pdl::algebra
