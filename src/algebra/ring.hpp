#pragma once
// Abstract interface for finite commutative rings with unit.  Block-design
// constructions (Theorem 1) are written against this interface so that the
// same code serves prime fields, extension fields GF(p^m), modular rings
// Z_m, and cross products of these (Lemma 3).

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace pdl::algebra {

/// Ring elements are dense indices 0 .. order()-1.  Index 0 is always the
/// additive identity.
using Elem = std::uint32_t;

/// A finite commutative ring with a multiplicative unit (1 != 0).
class Ring {
 public:
  virtual ~Ring() = default;

  /// Number of elements in the ring (the ring's order); always >= 2.
  [[nodiscard]] virtual Elem order() const noexcept = 0;

  /// a + b.
  [[nodiscard]] virtual Elem add(Elem a, Elem b) const = 0;

  /// -a (additive inverse).
  [[nodiscard]] virtual Elem neg(Elem a) const = 0;

  /// a * b.
  [[nodiscard]] virtual Elem mul(Elem a, Elem b) const = 0;

  /// The multiplicative identity.
  [[nodiscard]] virtual Elem one() const noexcept = 0;

  /// Multiplicative inverse of a, or nullopt if a is not a unit.
  [[nodiscard]] virtual std::optional<Elem> inverse(Elem a) const = 0;

  /// Short human-readable description, e.g. "GF(8)" or "Z_6 x GF(25)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// The additive identity (always index 0).
  [[nodiscard]] Elem zero() const noexcept { return 0; }

  /// a - b.
  [[nodiscard]] Elem sub(Elem a, Elem b) const { return add(a, neg(b)); }

  /// True iff a has a multiplicative inverse.
  [[nodiscard]] bool is_unit(Elem a) const { return inverse(a).has_value(); }

  /// a ^ e by repeated squaring (e >= 0; a^0 = 1).
  [[nodiscard]] Elem pow(Elem a, std::uint64_t e) const;

  /// Additive order of a: the least m >= 1 with m*a = 0.
  [[nodiscard]] std::uint32_t additive_order(Elem a) const;

  /// Multiplicative order of a unit a: the least m >= 1 with a^m = 1.
  /// Throws std::invalid_argument if a is not a unit.
  [[nodiscard]] std::uint32_t multiplicative_order(Elem a) const;
};

/// True iff all pairwise differences of the given elements are units --
/// i.e. the elements form a valid generator set for a ring-based block
/// design (Section 2.1).
[[nodiscard]] bool is_generator_set(const Ring& ring,
                                    std::span<const Elem> generators);

/// Exhaustively verifies the commutative-ring-with-unit axioms; intended for
/// tests on small rings (O(order^3) work).  Returns a human-readable list of
/// violated axioms (empty if the axioms hold).
[[nodiscard]] std::vector<std::string> check_ring_axioms(const Ring& ring);

}  // namespace pdl::algebra
