#include "algebra/zmod.hpp"

#include <stdexcept>

namespace pdl::algebra {

namespace {

// Extended Euclid: returns gcd(a, b) and x with a*x === gcd (mod b).
std::int64_t ext_gcd(std::int64_t a, std::int64_t b, std::int64_t& x) {
  std::int64_t x0 = 1, x1 = 0;
  while (b != 0) {
    const std::int64_t q = a / b;
    a -= q * b;
    std::swap(a, b);
    x0 -= q * x1;
    std::swap(x0, x1);
  }
  x = x0;
  return a;
}

}  // namespace

ZmodRing::ZmodRing(Elem m) : m_(m) {
  if (m < 2) throw std::invalid_argument("ZmodRing: modulus must be >= 2");
}

Elem ZmodRing::add(Elem a, Elem b) const {
  const std::uint64_t s = static_cast<std::uint64_t>(a) + b;
  return static_cast<Elem>(s >= m_ ? s - m_ : s);
}

Elem ZmodRing::neg(Elem a) const { return a == 0 ? 0 : m_ - a; }

Elem ZmodRing::mul(Elem a, Elem b) const {
  return static_cast<Elem>(static_cast<std::uint64_t>(a) * b % m_);
}

std::optional<Elem> ZmodRing::inverse(Elem a) const {
  std::int64_t x = 0;
  if (ext_gcd(a, m_, x) != 1) return std::nullopt;
  const std::int64_t r = ((x % m_) + m_) % m_;
  return static_cast<Elem>(r);
}

std::string ZmodRing::name() const { return "Z_" + std::to_string(m_); }

}  // namespace pdl::algebra
