#pragma once
// The modular ring Z_m of integers mod m.

#include "algebra/ring.hpp"

namespace pdl::algebra {

/// Z_m: integers modulo m (m >= 2), a commutative ring with unit.
/// Element i represents the residue class of i.
class ZmodRing final : public Ring {
 public:
  explicit ZmodRing(Elem m);

  [[nodiscard]] Elem order() const noexcept override { return m_; }
  [[nodiscard]] Elem add(Elem a, Elem b) const override;
  [[nodiscard]] Elem neg(Elem a) const override;
  [[nodiscard]] Elem mul(Elem a, Elem b) const override;
  [[nodiscard]] Elem one() const noexcept override { return 1; }
  [[nodiscard]] std::optional<Elem> inverse(Elem a) const override;
  [[nodiscard]] std::string name() const override;

 private:
  Elem m_;
};

}  // namespace pdl::algebra
