#include "api/array.hpp"

#include <bit>
#include <fstream>
#include <sstream>
#include <utility>

#include "engine/engine.hpp"
#include "layout/metrics.hpp"
#include "layout/serialize.hpp"

namespace pdl::api {

namespace {

using core::BuiltLayout;
using core::Construction;
using layout::Layout;
using layout::SparedLayout;
using layout::Stripe;
using layout::StripeUnit;

/// The stripe's parity positions in codec ordinal order: the layout's
/// parity_pos (P) first, then m - 1 extra designations walking cyclically
/// from parity_pos + 1 and skipping the spare slot.  Deterministic, so
/// the cyclic walk spreads the extra parity (like Q) across positions --
/// and thus disks -- exactly as the primary parity is spread by the
/// declustered layout itself.
[[nodiscard]] std::vector<std::uint32_t> parity_positions_of(
    const Stripe& st, std::uint32_t spare_pos, std::uint32_t m) {
  std::vector<std::uint32_t> positions;
  positions.reserve(m);
  positions.push_back(st.parity_pos);
  const auto width = static_cast<std::uint32_t>(st.units.size());
  for (std::uint32_t step = 1; positions.size() < m && step < width;
       ++step) {
    const std::uint32_t pos = (st.parity_pos + step) % width;
    if (pos == spare_pos) continue;
    positions.push_back(pos);
  }
  return positions;
}

/// Per-stripe bit masks of every parity position for the codec's m, the
/// shape layout::AddressMapper's parity-aware constructor consumes.
[[nodiscard]] std::vector<std::uint64_t> compute_parity_masks(
    const Layout& layout, const SparedLayout* spared, std::uint32_t m) {
  const auto& stripes = layout.stripes();
  std::vector<std::uint64_t> masks(stripes.size(), 0);
  for (std::size_t si = 0; si < stripes.size(); ++si) {
    const std::uint32_t spare =
        spared ? spared->spare_pos[si] : 0xffffffffu;
    for (const std::uint32_t pos :
         parity_positions_of(stripes[si], spare, m))
      masks[si] |= 1ull << pos;
  }
  return masks;
}

/// Data units per layout iteration under the given sparing mode and
/// parity count; 0 means the array could hold no data and must be
/// rejected before the mapper (which throws) sees it.
[[nodiscard]] std::uint64_t count_data_units(const Layout& layout,
                                             bool spared, std::uint32_t m) {
  const std::size_t overhead = m + (spared ? 1 : 0);  // parity (+ spare)
  std::uint64_t count = 0;
  for (const Stripe& st : layout.stripes())
    if (st.units.size() > overhead) count += st.units.size() - overhead;
  return count;
}

[[nodiscard]] Status validate_layout(const Layout& layout) {
  const auto errors = layout.validate();
  if (!errors.empty())
    return Status::invalid_argument("invalid layout: " + errors.front());
  // The online state machine tracks lost positions in a 64-bit mask per
  // stripe (like ScenarioSimulator's [2, 64] stripe-size bound).
  for (const Stripe& st : layout.stripes()) {
    if (st.units.size() > 64)
      return Status::invalid_argument(
          "stripe sizes above 64 are not supported (got " +
          std::to_string(st.units.size()) + ")");
  }
  return OkStatus();
}

/// Every stripe must hold the codec's m parity units, the spare (if
/// any), and at least one data unit.
[[nodiscard]] Status validate_codec_fit(const Layout& layout, bool spared,
                                        core::CodecKind codec) {
  const std::uint32_t m = core::codec_for(codec).num_parity();
  const std::size_t overhead = m + (spared ? 1 : 0);
  for (const Stripe& st : layout.stripes()) {
    if (st.units.size() <= overhead)
      return Status::invalid_argument(
          "stripe of " + std::to_string(st.units.size()) +
          " units cannot hold " + std::to_string(m) + " " +
          std::string(core::codec_kind_name(codec)) + " parity units" +
          (spared ? ", a spare," : "") + " and data");
  }
  return OkStatus();
}

}  // namespace

std::string_view disk_state_name(DiskState state) noexcept {
  switch (state) {
    case DiskState::kHealthy: return "healthy";
    case DiskState::kFailed: return "failed";
    case DiskState::kRebuilding: return "rebuilding";
  }
  return "?";
}

Array::Array(std::shared_ptr<const BuiltLayout> built,
             std::shared_ptr<const SparedLayout> spared,
             core::CodecKind codec)
    : built_(std::move(built)),
      spared_(std::move(spared)),
      codec_kind_(codec),
      num_parity_(core::codec_for(codec).num_parity()),
      parity_mask_(compute_parity_masks(
          spared_ ? spared_->layout : built_->layout, spared_.get(),
          num_parity_)),
      mapper_(layout::AddressMapper(
          spared_ ? spared_->layout : built_->layout,
          spared_ ? spared_->spare_pos : std::vector<std::uint32_t>{},
          parity_mask_)) {
  const Layout& l = layout();
  const auto& stripes = l.stripes();
  const std::uint32_t n = static_cast<std::uint32_t>(stripes.size());

  data_units_.reserve(mapper_.data_units_per_iteration());
  disk_units_.resize(l.num_disks());
  stripe_num_data_.resize(n);
  parity_positions_.resize(n);
  unit_index_.resize(n);
  for (std::uint32_t si = 0; si < n; ++si) {
    const Stripe& st = stripes[si];
    const std::uint32_t spare =
        spared_ ? spared_->spare_pos[si] : 0xffffffffu;
    parity_positions_[si] = parity_positions_of(st, spare, num_parity_);
    unit_index_[si].assign(st.units.size(), kNoUnit);
    // Data indices in increasing position order (the codec convention and
    // the mapper's logical numbering, kept in lockstep).
    std::uint32_t di = 0;
    for (std::uint32_t pos = 0; pos < st.units.size(); ++pos) {
      disk_units_[st.units[pos].disk].push_back({si, pos});
      if ((parity_mask_[si] >> pos) & 1) continue;
      if (pos == spare) continue;
      unit_index_[si][pos] = di++;
      data_units_.push_back({si, pos});
    }
    stripe_num_data_[si] = di;
    for (std::uint32_t j = 0; j < num_parity_; ++j)
      unit_index_[si][parity_positions_[si][j]] = di + j;
  }

  disk_state_.assign(l.num_disks(), DiskState::kHealthy);
  lost_mask_.assign(n, 0);
  unrecoverable_.assign(n, 0);
  redirect_.assign(n, kNone);
  pending_home_.assign(l.num_disks(), 0);
}

Result<Array> Array::create(const core::ArraySpec& spec,
                            const core::BuildOptions& build,
                            const ArrayOptions& options) {
  return create_with(engine::Engine::global(), spec, build, options);
}

Result<Array> Array::create_with(engine::Engine& engine,
                                 const core::ArraySpec& spec,
                                 const core::BuildOptions& build,
                                 const ArrayOptions& options) {
  if (Status domain = layout::validate_vk(spec.num_disks, spec.stripe_size);
      !domain.ok())
    return domain;
  if (spec.stripe_size > 64)
    return Status::invalid_argument(
        "stripe sizes above 64 are not supported by the online state "
        "machine (got k=" + std::to_string(spec.stripe_size) + ")");
  const bool spare = options.sparing == SparingMode::kDistributed;
  const std::uint32_t m = core::codec_for(options.codec).num_parity();
  if (spec.stripe_size < m + 1 + (spare ? 1 : 0))
    return Status::invalid_argument(
        "k=" + std::to_string(spec.stripe_size) +
        " cannot hold " + std::to_string(m) + " " +
        std::string(core::codec_kind_name(options.codec)) +
        " parity units" + (spare ? ", a spare," : "") +
        " and at least one data unit per stripe");

  std::shared_ptr<const BuiltLayout> built;
  std::shared_ptr<const SparedLayout> spared;
  if (options.construction) {
    // Pinned construction: bypass ranking (and the cache).  Unlike
    // build_best, build_with has no fallback route, so a builder throwing
    // mid-build surfaces here as a typed error rather than an exception.
    std::optional<BuiltLayout> b;
    try {
      b = engine.planner().build_with(*options.construction, spec, build);
    } catch (const std::exception& e) {
      return Status::unsupported(
          core::construction_name(*options.construction) +
          " failed to build at v=" + std::to_string(spec.num_disks) +
          " k=" + std::to_string(spec.stripe_size) + ": " + e.what());
    }
    if (!b)
      return Status::unsupported(
          core::construction_name(*options.construction) +
          " does not apply at v=" + std::to_string(spec.num_disks) +
          " k=" + std::to_string(spec.stripe_size) + " under the options");
    built = std::make_shared<const BuiltLayout>(std::move(*b));
    if (spare)
      spared = std::make_shared<const SparedLayout>(
          layout::add_distributed_sparing(built->layout));
  } else {
    auto b = engine.build(spec, build);
    if (!b.ok()) return b.status();
    built = std::move(b).value();
    if (spare) {
      auto s = engine.build_spared(spec, build);
      if (!s.ok()) return s.status();
      spared = std::move(s).value();
    }
  }
  Array array(std::move(built), std::move(spared), options.codec);
  array.integrity_ = options.integrity;
  return array;
}

Result<Array> Array::adopt(Layout layout, core::CodecKind codec,
                           bool integrity) {
  if (Status valid = validate_layout(layout); !valid.ok()) return valid;
  if (Status fit = validate_codec_fit(layout, /*spared=*/false, codec);
      !fit.ok())
    return fit;
  if (count_data_units(layout, /*spared=*/false,
                       core::codec_for(codec).num_parity()) == 0)
    return Status::invalid_argument("layout holds no data units");
  auto metrics = layout::compute_metrics(layout);
  auto built = std::make_shared<const BuiltLayout>(
      BuiltLayout{std::move(layout), Construction::kExternal,
                  "externally supplied layout", std::move(metrics)});
  Array array(std::move(built), nullptr, codec);
  array.integrity_ = integrity;
  return array;
}

Result<Array> Array::adopt_spared(SparedLayout spared,
                                  core::CodecKind codec, bool integrity) {
  if (Status valid = validate_layout(spared.layout); !valid.ok())
    return valid;
  if (Status valid = validate_spare_map(spared); !valid.ok()) return valid;
  if (Status fit = validate_codec_fit(spared.layout, /*spared=*/true, codec);
      !fit.ok())
    return fit;
  if (count_data_units(spared.layout, /*spared=*/true,
                       core::codec_for(codec).num_parity()) == 0)
    return Status::invalid_argument(
        "layout holds no data units under distributed sparing");
  auto metrics = layout::compute_metrics(spared.layout);
  auto built = std::make_shared<const BuiltLayout>(
      BuiltLayout{spared.layout, Construction::kExternal,
                  "externally supplied layout (distributed sparing)",
                  std::move(metrics)});
  auto shared_spared =
      std::make_shared<const SparedLayout>(std::move(spared));
  Array array(std::move(built), std::move(shared_spared), codec);
  array.integrity_ = integrity;
  return array;
}

std::string Array::serialize() const {
  std::string body = spared_ ? layout::serialize_spared_layout(*spared_)
                             : layout::serialize_layout(layout());
  if (codec_kind_ != core::CodecKind::kXorParity)
    body = "pdl-array-codec " +
           std::string(core::codec_kind_name(codec_kind_)) + "\n" + body;
  // The integrity header composes outermost: it changes the on-media disk
  // format (the CRC region), so a reopened store must see it before
  // anything else.  XOR arrays without integrity keep the legacy
  // headerless form.
  if (integrity_) body = "pdl-array-integrity crc32c\n" + body;
  return body;
}

Result<Array> Array::deserialize(const std::string& text) {
  std::istringstream probe(text);
  std::string magic;
  probe >> magic;
  core::CodecKind codec = core::CodecKind::kXorParity;
  bool integrity = false;
  std::string body = text;
  if (magic == "pdl-array-integrity") {
    std::string scheme;
    probe >> scheme;
    if (scheme != "crc32c")
      return Status::parse_error("unknown checksum scheme '" + scheme +
                                 "' in pdl-array-integrity header");
    integrity = true;
    const std::size_t newline = body.find('\n');
    if (newline == std::string::npos)
      return Status::parse_error(
          "pdl-array-integrity header without a layout");
    body = body.substr(newline + 1);
    probe.str(body);
    probe.clear();
    probe >> magic;
  }
  if (magic == "pdl-array-codec") {
    std::string name;
    probe >> name;
    if (name == "rs") {
      codec = core::CodecKind::kReedSolomonPQ;
    } else if (name != "xor") {
      return Status::parse_error("unknown codec '" + name +
                                 "' in pdl-array-codec header");
    }
    const std::size_t newline = body.find('\n');
    if (newline == std::string::npos)
      return Status::parse_error("pdl-array-codec header without a layout");
    body = body.substr(newline + 1);
    probe.str(body);
    probe.clear();
    probe >> magic;
  }
  if (magic == "pdl-spared-layout") {
    auto spared = layout::parse_spared_layout(body);
    if (!spared.ok()) return spared.status();
    return adopt_spared(std::move(spared).value(), codec, integrity);
  }
  auto plain = layout::parse_layout(body);
  if (!plain.ok()) return plain.status();
  return adopt(std::move(plain).value(), codec, integrity);
}

Status Array::save(const std::string& path) const {
  // Through serialize(), not layout::save_*, so the codec and integrity
  // headers survive the round trip (save_layout would silently drop them
  // and a load() would come back as a headerless XOR array).
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::io_error("cannot open " + path + " for writing");
  out << serialize();
  out.close();
  if (!out) return Status::io_error("write failed: " + path);
  return OkStatus();
}

Result<Array> Array::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::io_error("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) return Status::io_error("read failed: " + path);
  return deserialize(text.str());
}

// ----------------------------------------------------------------- queries

std::uint32_t Array::num_disks() const noexcept {
  return layout().num_disks();
}

std::uint32_t Array::units_per_disk() const noexcept {
  return layout().units_per_disk();
}

std::uint32_t Array::num_stripes() const noexcept {
  return static_cast<std::uint32_t>(layout().num_stripes());
}

Array::LogicalRef Array::logical_ref(std::uint64_t logical) const noexcept {
  const std::uint64_t per_iter = data_units_.size();
  const UnitRef ref = data_units_[logical % per_iter];
  return {ref.stripe, ref.pos, logical / per_iter};
}

core::Construction Array::construction() const noexcept {
  return built_->construction;
}

const std::string& Array::description() const noexcept {
  return built_->description;
}

const layout::LayoutMetrics& Array::metrics() const noexcept {
  return built_->metrics;
}

const Layout& Array::layout() const noexcept {
  return spared_ ? spared_->layout : built_->layout;
}

const std::vector<std::uint32_t>& Array::spare_positions() const noexcept {
  static const std::vector<std::uint32_t> kEmpty;
  return spared_ ? spared_->spare_pos : kEmpty;
}

Result<DiskState> Array::disk_state(DiskId disk) const {
  if (disk >= disk_state_.size())
    return Status::invalid_argument("disk " + std::to_string(disk) +
                                    " out of range");
  return disk_state_[disk];
}

std::uint32_t Array::num_failed() const noexcept {
  std::uint32_t count = 0;
  for (const DiskState state : disk_state_)
    count += state != DiskState::kHealthy;
  return count;
}

bool Array::healthy() const noexcept {
  return num_failed() == 0 && lost_units_ == 0 && stripes_lost_ == 0;
}

// ------------------------------------------------------------- address ops

Status Array::map_batch(std::span<const std::uint64_t> logicals,
                        std::span<Physical> out) const {
  if (out.size() < logicals.size())
    return Status::invalid_argument(
        "output span holds " + std::to_string(out.size()) +
        " slots for " + std::to_string(logicals.size()) + " logicals");
  mapper_.map_batch(logicals, out);
  return OkStatus();
}

// ------------------------------------------------------------- serving ops

bool Array::is_content(std::uint32_t stripe,
                       std::uint32_t pos) const noexcept {
  return !spared_ || pos != spared_->spare_pos[stripe];
}

const StripeUnit& Array::cur_unit(std::uint32_t stripe,
                                  std::uint32_t pos) const noexcept {
  const Stripe& st = layout().stripes()[stripe];
  if (spared_ && redirect_[stripe] == pos)
    return st.units[spared_->spare_pos[stripe]];
  return st.units[pos];
}

Result<ReadPlan> Array::locate(std::uint64_t logical,
                               std::span<Physical> survivors,
                               std::span<std::uint32_t> survivor_index) const {
  const std::uint64_t per_iter = data_units_.size();
  const std::uint64_t iteration = logical / per_iter;
  const UnitRef ref = data_units_[logical % per_iter];
  const std::uint64_t lift =
      iteration * static_cast<std::uint64_t>(units_per_disk());

  ReadPlan plan;
  if (!is_lost(ref.stripe, ref.pos)) {
    const StripeUnit& u = cur_unit(ref.stripe, ref.pos);
    plan.kind = ReadPlan::Kind::kDirect;
    plan.target = {u.disk, lift + u.offset};
    return plan;
  }
  if (unrecoverable_[ref.stripe]) {
    plan.kind = ReadPlan::Kind::kUnrecoverable;
    return plan;
  }

  // Degraded read: the survivor set is every other surviving content
  // unit of the stripe, at its current (redirect-aware) home -- exactly
  // the units ScenarioSimulator reads to reconstruct on the fly.  Under
  // a multi-parity codec other units may be lost too; they are excluded
  // here and reported through erased_index for the decode.
  const Stripe& st = layout().stripes()[ref.stripe];
  std::uint32_t count = 0;
  for (std::uint32_t p = 0; p < st.units.size(); ++p) {
    if (p == ref.pos || !is_content(ref.stripe, p)) continue;
    if (is_lost(ref.stripe, p)) continue;
    ++count;
  }
  if (survivors.size() < count)
    return Status::invalid_argument(
        "survivor span holds " + std::to_string(survivors.size()) +
        " slots, stripe needs " + std::to_string(count) +
        " (max_stripe_size() - 1 always suffices)");
  if (!survivor_index.empty() && survivor_index.size() < count)
    return Status::invalid_argument(
        "survivor_index span holds " + std::to_string(survivor_index.size()) +
        " slots, stripe needs " + std::to_string(count));
  plan.num_data = stripe_num_data_[ref.stripe];
  plan.erased_index[plan.num_erased++] = unit_index_[ref.stripe][ref.pos];
  std::uint32_t i = 0;
  for (std::uint32_t p = 0; p < st.units.size(); ++p) {
    if (p == ref.pos || !is_content(ref.stripe, p)) continue;
    if (is_lost(ref.stripe, p)) {
      plan.erased_index[plan.num_erased++] = unit_index_[ref.stripe][p];
      continue;
    }
    const StripeUnit& u = cur_unit(ref.stripe, p);
    if (!survivor_index.empty())
      survivor_index[i] = unit_index_[ref.stripe][p];
    survivors[i++] = {u.disk, lift + u.offset};
  }
  plan.kind = ReadPlan::Kind::kDegraded;
  plan.num_survivors = count;
  return plan;
}

Result<WritePlan> Array::plan_write(std::uint64_t logical,
                                    std::span<Physical> peer_reads,
                                    std::span<std::uint32_t> peer_index) const {
  const std::uint64_t per_iter = data_units_.size();
  const std::uint64_t iteration = logical / per_iter;
  const UnitRef ref = data_units_[logical % per_iter];
  const std::uint64_t lift =
      iteration * static_cast<std::uint64_t>(units_per_disk());
  const Stripe& st = layout().stripes()[ref.stripe];
  const std::vector<std::uint32_t>& parities = parity_positions_[ref.stripe];
  const std::uint32_t kd = stripe_num_data_[ref.stripe];

  const bool data_lost = is_lost(ref.stripe, ref.pos);

  WritePlan plan;
  if (data_lost && unrecoverable_[ref.stripe]) {
    plan.kind = WritePlan::Kind::kUnrecoverable;
    return plan;
  }
  plan.num_data = kd;
  plan.data_index = unit_index_[ref.stripe][ref.pos];
  // The surviving parity units, ordinal order (P before Q).
  for (std::uint32_t j = 0; j < parities.size(); ++j) {
    const std::uint32_t pp = parities[j];
    if (is_lost(ref.stripe, pp)) continue;
    const StripeUnit& p = cur_unit(ref.stripe, pp);
    plan.parity_targets[plan.num_parities] = {p.disk, lift + p.offset};
    plan.parity_index[plan.num_parities] = j;
    ++plan.num_parities;
  }
  if (plan.num_parities > 0) plan.parity = plan.parity_targets[0];

  if (!data_lost && plan.num_parities > 0) {
    const StripeUnit& d = cur_unit(ref.stripe, ref.pos);
    plan.kind = WritePlan::Kind::kReadModifyWrite;
    plan.data = {d.disk, lift + d.offset};
    return plan;
  }
  if (data_lost) {
    // Fold the new value into the surviving parities: read the other
    // surviving data peers, write the parity units.  Any other erased
    // content unit is reported through erased_index so a multi-parity
    // store can decode it before re-encoding.
    plan.erased_index[plan.num_erased++] = plan.data_index;
    std::uint32_t count = 0;
    for (std::uint32_t p = 0; p < st.units.size(); ++p) {
      if (p == ref.pos || !is_content(ref.stripe, p)) continue;
      if (unit_index_[ref.stripe][p] >= kd) continue;  // parity
      if (is_lost(ref.stripe, p)) {
        plan.erased_index[plan.num_erased++] = unit_index_[ref.stripe][p];
        continue;
      }
      ++count;
    }
    for (const std::uint32_t pp : parities)
      if (is_lost(ref.stripe, pp))
        plan.erased_index[plan.num_erased++] = unit_index_[ref.stripe][pp];
    if (peer_reads.size() < count)
      return Status::invalid_argument(
          "peer span holds " + std::to_string(peer_reads.size()) +
          " slots, stripe needs " + std::to_string(count));
    if (!peer_index.empty() && peer_index.size() < count)
      return Status::invalid_argument(
          "peer_index span holds " + std::to_string(peer_index.size()) +
          " slots, stripe needs " + std::to_string(count));
    std::uint32_t i = 0;
    for (std::uint32_t p = 0; p < st.units.size(); ++p) {
      if (p == ref.pos || !is_content(ref.stripe, p)) continue;
      if (unit_index_[ref.stripe][p] >= kd) continue;  // parity
      if (is_lost(ref.stripe, p)) continue;
      const StripeUnit& u = cur_unit(ref.stripe, p);
      if (!peer_index.empty()) peer_index[i] = unit_index_[ref.stripe][p];
      peer_reads[i++] = {u.disk, lift + u.offset};
    }
    plan.kind = WritePlan::Kind::kReconstructWrite;
    plan.num_peer_reads = count;
    return plan;
  }
  // Every parity lost, data intact: the stripe is unprotected; write the
  // data.
  const StripeUnit& d = cur_unit(ref.stripe, ref.pos);
  plan.kind = WritePlan::Kind::kUnprotectedWrite;
  plan.data = {d.disk, lift + d.offset};
  return plan;
}

Result<std::uint32_t> Array::stripe_peers(
    std::uint64_t logical, std::span<Physical> peers,
    std::span<std::uint32_t> peer_index) const {
  const std::uint64_t per_iter = data_units_.size();
  const UnitRef ref = data_units_[logical % per_iter];
  const std::uint64_t lift =
      (logical / per_iter) * static_cast<std::uint64_t>(units_per_disk());
  const Stripe& st = layout().stripes()[ref.stripe];
  const std::uint32_t kd = stripe_num_data_[ref.stripe];

  std::uint32_t count = 0;
  for (std::uint32_t p = 0; p < st.units.size(); ++p) {
    if (p == ref.pos || !is_content(ref.stripe, p)) continue;
    if (unit_index_[ref.stripe][p] >= kd) continue;  // parity
    if (is_lost(ref.stripe, p)) continue;
    ++count;
  }
  if (peers.size() < count)
    return Status::invalid_argument(
        "peer span holds " + std::to_string(peers.size()) +
        " slots, stripe needs " + std::to_string(count));
  if (!peer_index.empty() && peer_index.size() < count)
    return Status::invalid_argument(
        "peer_index span holds " + std::to_string(peer_index.size()) +
        " slots, stripe needs " + std::to_string(count));
  std::uint32_t i = 0;
  for (std::uint32_t p = 0; p < st.units.size(); ++p) {
    if (p == ref.pos || !is_content(ref.stripe, p)) continue;
    if (unit_index_[ref.stripe][p] >= kd) continue;  // parity
    if (is_lost(ref.stripe, p)) continue;
    const StripeUnit& u = cur_unit(ref.stripe, p);
    if (!peer_index.empty()) peer_index[i] = unit_index_[ref.stripe][p];
    peers[i++] = {u.disk, lift + u.offset};
  }
  return count;
}

Result<std::uint32_t> Array::stripe_units(
    std::uint32_t stripe, std::span<StripeUnitStatus> out) const {
  if (stripe >= num_stripes())
    return Status::invalid_argument("stripe " + std::to_string(stripe) +
                                    " out of range");
  const Stripe& st = layout().stripes()[stripe];
  const std::uint32_t width = stripe_num_data_[stripe] + num_parity_;
  if (out.size() < width)
    return Status::invalid_argument(
        "unit span holds " + std::to_string(out.size()) +
        " slots, stripe needs " + std::to_string(width));
  for (std::uint32_t p = 0; p < st.units.size(); ++p) {
    if (!is_content(stripe, p)) continue;
    const std::uint32_t index = unit_index_[stripe][p];
    const bool lost = is_lost(stripe, p);
    // A lost unit has no readable copy; its home slot is still the
    // address rebuild will repopulate, so report that.
    const StripeUnit& u = lost ? st.units[p] : cur_unit(stripe, p);
    out[index] = {index, {u.disk, u.offset}, lost};
  }
  return width;
}

// -------------------------------------------------------------- transitions

void Array::mark_lost(std::uint32_t stripe, std::uint32_t pos) {
  if (unrecoverable_[stripe]) {
    lost_mask_[stripe] |= 1ull << pos;
    return;
  }
  if (is_lost(stripe, pos)) return;
  lost_mask_[stripe] |= 1ull << pos;
  if (std::popcount(lost_mask_[stripe]) > static_cast<int>(num_parity_)) {
    // One concurrent loss more than the codec tolerates: the stripe is
    // gone.  Its previously pending unit(s) leave the rebuild queue,
    // exactly like the simulator dropping jobs for unrecoverable stripes.
    unrecoverable_[stripe] = 1;
    ++stripes_lost_;
    const Stripe& st = layout().stripes()[stripe];
    std::uint64_t others = lost_mask_[stripe] & ~(1ull << pos);
    while (others != 0) {
      const auto p = static_cast<std::uint32_t>(std::countr_zero(others));
      others &= others - 1;
      --lost_units_;
      const DiskId home = st.units[p].disk;
      if (--pending_home_[home] == 0 &&
          disk_state_[home] == DiskState::kRebuilding)
        disk_state_[home] = DiskState::kHealthy;
    }
    return;
  }
  ++lost_units_;
  ++pending_home_[layout().stripes()[stripe].units[pos].disk];
}

Status Array::fail_disk(DiskId disk) {
  if (disk >= disk_state_.size())
    return Status::invalid_argument("disk " + std::to_string(disk) +
                                    " out of range");
  if (disk_state_[disk] != DiskState::kHealthy)
    return Status::failed_precondition(
        "disk " + std::to_string(disk) + " is already " +
        std::string(disk_state_name(disk_state_[disk])));
  disk_state_[disk] = DiskState::kFailed;

  for (const HomeRef& ref : disk_units_[disk]) {
    if (spared_ && ref.pos == spared_->spare_pos[ref.stripe]) {
      // The stripe's unit on the failed disk is its spare slot.  If a
      // rebuilt unit lived there, that content is lost again; an empty
      // spare costs only capacity.
      if (redirect_[ref.stripe] != kNone) {
        const std::uint32_t q = redirect_[ref.stripe];
        redirect_[ref.stripe] = kNone;
        mark_lost(ref.stripe, q);
      }
      continue;
    }
    if (spared_ && redirect_[ref.stripe] == ref.pos)
      continue;  // content moved to the spare earlier; home slot is empty
    mark_lost(ref.stripe, ref.pos);
  }
  return OkStatus();
}

Status Array::replace_disk(DiskId disk) {
  if (disk >= disk_state_.size())
    return Status::invalid_argument("disk " + std::to_string(disk) +
                                    " out of range");
  if (disk_state_[disk] != DiskState::kFailed)
    return Status::failed_precondition(
        "disk " + std::to_string(disk) + " is " +
        std::string(disk_state_name(disk_state_[disk])) +
        "; only a failed disk can be replaced");
  disk_state_[disk] = pending_home_[disk] > 0 ? DiskState::kRebuilding
                                              : DiskState::kHealthy;
  return OkStatus();
}

std::optional<Physical> Array::rebuild_target(std::uint32_t stripe,
                                              std::uint32_t pos,
                                              bool& to_spare,
                                              bool allow_spare) const {
  const Stripe& st = layout().stripes()[stripe];
  if (spared_ && allow_spare) {
    const std::uint32_t sp = spared_->spare_pos[stripe];
    const StripeUnit& spare = st.units[sp];
    if (redirect_[stripe] == kNone &&
        disk_state_[spare.disk] == DiskState::kHealthy) {
      to_spare = true;
      return Physical{spare.disk, spare.offset};
    }
  }
  const StripeUnit& home = st.units[pos];
  if (disk_state_[home.disk] != DiskState::kFailed) {
    to_spare = false;
    return Physical{home.disk, home.offset};
  }
  return std::nullopt;
}

Result<RebuildPlan> Array::plan_rebuild() const {
  RebuildPlan plan;
  plan.reads_per_disk.assign(num_disks(), 0);
  plan.writes_per_disk.assign(num_disks(), 0);
  const auto& stripes = layout().stripes();
  for (std::uint32_t si = 0; si < stripes.size(); ++si) {
    if (lost_mask_[si] == 0) continue;
    if (unrecoverable_[si]) {
      ++plan.unrecoverable;
      continue;
    }
    // A recoverable stripe has at most num_parity_ lost units; plan one
    // step per lost unit.  Only one step may claim the stripe's spare --
    // later steps of the same stripe steer to their home slots so a
    // planned batch stays applicable in order.
    bool spare_free = !spared_ || redirect_[si] == kNone;
    std::uint64_t lost = lost_mask_[si];
    while (lost != 0) {
      const auto pos = static_cast<std::uint32_t>(std::countr_zero(lost));
      lost &= lost - 1;
      bool to_spare = false;
      const auto target = rebuild_target(si, pos, to_spare, spare_free);
      if (!target) {
        ++plan.blocked;
        continue;
      }
      if (to_spare) spare_free = false;
      RebuildStep step;
      step.stripe = si;
      step.lost_pos = pos;
      step.to_spare = to_spare;
      step.target = *target;
      step.num_data = stripe_num_data_[si];
      step.target_index = unit_index_[si][pos];
      step.erased_index[step.num_erased++] = step.target_index;
      const Stripe& st = stripes[si];
      step.reads.reserve(st.units.size() - 1);
      step.read_indices.reserve(st.units.size() - 1);
      for (std::uint32_t p = 0; p < st.units.size(); ++p) {
        if (p == pos || !is_content(si, p)) continue;
        if (is_lost(si, p)) {
          step.erased_index[step.num_erased++] = unit_index_[si][p];
          continue;
        }
        const StripeUnit& u = cur_unit(si, p);
        step.reads.push_back({u.disk, u.offset});
        step.read_indices.push_back(unit_index_[si][p]);
        ++plan.reads_per_disk[u.disk];
      }
      ++plan.writes_per_disk[target->disk];
      plan.steps.push_back(std::move(step));
    }
  }
  return plan;
}

Status Array::apply_rebuild_step(const RebuildStep& step) {
  const auto& stripes = layout().stripes();
  if (step.stripe >= stripes.size())
    return Status::invalid_argument("stripe " + std::to_string(step.stripe) +
                                    " out of range");
  const Stripe& st = stripes[step.stripe];
  if (step.lost_pos >= st.units.size())
    return Status::invalid_argument("position " +
                                    std::to_string(step.lost_pos) +
                                    " out of range");
  if (unrecoverable_[step.stripe])
    return Status::failed_precondition(
        "stripe " + std::to_string(step.stripe) +
        " is unrecoverable; its units cannot be rebuilt");
  if (!is_lost(step.stripe, step.lost_pos))
    return Status::failed_precondition(
        "stale step: the unit is not lost (already rebuilt?)");

  // The step's target must still be writable and consistent: either the
  // stripe's own (still empty, still healthy) spare unit, or the home
  // slot on a disk that is not failed.  Accepting either valid choice --
  // not just the one plan_rebuild would pick right now -- keeps a planned
  // batch applicable even as disks finish rebuilding mid-batch.
  if (step.to_spare) {
    if (!spared_)
      return Status::failed_precondition(
          "stale step: array has no distributed sparing");
    const std::uint32_t sp = spared_->spare_pos[step.stripe];
    const StripeUnit& spare = st.units[sp];
    if (redirect_[step.stripe] != kNone)
      return Status::failed_precondition(
          "stale step: the stripe's spare is already consumed");
    if (disk_state_[spare.disk] != DiskState::kHealthy)
      return Status::failed_precondition(
          "stale step: the spare's disk is not healthy");
    if (step.target != Physical{spare.disk, spare.offset})
      return Status::failed_precondition(
          "stale step: target is not the stripe's spare unit");
  } else {
    const StripeUnit& home = st.units[step.lost_pos];
    if (disk_state_[home.disk] == DiskState::kFailed)
      return Status::failed_precondition(
          "stale step: the home disk has no replacement attached");
    if (step.target != Physical{home.disk, home.offset})
      return Status::failed_precondition(
          "stale step: target is not the unit's home slot");
  }

  lost_mask_[step.stripe] &= ~(1ull << step.lost_pos);
  --lost_units_;
  if (step.to_spare) redirect_[step.stripe] = step.lost_pos;
  const DiskId home = st.units[step.lost_pos].disk;
  if (--pending_home_[home] == 0 &&
      disk_state_[home] == DiskState::kRebuilding)
    disk_state_[home] = DiskState::kHealthy;
  return OkStatus();
}

Result<RebuildOutcome> Array::rebuild() {
  RebuildOutcome outcome;
  for (;;) {
    auto plan = plan_rebuild();
    if (!plan.ok()) return plan.status();
    if (plan->steps.empty()) {
      outcome.blocked = plan->blocked;
      return outcome;
    }
    for (const RebuildStep& step : plan->steps) {
      if (Status applied = apply_rebuild_step(step); !applied.ok())
        return applied;
      ++outcome.applied;
    }
    // Re-plan: a disk finishing its rebuild mid-batch can make spare
    // units usable again and unblock further stripes.
  }
}

}  // namespace pdl::api
