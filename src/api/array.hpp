#pragma once
// pdl::api::Array -- the library's front door.
//
// One object owns the whole lifecycle the lower layers expose piecemeal:
// a cached BuiltLayout from the construction engine, the CompiledMapper
// serving tables, and the mutable online state of the array (healthy /
// failed / rebuilding disks, lost units, spare redirections).  Callers that
// previously hand-wired Engine::build + CompiledMapper + SparedLayout +
// core::plan_recovery now write:
//
//   auto array = pdl::api::Array::create({.num_disks = 17, .stripe_size = 5});
//   if (!array.ok()) { /* array.status() is a typed pdl::Status */ }
//   auto where = array->map(12345);                  // O(1) table lookup
//   array->fail_disk(3);
//   std::vector<pdl::api::Physical> survivors(array->max_stripe_size());
//   auto read = array->locate(12345, survivors);     // degraded-read plan
//   array->replace_disk(3);
//   array->rebuild();                                // back to healthy
//
// Address ops come in single and span-based batched forms; serving ops
// (locate / plan_write) resolve degraded reads to the exact survivor
// unit-set and writes to their parity peers under the current failure
// state; the failure/rebuild transitions mirror the semantics of
// sim::ScenarioSimulator (a differential test holds the two to the same
// survivor sets).  All fallible operations return pdl::Status / Result.
//
// State machine (per disk):
//
//   kHealthy --fail_disk--> kFailed --replace_disk--> kRebuilding
//       ^                                                  |
//       +---------- last lost home unit rebuilt -----------+
//
// (replace_disk moves straight to kHealthy when the disk has no lost
// units pending -- e.g. everything was already rebuilt into distributed
// spares.)  Stripe instances that concurrently lose more units than the
// array's codec tolerates (one under XOR parity, two under Reed-Solomon
// P+Q) are permanently unrecoverable: reads/writes addressing them
// return kDataLoss / kUnrecoverable plans and rebuild skips them,
// exactly like the simulator.
//
// Iterations: layouts tile vertically over large disks.  Failure state is
// tracked per stripe (a disk failure hits every iteration alike);
// locate/plan_write lift offsets to the addressed iteration, while rebuild
// plans report iteration-0 offsets, one step standing for every iteration
// of the stripe.
//
// Stripe sizes are limited to 64 units (lost positions live in one 64-bit
// mask per stripe, the same bound ScenarioSimulator enforces); larger
// specs/layouts are rejected with kInvalidArgument.
//
// Concurrency (external-synchronization contract): Array is a passive
// value type with no internal locking.  Every const member function is a
// pure read of immutable tables or the online-state vectors -- none keeps
// hidden mutable caches -- so any number of threads may call the entire
// const surface (map / parity_of / map_batch / locate / plan_write /
// plan_rebuild / serialize / the state queries) concurrently, PROVIDED no
// thread is concurrently inside a non-const member (fail_disk,
// replace_disk, apply_rebuild_step, rebuild).  Callers that mutate online
// state while serving must bracket the mutators with a writer lock and
// the const calls with a reader lock; io::StripeStore wraps exactly that
// readers-writer discipline around an owned Array.

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/codec.hpp"
#include "core/declustered_array.hpp"
#include "core/status.hpp"
#include "layout/compiled_mapper.hpp"
#include "layout/sparing.hpp"

namespace pdl::engine {
class Engine;
}

/// @namespace pdl::api
/// @brief The library's front door: pdl::api::Array unifies layout
/// construction, O(1) address mapping, and the online failure/rebuild
/// state machine behind one typed-Status surface.
namespace pdl::api {

using layout::DiskId;
/// Physical address of one stripe unit: (disk, unit-offset) coordinates.
using Physical = layout::AddressMapper::Physical;

/// How the array absorbs rebuild writes.
enum class SparingMode : std::uint8_t {
  kNone = 0,         ///< dedicated replacement: rebuild in place
  kDistributed = 1,  ///< one balanced spare unit per stripe (Section 5)
};

/// Array-level construction options, on top of core::BuildOptions.
struct ArrayOptions {
  /// How rebuild writes are absorbed (dedicated replacement vs
  /// distributed spare units).
  SparingMode sparing = SparingMode::kNone;
  /// Pin a specific construction instead of letting the planner rank
  /// (bypasses the engine cache).
  std::optional<core::Construction> construction = std::nullopt;
  /// The erasure code protecting each stripe.  kXorParity keeps the
  /// paper's single-parity layout; kReedSolomonPQ designates one extra
  /// parity unit per stripe (cyclically, from parity_pos + 1) and
  /// survives any two concurrent disk failures.
  core::CodecKind codec = core::CodecKind::kXorParity;
  /// Enable per-unit CRC32C end-to-end integrity: an io::StripeStore over
  /// this array keeps a checksum per physical unit, verifies it on every
  /// read path, and heals mismatches through the codec.  Persisted in
  /// serialize() so reopened stores agree on the on-media format.
  bool integrity = false;
};

/// Upper bound on parity units per stripe across all shipped codecs
/// (bounds the fixed-size index arrays in the plan structs).
inline constexpr std::uint32_t kMaxParityUnits = 4;

/// Online state of one physical disk (see the state machine in the file
/// comment).
enum class DiskState : std::uint8_t {
  kHealthy = 0,     ///< serving
  kFailed = 1,      ///< failed, no replacement attached
  kRebuilding = 2,  ///< replacement attached, lost home units pending
};

/// Human-readable name of a DiskState ("healthy", "failed", ...).
[[nodiscard]] std::string_view disk_state_name(DiskState state) noexcept;

/// Resolution of one logical read under the current failure state.
struct ReadPlan {
  /// The three ways a read can resolve.
  enum class Kind : std::uint8_t {
    kDirect = 0,         ///< unit intact: read `target`
    kDegraded = 1,       ///< unit lost: decode from the survivor set
    kUnrecoverable = 2,  ///< stripe lost more units than the codec bears
  };
  Kind kind = Kind::kDirect;         ///< how the read resolves
  Physical target;                   ///< kDirect: where the unit lives now
  std::uint32_t num_survivors = 0;   ///< kDegraded: units written to `out`
  // -- codec-seam fields (kDegraded): everything core::Codec::reconstruct
  // needs, in the codec's unit-index convention (data i -> i, parity j ->
  // num_data + j).  Survivor indices are reported through locate()'s
  // optional survivor_index span, parallel to `survivors`.
  std::uint32_t num_data = 0;        ///< data units in the stripe (k_d)
  std::uint32_t num_erased = 0;      ///< erased content units of the stripe
  /// Codec indices of the erased units, the requested unit FIRST.
  std::array<std::uint32_t, kMaxParityUnits> erased_index{};
};

/// Resolution of one logical small-write under the current failure state.
struct WritePlan {
  /// The parity-maintenance strategies a small write can need.
  enum class Kind : std::uint8_t {
    kReadModifyWrite = 0,  ///< read data+parities, write data+parities
    kReconstructWrite = 1, ///< data lost: read peers, write parities only
    kUnprotectedWrite = 2, ///< every parity lost: write data only
    kUnrecoverable = 3,    ///< stripe lost too many units; write unservable
  };
  Kind kind = Kind::kReadModifyWrite;  ///< selected strategy
  Physical data;                 ///< data unit (valid unless data lost)
  Physical parity;               ///< first surviving parity (legacy alias
                                 ///< of parity_targets[0])
  std::uint32_t num_peer_reads = 0;  ///< kReconstructWrite: peers in `out`
  // -- codec-seam fields, in the codec's unit-index convention.
  std::uint32_t num_data = 0;    ///< data units in the stripe (k_d)
  std::uint32_t data_index = 0;  ///< codec index of the written unit
  std::uint32_t num_parities = 0;  ///< surviving parity units
  /// Surviving parity units to maintain, ordinal order (P before Q).
  std::array<Physical, kMaxParityUnits> parity_targets{};
  /// parity_targets[j]'s codec parity ordinal (its index is
  /// num_data + parity_index[j]).
  std::array<std::uint32_t, kMaxParityUnits> parity_index{};
  /// kReconstructWrite: every erased content unit of the stripe, the
  /// written unit FIRST -- when more than one, the store must decode the
  /// others (from peers + surviving parities) before re-encoding.
  std::uint32_t num_erased = 0;
  std::array<std::uint32_t, kMaxParityUnits> erased_index{};
};

/// One stripe repair: read `reads`, decode, write the lost unit to
/// `target`.  Offsets are iteration-0; the step stands for every
/// iteration of the stripe.
struct RebuildStep {
  std::uint32_t stripe = 0;        ///< stripe being repaired
  std::uint32_t lost_pos = 0;      ///< position being reconstructed
  bool to_spare = false;           ///< target is the stripe's spare unit
  Physical target;                 ///< write target
  std::vector<Physical> reads;     ///< surviving units to decode from
  // -- codec-seam fields, in the codec's unit-index convention.
  std::uint32_t num_data = 0;      ///< data units in the stripe (k_d)
  std::uint32_t target_index = 0;  ///< codec index of the rebuilt unit
  std::vector<std::uint32_t> read_indices;  ///< parallel to `reads`
  /// Every erased content unit of the stripe at plan time, this step's
  /// unit FIRST (multi-loss stripes plan one step per lost unit).
  std::uint32_t num_erased = 0;
  std::array<std::uint32_t, kMaxParityUnits> erased_index{};
};

/// Everything currently rebuildable, plus load accounting.
struct RebuildPlan {
  std::vector<RebuildStep> steps;  ///< executable repair steps, in order
  /// Lost units with no usable target yet: their home disk has no
  /// replacement and their stripe's spare is unusable.  replace_disk
  /// unblocks them.
  std::uint64_t blocked = 0;
  /// Stripes skipped because they are unrecoverable.
  std::uint64_t unrecoverable = 0;
  std::vector<std::uint32_t> reads_per_disk;   ///< survivor reads per disk
  std::vector<std::uint32_t> writes_per_disk;  ///< rebuild writes per disk
};

/// What a rebuild() pass accomplished.
struct RebuildOutcome {
  std::uint64_t applied = 0;  ///< steps executed (stripes repaired)
  std::uint64_t blocked = 0;  ///< still waiting on replace_disk
};

/// One declustered array: an engine-cached layout, compiled O(1) serving
/// tables, and the mutable online failure/rebuild state machine, behind
/// a typed Status/Result surface.  Passive value type -- see the file
/// comment for the external-synchronization contract.
class Array {
 public:
  /// Builds the best layout for the spec through the global engine cache
  /// and wraps it as a healthy array.  kInvalidArgument for malformed
  /// specs, kUnsupported when no construction fits (or a pinned
  /// construction does not apply).
  [[nodiscard]] static Result<Array> create(
      const core::ArraySpec& spec, const core::BuildOptions& build = {},
      const ArrayOptions& options = {});

  /// Same, through a specific engine (its cache is shared with other
  /// callers of that engine).
  [[nodiscard]] static Result<Array> create_with(
      engine::Engine& engine, const core::ArraySpec& spec,
      const core::BuildOptions& build = {}, const ArrayOptions& options = {});

  /// Wraps an externally supplied layout (construction reported as
  /// kExternal, metrics measured).  kInvalidArgument if the layout (or
  /// spare map) is structurally invalid or too small for the codec.
  [[nodiscard]] static Result<Array> adopt(
      layout::Layout layout,
      core::CodecKind codec = core::CodecKind::kXorParity,
      bool integrity = false);
  /// adopt() for an externally supplied distributed-sparing layout.
  [[nodiscard]] static Result<Array> adopt_spared(
      layout::SparedLayout spared,
      core::CodecKind codec = core::CodecKind::kXorParity,
      bool integrity = false);

  /// Persistence: the layout plus (in distributed-sparing mode) the spare
  /// map, via layout::serialize.  Online failure state is not persisted.
  [[nodiscard]] std::string serialize() const;
  /// Rebuilds an array from serialize() text (kParseError when malformed).
  [[nodiscard]] static Result<Array> deserialize(const std::string& text);
  /// serialize() to a file (kIoError on filesystem failure).
  [[nodiscard]] Status save(const std::string& path) const;
  /// deserialize() from a file (kIoError / kParseError).
  [[nodiscard]] static Result<Array> load(const std::string& path);

  // ------------------------------------------------- geometry & provenance

  /// Physical disks in the array (the spec's v).
  [[nodiscard]] std::uint32_t num_disks() const noexcept;
  /// Stripe units per disk per layout iteration (the layout size s).
  [[nodiscard]] std::uint32_t units_per_disk() const noexcept;
  /// Largest stripe width in the layout (bounds survivor-span sizes).
  [[nodiscard]] std::uint32_t max_stripe_size() const noexcept {
    return mapper_.max_stripe_size();
  }
  /// Logical data units per layout iteration (excludes parity and, in
  /// distributed-sparing mode, spare units).
  [[nodiscard]] std::uint64_t data_units_per_iteration() const noexcept {
    return mapper_.data_units_per_iteration();
  }
  /// Logical data units across `iterations` vertical tilings -- the
  /// array's addressable capacity in units.  Byte-path and fleet-router
  /// callers use this instead of recomputing from layout internals.
  [[nodiscard]] std::uint64_t capacity_units(
      std::uint64_t iterations) const noexcept {
    return data_units_per_iteration() * iterations;
  }
  /// Logical byte capacity at `unit_bytes` granularity across
  /// `iterations` tilings (what a StripeStore over this array serves).
  [[nodiscard]] std::uint64_t capacity_bytes(
      std::uint32_t unit_bytes, std::uint64_t iterations) const noexcept {
    return capacity_units(iterations) * unit_bytes;
  }
  /// Bytes of one physical disk image at `unit_bytes` granularity
  /// across `iterations` tilings (the backend-geometry sizing).
  [[nodiscard]] std::uint64_t disk_bytes(
      std::uint32_t unit_bytes, std::uint64_t iterations) const noexcept {
    return static_cast<std::uint64_t>(units_per_disk()) * iterations *
           unit_bytes;
  }
  /// Widest stripe's full byte footprint at `unit_bytes` granularity
  /// (bounds survivor-fan-in buffer sizes on the byte path).
  [[nodiscard]] std::uint64_t max_stripe_bytes(
      std::uint32_t unit_bytes) const noexcept {
    return static_cast<std::uint64_t>(max_stripe_size()) * unit_bytes;
  }
  /// Which paper construction built the layout (kExternal for adopt()).
  [[nodiscard]] core::Construction construction() const noexcept;
  /// Human-readable provenance of the layout.
  [[nodiscard]] const std::string& description() const noexcept;
  /// Measured layout quality (parity balance, reconstruction spread, ...).
  [[nodiscard]] const layout::LayoutMetrics& metrics() const noexcept;
  /// Whether rebuilds target distributed spares or a dedicated
  /// replacement.
  [[nodiscard]] SparingMode sparing() const noexcept {
    return spared_ ? SparingMode::kDistributed : SparingMode::kNone;
  }
  /// The erasure code protecting each stripe.
  [[nodiscard]] core::CodecKind codec_kind() const noexcept {
    return codec_kind_;
  }
  /// Whether per-unit checksum integrity was requested at creation
  /// (io::StripeStore consumes this to size and verify the CRC region).
  [[nodiscard]] bool integrity() const noexcept { return integrity_; }
  /// The codec instance (stateless singleton).
  [[nodiscard]] const core::Codec& codec() const noexcept {
    return core::codec_for(codec_kind_);
  }
  /// Parity units per stripe (the codec's m).
  [[nodiscard]] std::uint32_t num_parity_units() const noexcept {
    return num_parity_;
  }
  /// Data units in one stripe (the codec's k_d for that stripe).
  [[nodiscard]] std::uint32_t stripe_data_units(
      std::uint32_t stripe) const noexcept {
    return stripe_num_data_[stripe];
  }
  /// The stripe's parity positions in codec ordinal order (P first).
  [[nodiscard]] const std::vector<std::uint32_t>& parity_positions(
      std::uint32_t stripe) const noexcept {
    return parity_positions_[stripe];
  }
  /// The codec unit index of a stripe position (kNoUnit for spare slots).
  static constexpr std::uint32_t kNoUnit = 0xffffffffu;
  [[nodiscard]] std::uint32_t unit_index(std::uint32_t stripe,
                                         std::uint32_t pos) const noexcept {
    return unit_index_[stripe][pos];
  }
  /// Memory footprint of the compiled serving tables (Condition 4 cost).
  [[nodiscard]] std::uint64_t table_bytes() const noexcept {
    return mapper_.table_bytes();
  }
  /// The underlying stripe layout.
  [[nodiscard]] const layout::Layout& layout() const noexcept;
  /// The spare designation (empty unless distributed sparing).
  [[nodiscard]] const std::vector<std::uint32_t>& spare_positions()
      const noexcept;
  /// The spared layout, or nullptr unless distributed sparing.
  [[nodiscard]] const layout::SparedLayout* spared_layout() const noexcept {
    return spared_.get();
  }
  /// The compiled serving tables (shared logical numbering).
  [[nodiscard]] const layout::CompiledMapper& mapper() const noexcept {
    return mapper_;
  }

  /// Stripe coordinates of a logical data unit, independent of failure
  /// state: which stripe (index into layout().stripes()) and position
  /// hold it, and which vertical iteration of the layout it falls in.
  /// Gives byte-path callers (io::StripeStore) a stable per-stripe
  /// sharding key without re-deriving the logical numbering.
  struct LogicalRef {
    std::uint32_t stripe = 0;     ///< stripe index within the layout
    std::uint32_t pos = 0;        ///< position within the stripe
    std::uint64_t iteration = 0;  ///< vertical tiling index
  };
  /// The LogicalRef coordinates of a logical data unit.
  [[nodiscard]] LogicalRef logical_ref(std::uint64_t logical) const noexcept;

  /// Stripes per layout iteration.
  [[nodiscard]] std::uint32_t num_stripes() const noexcept;

  // ------------------------------------- address ops (failure-agnostic)

  /// Physical home of a logical data unit: one table lookup plus constant
  /// arithmetic (Condition 4).  Ignores failures and redirects; see
  /// locate() for the serving path.
  [[nodiscard]] Physical map(std::uint64_t logical) const noexcept {
    return mapper_.map(logical);
  }

  /// Physical home of the parity unit protecting a logical data unit.
  [[nodiscard]] Physical parity_of(std::uint64_t logical) const noexcept {
    return mapper_.parity_of(logical);
  }

  /// Batched map: out[i] = map(logicals[i]).  kInvalidArgument when `out`
  /// is smaller than `logicals`.
  [[nodiscard]] Status map_batch(std::span<const std::uint64_t> logicals,
                                 std::span<Physical> out) const;

  // ---------------------------------------- serving ops (failure-aware)

  /// Resolves a logical read under the current failure state.  Intact
  /// units (including units rebuilt into their stripe's spare) resolve to
  /// kDirect with the unit's current position; lost units resolve to
  /// kDegraded with the exact surviving (non-lost) unit set written to
  /// `survivors` (max_stripe_size() - 1 bounds the count); units of a
  /// stripe that lost more units than the codec tolerates resolve to
  /// kUnrecoverable.  When `survivor_index` is non-empty it receives the
  /// codec unit index of each survivor, parallel to `survivors` (the
  /// decode inputs for core::Codec::reconstruct).  kInvalidArgument when
  /// either span is too small for the stripe.
  [[nodiscard]] Result<ReadPlan> locate(
      std::uint64_t logical, std::span<Physical> survivors,
      std::span<std::uint32_t> survivor_index = {}) const;

  /// Resolves a logical small-write to its read/write peers under the
  /// current failure state: stripes with the data unit and at least one
  /// parity intact read-modify-write data + surviving parities; a lost
  /// data unit folds into the surviving parities via the surviving data
  /// peers (written to `peer_reads`, codec indices to `peer_index` when
  /// non-empty); a stripe with every parity lost leaves an unprotected
  /// data write.  kInvalidArgument when a span is too small.
  [[nodiscard]] Result<WritePlan> plan_write(
      std::uint64_t logical, std::span<Physical> peer_reads,
      std::span<std::uint32_t> peer_index = {}) const;

  /// The surviving data units of the logical's stripe, EXCLUDING the
  /// addressed unit itself, at their current (redirect-aware) homes,
  /// with codec data indices in `peer_index` when non-empty.  Returns
  /// the peer count.  This is the read set for a full-stripe parity
  /// re-encode (io::StripeStore's torn-parity heal).  kInvalidArgument
  /// when a span is too small.
  [[nodiscard]] Result<std::uint32_t> stripe_peers(
      std::uint64_t logical, std::span<Physical> peers,
      std::span<std::uint32_t> peer_index = {}) const;

  /// One content unit of a stripe as the scrub/heal path sees it: its
  /// codec index, its current (redirect-aware) iteration-0 home, and
  /// whether it is presently lost to a disk failure.
  struct StripeUnitStatus {
    std::uint32_t index = 0;  ///< codec unit index (data i, parity k_d+j)
    Physical unit;            ///< current home, iteration 0
    bool lost = false;        ///< true: no readable copy exists on media
  };
  /// Every content unit (data + parity, spares excluded) of `stripe`
  /// under the current failure state, in codec-index order, written to
  /// `out`.  Returns the unit count (stripe_data_units + parities).
  /// This is the full-stripe read/verify set for the integrity layer's
  /// scrub and heal paths.  kInvalidArgument when `stripe` is out of
  /// range or `out` is smaller than the stripe's content width.
  [[nodiscard]] Result<std::uint32_t> stripe_units(
      std::uint32_t stripe, std::span<StripeUnitStatus> out) const;

  // ------------------------------------------ online failure transitions

  /// Marks a healthy disk failed, recording every newly lost unit and any
  /// data loss (a stripe losing its second unit).  kInvalidArgument for
  /// out-of-range disks, kFailedPrecondition unless the disk is healthy.
  [[nodiscard]] Status fail_disk(DiskId disk);

  /// Attaches a fresh replacement to a failed disk: the disk becomes a
  /// rebuild target (kRebuilding), or immediately healthy when nothing on
  /// it is lost.  kFailedPrecondition unless the disk is kFailed.
  [[nodiscard]] Status replace_disk(DiskId disk);

  /// Synonym for replace_disk (dedicated hot-spare wording).
  [[nodiscard]] Status attach_spare(DiskId disk) {
    return replace_disk(disk);
  }

  /// The repair schedule for everything currently rebuildable: each lost
  /// unit resolves to its stripe's spare unit (distributed sparing, spare
  /// usable) or its home slot on an attached replacement, with the exact
  /// survivor reads.  Derived from the same stripe structure as
  /// core::plan_recovery.
  [[nodiscard]] Result<RebuildPlan> plan_rebuild() const;

  /// Applies one planned step: marks the unit rebuilt at its target and
  /// updates disk states.  kFailedPrecondition when the step is stale
  /// (the unit was already rebuilt, its stripe became unrecoverable, or
  /// the target is no longer writable).
  [[nodiscard]] Status apply_rebuild_step(const RebuildStep& step);

  /// Convenience: plan_rebuild + apply every step.  After it returns,
  /// everything rebuildable without further replace_disk calls is
  /// rebuilt.
  [[nodiscard]] Result<RebuildOutcome> rebuild();

  // ------------------------------------------------------ state queries

  /// One disk's online state (kInvalidArgument out of range).
  [[nodiscard]] Result<DiskState> disk_state(DiskId disk) const;
  /// Every disk's online state, indexed by DiskId.
  [[nodiscard]] const std::vector<DiskState>& disk_states() const noexcept {
    return disk_state_;
  }
  /// Disks not currently serving from their own platters (failed or
  /// rebuilding).
  [[nodiscard]] std::uint32_t num_failed() const noexcept;
  /// True when every disk is healthy and no unit is lost.
  [[nodiscard]] bool healthy() const noexcept;
  /// Lost units pending rebuild (per layout iteration), excluding
  /// unrecoverable stripes.
  [[nodiscard]] std::uint64_t lost_units() const noexcept {
    return lost_units_;
  }
  /// True once any stripe has lost two units at the same time.
  [[nodiscard]] bool data_loss() const noexcept { return stripes_lost_ > 0; }
  /// Stripes (per layout iteration) that are permanently unrecoverable.
  [[nodiscard]] std::uint64_t stripes_lost() const noexcept {
    return stripes_lost_;
  }

 private:
  Array(std::shared_ptr<const core::BuiltLayout> built,
        std::shared_ptr<const layout::SparedLayout> spared,
        core::CodecKind codec);

  struct UnitRef {
    std::uint32_t stripe = 0;
    std::uint32_t pos = 0;
  };
  struct HomeRef {
    std::uint32_t stripe = 0;
    std::uint32_t pos = 0;
  };

  [[nodiscard]] bool is_lost(std::uint32_t stripe,
                             std::uint32_t pos) const noexcept {
    return (lost_mask_[stripe] >> pos) & 1u;
  }
  /// True when `pos` of `stripe` can hold content (not an unconsumed
  /// spare slot).
  [[nodiscard]] bool is_content(std::uint32_t stripe,
                                std::uint32_t pos) const noexcept;
  /// The unit currently holding content position `pos` (redirect-aware),
  /// iteration 0.
  [[nodiscard]] const layout::StripeUnit& cur_unit(
      std::uint32_t stripe, std::uint32_t pos) const noexcept;
  void mark_lost(std::uint32_t stripe, std::uint32_t pos);
  /// The currently valid rebuild target for a lost unit, or nullopt when
  /// blocked.  `to_spare` is set accordingly.  allow_spare lets a planner
  /// that already claimed the stripe's spare for an earlier step steer
  /// later steps of the same stripe to their home slots.
  [[nodiscard]] std::optional<Physical> rebuild_target(
      std::uint32_t stripe, std::uint32_t pos, bool& to_spare,
      bool allow_spare) const;

  std::shared_ptr<const core::BuiltLayout> built_;
  std::shared_ptr<const layout::SparedLayout> spared_;  ///< null = dedicated
  core::CodecKind codec_kind_;
  bool integrity_ = false;  ///< per-unit checksums requested at creation
  std::uint32_t num_parity_;                ///< codec().num_parity()
  std::vector<std::uint64_t> parity_mask_;  ///< all parity bits per stripe
  layout::CompiledMapper mapper_;

  static constexpr std::uint32_t kNone = 0xffffffffu;

  std::vector<UnitRef> data_units_;   ///< logical (mod D) -> (stripe, pos)
  std::vector<std::vector<HomeRef>> disk_units_;  ///< home units per disk
  std::vector<std::uint32_t> stripe_num_data_;    ///< k_d per stripe
  /// Parity positions per stripe in codec ordinal order (parity_pos
  /// first, then the extra designations).
  std::vector<std::vector<std::uint32_t>> parity_positions_;
  /// Per stripe, per position: the codec unit index (kNoUnit for spares).
  std::vector<std::vector<std::uint32_t>> unit_index_;

  // -- online state -------------------------------------------------------
  std::vector<DiskState> disk_state_;
  std::vector<std::uint64_t> lost_mask_;    ///< bit per lost position
  std::vector<std::uint8_t> unrecoverable_; ///< stripe lost >= 2 units
  std::vector<std::uint32_t> redirect_;     ///< position living in the spare
  std::vector<std::uint32_t> pending_home_; ///< recoverable lost units / disk
  std::uint64_t lost_units_ = 0;
  std::uint64_t stripes_lost_ = 0;
};

}  // namespace pdl::api
