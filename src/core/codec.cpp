#include "core/codec.hpp"

#include <array>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/gf8.hpp"
#include "core/xor_codec.hpp"

namespace pdl::core {

namespace {

/// Upper bound on unit indices (255 data + 2 parity).
constexpr std::uint32_t kMaxUnits = 257;

/// Validates the common reconstruct() preconditions and returns the unit
/// size.  Shared by both codecs so the contract cannot drift.
std::size_t check_reconstruct(
    std::uint32_t num_data, std::uint32_t num_parity,
    std::span<const std::span<const std::uint8_t>> survivors,
    std::span<const std::uint32_t> survivor_index,
    std::span<const std::uint32_t> erased_index,
    std::span<const std::span<std::uint8_t>> out) {
  // num_data == 0 is legal: short stripes (disk-removal constructions)
  // can spend every content unit on sparing and parity, leaving parities
  // that encode nothing -- constant zero, still rebuildable.
  const std::uint32_t total = num_data + num_parity;
  if (erased_index.size() > num_parity)
    throw std::invalid_argument(
        "Codec::reconstruct: " + std::to_string(erased_index.size()) +
        " erasures exceed the code's tolerance (" +
        std::to_string(num_parity) + ")");
  if (out.size() != erased_index.size())
    throw std::invalid_argument(
        "Codec::reconstruct: out spans must parallel erased_index");
  if (survivors.size() != survivor_index.size())
    throw std::invalid_argument(
        "Codec::reconstruct: survivors must parallel survivor_index");
  if (survivors.size() + erased_index.size() != total)
    throw std::invalid_argument(
        "Codec::reconstruct: survivors + erasures must cover the stripe");
  std::array<std::uint8_t, kMaxUnits> seen{};
  for (const std::uint32_t idx : survivor_index) {
    if (idx >= total || seen[idx]++)
      throw std::invalid_argument(
          "Codec::reconstruct: bad survivor index " + std::to_string(idx));
  }
  for (const std::uint32_t idx : erased_index) {
    if (idx >= total || seen[idx]++)
      throw std::invalid_argument(
          "Codec::reconstruct: bad erased index " + std::to_string(idx));
  }
  // A zero-data stripe may erase EVERY unit at once (no survivors); the
  // unit size is then whatever the caller wants materialized.
  std::size_t unit = survivors.empty() ? 0 : survivors.front().size();
  if (survivors.empty())
    for (const auto o : out)
      if (!o.empty()) {
        unit = o.size();
        break;
      }
  for (const auto s : survivors)
    if (s.size() != unit)
      throw std::invalid_argument("Codec::reconstruct: ragged survivors");
  for (const auto o : out)
    if (!o.empty() && o.size() != unit)
      throw std::invalid_argument("Codec::reconstruct: ragged out spans");
  return unit;
}

/// Grow-only thread-local scratch for decode intermediates (two units).
std::span<std::uint8_t> decode_scratch(std::size_t which, std::size_t size) {
  thread_local std::vector<std::uint8_t> buffers[2];
  auto& buffer = buffers[which];
  if (buffer.size() < size) buffer.resize(size);
  return {buffer.data(), size};
}

// ------------------------------------------------------------- XOR (m = 1)

class XorCodec final : public Codec {
 public:
  [[nodiscard]] CodecKind kind() const noexcept override {
    return CodecKind::kXorParity;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "xor";
  }
  [[nodiscard]] std::uint32_t num_parity() const noexcept override {
    return 1;
  }
  [[nodiscard]] std::uint32_t max_data_units() const noexcept override {
    return 255;
  }

  void encode(std::span<const std::span<const std::uint8_t>> data,
              std::span<const std::span<std::uint8_t>> parity) const override {
    if (parity.size() != 1)
      throw std::invalid_argument("XorCodec::encode: expects one parity");
    xor_parity_into(parity[0], data);
  }

  void update(std::span<std::uint8_t> parity, std::uint32_t parity_index,
              std::uint32_t data_index,
              std::span<const std::uint8_t> delta) const override {
    (void)data_index;  // every data unit's coefficient is 1
    if (parity_index != 0)
      throw std::invalid_argument("XorCodec::update: parity index not 0");
    xor_into(parity, delta);
  }

  void reconstruct(
      std::uint32_t num_data,
      std::span<const std::span<const std::uint8_t>> survivors,
      std::span<const std::uint32_t> survivor_index,
      std::span<const std::uint32_t> erased_index,
      std::span<const std::span<std::uint8_t>> out) const override {
    check_reconstruct(num_data, 1, survivors, survivor_index, erased_index,
                      out);
    if (erased_index.empty() || out[0].empty()) return;
    if (num_data == 0) {
      // Zero-data stripe: its parity encodes nothing and is constant 0.
      std::memset(out[0].data(), 0, out[0].size());
      return;
    }
    // Self-inverse code: the one missing unit (data or parity alike) is
    // the XOR of all the others.
    xor_reconstruct_into(out[0], survivors);
  }
};

// -------------------------------------------- Reed-Solomon P+Q (m = 2)

class RsCodec final : public Codec {
 public:
  [[nodiscard]] CodecKind kind() const noexcept override {
    return CodecKind::kReedSolomonPQ;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "rs";
  }
  [[nodiscard]] std::uint32_t num_parity() const noexcept override {
    return 2;
  }
  [[nodiscard]] std::uint32_t max_data_units() const noexcept override {
    return 255;  // alpha^i distinct for i < ord(alpha) = 255
  }

  void encode(std::span<const std::span<const std::uint8_t>> data,
              std::span<const std::span<std::uint8_t>> parity) const override {
    if (parity.size() != 2)
      throw std::invalid_argument("RsCodec::encode: expects two parities");
    if (data.empty() || data.size() > max_data_units())
      throw std::invalid_argument("RsCodec::encode: bad data fan-in");
    xor_parity_into(parity[0], data);  // P = sum d_i
    compute_q(data, parity[1]);
  }

  void update(std::span<std::uint8_t> parity, std::uint32_t parity_index,
              std::uint32_t data_index,
              std::span<const std::uint8_t> delta) const override {
    switch (parity_index) {
      case 0:
        xor_into(parity, delta);  // P coefficient is 1
        return;
      case 1:
        gf8::mul_xor_into(parity, delta, gf8::exp_alpha(data_index));
        return;
      default:
        throw std::invalid_argument("RsCodec::update: parity index not 0/1");
    }
  }

  void reconstruct(
      std::uint32_t num_data,
      std::span<const std::span<const std::uint8_t>> survivors,
      std::span<const std::uint32_t> survivor_index,
      std::span<const std::uint32_t> erased_index,
      std::span<const std::span<std::uint8_t>> out) const override {
    const std::size_t unit =
        check_reconstruct(num_data, 2, survivors, survivor_index,
                          erased_index, out);
    if (erased_index.empty()) return;
    if (num_data == 0) {
      // Zero-data stripe: P and Q encode nothing and are constant 0.
      for (const auto o : out)
        if (!o.empty()) std::memset(o.data(), 0, o.size());
      return;
    }

    // Sort the stripe's units back into index order.
    std::array<std::span<const std::uint8_t>, kMaxUnits> by_index{};
    for (std::size_t i = 0; i < survivors.size(); ++i)
      by_index[survivor_index[i]] = survivors[i];

    std::uint32_t data_erased[2] = {0, 0};
    std::uint32_t nd = 0;
    bool p_lost = false, q_lost = false;
    for (const std::uint32_t idx : erased_index) {
      if (idx < num_data)
        data_erased[nd++] = idx;
      else if (idx == num_data)
        p_lost = true;
      else
        q_lost = true;
    }
    if (nd == 2 && data_erased[0] > data_erased[1])
      std::swap(data_erased[0], data_erased[1]);

    const auto out_for = [&](std::uint32_t idx) -> std::span<std::uint8_t> {
      for (std::size_t e = 0; e < erased_index.size(); ++e)
        if (erased_index[e] == idx) return out[e];
      return {};
    };

    if (nd == 2) {
      // Both parities survive (<= 2 erasures total).  With x < y erased:
      //   A = P ^ sum(other d_i)           = d_x ^ d_y
      //   B = Q ^ sum(alpha^i other d_i)   = a^x d_x ^ a^y d_y
      //   d_x = (B ^ a^y A) / (a^x ^ a^y),  d_y = A ^ d_x.
      const std::uint32_t x = data_erased[0], y = data_erased[1];
      const auto buf_a = decode_scratch(0, unit);
      const auto buf_b = decode_scratch(1, unit);
      fold_syndromes(by_index, num_data, x, y, buf_a, buf_b);
      const std::uint8_t denom = static_cast<std::uint8_t>(
          gf8::exp_alpha(x) ^ gf8::exp_alpha(y));
      gf8::mul_xor_into(buf_b, buf_a, gf8::exp_alpha(y));
      gf8::mul_in_place(buf_b, gf8::inv(denom));  // buf_b = d_x
      xor_into(buf_a, buf_b);                     // buf_a = d_y
      copy_out(out_for(x), buf_b);
      copy_out(out_for(y), buf_a);
      return;
    }

    if (nd == 1) {
      const std::uint32_t x = data_erased[0];
      const auto dx = decode_scratch(0, unit);
      if (!p_lost) {
        // d_x = P ^ sum(other d_i): one blocked XOR pass.
        std::array<std::span<const std::uint8_t>, kMaxUnits> srcs;
        std::size_t n = 0;
        srcs[n++] = by_index[num_data];  // P
        for (std::uint32_t i = 0; i < num_data; ++i)
          if (i != x) srcs[n++] = by_index[i];
        xor_reconstruct_into(dx, {srcs.data(), n});
      } else {
        // P is the second erasure; decode through Q instead:
        // d_x = (Q ^ sum(alpha^i other d_i)) / alpha^x.
        std::memcpy(dx.data(), by_index[num_data + 1].data(), unit);
        for (std::uint32_t i = 0; i < num_data; ++i)
          if (i != x)
            gf8::mul_xor_into(dx, by_index[i], gf8::exp_alpha(i));
        gf8::mul_in_place(dx, gf8::inv(gf8::exp_alpha(x)));
      }
      copy_out(out_for(x), dx);
      by_index[x] = dx;  // the full data set is now known
      if (p_lost) reencode_p(by_index, num_data, out_for(num_data));
      if (q_lost) reencode_q(by_index, num_data, out_for(num_data + 1));
      return;
    }

    // Only parities erased: every data unit survives; re-encode.
    if (p_lost) reencode_p(by_index, num_data, out_for(num_data));
    if (q_lost) reencode_q(by_index, num_data, out_for(num_data + 1));
  }

 private:
  /// Q = sum alpha^i d_i by Horner's rule: one doubling pass plus one XOR
  /// per data unit, independent of the coefficient values.
  static void compute_q(std::span<const std::span<const std::uint8_t>> data,
                        std::span<std::uint8_t> q) {
    const std::size_t kd = data.size();
    std::memcpy(q.data(), data[kd - 1].data(), q.size());
    for (std::size_t i = kd - 1; i-- > 0;) {
      gf8::mul_in_place(q, gf8::kAlpha);
      xor_into(q, data[i]);
    }
  }

  /// buf_a = P ^ sum(d_i, i not in {x, y}); buf_b = Q ^ sum(alpha^i d_i,
  /// i not in {x, y}) -- the two-erasure syndromes.
  static void fold_syndromes(
      const std::array<std::span<const std::uint8_t>, kMaxUnits>& by_index,
      std::uint32_t num_data, std::uint32_t x, std::uint32_t y,
      std::span<std::uint8_t> buf_a, std::span<std::uint8_t> buf_b) {
    std::array<std::span<const std::uint8_t>, kMaxUnits> srcs;
    std::size_t n = 0;
    srcs[n++] = by_index[num_data];  // P
    for (std::uint32_t i = 0; i < num_data; ++i)
      if (i != x && i != y) srcs[n++] = by_index[i];
    xor_parity_into(buf_a, {srcs.data(), n});

    std::memcpy(buf_b.data(), by_index[num_data + 1].data(), buf_b.size());
    for (std::uint32_t i = 0; i < num_data; ++i)
      if (i != x && i != y)
        gf8::mul_xor_into(buf_b, by_index[i], gf8::exp_alpha(i));
  }

  static void reencode_p(
      const std::array<std::span<const std::uint8_t>, kMaxUnits>& by_index,
      std::uint32_t num_data, std::span<std::uint8_t> out) {
    if (out.empty()) return;
    std::array<std::span<const std::uint8_t>, kMaxUnits> srcs;
    for (std::uint32_t i = 0; i < num_data; ++i) srcs[i] = by_index[i];
    xor_parity_into(out, {srcs.data(), num_data});
  }

  static void reencode_q(
      const std::array<std::span<const std::uint8_t>, kMaxUnits>& by_index,
      std::uint32_t num_data, std::span<std::uint8_t> out) {
    if (out.empty()) return;
    std::array<std::span<const std::uint8_t>, kMaxUnits> srcs;
    for (std::uint32_t i = 0; i < num_data; ++i) srcs[i] = by_index[i];
    compute_q({srcs.data(), num_data}, out);
  }

  static void copy_out(std::span<std::uint8_t> dst,
                       std::span<const std::uint8_t> src) {
    if (!dst.empty()) std::memcpy(dst.data(), src.data(), dst.size());
  }
};

}  // namespace

std::string_view codec_kind_name(CodecKind kind) noexcept {
  switch (kind) {
    case CodecKind::kXorParity: return "xor";
    case CodecKind::kReedSolomonPQ: return "rs";
  }
  return "?";
}

const Codec& xor_codec() noexcept {
  static const XorCodec codec;
  return codec;
}

const Codec& rs_codec() noexcept {
  static const RsCodec codec;
  return codec;
}

const Codec& codec_for(CodecKind kind) noexcept {
  return kind == CodecKind::kReedSolomonPQ ? rs_codec() : xor_codec();
}

}  // namespace pdl::core
