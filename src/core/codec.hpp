#pragma once
/// @file
/// pdl::core::Codec -- the erasure-code seam of the data path.
///
/// A Codec is the pure byte mathematics of stripe redundancy: given k_d
/// equal-sized data units it produces m parity units, folds RMW deltas
/// into individual parities, and reconstructs up to m erased units from
/// any k_d survivors.  It knows nothing about disks, layouts, or failure
/// state -- api::Array decides WHICH units are parity and which survive;
/// io::StripeStore moves the bytes; the codec only does the algebra.
///
/// ## Unit indexing
///
/// Within one stripe the codec addresses units by a dense index:
///
///   data unit i     ->  index i            (0 <= i < num_data)
///   parity unit j   ->  index num_data + j (0 <= j < num_parity())
///
/// api::Array assigns data indices in increasing position order over the
/// stripe's non-parity, non-spare positions, parity index 0 to the
/// layout's parity_pos (the XOR parity P) and indices 1.. to the extra
/// designated parity positions, and reports these indices in its
/// Read/Write/Rebuild plans -- so the store never re-derives them.
///
/// ## Implementations
///
///   * XorCodec (kXorParity): m = 1, P = XOR of the data units -- the
///     paper's Figure 1 code, delegating to the vectorized
///     core/xor_codec kernels.  Tolerates any single lost unit.
///   * RsCodec (kReedSolomonPQ): m = 2 over GF(2^8) (core/gf8), the
///     RAID-6 P+Q pair P = sum d_i, Q = sum alpha^i d_i with alpha = 2
///     primitive mod 0x11d.  Tolerates any two concurrently lost units.
///
/// Both are stateless singletons; `codec_for` maps the serializable
/// CodecKind tag to the instance.  All span arguments must be equal-sized
/// and non-overlapping (except where noted); violations throw
/// std::invalid_argument -- codec misuse is a programming error, unlike
/// the typed-Status I/O failures of the layers above.

#include <cstdint>
#include <span>
#include <string_view>

namespace pdl::core {

/// Serializable tag of a shipped codec (persisted by api::Array).
enum class CodecKind : std::uint8_t {
  kXorParity = 0,      ///< single XOR parity (Figure 1), m = 1
  kReedSolomonPQ = 1,  ///< GF(2^8) Reed-Solomon P+Q (RAID-6), m = 2
};

/// Stable short name ("xor", "rs") for serialization and bench JSON.
[[nodiscard]] std::string_view codec_kind_name(CodecKind kind) noexcept;

/// The erasure-code interface.  Stateless and immutable after
/// construction: every method is const and thread-safe.
class Codec {
 public:
  virtual ~Codec() = default;

  [[nodiscard]] virtual CodecKind kind() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Parity units per stripe (m).
  [[nodiscard]] virtual std::uint32_t num_parity() const noexcept = 0;

  /// Concurrent unit losses the code survives (== num_parity()).
  [[nodiscard]] std::uint32_t fault_tolerance() const noexcept {
    return num_parity();
  }

  /// Largest num_data the code supports (coefficient distinctness bound).
  [[nodiscard]] virtual std::uint32_t max_data_units() const noexcept = 0;

  /// Computes every parity from the full data set: parity[j] receives
  /// parity unit j.  parity.size() must be num_parity(); data must be
  /// non-empty with num_data <= max_data_units(); all spans equal-sized.
  virtual void encode(
      std::span<const std::span<const std::uint8_t>> data,
      std::span<const std::span<std::uint8_t>> parity) const = 0;

  /// RMW delta fold: parity ^= c_j(data_index) * delta, where delta is
  /// old_data XOR new_data and c_j is parity j's coefficient for that
  /// data unit.  Applying the same fold twice restores the parity
  /// (characteristic 2), which is what makes RMW compensation exact.
  virtual void update(std::span<std::uint8_t> parity,
                      std::uint32_t parity_index, std::uint32_t data_index,
                      std::span<const std::uint8_t> delta) const = 0;

  /// Reconstructs erased units from survivors.  survivors[i] holds the
  /// unit with index survivor_index[i]; erased_index lists EVERY erased
  /// unit of the stripe (the decode must know all erasures), and out[e]
  /// receives erased_index[e]'s bytes -- an EMPTY out[e] span means the
  /// caller does not want that unit materialized (it is still decoded
  /// internally when other outputs depend on it).  Requires
  /// erased_index.size() <= num_parity(), survivors covering all
  /// non-erased units of a num_data-data stripe, and equal-sized spans.
  virtual void reconstruct(
      std::uint32_t num_data,
      std::span<const std::span<const std::uint8_t>> survivors,
      std::span<const std::uint32_t> survivor_index,
      std::span<const std::uint32_t> erased_index,
      std::span<const std::span<std::uint8_t>> out) const = 0;
};

/// The shipped singletons.
[[nodiscard]] const Codec& xor_codec() noexcept;
[[nodiscard]] const Codec& rs_codec() noexcept;

/// The singleton for a serialized tag.
[[nodiscard]] const Codec& codec_for(CodecKind kind) noexcept;

}  // namespace pdl::core
