#include "core/crc32c.hpp"

#include <array>
#include <cstring>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace pdl::core {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected

/// The eight slicing tables: table[0] is the classic byte-at-a-time
/// table, table[j] advances a byte seen j positions earlier.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Tables() noexcept {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit)
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
      for (std::size_t j = 1; j < 8; ++j)
        t[j][i] = (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xFFu];
  }
};

const Tables& tables() noexcept {
  static const Tables instance;
  return instance;
}

[[nodiscard]] std::uint32_t crc32c_sw(std::span<const std::uint8_t> data,
                                      std::uint32_t crc) noexcept {
  const Tables& tab = tables();
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();

  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    // Little-endian layout assumed (the library targets x86-64/aarch64
    // Linux); the bytes fold low-to-high through the eight tables.
    word ^= crc;
    crc = tab.t[7][word & 0xFFu] ^ tab.t[6][(word >> 8) & 0xFFu] ^
          tab.t[5][(word >> 16) & 0xFFu] ^ tab.t[4][(word >> 24) & 0xFFu] ^
          tab.t[3][(word >> 32) & 0xFFu] ^ tab.t[2][(word >> 40) & 0xFFu] ^
          tab.t[1][(word >> 48) & 0xFFu] ^ tab.t[0][(word >> 56) & 0xFFu];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xFFu];
  return crc;
}

#if defined(__SSE4_2__)

[[nodiscard]] std::uint32_t crc32c_hw(std::span<const std::uint8_t> data,
                                      std::uint32_t crc) noexcept {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    crc = static_cast<std::uint32_t>(_mm_crc32_u64(crc, word));
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = _mm_crc32_u8(crc, *p++);
  return crc;
}

#endif  // __SSE4_2__

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed) noexcept {
  const std::uint32_t crc = seed ^ 0xFFFFFFFFu;
#if defined(__SSE4_2__)
  return crc32c_hw(data, crc) ^ 0xFFFFFFFFu;
#else
  return crc32c_sw(data, crc) ^ 0xFFFFFFFFu;
#endif
}

}  // namespace pdl::core
