#pragma once
/// @file
/// pdl::core -- CRC32C (Castagnoli) for per-unit end-to-end integrity.
///
/// The checksum the io::StripeStore integrity layer stores next to every
/// physical unit and verifies on every read path.  CRC32C is the
/// storage-stack convention (iSCSI, ext4, Btrfs) because the Castagnoli
/// polynomial has better Hamming-distance behaviour than CRC32/IEEE at
/// the block sizes disks serve, and because commodity CPUs accelerate it
/// (SSE4.2 crc32 on x86, CRC extensions on ARM).
///
/// Implementation: slicing-by-8 table lookup (8 bytes per iteration,
/// tables generated at first use), with a hardware fast path compiled in
/// when the build targets SSE4.2.  Both paths produce identical values;
/// the checksums are a persisted format, so the function is pinned by
/// known-answer tests (the RFC 3720 test vectors).

#include <cstdint>
#include <span>

namespace pdl::core {

/// CRC32C over `data`, seeded with `seed` (pass the previous return
/// value to continue a running checksum over split buffers; 0 starts a
/// fresh one).  The returned value is the standard reflected CRC32C
/// (final XOR applied), matching the RFC 3720 / SSE4.2 convention.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::uint8_t> data,
                                   std::uint32_t seed = 0) noexcept;

/// crc32c biased away from zero: a stored checksum of 0 is the
/// integrity layer's "never written / unverified" sentinel, so computed
/// checksums that happen to land on 0 are reported as 1.
[[nodiscard]] inline std::uint32_t crc32c_nonzero(
    std::span<const std::uint8_t> data) noexcept {
  const std::uint32_t crc = crc32c(data);
  return crc == 0 ? 1u : crc;
}

}  // namespace pdl::core
