#include "core/declustered_array.hpp"

#include <cmath>
#include <stdexcept>

#include "design/catalog.hpp"
#include "design/ring_design.hpp"
#include "flow/parity_assign.hpp"
#include "layout/bibd_layout.hpp"
#include "layout/disk_removal.hpp"
#include "layout/raid.hpp"
#include "layout/ring_layout.hpp"
#include "layout/stairway.hpp"

namespace pdl::core {

std::string construction_name(Construction construction) {
  switch (construction) {
    case Construction::kRaid5: return "RAID5";
    case Construction::kRingLayout: return "ring layout";
    case Construction::kBibdFlow: return "BIBD + flow-balanced parity";
    case Construction::kBibdPerfect: return "BIBD + perfect parity";
    case Construction::kRemoval: return "disk removal (Thm 8/9)";
    case Construction::kStairway: return "stairway (Thm 10-12)";
  }
  return "unknown";
}

namespace {

BuiltLayout finish(layout::Layout layout, Construction construction,
                   std::string description) {
  auto metrics = layout::compute_metrics(layout);
  return {std::move(layout), construction, std::move(description),
          std::move(metrics)};
}

/// A candidate construction: predicted size plus a thunk that builds it.
struct Candidate {
  std::uint64_t size;
  bool perfect_parity;
  int tier;  // lower = stronger guarantees; tie-broken by size
  Construction construction;
  std::string description;
};

}  // namespace

std::optional<BuiltLayout> build_layout(const ArraySpec& spec,
                                        const BuildOptions& options) {
  const std::uint32_t v = spec.num_disks;
  const std::uint32_t k = spec.stripe_size;
  if (v < 2 || k < 2 || k > v)
    throw std::invalid_argument("build_layout: need 2 <= k <= v");

  if (k == v) {
    // Parity stripes span the whole array: classic RAID5 (rows = v keeps
    // parity perfectly balanced).
    if (v > options.unit_budget) return std::nullopt;
    return finish(layout::raid5_layout(v, v), Construction::kRaid5,
                  "RAID5 rotated parity, v=" + std::to_string(v));
  }

  const layout::FeasibilitySummary feas =
      layout::summarize_feasibility(v, k);

  // Tiered candidates (tier 0 = perfect parity & perfect reconstruction
  // balance, tier 1 = parity within one unit, tier 2 = approximate).
  std::vector<Candidate> candidates;

  if (feas.ring_layout && *feas.ring_layout <= options.unit_budget) {
    candidates.push_back({*feas.ring_layout, true, 0,
                          Construction::kRingLayout,
                          "ring layout, size k(v-1)"});
  }
  if (feas.bibd_perfect && *feas.bibd_perfect <= options.unit_budget) {
    candidates.push_back({*feas.bibd_perfect, true, 0,
                          Construction::kBibdPerfect,
                          "BIBD with lcm(b,v)/b copies"});
  }
  if (!options.require_perfect_parity && feas.bibd_flow &&
      *feas.bibd_flow <= options.unit_budget) {
    candidates.push_back({*feas.bibd_flow, false, 1, Construction::kBibdFlow,
                          "single-copy BIBD, flow-balanced parity"});
  }
  if (options.allow_approximate) {
    if (feas.removal && *feas.removal <= options.unit_budget) {
      const bool perfect = feas.removal_q == v + 1;  // Thm 8 keeps balance
      if (perfect || !options.require_perfect_parity)
        candidates.push_back({*feas.removal, perfect, 2,
                              Construction::kRemoval,
                              "removal from q=" +
                                  std::to_string(feas.removal_q)});
    }
    if (!options.require_perfect_parity && feas.stairway &&
        *feas.stairway <= options.unit_budget) {
      candidates.push_back({*feas.stairway, false, 2,
                            Construction::kStairway,
                            "stairway from q=" +
                                std::to_string(feas.stairway_q)});
    }
  }

  if (candidates.empty()) return std::nullopt;
  const Candidate* best = &candidates.front();
  for (const Candidate& c : candidates) {
    if (c.tier != best->tier ? c.tier < best->tier : c.size < best->size)
      best = &c;
  }

  switch (best->construction) {
    case Construction::kRingLayout:
      return finish(layout::ring_based_layout(v, k),
                    Construction::kRingLayout, best->description);
    case Construction::kBibdPerfect: {
      auto design = design::build_best_design(v, k);
      return finish(layout::perfectly_balanced_layout(design),
                    Construction::kBibdPerfect, best->description);
    }
    case Construction::kBibdFlow: {
      auto design = design::build_best_design(v, k);
      return finish(layout::flow_balanced_layout(design, 1),
                    Construction::kBibdFlow, best->description);
    }
    case Construction::kRemoval: {
      const std::uint32_t q = feas.removal_q;
      return finish(layout::removal_layout(q, k, q - v),
                    Construction::kRemoval, best->description);
    }
    case Construction::kStairway: {
      return finish(layout::stairway_layout(feas.stairway_q, v, k),
                    Construction::kStairway, best->description);
    }
    case Construction::kRaid5:
      break;  // handled above
  }
  throw std::logic_error("build_layout: unreachable");
}

}  // namespace pdl::core
