#include "core/declustered_array.hpp"

#include "engine/planner.hpp"

namespace pdl::core {

std::string construction_name(Construction construction) {
  switch (construction) {
    case Construction::kRaid5: return "RAID5";
    case Construction::kRingLayout: return "ring layout";
    case Construction::kBibdFlow: return "BIBD + flow-balanced parity";
    case Construction::kBibdPerfect: return "BIBD + perfect parity";
    case Construction::kRemoval: return "disk removal (Thm 8/9)";
    case Construction::kStairway: return "stairway (Thm 10-12)";
    case Construction::kExternal: return "external";
  }
  return "unknown";
}

// Compatibility shim: all construction selection lives in the engine's
// ConstructionPlanner registry (src/engine/); this function only forwards
// to the default planner.  New code should prefer pdl::api::Array (the
// front door) or engine::Engine (memoized builds).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
std::optional<BuiltLayout> build_layout(const ArraySpec& spec,
                                        const BuildOptions& options) {
  return engine::ConstructionPlanner::default_planner().build_best(spec,
                                                                   options);
}
#pragma GCC diagnostic pop

}  // namespace pdl::core
