#pragma once
// Top-level API: given an array size v and a parity stripe size k, choose
// and build the best parity-declustered layout this library knows --
// exact BIBD-based constructions when they exist and fit the unit budget
// (Condition 4), approximately-balanced constructions (Section 3)
// otherwise.
//
// Selection is delegated to the construction-engine registry in
// src/engine/ (engine::ConstructionPlanner); build_layout is a thin,
// uncached shim kept for compatibility.  New code should prefer
// engine::Engine, which memoizes builds, and layout::CompiledMapper for
// the serving path.

#include <optional>
#include <string>

#include "layout/feasibility.hpp"
#include "layout/layout.hpp"
#include "layout/metrics.hpp"

namespace pdl::core {

/// What the user wants to build.
struct ArraySpec {
  std::uint32_t num_disks = 0;    ///< v
  std::uint32_t stripe_size = 0;  ///< k (2 <= k <= v); k == v means RAID5
};

/// Selection policy.
struct BuildOptions {
  /// Condition 4 budget: maximum units per disk (lookup-table rows).
  std::uint64_t unit_budget = layout::kDefaultUnitBudget;
  /// Require perfectly balanced parity (rejects Theorem 9/12 layouts and
  /// single-copy BIBD layouts whose b is not a multiple of v).
  bool require_perfect_parity = false;
  /// Permit the approximately-balanced constructions of Section 3.
  bool allow_approximate = true;
};

/// How a layout was obtained, for reporting.
enum class Construction {
  kRaid5,
  kRingLayout,        ///< Section 3.1 single-copy ring layout
  kBibdFlow,          ///< catalog BIBD + Section 4 flow-balanced parity
  kBibdPerfect,       ///< catalog BIBD + lcm(b,v)/b copies (perfect parity)
  kRemoval,           ///< Theorems 8/9
  kStairway,          ///< Theorems 10-12
  kExternal,          ///< adopted/deserialized; provenance unknown
};

[[nodiscard]] std::string construction_name(Construction construction);

/// A built layout together with its provenance and measured quality.
struct BuiltLayout {
  layout::Layout layout;
  Construction construction;
  std::string description;        ///< e.g. "stairway q=81 c=5 w=5"
  layout::LayoutMetrics metrics;  ///< measured, not predicted
};

/// Builds the best layout for the spec under the options, or nullopt if no
/// construction fits the budget.  "Best" = smallest units-per-disk among
/// those with the strongest balance guarantees available:
/// perfectly-balanced routes are preferred when they fit, then single-copy
/// flow-balanced BIBD routes, then approximate routes.
///
/// Deprecated: prefer pdl::api::Array::create (the full front door) or
/// engine::Engine::build (memoized, Result-returning).  This uncached
/// shim remains for one release.
[[deprecated(
    "use pdl::api::Array::create or engine::Engine::build")]] [[nodiscard]]
std::optional<BuiltLayout> build_layout(const ArraySpec& spec,
                                        const BuildOptions& options = {});

}  // namespace pdl::core
