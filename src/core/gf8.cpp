#include "core/gf8.hpp"

#include <cstring>
#include <stdexcept>

#include "algebra/gf.hpp"
#include "algebra/polynomial.hpp"

namespace pdl::core::gf8 {

namespace {

constexpr std::size_t kLanes = 8;
constexpr std::size_t kBlock = kLanes * sizeof(std::uint64_t);  // 64 bytes

/// Bit-slicing masks for bytes packed in a 64-bit word.
constexpr std::uint64_t kLow7 = 0x7f7f7f7f7f7f7f7full;
constexpr std::uint64_t kOnes = 0x0101010101010101ull;

/// x * v for eight packed GF(2^8) bytes: shift every byte left one bit
/// (the & kLow7 keeps bits from crossing byte boundaries), then fold the
/// modulus into every byte whose top bit fell off -- (v >> 7) & kOnes is
/// exactly those bytes' carry flags, and multiplying by (kModulus & 0xff)
/// broadcasts the reduction constant 0x1d to them.
[[nodiscard]] constexpr std::uint64_t mul2(std::uint64_t v) noexcept {
  return ((v & kLow7) << 1) ^ (((v >> 7) & kOnes) * (kModulus & 0xff));
}

/// The log/exp tables, derived from the algebra-layer field so the byte
/// kernels and the mathematical reference cannot drift apart.  Because x
/// is primitive mod 0x11d the generator search finds g = 2 first, so
/// exp_[i] == alpha^i with alpha = 2 -- asserted at construction.
struct Tables {
  std::uint8_t exp[510];  // doubled so exp[log a + log b] needs no mod
  std::uint8_t log[256];
  std::uint8_t inverse[256];  // inverse[0] unused

  Tables() {
    const algebra::GaloisField field(
        256, algebra::Polynomial(
                 2, std::vector<std::uint32_t>{1, 0, 1, 1, 1, 0, 0, 0, 1}));
    if (field.primitive_element() != kAlpha)
      throw std::logic_error("gf8: generator is not alpha = 2");
    for (std::uint32_t i = 0; i < 255; ++i) {
      const auto e = static_cast<std::uint8_t>(field.exp(i));
      exp[i] = e;
      exp[i + 255] = e;
      log[e] = static_cast<std::uint8_t>(i);
    }
    log[0] = 0;  // never read; mul() guards zero operands
    for (std::uint32_t a = 1; a < 256; ++a)
      inverse[a] = static_cast<std::uint8_t>(
          *field.inverse(static_cast<algebra::Elem>(a)));
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

inline void check_same_size(std::size_t dst, std::size_t src,
                            const char* what) {
  if (dst != src)
    throw std::invalid_argument(std::string(what) + ": size mismatch");
}

/// One blocked multiply-accumulate pass: acc ^= c * block, with the
/// constant's bits unrolled into at most eight mul2 steps.  `cur` starts
/// as the source block and is doubled once per bit of c.
inline void mul_xor_block(std::uint64_t* acc, const std::uint64_t* src,
                          std::uint8_t c) noexcept {
  std::uint64_t cur[kLanes];
  for (std::size_t lane = 0; lane < kLanes; ++lane) cur[lane] = src[lane];
  std::uint32_t bits = c;
  while (bits != 0) {
    if (bits & 1)
      for (std::size_t lane = 0; lane < kLanes; ++lane)
        acc[lane] ^= cur[lane];
    bits >>= 1;
    if (bits != 0)
      for (std::size_t lane = 0; lane < kLanes; ++lane)
        cur[lane] = mul2(cur[lane]);
  }
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[static_cast<std::uint32_t>(t.log[a]) + t.log[b]];
}

std::uint8_t exp_alpha(std::uint32_t i) noexcept {
  return tables().exp[i % 255];
}

std::uint8_t inv(std::uint8_t a) {
  if (a == 0) throw std::invalid_argument("gf8::inv: inverse of zero");
  return tables().inverse[a];
}

void mul_xor_into(std::span<std::uint8_t> dst,
                  std::span<const std::uint8_t> src, std::uint8_t c) {
  check_same_size(dst.size(), src.size(), "gf8::mul_xor_into");
  if (c == 0) return;
  std::uint8_t* d = dst.data();
  const std::uint8_t* s = src.data();
  const std::size_t n = dst.size();
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    std::uint64_t acc[kLanes], from[kLanes];
    std::memcpy(acc, d + i, kBlock);
    std::memcpy(from, s + i, kBlock);
    mul_xor_block(acc, from, c);
    std::memcpy(d + i, acc, kBlock);
  }
  if (i < n) {
    // Tail: stage the remainder through one zero-padded block so the
    // bit-sliced pass stays the only multiply implementation on the
    // vector path (padding bytes are zero and multiply to zero).
    std::uint64_t acc[kLanes] = {}, from[kLanes] = {};
    std::memcpy(acc, d + i, n - i);
    std::memcpy(from, s + i, n - i);
    mul_xor_block(acc, from, c);
    std::memcpy(d + i, acc, n - i);
  }
}

void mul_in_place(std::span<std::uint8_t> dst, std::uint8_t c) {
  std::uint8_t* d = dst.data();
  const std::size_t n = dst.size();
  if (c == 0) {
    std::memset(d, 0, n);
    return;
  }
  if (c == 1) return;
  if (c == 2) {
    // The Horner-encode step: one bit-sliced doubling pass.
    std::size_t i = 0;
    for (; i + kBlock <= n; i += kBlock) {
      std::uint64_t v[kLanes];
      std::memcpy(v, d + i, kBlock);
      for (std::size_t lane = 0; lane < kLanes; ++lane) v[lane] = mul2(v[lane]);
      std::memcpy(d + i, v, kBlock);
    }
    if (i < n) {
      std::uint64_t v[kLanes] = {};
      std::memcpy(v, d + i, n - i);
      for (std::size_t lane = 0; lane < kLanes; ++lane) v[lane] = mul2(v[lane]);
      std::memcpy(d + i, v, n - i);
    }
    return;
  }
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    std::uint64_t acc[kLanes] = {}, from[kLanes];
    std::memcpy(from, d + i, kBlock);
    mul_xor_block(acc, from, c);
    std::memcpy(d + i, acc, kBlock);
  }
  if (i < n) {
    std::uint64_t acc[kLanes] = {}, from[kLanes] = {};
    std::memcpy(from, d + i, n - i);
    mul_xor_block(acc, from, c);
    std::memcpy(d + i, acc, n - i);
  }
}

namespace detail {

void mul_xor_into_scalar(std::span<std::uint8_t> dst,
                         std::span<const std::uint8_t> src, std::uint8_t c) {
  check_same_size(dst.size(), src.size(), "gf8::mul_xor_into_scalar");
  std::uint8_t* d = dst.data();
  const std::uint8_t* s = src.data();
  for (std::size_t i = 0; i < dst.size(); ++i) d[i] ^= mul(c, s[i]);
}

void mul_in_place_scalar(std::span<std::uint8_t> dst, std::uint8_t c) {
  std::uint8_t* d = dst.data();
  for (std::size_t i = 0; i < dst.size(); ++i) d[i] = mul(c, d[i]);
}

}  // namespace detail

}  // namespace pdl::core::gf8
