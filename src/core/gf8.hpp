#pragma once
/// @file
/// GF(2^8) byte-field kernels for the Reed-Solomon codec.
///
/// The field is pdl::algebra::GaloisField(256) pinned to the explicit
/// modulus x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the classic Reed-Solomon
/// polynomial.  The choice matters twice over: x itself is primitive mod
/// 0x11d (multiplicative order 255), so the code generator alpha = 2 gives
/// 255 distinct data coefficients alpha^i -- enough for any stripe the
/// online state machine admits (k <= 64) -- and multiplication by 2
/// reduces to one shift plus a conditional XOR of 0x1d, the primitive the
/// vectorized kernels below are built from.
///
/// Kernel shape mirrors core/xor_codec.hpp: 64-byte blocks processed as
/// eight std::uint64_t lanes loaded via memcpy (alignment-free), with the
/// GF(2) carry structure bit-sliced across the packed bytes --
/// mul2(v) = ((v & 0x7f..) << 1) ^ (((v >> 7) & 0x0101..) * 0x1d) -- so a
/// multiply-accumulate by an arbitrary constant is at most eight
/// shift/XOR passes, a shape GCC/Clang auto-vectorize to SSE2/AVX2.
/// pdl::core::gf8::detail keeps scalar log/exp-table reference
/// implementations, and a randomized differential test (test_codec) pins
/// the vectorized paths equal to them -- and both equal to the
/// algebra::GaloisField reference -- on every size/alignment class.

#include <cstdint>
#include <span>

namespace pdl::core::gf8 {

/// The modulus polynomial as a bit mask: x^8 + x^4 + x^3 + x^2 + 1.
inline constexpr std::uint16_t kModulus = 0x11d;

/// The code generator alpha = 2 (== x), primitive mod kModulus.
inline constexpr std::uint8_t kAlpha = 2;

/// a * b in GF(2^8) via the log/exp tables.
[[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b) noexcept;

/// alpha^i (exponent taken mod 255).
[[nodiscard]] std::uint8_t exp_alpha(std::uint32_t i) noexcept;

/// Multiplicative inverse of a nonzero element.
/// @throws std::invalid_argument on 0.
[[nodiscard]] std::uint8_t inv(std::uint8_t a);

/// dst[i] ^= c * src[i] -- the Reed-Solomon multiply-accumulate, the Q
/// parity's RMW hot loop.  c == 0 is a no-op; c == 1 degenerates to
/// xor_into.  Spans must match in size.
/// @throws std::invalid_argument on size mismatch.
void mul_xor_into(std::span<std::uint8_t> dst,
                  std::span<const std::uint8_t> src, std::uint8_t c);

/// dst[i] = c * dst[i] in place (c == 2 is the Horner-encode step and
/// runs as a single bit-sliced pass).
void mul_in_place(std::span<std::uint8_t> dst, std::uint8_t c);

/// @namespace pdl::core::gf8::detail
/// @brief Scalar log/exp-table reference implementations the vectorized
/// kernels are property-tested against.  Not part of the supported API.
namespace detail {

/// Scalar byte-loop mul_xor_into (one table multiply per byte).
void mul_xor_into_scalar(std::span<std::uint8_t> dst,
                         std::span<const std::uint8_t> src, std::uint8_t c);

/// Scalar byte-loop mul_in_place.
void mul_in_place_scalar(std::span<std::uint8_t> dst, std::uint8_t c);

}  // namespace detail

}  // namespace pdl::core::gf8
