#pragma once
// Umbrella header for the parity-declustered-layouts library.
//
// Quick start -- pdl::api::Array is the front door (engine-cached layout,
// compiled O(1) mapping, and the online failure/rebuild state machine
// behind one object; all fallible calls return pdl::Status / Result):
//
//   #include "core/pdl.hpp"
//   auto array = pdl::api::Array::create({.num_disks = 15, .stripe_size = 5});
//   if (!array.ok()) { /* array.status().to_string() says why */ }
//   auto where = array->map(/*logical=*/12345);
//   (void)array->fail_disk(3);
//   auto plan = array->plan_rebuild();
//
// Lower layers (engine::Engine for raw plans/builds, layout::CompiledMapper
// for standalone tables) remain available; the old nullptr-returning entry
// points survive only as deprecated shims.

#include "algebra/gf.hpp"
#include "algebra/numtheory.hpp"
#include "algebra/product_ring.hpp"
#include "api/array.hpp"
#include "core/declustered_array.hpp"
#include "core/recovery.hpp"
#include "core/status.hpp"
#include "core/xor_codec.hpp"
#include "design/bounds.hpp"
#include "design/catalog.hpp"
#include "design/complete_design.hpp"
#include "design/reduced_design.hpp"
#include "design/ring_design.hpp"
#include "design/subfield_design.hpp"
#include "engine/engine.hpp"
#include "engine/layout_cache.hpp"
#include "engine/planner.hpp"
#include "flow/parity_assign.hpp"
#include "layout/bibd_layout.hpp"
#include "layout/compiled_mapper.hpp"
#include "layout/disk_removal.hpp"
#include "layout/feasibility.hpp"
#include "layout/mapping.hpp"
#include "layout/metrics.hpp"
#include "layout/migration.hpp"
#include "layout/parallelism.hpp"
#include "layout/raid.hpp"
#include "layout/randomized.hpp"
#include "layout/ring_layout.hpp"
#include "layout/serialize.hpp"
#include "layout/sparing.hpp"
#include "layout/stairway.hpp"
#include "sim/array_sim.hpp"
#include "sim/fault_timeline.hpp"
#include "sim/rebuild_scheduler.hpp"
#include "sim/reconstruction.hpp"
#include "sim/scenario.hpp"
#include "sim/workload.hpp"
