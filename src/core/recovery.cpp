#include "core/recovery.hpp"

#include <stdexcept>

namespace pdl::core {

RecoveryPlan plan_recovery(const layout::Layout& layout,
                           layout::DiskId failed) {
  if (failed >= layout.num_disks())
    throw std::invalid_argument("plan_recovery: bad disk");

  RecoveryPlan plan;
  plan.failed = failed;
  plan.analysis = sim::analyze_reconstruction(layout, failed);

  for (std::uint32_t si = 0; si < layout.num_stripes(); ++si) {
    const layout::Stripe& st = layout.stripes()[si];
    StripeRepair repair;
    repair.stripe = si;
    bool crosses = false;
    for (const layout::StripeUnit& u : st.units) {
      if (u.disk == failed) {
        repair.lost = u;
        crosses = true;
      } else {
        repair.reads.push_back(u);
      }
    }
    if (crosses) plan.repairs.push_back(std::move(repair));
  }
  return plan;
}

}  // namespace pdl::core
