#pragma once
// Recovery planning: the concrete read/write schedule that rebuilds a
// failed disk, derived from the layout structure.

#include <vector>

#include "layout/layout.hpp"
#include "sim/reconstruction.hpp"

namespace pdl::core {

/// One stripe's repair: read `reads`, XOR them, write the result to the
/// failed disk's replacement at `lost.offset`.
struct StripeRepair {
  std::uint32_t stripe = 0;
  layout::StripeUnit lost;                 ///< the unit on the failed disk
  std::vector<layout::StripeUnit> reads;   ///< all surviving units
};

/// The full rebuild schedule for one failed disk.
struct RecoveryPlan {
  layout::DiskId failed = 0;
  std::vector<StripeRepair> repairs;       ///< one per lost unit
  sim::ReconstructionAnalysis analysis;    ///< per-disk read totals
};

/// Plans recovery of `failed`.  Every unit of the failed disk is covered by
/// exactly one repair (layouts are hole-free).
[[nodiscard]] RecoveryPlan plan_recovery(const layout::Layout& layout,
                                         layout::DiskId failed);

}  // namespace pdl::core
