#include "core/status.hpp"

namespace pdl {

std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnsupported: return "UNSUPPORTED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kParityInconsistent: return "PARITY_INCONSISTENT";
    case StatusCode::kChecksumMismatch: return "CHECKSUM_MISMATCH";
  }
  return "UNKNOWN";
}

}  // namespace pdl
