#pragma once
// The library-wide typed error model: pdl::Status (a code plus a
// human-readable message) and pdl::Result<T> (a value or a non-ok Status,
// tl::expected-style).  Every fallible front-door entry point -- Array
// creation, engine builds, serialization, feasibility queries -- reports
// failure through these types instead of nullptr / bool / ad-hoc throws.
//
// Conventions:
//   * Status::ok() / a value-holding Result is the success path.
//   * kInvalidArgument: the caller's request is malformed (bad spec, span
//     too small, out-of-range disk).  Fix the call site.
//   * kFailedPrecondition: the request is well-formed but the object is in
//     the wrong state for it (failing an already-failed disk, applying a
//     stale rebuild step).  Re-inspect state and retry differently.
//   * kUnsupported: no construction/route satisfies the request under the
//     given policy (e.g. nothing fits the unit budget).
//   * kDataLoss: the addressed data is unrecoverable (a stripe lost more
//     units than its codec tolerates).
//   * kParityInconsistent: the stripe's redundancy is torn (a compensating
//     write failed mid-RMW); the data units still hold bytes, but parity
//     cannot be trusted until the stripe is re-encoded.
//   * kChecksumMismatch: a stored unit failed per-unit checksum
//     verification and could not be reconstructed from redundancy (rot
//     plus existing erasures exceeded the codec's tolerance).
//   * kParseError / kIoError: malformed persisted state / filesystem
//     failure.
//   * Exceptions remain reserved for programmer errors and internal
//     invariant violations (std::logic_error and friends).
//
// Result<T> deliberately stays minimal: ok(), value(), status(),
// value_or(), and pointer-style access.  value() on an error Result throws
// std::logic_error -- accessing an unchecked error is a bug, not a
// recoverable condition.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace pdl {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kOutOfRange,
  kUnsupported,
  kDataLoss,
  kParseError,
  kIoError,
  kInternal,
  kParityInconsistent,
  kChecksumMismatch,
};

[[nodiscard]] std::string_view status_code_name(StatusCode code) noexcept;

class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status invalid_argument(std::string message) {
    return {StatusCode::kInvalidArgument, std::move(message)};
  }
  [[nodiscard]] static Status failed_precondition(std::string message) {
    return {StatusCode::kFailedPrecondition, std::move(message)};
  }
  [[nodiscard]] static Status not_found(std::string message) {
    return {StatusCode::kNotFound, std::move(message)};
  }
  [[nodiscard]] static Status out_of_range(std::string message) {
    return {StatusCode::kOutOfRange, std::move(message)};
  }
  [[nodiscard]] static Status unsupported(std::string message) {
    return {StatusCode::kUnsupported, std::move(message)};
  }
  [[nodiscard]] static Status data_loss(std::string message) {
    return {StatusCode::kDataLoss, std::move(message)};
  }
  [[nodiscard]] static Status parse_error(std::string message) {
    return {StatusCode::kParseError, std::move(message)};
  }
  [[nodiscard]] static Status io_error(std::string message) {
    return {StatusCode::kIoError, std::move(message)};
  }
  [[nodiscard]] static Status internal(std::string message) {
    return {StatusCode::kInternal, std::move(message)};
  }
  [[nodiscard]] static Status parity_inconsistent(std::string message) {
    return {StatusCode::kParityInconsistent, std::move(message)};
  }
  [[nodiscard]] static Status checksum_mismatch(std::string message) {
    return {StatusCode::kChecksumMismatch, std::move(message)};
  }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }

  /// "OK", or "INVALID_ARGUMENT: <message>".
  [[nodiscard]] std::string to_string() const {
    if (ok()) return "OK";
    std::string out(status_code_name(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status&, const Status&) = default;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// The success Status (absl-style spelling; Status::ok() is the query).
[[nodiscard]] inline Status OkStatus() { return {}; }

/// A value of type T, or the Status explaining why there is none.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Success.  Implicit so `return value;` works.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Failure.  Implicit so `return Status::...;` works.  Constructing a
  /// Result from an OK status is a bug; it is demoted to kInternal so the
  /// error path stays an error path.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok())
      status_ = Status::internal("Result constructed from OK status");
  }

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  /// The status: OK when a value is held.
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  /// The held value.  Throws std::logic_error when !ok() -- accessing an
  /// unchecked error Result is a programming bug.
  [[nodiscard]] const T& value() const& {
    require_ok();
    return *value_;
  }
  [[nodiscard]] T& value() & {
    require_ok();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    require_ok();
    return *std::move(value_);
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  template <typename U>
  [[nodiscard]] T value_or(U&& fallback) const& {
    return ok() ? *value_ : static_cast<T>(std::forward<U>(fallback));
  }
  template <typename U>
  [[nodiscard]] T value_or(U&& fallback) && {
    return ok() ? *std::move(value_)
                : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  void require_ok() const {
    if (!ok())
      throw std::logic_error("Result::value on error: " + status_.to_string());
  }

  std::optional<T> value_;
  Status status_;  ///< OK iff value_ is engaged
};

}  // namespace pdl
