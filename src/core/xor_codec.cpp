#include "core/xor_codec.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace pdl::core {

namespace {

/// Lanes per 64-byte block.  A block is loaded into eight std::uint64_t
/// via memcpy (no alignment requirement, no aliasing UB), XORed lane-wise
/// -- a shape GCC and Clang turn into two AVX2 ops or four SSE2 ops --
/// and stored back the same way.
constexpr std::size_t kLanes = 8;
constexpr std::size_t kBlock = kLanes * sizeof(std::uint64_t);  // 64 bytes

inline void check_same_size(std::size_t dst, std::size_t src,
                            const char* what) {
  if (dst != src) throw std::invalid_argument(std::string(what) +
                                              ": size mismatch");
}

}  // namespace

void xor_into(std::span<std::uint8_t> dst,
              std::span<const std::uint8_t> src) {
  check_same_size(dst.size(), src.size(), "xor_into");
  std::uint8_t* d = dst.data();
  const std::uint8_t* s = src.data();
  const std::size_t n = dst.size();
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    std::uint64_t a[kLanes], b[kLanes];
    std::memcpy(a, d + i, kBlock);
    std::memcpy(b, s + i, kBlock);
    for (std::size_t lane = 0; lane < kLanes; ++lane) a[lane] ^= b[lane];
    std::memcpy(d + i, a, kBlock);
  }
  for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
    std::uint64_t a, b;
    std::memcpy(&a, d + i, sizeof a);
    std::memcpy(&b, s + i, sizeof b);
    a ^= b;
    std::memcpy(d + i, &a, sizeof a);
  }
  for (; i < n; ++i) d[i] ^= s[i];
}

std::vector<std::uint8_t> xor_parity(
    std::span<const std::vector<std::uint8_t>> units) {
  if (units.empty()) throw std::invalid_argument("xor_parity: no units");
  std::vector<std::uint8_t> parity(units.front().size(), 0);
  for (const auto& unit : units) xor_into(parity, unit);
  return parity;
}

std::vector<std::uint8_t> xor_reconstruct(
    std::span<const std::vector<std::uint8_t>> survivors) {
  return xor_parity(survivors);
}

void xor_parity_into(std::span<std::uint8_t> dst,
                     std::span<const std::span<const std::uint8_t>> units) {
  if (units.empty())
    throw std::invalid_argument("xor_parity_into: no units");
  for (const auto unit : units)
    check_same_size(dst.size(), unit.size(), "xor_parity_into");

  // Single blocked pass: fold every source's block in registers, store
  // dst once.  Reading all sources' block i before storing dst's block i
  // also makes the call safe when dst aliases a unit EXACTLY (blocks are
  // consumed before they are overwritten); partial overlaps at an offset
  // would clobber unread source bytes and are not supported.
  std::uint8_t* d = dst.data();
  const std::size_t n = dst.size();
  const std::size_t fan_in = units.size();
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    std::uint64_t acc[kLanes];
    std::memcpy(acc, units[0].data() + i, kBlock);
    for (std::size_t u = 1; u < fan_in; ++u) {
      std::uint64_t b[kLanes];
      std::memcpy(b, units[u].data() + i, kBlock);
      for (std::size_t lane = 0; lane < kLanes; ++lane) acc[lane] ^= b[lane];
    }
    std::memcpy(d + i, acc, kBlock);
  }
  for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
    std::uint64_t acc;
    std::memcpy(&acc, units[0].data() + i, sizeof acc);
    for (std::size_t u = 1; u < fan_in; ++u) {
      std::uint64_t b;
      std::memcpy(&b, units[u].data() + i, sizeof b);
      acc ^= b;
    }
    std::memcpy(d + i, &acc, sizeof acc);
  }
  for (; i < n; ++i) {
    std::uint8_t acc = units[0][i];
    for (std::size_t u = 1; u < fan_in; ++u) acc ^= units[u][i];
    d[i] = acc;
  }
}

void xor_reconstruct_into(
    std::span<std::uint8_t> dst,
    std::span<const std::span<const std::uint8_t>> survivors) {
  if (survivors.empty())
    throw std::invalid_argument("xor_reconstruct_into: no survivors");
  xor_parity_into(dst, survivors);
}

namespace detail {

void xor_into_scalar(std::span<std::uint8_t> dst,
                     std::span<const std::uint8_t> src) {
  check_same_size(dst.size(), src.size(), "xor_into_scalar");
  std::uint8_t* d = dst.data();
  const std::uint8_t* s = src.data();
  // Byte-indexed loop, one lane at a time: the PR-4 baseline shape.
  for (std::size_t i = 0; i < dst.size(); ++i) d[i] ^= s[i];
}

void xor_parity_into_scalar(
    std::span<std::uint8_t> dst,
    std::span<const std::span<const std::uint8_t>> units) {
  if (units.empty())
    throw std::invalid_argument("xor_parity_into_scalar: no units");
  for (const auto unit : units)
    check_same_size(dst.size(), unit.size(), "xor_parity_into_scalar");
  std::fill(dst.begin(), dst.end(), std::uint8_t{0});
  for (const auto unit : units) xor_into_scalar(dst, unit);
}

}  // namespace detail

}  // namespace pdl::core
