#include "core/xor_codec.hpp"

#include <algorithm>
#include <stdexcept>

namespace pdl::core {

void xor_into(std::span<std::uint8_t> dst,
              std::span<const std::uint8_t> src) {
  if (dst.size() != src.size())
    throw std::invalid_argument("xor_into: size mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

std::vector<std::uint8_t> xor_parity(
    std::span<const std::vector<std::uint8_t>> units) {
  if (units.empty()) throw std::invalid_argument("xor_parity: no units");
  std::vector<std::uint8_t> parity(units.front().size(), 0);
  for (const auto& unit : units) xor_into(parity, unit);
  return parity;
}

std::vector<std::uint8_t> xor_reconstruct(
    std::span<const std::vector<std::uint8_t>> survivors) {
  return xor_parity(survivors);
}

void xor_parity_into(std::span<std::uint8_t> dst,
                     std::span<const std::span<const std::uint8_t>> units) {
  if (units.empty())
    throw std::invalid_argument("xor_parity_into: no units");
  std::fill(dst.begin(), dst.end(), std::uint8_t{0});
  for (const auto unit : units) xor_into(dst, unit);
}

void xor_reconstruct_into(
    std::span<std::uint8_t> dst,
    std::span<const std::span<const std::uint8_t>> survivors) {
  xor_parity_into(dst, survivors);
}

}  // namespace pdl::core
