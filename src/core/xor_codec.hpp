#pragma once
/// @file
/// The parity code itself (Figure 1): parity = XOR of the stripe's data
/// units; any single lost unit is the XOR of the survivors.  Provided so
/// examples and tests can demonstrate end-to-end data recovery, not just
/// unit counting.
///
/// The span-based kernels are the data path's hot loop: they process
/// 64-byte blocks word-at-a-time (eight `std::uint64_t` lanes loaded via
/// `memcpy`, so alignment never matters) in a shape GCC/Clang
/// auto-vectorize to SSE2/AVX2 at -O2/-O3.  `pdl::core::detail` keeps the
/// scalar byte-loop reference implementations, and a randomized property
/// test (`test_xor_codec_properties`) pins the vectorized paths equal to
/// them on every size/alignment class; `bench_xor_codec` measures the
/// resulting MB/s side by side.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

/// @namespace pdl::core
/// @brief Cross-cutting primitives: the Status/Result error model, the
/// XOR parity codec, recovery planning, and the umbrella header.
namespace pdl::core {

/// XOR-accumulates `src` into `dst` (dst[i] ^= src[i]); both spans must
/// have the same size.  @throws std::invalid_argument on size mismatch.
void xor_into(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src);

/// Parity of a set of equal-sized data units.
/// @throws std::invalid_argument when `units` is empty or ragged.
[[nodiscard]] std::vector<std::uint8_t> xor_parity(
    std::span<const std::vector<std::uint8_t>> units);

/// Reconstructs the missing unit from the k-1 survivors (data or parity --
/// XOR is self-inverse, so the same call serves both directions).
/// @throws std::invalid_argument when `survivors` is empty or ragged.
[[nodiscard]] std::vector<std::uint8_t> xor_reconstruct(
    std::span<const std::vector<std::uint8_t>> survivors);

// Span-based no-copy forms for the byte-moving serving path (io::
// StripeStore): the caller points each span at bytes already resident in
// the disk buffers and the result lands in caller-owned storage -- no
// per-unit vector materialization on degraded reads or rebuild.

/// dst = XOR of `units`, overwriting dst.  Single blocked pass: each
/// 64-byte block of every source is folded in registers before dst is
/// written, so dst traffic is one store per block regardless of fan-in.
/// dst may alias a source EXACTLY (same address and size, the in-place
/// parity-fold case); partially overlapping spans are not supported.
/// Every unit must match dst.size().
/// @throws std::invalid_argument when `units` is empty or sizes mismatch.
void xor_parity_into(std::span<std::uint8_t> dst,
                     std::span<const std::span<const std::uint8_t>> units);

/// Reconstructs the missing unit from the k-1 survivors into `dst`
/// (identical operation to xor_parity_into; reconstruction wording).
/// @throws std::invalid_argument when `survivors` is empty or sizes
/// mismatch.
void xor_reconstruct_into(
    std::span<std::uint8_t> dst,
    std::span<const std::span<const std::uint8_t>> survivors);

/// @namespace pdl::core::detail
/// @brief Scalar reference implementations of the vectorized kernels,
/// exported so property tests and `bench_xor_codec` can pin and measure
/// the hot path against them.  Not part of the supported API surface.
namespace detail {

/// Scalar byte-loop xor_into: the PR-4 baseline the vectorized path is
/// tested against.  Same contract as pdl::core::xor_into.
void xor_into_scalar(std::span<std::uint8_t> dst,
                     std::span<const std::uint8_t> src);

/// Scalar byte-loop xor_parity_into (zero-fill dst, fold each unit).
/// Same contract as pdl::core::xor_parity_into.
void xor_parity_into_scalar(
    std::span<std::uint8_t> dst,
    std::span<const std::span<const std::uint8_t>> units);

}  // namespace detail

}  // namespace pdl::core
