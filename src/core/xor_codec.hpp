#pragma once
// The parity code itself (Figure 1): parity = XOR of the stripe's data
// units; any single lost unit is the XOR of the survivors.  Provided so
// examples and tests can demonstrate end-to-end data recovery, not just
// unit counting.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pdl::core {

/// XOR-accumulates `src` into `dst`; both must have the same size.
void xor_into(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src);

/// Parity of a set of equal-sized data units.
[[nodiscard]] std::vector<std::uint8_t> xor_parity(
    std::span<const std::vector<std::uint8_t>> units);

/// Reconstructs the missing unit from the k-1 survivors (data or parity --
/// XOR is self-inverse, so the same call serves both directions).
[[nodiscard]] std::vector<std::uint8_t> xor_reconstruct(
    std::span<const std::vector<std::uint8_t>> survivors);

// Span-based no-copy forms for the byte-moving serving path (io::
// StripeStore): the caller points each span at bytes already resident in
// the disk buffers and the result lands in caller-owned storage -- no
// per-unit vector materialization on degraded reads or rebuild.

/// dst = XOR of `units`, overwriting dst.  Every unit must match
/// dst.size(); `units` must be non-empty.
void xor_parity_into(std::span<std::uint8_t> dst,
                     std::span<const std::span<const std::uint8_t>> units);

/// Reconstructs the missing unit from the k-1 survivors into `dst`
/// (identical operation to xor_parity_into; reconstruction wording).
void xor_reconstruct_into(
    std::span<std::uint8_t> dst,
    std::span<const std::span<const std::uint8_t>> survivors);

}  // namespace pdl::core
