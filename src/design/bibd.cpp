#include "design/bibd.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>

namespace pdl::design {

std::string DesignParams::to_string() const {
  return "BIBD(v=" + std::to_string(v) + ", k=" + std::to_string(k) +
         ", b=" + std::to_string(b) + ", r=" + std::to_string(r) +
         ", lambda=" + std::to_string(lambda) + ")";
}

BibdCheck verify_bibd(const BlockDesign& design) {
  BibdCheck check;
  auto fail = [&](std::string msg) {
    if (check.errors.size() < 16) check.errors.push_back(std::move(msg));
  };

  const std::uint32_t v = design.v;
  const std::uint32_t k = design.k;
  if (v < 2) fail("v must be >= 2");
  if (k < 2 || k > v) fail("k must satisfy 2 <= k <= v");
  if (design.blocks.empty()) fail("design has no blocks");
  if (!check.errors.empty()) return check;

  std::vector<std::uint64_t> replication(v, 0);
  // Triangular pair-count array: pair (i < j) at index j*(j-1)/2 + i.
  std::vector<std::uint64_t> pair_count(
      static_cast<std::size_t>(v) * (v - 1) / 2, 0);

  std::vector<Elem> sorted;
  for (std::size_t bi = 0; bi < design.blocks.size(); ++bi) {
    const auto& block = design.blocks[bi];
    if (block.size() != k) {
      fail("block " + std::to_string(bi) + " has size " +
           std::to_string(block.size()) + ", expected " + std::to_string(k));
      continue;
    }
    sorted.assign(block.begin(), block.end());
    std::sort(sorted.begin(), sorted.end());
    if (sorted.back() >= v) {
      fail("block " + std::to_string(bi) + " has element out of range");
      continue;
    }
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      fail("block " + std::to_string(bi) + " has a repeated element");
      continue;
    }
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      ++replication[sorted[i]];
      for (std::size_t j = i + 1; j < sorted.size(); ++j) {
        ++pair_count[static_cast<std::size_t>(sorted[j]) * (sorted[j] - 1) / 2 +
                     sorted[i]];
      }
    }
  }
  if (!check.errors.empty()) return check;

  const std::uint64_t r = replication[0];
  for (std::uint32_t x = 0; x < v; ++x) {
    if (replication[x] != r) {
      fail("element " + std::to_string(x) + " has replication " +
           std::to_string(replication[x]) + " != r = " + std::to_string(r));
    }
  }
  const std::uint64_t lambda = pair_count[0];
  for (std::size_t idx = 0; idx < pair_count.size(); ++idx) {
    if (pair_count[idx] != lambda) {
      fail("a pair appears " + std::to_string(pair_count[idx]) +
           " times != lambda = " + std::to_string(lambda));
      break;
    }
  }
  if (!check.errors.empty()) return check;

  check.ok = true;
  check.params = {v, k, design.b(), r, lambda};
  return check;
}

DesignParams design_params(const BlockDesign& design) {
  DesignParams params;
  params.v = design.v;
  params.k = design.k;
  params.b = design.b();
  // r = b*k/v and lambda = r*(k-1)/(v-1) for a BIBD.
  params.r = params.b * design.k / design.v;
  params.lambda = params.r * (design.k - 1) / (design.v - 1);
  return params;
}

std::vector<std::pair<std::vector<Elem>, std::uint64_t>> block_multiplicities(
    const BlockDesign& design) {
  std::map<std::vector<Elem>, std::uint64_t> counts;
  std::vector<Elem> sorted;
  for (const auto& block : design.blocks) {
    sorted.assign(block.begin(), block.end());
    std::sort(sorted.begin(), sorted.end());
    ++counts[sorted];
  }
  return {counts.begin(), counts.end()};
}

ReductionResult reduce_redundancy(const BlockDesign& design) {
  const auto counts = block_multiplicities(design);
  std::uint64_t g = 0;
  for (const auto& [block, count] : counts) g = std::gcd(g, count);
  if (g == 0) g = 1;

  ReductionResult result;
  result.factor = g;
  result.design.v = design.v;
  result.design.k = design.k;
  for (const auto& [block, count] : counts) {
    for (std::uint64_t i = 0; i < count / g; ++i) {
      result.design.blocks.push_back(block);
    }
  }
  return result;
}

BlockDesign reduce_by_factor(const BlockDesign& design, std::uint64_t f) {
  if (f == 0) throw std::invalid_argument("reduce_by_factor: f must be >= 1");
  BlockDesign out;
  out.v = design.v;
  out.k = design.k;
  for (const auto& [block, count] : block_multiplicities(design)) {
    if (count % f != 0)
      throw std::invalid_argument(
          "reduce_by_factor: block multiplicity " + std::to_string(count) +
          " not divisible by " + std::to_string(f));
    for (std::uint64_t i = 0; i < count / f; ++i) out.blocks.push_back(block);
  }
  return out;
}

}  // namespace pdl::design
