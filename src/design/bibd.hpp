#pragma once
// Balanced incomplete block designs (BIBDs): the combinatorial substrate of
// parity-declustered layouts.  A BIBD is a collection of b k-element blocks
// over a v-element point set such that every point lies in exactly r blocks
// and every pair of points lies in exactly lambda blocks.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "algebra/ring.hpp"

namespace pdl::design {

using pdl::algebra::Elem;

/// BIBD parameters (v, k, b, r, lambda).  The admissibility identities are
/// b*k = v*r and r*(k-1) = lambda*(v-1).
struct DesignParams {
  std::uint32_t v = 0;
  std::uint32_t k = 0;
  std::uint64_t b = 0;
  std::uint64_t r = 0;
  std::uint64_t lambda = 0;

  friend bool operator==(const DesignParams&, const DesignParams&) = default;

  [[nodiscard]] std::string to_string() const;
};

/// A block design: a multiset of k-element blocks over points 0..v-1.
/// Within a block, element order is construction-defined (ring-based designs
/// store the g_i-th element at position i); treat blocks as sets unless a
/// construction documents otherwise.
struct BlockDesign {
  std::uint32_t v = 0;
  std::uint32_t k = 0;
  std::vector<std::vector<Elem>> blocks;

  [[nodiscard]] std::uint64_t b() const noexcept { return blocks.size(); }
};

/// Result of verifying the BIBD conditions on a block design.
struct BibdCheck {
  bool ok = false;
  DesignParams params;               ///< valid only when ok
  std::vector<std::string> errors;   ///< human-readable violations (capped)
};

/// Exhaustively checks that the design is a BIBD: block sizes, element
/// ranges, per-element replication r, and per-pair balance lambda.
[[nodiscard]] BibdCheck verify_bibd(const BlockDesign& design);

/// Computes (v, k, b, r, lambda) assuming the design is a BIBD (r and lambda
/// are read off the first element/pair); use verify_bibd to validate.
[[nodiscard]] DesignParams design_params(const BlockDesign& design);

/// Redundancy removal (Section 2.2): if every distinct block appears a
/// number of times divisible by f, the design can be shrunk by factor f.
struct ReductionResult {
  BlockDesign design;      ///< the reduced design
  std::uint64_t factor = 1;  ///< the factor removed (gcd of multiplicities)
};

/// Removes the maximum uniform redundancy: computes the gcd g of all block
/// multiplicities and keeps multiplicity/g copies of each distinct block.
/// The result is a BIBD with b, r, lambda divided by g whenever the input
/// was a BIBD.
[[nodiscard]] ReductionResult reduce_redundancy(const BlockDesign& design);

/// Removes redundancy by an exact factor f; throws std::invalid_argument if
/// some block multiplicity is not divisible by f.
[[nodiscard]] BlockDesign reduce_by_factor(const BlockDesign& design,
                                           std::uint64_t f);

/// The number of times each distinct block appears, keyed by sorted block.
[[nodiscard]] std::vector<std::pair<std::vector<Elem>, std::uint64_t>>
block_multiplicities(const BlockDesign& design);

}  // namespace pdl::design
