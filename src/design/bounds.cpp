#include "design/bounds.hpp"

#include <numeric>
#include <stdexcept>

namespace pdl::design {

std::uint64_t theorem7_lower_bound(std::uint64_t v, std::uint64_t k) {
  if (v < 2 || k < 2 || k > v)
    throw std::invalid_argument("theorem7_lower_bound: need 2 <= k <= v");
  const std::uint64_t vv = v * (v - 1);
  const std::uint64_t kk = k * (k - 1);
  return vv / std::gcd(vv, kk);
}

std::uint64_t fisher_lower_bound(std::uint64_t v) { return v; }

bool is_admissible(std::uint64_t v, std::uint64_t k, std::uint64_t lambda) {
  if (v < 2 || k < 2 || k > v || lambda < 1) return false;
  if ((lambda * (v - 1)) % (k - 1) != 0) return false;
  const std::uint64_t r = lambda * (v - 1) / (k - 1);
  return (v * r) % k == 0;
}

std::uint64_t min_admissible_lambda(std::uint64_t v, std::uint64_t k) {
  if (v < 2 || k < 2 || k > v)
    throw std::invalid_argument("min_admissible_lambda: need 2 <= k <= v");
  for (std::uint64_t lambda = 1;; ++lambda) {
    if (is_admissible(v, k, lambda)) return lambda;
    if (lambda > k * (k - 1))
      throw std::logic_error(
          "min_admissible_lambda: exceeded k(k-1) without admissibility");
  }
}

std::uint64_t blocks_for_lambda(std::uint64_t v, std::uint64_t k,
                                std::uint64_t lambda) {
  return lambda * v * (v - 1) / (k * (k - 1));
}

}  // namespace pdl::design
