#pragma once
// Size bounds and admissibility conditions for BIBDs (Theorem 7 and the
// classical counting identities).

#include <cstdint>

namespace pdl::design {

/// Theorem 7: any BIBD on v points with blocks of size k has
///   b >= v(v-1) / gcd(v(v-1), k(k-1)).
[[nodiscard]] std::uint64_t theorem7_lower_bound(std::uint64_t v,
                                                 std::uint64_t k);

/// Fisher's inequality: a BIBD with k < v has b >= v.
[[nodiscard]] std::uint64_t fisher_lower_bound(std::uint64_t v);

/// True iff (v, k, lambda) satisfies the integrality conditions
/// r = lambda(v-1)/(k-1) and b = vr/k both integral.
[[nodiscard]] bool is_admissible(std::uint64_t v, std::uint64_t k,
                                 std::uint64_t lambda);

/// The smallest lambda >= 1 for which (v, k, lambda) is admissible.
[[nodiscard]] std::uint64_t min_admissible_lambda(std::uint64_t v,
                                                  std::uint64_t k);

/// b for a given admissible (v, k, lambda): lambda*v*(v-1)/(k*(k-1)).
[[nodiscard]] std::uint64_t blocks_for_lambda(std::uint64_t v,
                                              std::uint64_t k,
                                              std::uint64_t lambda);

}  // namespace pdl::design
