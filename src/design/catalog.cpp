#include "design/catalog.hpp"

#include <stdexcept>

#include "algebra/numtheory.hpp"
#include "design/complete_design.hpp"
#include "design/reduced_design.hpp"
#include "design/ring_design.hpp"
#include "design/subfield_design.hpp"

namespace pdl::design {

std::string method_name(Method method) {
  switch (method) {
    case Method::kComplete: return "complete";
    case Method::kRing: return "ring (Thm 1)";
    case Method::kTheorem4: return "symmetric (Thm 4)";
    case Method::kTheorem5: return "symmetric (Thm 5)";
    case Method::kSubfield: return "subfield (Thm 6)";
  }
  return "unknown";
}

std::optional<DesignParams> predicted_params(Method method, std::uint32_t v,
                                             std::uint32_t k) {
  if (v < 2 || k < 2 || k > v) return std::nullopt;
  switch (method) {
    case Method::kComplete:
      return complete_design_params(v, k);
    case Method::kRing:
      if (!ring_design_exists(v, k)) return std::nullopt;
      return ring_design_params(v, k);
    case Method::kTheorem4:
      if (!algebra::is_prime_power(v)) return std::nullopt;
      return theorem4_params(v, k);
    case Method::kTheorem5:
      if (!algebra::is_prime_power(v) || k == v) return std::nullopt;
      return theorem5_params(v, k);
    case Method::kSubfield:
      if (!subfield_design_exists(v, k)) return std::nullopt;
      return subfield_design_params(v, k);
  }
  return std::nullopt;
}

std::vector<Method> applicable_methods(std::uint32_t v, std::uint32_t k) {
  std::vector<Method> out;
  for (Method m : {Method::kComplete, Method::kRing, Method::kTheorem4,
                   Method::kTheorem5, Method::kSubfield}) {
    if (predicted_params(m, v, k)) out.push_back(m);
  }
  return out;
}

BlockDesign build_design(Method method, std::uint32_t v, std::uint32_t k) {
  if (!predicted_params(method, v, k))
    throw std::invalid_argument("build_design: " + method_name(method) +
                                " does not apply at v=" + std::to_string(v) +
                                ", k=" + std::to_string(k));
  switch (method) {
    case Method::kComplete: return make_complete_design(v, k);
    case Method::kRing: return make_ring_design(v, k).design;
    case Method::kTheorem4: return make_theorem4_design(v, k);
    case Method::kTheorem5: return make_theorem5_design(v, k);
    case Method::kSubfield: return make_subfield_design(v, k);
  }
  throw std::logic_error("build_design: unreachable");
}

std::optional<CatalogChoice> best_method(std::uint32_t v, std::uint32_t k) {
  std::optional<CatalogChoice> best;
  for (Method m : applicable_methods(v, k)) {
    const auto params = predicted_params(m, v, k);
    if (!best || params->b < best->params.b) best = CatalogChoice{m, *params};
  }
  return best;
}

BlockDesign build_best_design(std::uint32_t v, std::uint32_t k) {
  const auto choice = best_method(v, k);
  if (!choice)
    throw std::invalid_argument("build_best_design: no construction for v=" +
                                std::to_string(v) + ", k=" + std::to_string(k));
  return build_design(choice->method, v, k);
}

}  // namespace pdl::design
