#pragma once
// A catalog over all BIBD constructions in this library: given (v, k) it
// reports which constructions apply, their predicted sizes, and builds the
// smallest applicable design.  This is the "effective, easily implemented
// construction" front-end the paper argues for over published design tables.

#include <optional>
#include <string>
#include <vector>

#include "design/bibd.hpp"

namespace pdl::design {

/// The BIBD constructions implemented by this library.
enum class Method {
  kComplete,    ///< all C(v,k) subsets (baseline)
  kRing,        ///< Theorem 1 over the canonical ring of order v
  kTheorem4,    ///< symmetric generators, factor gcd(v-1, k-1) (Hanani)
  kTheorem5,    ///< symmetric generators, factor gcd(v-1, k)
  kSubfield,    ///< Theorem 6, optimally small (lambda = 1)
};

[[nodiscard]] std::string method_name(Method method);

/// Predicted parameters of a method at (v, k), or nullopt if the method
/// does not apply there.
[[nodiscard]] std::optional<DesignParams> predicted_params(Method method,
                                                           std::uint32_t v,
                                                           std::uint32_t k);

/// All methods applicable at (v, k), in enum order.
[[nodiscard]] std::vector<Method> applicable_methods(std::uint32_t v,
                                                     std::uint32_t k);

/// Builds the design for an applicable method.  Throws if inapplicable.
[[nodiscard]] BlockDesign build_design(Method method, std::uint32_t v,
                                       std::uint32_t k);

/// The applicable method with the smallest b, if any method applies.
struct CatalogChoice {
  Method method;
  DesignParams params;
};
[[nodiscard]] std::optional<CatalogChoice> best_method(std::uint32_t v,
                                                       std::uint32_t k);

/// Builds the design chosen by best_method.  Throws if nothing applies.
[[nodiscard]] BlockDesign build_best_design(std::uint32_t v, std::uint32_t k);

}  // namespace pdl::design
