#include "design/complete_design.hpp"

#include <limits>
#include <stdexcept>

namespace pdl::design {

std::uint64_t binomial(std::uint64_t n, std::uint64_t r) {
  if (r > n) return 0;
  r = std::min(r, n - r);
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= r; ++i) {
    const std::uint64_t factor = n - r + i;
    // result = result * factor / i, guarding overflow.
    if (result > std::numeric_limits<std::uint64_t>::max() / factor)
      return std::numeric_limits<std::uint64_t>::max();
    result = result * factor / i;
  }
  return result;
}

BlockDesign make_complete_design(std::uint32_t v, std::uint32_t k,
                                 std::uint64_t max_blocks) {
  if (k < 2 || k > v)
    throw std::invalid_argument("make_complete_design: need 2 <= k <= v");
  const std::uint64_t b = binomial(v, k);
  if (b > max_blocks)
    throw std::invalid_argument("make_complete_design: C(v,k) = " +
                                std::to_string(b) + " exceeds limit");
  BlockDesign out;
  out.v = v;
  out.k = k;
  out.blocks.reserve(b);

  // Standard lexicographic combination enumeration.
  std::vector<Elem> block(k);
  for (std::uint32_t i = 0; i < k; ++i) block[i] = i;
  while (true) {
    out.blocks.push_back(block);
    // Advance to the next combination.
    int i = static_cast<int>(k) - 1;
    while (i >= 0 && block[i] == v - k + i) --i;
    if (i < 0) break;
    ++block[i];
    for (std::uint32_t j = i + 1; j < k; ++j) block[j] = block[j - 1] + 1;
  }
  return out;
}

DesignParams complete_design_params(std::uint32_t v, std::uint32_t k) {
  DesignParams p;
  p.v = v;
  p.k = k;
  p.b = binomial(v, k);
  p.r = binomial(v - 1, k - 1);
  p.lambda = binomial(v - 2, k - 2);
  return p;
}

}  // namespace pdl::design
