#pragma once
// The complete block design: all C(v, k) k-subsets of a v-set.  Always a
// BIBD (b = C(v,k), r = C(v-1,k-1), lambda = C(v-2,k-2)), but so large that
// Condition 4 rules it out for all but tiny arrays -- it is the baseline the
// paper's constructions are measured against.

#include "design/bibd.hpp"

namespace pdl::design {

/// C(n, r) with overflow saturation to UINT64_MAX.
[[nodiscard]] std::uint64_t binomial(std::uint64_t n, std::uint64_t r);

/// Builds the complete design.  Throws std::invalid_argument if
/// C(v, k) > max_blocks (guard against accidental explosion).
[[nodiscard]] BlockDesign make_complete_design(
    std::uint32_t v, std::uint32_t k, std::uint64_t max_blocks = 10'000'000);

/// Expected parameters: b = C(v,k), r = C(v-1,k-1), lambda = C(v-2,k-2).
[[nodiscard]] DesignParams complete_design_params(std::uint32_t v,
                                                  std::uint32_t k);

}  // namespace pdl::design
