#include "design/reduced_design.hpp"

#include <numeric>
#include <stdexcept>

#include "algebra/gf.hpp"
#include "algebra/numtheory.hpp"

namespace pdl::design {

using algebra::GaloisField;

namespace {

std::shared_ptr<const GaloisField> field_for(std::uint32_t v,
                                             std::uint32_t k,
                                             const char* who) {
  if (!algebra::is_prime_power(v))
    throw std::invalid_argument(std::string(who) +
                                ": v must be a prime power");
  if (k < 2 || k > v)
    throw std::invalid_argument(std::string(who) + ": need 2 <= k <= v");
  return algebra::get_field(v);
}

}  // namespace

std::vector<Elem> theorem4_generators(std::uint32_t v, std::uint32_t k) {
  auto field = field_for(v, k, "theorem4_generators");
  const std::uint32_t f = std::gcd(v - 1, k - 1);

  // The multiplicative subgroup H = <a> of order f consists of
  // exp(j*(v-1)/f); the coset of exp(t) is {exp(t + j*(v-1)/f)}.  Cosets are
  // indexed by t in [0, (v-1)/f); we take the first (k-1)/f cosets.
  const std::uint32_t num_cosets = (k - 1) / f;
  std::vector<Elem> gens;
  gens.reserve(k);
  gens.push_back(0);  // the fixed point {0} of x -> a*x, required as g_0
  for (std::uint32_t t = 0; t < num_cosets; ++t) {
    for (std::uint32_t j = 0; j < f; ++j) {
      gens.push_back(field->exp(t + static_cast<std::uint64_t>(j) *
                                        ((v - 1) / f)));
    }
  }
  return gens;
}

BlockDesign make_theorem4_design(std::uint32_t v, std::uint32_t k) {
  auto field = field_for(v, k, "make_theorem4_design");
  const std::uint32_t f = std::gcd(v - 1, k - 1);
  RingDesign rd = make_ring_design(field, theorem4_generators(v, k));
  return reduce_by_factor(rd.design, f);
}

DesignParams theorem4_params(std::uint32_t v, std::uint32_t k) {
  const std::uint64_t f = std::gcd(v - 1, k - 1);
  DesignParams p;
  p.v = v;
  p.k = k;
  p.b = static_cast<std::uint64_t>(v) * (v - 1) / f;
  p.r = static_cast<std::uint64_t>(k) * (v - 1) / f;
  p.lambda = static_cast<std::uint64_t>(k) * (k - 1) / f;
  return p;
}

std::vector<Elem> theorem5_generators(std::uint32_t v, std::uint32_t k) {
  auto field = field_for(v, k, "theorem5_generators");
  const std::uint32_t f = std::gcd(v - 1, k);

  // pi(x) = z + a(x - z) with ord(a) = f fixes z and otherwise has cycles
  // {z + a^j (w - z)} of size f.  Generators: k/f such cycles, the cycle
  // through 0 first (so g_0 = 0), z excluded automatically.
  const Elem z = field->one();
  const Elem a = field->element_of_multiplicative_order(f);
  auto pi = [&](Elem x) {
    return field->add(z, field->mul(a, field->sub(x, z)));
  };

  const std::uint32_t num_cycles = k / f;
  std::vector<bool> used(v, false);
  used[z] = true;
  std::vector<Elem> gens;
  gens.reserve(k);

  auto take_cycle = [&](Elem w) {
    Elem x = w;
    for (std::uint32_t j = 0; j < f; ++j) {
      if (used[x])
        throw std::logic_error("theorem5_generators: cycle overlap");
      used[x] = true;
      gens.push_back(x);
      x = pi(x);
    }
    if (x != w) throw std::logic_error("theorem5_generators: bad cycle size");
  };

  take_cycle(0);  // the cycle through 0, starting at 0 so that g_0 = 0
  std::uint32_t cycles = 1;
  for (Elem w = 0; w < v && cycles < num_cycles; ++w) {
    if (used[w]) continue;
    take_cycle(w);
    ++cycles;
  }
  if (cycles < num_cycles)
    throw std::logic_error("theorem5_generators: not enough cycles");
  return gens;
}

BlockDesign make_theorem5_design(std::uint32_t v, std::uint32_t k) {
  auto field = field_for(v, k, "make_theorem5_design");
  if (k == v)
    throw std::invalid_argument(
        "make_theorem5_design: k must be < v (the permutation's fixed point "
        "cannot be a generator)");
  const std::uint32_t f = std::gcd(v - 1, k);
  RingDesign rd = make_ring_design(field, theorem5_generators(v, k));
  return reduce_by_factor(rd.design, f);
}

DesignParams theorem5_params(std::uint32_t v, std::uint32_t k) {
  const std::uint64_t f = std::gcd(v - 1, k);
  DesignParams p;
  p.v = v;
  p.k = k;
  p.b = static_cast<std::uint64_t>(v) * (v - 1) / f;
  p.r = static_cast<std::uint64_t>(k) * (v - 1) / f;
  p.lambda = static_cast<std::uint64_t>(k) * (k - 1) / f;
  return p;
}

}  // namespace pdl::design
