#pragma once
// Redundancy-reduced ring designs via symmetric generators (Section 2.2.1,
// Theorems 4 and 5).  Both require v to be a prime power; the design is a
// Theorem-1 design over GF(v) whose generators are chosen as unions of
// cycles of a field permutation, making every block appear a multiple of
// f times, after which the design is shrunk by factor f.

#include "design/bibd.hpp"
#include "design/ring_design.hpp"

namespace pdl::design {

/// Theorem 4: BIBD for prime-power v and any k (2 <= k <= v) with
///   f = gcd(v-1, k-1),
///   b = v(v-1)/f, r = k(v-1)/f, lambda = k(k-1)/f.
/// Generators: {0} plus (k-1)/f cosets of the order-f multiplicative
/// subgroup.
[[nodiscard]] BlockDesign make_theorem4_design(std::uint32_t v,
                                               std::uint32_t k);

/// Expected parameters of the Theorem 4 design.
[[nodiscard]] DesignParams theorem4_params(std::uint32_t v, std::uint32_t k);

/// Theorem 5: BIBD for prime-power v and any k (2 <= k <= v, k < v required
/// so that the fixed point z of the permutation is outside the generators)
/// with
///   f = gcd(v-1, k),
///   b = v(v-1)/f, r = k(v-1)/f, lambda = k(k-1)/f.
/// Generators: union of k/f cycles of x -> z + a(x-z), including the cycle
/// through 0, where a has multiplicative order f.
[[nodiscard]] BlockDesign make_theorem5_design(std::uint32_t v,
                                               std::uint32_t k);

/// Expected parameters of the Theorem 5 design.
[[nodiscard]] DesignParams theorem5_params(std::uint32_t v, std::uint32_t k);

/// The generator sets used by the two constructions (exposed for tests and
/// for building the un-reduced RingDesign when the (x, y) indexing is
/// needed).  g_0 = 0 in both.
[[nodiscard]] std::vector<Elem> theorem4_generators(std::uint32_t v,
                                                    std::uint32_t k);
[[nodiscard]] std::vector<Elem> theorem5_generators(std::uint32_t v,
                                                    std::uint32_t k);

}  // namespace pdl::design
