#include "design/ring_design.hpp"

#include <algorithm>
#include <stdexcept>

#include "algebra/numtheory.hpp"

namespace pdl::design {

using algebra::Ring;

std::vector<Elem> ring_design_tuple(const Ring& ring,
                                    std::span<const Elem> generators, Elem x,
                                    Elem y) {
  if (y == ring.zero())
    throw std::invalid_argument("ring_design_tuple: y must be nonzero");
  std::vector<Elem> tuple;
  tuple.reserve(generators.size());
  const Elem g0 = generators[0];
  for (const Elem gi : generators) {
    tuple.push_back(ring.add(x, ring.mul(y, ring.sub(gi, g0))));
  }
  return tuple;
}

RingDesign make_ring_design(std::shared_ptr<const Ring> ring,
                            std::vector<Elem> generators) {
  if (!ring) throw std::invalid_argument("make_ring_design: null ring");
  if (generators.size() < 2)
    throw std::invalid_argument("make_ring_design: need at least 2 generators");
  if (generators.size() > ring->order())
    throw std::invalid_argument("make_ring_design: more generators than elements");
  if (!algebra::is_generator_set(*ring, generators))
    throw std::invalid_argument(
        "make_ring_design: some pairwise generator difference is not a unit");

  const Elem v = ring->order();
  const auto k = static_cast<std::uint32_t>(generators.size());

  RingDesign rd;
  rd.ring = ring;
  rd.generators = generators;
  rd.design.v = v;
  rd.design.k = k;
  rd.design.blocks.reserve(static_cast<std::size_t>(v) * (v - 1));

  // Precompute the offsets y*(g_i - g_0) once per y, then emit blocks in
  // canonical x-major order.
  const Elem g0 = generators[0];
  std::vector<std::vector<Elem>> offsets_by_y(v);
  for (Elem y = 1; y < v; ++y) {
    auto& off = offsets_by_y[y];
    off.resize(k);
    for (std::uint32_t i = 0; i < k; ++i) {
      off[i] = ring->mul(y, ring->sub(generators[i], g0));
    }
  }
  for (Elem x = 0; x < v; ++x) {
    for (Elem y = 1; y < v; ++y) {
      std::vector<Elem> tuple(k);
      const auto& off = offsets_by_y[y];
      for (std::uint32_t i = 0; i < k; ++i) tuple[i] = ring->add(x, off[i]);
      rd.design.blocks.push_back(std::move(tuple));
    }
  }
  return rd;
}

bool ring_design_exists(std::uint64_t v, std::uint64_t k) {
  if (v < 2 || k < 2 || k > v) return false;
  return k <= algebra::min_prime_power_factor(v);
}

RingDesign make_ring_design(std::uint32_t v, std::uint32_t k) {
  if (!ring_design_exists(v, k))
    throw std::invalid_argument(
        "make_ring_design: no ring-based design for v=" + std::to_string(v) +
        ", k=" + std::to_string(k) + " (Theorem 2 requires k <= M(v))");
  auto [ring, gens] = algebra::make_ring_with_generators(v);
  gens.resize(k);
  return make_ring_design(std::move(ring), std::move(gens));
}

DesignParams ring_design_params(std::uint32_t v, std::uint32_t k) {
  DesignParams params;
  params.v = v;
  params.k = k;
  params.b = static_cast<std::uint64_t>(v) * (v - 1);
  params.r = static_cast<std::uint64_t>(k) * (v - 1);
  params.lambda = static_cast<std::uint64_t>(k) * (k - 1);
  return params;
}

}  // namespace pdl::design
