#pragma once
// Ring-based block designs (Section 2.1, Theorems 1 and 2).
//
// Given a finite commutative ring R with unit and generators g_0..g_{k-1}
// whose pairwise differences are units, the design's tuples are
//     T(x, y) = { x + y*(g_i - g_0) : i = 0..k-1 }
// over all pairs (x, y) with y != 0.  Theorem 1: this is a BIBD with
// b = v(v-1), r = k(v-1), lambda = k(k-1).

#include <memory>

#include "algebra/product_ring.hpp"
#include "algebra/ring.hpp"
#include "design/bibd.hpp"

namespace pdl::design {

/// A ring-based block design, retaining the (x, y) block indexing that the
/// layout constructions of Section 3 rely on.
///
/// Blocks are stored in canonical order: block_index(x, y) = x*(v-1)+(y-1).
/// Within block (x, y), position i holds the "g_i-th element" x + y(g_i-g_0);
/// in particular position 0 holds x itself (the ring-based layout places the
/// stripe's parity unit on disk x).
struct RingDesign {
  std::shared_ptr<const algebra::Ring> ring;
  std::vector<Elem> generators;  ///< the k generators used
  BlockDesign design;

  [[nodiscard]] std::uint32_t v() const noexcept { return design.v; }
  [[nodiscard]] std::uint32_t k() const noexcept { return design.k; }

  /// Index of block (x, y), y != 0.
  [[nodiscard]] std::size_t block_index(Elem x, Elem y) const {
    return static_cast<std::size_t>(x) * (v() - 1) + (y - 1);
  }
  /// x coordinate of the block at the given index.
  [[nodiscard]] Elem block_x(std::size_t index) const {
    return static_cast<Elem>(index / (v() - 1));
  }
  /// y coordinate (always nonzero) of the block at the given index.
  [[nodiscard]] Elem block_y(std::size_t index) const {
    return static_cast<Elem>(index % (v() - 1)) + 1;
  }
};

/// The tuple T(x, y) for explicit ring and generators, in generator order.
[[nodiscard]] std::vector<Elem> ring_design_tuple(
    const algebra::Ring& ring, std::span<const Elem> generators, Elem x,
    Elem y);

/// Theorem 1 construction over an explicit ring and generator set.
/// Throws std::invalid_argument if the generators are invalid (fewer than 2,
/// duplicates, or some pairwise difference not a unit).
[[nodiscard]] RingDesign make_ring_design(
    std::shared_ptr<const algebra::Ring> ring, std::vector<Elem> generators);

/// Theorem 2 feasibility: a ring-based design for (v, k) exists iff
/// 2 <= k <= M(v).
[[nodiscard]] bool ring_design_exists(std::uint64_t v, std::uint64_t k);

/// Convenience: Theorem 1 over the canonical ring of order v (Lemma 3) with
/// the first k canonical generators.  Requires ring_design_exists(v, k).
[[nodiscard]] RingDesign make_ring_design(std::uint32_t v, std::uint32_t k);

/// Expected parameters of a Theorem 1 design: b = v(v-1), r = k(v-1),
/// lambda = k(k-1).
[[nodiscard]] DesignParams ring_design_params(std::uint32_t v,
                                              std::uint32_t k);

}  // namespace pdl::design
