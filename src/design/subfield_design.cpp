#include "design/subfield_design.hpp"

#include <algorithm>
#include <stdexcept>

#include "algebra/gf.hpp"
#include "algebra/numtheory.hpp"

namespace pdl::design {

bool subfield_design_exists(std::uint64_t v, std::uint64_t k) {
  if (k < 2 || v < k) return false;
  if (!algebra::is_prime_power(k)) return false;
  // v must be k^m for some m >= 1.
  std::uint64_t power = k;
  while (power < v) {
    if (power > v / k) return false;  // next multiply would overflow past v
    power *= k;
  }
  return power == v;
}

BlockDesign make_subfield_design(std::uint32_t v, std::uint32_t k) {
  if (!subfield_design_exists(v, k))
    throw std::invalid_argument(
        "make_subfield_design: requires k a prime power and v = k^m");
  auto field = algebra::get_field(v);
  const std::vector<Elem> G = field->subfield(k);

  // Equivalence classes of pairs (x, y) under (x, y) ~ (x + g_i y, g_j y):
  // keep (x, y) iff y is minimal in its multiplicative coset y*(G\{0}) and
  // x is minimal in its additive coset x + yG.  The emitted block is the
  // coset x + yG itself (generators are G with g_0 = 0).
  BlockDesign out;
  out.v = v;
  out.k = k;
  const auto expected_b =
      static_cast<std::uint64_t>(v) * (v - 1) /
      (static_cast<std::uint64_t>(k) * (k - 1));
  out.blocks.reserve(expected_b);

  std::vector<Elem> coset(k);
  for (Elem y = 1; y < v; ++y) {
    // Is y minimal in { g*y : g in G, g != 0 }?
    bool y_min = true;
    for (const Elem g : G) {
      if (g == 0) continue;
      if (field->mul(g, y) < y) {
        y_min = false;
        break;
      }
    }
    if (!y_min) continue;

    // Precompute the subspace yG.
    std::vector<Elem> yG(k);
    for (std::uint32_t i = 0; i < k; ++i) yG[i] = field->mul(y, G[i]);

    std::vector<bool> seen(v, false);
    for (Elem x = 0; x < v; ++x) {
      if (seen[x]) continue;  // x is in an already-emitted coset of yG
      for (std::uint32_t i = 0; i < k; ++i) {
        coset[i] = field->add(x, yG[i]);
        seen[coset[i]] = true;
      }
      std::sort(coset.begin(), coset.end());
      out.blocks.push_back(coset);
    }
  }
  if (out.b() != expected_b)
    throw std::logic_error("make_subfield_design: block count mismatch");
  return out;
}

DesignParams subfield_design_params(std::uint32_t v, std::uint32_t k) {
  DesignParams p;
  p.v = v;
  p.k = k;
  p.b = static_cast<std::uint64_t>(v) * (v - 1) /
        (static_cast<std::uint64_t>(k) * (k - 1));
  p.r = (static_cast<std::uint64_t>(v) - 1) / (k - 1);
  p.lambda = 1;
  return p;
}

}  // namespace pdl::design
