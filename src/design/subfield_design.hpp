#pragma once
// Subfield block designs (Section 2.2.2, Theorems 6 and 7).
//
// When k is a prime power and v is a power of k, taking the generators to be
// the unique subfield G of GF(v) of order k makes the Theorem-1 design carry
// a factor k(k-1) of redundancy; removing it yields a BIBD with
//   b = v(v-1)/(k(k-1)), r = (v-1)/(k-1), lambda = 1,
// which meets the Theorem 7 lower bound exactly (optimally small).
//
// The blocks of the reduced design are precisely the additive cosets x + yG
// of the (v-1)/(k-1) distinct G-subspaces yG.

#include "design/bibd.hpp"

namespace pdl::design {

/// True iff the Theorem 6 construction applies: k a prime power >= 2 and
/// v = k^m for some m >= 1.
[[nodiscard]] bool subfield_design_exists(std::uint64_t v, std::uint64_t k);

/// Theorem 6 construction.  Throws std::invalid_argument unless
/// subfield_design_exists(v, k).
[[nodiscard]] BlockDesign make_subfield_design(std::uint32_t v,
                                               std::uint32_t k);

/// Expected parameters: b = v(v-1)/(k(k-1)), r = (v-1)/(k-1), lambda = 1.
[[nodiscard]] DesignParams subfield_design_params(std::uint32_t v,
                                                  std::uint32_t k);

}  // namespace pdl::design
