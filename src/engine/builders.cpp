#include <string>

#include "design/catalog.hpp"
#include "engine/planner.hpp"
#include "layout/bibd_layout.hpp"
#include "layout/disk_removal.hpp"
#include "layout/feasibility.hpp"
#include "layout/metrics.hpp"
#include "layout/raid.hpp"
#include "layout/ring_layout.hpp"
#include "layout/stairway.hpp"

// The six built-in constructions as LayoutBuilders.  Each plan() is a
// closed form straight out of layout::summarize_feasibility; each build()
// materializes the corresponding construction.  This file is the single
// registration point for the engine: a new construction is one more class
// and one more line in register_default_builders().

namespace pdl::engine {

namespace {

using core::ArraySpec;
using core::BuildOptions;
using core::BuiltLayout;
using core::Construction;

BuiltLayout finish(layout::Layout layout, const LayoutPlan& plan) {
  auto metrics = layout::compute_metrics(layout);
  return {std::move(layout), plan.construction, plan.description,
          std::move(metrics)};
}

/// Feasibility summary shared across the builders of one planning pass.
/// rank_plans asks every builder about the same (v, k) back to back; a
/// one-entry thread-local memo keeps that a single summarize_feasibility
/// computation, like the pre-engine monolith.
const layout::FeasibilitySummary& shared_feasibility(std::uint32_t v,
                                                     std::uint32_t k) {
  thread_local layout::FeasibilitySummary cached{};
  // rank_plans validates 2 <= k <= v before consulting any builder, so the
  // feasibility domain check cannot fail here.
  if (cached.v != v || cached.k != k)
    cached = layout::summarize_feasibility(v, k).value();
  return cached;
}

LayoutPlan base_plan(const ArraySpec& spec, Construction construction,
                     std::uint64_t units_per_disk, bool perfect_parity,
                     BalanceClass balance, std::string description,
                     std::uint32_t base_q = 0) {
  LayoutPlan plan;
  plan.spec = spec;
  plan.construction = construction;
  plan.units_per_disk = units_per_disk;
  plan.perfect_parity = perfect_parity;
  plan.balance = balance;
  plan.base_q = base_q;
  plan.description = std::move(description);
  return plan;
}

/// k == v: classic RAID5 with v rotated-parity rows (perfect balance).
class Raid5Builder final : public LayoutBuilder {
 public:
  Construction construction() const noexcept override {
    return Construction::kRaid5;
  }
  std::string_view name() const noexcept override { return "raid5"; }

  std::optional<LayoutPlan> plan(const ArraySpec& spec,
                                 const BuildOptions&) const override {
    if (spec.stripe_size != spec.num_disks) return std::nullopt;
    return base_plan(spec, Construction::kRaid5, spec.num_disks, true,
                     BalanceClass::kPerfect,
                     "RAID5 rotated parity, v=" +
                         std::to_string(spec.num_disks));
  }

  BuiltLayout build(const LayoutPlan& plan) const override {
    return finish(
        layout::raid5_layout(plan.spec.num_disks, plan.spec.num_disks),
        plan);
  }
};

/// Section 3.1 single-copy ring layout: size k(v-1), perfect balance.
class RingLayoutBuilder final : public LayoutBuilder {
 public:
  Construction construction() const noexcept override {
    return Construction::kRingLayout;
  }
  std::string_view name() const noexcept override { return "ring-layout"; }

  std::optional<LayoutPlan> plan(const ArraySpec& spec,
                                 const BuildOptions&) const override {
    if (spec.stripe_size >= spec.num_disks) return std::nullopt;
    const auto& feas =
        shared_feasibility(spec.num_disks, spec.stripe_size);
    if (!feas.ring_layout) return std::nullopt;
    return base_plan(spec, Construction::kRingLayout, *feas.ring_layout,
                     true, BalanceClass::kPerfect,
                     "ring layout, size k(v-1)");
  }

  BuiltLayout build(const LayoutPlan& plan) const override {
    return finish(layout::ring_based_layout(plan.spec.num_disks,
                                            plan.spec.stripe_size),
                  plan);
  }
};

/// Catalog BIBD replicated to lcm(b,v)/b copies: perfect parity balance.
class BibdPerfectBuilder final : public LayoutBuilder {
 public:
  Construction construction() const noexcept override {
    return Construction::kBibdPerfect;
  }
  std::string_view name() const noexcept override { return "bibd-perfect"; }

  std::optional<LayoutPlan> plan(const ArraySpec& spec,
                                 const BuildOptions&) const override {
    if (spec.stripe_size >= spec.num_disks) return std::nullopt;
    const auto& feas =
        shared_feasibility(spec.num_disks, spec.stripe_size);
    if (!feas.bibd_perfect) return std::nullopt;
    return base_plan(spec, Construction::kBibdPerfect, *feas.bibd_perfect,
                     true, BalanceClass::kPerfect,
                     "BIBD with lcm(b,v)/b copies");
  }

  BuiltLayout build(const LayoutPlan& plan) const override {
    auto design = design::build_best_design(plan.spec.num_disks,
                                            plan.spec.stripe_size);
    return finish(layout::perfectly_balanced_layout(design), plan);
  }
};

/// Single-copy catalog BIBD with Section 4 flow-balanced parity: smallest
/// exact route, parity within one unit per disk.
class BibdFlowBuilder final : public LayoutBuilder {
 public:
  Construction construction() const noexcept override {
    return Construction::kBibdFlow;
  }
  std::string_view name() const noexcept override { return "bibd-flow"; }

  std::optional<LayoutPlan> plan(const ArraySpec& spec,
                                 const BuildOptions&) const override {
    if (spec.stripe_size >= spec.num_disks) return std::nullopt;
    const auto& feas =
        shared_feasibility(spec.num_disks, spec.stripe_size);
    if (!feas.bibd_flow) return std::nullopt;
    return base_plan(spec, Construction::kBibdFlow, *feas.bibd_flow, false,
                     BalanceClass::kNearPerfect,
                     "single-copy BIBD, flow-balanced parity");
  }

  BuiltLayout build(const LayoutPlan& plan) const override {
    auto design = design::build_best_design(plan.spec.num_disks,
                                            plan.spec.stripe_size);
    return finish(layout::flow_balanced_layout(design, 1), plan);
  }
};

/// Theorems 8/9: remove q - v disks from the ring layout for the closest
/// prime power q > v.  Thm 8 (q == v+1) keeps parity perfectly balanced.
class RemovalBuilder final : public LayoutBuilder {
 public:
  Construction construction() const noexcept override {
    return Construction::kRemoval;
  }
  std::string_view name() const noexcept override { return "removal"; }

  std::optional<LayoutPlan> plan(const ArraySpec& spec,
                                 const BuildOptions&) const override {
    if (spec.stripe_size >= spec.num_disks) return std::nullopt;
    const auto& feas =
        shared_feasibility(spec.num_disks, spec.stripe_size);
    if (!feas.removal) return std::nullopt;
    const bool perfect = feas.removal_q == spec.num_disks + 1;
    return base_plan(spec, Construction::kRemoval, *feas.removal, perfect,
                     BalanceClass::kApproximate,
                     "removal from q=" + std::to_string(feas.removal_q),
                     feas.removal_q);
  }

  BuiltLayout build(const LayoutPlan& plan) const override {
    return finish(layout::removal_layout(plan.base_q, plan.spec.stripe_size,
                                         plan.base_q - plan.spec.num_disks),
                  plan);
  }
};

/// Theorems 10-12: the stairway transformation from the best prime power
/// q < v.
class StairwayBuilder final : public LayoutBuilder {
 public:
  Construction construction() const noexcept override {
    return Construction::kStairway;
  }
  std::string_view name() const noexcept override { return "stairway"; }

  std::optional<LayoutPlan> plan(const ArraySpec& spec,
                                 const BuildOptions&) const override {
    if (spec.stripe_size >= spec.num_disks) return std::nullopt;
    const auto& feas =
        shared_feasibility(spec.num_disks, spec.stripe_size);
    if (!feas.stairway) return std::nullopt;
    return base_plan(spec, Construction::kStairway, *feas.stairway, false,
                     BalanceClass::kApproximate,
                     "stairway from q=" + std::to_string(feas.stairway_q),
                     feas.stairway_q);
  }

  BuiltLayout build(const LayoutPlan& plan) const override {
    return finish(layout::stairway_layout(plan.base_q, plan.spec.num_disks,
                                          plan.spec.stripe_size),
                  plan);
  }
};

}  // namespace

void register_default_builders(ConstructionPlanner& planner) {
  // Registration order is the ranking tie-breaker: perfect-balance routes
  // first, then the near-perfect flow route, then the approximate ones.
  planner.register_builder(std::make_unique<Raid5Builder>());
  planner.register_builder(std::make_unique<RingLayoutBuilder>());
  planner.register_builder(std::make_unique<BibdPerfectBuilder>());
  planner.register_builder(std::make_unique<BibdFlowBuilder>());
  planner.register_builder(std::make_unique<RemovalBuilder>());
  planner.register_builder(std::make_unique<StairwayBuilder>());
}

}  // namespace pdl::engine
