#include "engine/engine.hpp"

namespace pdl::engine {

Engine& Engine::global() {
  static Engine* engine = new Engine(ConstructionPlanner::default_planner());
  return *engine;
}

}  // namespace pdl::engine
