#pragma once
// The engine facade: planner registry + layout cache behind one object.
// This is the intended front door for applications -- examples, benches
// and the simulator all obtain layouts here -- while core::build_layout
// remains as a thin uncached compatibility shim over the same planner.
//
//   auto& engine = pdl::engine::Engine::global();
//   auto built = engine.build({.num_disks = 33, .stripe_size = 5});
//   pdl::layout::CompiledMapper mapper(built->layout);

#include <memory>

#include "engine/layout_cache.hpp"
#include "engine/planner.hpp"

namespace pdl::engine {

/// Facade combining a ConstructionPlanner with a LayoutCache.
class Engine {
 public:
  /// An engine over the given planner, which must outlive the engine.
  explicit Engine(const ConstructionPlanner& planner =
                      ConstructionPlanner::default_planner())
      : planner_(planner), cache_(planner) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] const ConstructionPlanner& planner() const noexcept {
    return planner_;
  }
  [[nodiscard]] LayoutCache& cache() noexcept { return cache_; }

  /// The (cached) best layout for the spec, or nullptr if no construction
  /// fits the options.
  [[nodiscard]] std::shared_ptr<const core::BuiltLayout> build(
      const core::ArraySpec& spec, const core::BuildOptions& options = {}) {
    return cache_.get(spec, options);
  }

  /// The (cached) best layout for the spec with a balanced distributed-
  /// sparing overlay (layout::add_distributed_sparing), or nullptr.  The
  /// base layout derivation is shared with build(); fault-scenario sweeps
  /// reuse one immutable SparedLayout across runs.
  [[nodiscard]] std::shared_ptr<const layout::SparedLayout> build_spared(
      const core::ArraySpec& spec, const core::BuildOptions& options = {}) {
    return cache_.get_spared(spec, options);
  }

  /// Candidate plans for a spec, ranked best-first (uncached; planning is
  /// closed-form and cheap).
  [[nodiscard]] std::vector<LayoutPlan> rank_plans(
      const core::ArraySpec& spec,
      const core::BuildOptions& options = {}) const {
    return planner_.rank_plans(spec, options);
  }

  /// The process-wide engine over the default planner.
  [[nodiscard]] static Engine& global();

 private:
  const ConstructionPlanner& planner_;
  LayoutCache cache_;
};

}  // namespace pdl::engine
