#pragma once
// The engine facade: planner registry + layout cache behind one object.
// Applications should normally go one level higher still -- pdl::api::Array
// (src/api/array.hpp) wraps an engine build together with a compiled
// mapper and the online failure/rebuild state machine.  Reach for the
// engine directly when you need plans or raw BuiltLayouts:
//
//   auto& engine = pdl::engine::Engine::global();
//   auto built = engine.build({.num_disks = 33, .stripe_size = 5});
//   if (built.ok()) { ... (*built)->layout ... }
//
// Engine::build/build_spared return pdl::Result; the nullptr-returning
// forms survive as deprecated *_or_null shims for one release.

#include <memory>

#include "core/status.hpp"
#include "engine/layout_cache.hpp"
#include "engine/planner.hpp"

namespace pdl::engine {

/// Facade combining a ConstructionPlanner with a LayoutCache.
class Engine {
 public:
  /// An engine over the given planner, which must outlive the engine.
  explicit Engine(const ConstructionPlanner& planner =
                      ConstructionPlanner::default_planner())
      : planner_(planner), cache_(planner) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] const ConstructionPlanner& planner() const noexcept {
    return planner_;
  }
  [[nodiscard]] LayoutCache& cache() noexcept { return cache_; }

  /// The (cached) best layout for the spec.  kInvalidArgument for
  /// malformed specs, kUnsupported when no construction fits the options.
  [[nodiscard]] Result<std::shared_ptr<const core::BuiltLayout>> build(
      const core::ArraySpec& spec, const core::BuildOptions& options = {}) {
    return cache_.get(spec, options);
  }

  /// The (cached) best layout for the spec with a balanced distributed-
  /// sparing overlay (layout::add_distributed_sparing).  The base layout
  /// derivation is shared with build(); fault-scenario sweeps reuse one
  /// immutable SparedLayout across runs.  Same error contract as build().
  [[nodiscard]] Result<std::shared_ptr<const layout::SparedLayout>>
  build_spared(const core::ArraySpec& spec,
               const core::BuildOptions& options = {}) {
    return cache_.get_spared(spec, options);
  }

  /// Deprecated nullptr-returning forms of build()/build_spared():
  /// nullptr when no construction fits, std::invalid_argument for
  /// invalid specs.
  [[deprecated("use build(), which returns Result")]] [[nodiscard]]
  std::shared_ptr<const core::BuiltLayout> build_or_null(
      const core::ArraySpec& spec, const core::BuildOptions& options = {}) {
    return unwrap_or_null(build(spec, options));
  }
  [[deprecated("use build_spared(), which returns Result")]] [[nodiscard]]
  std::shared_ptr<const layout::SparedLayout> build_spared_or_null(
      const core::ArraySpec& spec, const core::BuildOptions& options = {}) {
    return unwrap_or_null(build_spared(spec, options));
  }

  /// Candidate plans for a spec, ranked best-first (uncached; planning is
  /// closed-form and cheap).
  [[nodiscard]] std::vector<LayoutPlan> rank_plans(
      const core::ArraySpec& spec,
      const core::BuildOptions& options = {}) const {
    return planner_.rank_plans(spec, options);
  }

  /// The process-wide engine over the default planner.
  [[nodiscard]] static Engine& global();

 private:
  template <typename T>
  [[nodiscard]] static std::shared_ptr<T> unwrap_or_null(
      Result<std::shared_ptr<T>> result) {
    if (result.ok()) return std::move(result).value();
    if (result.status().code() == StatusCode::kInvalidArgument)
      throw std::invalid_argument(result.status().message());
    return nullptr;
  }

  const ConstructionPlanner& planner_;
  LayoutCache cache_;
};

}  // namespace pdl::engine
