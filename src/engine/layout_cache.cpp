#include "engine/layout_cache.hpp"

namespace pdl::engine {

std::shared_ptr<const core::BuiltLayout> LayoutCache::get(
    const core::ArraySpec& spec, const core::BuildOptions& options) {
  return get_impl(spec, options, /*count_stats=*/true);
}

std::shared_ptr<const core::BuiltLayout> LayoutCache::get_impl(
    const core::ArraySpec& spec, const core::BuildOptions& options,
    bool count_stats) {
  const Key key{spec.num_disks, spec.stripe_size, options.unit_budget,
                options.require_perfect_parity, options.allow_approximate};
  {
    std::lock_guard lock(mutex_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      if (count_stats) ++hits_;
      return it->second;
    }
  }
  // Build outside the lock: derivations can take milliseconds and callers
  // on other keys should not serialize behind them.  A racing duplicate
  // build is harmless -- first insert wins and both callers share it.
  auto built = planner_.build_best(spec, options);
  std::shared_ptr<const core::BuiltLayout> entry;
  if (built)
    entry = std::make_shared<const core::BuiltLayout>(std::move(*built));

  std::lock_guard lock(mutex_);
  if (count_stats) ++misses_;
  const auto [it, inserted] = cache_.emplace(key, std::move(entry));
  return it->second;
}

std::shared_ptr<const layout::SparedLayout> LayoutCache::get_spared(
    const core::ArraySpec& spec, const core::BuildOptions& options) {
  const Key key{spec.num_disks, spec.stripe_size, options.unit_budget,
                options.require_perfect_parity, options.allow_approximate};
  {
    std::lock_guard lock(mutex_);
    if (const auto it = spared_cache_.find(key); it != spared_cache_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // The base layout comes through the same memo, so the derivation is
  // shared; the inner lookup is not counted (each public call records
  // exactly one hit or miss, against its own cache).
  const auto built = get_impl(spec, options, /*count_stats=*/false);
  std::shared_ptr<const layout::SparedLayout> entry;
  if (built)
    entry = std::make_shared<const layout::SparedLayout>(
        layout::add_distributed_sparing(built->layout));

  std::lock_guard lock(mutex_);
  ++misses_;
  const auto [it, inserted] = spared_cache_.emplace(key, std::move(entry));
  return it->second;
}

LayoutCache::Stats LayoutCache::stats() const {
  std::lock_guard lock(mutex_);
  return {hits_, misses_, cache_.size() + spared_cache_.size()};
}

void LayoutCache::clear() {
  std::lock_guard lock(mutex_);
  cache_.clear();
  spared_cache_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace pdl::engine
