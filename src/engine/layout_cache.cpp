#include "engine/layout_cache.hpp"

namespace pdl::engine {

std::shared_ptr<const core::BuiltLayout> LayoutCache::get(
    const core::ArraySpec& spec, const core::BuildOptions& options) {
  const Key key{spec.num_disks, spec.stripe_size, options.unit_budget,
                options.require_perfect_parity, options.allow_approximate};
  {
    std::lock_guard lock(mutex_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Build outside the lock: derivations can take milliseconds and callers
  // on other keys should not serialize behind them.  A racing duplicate
  // build is harmless -- first insert wins and both callers share it.
  auto built = planner_.build_best(spec, options);
  std::shared_ptr<const core::BuiltLayout> entry;
  if (built)
    entry = std::make_shared<const core::BuiltLayout>(std::move(*built));

  std::lock_guard lock(mutex_);
  ++misses_;
  const auto [it, inserted] = cache_.emplace(key, std::move(entry));
  return it->second;
}

LayoutCache::Stats LayoutCache::stats() const {
  std::lock_guard lock(mutex_);
  return {hits_, misses_, cache_.size()};
}

void LayoutCache::clear() {
  std::lock_guard lock(mutex_);
  cache_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace pdl::engine
