#include "engine/layout_cache.hpp"

#include <stdexcept>
#include <string>

namespace pdl::engine {

namespace {

[[nodiscard]] Status validate_spec(const core::ArraySpec& spec) {
  return layout::validate_vk(spec.num_disks, spec.stripe_size);
}

[[nodiscard]] Status no_fit(const core::ArraySpec& spec) {
  return Status::unsupported(
      "no construction fits v=" + std::to_string(spec.num_disks) +
      " k=" + std::to_string(spec.stripe_size) + " under the options");
}

}  // namespace

Result<std::shared_ptr<const core::BuiltLayout>> LayoutCache::get(
    const core::ArraySpec& spec, const core::BuildOptions& options) {
  if (Status domain = validate_spec(spec); !domain.ok()) return domain;
  auto entry = get_impl(spec, options, /*count_stats=*/true);
  if (!entry) return no_fit(spec);
  return entry;
}

std::shared_ptr<const core::BuiltLayout> LayoutCache::get_impl(
    const core::ArraySpec& spec, const core::BuildOptions& options,
    bool count_stats) {
  const Key key{spec.num_disks, spec.stripe_size, options.unit_budget,
                options.require_perfect_parity, options.allow_approximate};
  {
    std::lock_guard lock(mutex_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      if (count_stats) ++hits_;
      return it->second;
    }
  }
  // Build outside the lock: derivations can take milliseconds and callers
  // on other keys should not serialize behind them.  A racing duplicate
  // build is harmless -- first insert wins and both callers share it.
  auto built = planner_.build_best(spec, options);
  std::shared_ptr<const core::BuiltLayout> entry;
  if (built)
    entry = std::make_shared<const core::BuiltLayout>(std::move(*built));

  std::lock_guard lock(mutex_);
  if (count_stats) ++misses_;
  const auto [it, inserted] = cache_.emplace(key, std::move(entry));
  return it->second;
}

Result<std::shared_ptr<const layout::SparedLayout>> LayoutCache::get_spared(
    const core::ArraySpec& spec, const core::BuildOptions& options) {
  if (Status domain = validate_spec(spec); !domain.ok()) return domain;
  auto entry = get_spared_impl(spec, options);
  if (!entry) return no_fit(spec);
  return entry;
}

std::shared_ptr<const layout::SparedLayout> LayoutCache::get_spared_impl(
    const core::ArraySpec& spec, const core::BuildOptions& options) {
  const Key key{spec.num_disks, spec.stripe_size, options.unit_budget,
                options.require_perfect_parity, options.allow_approximate};
  {
    std::lock_guard lock(mutex_);
    if (const auto it = spared_cache_.find(key); it != spared_cache_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // The base layout comes through the same memo, so the derivation is
  // shared; the inner lookup is not counted (each public call records
  // exactly one hit or miss, against its own cache).
  const auto built = get_impl(spec, options, /*count_stats=*/false);
  std::shared_ptr<const layout::SparedLayout> entry;
  if (built)
    entry = std::make_shared<const layout::SparedLayout>(
        layout::add_distributed_sparing(built->layout));

  std::lock_guard lock(mutex_);
  ++misses_;
  const auto [it, inserted] = spared_cache_.emplace(key, std::move(entry));
  return it->second;
}

// Out-of-line definitions of the deprecated shims; the pragma silences the
// self-referential deprecation warning some compilers emit for them.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
std::shared_ptr<const core::BuiltLayout> LayoutCache::get_or_null(
    const core::ArraySpec& spec, const core::BuildOptions& options) {
  if (Status domain = validate_spec(spec); !domain.ok())
    throw std::invalid_argument("LayoutCache::get_or_null: " +
                                domain.message());
  return get_impl(spec, options, /*count_stats=*/true);
}

std::shared_ptr<const layout::SparedLayout> LayoutCache::get_spared_or_null(
    const core::ArraySpec& spec, const core::BuildOptions& options) {
  if (Status domain = validate_spec(spec); !domain.ok())
    throw std::invalid_argument("LayoutCache::get_spared_or_null: " +
                                domain.message());
  return get_spared_impl(spec, options);
}
#pragma GCC diagnostic pop

LayoutCache::Stats LayoutCache::stats() const {
  std::lock_guard lock(mutex_);
  return {hits_, misses_, cache_.size() + spared_cache_.size()};
}

void LayoutCache::clear() {
  std::lock_guard lock(mutex_);
  cache_.clear();
  spared_cache_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace pdl::engine
