#pragma once
// Memoization of built layouts.  Deriving a layout (catalog search, flow
// balancing, stairway assembly, metrics) is orders of magnitude more
// expensive than looking one up, and simulation / benchmark sweeps rebuild
// the same (v, k) points over and over.  The cache keys on the full
// (spec, options) tuple and hands out shared_ptr<const BuiltLayout> so
// concurrent users share one immutable instance.
//
// All lookups report failure through the typed pdl::Status model:
// kInvalidArgument for malformed specs (never cached) and kUnsupported
// when no construction fits the options (cached, so the planner is not
// re-consulted).

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/status.hpp"
#include "engine/planner.hpp"
#include "layout/sparing.hpp"

namespace pdl::engine {

/// Thread-safe memo of ConstructionPlanner::build_best results.  Negative
/// results (no construction fits) are cached too.
class LayoutCache {
 public:
  /// Caches builds from the given planner, which must outlive the cache.
  explicit LayoutCache(
      const ConstructionPlanner& planner =
          ConstructionPlanner::default_planner())
      : planner_(planner) {}

  LayoutCache(const LayoutCache&) = delete;
  LayoutCache& operator=(const LayoutCache&) = delete;

  /// The cached layout for (spec, options), building it on first use.
  /// kInvalidArgument for invalid specs (never cached); kUnsupported when
  /// no construction fits the options.
  [[nodiscard]] Result<std::shared_ptr<const core::BuiltLayout>> get(
      const core::ArraySpec& spec, const core::BuildOptions& options = {});

  /// The cached distributed-sparing overlay of get(spec, options):
  /// layout::add_distributed_sparing runs a network flow per call, and
  /// scenario sweeps replay the same spared layout across many
  /// (timeline, scheduler) combinations.  Shares the underlying Layout
  /// derivation with get() through the same planner.  Same error
  /// contract as get().
  [[nodiscard]] Result<std::shared_ptr<const layout::SparedLayout>>
  get_spared(const core::ArraySpec& spec,
             const core::BuildOptions& options = {});

  /// Deprecated nullptr-returning forms of get()/get_spared(): nullptr
  /// when no construction fits, std::invalid_argument for invalid specs.
  [[deprecated("use get(), which returns Result")]] [[nodiscard]]
  std::shared_ptr<const core::BuiltLayout> get_or_null(
      const core::ArraySpec& spec, const core::BuildOptions& options = {});
  [[deprecated("use get_spared(), which returns Result")]] [[nodiscard]]
  std::shared_ptr<const layout::SparedLayout> get_spared_or_null(
      const core::ArraySpec& spec, const core::BuildOptions& options = {});

  /// Each public get*/get_spared call counts as exactly one hit or miss
  /// against its own cache; entries spans both maps.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] Stats stats() const;

  void clear();

 private:
  [[nodiscard]] std::shared_ptr<const core::BuiltLayout> get_impl(
      const core::ArraySpec& spec, const core::BuildOptions& options,
      bool count_stats);
  [[nodiscard]] std::shared_ptr<const layout::SparedLayout> get_spared_impl(
      const core::ArraySpec& spec, const core::BuildOptions& options);

  struct Key {
    std::uint32_t v;
    std::uint32_t k;
    std::uint64_t unit_budget;
    bool require_perfect_parity;
    bool allow_approximate;

    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      std::uint64_t h = key.v;
      h = h * 0x9e3779b97f4a7c15ull + key.k;
      h = h * 0x9e3779b97f4a7c15ull + key.unit_budget;
      h = h * 0x9e3779b97f4a7c15ull +
          (static_cast<std::uint64_t>(key.require_perfect_parity) << 1 |
           static_cast<std::uint64_t>(key.allow_approximate));
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };

  const ConstructionPlanner& planner_;
  mutable std::mutex mutex_;
  std::unordered_map<Key, std::shared_ptr<const core::BuiltLayout>, KeyHash>
      cache_;
  std::unordered_map<Key, std::shared_ptr<const layout::SparedLayout>,
                     KeyHash>
      spared_cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace pdl::engine
