#include "engine/planner.hpp"

#include <algorithm>
#include <stdexcept>

namespace pdl::engine {

std::string_view balance_class_name(BalanceClass balance) {
  switch (balance) {
    case BalanceClass::kPerfect: return "perfect";
    case BalanceClass::kNearPerfect: return "near-perfect";
    case BalanceClass::kApproximate: return "approximate";
  }
  return "unknown";
}

void ConstructionPlanner::register_builder(
    std::unique_ptr<LayoutBuilder> builder) {
  if (!builder)
    throw std::invalid_argument("register_builder: null builder");
  if (find(builder->construction()) != nullptr)
    throw std::invalid_argument(
        "register_builder: construction already registered: " +
        core::construction_name(builder->construction()));
  builders_.push_back(std::move(builder));
}

const LayoutBuilder* ConstructionPlanner::find(
    core::Construction construction) const noexcept {
  for (const auto& b : builders_) {
    if (b->construction() == construction) return b.get();
  }
  return nullptr;
}

namespace {

void validate_spec(const core::ArraySpec& spec) {
  if (spec.num_disks < 2 || spec.stripe_size < 2 ||
      spec.stripe_size > spec.num_disks)
    throw std::invalid_argument("ConstructionPlanner: need 2 <= k <= v");
}

/// The options' generic policy filters; construction-agnostic.
bool admissible(const LayoutPlan& plan, const core::BuildOptions& options) {
  if (plan.units_per_disk > options.unit_budget) return false;
  if (options.require_perfect_parity && !plan.perfect_parity) return false;
  if (!options.allow_approximate &&
      plan.balance == BalanceClass::kApproximate)
    return false;
  return true;
}

}  // namespace

std::vector<LayoutPlan> ConstructionPlanner::rank_plans(
    const core::ArraySpec& spec, const core::BuildOptions& options) const {
  validate_spec(spec);
  std::vector<LayoutPlan> plans;
  plans.reserve(builders_.size());
  for (const auto& builder : builders_) {
    auto plan = builder->plan(spec, options);
    if (plan && admissible(*plan, options)) plans.push_back(std::move(*plan));
  }
  // Stable sort keeps registration order as the tie-breaker.
  std::stable_sort(plans.begin(), plans.end(),
                   [](const LayoutPlan& a, const LayoutPlan& b) {
                     if (a.balance != b.balance) return a.balance < b.balance;
                     return a.units_per_disk < b.units_per_disk;
                   });
  return plans;
}

std::optional<core::BuiltLayout> ConstructionPlanner::build_best(
    const core::ArraySpec& spec, const core::BuildOptions& options) const {
  const std::vector<LayoutPlan> plans = rank_plans(spec, options);
  std::exception_ptr first_failure;
  for (const LayoutPlan& plan : plans) {
    const LayoutBuilder* builder = find(plan.construction);
    try {
      return builder->build(plan);
    } catch (const std::exception&) {
      // A construction that planned but failed to build falls back to the
      // next-ranked plan; the failure is only swallowed if a fallback
      // succeeds.
      if (!first_failure) first_failure = std::current_exception();
      continue;
    }
  }
  // Every admissible plan failed to build: that is a builder bug, not a
  // "nothing fits the budget" condition -- surface it.
  if (first_failure) std::rethrow_exception(first_failure);
  return std::nullopt;
}

std::optional<core::BuiltLayout> ConstructionPlanner::build_with(
    core::Construction construction, const core::ArraySpec& spec,
    const core::BuildOptions& options) const {
  validate_spec(spec);
  const LayoutBuilder* builder = find(construction);
  if (builder == nullptr) return std::nullopt;
  auto plan = builder->plan(spec, options);
  if (!plan || !admissible(*plan, options)) return std::nullopt;
  return builder->build(*plan);
}

const ConstructionPlanner& ConstructionPlanner::default_planner() {
  static const ConstructionPlanner* planner = [] {
    auto* p = new ConstructionPlanner;
    register_default_builders(*p);
    return p;
  }();
  return *planner;
}

}  // namespace pdl::engine
