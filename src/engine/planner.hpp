#pragma once
// The pluggable layout-construction engine: the selection machinery behind
// core::build_layout.
//
// Each construction this library knows (RAID5, ring, the BIBD routes, disk
// removal, stairway) is wrapped in a self-describing LayoutBuilder with two
// halves: a cheap, closed-form plan() that predicts the layout it would
// produce for a spec (size, balance class, provenance) without
// materializing anything, and a build() that materializes a plan into a
// BuiltLayout.  The ConstructionPlanner keeps a registry of builders, ranks
// every applicable plan by (balance class, predicted size, registration
// order), builds the best one, and falls back down the ranking if a build
// fails.  Adding a construction means writing one LayoutBuilder and
// registering it in register_default_builders() -- the selection loop never
// changes.

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/declustered_array.hpp"

namespace pdl::engine {

/// Balance guarantees a plan offers, strongest first.  Ranked before size:
/// a perfectly balanced route beats a smaller approximate one, matching the
/// paper's preference for exact constructions when they fit Condition 4.
enum class BalanceClass : std::uint8_t {
  kPerfect = 0,      ///< parity and reconstruction load perfectly even
  kNearPerfect = 1,  ///< parity within one unit per disk (Corollary 16)
  kApproximate = 2,  ///< Section 3 interval bounds only
};

[[nodiscard]] std::string_view balance_class_name(BalanceClass balance);

/// What a builder predicts it would produce for a spec, before building.
/// The predictions are exact closed forms; tests hold every builder to
/// plan().units_per_disk == metrics of the built layout.
struct LayoutPlan {
  core::ArraySpec spec;
  core::Construction construction{};
  std::uint64_t units_per_disk = 0;  ///< predicted layout size s
  bool perfect_parity = false;       ///< predicted Condition 2 exactness
  BalanceClass balance = BalanceClass::kApproximate;
  std::uint32_t base_q = 0;  ///< base prime power (removal/stairway), else 0
  std::string description;   ///< human-readable provenance

  /// Condition 4 cost: lookup-table rows = v * s.
  [[nodiscard]] std::uint64_t table_entries() const noexcept {
    return static_cast<std::uint64_t>(spec.num_disks) * units_per_disk;
  }
};

/// One construction, self-describing.  plan() must be cheap (closed-form,
/// no layout materialized); build() may be expensive and may throw, in
/// which case the planner falls back to the next-ranked plan.
class LayoutBuilder {
 public:
  virtual ~LayoutBuilder() = default;

  [[nodiscard]] virtual core::Construction construction() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// The plan for this spec, or nullopt when the construction does not
  /// apply at (v, k).  Budget and policy filtering is the planner's job;
  /// builders only describe what they can build.
  [[nodiscard]] virtual std::optional<LayoutPlan> plan(
      const core::ArraySpec& spec,
      const core::BuildOptions& options) const = 0;

  /// Materializes a plan previously produced by this builder's plan().
  [[nodiscard]] virtual core::BuiltLayout build(
      const LayoutPlan& plan) const = 0;
};

/// The registry + selection loop.  Builders are ranked generically; no
/// construction-specific branching lives here.
class ConstructionPlanner {
 public:
  ConstructionPlanner() = default;
  ConstructionPlanner(const ConstructionPlanner&) = delete;
  ConstructionPlanner& operator=(const ConstructionPlanner&) = delete;

  /// Registers a builder.  Registration order is the final tie-breaker in
  /// ranking, so register stronger defaults first.
  void register_builder(std::unique_ptr<LayoutBuilder> builder);

  [[nodiscard]] std::size_t num_builders() const noexcept {
    return builders_.size();
  }
  [[nodiscard]] const std::vector<std::unique_ptr<LayoutBuilder>>& builders()
      const noexcept {
    return builders_;
  }

  /// The registered builder for a construction, or nullptr.
  [[nodiscard]] const LayoutBuilder* find(
      core::Construction construction) const noexcept;

  /// Plans of every applicable registered builder that survives the
  /// options' policy filters (unit budget, perfect-parity requirement,
  /// approximate permission), ranked best-first.  Throws
  /// std::invalid_argument unless 2 <= k <= v.
  [[nodiscard]] std::vector<LayoutPlan> rank_plans(
      const core::ArraySpec& spec, const core::BuildOptions& options) const;

  /// Ranks plans and builds the best; if a build throws, falls back to the
  /// next-ranked plan.  nullopt when no plan survives (or all builds fail).
  [[nodiscard]] std::optional<core::BuiltLayout> build_best(
      const core::ArraySpec& spec,
      const core::BuildOptions& options = {}) const;

  /// Builds through one specific construction, bypassing ranking (the
  /// policy filters still apply).  nullopt when it does not apply.
  [[nodiscard]] std::optional<core::BuiltLayout> build_with(
      core::Construction construction, const core::ArraySpec& spec,
      const core::BuildOptions& options = {}) const;

  /// The process-wide planner preloaded with the six built-in
  /// constructions.  Built once, never mutated afterwards.
  [[nodiscard]] static const ConstructionPlanner& default_planner();

 private:
  std::vector<std::unique_ptr<LayoutBuilder>> builders_;
};

/// Registers the six built-in constructions (kRaid5, kRingLayout,
/// kBibdPerfect, kBibdFlow, kRemoval, kStairway) in ranking-friendly
/// order.  New constructions join the engine here.
void register_default_builders(ConstructionPlanner& planner);

}  // namespace pdl::engine
