#include "fleet/fleet.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_set>

namespace pdl::fleet {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

[[nodiscard]] std::uint64_t fnv1a(std::uint64_t h,
                                  std::span<const std::uint8_t> bytes)
    noexcept {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

/// Byte-accurate reader over serialize() text: line-oriented headers
/// with length-framed array payloads in between (getline would eat the
/// framing).
struct Cursor {
  const std::string& text;
  std::size_t pos = 0;

  [[nodiscard]] bool line(std::string& out) {
    if (pos >= text.size()) return false;
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      out = text.substr(pos);
      pos = text.size();
    } else {
      out = text.substr(pos, nl - pos);
      pos = nl + 1;
    }
    return true;
  }

  [[nodiscard]] bool bytes(std::size_t n, std::string& out) {
    if (pos + n > text.size()) return false;
    out = text.substr(pos, n);
    pos += n;
    if (pos < text.size() && text[pos] == '\n') ++pos;  // frame separator
    return true;
  }
};

}  // namespace

Result<Fleet> Fleet::create(std::vector<ShardSpec> shards,
                            FleetOptions options) {
  if (shards.empty())
    return Status::invalid_argument("a fleet needs at least one shard");
  if (options.block_bytes == 0)
    return Status::invalid_argument("block_bytes must be > 0");
  if (options.migration_chunk_blocks == 0)
    return Status::invalid_argument("migration_chunk_blocks must be > 0");
  auto governor = RebuildGovernor::create(options.governor);
  if (!governor.ok()) return governor.status();

  Fleet fleet;
  fleet.block_bytes_ = options.block_bytes;
  fleet.chunk_blocks_ = options.migration_chunk_blocks;
  fleet.governor_ =
      std::make_unique<RebuildGovernor>(std::move(governor).value());
  fleet.sync_ = std::make_unique<Sync>();

  std::uint64_t next_block = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    ShardSpec& spec = shards[i];
    auto store = io::StripeStore::create(
        std::move(spec.array),
        io::StripeStoreOptions{.unit_bytes = options.block_bytes,
                               .iterations = spec.iterations,
                               .lock_shards = spec.lock_shards,
                               .cache = spec.cache},
        std::move(spec.backend));
    if (!store.ok()) return store.status();
    const std::uint64_t capacity = store.value().num_logical_units();
    if (capacity == 0)
      return Status::invalid_argument("shard " + std::to_string(i) +
                                      " has zero capacity");
    fleet.stores_.push_back(
        std::make_unique<io::StripeStore>(std::move(store).value()));
    fleet.shard_alloc_.push_back(capacity);
    fleet.extents_.push_back(Extent{.first = next_block,
                                    .count = capacity,
                                    .shard = static_cast<std::uint32_t>(i),
                                    .base = 0});
    next_block += capacity;
  }
  fleet.num_blocks_ = next_block;
  fleet.compile_router();
  return fleet;
}

void Fleet::compile_router() {
  // Size the bucket table so block >> shift_ lands in <= 4096 entries;
  // each bucket names the extent containing its first block and lookup
  // walks forward across at most the extents sharing the bucket.
  shift_ = 0;
  while (((num_blocks_ - 1) >> shift_) >= 4096) ++shift_;
  const std::uint64_t buckets = ((num_blocks_ - 1) >> shift_) + 1;
  bucket_.assign(static_cast<std::size_t>(buckets), 0);
  std::uint32_t e = 0;
  for (std::uint64_t i = 0; i < buckets; ++i) {
    const std::uint64_t block = i << shift_;
    while (extents_[e].first + extents_[e].count <= block) ++e;
    bucket_[static_cast<std::size_t>(i)] = e;
  }
}

Route Fleet::route_locked(std::uint64_t block) const noexcept {
  std::uint32_t e = bucket_[static_cast<std::size_t>(block >> shift_)];
  while (block >= extents_[e].first + extents_[e].count) ++e;
  const Extent& ext = extents_[e];
  return Route{.shard = ext.shard, .unit = ext.base + (block - ext.first)};
}

Result<Route> Fleet::route_of(std::uint64_t block) const {
  std::shared_lock<std::shared_mutex> lock(sync_->map);
  if (block >= num_blocks_)
    return Status::out_of_range("block " + std::to_string(block) +
                                " >= " + std::to_string(num_blocks_));
  return route_locked(block);
}

std::vector<Extent> Fleet::extents() const {
  std::shared_lock<std::shared_mutex> lock(sync_->map);
  return extents_;
}

bool Fleet::any_async() const {
  std::shared_lock<std::shared_mutex> lock(sync_->map);
  for (const auto& store : stores_)
    if (store->backend().async()) return true;
  return false;
}

Status Fleet::read(std::uint64_t block, std::span<std::uint8_t> out,
                   io::ReadReceipt* receipt) {
  if (out.size() != block_bytes_)
    return Status::invalid_argument("read buffer must be block_bytes wide");
  std::shared_lock<std::shared_mutex> lock(sync_->map);
  if (block >= num_blocks_)
    return Status::out_of_range("block " + std::to_string(block) +
                                " >= " + std::to_string(num_blocks_));
  governor_->note_foreground(block_bytes_);
  const Route r = route_locked(block);
  return stores_[r.shard]->read(r.unit, out, receipt);
}

Status Fleet::read_batch(std::span<const std::uint64_t> blocks,
                         std::span<std::uint8_t> out,
                         std::span<Status> statuses,
                         std::span<io::ReadReceipt> receipts) {
  if (out.size() != blocks.size() * static_cast<std::size_t>(block_bytes_))
    return Status::invalid_argument(
        "read_batch buffer must be blocks.size() x block_bytes wide");
  if (statuses.size() != blocks.size())
    return Status::invalid_argument("statuses must match blocks.size()");
  if (!receipts.empty() && receipts.size() != blocks.size())
    return Status::invalid_argument(
        "receipts must be empty or match blocks.size()");
  if (blocks.empty()) return OkStatus();

  std::shared_lock<std::shared_mutex> lock(sync_->map);
  governor_->note_foreground(blocks.size() *
                             static_cast<std::uint64_t>(block_bytes_));

  // Group the batch per shard so each shard store sees ONE batched
  // submission (async backends get their full fan-out at once), then
  // scatter the staged slices back into the caller's order.
  struct ShardBatch {
    std::vector<std::uint64_t> units;
    std::vector<std::size_t> origin;  ///< caller index of each unit
  };
  std::vector<ShardBatch> per_shard(stores_.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i] >= num_blocks_) {
      statuses[i] = Status::out_of_range(
          "block " + std::to_string(blocks[i]) + " >= " +
          std::to_string(num_blocks_));
      continue;
    }
    const Route r = route_locked(blocks[i]);
    per_shard[r.shard].units.push_back(r.unit);
    per_shard[r.shard].origin.push_back(i);
  }

  std::vector<std::uint8_t> staging;
  std::vector<Status> shard_statuses;
  std::vector<io::ReadReceipt> shard_receipts;
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    ShardBatch& batch = per_shard[s];
    if (batch.units.empty()) continue;
    staging.resize(batch.units.size() * block_bytes_);
    shard_statuses.assign(batch.units.size(), OkStatus());
    std::span<io::ReadReceipt> receipt_span = {};
    if (!receipts.empty()) {
      shard_receipts.assign(batch.units.size(), io::ReadReceipt{});
      receipt_span = shard_receipts;
    }
    // The overall status is recomputed from per-block statuses below.
    (void)stores_[s]->read_batch(batch.units, staging, shard_statuses,
                                 receipt_span);
    for (std::size_t j = 0; j < batch.units.size(); ++j) {
      const std::size_t i = batch.origin[j];
      statuses[i] = shard_statuses[j];
      if (shard_statuses[j].ok())
        std::memcpy(out.data() + i * block_bytes_,
                    staging.data() + j * block_bytes_, block_bytes_);
      if (!receipts.empty()) receipts[i] = shard_receipts[j];
    }
  }

  for (const Status& s : statuses)
    if (!s.ok()) return s;
  return OkStatus();
}

Status Fleet::write(std::uint64_t block, std::span<const std::uint8_t> data,
                    io::WriteReceipt* receipt) {
  if (data.size() != block_bytes_)
    return Status::invalid_argument("write buffer must be block_bytes wide");
  std::shared_lock<std::shared_mutex> lock(sync_->map);
  if (block >= num_blocks_)
    return Status::out_of_range("block " + std::to_string(block) +
                                " >= " + std::to_string(num_blocks_));
  governor_->note_foreground(block_bytes_);
  const Route r = route_locked(block);
  const Status status = stores_[r.shard]->write(r.unit, data, receipt);
  // Writes inside a migrating range land on the authoritative source
  // (routing is untouched until cutover) and invalidate their chunk so
  // the migrator re-copies it.  Marked even on failure: a torn write
  // may still have moved bytes, and a spurious re-copy is harmless.
  if (migration_ && block >= migration_->first &&
      block < migration_->first + migration_->count) {
    Migration& m = *migration_;
    auto& state = m.chunk_state[(block - m.first) / m.chunk_blocks];
    std::uint8_t observed = state.load(std::memory_order_acquire);
    while ((observed == kClean || observed == kCopying) &&
           !state.compare_exchange_weak(observed, kDirty,
                                        std::memory_order_acq_rel)) {
    }
  }
  return status;
}

Status Fleet::sync() {
  std::shared_lock<std::shared_mutex> lock(sync_->map);
  for (auto& store : stores_) {
    const Status s = store->sync();
    if (!s.ok()) return s;
  }
  return OkStatus();
}

Status Fleet::fail_disk(std::uint32_t shard, DiskId disk) {
  std::shared_lock<std::shared_mutex> lock(sync_->map);
  if (shard >= stores_.size())
    return Status::invalid_argument("no shard " + std::to_string(shard));
  return stores_[shard]->fail_disk(disk);
}

Status Fleet::replace_disk(std::uint32_t shard, DiskId disk) {
  std::shared_lock<std::shared_mutex> lock(sync_->map);
  if (shard >= stores_.size())
    return Status::invalid_argument("no shard " + std::to_string(shard));
  return stores_[shard]->replace_disk(disk);
}

Result<std::uint64_t> Fleet::rebuild_some(std::uint32_t shard,
                                          std::uint64_t max_steps,
                                          std::uint64_t* blocked) {
  std::uint64_t estimate = 0;
  {
    std::shared_lock<std::shared_mutex> lock(sync_->map);
    if (shard >= stores_.size())
      return Status::invalid_argument("no shard " + std::to_string(shard));
    // One repaired stripe rewrites ~one unit per layout iteration; the
    // reservation is an upper-bound estimate in rebuilt bytes and the
    // unused remainder is refunded after the pass.
    estimate = max_steps * stores_[shard]->iterations() * block_bytes_;
  }
  // Reserve OUTSIDE the map lock: acquire() may block for a long time
  // under a throttling policy, and the data path must keep flowing.
  governor_->acquire(shard, estimate);

  std::shared_lock<std::shared_mutex> lock(sync_->map);
  if (shard >= stores_.size()) {
    governor_->refund(shard, estimate);
    return Status::invalid_argument("no shard " + std::to_string(shard));
  }
  auto repaired = stores_[shard]->rebuild_some(max_steps, blocked);
  const std::uint64_t used =
      repaired.ok()
          ? repaired.value() * stores_[shard]->iterations() * block_bytes_
          : 0;
  if (used < estimate) governor_->refund(shard, estimate - used);
  return repaired;
}

Result<api::RebuildOutcome> Fleet::rebuild(std::uint32_t shard) {
  // Small governed passes so the governor's pacing decisions are
  // fine-grained (one huge reservation would defeat the policy).
  constexpr std::uint64_t kPassSteps = 16;
  api::RebuildOutcome outcome;
  for (;;) {
    std::uint64_t blocked = 0;
    auto repaired = rebuild_some(shard, kPassSteps, &blocked);
    if (!repaired.ok()) return repaired.status();
    outcome.applied += repaired.value();
    outcome.blocked = blocked;
    if (repaired.value() == 0) return outcome;
  }
}

Result<api::RebuildOutcome> Fleet::rebuild_all() {
  api::RebuildOutcome total;
  for (std::uint32_t s = 0; s < num_shards(); ++s) {
    auto outcome = rebuild(s);
    if (!outcome.ok()) return outcome.status();
    total.applied += outcome.value().applied;
    total.blocked += outcome.value().blocked;
  }
  return total;
}

Result<io::ScrubReport> Fleet::scrub_some(std::uint32_t shard,
                                          std::uint64_t max_instances,
                                          std::uint64_t* blocked) {
  std::uint64_t estimate = 0;
  {
    std::shared_lock<std::shared_mutex> lock(sync_->map);
    if (shard >= stores_.size())
      return Status::invalid_argument("no shard " + std::to_string(shard));
    if (!stores_[shard]->integrity()) return io::ScrubReport{};
    // A scrub instance reads every unit of one stripe; the reservation
    // is that read footprint (heal writes are the rare case), with the
    // unused remainder refunded after the pass.
    estimate = max_instances * stores_[shard]->array().max_stripe_size() *
               block_bytes_;
  }
  // Reserve OUTSIDE the map lock, like rebuild_some: acquire() may
  // block a long time under a throttling policy.
  const std::uint64_t waited =
      governor_->acquire(shard, estimate, io::IoClass::kScrub);
  if (blocked) *blocked = waited;

  std::shared_lock<std::shared_mutex> lock(sync_->map);
  if (shard >= stores_.size()) {
    governor_->refund(shard, estimate);
    return Status::invalid_argument("no shard " + std::to_string(shard));
  }
  auto report = stores_[shard]->scrub_some(max_instances);
  const std::uint64_t used =
      report.ok() ? report.value().instances *
                        stores_[shard]->array().max_stripe_size() *
                        block_bytes_
                  : 0;
  if (used < estimate) governor_->refund(shard, estimate - used);
  return report;
}

Result<io::ScrubReport> Fleet::scrub_all() {
  // Small governed passes, like rebuild(): one huge reservation would
  // defeat the pacing policy.
  constexpr std::uint64_t kPassInstances = 16;
  io::ScrubReport total;
  for (std::uint32_t s = 0; s < num_shards(); ++s) {
    std::uint64_t remaining = 0;
    {
      std::shared_lock<std::shared_mutex> lock(sync_->map);
      if (stores_[s]->integrity())
        remaining =
            static_cast<std::uint64_t>(stores_[s]->array().num_stripes()) *
            stores_[s]->iterations();
    }
    while (remaining > 0) {
      const std::uint64_t batch = std::min(remaining, kPassInstances);
      auto report = scrub_some(s, batch);
      if (!report.ok()) return report.status();
      total.instances += report.value().instances;
      total.mismatches += report.value().mismatches;
      total.healed += report.value().healed;
      total.unhealable += report.value().unhealable;
      total.skipped += report.value().skipped;
      remaining -= batch;
    }
  }
  return total;
}

bool Fleet::healthy() const {
  std::shared_lock<std::shared_mutex> lock(sync_->map);
  for (const auto& store : stores_)
    if (!store->array().healthy()) return false;
  return true;
}

Result<io::HotnessStats> Fleet::shard_hotness(std::uint32_t shard) const {
  std::shared_lock<std::shared_mutex> lock(sync_->map);
  if (shard >= stores_.size())
    return Status::out_of_range("shard " + std::to_string(shard) +
                                " past the fleet's " +
                                std::to_string(stores_.size()) + " shards");
  return stores_[shard]->hotness_stats();
}

std::vector<io::HotnessStats> Fleet::hotness_report() const {
  std::shared_lock<std::shared_mutex> lock(sync_->map);
  std::vector<io::HotnessStats> report;
  report.reserve(stores_.size());
  for (const auto& store : stores_) report.push_back(store->hotness_stats());
  return report;
}

Result<std::uint32_t> Fleet::attach_shard(ShardSpec spec) {
  auto store = io::StripeStore::create(
      std::move(spec.array),
      io::StripeStoreOptions{.unit_bytes = block_bytes_,
                             .iterations = spec.iterations,
                             .lock_shards = spec.lock_shards,
                             .cache = spec.cache},
      std::move(spec.backend));
  if (!store.ok()) return store.status();
  if (store.value().num_logical_units() == 0)
    return Status::invalid_argument("attached shard has zero capacity");

  std::unique_lock<std::shared_mutex> lock(sync_->map);
  stores_.push_back(
      std::make_unique<io::StripeStore>(std::move(store).value()));
  shard_alloc_.push_back(0);  // no routed blocks yet: pure headroom
  return static_cast<std::uint32_t>(stores_.size() - 1);
}

Status Fleet::start_migration(std::uint64_t first_block,
                              std::uint64_t num_blocks,
                              std::uint32_t target_shard) {
  std::unique_lock<std::shared_mutex> lock(sync_->map);
  if (migration_)
    return Status::failed_precondition("a migration is already active");
  if (target_shard >= stores_.size())
    return Status::invalid_argument("no shard " +
                                    std::to_string(target_shard));
  if (num_blocks == 0)
    return Status::invalid_argument("cannot migrate zero blocks");
  if (first_block + num_blocks > num_blocks_ ||
      first_block + num_blocks < first_block)
    return Status::out_of_range("migration range exceeds the block space");
  const std::uint64_t free =
      stores_[target_shard]->num_logical_units() - shard_alloc_[target_shard];
  if (free < num_blocks)
    return Status::failed_precondition(
        "target shard has " + std::to_string(free) +
        " free blocks, needs " + std::to_string(num_blocks));
  for (const Extent& e : extents_) {
    const bool overlaps = e.first < first_block + num_blocks &&
                          first_block < e.first + e.count;
    if (overlaps && e.shard == target_shard)
      return Status::failed_precondition(
          "migration range already routes to the target shard");
  }

  auto m = std::make_unique<Migration>();
  m->first = first_block;
  m->count = num_blocks;
  m->target = target_shard;
  m->target_base = shard_alloc_[target_shard];
  m->chunk_blocks = std::min<std::uint64_t>(chunk_blocks_, num_blocks);
  m->num_chunks = (num_blocks + m->chunk_blocks - 1) / m->chunk_blocks;
  m->chunk_state = std::make_unique<std::atomic<std::uint8_t>[]>(
      static_cast<std::size_t>(m->num_chunks));
  for (std::uint64_t c = 0; c < m->num_chunks; ++c)
    m->chunk_state[static_cast<std::size_t>(c)].store(
        kPending, std::memory_order_relaxed);
  shard_alloc_[target_shard] += num_blocks;  // reserve the landing zone
  migration_ = std::move(m);
  return OkStatus();
}

Result<std::uint32_t> Fleet::add_shard(ShardSpec spec) {
  auto shard = attach_shard(std::move(spec));
  if (!shard.ok()) return shard.status();

  std::uint64_t move = 0;
  std::uint64_t first = 0;
  {
    std::shared_lock<std::shared_mutex> lock(sync_->map);
    std::unordered_set<std::uint32_t> routed;
    for (const Extent& e : extents_) routed.insert(e.shard);
    const std::uint64_t fair =
        num_blocks_ / (static_cast<std::uint64_t>(routed.size()) + 1);
    move = std::min(stores_[shard.value()]->num_logical_units(), fair);
    first = num_blocks_ - move;
  }
  if (move == 0) return shard;  // attached as pure headroom
  const Status planned = start_migration(first, move, shard.value());
  if (!planned.ok()) return planned;
  return shard;
}

Status Fleet::copy_chunk_locked(Migration& m, std::uint64_t chunk) {
  const std::uint64_t begin = m.first + chunk * m.chunk_blocks;
  const std::uint64_t end =
      std::min(begin + m.chunk_blocks, m.first + m.count);
  std::vector<std::uint8_t> buf(block_bytes_);
  for (std::uint64_t block = begin; block < end; ++block) {
    const Route src = route_locked(block);
    Status s = stores_[src.shard]->read(src.unit, buf);
    if (!s.ok()) return s;
    s = stores_[m.target]->write(m.target_base + (block - m.first), buf);
    if (!s.ok()) return s;
  }
  return OkStatus();
}

Result<std::uint64_t> Fleet::migrate_some(std::uint64_t max_blocks) {
  std::shared_lock<std::shared_mutex> lock(sync_->map);
  if (!migration_) return Status::failed_precondition("no active migration");
  Migration& m = *migration_;
  std::uint64_t copied = 0;
  for (std::uint64_t c = 0; c < m.num_chunks && copied < max_blocks; ++c) {
    auto& state = m.chunk_state[static_cast<std::size_t>(c)];
    std::uint8_t observed = state.load(std::memory_order_acquire);
    if (observed != kPending && observed != kDirty) continue;
    // Claim the chunk (several migrator threads may race here).
    if (!state.compare_exchange_strong(observed, kCopying,
                                       std::memory_order_acq_rel))
      continue;
    const bool recopy = observed == kDirty;
    const Status s = copy_chunk_locked(m, c);
    if (!s.ok()) {
      state.store(kPending, std::memory_order_release);  // retry later
      return s;
    }
    const std::uint64_t begin = m.first + c * m.chunk_blocks;
    const std::uint64_t chunk_len =
        std::min(begin + m.chunk_blocks, m.first + m.count) - begin;
    copied += chunk_len;
    if (recopy)
      m.recopied_chunks.fetch_add(1, std::memory_order_relaxed);
    else
      m.copied_blocks.fetch_add(chunk_len, std::memory_order_relaxed);
    // A write that landed mid-copy already knocked the state to kDirty;
    // only a still-kCopying chunk graduates to clean.
    std::uint8_t copying = kCopying;
    state.compare_exchange_strong(copying, kClean,
                                  std::memory_order_acq_rel);
  }
  return copied;
}

Result<std::uint64_t> Fleet::checksum_range_locked(const Migration& m,
                                                   bool use_target) {
  std::vector<std::uint8_t> buf(block_bytes_);
  std::uint64_t h = kFnvOffset;
  for (std::uint64_t block = m.first; block < m.first + m.count; ++block) {
    Status s = OkStatus();
    if (use_target) {
      s = stores_[m.target]->read(m.target_base + (block - m.first), buf);
    } else {
      const Route src = route_locked(block);
      s = stores_[src.shard]->read(src.unit, buf);
    }
    if (!s.ok()) return s;
    h = fnv1a(h, buf);
  }
  return h;
}

void Fleet::splice_extent_locked(std::uint64_t first, std::uint64_t count,
                                 std::uint32_t target,
                                 std::uint64_t target_base) {
  const std::uint64_t end = first + count;
  std::vector<Extent> next;
  next.reserve(extents_.size() + 2);
  for (const Extent& e : extents_) {
    const std::uint64_t e_end = e.first + e.count;
    if (e_end <= first || e.first >= end) {
      next.push_back(e);
      continue;
    }
    if (e.first < first)  // surviving left remainder
      next.push_back(Extent{.first = e.first,
                            .count = first - e.first,
                            .shard = e.shard,
                            .base = e.base});
    if (e_end > end)  // surviving right remainder
      next.push_back(Extent{.first = end,
                            .count = e_end - end,
                            .shard = e.shard,
                            .base = e.base + (end - e.first)});
  }
  next.push_back(Extent{
      .first = first, .count = count, .shard = target, .base = target_base});
  std::sort(next.begin(), next.end(),
            [](const Extent& a, const Extent& b) { return a.first < b.first; });
  // Coalesce neighbours that stayed physically contiguous.
  extents_.clear();
  for (const Extent& e : next) {
    if (!extents_.empty()) {
      Extent& prev = extents_.back();
      if (prev.shard == e.shard && prev.first + prev.count == e.first &&
          prev.base + prev.count == e.base) {
        prev.count += e.count;
        continue;
      }
    }
    extents_.push_back(e);
  }
  compile_router();
}

Result<MigrationReport> Fleet::complete_migration() {
  std::unique_lock<std::shared_mutex> lock(sync_->map);
  if (!migration_) return Status::failed_precondition("no active migration");
  Migration& m = *migration_;

  // Exclusive commit: no foreground write can land now, so one final
  // sweep over pending/dirty chunks makes the target side complete.
  for (std::uint64_t c = 0; c < m.num_chunks; ++c) {
    auto& state = m.chunk_state[static_cast<std::size_t>(c)];
    const std::uint8_t observed = state.load(std::memory_order_acquire);
    if (observed == kClean) continue;
    const Status s = copy_chunk_locked(m, c);
    if (!s.ok()) return s;
    if (observed == kDirty)
      m.recopied_chunks.fetch_add(1, std::memory_order_relaxed);
    state.store(kClean, std::memory_order_release);
  }

  // Cutover verification: a map flip that could serve different bytes
  // is refused outright.
  auto source_sum = checksum_range_locked(m, /*use_target=*/false);
  if (!source_sum.ok()) return source_sum.status();
  auto target_sum = checksum_range_locked(m, /*use_target=*/true);
  if (!target_sum.ok()) return target_sum.status();
  if (source_sum.value() != target_sum.value())
    return Status::data_loss(
        "migration cutover checksum mismatch: source " +
        std::to_string(source_sum.value()) + " vs target " +
        std::to_string(target_sum.value()) +
        " -- the shard map was left unchanged");

  MigrationReport report{.first_block = m.first,
                         .num_blocks = m.count,
                         .target_shard = m.target,
                         .blocks_moved = m.count,
                         .chunks_recopied =
                             m.recopied_chunks.load(std::memory_order_relaxed),
                         .source_checksum = source_sum.value(),
                         .target_checksum = target_sum.value()};
  splice_extent_locked(m.first, m.count, m.target, m.target_base);
  migration_.reset();
  return report;
}

Status Fleet::cancel_migration() {
  std::unique_lock<std::shared_mutex> lock(sync_->map);
  if (!migration_) return Status::failed_precondition("no active migration");
  // The migration was the only allocator since start_migration, so the
  // bump pointer rolls straight back; copied target bytes are orphaned.
  shard_alloc_[migration_->target] = migration_->target_base;
  migration_.reset();
  return OkStatus();
}

Status Fleet::expand(ShardSpec spec) {
  auto shard = add_shard(std::move(spec));
  if (!shard.ok()) return shard.status();
  if (!migration_progress().active) return OkStatus();  // nothing to move
  for (;;) {
    auto copied = migrate_some(1 << 16);
    if (!copied.ok()) return copied.status();
    if (copied.value() == 0) break;
  }
  return complete_migration().status();
}

MigrationProgress Fleet::migration_progress() const {
  std::shared_lock<std::shared_mutex> lock(sync_->map);
  MigrationProgress progress;
  if (!migration_) return progress;
  const Migration& m = *migration_;
  progress.active = true;
  progress.first_block = m.first;
  progress.num_blocks = m.count;
  progress.target_shard = m.target;
  progress.copied_blocks = m.copied_blocks.load(std::memory_order_relaxed);
  for (std::uint64_t c = 0; c < m.num_chunks; ++c)
    if (m.chunk_state[static_cast<std::size_t>(c)].load(
            std::memory_order_relaxed) == kDirty)
      ++progress.dirty_chunks;
  return progress;
}

std::string Fleet::serialize() const {
  std::shared_lock<std::shared_mutex> lock(sync_->map);
  std::ostringstream out;
  out << "pdl-fleet v1\n";
  out << "block-bytes " << block_bytes_ << "\n";
  out << "chunk-blocks " << chunk_blocks_ << "\n";
  out << "shards " << stores_.size() << "\n";
  for (std::size_t s = 0; s < stores_.size(); ++s) {
    const std::string array_text = stores_[s]->array().serialize();
    out << "shard " << s << "\n";
    out << "iterations " << stores_[s]->iterations() << "\n";
    out << "alloc " << shard_alloc_[s] << "\n";
    out << "array-bytes " << array_text.size() << "\n";
    out << array_text << "\n";
  }
  out << "extents " << extents_.size() << "\n";
  for (const Extent& e : extents_)
    out << "extent " << e.first << " " << e.count << " " << e.shard << " "
        << e.base << "\n";
  out << "end pdl-fleet\n";
  return out.str();
}

Result<Fleet> Fleet::deserialize(const std::string& text,
                                 const BackendFactory& factory,
                                 const GovernorOptions& governor) {
  Cursor cursor{text};
  std::string line;
  auto expect = [&](const std::string& keyword,
                    std::uint64_t* value) -> Status {
    if (!cursor.line(line))
      return Status::parse_error("fleet text truncated before " + keyword);
    std::istringstream in(line);
    std::string word;
    in >> word;
    if (word != keyword)
      return Status::parse_error("expected '" + keyword + "', got '" + line +
                                 "'");
    if (value && !(in >> *value))
      return Status::parse_error("bad value in '" + line + "'");
    return OkStatus();
  };

  if (!cursor.line(line) || line != "pdl-fleet v1")
    return Status::parse_error("not a pdl-fleet v1 header");
  std::uint64_t block_bytes = 0, chunk_blocks = 0, num_shards = 0;
  if (Status s = expect("block-bytes", &block_bytes); !s.ok()) return s;
  if (Status s = expect("chunk-blocks", &chunk_blocks); !s.ok()) return s;
  if (Status s = expect("shards", &num_shards); !s.ok()) return s;
  if (block_bytes == 0 || chunk_blocks == 0 || num_shards == 0)
    return Status::parse_error("fleet header has zero geometry");

  FleetOptions options;
  options.block_bytes = static_cast<std::uint32_t>(block_bytes);
  options.migration_chunk_blocks = chunk_blocks;
  options.governor = governor;
  auto gov = RebuildGovernor::create(options.governor);
  if (!gov.ok()) return gov.status();

  Fleet fleet;
  fleet.block_bytes_ = options.block_bytes;
  fleet.chunk_blocks_ = options.migration_chunk_blocks;
  fleet.governor_ = std::make_unique<RebuildGovernor>(std::move(gov).value());
  fleet.sync_ = std::make_unique<Sync>();

  for (std::uint64_t s = 0; s < num_shards; ++s) {
    std::uint64_t index = 0, iterations = 0, alloc = 0, array_bytes = 0;
    if (Status st = expect("shard", &index); !st.ok()) return st;
    if (index != s) return Status::parse_error("shard index out of order");
    if (Status st = expect("iterations", &iterations); !st.ok()) return st;
    if (Status st = expect("alloc", &alloc); !st.ok()) return st;
    if (Status st = expect("array-bytes", &array_bytes); !st.ok()) return st;
    std::string array_text;
    if (!cursor.bytes(static_cast<std::size_t>(array_bytes), array_text))
      return Status::parse_error("fleet text truncated inside array header");
    auto array = api::Array::deserialize(array_text);
    if (!array.ok()) return array.status();
    auto store = io::StripeStore::create(
        std::move(array).value(),
        io::StripeStoreOptions{
            .unit_bytes = fleet.block_bytes_,
            .iterations = static_cast<std::uint32_t>(iterations)},
        factory ? factory(static_cast<std::uint32_t>(s)) : nullptr);
    if (!store.ok()) return store.status();
    if (alloc > store.value().num_logical_units())
      return Status::parse_error("shard alloc exceeds shard capacity");
    fleet.stores_.push_back(
        std::make_unique<io::StripeStore>(std::move(store).value()));
    fleet.shard_alloc_.push_back(alloc);
  }

  std::uint64_t num_extents = 0;
  if (Status s = expect("extents", &num_extents); !s.ok()) return s;
  if (num_extents == 0) return Status::parse_error("fleet has no extents");
  std::uint64_t next_block = 0;
  for (std::uint64_t i = 0; i < num_extents; ++i) {
    if (!cursor.line(line))
      return Status::parse_error("fleet text truncated inside extents");
    std::istringstream in(line);
    std::string word;
    Extent e;
    if (!(in >> word >> e.first >> e.count >> e.shard >> e.base) ||
        word != "extent")
      return Status::parse_error("bad extent line '" + line + "'");
    if (e.count == 0)
      return Status::parse_error("extent covers zero blocks");
    if (e.first != next_block)
      return Status::parse_error(
          "extents leave a gap or overlap in the block space (extent " +
          std::to_string(i) + " starts at " + std::to_string(e.first) +
          ", expected " + std::to_string(next_block) + ")");
    if (e.shard >= fleet.stores_.size())
      return Status::parse_error("extent names an unknown shard");
    if (e.base + e.count > fleet.stores_[e.shard]->num_logical_units())
      return Status::parse_error("extent exceeds its shard's capacity");
    if (e.base + e.count > fleet.shard_alloc_[e.shard])
      return Status::parse_error("extent exceeds its shard's allocation");
    // Distinct block ranges must not alias the same shard-local units:
    // an overlapping pair would serve two fleet blocks from one unit
    // (and one write would clobber the other block).
    for (const Extent& prior : fleet.extents_)
      if (prior.shard == e.shard && e.base < prior.base + prior.count &&
          prior.base < e.base + e.count)
        return Status::parse_error(
            "extents overlap on shard " + std::to_string(e.shard) +
            ": units [" + std::to_string(e.base) + ", " +
            std::to_string(e.base + e.count) + ") collide with [" +
            std::to_string(prior.base) + ", " +
            std::to_string(prior.base + prior.count) + ")");
    next_block += e.count;
    fleet.extents_.push_back(e);
  }
  if (Status s = expect("end", nullptr); !s.ok()) return s;
  fleet.num_blocks_ = next_block;
  fleet.compile_router();
  return fleet;
}

Status Fleet::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::io_error("cannot open " + path + " for writing");
  const std::string text = serialize();
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  if (!out) return Status::io_error("short write to " + path);
  return OkStatus();
}

Result<Fleet> Fleet::load(const std::string& path,
                          const BackendFactory& factory,
                          const GovernorOptions& governor) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::io_error("cannot open " + path + " for reading");
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) return Status::io_error("read failure on " + path);
  return deserialize(text.str(), factory, governor);
}

}  // namespace pdl::fleet
