#pragma once
/// @file
/// pdl::fleet::Fleet -- many arrays behind one front door.
///
/// One io::StripeStore is one declustered array; a deployment serving
/// millions of users runs many.  A Fleet shards one large logical block
/// space across N StripeStores -- heterogeneous on purpose: each shard
/// brings its own layout geometry (v, k, construction, iterations,
/// sparing), its own erasure codec (XOR parity next to Reed-Solomon
/// P+Q), and its own DiskBackend substrate (memory next to files next to
/// fault decorators), the HDA "one RAID level per virtual array" idea
/// landed on this codebase's seams.  The fleet routes every block
/// address through a compiled shard map, runs failure handling per
/// shard, paces all rebuild work through one shared RebuildGovernor,
/// and supports online shard addition with background extent migration.
///
/// ## Shard map
///
/// The block space is a sorted list of extents, each mapping a
/// contiguous block range to (shard, shard-local unit base).  A founding
/// fleet has one extent per shard; migration splits and moves them.
/// Lookup is division-free in the spirit of layout::CompiledMapper: a
/// bucket table indexed by `block >> shift` names the extent containing
/// the bucket's first block, and a short forward walk (bounded by the
/// extents sharing one bucket) lands on the exact extent -- O(1) with a
/// tiny constant, no per-lookup division or binary search.
///
/// ## Failure handling & the governor
///
/// fail_disk / replace_disk / rebuild_some are addressed as
/// (shard, disk): the shard's StripeStore does exactly what it always
/// did (poison platters, attach zeroed ones, regenerate lost bytes from
/// survivors).  The one fleet-level addition is pacing: every governed
/// rebuild pass reserves its byte budget from the RebuildGovernor
/// *before* touching the data path and refunds what it did not use, so
/// a fleet-wide policy (fifo / fair-share / foreground-protecting)
/// decides how rebuild bandwidth is spent across shards -- the
/// foreground-p99-vs-rebuild-throughput trade-off made explicit and
/// measurable (bench_fleet_throughput).
///
/// ## Online shard addition & extent migration
///
/// attach_shard registers a new (empty) shard; start_migration plans a
/// contiguous block range onto it; migrate_some copies the range in
/// chunks under the same shared-stage / exclusive-commit discipline as
/// StripeStore's online rebuild: staging copies run under the SHARED
/// fleet lock (foreground reads and writes keep flowing, reads always
/// served from the authoritative source side), a per-chunk dirty flag
/// catches writes that land mid-copy (the chunk is simply re-copied),
/// and complete_migration takes the EXCLUSIVE lock once to re-copy any
/// dirty remainder, verify the source and target extents are
/// checksum-identical (FNV-1a over every block -- a cutover that could
/// serve different bytes is refused), and atomically splice the shard
/// map.  add_shard composes attach + an automatic rebalancing plan
/// (tail of the block space, sized to the fair share); expand() drives
/// the whole protocol to completion.
///
/// ## Concurrency
///
/// One readers-writer lock guards the shard map and shard table:
/// read/write/read_batch/migrate staging take it shared (the per-shard
/// StripeStores provide all finer-grained serialization), while
/// attach_shard and complete_migration take it exclusive.  Holding the
/// shared lock across the underlying store call is what makes cutover
/// sound: when complete_migration holds the exclusive lock, every write
/// that routed to the source side has fully landed.

#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "fleet/governor.hpp"
#include "io/stripe_store.hpp"

namespace pdl::fleet {

using layout::DiskId;

/// One shard's ingredients: an (healthy) array plus store knobs and a
/// storage substrate.  unit_bytes is fleet-wide (FleetOptions::
/// block_bytes); everything else may differ per shard.
struct ShardSpec {
  api::Array array;               ///< layout + codec + sparing choice
  std::uint32_t iterations = 1;   ///< vertical tilings (capacity knob)
  std::uint32_t lock_shards = 64; ///< stripe-lock pool of the shard store
  /// Hot-stripe cache knobs of the shard store (disabled by default;
  /// a runtime choice, so not persisted by serialize()).
  io::StripeCacheOptions cache = {};
  /// Storage substrate; null means a fresh MemoryBackend.
  std::unique_ptr<io::DiskBackend> backend = nullptr;
};

/// Fleet-wide construction knobs.
struct FleetOptions {
  /// Bytes per fleet block == unit_bytes of every shard store (the
  /// fleet's uniform I/O granularity over heterogeneous shards).
  std::uint32_t block_bytes = 4096;
  /// Rebuild-bandwidth budget shared by every shard.
  GovernorOptions governor = {};
  /// Blocks per migration chunk (the dirty-tracking granule).
  std::uint64_t migration_chunk_blocks = 64;
};

/// Where one fleet block physically lives: which shard, and which
/// shard-local logical unit of that shard's StripeStore.
struct Route {
  std::uint32_t shard = 0;
  std::uint64_t unit = 0;
};

/// One shard-map entry: blocks [first, first+count) live on `shard` at
/// shard-local units [base, base+count).
struct Extent {
  std::uint64_t first = 0;
  std::uint64_t count = 0;
  std::uint32_t shard = 0;
  std::uint64_t base = 0;
};

/// Point-in-time view of an in-flight migration.
struct MigrationProgress {
  bool active = false;
  std::uint64_t first_block = 0;
  std::uint64_t num_blocks = 0;
  std::uint32_t target_shard = 0;
  std::uint64_t copied_blocks = 0;  ///< staged at least once
  std::uint64_t dirty_chunks = 0;   ///< invalidated by concurrent writes
};

/// What a completed migration did, including the cutover verification
/// evidence (both checksums, asserted equal before the map flipped).
struct MigrationReport {
  std::uint64_t first_block = 0;
  std::uint64_t num_blocks = 0;
  std::uint32_t target_shard = 0;
  std::uint64_t blocks_moved = 0;
  std::uint64_t chunks_recopied = 0;   ///< dirty re-stages
  std::uint64_t source_checksum = 0;   ///< FNV-1a over the source extent
  std::uint64_t target_checksum = 0;   ///< FNV-1a over the target extent
};

/// Makes the storage substrate for shard `shard` when re-opening a
/// serialized fleet (null function or null result = MemoryBackend).
using BackendFactory =
    std::function<std::unique_ptr<io::DiskBackend>(std::uint32_t shard)>;

/// Many arrays behind one front door: a sharded block space over N
/// StripeStores with governed rebuild and online migration.  See the
/// file comment for the full story.
class Fleet {
 public:
  /// Builds a fleet over founding shards: shard i's extent covers the
  /// next capacity_units(iterations) blocks of the space.
  /// kInvalidArgument for an empty shard list, a zero-capacity shard,
  /// or bad options; shard-store creation failures pass through.
  [[nodiscard]] static Result<Fleet> create(std::vector<ShardSpec> shards,
                                            FleetOptions options = {});

  // ------------------------------------------------------------ geometry

  /// Shards currently registered (routed or attached-empty).
  [[nodiscard]] std::uint32_t num_shards() const noexcept {
    return static_cast<std::uint32_t>(stores_.size());
  }
  /// Fleet blocks addressable through read/write.
  [[nodiscard]] std::uint64_t num_blocks() const noexcept {
    return num_blocks_;
  }
  /// Bytes per fleet block.
  [[nodiscard]] std::uint32_t block_bytes() const noexcept {
    return block_bytes_;
  }
  /// Total addressable bytes (num_blocks x block_bytes).
  [[nodiscard]] std::uint64_t logical_bytes() const noexcept {
    return num_blocks_ * block_bytes_;
  }
  /// One shard's store, read-only (stats, checksums, array state).  Do
  /// NOT mutate shard state behind the fleet's back -- use the fleet's
  /// (shard, disk)-addressed operations.
  [[nodiscard]] const io::StripeStore& shard(std::uint32_t shard) const {
    return *stores_[shard];
  }
  /// Where a block currently lives.  kOutOfRange past the space.
  [[nodiscard]] Result<Route> route_of(std::uint64_t block) const;
  /// Snapshot of the shard map, sorted by first block.
  [[nodiscard]] std::vector<Extent> extents() const;
  /// True when any shard's backend serves submissions asynchronously.
  [[nodiscard]] bool any_async() const;

  // ----------------------------------------------------------- data path

  /// Reads one fleet block into `out` (exactly block_bytes() wide),
  /// routed through the shard map; the owning shard serves it with its
  /// own codec/failure state (degraded reads reconstruct on the fly).
  /// Error contract mirrors io::StripeStore::read, plus kOutOfRange for
  /// blocks past the fleet space.
  [[nodiscard]] Status read(std::uint64_t block, std::span<std::uint8_t> out,
                            io::ReadReceipt* receipt = nullptr);

  /// Reads many fleet blocks, grouped per shard into batched
  /// StripeStore::read_batch submissions (async shards see their full
  /// fan-out at once).  `out` is blocks.size() block-slices back to
  /// back; `statuses[i]` gets block i's individual outcome; the return
  /// value is the first non-OK status.  `receipts`, when non-empty,
  /// must be blocks.size() long.
  [[nodiscard]] Status read_batch(std::span<const std::uint64_t> blocks,
                                  std::span<std::uint8_t> out,
                                  std::span<Status> statuses,
                                  std::span<io::ReadReceipt> receipts = {});

  /// Writes one fleet block from `data` (exactly block_bytes() wide);
  /// the owning shard maintains parity under its own codec.  During a
  /// migration, writes inside the migrating range land on the
  /// authoritative source side and invalidate the affected chunk.
  [[nodiscard]] Status write(std::uint64_t block,
                             std::span<const std::uint8_t> data,
                             io::WriteReceipt* receipt = nullptr);

  /// Flushes every shard's backend to its durability point.
  [[nodiscard]] Status sync();

  // ------------------------------------- failure & rebuild (per shard)

  /// Marks (shard, disk) failed; the shard store poisons the platters.
  [[nodiscard]] Status fail_disk(std::uint32_t shard, DiskId disk);
  /// Attaches zeroed replacement platters to (shard, disk).
  [[nodiscard]] Status replace_disk(std::uint32_t shard, DiskId disk);

  /// Governed rebuild pass: reserves max_steps' worth of rebuilt bytes
  /// from the RebuildGovernor (blocking until the budget allows),
  /// executes up to max_steps repair steps on the shard, and refunds
  /// the unused reservation.  Returns stripes repaired, like
  /// StripeStore::rebuild_some.  Drive from one rebuilder thread per
  /// rebuilding shard; the governor arbitrates between them.
  [[nodiscard]] Result<std::uint64_t> rebuild_some(
      std::uint32_t shard, std::uint64_t max_steps,
      std::uint64_t* blocked = nullptr);

  /// Governed rebuild_some until the shard is quiescent.
  [[nodiscard]] Result<api::RebuildOutcome> rebuild(std::uint32_t shard);

  /// rebuild() on every shard (in shard order -- the governor, not the
  /// order, decides the bandwidth split when driven concurrently).
  [[nodiscard]] Result<api::RebuildOutcome> rebuild_all();

  /// Governed scrub pass: reserves the instances' read footprint from
  /// the shared governor as io::IoClass::kScrub work (blocking until
  /// the budget allows -- scrub and rebuild share one background-bytes
  /// bucket), verifies and heals up to max_instances stripe instances
  /// on the shard, and refunds the unused reservation.  A shard built
  /// without integrity returns an empty report immediately.
  [[nodiscard]] Result<io::ScrubReport> scrub_some(
      std::uint32_t shard, std::uint64_t max_instances,
      std::uint64_t* blocked = nullptr);

  /// One governed full sweep: every instance of every shard, in small
  /// governed passes (shard order; the governor decides the pacing).
  [[nodiscard]] Result<io::ScrubReport> scrub_all();

  /// True when every shard is fully healthy.
  [[nodiscard]] bool healthy() const;

  /// One shard's hot-stripe cache counters (all zero when that shard's
  /// cache is disabled).  kOutOfRange past num_shards().
  [[nodiscard]] Result<io::HotnessStats> shard_hotness(
      std::uint32_t shard) const;

  /// shard_hotness for every shard, indexed by shard id -- the skew
  /// evidence a foreground-protecting governor policy wants: a shard
  /// whose hit + absorb counters are climbing is serving the hot set,
  /// so its rebuild appetite is the one worth throttling.
  [[nodiscard]] std::vector<io::HotnessStats> hotness_report() const;

  /// The shared rebuild-bandwidth budget (stats, policy inspection).
  [[nodiscard]] RebuildGovernor& governor() noexcept { return *governor_; }
  [[nodiscard]] const RebuildGovernor& governor() const noexcept {
    return *governor_;
  }

  // ------------------------------------ shard addition & migration

  /// Registers a new shard with no routed blocks (its capacity is
  /// migration headroom).  Returns the new shard index.
  [[nodiscard]] Result<std::uint32_t> attach_shard(ShardSpec spec);

  /// Plans a migration: blocks [first_block, first_block + num_blocks)
  /// move to `target_shard` (which needs that much unallocated
  /// capacity).  One migration may be active at a time; the range may
  /// span several source extents but must not already touch the
  /// target.  kFailedPrecondition / kInvalidArgument on violations.
  [[nodiscard]] Status start_migration(std::uint64_t first_block,
                                       std::uint64_t num_blocks,
                                       std::uint32_t target_shard);

  /// attach_shard + an automatic rebalancing plan: the tail of the
  /// block space, sized min(new shard capacity, fair share), starts
  /// migrating to the new shard.  Returns the new shard index; drive
  /// migrate_some / complete_migration (or use expand()).
  [[nodiscard]] Result<std::uint32_t> add_shard(ShardSpec spec);

  /// Copies up to max_blocks pending (or invalidated) blocks from the
  /// source side to the target shard, under the SHARED lock --
  /// foreground traffic keeps flowing, reads stay on the authoritative
  /// source.  Returns blocks copied this pass; 0 means every chunk is
  /// currently staged clean (call complete_migration).  Safe to call
  /// from several migrator threads.
  [[nodiscard]] Result<std::uint64_t> migrate_some(std::uint64_t max_blocks);

  /// Finishes the migration under the EXCLUSIVE lock: re-copies dirty
  /// chunks, verifies source and target extents are checksum-identical
  /// (kDataLoss-grade refusal on mismatch -- the map is left
  /// unchanged), splices the shard map, and returns the report.
  [[nodiscard]] Result<MigrationReport> complete_migration();

  /// Abandons an active migration: routing is untouched, the target
  /// shard's reserved capacity is released.
  [[nodiscard]] Status cancel_migration();

  /// Convenience: add_shard + migrate_some to quiescence +
  /// complete_migration, synchronously.
  [[nodiscard]] Status expand(ShardSpec spec);

  /// Point-in-time migration state.
  [[nodiscard]] MigrationProgress migration_progress() const;

  // --------------------------------------------------------- persistence

  /// Serializes the shard map + per-shard array headers (store knobs,
  /// codec via api::Array::serialize, extents, allocation state).
  /// Online failure state and in-flight migrations are not persisted --
  /// an active migration serializes as its pre-migration routing.
  [[nodiscard]] std::string serialize() const;
  /// Rebuilds a fleet from serialize() text.  `factory` supplies each
  /// shard's backend (null = fresh MemoryBackend); `governor` is the
  /// runtime policy choice (not persisted).  kParseError when
  /// malformed.
  [[nodiscard]] static Result<Fleet> deserialize(
      const std::string& text, const BackendFactory& factory = nullptr,
      const GovernorOptions& governor = {});
  /// serialize() to a file (kIoError on filesystem failure).
  [[nodiscard]] Status save(const std::string& path) const;
  /// deserialize() from a file (kIoError / kParseError).
  [[nodiscard]] static Result<Fleet> load(
      const std::string& path, const BackendFactory& factory = nullptr,
      const GovernorOptions& governor = {});

 private:
  Fleet() = default;

  /// Chunk lifecycle: pending -> copying -> clean, with writes knocking
  /// clean/copying back to dirty (re-copied later).
  enum ChunkState : std::uint8_t {
    kPending = 0,
    kCopying = 1,
    kClean = 2,
    kDirty = 3,
  };

  struct Migration {
    std::uint64_t first = 0;
    std::uint64_t count = 0;
    std::uint32_t target = 0;
    std::uint64_t target_base = 0;
    std::uint64_t chunk_blocks = 64;
    std::uint64_t num_chunks = 0;
    std::unique_ptr<std::atomic<std::uint8_t>[]> chunk_state;
    std::atomic<std::uint64_t> copied_blocks{0};
    std::atomic<std::uint64_t> recopied_chunks{0};
  };

  /// Route lookup against the compiled map; caller holds the map lock.
  [[nodiscard]] Route route_locked(std::uint64_t block) const noexcept;
  /// Rebuilds the bucket table from extents_; caller holds exclusive.
  void compile_router();
  /// Registers `spec` as a new shard; caller passes validated options.
  [[nodiscard]] Result<std::uint32_t> attach_shard_locked(ShardSpec spec);
  /// Copies one chunk's blocks source -> target.  Caller holds the map
  /// lock (shared or exclusive).
  [[nodiscard]] Status copy_chunk_locked(Migration& m, std::uint64_t chunk);
  /// FNV-1a over the blocks of [first, first+count) as served by
  /// `use_target` ? the migration target : the source routing.  Caller
  /// holds the map lock.
  [[nodiscard]] Result<std::uint64_t> checksum_range_locked(
      const Migration& m, bool use_target);
  /// Splices [first, first+count) -> (target, target_base) into
  /// extents_ and recompiles.  Caller holds exclusive.
  void splice_extent_locked(std::uint64_t first, std::uint64_t count,
                            std::uint32_t target, std::uint64_t target_base);

  std::uint32_t block_bytes_ = 0;
  std::uint64_t num_blocks_ = 0;
  std::uint64_t chunk_blocks_ = 64;
  std::vector<std::unique_ptr<io::StripeStore>> stores_;
  /// Bump allocator per shard: units [0, alloc) are (or were) routed.
  /// Freed source units of a completed migration are not recycled.
  std::vector<std::uint64_t> shard_alloc_;
  std::vector<Extent> extents_;        ///< sorted by first block
  std::vector<std::uint32_t> bucket_;  ///< block >> shift_ -> extent index
  std::uint32_t shift_ = 0;
  std::unique_ptr<Migration> migration_;  ///< null = none active
  std::unique_ptr<RebuildGovernor> governor_;

  /// Heap-allocated so the fleet stays movable (Result<Fleet>).
  struct Sync {
    mutable std::shared_mutex map;
  };
  std::unique_ptr<Sync> sync_;
};

}  // namespace pdl::fleet
