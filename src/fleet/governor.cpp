#include "fleet/governor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

namespace pdl::fleet {

namespace {

[[nodiscard]] std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr double kUnlimited = std::numeric_limits<double>::infinity();

}  // namespace

std::string_view governor_policy_name(GovernorPolicy policy) noexcept {
  switch (policy) {
    case GovernorPolicy::kFifo: return "fifo";
    case GovernorPolicy::kFairShare: return "fair-share";
    case GovernorPolicy::kForegroundProtecting:
      return "foreground-protecting";
  }
  return "?";
}

Result<GovernorPolicy> governor_policy_from_name(std::string_view name) {
  for (const GovernorPolicy policy :
       {GovernorPolicy::kFifo, GovernorPolicy::kFairShare,
        GovernorPolicy::kForegroundProtecting})
    if (name == governor_policy_name(policy)) return policy;
  return Status::parse_error("unknown governor policy: " +
                             std::string(name));
}

RebuildGovernor::RebuildGovernor(const GovernorOptions& options)
    : options_(options), state_(std::make_unique<State>()) {
  state_->tokens = static_cast<double>(options_.burst_bytes);
  state_->last_refill_us = now_us();
}

Result<RebuildGovernor> RebuildGovernor::create(
    const GovernorOptions& options) {
  if (options.rebuild_bytes_per_sec < 0)
    return Status::invalid_argument(
        "rebuild_bytes_per_sec must be >= 0 (0 = unlimited)");
  if (options.policy == GovernorPolicy::kForegroundProtecting &&
      !(options.protected_bytes_per_sec > 0))
    return Status::invalid_argument(
        "foreground-protecting needs protected_bytes_per_sec > 0: a zero "
        "floor would starve rebuild whenever foreground traffic persists");
  return RebuildGovernor(options);
}

double RebuildGovernor::effective_rate_locked() const noexcept {
  const double configured = options_.rebuild_bytes_per_sec > 0
                                ? options_.rebuild_bytes_per_sec
                                : kUnlimited;
  if (options_.policy != GovernorPolicy::kForegroundProtecting)
    return configured;
  return foreground_active()
             ? std::min(configured, options_.protected_bytes_per_sec)
             : configured;
}

void RebuildGovernor::refill_locked(std::uint64_t now) {
  const double rate = effective_rate_locked();
  if (std::isinf(rate)) {
    state_->tokens = static_cast<double>(options_.burst_bytes);
  } else if (now > state_->last_refill_us) {
    const double dt = static_cast<double>(now - state_->last_refill_us) / 1e6;
    state_->tokens = std::min(static_cast<double>(options_.burst_bytes),
                              state_->tokens + rate * dt);
  }
  state_->last_refill_us = std::max(state_->last_refill_us, now);
}

bool RebuildGovernor::my_turn_locked(std::uint64_t ticket) const {
  // The waiter list is in arrival order; under fifo (and protecting,
  // which only changes the rate) the head goes first.  Under fair-share
  // the least-granted waiting *shard* goes first, ties by arrival.
  if (state_->waiters.empty()) return true;
  if (options_.policy != GovernorPolicy::kFairShare)
    return state_->waiters.front().ticket == ticket;
  const Waiter* best = &state_->waiters.front();
  for (const Waiter& w : state_->waiters) {
    const auto granted = [&](const Waiter& x) {
      return x.shard < state_->per_shard.size()
                 ? state_->per_shard[x.shard].granted_bytes
                 : 0;
    };
    if (granted(w) < granted(*best) ||
        (granted(w) == granted(*best) && w.ticket < best->ticket))
      best = &w;
  }
  return best->ticket == ticket;
}

std::uint64_t RebuildGovernor::acquire(std::uint32_t shard,
                                       std::uint64_t bytes,
                                       io::IoClass io_class) {
  // Foreground classes are never budgeted here; account them as rebuild
  // rather than corrupting the foreground counters.  Scrub grants share
  // the rebuild bucket (one background-bytes budget) but are counted
  // separately so operators can see verify traffic apart from repair.
  const bool scrub = io_class == io::IoClass::kScrub;
  const std::uint64_t started = now_us();
  std::unique_lock<std::mutex> lock(state_->mutex);
  if (shard >= state_->per_shard.size())
    state_->per_shard.resize(shard + 1);

  const std::uint64_t ticket = state_->next_ticket++;
  state_->waiters.push_back({ticket, shard});
  bool waited = false;

  for (;;) {
    refill_locked(now_us());
    if (my_turn_locked(ticket) && state_->tokens >= 0) break;
    waited = true;
    const double rate = effective_rate_locked();
    if (my_turn_locked(ticket) && !std::isinf(rate) && rate > 0) {
      // Sleep just long enough for the bucket to climb back to zero;
      // re-check afterwards (the rate may have changed mid-sleep when
      // foreground traffic arrived or went quiet).
      const double deficit_sec = -state_->tokens / rate;
      const auto wake = std::chrono::microseconds(
          std::max<std::int64_t>(
              100, static_cast<std::int64_t>(deficit_sec * 1e6)));
      state_->cv.wait_for(lock, wake);
    } else {
      state_->cv.wait_for(lock, std::chrono::milliseconds(10));
    }
  }

  state_->waiters.erase(
      std::find_if(state_->waiters.begin(), state_->waiters.end(),
                   [&](const Waiter& w) { return w.ticket == ticket; }));
  state_->tokens -= static_cast<double>(bytes);

  const std::uint64_t blocked = waited ? now_us() - started : 0;
  const bool throttled =
      options_.policy == GovernorPolicy::kForegroundProtecting &&
      foreground_active();
  auto charge = [&](GovernorStats& s) {
    ++s.grants;
    s.granted_bytes += bytes;
    if (waited) {
      ++s.waits;
      s.wait_us += blocked;
    }
    if (throttled) ++s.throttled_grants;
    if (scrub) {
      ++s.scrub_grants;
      s.scrub_granted_bytes += bytes;
    }
  };
  charge(state_->fleet);
  charge(state_->per_shard[shard]);
  lock.unlock();
  state_->cv.notify_all();
  return blocked;
}

void RebuildGovernor::refund(std::uint32_t shard, std::uint64_t bytes) {
  if (bytes == 0) return;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->tokens =
        std::min(static_cast<double>(options_.burst_bytes),
                 state_->tokens + static_cast<double>(bytes));
    state_->fleet.refunded_bytes += bytes;
    if (shard < state_->per_shard.size())
      state_->per_shard[shard].refunded_bytes += bytes;
  }
  state_->cv.notify_all();
}

void RebuildGovernor::note_foreground(std::uint64_t bytes) noexcept {
  state_->foreground_bytes.fetch_add(bytes, std::memory_order_relaxed);
  state_->foreground_last_us.store(now_us(), std::memory_order_relaxed);
}

bool RebuildGovernor::foreground_active() const noexcept {
  const std::uint64_t last =
      state_->foreground_last_us.load(std::memory_order_relaxed);
  return last != 0 && now_us() - last <= options_.foreground_window_us;
}

GovernorStats RebuildGovernor::stats() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  GovernorStats out = state_->fleet;
  out.foreground_bytes =
      state_->foreground_bytes.load(std::memory_order_relaxed);
  return out;
}

GovernorStats RebuildGovernor::shard_stats(std::uint32_t shard) const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (shard >= state_->per_shard.size()) return {};
  return state_->per_shard[shard];
}

}  // namespace pdl::fleet
