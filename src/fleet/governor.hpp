#pragma once
/// @file
/// pdl::fleet::RebuildGovernor -- the fleet-wide rebuild-bandwidth
/// budget.
///
/// One array rebuilds as fast as its disks allow; a fleet of arrays
/// rebuilding concurrently must not eat the machine out from under the
/// foreground traffic.  The governor is a token bucket over *rebuilt
/// bytes* (the write side of reconstruction -- the quantity the benches
/// report as rebuild MB/s): every governed rebuild pass acquires its
/// byte budget before touching the data path, blocks until the bucket
/// covers it, and refunds whatever the pass did not use.  This is the
/// fleet-level sibling of the per-disk io::IoScheduler policies from the
/// async engine: the scheduler reorders requests already queued on one
/// disk, while the governor decides how many rebuild bytes enter the
/// system at all -- both keyed by the same io::IoClass traffic taxonomy
/// (the governor budgets kRebuild/kScrub work and observes
/// kForegroundRead/kForegroundWrite bytes reported by the serving path).
///
/// Three policies ship:
///
///   * fifo                  -- waiters drain in arrival order at the
///                              configured rebuild rate (unlimited by
///                              default): the baseline, no fairness and
///                              no foreground awareness;
///   * fair-share            -- same bucket, but when several shards
///                              wait, the grant goes to the shard with
///                              the least bytes granted so far, so one
///                              big shard's rebuild cannot monopolize
///                              the budget (long-term per-shard
///                              fairness);
///   * foreground-protecting -- while foreground traffic has been
///                              observed within foreground_window_us,
///                              the refill rate drops to
///                              protected_bytes_per_sec (a strictly
///                              positive floor, so rebuild always makes
///                              progress and mean-time-to-repair stays
///                              bounded -- the anti-starvation
///                              guarantee); an idle fleet rebuilds at
///                              the full rate.
///
/// Thread safety: all entry points are safe from any thread.  acquire()
/// blocks (condition variable, no spinning); note_foreground() is a
/// lock-free pair of relaxed atomics, cheap enough for the per-op
/// serving path.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "core/status.hpp"
#include "io/disk_backend.hpp"

/// @namespace pdl::fleet
/// @brief The multi-array tier: Fleet shards one logical block space
/// over many io::StripeStores, with governed rebuild bandwidth and
/// online extent migration.
namespace pdl::fleet {

/// How the governor arbitrates rebuild bandwidth across shards.
enum class GovernorPolicy : std::uint8_t {
  kFifo = 0,                  ///< arrival order, fixed rate
  kFairShare = 1,             ///< least-granted shard first, fixed rate
  kForegroundProtecting = 2,  ///< throttle to a floor while foreground is hot
};

/// Human-readable policy name ("fifo", "fair-share",
/// "foreground-protecting").
[[nodiscard]] std::string_view governor_policy_name(
    GovernorPolicy policy) noexcept;

/// Policy by name (the inverse of governor_policy_name).  kParseError
/// for unknown names.
[[nodiscard]] Result<GovernorPolicy> governor_policy_from_name(
    std::string_view name);

/// Construction knobs for RebuildGovernor.
struct GovernorOptions {
  GovernorPolicy policy = GovernorPolicy::kFifo;
  /// Steady-state rebuild budget in bytes/second; 0 means unlimited
  /// (grants never wait except behind the protecting floor).
  double rebuild_bytes_per_sec = 0;
  /// foreground-protecting only: the refill rate while foreground
  /// traffic is active.  Must be > 0 (validated) -- the non-starvation
  /// floor.
  double protected_bytes_per_sec = 4.0 * 1024 * 1024;
  /// How recently foreground bytes must have been observed for the
  /// protecting policy to consider the fleet "busy".
  std::uint64_t foreground_window_us = 20000;
  /// Token-bucket burst capacity: how many bytes a quiet period can
  /// bank for an instant grant later.
  std::uint64_t burst_bytes = 1 << 20;
};

/// What the governor has done since construction (monotonic).  Per-shard
/// snapshots carry the same fields scoped to one shard (foreground_bytes
/// is fleet-wide and reported as 0 in per-shard snapshots).
struct GovernorStats {
  std::uint64_t grants = 0;          ///< acquire() calls completed
  std::uint64_t granted_bytes = 0;   ///< budget handed out
  std::uint64_t refunded_bytes = 0;  ///< budget handed back unused
  std::uint64_t waits = 0;           ///< grants that had to block
  std::uint64_t wait_us = 0;         ///< total blocked microseconds
  std::uint64_t throttled_grants = 0;  ///< grants paid at the protected rate
  std::uint64_t foreground_bytes = 0;  ///< serving bytes observed
  std::uint64_t scrub_grants = 0;      ///< grants classed io::IoClass::kScrub
  std::uint64_t scrub_granted_bytes = 0;  ///< budget handed to scrub work
};

/// The fleet-wide rebuild-bandwidth budget.  See the file comment for
/// the policy semantics and threading contract.
class RebuildGovernor {
 public:
  /// kInvalidArgument for a non-positive protecting floor or negative
  /// rates.
  [[nodiscard]] static Result<RebuildGovernor> create(
      const GovernorOptions& options);

  RebuildGovernor(RebuildGovernor&&) noexcept = default;
  RebuildGovernor& operator=(RebuildGovernor&&) noexcept = default;

  /// Blocks until the bucket covers `bytes` of rebuild work for `shard`
  /// (and, under fair-share, until it is this shard's turn), then debits
  /// the bucket.  Returns the microseconds spent blocked (0 for an
  /// immediate grant).  `io_class` must be a background class (kRebuild
  /// or kScrub) -- foreground classes are not budgeted here and are
  /// rejected by assert-like clamping to kRebuild accounting.
  std::uint64_t acquire(std::uint32_t shard, std::uint64_t bytes,
                        io::IoClass io_class = io::IoClass::kRebuild);

  /// Returns unused budget from a prior acquire (a rebuild pass that
  /// repaired fewer stripes than it reserved).
  void refund(std::uint32_t shard, std::uint64_t bytes);

  /// Reports `bytes` of foreground serving traffic.  Lock-free; called
  /// by the fleet on every read/write so the protecting policy can see
  /// load.
  void note_foreground(std::uint64_t bytes) noexcept;

  /// Whether foreground traffic was observed within
  /// foreground_window_us of now.
  [[nodiscard]] bool foreground_active() const noexcept;

  /// Fleet-wide counters.
  [[nodiscard]] GovernorStats stats() const;
  /// One shard's counters (zeroes for a shard never seen).
  [[nodiscard]] GovernorStats shard_stats(std::uint32_t shard) const;

  /// The options the governor was built with.
  [[nodiscard]] const GovernorOptions& options() const noexcept {
    return options_;
  }

 private:
  explicit RebuildGovernor(const GovernorOptions& options);

  /// Effective refill rate right now (infinity encodes unlimited).
  [[nodiscard]] double effective_rate_locked() const noexcept;
  /// Rolls wall time forward into bucket tokens.
  void refill_locked(std::uint64_t now_us);
  /// Whether `ticket` is the waiter the policy serves next.
  [[nodiscard]] bool my_turn_locked(std::uint64_t ticket) const;

  GovernorOptions options_;

  struct Waiter {
    std::uint64_t ticket = 0;
    std::uint32_t shard = 0;
  };
  /// Everything mutable lives behind one heap block so the governor
  /// stays movable (Result<RebuildGovernor>).
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    double tokens = 0;               ///< may go negative (grant debt)
    std::uint64_t last_refill_us = 0;
    std::uint64_t next_ticket = 0;
    std::vector<Waiter> waiters;     ///< arrival order
    GovernorStats fleet;
    std::vector<GovernorStats> per_shard;
    /// note_foreground's lock-free side: last-activity stamp + byte
    /// count, folded into `fleet` lazily under the mutex.
    std::atomic<std::uint64_t> foreground_last_us{0};
    std::atomic<std::uint64_t> foreground_bytes{0};
  };
  std::unique_ptr<State> state_;
};

}  // namespace pdl::fleet
