#include "fleet/workload.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <random>
#include <thread>
#include <vector>

namespace pdl::fleet {

using io::ReadReceipt;
using io::WriteReceipt;

Status fill_canonical(Fleet& fleet, std::uint64_t first, std::uint64_t last,
                      std::uint64_t seed) {
  std::vector<std::uint8_t> block(fleet.block_bytes());
  for (std::uint64_t b = first; b < last; ++b) {
    io::canonical_fill(b, seed, block);
    if (Status written = fleet.write(b, block); !written.ok())
      return written;
  }
  return OkStatus();
}

WorkloadDriver::WorkloadDriver(Fleet& fleet, io::WorkloadOptions options)
    : fleet_(fleet), options_(options) {
  if (options_.num_threads == 0) options_.num_threads = 1;
  if (options_.queue_depth == 0) options_.queue_depth = 1;
  options_.read_fraction = std::clamp(options_.read_fraction, 0.0, 1.0);

  if (options_.pattern == io::AccessPattern::kZipfian) {
    // YCSB ZipfianGenerator parameters; theta = 1 is a pole, so clamp.
    const double theta = std::clamp(options_.zipf_theta, 0.01, 0.99);
    const auto n = static_cast<double>(fleet_.num_blocks());
    // The cached io helper, not an inline O(n) pass: re-constructing a
    // driver per phase over the same fleet was paying the full harmonic
    // sum every time, and an independent summation here could drift
    // from the io driver's value for identical (n, theta).
    const double zetan = io::zipf_zetan(fleet_.num_blocks(), theta);
    zipf_zetan_ = zetan;
    zipf_zeta2_ = 1.0 + 1.0 / std::pow(2.0, theta);
    zipf_alpha_ = 1.0 / (1.0 - theta);
    zipf_eta_ = (1.0 - std::pow(2.0 / n, 1.0 - theta)) /
                (1.0 - zipf_zeta2_ / zetan);
    options_.zipf_theta = theta;
  }
}

std::uint64_t WorkloadDriver::zipf_sample(double u) const noexcept {
  const std::uint64_t n = fleet_.num_blocks();
  const double uz = u * zipf_zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, options_.zipf_theta)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n) *
      std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_));
  return std::min(rank, n - 1);
}

void WorkloadDriver::worker(std::uint32_t thread_index,
                            io::WorkloadStats& stats) const {
  const std::uint64_t n = fleet_.num_blocks();
  const std::uint32_t block_bytes = fleet_.block_bytes();
  // When any shard's backend is async, the batch's reads go out as one
  // Fleet::read_batch (each shard sees its sub-batch as one deep
  // submission); all-synchronous fleets gain nothing from batching, so
  // reads are issued one by one.
  const bool batch_reads = fleet_.any_async();
  std::mt19937_64 rng(options_.seed * 0x9E3779B97F4A7C15ull + thread_index);
  std::uniform_real_distribution<double> unit_dist(0.0, 1.0);

  std::vector<std::uint8_t> buffer(block_bytes);
  std::vector<std::uint8_t> expected(block_bytes);
  std::vector<std::uint64_t> batch(options_.queue_depth);
  std::vector<bool> is_read(options_.queue_depth);
  std::vector<std::uint64_t> read_addrs(options_.queue_depth);
  std::vector<std::uint8_t> read_bytes(
      static_cast<std::size_t>(options_.queue_depth) * block_bytes);
  std::vector<Status> read_statuses(options_.queue_depth);
  std::vector<ReadReceipt> read_receipts(options_.queue_depth);
  std::uint64_t cursor = (n / options_.num_threads) * thread_index;

  using clock = std::chrono::steady_clock;
  const auto elapsed_us = [](clock::time_point since) {
    return static_cast<std::uint32_t>(std::min<std::int64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                              since)
            .count(),
        std::numeric_limits<std::int64_t>::max()));
  };
  const auto tally_read = [&](std::uint64_t block, const Status& status,
                              const ReadReceipt& receipt,
                              std::span<const std::uint8_t> bytes,
                              std::uint32_t latency_us) {
    if (status.ok()) {
      ++stats.reads;
      stats.bytes_moved += block_bytes;
      stats.read_latency_us.push_back(latency_us);
      if (receipt.kind == api::ReadPlan::Kind::kDegraded)
        ++stats.degraded_reads;
      else
        ++stats.direct_reads;
      if (options_.verify_reads) {
        io::canonical_fill(block, options_.seed, expected);
        if (!std::equal(bytes.begin(), bytes.end(), expected.begin()))
          ++stats.verify_failures;
      }
    } else if (status.code() == StatusCode::kDataLoss) {
      ++stats.data_loss_ops;
    } else {
      ++stats.errors;
    }
  };

  std::uint64_t remaining = options_.ops_per_thread;
  while (remaining > 0) {
    const std::uint64_t batch_size =
        std::min<std::uint64_t>(options_.queue_depth, remaining);
    for (std::uint64_t i = 0; i < batch_size; ++i) {
      switch (options_.pattern) {
        case io::AccessPattern::kUniform:
          batch[i] = rng() % n;
          break;
        case io::AccessPattern::kSequential:
          batch[i] = cursor;
          cursor = (cursor + 1) % n;
          break;
        case io::AccessPattern::kZipfian:
          batch[i] = zipf_sample(unit_dist(rng));
          break;
      }
      is_read[i] = unit_dist(rng) < options_.read_fraction;
    }

    // Writes first, one by one (each is already a batched parity
    // transaction inside its shard store)...
    for (std::uint64_t i = 0; i < batch_size; ++i) {
      if (is_read[i]) continue;
      const std::uint64_t block = batch[i];
      io::canonical_fill(block, options_.seed, buffer);
      WriteReceipt receipt;
      const auto write_started = clock::now();
      const Status status = fleet_.write(block, buffer, &receipt);
      if (status.ok()) {
        ++stats.writes;
        stats.bytes_moved += block_bytes;
        stats.write_latency_us.push_back(elapsed_us(write_started));
        switch (receipt.kind) {
          case api::WritePlan::Kind::kReadModifyWrite:
            ++stats.rmw_writes;
            break;
          case api::WritePlan::Kind::kReconstructWrite:
            ++stats.reconstruct_writes;
            break;
          case api::WritePlan::Kind::kUnprotectedWrite:
            ++stats.unprotected_writes;
            break;
          case api::WritePlan::Kind::kUnrecoverable:
            break;
        }
      } else if (status.code() == StatusCode::kDataLoss) {
        ++stats.data_loss_ops;
      } else {
        ++stats.errors;
      }
    }

    // ...then the batch's reads, as one deep fan-out when any shard
    // serves asynchronously.
    std::uint32_t num_reads = 0;
    for (std::uint64_t i = 0; i < batch_size; ++i)
      if (is_read[i]) read_addrs[num_reads++] = batch[i];
    if (batch_reads && num_reads > 0) {
      const auto started = clock::now();
      (void)fleet_.read_batch(
          {read_addrs.data(), num_reads},
          {read_bytes.data(),
           static_cast<std::size_t>(num_reads) * block_bytes},
          {read_statuses.data(), num_reads},
          {read_receipts.data(), num_reads});
      // Batched reads complete together: the submission's wall time is
      // each op's caller-visible latency.
      const std::uint32_t latency = elapsed_us(started);
      ++stats.read_batches;
      stats.batched_reads += num_reads;
      for (std::uint32_t i = 0; i < num_reads; ++i)
        tally_read(read_addrs[i], read_statuses[i], read_receipts[i],
                   {read_bytes.data() +
                        static_cast<std::size_t>(i) * block_bytes,
                    block_bytes},
                   latency);
    } else {
      for (std::uint32_t i = 0; i < num_reads; ++i) {
        ReadReceipt receipt;
        const auto started = clock::now();
        const Status status = fleet_.read(read_addrs[i], buffer, &receipt);
        tally_read(read_addrs[i], status, receipt, buffer,
                   elapsed_us(started));
      }
    }
    remaining -= batch_size;
  }
}

io::WorkloadStats WorkloadDriver::run() {
  std::vector<io::WorkloadStats> per_thread(options_.num_threads);
  std::vector<std::thread> threads;
  threads.reserve(options_.num_threads);

  const auto start = std::chrono::steady_clock::now();
  for (std::uint32_t t = 0; t < options_.num_threads; ++t)
    threads.emplace_back(
        [this, t, &per_thread] { worker(t, per_thread[t]); });
  for (std::thread& thread : threads) thread.join();
  const auto end = std::chrono::steady_clock::now();

  io::WorkloadStats merged;
  for (const io::WorkloadStats& stats : per_thread) merged.merge(stats);
  merged.elapsed_seconds =
      std::chrono::duration<double>(end - start).count();
  return merged;
}

}  // namespace pdl::fleet
