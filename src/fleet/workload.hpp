#pragma once
// Fleet-level workload driver: the same traffic engine as
// io::WorkloadDriver (thread pool, read/write mix, uniform / sequential
// / YCSB-zipfian addresses, canonical-content verification, latency
// sampling), pointed at a fleet::Fleet instead of one StripeStore --
// so one run's addresses span every shard through the fleet router,
// zipfian hot spots land wherever the shard map puts them, and the
// stats feed the fleet benches (foreground MB/s and p99 under a
// rebuilding shard, governed vs not).
//
// The option/stat/content vocabulary is shared with the store-level
// driver on purpose (io::WorkloadOptions, io::WorkloadStats,
// io::canonical_fill): a fleet phase and a store phase of the same
// bench report through identical fields, and canonical bytes written
// through the fleet verify through either front door.

#include <cstdint>

#include "fleet/fleet.hpp"
#include "io/workload_driver.hpp"

namespace pdl::fleet {

/// Writes canonical content (io::canonical_fill) to every fleet block
/// in [first, last) -- the usual seeding step before a verifying or
/// read-mostly run.
[[nodiscard]] Status fill_canonical(Fleet& fleet, std::uint64_t first,
                                    std::uint64_t last, std::uint64_t seed);

/// io::WorkloadDriver's fleet twin.  Addresses are fleet blocks;
/// everything else (mix, patterns, verification, latency quantiles)
/// behaves exactly like the store-level driver.
class WorkloadDriver {
 public:
  /// The fleet must outlive the driver; run() may be called repeatedly
  /// (e.g. once per phase of a failure scenario).
  WorkloadDriver(Fleet& fleet, io::WorkloadOptions options);

  /// Spawns num_threads workers, runs ops_per_thread ops on each,
  /// joins, and returns the merged stats (elapsed_seconds is wall time
  /// of the whole run, counted once).
  [[nodiscard]] io::WorkloadStats run();

 private:
  Fleet& fleet_;
  io::WorkloadOptions options_;
  // Precomputed zipfian parameters (YCSB ZipfianGenerator shape).
  double zipf_zetan_ = 0;
  double zipf_zeta2_ = 0;
  double zipf_alpha_ = 0;
  double zipf_eta_ = 0;

  void worker(std::uint32_t thread_index, io::WorkloadStats& stats) const;
  [[nodiscard]] std::uint64_t zipf_sample(double u) const noexcept;
};

}  // namespace pdl::fleet
