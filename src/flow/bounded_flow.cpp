#include "flow/bounded_flow.hpp"

#include <limits>
#include <stdexcept>

namespace pdl::flow {

BoundedFlowProblem::BoundedFlowProblem(std::size_t num_nodes)
    : num_nodes_(num_nodes) {}

std::size_t BoundedFlowProblem::add_node() { return num_nodes_++; }

std::size_t BoundedFlowProblem::add_edge(std::size_t from, std::size_t to,
                                         FlowValue lower, FlowValue upper) {
  if (from >= num_nodes_ || to >= num_nodes_)
    throw std::invalid_argument("BoundedFlowProblem: node out of range");
  if (lower < 0 || lower > upper)
    throw std::invalid_argument("BoundedFlowProblem: need 0 <= lower <= upper");
  edges_.push_back({from, to, lower, upper});
  return edges_.size() - 1;
}

std::optional<FlowValue> BoundedFlowProblem::solve_max_flow(std::size_t s,
                                                            std::size_t t) {
  if (s >= num_nodes_ || t >= num_nodes_ || s == t)
    throw std::invalid_argument("BoundedFlowProblem: bad terminals");

  // Transformed network: original nodes, plus super source S and super
  // sink T.  Each edge (u, v, [l, u_cap]) becomes (u, v, u_cap - l) with
  // node imbalances excess[v] += l, excess[u] -= l.  A circulation edge
  // t -> s with infinite capacity turns the s-t flow problem into a
  // circulation problem.
  FlowNetwork net(num_nodes_ + 2);
  const std::size_t super_s = num_nodes_;
  const std::size_t super_t = num_nodes_ + 1;
  constexpr FlowValue kInf = std::numeric_limits<FlowValue>::max() / 4;

  std::vector<FlowValue> excess(num_nodes_, 0);
  for (auto& e : edges_) {
    e.inner_edge_id = net.add_edge(e.from, e.to, e.upper - e.lower);
    excess[e.to] += e.lower;
    excess[e.from] -= e.lower;
  }
  const std::size_t circulation_edge = net.add_edge(t, s, kInf);

  FlowValue required = 0;
  for (std::size_t node = 0; node < num_nodes_; ++node) {
    if (excess[node] > 0) {
      net.add_edge(super_s, node, excess[node]);
      required += excess[node];
    } else if (excess[node] < 0) {
      net.add_edge(node, super_t, -excess[node]);
    }
  }

  if (net.max_flow(super_s, super_t) != required) return std::nullopt;

  // Feasible.  The flow on the circulation edge is the current s->t value;
  // freeze it (both residual directions) and augment s->t directly to
  // maximize.  Freezing is essential: leaving the reverse residual open
  // would let the augmenting search "find" s->t flow by cancelling the
  // circulation, double-counting the base value.
  const FlowValue base = net.flow_on(circulation_edge);
  net.freeze_edge(circulation_edge);
  const FlowValue extra = net.max_flow(s, t);

  solved_ = std::move(net);
  return base + extra;
}

FlowValue BoundedFlowProblem::flow_on(std::size_t edge_id) const {
  if (!solved_) throw std::logic_error("BoundedFlowProblem: not solved");
  const BoundedEdge& e = edges_.at(edge_id);
  return e.lower + solved_->flow_on(e.inner_edge_id);
}

}  // namespace pdl::flow
