#pragma once
// Maximum flow with per-edge lower bounds, via the standard super-source /
// super-sink reduction.  This is the machinery behind the paper's parity
// assignment graphs, whose disk->sink edges carry bounds
// [floor(L(d)), ceil(L(d))] (Section 4, Theorem 13).

#include <cstdint>
#include <optional>
#include <vector>

#include "flow/dinic.hpp"

namespace pdl::flow {

/// A flow problem whose edges carry [lower, upper] bounds.
class BoundedFlowProblem {
 public:
  explicit BoundedFlowProblem(std::size_t num_nodes = 0);

  std::size_t add_node();
  [[nodiscard]] std::size_t num_nodes() const noexcept { return num_nodes_; }

  /// Adds an edge with bounds 0 <= lower <= upper; returns its edge id.
  std::size_t add_edge(std::size_t from, std::size_t to, FlowValue lower,
                       FlowValue upper);

  /// Finds a maximum s->t flow satisfying all bounds.  Returns nullopt if no
  /// feasible flow exists; otherwise the max flow value.  The resulting
  /// integral per-edge flows are available via flow_on.
  std::optional<FlowValue> solve_max_flow(std::size_t s, std::size_t t);

  /// Flow on an edge (valid after a successful solve).
  [[nodiscard]] FlowValue flow_on(std::size_t edge_id) const;

 private:
  struct BoundedEdge {
    std::size_t from, to;
    FlowValue lower, upper;
    std::size_t inner_edge_id = 0;  // edge in the transformed network
  };

  std::size_t num_nodes_;
  std::vector<BoundedEdge> edges_;
  std::optional<FlowNetwork> solved_;
};

}  // namespace pdl::flow
