#include "flow/dinic.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

namespace pdl::flow {

FlowNetwork::FlowNetwork(std::size_t num_nodes) : adjacency_(num_nodes) {}

std::size_t FlowNetwork::add_node() {
  adjacency_.emplace_back();
  return adjacency_.size() - 1;
}

std::size_t FlowNetwork::add_edge(std::size_t from, std::size_t to,
                                  FlowValue capacity) {
  if (from >= num_nodes() || to >= num_nodes())
    throw std::invalid_argument("FlowNetwork::add_edge: node out of range");
  if (capacity < 0)
    throw std::invalid_argument("FlowNetwork::add_edge: negative capacity");
  adjacency_[from].push_back(
      {to, adjacency_[to].size(), capacity, capacity});
  adjacency_[to].push_back(
      {from, adjacency_[from].size() - 1, 0, 0});
  edge_index_.emplace_back(from, adjacency_[from].size() - 1);
  return edge_index_.size() - 1;
}

bool FlowNetwork::bfs_level_graph(std::size_t source, std::size_t sink) {
  level_.assign(num_nodes(), -1);
  std::queue<std::size_t> queue;
  level_[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop();
    for (const Edge& e : adjacency_[u]) {
      if (e.capacity > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[u] + 1;
        queue.push(e.to);
      }
    }
  }
  return level_[sink] >= 0;
}

FlowValue FlowNetwork::dfs_augment(std::size_t node, std::size_t sink,
                                   FlowValue limit) {
  if (node == sink) return limit;
  for (std::size_t& i = iter_[node]; i < adjacency_[node].size(); ++i) {
    Edge& e = adjacency_[node][i];
    if (e.capacity <= 0 || level_[e.to] != level_[node] + 1) continue;
    const FlowValue pushed =
        dfs_augment(e.to, sink, std::min(limit, e.capacity));
    if (pushed > 0) {
      e.capacity -= pushed;
      adjacency_[e.to][e.rev].capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

FlowValue FlowNetwork::max_flow(std::size_t source, std::size_t sink) {
  if (source >= num_nodes() || sink >= num_nodes())
    throw std::invalid_argument("FlowNetwork::max_flow: node out of range");
  if (source == sink)
    throw std::invalid_argument("FlowNetwork::max_flow: source == sink");
  FlowValue total = 0;
  while (bfs_level_graph(source, sink)) {
    iter_.assign(num_nodes(), 0);
    while (true) {
      const FlowValue pushed = dfs_augment(
          source, sink, std::numeric_limits<FlowValue>::max());
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

FlowValue FlowNetwork::flow_on(std::size_t edge_id) const {
  const auto [node, slot] = edge_index_.at(edge_id);
  const Edge& e = adjacency_[node][slot];
  return e.original_capacity - e.capacity;
}

FlowValue FlowNetwork::capacity_of(std::size_t edge_id) const {
  const auto [node, slot] = edge_index_.at(edge_id);
  return adjacency_[node][slot].original_capacity;
}

void FlowNetwork::set_capacity(std::size_t edge_id, FlowValue capacity) {
  if (capacity < 0)
    throw std::invalid_argument("FlowNetwork::set_capacity: negative");
  const auto [node, slot] = edge_index_.at(edge_id);
  Edge& e = adjacency_[node][slot];
  const FlowValue flow = e.original_capacity - e.capacity;
  e.original_capacity = capacity;
  e.capacity = capacity - flow;
}

void FlowNetwork::freeze_edge(std::size_t edge_id) {
  const auto [node, slot] = edge_index_.at(edge_id);
  Edge& e = adjacency_[node][slot];
  const FlowValue flow = e.original_capacity - e.capacity;
  e.original_capacity = flow;  // flow_on still reports `flow`
  e.capacity = 0;              // no more forward flow
  adjacency_[e.to][e.rev].capacity = 0;  // and no cancellation
}

}  // namespace pdl::flow
