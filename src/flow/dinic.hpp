#pragma once
// Dinic's maximum-flow algorithm on integer capacities.  Used for the
// parity-assignment graphs of Section 4 (where it returns the integral
// maximum flows Theorems 13/14 rely on) and for the bipartite matchings of
// Theorem 9.

#include <cstdint>
#include <vector>

namespace pdl::flow {

using FlowValue = std::int64_t;

/// A directed flow network with integer capacities.  Nodes are dense
/// indices; edges are added once and retain stable ids so callers can read
/// per-edge flow after solving.
class FlowNetwork {
 public:
  explicit FlowNetwork(std::size_t num_nodes = 0);

  /// Adds an isolated node, returning its index.
  std::size_t add_node();

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return adjacency_.size();
  }

  /// Adds an edge with the given capacity (>= 0); returns its edge id.
  std::size_t add_edge(std::size_t from, std::size_t to, FlowValue capacity);

  /// Computes a maximum flow from source to sink (Dinic).  May be called
  /// again after adding edges; flow accumulates on the existing solution.
  FlowValue max_flow(std::size_t source, std::size_t sink);

  /// Flow currently assigned to an edge (valid after max_flow).
  [[nodiscard]] FlowValue flow_on(std::size_t edge_id) const;

  /// The capacity the edge was created with.
  [[nodiscard]] FlowValue capacity_of(std::size_t edge_id) const;

  /// Overwrites an edge's capacity (flow is preserved; callers are
  /// responsible for keeping flow <= capacity).
  void set_capacity(std::size_t edge_id, FlowValue capacity);

  /// Freezes an edge at its current flow: subsequent max_flow calls can
  /// neither add flow to it nor cancel flow already on it (both residual
  /// directions are zeroed).  flow_on keeps reporting the frozen amount.
  void freeze_edge(std::size_t edge_id);

 private:
  struct Edge {
    std::size_t to;
    std::size_t rev;  // index of the reverse edge in adjacency_[to]
    FlowValue capacity;
    FlowValue original_capacity;
  };

  bool bfs_level_graph(std::size_t source, std::size_t sink);
  FlowValue dfs_augment(std::size_t node, std::size_t sink, FlowValue limit);

  std::vector<std::vector<Edge>> adjacency_;
  std::vector<std::pair<std::size_t, std::size_t>> edge_index_;  // node, slot
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace pdl::flow
