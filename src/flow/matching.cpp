#include "flow/matching.hpp"

namespace pdl::flow {

namespace {

bool try_augment(std::size_t left,
                 std::span<const std::vector<std::uint32_t>> adjacency,
                 std::vector<std::int64_t>& match_right,
                 std::vector<bool>& visited) {
  for (const std::uint32_t right : adjacency[left]) {
    if (visited[right]) continue;
    visited[right] = true;
    if (match_right[right] < 0 ||
        try_augment(static_cast<std::size_t>(match_right[right]), adjacency,
                    match_right, visited)) {
      match_right[right] = static_cast<std::int64_t>(left);
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<std::int64_t> max_bipartite_matching(
    std::span<const std::vector<std::uint32_t>> adjacency,
    std::uint32_t num_right) {
  std::vector<std::int64_t> match_right(num_right, -1);
  std::vector<std::int64_t> match_left(adjacency.size(), -1);
  std::vector<bool> visited(num_right);
  for (std::size_t l = 0; l < adjacency.size(); ++l) {
    visited.assign(num_right, false);
    try_augment(l, adjacency, match_right, visited);
  }
  for (std::uint32_t r = 0; r < num_right; ++r) {
    if (match_right[r] >= 0) match_left[match_right[r]] = r;
  }
  return match_left;
}

}  // namespace pdl::flow
