#pragma once
// Maximum bipartite matching (Kuhn's augmenting-path algorithm).  Used by
// Theorem 9's disk-removal construction to re-place the i(i-1) orphaned
// parity units so that no surviving disk receives more than one of them.

#include <cstdint>
#include <span>
#include <vector>

namespace pdl::flow {

/// Computes a maximum matching in the bipartite graph where left vertex l
/// is adjacent to the right vertices in adjacency[l].  Returns, per left
/// vertex, the matched right vertex or -1 if unmatched.
[[nodiscard]] std::vector<std::int64_t> max_bipartite_matching(
    std::span<const std::vector<std::uint32_t>> adjacency,
    std::uint32_t num_right);

}  // namespace pdl::flow
