#include "flow/parity_assign.hpp"

#include <numeric>
#include <stdexcept>

#include "flow/bounded_flow.hpp"

namespace pdl::flow {

ParityLoads parity_loads(std::span<const std::vector<std::uint32_t>> stripes,
                         std::uint32_t num_disks,
                         std::span<const std::uint32_t> cs) {
  if (!cs.empty() && cs.size() != stripes.size())
    throw std::invalid_argument("parity_loads: cs size mismatch");

  // Common denominator: lcm of the distinct stripe sizes.
  std::uint64_t denom = 1;
  for (const auto& stripe : stripes) {
    if (stripe.empty()) throw std::invalid_argument("parity_loads: empty stripe");
    denom = std::lcm(denom, static_cast<std::uint64_t>(stripe.size()));
  }

  ParityLoads loads;
  loads.denominator = denom;
  loads.numerators.assign(num_disks, 0);
  for (std::size_t s = 0; s < stripes.size(); ++s) {
    const std::uint64_t c = cs.empty() ? 1 : cs[s];
    const std::uint64_t share = c * (denom / stripes[s].size());
    for (const std::uint32_t d : stripes[s]) {
      if (d >= num_disks)
        throw std::invalid_argument("parity_loads: disk id out of range");
      loads.numerators[d] += share;
    }
  }
  return loads;
}

ParityAssignment assign_distinguished_balanced(
    std::span<const std::vector<std::uint32_t>> stripes,
    std::uint32_t num_disks, std::span<const std::uint32_t> cs) {
  if (!cs.empty() && cs.size() != stripes.size())
    throw std::invalid_argument("assign_distinguished_balanced: cs mismatch");
  const ParityLoads loads = parity_loads(stripes, num_disks, cs);

  // Node layout: 0 = source, 1..b = stripes, b+1..b+v = disks, b+v+1 = sink.
  const std::size_t b = stripes.size();
  BoundedFlowProblem problem(b + num_disks + 2);
  const std::size_t source = 0;
  const std::size_t sink = b + num_disks + 1;
  auto stripe_node = [&](std::size_t s) { return 1 + s; };
  auto disk_node = [&](std::uint32_t d) { return 1 + b + d; };

  std::uint64_t total = 0;
  for (std::size_t s = 0; s < b; ++s) {
    const FlowValue c = cs.empty() ? 1 : cs[s];
    if (c < 0 || static_cast<std::size_t>(c) > stripes[s].size())
      throw std::invalid_argument(
          "assign_distinguished_balanced: cs[s] must be <= stripe size");
    problem.add_edge(source, stripe_node(s), c, c);
    total += static_cast<std::uint64_t>(c);
  }

  // Incidence edges; remember edge ids to read the assignment back.
  std::vector<std::vector<std::size_t>> incidence_edges(b);
  for (std::size_t s = 0; s < b; ++s) {
    incidence_edges[s].reserve(stripes[s].size());
    for (const std::uint32_t d : stripes[s]) {
      incidence_edges[s].push_back(
          problem.add_edge(stripe_node(s), disk_node(d), 0, 1));
    }
  }
  for (std::uint32_t d = 0; d < num_disks; ++d) {
    problem.add_edge(disk_node(d), sink,
                     static_cast<FlowValue>(loads.floor_of(d)),
                     static_cast<FlowValue>(loads.ceil_of(d)));
  }

  const auto value = problem.solve_max_flow(source, sink);
  if (!value || static_cast<std::uint64_t>(*value) != total)
    throw std::logic_error(
        "assign_distinguished_balanced: flow infeasible (violates Thm 13)");

  ParityAssignment out;
  out.chosen.resize(b);
  out.per_disk.assign(num_disks, 0);
  for (std::size_t s = 0; s < b; ++s) {
    for (std::size_t pos = 0; pos < stripes[s].size(); ++pos) {
      if (problem.flow_on(incidence_edges[s][pos]) == 1) {
        out.chosen[s].push_back(static_cast<std::uint32_t>(pos));
        ++out.per_disk[stripes[s][pos]];
      }
    }
    const std::uint64_t expect = cs.empty() ? 1 : cs[s];
    if (out.chosen[s].size() != expect)
      throw std::logic_error(
          "assign_distinguished_balanced: stripe received wrong unit count");
  }
  return out;
}

ParityAssignment assign_parity_balanced(
    std::span<const std::vector<std::uint32_t>> stripes,
    std::uint32_t num_disks) {
  return assign_distinguished_balanced(stripes, num_disks, {});
}

std::uint64_t copies_for_perfect_balance(std::uint64_t b, std::uint64_t v) {
  if (b == 0 || v == 0)
    throw std::invalid_argument("copies_for_perfect_balance: b, v >= 1");
  return std::lcm(b, v) / b;
}

}  // namespace pdl::flow
