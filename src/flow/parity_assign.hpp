#pragma once
// The paper's network-flow parity-distribution method (Section 4).
//
// Given any partition of a disk array into stripes (each crossing a disk at
// most once), build the parity assignment graph -- source->stripe edges of
// capacity 1, stripe->disk incidence edges of capacity 1, and disk->sink
// edges bounded by [floor(L(d)), ceil(L(d))] where L(d) = sum_{s crossing d}
// 1/k_s -- and read a parity unit per stripe off an integral maximum flow.
//
// Theorem 14: every disk then holds floor(L(d)) or ceil(L(d)) parity units.
// Corollary 16: with a fixed stripe size, every disk holds floor(b/v) or
// ceil(b/v).  Corollary 17: perfect balance is possible iff v | b, which
// proves Holland & Gibson's lcm conjecture.

#include <cstdint>
#include <span>
#include <vector>

namespace pdl::flow {

/// Result of a balanced distinguished-unit assignment.
struct ParityAssignment {
  /// chosen[s] lists, per stripe s, the positions (indices into the
  /// stripe's disk list) selected to hold distinguished (parity) units.
  std::vector<std::vector<std::uint32_t>> chosen;
  /// per_disk[d] is the number of distinguished units assigned to disk d.
  std::vector<std::uint32_t> per_disk;
};

/// The parity load L(d) of each disk, as exact rationals with a common
/// denominator: returns {numerators, denominator} with
/// L(d) = numerators[d] / denominator.
struct ParityLoads {
  std::vector<std::uint64_t> numerators;
  std::uint64_t denominator = 1;

  [[nodiscard]] std::uint64_t floor_of(std::size_t d) const {
    return numerators[d] / denominator;
  }
  [[nodiscard]] std::uint64_t ceil_of(std::size_t d) const {
    return (numerators[d] + denominator - 1) / denominator;
  }
};

/// Computes L(d) (optionally with per-stripe counts c_s; cs empty = all 1).
[[nodiscard]] ParityLoads parity_loads(
    std::span<const std::vector<std::uint32_t>> stripes,
    std::uint32_t num_disks, std::span<const std::uint32_t> cs = {});

/// Theorem 14: chooses one parity unit per stripe such that disk d receives
/// floor(L(d)) or ceil(L(d)) parity units.  Stripes are given as lists of
/// distinct disk ids < num_disks.  Throws std::logic_error if the flow
/// solver fails (cannot happen for valid input, per Theorem 13).
[[nodiscard]] ParityAssignment assign_parity_balanced(
    std::span<const std::vector<std::uint32_t>> stripes,
    std::uint32_t num_disks);

/// The extension after Theorem 14: chooses cs[s] distinguished units from
/// each stripe s with the same per-disk floor/ceil guarantee on
/// L(d) = sum cs[s]/k_s.  Used e.g. for distributed sparing studies.
[[nodiscard]] ParityAssignment assign_distinguished_balanced(
    std::span<const std::vector<std::uint32_t>> stripes,
    std::uint32_t num_disks, std::span<const std::uint32_t> cs);

/// Corollary 17 / the Holland-Gibson lcm conjecture: the number of copies of
/// a b-block design needed before parity can be balanced perfectly over v
/// disks, namely lcm(b, v)/b.
[[nodiscard]] std::uint64_t copies_for_perfect_balance(std::uint64_t b,
                                                       std::uint64_t v);

}  // namespace pdl::flow
