#include "io/async_backend.hpp"

// Engine internals.  One DiskQueue per disk: a mutex-guarded pending
// list the schedulers pick from, drained by one worker thread.  The
// worker gathers a dispatch chain (scheduler pick + adjacent-range
// coalescing), then executes it either through the inner backend's
// read/write (thread-pool engine) or as part of an io_uring wave when
// the build, the kernel, and the inner backend's native handles allow.
//
// Completion = write the request's status, decrement its batch's
// remaining count under the batch mutex, notify waiters.  All caller
// visibility (statuses, read payloads) synchronizes through that mutex.

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#ifdef PDL_HAVE_IO_URING
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace pdl::io {

namespace {

/// Grow-only 4096-aligned buffer for merged-op staging (worker-owned,
/// no locking).  aligned_alloc demands size % alignment == 0.
class AlignedBuffer {
 public:
  static constexpr std::size_t kAlignment = 4096;

  AlignedBuffer() = default;
  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(other.data_), capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.capacity_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      std::free(data_);
      data_ = other.data_;
      capacity_ = other.capacity_;
      other.data_ = nullptr;
      other.capacity_ = 0;
    }
    return *this;
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  ~AlignedBuffer() { std::free(data_); }

  [[nodiscard]] std::span<std::uint8_t> get(std::size_t size) {
    if (size > capacity_) {
      std::free(data_);
      capacity_ = (size + kAlignment - 1) / kAlignment * kAlignment;
      data_ = static_cast<std::uint8_t*>(
          std::aligned_alloc(kAlignment, capacity_));
      if (data_ == nullptr) {
        capacity_ = 0;
        throw std::bad_alloc();
      }
    }
    return {data_, size};
  }

 private:
  std::uint8_t* data_ = nullptr;
  std::size_t capacity_ = 0;
};

}  // namespace

// ----------------------------------------------------------- batch state

struct AsyncDiskBackend::Submission::State {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t remaining = 0;
  Status first_error;
};

AsyncDiskBackend::Submission::~Submission() {
  if (!state_) return;
  std::unique_lock lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->remaining == 0; });
}

// ------------------------------------------------------------------ impl

namespace {

struct Node {
  IoRequest* request = nullptr;
  std::shared_ptr<AsyncDiskBackend::Submission::State> batch;
  std::uint64_t seq = 0;
  std::uint64_t enqueue_us = 0;
  /// The engine's completed-requests counter, bumped BEFORE the batch
  /// waiter wakes, so once wait() returns stats().completed accounts
  /// for every request of the waited batch.
  std::atomic<std::uint64_t>* completed = nullptr;
};

struct DiskQueue {
  std::mutex mutex;
  std::condition_variable wake;    ///< worker wakeups
  std::condition_variable drained; ///< drain() waiters
  std::vector<Node> pending;
  std::size_t in_flight = 0;  ///< nodes popped, not yet completed
  bool stop = false;
  std::unique_ptr<IoScheduler> scheduler;
  std::thread worker;
};

#ifdef PDL_HAVE_IO_URING

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

/// One raw (liburing-free) ring: setup + the three mmaps + typed
/// accessors.  Single-threaded use by its owning disk worker.
struct Uring {
  int fd = -1;
  void* sq_ring = MAP_FAILED;
  std::size_t sq_ring_len = 0;
  void* cq_ring = MAP_FAILED;
  std::size_t cq_ring_len = 0;
  io_uring_sqe* sqes = nullptr;
  std::size_t sqes_len = 0;
  bool single_mmap = false;

  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;

  [[nodiscard]] bool init(unsigned entries) {
    io_uring_params params{};
    fd = sys_io_uring_setup(entries, &params);
    if (fd < 0) return false;

    sq_ring_len = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    cq_ring_len =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) sq_ring_len = cq_ring_len = std::max(sq_ring_len,
                                                          cq_ring_len);
    sq_ring = ::mmap(nullptr, sq_ring_len, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
    if (sq_ring == MAP_FAILED) return destroy(), false;
    cq_ring = single_mmap
                  ? sq_ring
                  : ::mmap(nullptr, cq_ring_len, PROT_READ | PROT_WRITE,
                           MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
    if (cq_ring == MAP_FAILED) return destroy(), false;
    sqes_len = params.sq_entries * sizeof(io_uring_sqe);
    void* sqes_map = ::mmap(nullptr, sqes_len, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
    if (sqes_map == MAP_FAILED) return destroy(), false;
    sqes = static_cast<io_uring_sqe*>(sqes_map);

    auto* sq = static_cast<std::uint8_t*>(sq_ring);
    sq_head = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    sq_tail = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    sq_mask = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_array = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    auto* cq = static_cast<std::uint8_t*>(cq_ring);
    cq_head = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    cq_tail = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    cq_mask = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
    return true;
  }

  void destroy() noexcept {
    if (sqes != nullptr) ::munmap(sqes, sqes_len);
    if (cq_ring != MAP_FAILED && !single_mmap) ::munmap(cq_ring, cq_ring_len);
    if (sq_ring != MAP_FAILED) ::munmap(sq_ring, sq_ring_len);
    if (fd >= 0) ::close(fd);
    sqes = nullptr;
    cq_ring = sq_ring = MAP_FAILED;
    fd = -1;
  }

  ~Uring() { destroy(); }
};

/// Probe once whether this kernel lets us create rings at all (the
/// syscall may be absent or seccomp-blocked; both fail here).
[[nodiscard]] bool io_uring_available() {
  Uring probe;
  const bool ok = probe.init(4);
  return ok;
}

#endif  // PDL_HAVE_IO_URING

}  // namespace

struct AsyncDiskBackend::Impl {
  std::vector<std::unique_ptr<DiskQueue>> queues;
  std::uint64_t next_seq = 0;  ///< guarded by stats_mutex
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  bool uring_active = false;
  std::uint32_t uring_depth = 64;

  mutable std::mutex stats_mutex;
  AsyncBackendStats stats;  ///< all fields except `completed` (atomic below)
  /// Requests completed, counted in complete_node before the waiter
  /// wakes (the mutex-guarded fields are engine-side bookkeeping and
  /// may lag a wave behind).
  std::atomic<std::uint64_t> completed{0};

  [[nodiscard]] std::uint64_t now_us() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
  }
};

AsyncDiskBackend::AsyncDiskBackend(std::unique_ptr<DiskBackend> inner,
                                   AsyncBackendOptions options)
    : inner_(std::move(inner)),
      options_(std::move(options)),
      impl_(std::make_unique<Impl>()) {
  // Validate the policy name eagerly: a typo should fail at
  // construction, not first dispatch.
  (void)make_io_scheduler(options_.scheduler);
  impl_->uring_depth = std::max(1u, options_.uring_depth);
}

AsyncDiskBackend::~AsyncDiskBackend() {
  for (const auto& queue : impl_->queues) {
    std::lock_guard lock(queue->mutex);
    queue->stop = true;
    queue->wake.notify_all();
  }
  for (const auto& queue : impl_->queues)
    if (queue->worker.joinable()) queue->worker.join();
}

std::string_view AsyncDiskBackend::engine() const noexcept {
  return impl_->uring_active ? "io_uring" : "thread-pool";
}

AsyncBackendStats AsyncDiskBackend::stats() const {
  std::lock_guard lock(impl_->stats_mutex);
  AsyncBackendStats snapshot = impl_->stats;
  snapshot.completed = impl_->completed.load(std::memory_order_relaxed);
  return snapshot;
}

// ------------------------------------------------------------ completion

namespace {

/// Finishes one node: status, completion count, batch bookkeeping,
/// waiter wakeup -- in that order, so the count is visible to anyone
/// the wakeup releases.
void complete_node(const Node& node, const Status& status) {
  node.request->status = status;
  node.completed->fetch_add(1, std::memory_order_relaxed);
  auto& batch = *node.batch;
  std::lock_guard lock(batch.mutex);
  if (!status.ok() && batch.first_error.ok()) batch.first_error = status;
  if (--batch.remaining == 0) batch.cv.notify_all();
}

/// A dispatch chain: coalesced, offset-ascending, same-direction nodes.
struct Chain {
  std::vector<Node> nodes;
  std::uint64_t lo = 0;  ///< first byte
  std::uint64_t hi = 0;  ///< one past last byte

  [[nodiscard]] IoRequest::Op op() const noexcept {
    return nodes.front().request->op;
  }
  [[nodiscard]] std::uint64_t size() const noexcept { return hi - lo; }
};

/// Executes one chain through the inner backend's read/write (the
/// thread-pool engine, and the fallback path of the io_uring engine).
/// Merged chains stage through `staging`; every node gets the merged
/// op's status.
void execute_chain_inner(DiskBackend& inner, DiskId disk, Chain& chain,
                         AlignedBuffer& staging) {
  Status status;
  if (chain.nodes.size() == 1) {
    IoRequest& request = *chain.nodes.front().request;
    status = request.op == IoRequest::Op::kRead
                 ? inner.read(disk, request.offset, request.read_buf)
                 : inner.write(disk, request.offset, request.write_buf);
  } else if (chain.op() == IoRequest::Op::kWrite) {
    const auto buffer = staging.get(chain.size());
    for (const Node& node : chain.nodes)
      std::memcpy(buffer.data() + (node.request->offset - chain.lo),
                  node.request->write_buf.data(),
                  node.request->write_buf.size());
    status = inner.write(disk, chain.lo, buffer);
  } else {
    const auto buffer = staging.get(chain.size());
    status = inner.read(disk, chain.lo, buffer);
    if (status.ok())
      for (const Node& node : chain.nodes)
        std::memcpy(node.request->read_buf.data(),
                    buffer.data() + (node.request->offset - chain.lo),
                    node.request->read_buf.size());
  }
  for (const Node& node : chain.nodes) complete_node(node, status);
}

}  // namespace

// ------------------------------------------------------------ the worker

namespace {

/// Pops the scheduler's pick plus every exactly-adjacent same-direction
/// neighbour (when coalescing) from `pending`.  Caller holds the queue
/// lock.
[[nodiscard]] Chain gather_chain(DiskQueue& queue,
                                 const AsyncBackendOptions& options,
                                 std::vector<PendingIo>& view,
                                 std::uint64_t now_us) {
  view.clear();
  view.reserve(queue.pending.size());
  for (const Node& node : queue.pending)
    view.push_back({node.request->io_class, node.request->op,
                    node.request->offset, node.request->size(), node.seq,
                    node.enqueue_us});
  const std::size_t index = queue.scheduler->pick(view, now_us);
  assert(index < queue.pending.size());

  Chain chain;
  chain.nodes.push_back(queue.pending[index]);
  queue.pending.erase(queue.pending.begin() +
                      static_cast<std::ptrdiff_t>(index));
  chain.lo = chain.nodes.front().request->offset;
  chain.hi = chain.lo + chain.nodes.front().request->size();

  if (options.coalesce && chain.size() > 0) {
    bool grew = true;
    while (grew && chain.size() < options.max_coalesced_bytes) {
      grew = false;
      for (auto it = queue.pending.begin(); it != queue.pending.end(); ++it) {
        const IoRequest& request = *it->request;
        const std::uint64_t size = request.size();
        if (request.op != chain.op() || size == 0) continue;
        if (request.offset == chain.hi) {
          chain.nodes.push_back(*it);
          chain.hi += size;
        } else if (request.offset + size == chain.lo) {
          chain.nodes.insert(chain.nodes.begin(), *it);
          chain.lo -= size;
        } else {
          continue;
        }
        queue.pending.erase(it);
        grew = true;
        break;
      }
    }
  }
  queue.in_flight += chain.nodes.size();
  return chain;
}

#ifdef PDL_HAVE_IO_URING

/// Executes a wave of chains as one ring submission.  Chains the ring
/// cannot carry (zero-sized, misaligned under O_DIRECT) and chains
/// whose cqe reports an error or short transfer are redone through the
/// inner backend -- same bytes, same range, so the redo is idempotent
/// and its status is the truth.
void execute_wave_uring(DiskBackend& inner, Uring& ring, DiskId disk,
                        std::vector<Chain>& wave,
                        std::vector<AlignedBuffer>& slots,
                        AlignedBuffer& staging) {
  const int fd = inner.native_handle(disk);
  const std::uint32_t alignment = inner.io_alignment();
  if (slots.size() < wave.size())
    slots.resize(wave.size());  // AlignedBuffer is not copyable -- grow only

  // Partition: chains the ring can carry directly vs ones needing the
  // inner backend.  Merged chains stage through their wave slot
  // (4096-aligned, so only offset/size alignment can disqualify them).
  struct Flight {
    Chain* chain;
    std::uint8_t* buffer;
    std::uint64_t size;
  };
  std::vector<Flight> flights;
  flights.reserve(wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i) {
    Chain& chain = wave[i];
    const std::uint64_t size = chain.size();
    std::uint8_t* buffer = nullptr;
    if (chain.nodes.size() == 1) {
      IoRequest& request = *chain.nodes.front().request;
      buffer = request.op == IoRequest::Op::kRead
                   ? request.read_buf.data()
                   : const_cast<std::uint8_t*>(request.write_buf.data());
    } else {
      buffer = slots[i].get(size).data();
      if (chain.op() == IoRequest::Op::kWrite)
        for (const Node& node : chain.nodes)
          std::memcpy(buffer + (node.request->offset - chain.lo),
                      node.request->write_buf.data(),
                      node.request->write_buf.size());
    }
    const bool aligned =
        alignment <= 1 ||
        (chain.lo % alignment == 0 && size % alignment == 0 &&
         reinterpret_cast<std::uintptr_t>(buffer) % alignment == 0);
    if (size == 0 || !aligned) {
      execute_chain_inner(inner, disk, chain, staging);
      chain.nodes.clear();  // completed; skip in the reap phase
      continue;
    }
    flights.push_back({&chain, buffer, size});
  }
  if (flights.empty()) return;

  // Fill + submit all sqes in one io_uring_enter.
  unsigned tail = __atomic_load_n(ring.sq_tail, __ATOMIC_RELAXED);
  for (std::size_t i = 0; i < flights.size(); ++i) {
    const Flight& flight = flights[i];
    const unsigned slot = tail & ring.sq_mask;
    io_uring_sqe& sqe = ring.sqes[slot];
    std::memset(&sqe, 0, sizeof sqe);
    sqe.opcode = flight.chain->op() == IoRequest::Op::kRead ? IORING_OP_READ
                                                            : IORING_OP_WRITE;
    sqe.fd = fd;
    sqe.addr = reinterpret_cast<std::uint64_t>(flight.buffer);
    sqe.len = static_cast<std::uint32_t>(flight.size);
    sqe.off = flight.chain->lo;
    sqe.user_data = i;
    ring.sq_array[slot] = slot;
    ++tail;
  }
  __atomic_store_n(ring.sq_tail, tail, __ATOMIC_RELEASE);

  const auto enter = [&](unsigned to_submit, unsigned min_complete) {
    int ret;
    do {
      ret = sys_io_uring_enter(ring.fd, to_submit, min_complete,
                               IORING_ENTER_GETEVENTS);
    } while (ret < 0 && errno == EINTR);
    return ret;
  };
  std::vector<int> results(flights.size(), -EIO);
  const unsigned count = static_cast<unsigned>(flights.size());
  if (enter(count, count) < 0) {
    // Whole-wave submission failure (ring torn down, seccomp change):
    // fall back to the inner path per chain.
    for (const Flight& flight : flights)
      execute_chain_inner(inner, disk, *flight.chain, staging);
    return;
  }
  unsigned reaped = 0;
  while (reaped < count) {
    unsigned head = __atomic_load_n(ring.cq_head, __ATOMIC_RELAXED);
    const unsigned cq_tail = __atomic_load_n(ring.cq_tail, __ATOMIC_ACQUIRE);
    while (head != cq_tail && reaped < count) {
      const io_uring_cqe& cqe = ring.cqes[head & ring.cq_mask];
      if (cqe.user_data < results.size())
        results[static_cast<std::size_t>(cqe.user_data)] = cqe.res;
      ++head;
      ++reaped;
    }
    __atomic_store_n(ring.cq_head, head, __ATOMIC_RELEASE);
    if (reaped < count && enter(0, count - reaped) < 0) break;
  }

  for (std::size_t i = 0; i < flights.size(); ++i) {
    Chain& chain = *flights[i].chain;
    const int res = results[i];
    if (res < 0 || static_cast<std::uint64_t>(res) != flights[i].size) {
      execute_chain_inner(inner, disk, chain, staging);
      continue;
    }
    if (chain.op() == IoRequest::Op::kRead && chain.nodes.size() > 1)
      for (const Node& node : chain.nodes)
        std::memcpy(node.request->read_buf.data(),
                    flights[i].buffer + (node.request->offset - chain.lo),
                    node.request->read_buf.size());
    for (const Node& node : chain.nodes) complete_node(node, OkStatus());
  }
}

#endif  // PDL_HAVE_IO_URING

}  // namespace

void AsyncDiskBackend::worker_loop(DiskId disk) {
  DiskQueue& queue = *impl_->queues[disk];
  AlignedBuffer staging;
  std::vector<PendingIo> view;
  std::vector<Chain> wave;

#ifdef PDL_HAVE_IO_URING
  Uring ring;
  const bool use_uring = impl_->uring_active &&
                         inner_->native_handle(disk) >= 0 &&
                         ring.init(impl_->uring_depth);
  std::vector<AlignedBuffer> wave_staging;  ///< one slot per in-flight chain
#else
  constexpr bool use_uring = false;
#endif

  for (;;) {
    wave.clear();
    {
      std::unique_lock lock(queue.mutex);
      queue.wake.wait(lock,
                      [&] { return queue.stop || !queue.pending.empty(); });
      if (queue.pending.empty()) break;  // stop requested, queue drained
      // Gather one chain always; with a real ring, drain up to a full
      // wave of chains so they fly as one submission.
      const std::size_t wave_limit = use_uring ? impl_->uring_depth : 1;
      while (!queue.pending.empty() && wave.size() < wave_limit)
        wave.push_back(
            gather_chain(queue, options_, view, impl_->now_us()));
    }

    std::uint64_t requests = 0;
    for (const Chain& chain : wave) requests += chain.nodes.size();

#ifdef PDL_HAVE_IO_URING
    if (use_uring)
      execute_wave_uring(*inner_, ring, disk, wave, wave_staging, staging);
    else
#endif
      for (Chain& chain : wave)
        execute_chain_inner(*inner_, disk, chain, staging);

    {
      std::lock_guard lock(impl_->stats_mutex);
      impl_->stats.substrate_ops += wave.size();
      impl_->stats.coalesced += requests - wave.size();
    }
    {
      std::lock_guard lock(queue.mutex);
      queue.in_flight -= requests;
      if (queue.pending.empty() && queue.in_flight == 0)
        queue.drained.notify_all();
    }
  }
}

// ------------------------------------------------------ public interface

Status AsyncDiskBackend::open(const BackendGeometry& geometry) {
  if (!impl_->queues.empty())
    return Status::failed_precondition("async backend: already open");
  if (Status opened = inner_->open(geometry); !opened.ok()) return opened;

#ifdef PDL_HAVE_IO_URING
  if (options_.try_io_uring) {
    bool any_handle = false;
    for (DiskId disk = 0; disk < geometry.num_disks && !any_handle; ++disk)
      any_handle = inner_->native_handle(disk) >= 0;
    impl_->uring_active = any_handle && io_uring_available();
  }
#endif

  impl_->queues.reserve(geometry.num_disks);
  for (DiskId disk = 0; disk < geometry.num_disks; ++disk) {
    auto queue = std::make_unique<DiskQueue>();
    queue->scheduler = make_io_scheduler(options_.scheduler);
    impl_->queues.push_back(std::move(queue));
  }
  for (DiskId disk = 0; disk < geometry.num_disks; ++disk)
    impl_->queues[disk]->worker =
        std::thread([this, disk] { worker_loop(disk); });
  return OkStatus();
}

AsyncDiskBackend::Submission AsyncDiskBackend::submit(
    std::span<IoRequest> batch) {
  Submission submission;
  submission.state_ = std::make_shared<Submission::State>();
  submission.state_->remaining = batch.size();
  if (batch.empty()) return submission;

  const std::uint64_t now = impl_->now_us();
  std::uint64_t base_seq;
  {
    std::lock_guard lock(impl_->stats_mutex);
    base_seq = impl_->next_seq;
    impl_->next_seq += batch.size();
    ++impl_->stats.batches;
    impl_->stats.submitted += batch.size();
    for (const IoRequest& request : batch)
      ++impl_->stats.by_class[static_cast<std::size_t>(request.io_class)];
  }

  std::uint64_t max_depth = 0;
  std::size_t invalid = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    IoRequest& request = batch[i];
    if (request.disk >= impl_->queues.size()) {
      // Never reaches a queue: complete inline so waiters still see a
      // fully accounted batch.
      complete_node(Node{&request, submission.state_, 0, 0,
                         &impl_->completed},
                    Status::invalid_argument(
                        "async backend: disk " + std::to_string(request.disk) +
                        " out of range (" +
                        std::to_string(impl_->queues.size()) + " disks)"));
      ++invalid;
      continue;
    }
    DiskQueue& queue = *impl_->queues[request.disk];
    std::lock_guard lock(queue.mutex);
    queue.pending.push_back(Node{&request, submission.state_, base_seq + i,
                                 now, &impl_->completed});
    max_depth = std::max(max_depth,
                         static_cast<std::uint64_t>(queue.pending.size()));
    queue.wake.notify_one();
  }
  if (max_depth > 0 || invalid > 0) {
    std::lock_guard lock(impl_->stats_mutex);
    impl_->stats.max_disk_queue = std::max(impl_->stats.max_disk_queue,
                                           max_depth);
  }
  return submission;
}

Status AsyncDiskBackend::wait(Submission& submission) {
  if (!submission.state_) return OkStatus();
  auto& state = *submission.state_;
  std::unique_lock lock(state.mutex);
  state.cv.wait(lock, [&] { return state.remaining == 0; });
  return state.first_error;
}

Status AsyncDiskBackend::execute_batch(std::span<IoRequest> batch) {
  Submission submission = submit(batch);
  return wait(submission);
}

Status AsyncDiskBackend::read(DiskId disk, std::uint64_t offset,
                              std::span<std::uint8_t> out) {
  IoRequest request =
      IoRequest::read_of(IoClass::kForegroundRead, disk, offset, out);
  return execute_batch({&request, 1});
}

Status AsyncDiskBackend::write(DiskId disk, std::uint64_t offset,
                               std::span<const std::uint8_t> data) {
  IoRequest request =
      IoRequest::write_of(IoClass::kForegroundWrite, disk, offset, data);
  return execute_batch({&request, 1});
}

Status AsyncDiskBackend::drain(DiskId disk) {
  if (disk >= impl_->queues.size())
    return Status::invalid_argument("async backend: disk " +
                                    std::to_string(disk) + " out of range (" +
                                    std::to_string(impl_->queues.size()) +
                                    " disks)");
  DiskQueue& queue = *impl_->queues[disk];
  std::unique_lock lock(queue.mutex);
  queue.drained.wait(
      lock, [&] { return queue.pending.empty() && queue.in_flight == 0; });
  return OkStatus();
}

Status AsyncDiskBackend::sync(DiskId disk) {
  if (Status ok = drain(disk); !ok.ok()) return ok;
  return inner_->sync(disk);
}

Status AsyncDiskBackend::discard(DiskId disk, std::uint8_t fill) {
  if (Status ok = drain(disk); !ok.ok()) return ok;
  return inner_->discard(disk, fill);
}

std::unique_ptr<AsyncDiskBackend> make_async_backend(
    std::unique_ptr<DiskBackend> inner, AsyncBackendOptions options) {
  return std::make_unique<AsyncDiskBackend>(std::move(inner),
                                            std::move(options));
}

}  // namespace pdl::io
