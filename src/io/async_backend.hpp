#pragma once
/// @file
/// pdl::io::AsyncDiskBackend -- the async batched I/O engine.
///
/// A decorator that puts one submission queue in front of every disk of
/// an inner DiskBackend and drains each queue with a per-disk engine:
///
///   * io_uring (built under -DPDL_IO_URING, probed at runtime) when the
///     inner backend exposes native positioned-I/O handles
///     (DiskBackend::native_handle) -- a whole dispatch wave becomes one
///     ring submission, so a single disk carries many in-flight ops;
///   * a per-disk completion thread issuing the inner backend's
///     read/write everywhere else (memory backends, decorators, kernels
///     without io_uring) -- one op in flight per disk, cross-disk
///     parallelism from the fan-out.
///
/// On top of the queues the engine layers the two things a real array
/// wins with (ROADMAP "Async batched I/O engine"):
///
///   * **request coalescing** -- exactly-adjacent same-direction ranges
///     on one disk merge into a single substrate op (kernel-style
///     elevator batching; parity-stripe fan-ins and sequential scans
///     collapse into unit*k-sized transfers);
///   * **a pluggable per-disk IoScheduler** (io_scheduler.hpp) -- fifo,
///     deadline, or rebuild-deprioritizing dispatch over IoClass-tagged
///     requests, so rebuild traffic can be held behind foreground I/O
///     with a bounded delay.
///
/// ## API
/// The batched surface is submit() -> Submission token -> wait(); the
/// inherited synchronous read()/write() are submit-one-plus-wait, so
/// every existing DiskBackend caller works unchanged (just scheduled).
/// execute_batch() overrides the sequential default with a real batched
/// submission.
///
/// ## Contract amendments
/// Requests of outstanding batches complete concurrently and in
/// scheduler order, not submission order; the read/write thread-safety
/// contract therefore extends across a batch: no two requests of
/// outstanding batches may touch overlapping ranges with at least one
/// writing (StripeStore's shard locks provide exactly that).  Buffers
/// and the IoRequest array must stay alive until wait() returns (a
/// Submission's destructor waits, so dropping the token is safe, just
/// blocking).  sync() and discard() drain the disk's queue first, so
/// their ordering guarantees match the synchronous backend's.
/// memory_view() is empty by design: every byte must cross the queues
/// for scheduling and coalescing to apply.

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "core/status.hpp"
#include "io/disk_backend.hpp"
#include "io/io_scheduler.hpp"

namespace pdl::io {

/// Construction knobs for AsyncDiskBackend.
struct AsyncBackendOptions {
  /// Per-disk dispatch policy: "fifo", "deadline", or
  /// "rebuild-deprioritizing" (see make_io_scheduler).
  std::string scheduler = "fifo";
  /// Merge exactly-adjacent same-direction requests into one substrate
  /// op before dispatch.
  bool coalesce = true;
  /// Upper bound on one merged op (keeps staging buffers and latency
  /// outliers bounded).
  std::uint64_t max_coalesced_bytes = 1u << 20;
  /// Try the io_uring engine when compiled in and the inner backend
  /// exposes native handles; false forces the thread-pool engine.
  bool try_io_uring = true;
  /// Ring entries per disk == max in-flight ops one disk's io_uring
  /// wave may carry.
  std::uint32_t uring_depth = 64;
};

/// Monotonic counters of what the engine actually did (since open).
struct AsyncBackendStats {
  std::uint64_t submitted = 0;       ///< requests enqueued
  std::uint64_t completed = 0;       ///< requests completed
  std::uint64_t batches = 0;         ///< submit() calls
  std::uint64_t substrate_ops = 0;   ///< merged ops issued to the substrate
  std::uint64_t coalesced = 0;       ///< requests absorbed into a neighbour's op
  std::uint64_t max_disk_queue = 0;  ///< high-water pending count on one disk
  std::array<std::uint64_t, 4> by_class{};  ///< submitted, indexed by IoClass
};

/// The async batched I/O engine.  See the file comment for the model
/// and contract; construction is cheap, engines start at open().
class AsyncDiskBackend final : public DiskBackend {
 public:
  /// Wait token for one submit() call.  Movable, not copyable; the
  /// destructor waits for completion (buffers are only free after).
  class Submission {
   public:
    Submission() = default;
    Submission(Submission&&) noexcept = default;
    Submission& operator=(Submission&&) noexcept = default;
    Submission(const Submission&) = delete;
    Submission& operator=(const Submission&) = delete;
    ~Submission();

    /// Shared completion state (defined in async_backend.cpp; public so
    /// the engine internals can hold it, opaque to callers).
    struct State;

   private:
    friend class AsyncDiskBackend;
    std::shared_ptr<State> state_;
  };

  explicit AsyncDiskBackend(std::unique_ptr<DiskBackend> inner,
                            AsyncBackendOptions options = {});
  /// Drains every queue and joins the engines.
  ~AsyncDiskBackend() override;

  AsyncDiskBackend(const AsyncDiskBackend&) = delete;
  AsyncDiskBackend& operator=(const AsyncDiskBackend&) = delete;

  // ------------------------------------------------ DiskBackend surface

  [[nodiscard]] Status open(const BackendGeometry& geometry) override;
  /// Synchronous read = submit one kForegroundRead + wait.
  [[nodiscard]] Status read(DiskId disk, std::uint64_t offset,
                            std::span<std::uint8_t> out) override;
  /// Synchronous write = submit one kForegroundWrite + wait.
  [[nodiscard]] Status write(DiskId disk, std::uint64_t offset,
                             std::span<const std::uint8_t> data) override;
  /// Drains the disk's queue, then syncs the inner backend.
  [[nodiscard]] Status sync(DiskId disk) override;
  /// Drains the disk's queue, then discards on the inner backend.
  [[nodiscard]] Status discard(DiskId disk, std::uint8_t fill) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "async";
  }
  /// One real batched submission (submit + wait); returns the first
  /// non-OK request status, with per-request statuses in the batch.
  [[nodiscard]] Status execute_batch(std::span<IoRequest> batch) override;
  [[nodiscard]] bool async() const noexcept override { return true; }
  // Journal calls pass straight through to the substrate.  Safe with the
  // queues: the store calls journal_begin BEFORE submitting a batch's
  // writes and journal_commit after wait(), so the record always covers
  // writes that have not yet been (fully) issued.
  [[nodiscard]] bool journaled() const noexcept override {
    return inner_->journaled();
  }
  [[nodiscard]] Result<std::uint64_t> journal_begin(
      std::span<const IoRequest> batch) override {
    return inner_->journal_begin(batch);
  }
  [[nodiscard]] Status journal_commit(std::uint64_t token) override {
    return inner_->journal_commit(token);
  }

  // ------------------------------------------------- batched submission

  /// Enqueues every request onto its disk's queue and returns a wait
  /// token.  Requests complete concurrently, in scheduler order; see
  /// the contract amendments in the file comment for buffer lifetime
  /// and overlap rules.  Requests naming an out-of-range disk complete
  /// immediately with kInvalidArgument (they never reach a queue).
  [[nodiscard]] Submission submit(std::span<IoRequest> batch);

  /// Blocks until every request of `submission` has completed and
  /// returns the first non-OK request status (OkStatus when all
  /// succeeded).  Idempotent; a default-constructed token is OK.
  [[nodiscard]] Status wait(Submission& submission);

  // ------------------------------------------------------ introspection

  /// The decorated substrate.  Read-only surfaces are fair game;
  /// writing through it bypasses the queues.
  [[nodiscard]] DiskBackend& inner() noexcept { return *inner_; }
  /// Completion engine actually running: "io_uring" or "thread-pool"
  /// (decided at open(): compile gate, runtime probe, inner handles).
  [[nodiscard]] std::string_view engine() const noexcept;
  /// The per-disk scheduling policy's name.
  [[nodiscard]] std::string_view scheduler() const noexcept {
    return options_.scheduler;
  }
  /// Snapshot of the engine counters.
  [[nodiscard]] AsyncBackendStats stats() const;

 private:
  struct Impl;  ///< queues, engines, clock, stats

  /// One disk's drain loop (scheduler pick, coalescing, engine dispatch).
  void worker_loop(DiskId disk);
  /// Blocks until the disk's queue is empty and nothing is in flight.
  [[nodiscard]] Status drain(DiskId disk);

  std::unique_ptr<DiskBackend> inner_;
  AsyncBackendOptions options_;
  std::unique_ptr<Impl> impl_;
};

/// Convenience factory (the common construction spelling).
[[nodiscard]] std::unique_ptr<AsyncDiskBackend> make_async_backend(
    std::unique_ptr<DiskBackend> inner, AsyncBackendOptions options = {});

}  // namespace pdl::io
