#include "io/disk_backend.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>
#include <random>
#include <thread>

namespace pdl::io {

namespace detail {

Status check_range(std::string_view backend, DiskId disk,
                   std::uint64_t offset, std::uint64_t size,
                   const BackendGeometry& geometry) {
  if (disk < geometry.num_disks && offset <= geometry.disk_bytes &&
      size <= geometry.disk_bytes - offset)
    return OkStatus();
  if (disk >= geometry.num_disks)
    return Status::invalid_argument(std::string(backend) + ": disk " +
                                    std::to_string(disk) + " out of range (" +
                                    std::to_string(geometry.num_disks) +
                                    " disks)");
  return Status::invalid_argument(
      std::string(backend) + ": range [" + std::to_string(offset) + ", " +
      std::to_string(offset + size) + ") past disk end (" +
      std::to_string(geometry.disk_bytes) + " bytes)");
}

}  // namespace detail

std::string_view io_class_name(IoClass io_class) noexcept {
  switch (io_class) {
    case IoClass::kForegroundRead: return "fg-read";
    case IoClass::kForegroundWrite: return "fg-write";
    case IoClass::kRebuild: return "rebuild";
    case IoClass::kScrub: return "scrub";
  }
  return "?";
}

Status DiskBackend::execute_batch(std::span<IoRequest> batch) {
  // Sequential reference semantics: every backend is batched-capable.
  // Failed requests do not abort their batchmates (they are independent
  // units); the first failure is the aggregate return.
  Status first;
  for (IoRequest& request : batch) {
    request.status = request.op == IoRequest::Op::kRead
                         ? read(request.disk, request.offset, request.read_buf)
                         : write(request.disk, request.offset,
                                 request.write_buf);
    if (!request.status.ok() && first.ok()) first = request.status;
  }
  return first;
}

// ---------------------------------------------------------------- memory

Status MemoryBackend::check(DiskId disk, std::uint64_t offset,
                            std::uint64_t size) const {
  return detail::check_range(name(), disk, offset, size, geometry_);
}

Status MemoryBackend::open(const BackendGeometry& geometry) {
  if (geometry.num_disks == 0)
    return Status::invalid_argument("memory backend: zero disks");
  geometry_ = geometry;
  disks_.assign(geometry.num_disks,
                std::vector<std::uint8_t>(geometry.disk_bytes, 0));
  return OkStatus();
}

Status MemoryBackend::read(DiskId disk, std::uint64_t offset,
                           std::span<std::uint8_t> out) {
  if (Status ok = check(disk, offset, out.size()); !ok.ok()) return ok;
  std::memcpy(out.data(), disks_[disk].data() + offset, out.size());
  return OkStatus();
}

Status MemoryBackend::write(DiskId disk, std::uint64_t offset,
                            std::span<const std::uint8_t> data) {
  if (Status ok = check(disk, offset, data.size()); !ok.ok()) return ok;
  std::memcpy(disks_[disk].data() + offset, data.data(), data.size());
  return OkStatus();
}

Status MemoryBackend::sync(DiskId disk) {
  return check(disk, 0, 0);  // memory is always "durable"
}

Status MemoryBackend::discard(DiskId disk, std::uint8_t fill) {
  if (Status ok = check(disk, 0, 0); !ok.ok()) return ok;
  std::fill(disks_[disk].begin(), disks_[disk].end(), fill);
  return OkStatus();
}

std::span<std::uint8_t> MemoryBackend::memory_view(DiskId disk) noexcept {
  if (disk >= disks_.size()) return {};
  return disks_[disk];
}

// ------------------------------------------------------- fault injection

struct FaultInjectionBackend::Impl {
  mutable std::mutex mutex;
  std::mt19937_64 rng;
  std::uniform_real_distribution<double> unit{0.0, 1.0};
  FaultInjectionStats stats;
  /// Scripted rot ordinals: the options' list plus arm_rot_on_reads()
  /// appends, consulted under the mutex so runtime arming is race-free.
  std::vector<std::uint64_t> rot_read_ops;

  explicit Impl(std::uint64_t seed) : rng(seed) {}
};

FaultInjectionBackend::FaultInjectionBackend(
    std::unique_ptr<DiskBackend> inner, const FaultInjectionOptions& options)
    : inner_(std::move(inner)),
      options_(options),
      impl_(std::make_unique<Impl>(options.seed)) {
  impl_->rot_read_ops = options_.rot_read_ops;
}

FaultInjectionBackend::~FaultInjectionBackend() = default;

Status FaultInjectionBackend::open(const BackendGeometry& geometry) {
  if (!inner_)
    return Status::invalid_argument("fault injection: no inner backend");
  return inner_->open(geometry);
}

Status FaultInjectionBackend::read(DiskId disk, std::uint64_t offset,
                                   std::span<std::uint8_t> out) {
  if (options_.read_latency_us > 0)
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.read_latency_us));

  bool inject_error = false;
  bool inject_rot = false;
  std::uint64_t rot_bit = 0;
  {
    std::lock_guard lock(impl_->mutex);
    ++impl_->stats.reads;
    const bool scripted_rot =
        !out.empty() &&
        std::find(impl_->rot_read_ops.begin(), impl_->rot_read_ops.end(),
                  impl_->stats.reads) != impl_->rot_read_ops.end();
    if (options_.read_error_probability > 0 &&
        impl_->unit(impl_->rng) < options_.read_error_probability) {
      inject_error = true;
      ++impl_->stats.injected_read_errors;
    } else if (scripted_rot) {
      inject_rot = true;
      rot_bit = impl_->rng() % (out.size() * 8);
    } else if (!out.empty() && options_.bit_rot_probability > 0 &&
               impl_->unit(impl_->rng) < options_.bit_rot_probability) {
      inject_rot = true;
      rot_bit = impl_->rng() % (out.size() * 8);
    }
  }
  if (inject_error)
    return Status::io_error("injected transient read error (disk " +
                            std::to_string(disk) + ", offset " +
                            std::to_string(offset) + ")");

  if (Status read = inner_->read(disk, offset, out); !read.ok()) return read;
  if (inject_rot) {
    // Count the flip only now that it is actually applied to a payload
    // the caller will see (an inner-read failure above aborts it).
    out[rot_bit / 8] ^= static_cast<std::uint8_t>(1u << (rot_bit % 8));
    std::lock_guard lock(impl_->mutex);
    ++impl_->stats.injected_bit_flips;
  }
  return OkStatus();
}

Status FaultInjectionBackend::write(DiskId disk, std::uint64_t offset,
                                    std::span<const std::uint8_t> data) {
  if (options_.write_latency_us > 0)
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.write_latency_us));

  bool inject_error = false;
  {
    std::lock_guard lock(impl_->mutex);
    ++impl_->stats.writes;
    const bool scripted =
        std::find(options_.fail_write_ops.begin(),
                  options_.fail_write_ops.end(),
                  impl_->stats.writes) != options_.fail_write_ops.end();
    if (scripted || (options_.write_error_probability > 0 &&
                     impl_->unit(impl_->rng) <
                         options_.write_error_probability)) {
      inject_error = true;
      ++impl_->stats.injected_write_errors;
    }
  }
  if (inject_error)
    return Status::io_error("injected transient write error (disk " +
                            std::to_string(disk) + ", offset " +
                            std::to_string(offset) + ")");
  return inner_->write(disk, offset, data);
}

Status FaultInjectionBackend::sync(DiskId disk) { return inner_->sync(disk); }

Status FaultInjectionBackend::discard(DiskId disk, std::uint8_t fill) {
  return inner_->discard(disk, fill);
}

FaultInjectionStats FaultInjectionBackend::stats() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->stats;
}

void FaultInjectionBackend::arm_rot_on_reads(
    std::span<const std::uint64_t> ordinals) {
  std::lock_guard lock(impl_->mutex);
  impl_->rot_read_ops.insert(impl_->rot_read_ops.end(), ordinals.begin(),
                             ordinals.end());
}

// ------------------------------------------------------------- factories

std::unique_ptr<DiskBackend> make_memory_backend() {
  return std::make_unique<MemoryBackend>();
}

std::unique_ptr<DiskBackend> make_file_backend(FileBackendOptions options) {
  return std::make_unique<FileBackend>(std::move(options));
}

std::unique_ptr<DiskBackend> make_fault_injection_backend(
    std::unique_ptr<DiskBackend> inner,
    const FaultInjectionOptions& options) {
  return std::make_unique<FaultInjectionBackend>(std::move(inner), options);
}

}  // namespace pdl::io
