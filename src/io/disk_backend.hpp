#pragma once
/// @file
/// pdl::io::DiskBackend -- the storage-substrate seam under StripeStore.
///
/// The layout mathematics (algebra -> design -> layout -> engine -> api)
/// is deliberately independent of where bytes physically live.  A
/// DiskBackend is the one interface that binds the byte-moving data path
/// to a substrate: the store addresses it purely in (disk, byte-offset)
/// coordinates and never sees vectors, file descriptors, or sockets.
/// Three implementations ship in-tree:
///
///   * MemoryBackend         -- one heap buffer per disk (the PR-4
///                              behaviour); exposes zero-copy views, so
///                              the store's hot path stays allocation-
///                              and syscall-free;
///   * FileBackend           -- one file per disk driven with
///                              pread/pwrite, surviving close + reopen
///                              (contents persist, parity-consistent);
///   * FaultInjectionBackend -- a decorator adding seeded bit-rot,
///                              transient I/O errors, and per-op latency
///                              to any inner backend.
///
/// Future substrates (mmap, sharded-over-sockets, object stores) plug in
/// here without touching the layout or parity layers.
///
/// ## Contract
///
/// **Lifecycle.**  A backend is constructed cold, then `open()`ed exactly
/// once with the array geometry before any I/O; `open()` either adopts an
/// existing image (file reopen) or presents `num_disks` zero-filled disks
/// of `disk_bytes` each.  Destruction releases all resources; call
/// `sync()` first if durability of the final state matters.
///
/// **Thread safety.**  After `open()`, `read`/`write`/`sync` may be
/// called from any number of threads concurrently, PROVIDED writes to
/// overlapping byte ranges are externally serialized (StripeStore's
/// per-stripe-instance shard locks provide exactly that).  `discard` is
/// only called under the store's exclusive lock, so it may assume no
/// concurrent I/O to its disk.
///
/// **Failure semantics.**  Every operation returns a typed pdl::Status:
/// kInvalidArgument for out-of-range disks or ranges (caller bugs),
/// kIoError for substrate failures (which may be transient -- callers
/// may retry; StripeStore propagates them to its caller untouched).  A
/// failed write leaves the addressed range in an unspecified state but
/// must not corrupt other ranges.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.hpp"
#include "layout/mapping.hpp"

/// @namespace pdl::io
/// @brief The byte-moving data path: DiskBackend substrates, the
/// StripeStore serving/rebuild engine, and the concurrent WorkloadDriver.
namespace pdl::io {

using layout::DiskId;

/// Fixed array geometry a backend is opened with: everything a substrate
/// needs to size itself.
struct BackendGeometry {
  std::uint32_t num_disks = 0;   ///< physical disks in the array
  std::uint64_t disk_bytes = 0;  ///< bytes per disk (units * unit_bytes)
};

// ------------------------------------------------------- batched requests

/// Traffic class of one I/O request.  Schedulers (io_scheduler.hpp) use
/// the class to order per-disk queues -- e.g. the rebuild-deprioritizing
/// policy serves foreground traffic first and holds rebuild/scrub I/O
/// back up to a bounded delay.
enum class IoClass : std::uint8_t {
  kForegroundRead = 0,   ///< latency-sensitive user read
  kForegroundWrite = 1,  ///< user write (incl. its parity maintenance I/O)
  kRebuild = 2,          ///< reconstruction traffic (survivor reads, slot writes)
  kScrub = 3,            ///< background verification sweeps
};

/// Human-readable class name ("fg-read", "rebuild", ...).
[[nodiscard]] std::string_view io_class_name(IoClass io_class) noexcept;

/// One element of a batched submission: a read into `read_buf` or a
/// write of `write_buf` at (disk, offset), tagged with a traffic class.
/// `status` is written on completion.  The request -- and both buffers --
/// must stay alive and untouched until the batch completes (execute_batch
/// returns, or AsyncDiskBackend::wait on the submission's token).
struct IoRequest {
  /// Direction of the transfer.
  enum class Op : std::uint8_t { kRead = 0, kWrite = 1 };

  Op op = Op::kRead;
  IoClass io_class = IoClass::kForegroundRead;
  DiskId disk = 0;
  std::uint64_t offset = 0;
  std::span<std::uint8_t> read_buf{};         ///< kRead: destination
  std::span<const std::uint8_t> write_buf{};  ///< kWrite: source
  Status status{};  ///< per-request completion status (OK by default)

  /// Transfer size in bytes.
  [[nodiscard]] std::uint64_t size() const noexcept {
    return op == Op::kRead ? read_buf.size() : write_buf.size();
  }

  /// A read request (convenience spelling).
  [[nodiscard]] static IoRequest read_of(IoClass io_class, DiskId disk,
                                         std::uint64_t offset,
                                         std::span<std::uint8_t> buf) noexcept {
    IoRequest r;
    r.op = Op::kRead;
    r.io_class = io_class;
    r.disk = disk;
    r.offset = offset;
    r.read_buf = buf;
    return r;
  }
  /// A write request (convenience spelling).
  [[nodiscard]] static IoRequest write_of(
      IoClass io_class, DiskId disk, std::uint64_t offset,
      std::span<const std::uint8_t> buf) noexcept {
    IoRequest r;
    r.op = Op::kWrite;
    r.io_class = io_class;
    r.disk = disk;
    r.offset = offset;
    r.write_buf = buf;
    return r;
  }
};

/// Abstract storage substrate addressed in (disk, byte-offset)
/// coordinates.  See the file comment for the full lifecycle /
/// thread-safety / failure contract.
class DiskBackend {
 public:
  virtual ~DiskBackend() = default;

  /// Binds the backend to the array geometry.  Called exactly once,
  /// before any other operation.  After it returns OK every disk
  /// presents either zeros (fresh substrate) or its persisted bytes
  /// (reopened substrate).  kFailedPrecondition when an existing image
  /// does not match `geometry`; kIoError on substrate failure.
  [[nodiscard]] virtual Status open(const BackendGeometry& geometry) = 0;

  /// Reads `out.size()` bytes at `offset` of `disk` into `out`.
  /// kInvalidArgument for an out-of-range disk or byte range; kIoError
  /// (possibly transient) on substrate failure.
  [[nodiscard]] virtual Status read(DiskId disk, std::uint64_t offset,
                                    std::span<std::uint8_t> out) = 0;

  /// Writes `data` at `offset` of `disk`.  Durability is deferred until
  /// sync() unless the implementation documents otherwise.  Error
  /// contract mirrors read(); a failed write leaves the addressed range
  /// unspecified but no other range touched.
  [[nodiscard]] virtual Status write(DiskId disk, std::uint64_t offset,
                                     std::span<const std::uint8_t> data) = 0;

  /// Flushes all completed writes to `disk` down to the substrate's
  /// durability point (fdatasync for files; a no-op for memory).
  [[nodiscard]] virtual Status sync(DiskId disk) = 0;

  /// Drops the disk's current contents and presents `fill` bytes
  /// instead -- the store's physical model of a platter swap (poison
  /// fill on fail_disk, zero fill on replace_disk).  Called only under
  /// the store's exclusive lock.
  [[nodiscard]] virtual Status discard(DiskId disk, std::uint8_t fill) = 0;

  /// Human-readable substrate name ("memory", "file", ...), stable for
  /// logs and bench JSON.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Optional zero-copy window: a non-empty span is the disk's complete
  /// byte image, resident and addressable for the backend's lifetime
  /// (memory and future mmap backends).  Empty means "use read/write".
  /// A backend must answer uniformly -- all disks or none -- and a
  /// decorator that intercepts I/O must return empty.
  [[nodiscard]] virtual std::span<std::uint8_t> memory_view(
      DiskId disk) noexcept {
    (void)disk;
    return {};
  }

  /// Executes a batch of independent requests, writing each request's
  /// completion into its `status` field, and returns the first non-OK
  /// status encountered (OkStatus when every request succeeded).  The
  /// base implementation simply loops read()/write() sequentially --
  /// every backend is batched-capable by default -- and KEEPS GOING
  /// after a failed request, so one bad unit cannot veto its batchmates
  /// (callers needing all-or-nothing check the return value).
  ///
  /// AsyncDiskBackend (async_backend.hpp) overrides this with per-disk
  /// submission queues, request coalescing, and scheduled dispatch; the
  /// requests of one batch may then complete in any order and
  /// concurrently, so the read/write thread-safety contract applies
  /// within a batch too: no two requests of outstanding batches may
  /// write overlapping ranges (StripeStore's shard locks provide this).
  [[nodiscard]] virtual Status execute_batch(std::span<IoRequest> batch);

  /// True when submissions are actually asynchronous (per-disk queues
  /// drained by an engine) rather than executed inline by the caller.
  /// Drivers use this to decide whether issuing deeper batches can buy
  /// real in-flight parallelism.
  [[nodiscard]] virtual bool async() const noexcept { return false; }

  /// Optional native positioned-I/O handle (a POSIX fd usable with
  /// pread/pwrite/io_uring) for `disk`, or -1 when the substrate has
  /// none.  AsyncDiskBackend's io_uring engine submits directly against
  /// these; everything else must route through read()/write().
  [[nodiscard]] virtual int native_handle(DiskId disk) const noexcept {
    (void)disk;
    return -1;
  }

  /// Current I/O alignment requirement in bytes (offset, size, and
  /// buffer address) for direct submission against native_handle(); 1
  /// means unconstrained.  FileBackend reports its O_DIRECT alignment
  /// while direct I/O is active.  May relax (e.g. to 1) at runtime
  /// after a graceful fallback, never tighten.
  [[nodiscard]] virtual std::uint32_t io_alignment() const noexcept {
    return 1;
  }

  // ------------------------------------------- write-ahead journal seam
  //
  // A crash between the writes of one parity-maintenance batch (data
  // landed, parity did not) leaves the substrate torn in a way no
  // in-process protocol can repair.  A journaled backend closes the hole:
  // the caller records the batch's full write payloads FIRST
  // (journal_begin), performs the in-place writes, then retires the
  // record (journal_commit).  open() on a substrate with un-retired
  // records re-applies them -- replaying a complete record is idempotent
  // and lands the substrate in the batch's post-image -- or discards
  // records whose self-checksum shows the journal append itself tore.

  /// True when this backend persists journal records across open()
  /// (FileBackend).  The default is an unjournaled substrate; callers
  /// fall back to in-process torn-write protocols.
  [[nodiscard]] virtual bool journaled() const noexcept { return false; }

  /// Durably records the write requests of one atomic batch (reads in
  /// `batch` are ignored) and returns an opaque token for
  /// journal_commit.  kUnsupported on unjournaled backends or when the
  /// batch exceeds the journal's record capacity -- the caller proceeds
  /// unjournaled.  Thread-safe.
  [[nodiscard]] virtual Result<std::uint64_t> journal_begin(
      std::span<const IoRequest> batch) {
    (void)batch;
    return Status::unsupported("backend has no write-ahead journal");
  }

  /// Retires a journal_begin record once its in-place writes have been
  /// issued (they need not be durable: replaying the record reproduces
  /// them).  Every token must be committed exactly once.
  [[nodiscard]] virtual Status journal_commit(std::uint64_t token) {
    (void)token;
    return Status::unsupported("backend has no write-ahead journal");
  }
};

// ---------------------------------------------------------------- memory

/// Heap-resident substrate: one zero-initialized buffer per disk.
/// Exposes memory_view, so StripeStore serves straight out of the
/// buffers with no copies or syscalls.  Not persistent.
class MemoryBackend final : public DiskBackend {
 public:
  MemoryBackend() = default;

  [[nodiscard]] Status open(const BackendGeometry& geometry) override;
  [[nodiscard]] Status read(DiskId disk, std::uint64_t offset,
                            std::span<std::uint8_t> out) override;
  [[nodiscard]] Status write(DiskId disk, std::uint64_t offset,
                             std::span<const std::uint8_t> data) override;
  [[nodiscard]] Status sync(DiskId disk) override;
  [[nodiscard]] Status discard(DiskId disk, std::uint8_t fill) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "memory";
  }
  [[nodiscard]] std::span<std::uint8_t> memory_view(
      DiskId disk) noexcept override;

 private:
  /// Range-checks one access; kInvalidArgument with context on failure.
  [[nodiscard]] Status check(DiskId disk, std::uint64_t offset,
                             std::uint64_t size) const;

  BackendGeometry geometry_;
  std::vector<std::vector<std::uint8_t>> disks_;
};

// ------------------------------------------------------------------ file

/// Construction options for FileBackend.
struct FileBackendOptions {
  /// Directory holding one image file per disk (`disk-NNNN.img`).
  /// Created (recursively) when missing.
  std::string directory;
  /// fdatasync every write before returning (slow; sync() batching is
  /// the intended discipline).
  bool sync_on_write = false;
  /// Open the disk images with O_DIRECT, bypassing the page cache --
  /// the honest-media mode for throughput measurements (no write-back
  /// caching flattering the numbers).
  ///
  /// ## Alignment contract
  /// Direct I/O requires offset, size, AND buffer address aligned to
  /// the filesystem's logical block size; FileBackend uses
  /// kDirectAlignment (4096, covering every common filesystem).  The
  /// backend discharges the *buffer* leg itself: an op whose offset and
  /// size are aligned but whose caller buffer is not is staged through
  /// a thread-local aligned bounce buffer, so callers never need
  /// aligned allocations.  Offset/size alignment it cannot fix without
  /// read-amplifying neighbouring bytes (unsafe under concurrent
  /// writers), so the FIRST op with a misaligned offset or size
  /// gracefully downgrades the backend to buffered I/O for the rest of
  /// its life (fcntl clearing O_DIRECT; direct_io_active() turns
  /// false).  The same sticky fallback runs when the filesystem refuses
  /// O_DIRECT outright (tmpfs at open(); EINVAL at first pread).  In
  /// practice: size every unit_bytes as a multiple of 4096 and direct
  /// I/O stays engaged; anything else still works, just buffered.
  bool direct_io = false;
  /// Keep a write-ahead journal (`journal.bin` beside the images) for
  /// atomic write batches: journal_begin/journal_commit become
  /// available, and open() replays or discards un-retired records left
  /// by a crash (see DiskBackend's journal seam).  On by default --
  /// the cost is one extra sequential pwrite per journaled batch.
  bool journal = true;
};

/// Journal activity counters (monotonic since open()).
struct FileJournalStats {
  std::uint64_t records = 0;    ///< journal_begin records written
  std::uint64_t commits = 0;    ///< records retired by journal_commit
  std::uint64_t replayed = 0;   ///< valid records re-applied at open()
  std::uint64_t discarded = 0;  ///< torn records dropped at open()
};

/// File-per-disk substrate driven with pread/pwrite at caller offsets
/// (thread-safe per POSIX, no shared file cursor).  open() adopts
/// existing image files byte-for-byte when their size matches the
/// geometry -- the crash-safe reopen path: a store re-created over the
/// same directory serves the bytes a previous process wrote, and parity
/// held by the previous store's write discipline still holds, so
/// degraded reads and rebuilds work across process restarts.  A
/// `backend.meta` manifest pins the directory's (num_disks, disk_bytes)
/// geometry, so a reopen under a different array shape -- and any
/// size-mismatched image -- is refused with kFailedPrecondition rather
/// than silently adopted.  Layout identity beyond the geometry
/// (construction, sparing mode) is the caller's to persist, e.g. via
/// api::Array::save/load beside the images.
class FileBackend final : public DiskBackend {
 public:
  /// Offset/size/address alignment O_DIRECT ops must satisfy (see the
  /// FileBackendOptions::direct_io contract).
  static constexpr std::uint32_t kDirectAlignment = 4096;

  explicit FileBackend(FileBackendOptions options);
  ~FileBackend() override;

  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  [[nodiscard]] Status open(const BackendGeometry& geometry) override;
  [[nodiscard]] Status read(DiskId disk, std::uint64_t offset,
                            std::span<std::uint8_t> out) override;
  [[nodiscard]] Status write(DiskId disk, std::uint64_t offset,
                             std::span<const std::uint8_t> data) override;
  [[nodiscard]] Status sync(DiskId disk) override;
  [[nodiscard]] Status discard(DiskId disk, std::uint8_t fill) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "file";
  }
  [[nodiscard]] int native_handle(DiskId disk) const noexcept override;
  [[nodiscard]] std::uint32_t io_alignment() const noexcept override;
  [[nodiscard]] bool journaled() const noexcept override {
    return options_.journal;
  }
  [[nodiscard]] Result<std::uint64_t> journal_begin(
      std::span<const IoRequest> batch) override;
  [[nodiscard]] Status journal_commit(std::uint64_t token) override;

  /// The image file backing `disk` (valid after open()).
  [[nodiscard]] std::string disk_path(DiskId disk) const;

  /// True while O_DIRECT is engaged on the image fds (requested via
  /// options, accepted by the filesystem, and not yet downgraded by a
  /// misaligned op -- see the FileBackendOptions::direct_io contract).
  [[nodiscard]] bool direct_io_active() const noexcept;

  /// Journal activity since open() (zeros when options.journal is off).
  [[nodiscard]] FileJournalStats journal_stats() const;

 private:
  [[nodiscard]] Status check(DiskId disk, std::uint64_t offset,
                             std::uint64_t size) const;
  void close_all() noexcept;
  /// Sticky downgrade to buffered I/O: clears O_DIRECT on every fd.
  void fall_back_to_buffered() noexcept;
  [[nodiscard]] Status read_direct(DiskId disk, std::uint64_t offset,
                                   std::span<std::uint8_t> out);
  [[nodiscard]] Status write_direct(DiskId disk, std::uint64_t offset,
                                    std::span<const std::uint8_t> data);

  [[nodiscard]] Status open_journal();
  [[nodiscard]] Status replay_journal();

  FileBackendOptions options_;
  BackendGeometry geometry_;
  std::vector<int> fds_;  ///< one O_RDWR descriptor per disk
  struct DirectState;     ///< atomic active flag + fallback mutex
  std::unique_ptr<DirectState> direct_;
  struct JournalState;    ///< slot allocator + fd + stats behind a mutex
  std::unique_ptr<JournalState> journal_;
};

// ------------------------------------------------------- fault injection

/// Knobs for FaultInjectionBackend.  Probabilities are per operation in
/// [0, 1]; everything is driven by one seeded PRNG, so a fixed seed and
/// op sequence reproduce the same faults.
struct FaultInjectionOptions {
  std::uint64_t seed = 1;
  double read_error_probability = 0;   ///< P(read returns kIoError)
  double write_error_probability = 0;  ///< P(write returns kIoError)
  /// P(a successful read's payload gets one random bit flipped) --
  /// models silent media bit-rot *after* the inner backend read; the
  /// substrate image itself is never corrupted.
  double bit_rot_probability = 0;
  std::uint32_t read_latency_us = 0;   ///< sleep before each read
  std::uint32_t write_latency_us = 0;  ///< sleep before each write
  /// Scripted faults: 1-based ordinals into the decorator's lifetime
  /// WRITE counter; the Nth write() fails with kIoError before touching
  /// the inner backend.  Exact -- independent of the seed and of every
  /// probability above -- which is what lets a test force a precise
  /// partial-stripe-write interleaving (e.g. "parity landed, data
  /// failed, and the compensating rewrite failed too"): the base
  /// execute_batch executes its requests strictly in order, so in-batch
  /// write ordinals are deterministic.
  std::vector<std::uint64_t> fail_write_ops = {};
  /// Scripted bit-rot: 1-based ordinals into the decorator's lifetime
  /// READ counter; the Nth read() succeeds but flips one seeded bit of
  /// the returned payload.  Exact like fail_write_ops -- the integrity
  /// tests use it to corrupt precisely the next unit a healthy read will
  /// fetch.  arm_rot_on_reads() appends ordinals at runtime.
  std::vector<std::uint64_t> rot_read_ops = {};
};

/// Counters of what the decorator actually did (monotonic since open).
struct FaultInjectionStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t injected_read_errors = 0;
  std::uint64_t injected_write_errors = 0;
  std::uint64_t injected_bit_flips = 0;
};

/// Decorator that wraps any DiskBackend and injects configurable faults:
/// transient kIoError on read/write, single-bit rot in read payloads,
/// and fixed per-op latency.  Deterministic under a fixed seed and op
/// sequence (a mutex serializes the PRNG, so multi-threaded runs are
/// deterministic only in aggregate).  memory_view is always empty --
/// the store must route every byte through read/write for faults to
/// apply.  Injected errors are indistinguishable from real substrate
/// errors by design: they carry the same kIoError code.
class FaultInjectionBackend final : public DiskBackend {
 public:
  FaultInjectionBackend(std::unique_ptr<DiskBackend> inner,
                        const FaultInjectionOptions& options);
  ~FaultInjectionBackend() override;

  [[nodiscard]] Status open(const BackendGeometry& geometry) override;
  [[nodiscard]] Status read(DiskId disk, std::uint64_t offset,
                            std::span<std::uint8_t> out) override;
  [[nodiscard]] Status write(DiskId disk, std::uint64_t offset,
                             std::span<const std::uint8_t> data) override;
  [[nodiscard]] Status sync(DiskId disk) override;
  [[nodiscard]] Status discard(DiskId disk, std::uint8_t fill) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "fault-injection";
  }
  // Journal calls pass through untouched: the decorator injects faults
  // into the data path only, never into crash-consistency bookkeeping.
  [[nodiscard]] bool journaled() const noexcept override {
    return inner_->journaled();
  }
  [[nodiscard]] Result<std::uint64_t> journal_begin(
      std::span<const IoRequest> batch) override {
    return inner_->journal_begin(batch);
  }
  [[nodiscard]] Status journal_commit(std::uint64_t token) override {
    return inner_->journal_commit(token);
  }

  /// Snapshot of the injection counters.
  [[nodiscard]] FaultInjectionStats stats() const;

  /// Appends scripted rot ordinals (1-based lifetime read ordinals, like
  /// FaultInjectionOptions::rot_read_ops) at runtime: a test reads
  /// stats().reads and arms exactly the next read it knows the store
  /// will issue.  Thread-safe.
  void arm_rot_on_reads(std::span<const std::uint64_t> ordinals);

 private:
  struct Impl;  ///< PRNG + counters behind a mutex
  std::unique_ptr<DiskBackend> inner_;
  FaultInjectionOptions options_;
  std::unique_ptr<Impl> impl_;
};

/// @namespace pdl::io::detail
/// @brief Shared internals of the in-tree backends.  Not API.
namespace detail {

/// OkStatus when [offset, offset+size) of `disk` lies inside the
/// geometry; otherwise kInvalidArgument naming `backend` and the
/// violated bound.  Shared by every in-tree backend so the range
/// semantics (and error wording) cannot drift apart.
[[nodiscard]] Status check_range(std::string_view backend, DiskId disk,
                                 std::uint64_t offset, std::uint64_t size,
                                 const BackendGeometry& geometry);

}  // namespace detail

/// Convenience factories (the common construction spellings).
[[nodiscard]] std::unique_ptr<DiskBackend> make_memory_backend();
[[nodiscard]] std::unique_ptr<DiskBackend> make_file_backend(
    FileBackendOptions options);
[[nodiscard]] std::unique_ptr<DiskBackend> make_fault_injection_backend(
    std::unique_ptr<DiskBackend> inner, const FaultInjectionOptions& options);

}  // namespace pdl::io
