#include "io/disk_backend.hpp"

// POSIX file-per-disk substrate: pread/pwrite at explicit offsets (no
// shared cursor, so concurrent threads need no extra locking), fdatasync
// for the durability point, ftruncate to materialize fresh zero-filled
// images.  Short reads/writes are looped; EINTR is retried.

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace pdl::io {

namespace {

[[nodiscard]] std::string errno_text(const char* op, const std::string& path) {
  return std::string(op) + " " + path + ": " + std::strerror(errno);
}

/// Full-buffer pread with EINTR/short-read handling.
[[nodiscard]] bool pread_all(int fd, std::uint8_t* buf, std::size_t size,
                             std::uint64_t offset) {
  while (size > 0) {
    const ssize_t n = ::pread(fd, buf, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {  // past EOF would mean a truncated image
      errno = EIO;
      return false;
    }
    buf += n;
    size -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
  return true;
}

/// Full-buffer pwrite with EINTR/short-write handling.
[[nodiscard]] bool pwrite_all(int fd, const std::uint8_t* buf,
                              std::size_t size, std::uint64_t offset) {
  while (size > 0) {
    const ssize_t n = ::pwrite(fd, buf, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    buf += n;
    size -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
  return true;
}

}  // namespace

namespace {

/// Name of the geometry manifest written next to the image files: pins
/// (num_disks, disk_bytes) so a reopen with a different array shape is
/// refused instead of silently adopting byte-incompatible images.
constexpr const char* kManifestName = "backend.meta";

}  // namespace

FileBackend::FileBackend(FileBackendOptions options)
    : options_(std::move(options)) {}

FileBackend::~FileBackend() { close_all(); }

void FileBackend::close_all() noexcept {
  for (const int fd : fds_)
    if (fd >= 0) ::close(fd);
  fds_.clear();
}

std::string FileBackend::disk_path(DiskId disk) const {
  char name[32];
  std::snprintf(name, sizeof name, "disk-%04u.img", disk);
  return (std::filesystem::path(options_.directory) / name).string();
}

Status FileBackend::check(DiskId disk, std::uint64_t offset,
                          std::uint64_t size) const {
  return detail::check_range(name(), disk, offset, size, geometry_);
}

Status FileBackend::open(const BackendGeometry& geometry) {
  if (geometry.num_disks == 0)
    return Status::invalid_argument("file backend: zero disks");
  if (options_.directory.empty())
    return Status::invalid_argument("file backend: empty directory");
  if (!fds_.empty())
    return Status::failed_precondition("file backend: already open");

  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  if (ec)
    return Status::io_error("create_directories " + options_.directory +
                            ": " + ec.message());

  // Geometry manifest: refuse to adopt a directory persisted under a
  // different array shape (image sizes alone cannot distinguish, e.g.,
  // fewer disks of the same size -- O_CREAT would silently add fresh
  // zero disks and scramble the parity discipline).  Layout identity
  // beyond the geometry (construction, sparing) is the caller's to pin,
  // e.g. via api::Array::save/load beside the images.
  const std::string manifest_path =
      (std::filesystem::path(options_.directory) / kManifestName).string();
  const std::string manifest_want =
      "pdl-file-backend v1\nnum_disks " +
      std::to_string(geometry.num_disks) + "\ndisk_bytes " +
      std::to_string(geometry.disk_bytes) + "\n";
  if (std::filesystem::exists(manifest_path)) {
    std::string manifest_have;
    if (FILE* f = std::fopen(manifest_path.c_str(), "rb")) {
      char buf[256];
      const std::size_t n = std::fread(buf, 1, sizeof buf, f);
      std::fclose(f);
      manifest_have.assign(buf, n);
    }
    if (manifest_have != manifest_want)
      return Status::failed_precondition(
          "file backend: " + manifest_path +
          " was written for a different geometry (wrong spec/unit_bytes/"
          "iterations for this directory?); expected\n" + manifest_want +
          "found\n" + manifest_have);
  } else {
    FILE* f = std::fopen(manifest_path.c_str(), "wb");
    if (!f) return Status::io_error(errno_text("fopen", manifest_path));
    const bool wrote = std::fwrite(manifest_want.data(), 1,
                                   manifest_want.size(), f) ==
                       manifest_want.size();
    if (std::fclose(f) != 0 || !wrote)
      return Status::io_error(errno_text("write", manifest_path));
  }

  geometry_ = geometry;
  fds_.assign(geometry.num_disks, -1);
  for (DiskId disk = 0; disk < geometry.num_disks; ++disk) {
    const std::string path = disk_path(disk);
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      Status failed = Status::io_error(errno_text("open", path));
      close_all();
      return failed;
    }
    fds_[disk] = fd;

    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      Status failed = Status::io_error(errno_text("fstat", path));
      close_all();
      return failed;
    }
    const auto size = static_cast<std::uint64_t>(st.st_size);
    if (size == 0) {
      // Fresh image: materialize disk_bytes of zeros (sparse where the
      // filesystem allows).
      if (::ftruncate(fd, static_cast<off_t>(geometry.disk_bytes)) != 0) {
        Status failed = Status::io_error(errno_text("ftruncate", path));
        close_all();
        return failed;
      }
    } else if (size != geometry.disk_bytes) {
      // A wrong-sized image means the caller's geometry disagrees with
      // what was persisted; resizing would silently corrupt parity.
      Status failed = Status::failed_precondition(
          "file backend: " + path + " is " + std::to_string(size) +
          " bytes but the geometry needs " +
          std::to_string(geometry.disk_bytes) +
          " (wrong unit_bytes/iterations/spec for this directory?)");
      close_all();
      return failed;
    }
    // size == disk_bytes: reopened image, adopt its bytes as-is.
  }
  return OkStatus();
}

Status FileBackend::read(DiskId disk, std::uint64_t offset,
                         std::span<std::uint8_t> out) {
  if (Status ok = check(disk, offset, out.size()); !ok.ok()) return ok;
  if (!pread_all(fds_[disk], out.data(), out.size(), offset))
    return Status::io_error(errno_text("pread", disk_path(disk)));
  return OkStatus();
}

Status FileBackend::write(DiskId disk, std::uint64_t offset,
                          std::span<const std::uint8_t> data) {
  if (Status ok = check(disk, offset, data.size()); !ok.ok()) return ok;
  if (!pwrite_all(fds_[disk], data.data(), data.size(), offset))
    return Status::io_error(errno_text("pwrite", disk_path(disk)));
  if (options_.sync_on_write && ::fdatasync(fds_[disk]) != 0)
    return Status::io_error(errno_text("fdatasync", disk_path(disk)));
  return OkStatus();
}

Status FileBackend::sync(DiskId disk) {
  if (Status ok = check(disk, 0, 0); !ok.ok()) return ok;
  if (::fdatasync(fds_[disk]) != 0)
    return Status::io_error(errno_text("fdatasync", disk_path(disk)));
  return OkStatus();
}

Status FileBackend::discard(DiskId disk, std::uint8_t fill) {
  if (Status ok = check(disk, 0, 0); !ok.ok()) return ok;
  // Overwrite the whole image in chunks; 1 MiB keeps the buffer modest
  // while amortizing syscalls.
  constexpr std::size_t kChunk = 1u << 20;
  std::vector<std::uint8_t> chunk(
      static_cast<std::size_t>(std::min<std::uint64_t>(kChunk,
                                                       geometry_.disk_bytes)),
      fill);
  std::uint64_t offset = 0;
  while (offset < geometry_.disk_bytes) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunk.size(), geometry_.disk_bytes - offset));
    if (!pwrite_all(fds_[disk], chunk.data(), n, offset))
      return Status::io_error(errno_text("pwrite", disk_path(disk)));
    offset += n;
  }
  return OkStatus();
}

}  // namespace pdl::io
