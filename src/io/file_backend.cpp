#include "io/disk_backend.hpp"

// POSIX file-per-disk substrate: pread/pwrite at explicit offsets (no
// shared cursor, so concurrent threads need no extra locking), fdatasync
// for the durability point, ftruncate to materialize fresh zero-filled
// images.  Short reads/writes are looped; EINTR is retried.
//
// Direct I/O (FileBackendOptions::direct_io) opens the images with
// O_DIRECT.  The alignment contract lives on the option in
// disk_backend.hpp; operationally: misaligned caller buffers stage
// through a thread-local 4096-aligned bounce, a misaligned offset/size
// or a filesystem refusal (tmpfs at open, EINVAL at first transfer)
// triggers the sticky fall_back_to_buffered() downgrade.

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <new>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/crc32c.hpp"

namespace pdl::io {

namespace {

[[nodiscard]] std::string errno_text(const char* op, const std::string& path) {
  return std::string(op) + " " + path + ": " + std::strerror(errno);
}

/// Full-buffer pread with EINTR/short-read handling.
[[nodiscard]] bool pread_all(int fd, std::uint8_t* buf, std::size_t size,
                             std::uint64_t offset) {
  while (size > 0) {
    const ssize_t n = ::pread(fd, buf, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {  // past EOF would mean a truncated image
      errno = EIO;
      return false;
    }
    buf += n;
    size -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
  return true;
}

/// Full-buffer pwrite with EINTR/short-write handling.
[[nodiscard]] bool pwrite_all(int fd, const std::uint8_t* buf,
                              std::size_t size, std::uint64_t offset) {
  while (size > 0) {
    const ssize_t n = ::pwrite(fd, buf, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    buf += n;
    size -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
  return true;
}

/// Grow-only 4096-aligned bounce buffer for direct-I/O staging of
/// misaligned caller buffers.  Thread-local at the call sites, so
/// concurrent ops never share one.
class AlignedBounce {
 public:
  ~AlignedBounce() { std::free(data_); }

  [[nodiscard]] std::uint8_t* get(std::size_t size) {
    if (size > capacity_) {
      std::free(data_);
      capacity_ = (size + FileBackend::kDirectAlignment - 1) /
                  FileBackend::kDirectAlignment * FileBackend::kDirectAlignment;
      data_ = static_cast<std::uint8_t*>(
          std::aligned_alloc(FileBackend::kDirectAlignment, capacity_));
      if (data_ == nullptr) {
        capacity_ = 0;
        throw std::bad_alloc();
      }
    }
    return data_;
  }

 private:
  std::uint8_t* data_ = nullptr;
  std::size_t capacity_ = 0;
};

[[nodiscard]] AlignedBounce& thread_bounce() {
  thread_local AlignedBounce bounce;
  return bounce;
}

[[nodiscard]] bool pointer_aligned(const void* p) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) % FileBackend::kDirectAlignment ==
         0;
}

}  // namespace

namespace {

/// Name of the geometry manifest written next to the image files: pins
/// (num_disks, disk_bytes) so a reopen with a different array shape is
/// refused instead of silently adopting byte-incompatible images.
constexpr const char* kManifestName = "backend.meta";

/// Name of the write-ahead journal file beside the images.
constexpr const char* kJournalName = "journal.bin";

// Journal format: a fixed number of fixed-size slots in one sparse file.
// One journal_begin record occupies one slot -- a header, then an entry
// per write, then the concatenated payloads -- written with a single
// pwrite.  journal_commit retires a record by zeroing its magic.  A
// record is valid iff its magic matches AND its body CRC32C holds, so a
// torn journal append (crash mid-pwrite) self-invalidates and is
// discarded at replay rather than half-applied.
constexpr std::uint32_t kJournalSlots = 32;
constexpr std::uint64_t kJournalSlotBytes = 1u << 20;  // 1 MiB per record
constexpr std::uint64_t kJournalMagic = 0x314C4E524A4C4450ull;  // "PDLJRNL1"

struct JournalHeader {
  std::uint64_t magic = 0;
  std::uint64_t seq = 0;         ///< monotonic, orders replay
  std::uint32_t count = 0;       ///< entries in the body
  std::uint32_t body_bytes = 0;  ///< entries + payloads
  std::uint32_t crc = 0;         ///< CRC32C of the body
  std::uint32_t pad = 0;
};
static_assert(sizeof(JournalHeader) == 32);

struct JournalEntry {
  std::uint32_t disk = 0;
  std::uint32_t size = 0;
  std::uint64_t offset = 0;
};
static_assert(sizeof(JournalEntry) == 16);

/// fsync on a directory: makes the *names* created inside it (image
/// files, manifest, journal) durable, which fdatasync on the data fds
/// does not -- a crash right after create() must not lose the files
/// themselves.
[[nodiscard]] bool fsync_directory(const std::string& dir) noexcept {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

/// Direct-I/O engagement state: the atomic flag the hot path loads, and
/// a mutex serializing the (rare, idempotent) fallback transition.
struct FileBackend::DirectState {
  std::atomic<bool> active{false};
  std::mutex fallback_mutex;
};

/// Journal bookkeeping: the slot allocator and counters behind a mutex;
/// journal_begin waits on the cv when every slot holds an un-retired
/// record (commits free slots, so waiting is bounded by in-flight
/// batches).
struct FileBackend::JournalState {
  std::mutex mutex;
  std::condition_variable cv;
  int fd = -1;
  std::uint64_t next_seq = 0;
  std::vector<bool> busy;
  FileJournalStats stats;
};

FileBackend::FileBackend(FileBackendOptions options)
    : options_(std::move(options)),
      direct_(std::make_unique<DirectState>()),
      journal_(std::make_unique<JournalState>()) {}

FileBackend::~FileBackend() { close_all(); }

bool FileBackend::direct_io_active() const noexcept {
  return direct_->active.load(std::memory_order_acquire);
}

int FileBackend::native_handle(DiskId disk) const noexcept {
  return disk < fds_.size() ? fds_[disk] : -1;
}

std::uint32_t FileBackend::io_alignment() const noexcept {
  return direct_io_active() ? kDirectAlignment : 1;
}

void FileBackend::fall_back_to_buffered() noexcept {
  std::lock_guard lock(direct_->fallback_mutex);
  if (!direct_->active.load(std::memory_order_acquire)) return;
  for (const int fd : fds_) {
    if (fd < 0) continue;
    const int flags = ::fcntl(fd, F_GETFL);
    if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags & ~O_DIRECT);
  }
  direct_->active.store(false, std::memory_order_release);
}

void FileBackend::close_all() noexcept {
  for (const int fd : fds_)
    if (fd >= 0) ::close(fd);
  fds_.clear();
  if (journal_ && journal_->fd >= 0) {
    ::close(journal_->fd);
    journal_->fd = -1;
  }
}

std::string FileBackend::disk_path(DiskId disk) const {
  char name[32];
  std::snprintf(name, sizeof name, "disk-%04u.img", disk);
  return (std::filesystem::path(options_.directory) / name).string();
}

Status FileBackend::check(DiskId disk, std::uint64_t offset,
                          std::uint64_t size) const {
  return detail::check_range(name(), disk, offset, size, geometry_);
}

Status FileBackend::open(const BackendGeometry& geometry) {
  if (geometry.num_disks == 0)
    return Status::invalid_argument("file backend: zero disks");
  if (options_.directory.empty())
    return Status::invalid_argument("file backend: empty directory");
  if (!fds_.empty())
    return Status::failed_precondition("file backend: already open");

  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  if (ec)
    return Status::io_error("create_directories " + options_.directory +
                            ": " + ec.message());

  // Geometry manifest: refuse to adopt a directory persisted under a
  // different array shape (image sizes alone cannot distinguish, e.g.,
  // fewer disks of the same size -- O_CREAT would silently add fresh
  // zero disks and scramble the parity discipline).  Layout identity
  // beyond the geometry (construction, sparing) is the caller's to pin,
  // e.g. via api::Array::save/load beside the images.
  const std::string manifest_path =
      (std::filesystem::path(options_.directory) / kManifestName).string();
  const std::string manifest_want =
      "pdl-file-backend v1\nnum_disks " +
      std::to_string(geometry.num_disks) + "\ndisk_bytes " +
      std::to_string(geometry.disk_bytes) + "\n";
  if (std::filesystem::exists(manifest_path)) {
    std::string manifest_have;
    if (FILE* f = std::fopen(manifest_path.c_str(), "rb")) {
      char buf[256];
      const std::size_t n = std::fread(buf, 1, sizeof buf, f);
      std::fclose(f);
      manifest_have.assign(buf, n);
    }
    if (manifest_have != manifest_want)
      return Status::failed_precondition(
          "file backend: " + manifest_path +
          " was written for a different geometry (wrong spec/unit_bytes/"
          "iterations for this directory?); expected\n" + manifest_want +
          "found\n" + manifest_have);
  } else {
    FILE* f = std::fopen(manifest_path.c_str(), "wb");
    if (!f) return Status::io_error(errno_text("fopen", manifest_path));
    const bool wrote = std::fwrite(manifest_want.data(), 1,
                                   manifest_want.size(), f) ==
                           manifest_want.size() &&
                       std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
    if (std::fclose(f) != 0 || !wrote)
      return Status::io_error(errno_text("write", manifest_path));
  }

  geometry_ = geometry;
  fds_.assign(geometry.num_disks, -1);
  bool want_direct = options_.direct_io;
  for (DiskId disk = 0; disk < geometry.num_disks; ++disk) {
    const std::string path = disk_path(disk);
    constexpr int kBaseFlags = O_RDWR | O_CREAT | O_CLOEXEC;
    int fd = want_direct ? ::open(path.c_str(), kBaseFlags | O_DIRECT, 0644)
                         : -1;
    if (fd < 0 && want_direct && errno == EINVAL) {
      // Filesystem refuses O_DIRECT outright (tmpfs): the documented
      // graceful fallback.  All images share one directory, hence one
      // filesystem -- downgrade everything, including already-open fds.
      want_direct = false;
      for (const int prior : fds_)
        if (prior >= 0) {
          const int flags = ::fcntl(prior, F_GETFL);
          if (flags >= 0) (void)::fcntl(prior, F_SETFL, flags & ~O_DIRECT);
        }
    }
    if (fd < 0) fd = ::open(path.c_str(), kBaseFlags, 0644);
    if (fd < 0) {
      Status failed = Status::io_error(errno_text("open", path));
      close_all();
      return failed;
    }
    fds_[disk] = fd;

    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      Status failed = Status::io_error(errno_text("fstat", path));
      close_all();
      return failed;
    }
    const auto size = static_cast<std::uint64_t>(st.st_size);
    if (size == 0) {
      // Fresh image: materialize disk_bytes of zeros (sparse where the
      // filesystem allows).
      if (::ftruncate(fd, static_cast<off_t>(geometry.disk_bytes)) != 0) {
        Status failed = Status::io_error(errno_text("ftruncate", path));
        close_all();
        return failed;
      }
    } else if (size != geometry.disk_bytes) {
      // A wrong-sized image means the caller's geometry disagrees with
      // what was persisted; resizing would silently corrupt parity.
      Status failed = Status::failed_precondition(
          "file backend: " + path + " is " + std::to_string(size) +
          " bytes but the geometry needs " +
          std::to_string(geometry.disk_bytes) +
          " (wrong unit_bytes/iterations/spec for this directory?)");
      close_all();
      return failed;
    }
    // size == disk_bytes: reopened image, adopt its bytes as-is.
  }

  if (options_.journal) {
    if (Status journal = open_journal(); !journal.ok()) {
      close_all();
      return journal;
    }
  }

  // Make the directory entries themselves durable: fdatasync on the data
  // fds persists *contents*, but a crash right after create() could still
  // lose the freshly created image/manifest/journal names without this.
  if (!fsync_directory(options_.directory)) {
    Status failed = Status::io_error(errno_text("fsync", options_.directory));
    close_all();
    return failed;
  }

  direct_->active.store(want_direct, std::memory_order_release);
  return OkStatus();
}

// ----------------------------------------------------------------- journal

Status FileBackend::open_journal() {
  const std::string path =
      (std::filesystem::path(options_.directory) / kJournalName).string();
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Status::io_error(errno_text("open", path));
  constexpr std::uint64_t kJournalBytes =
      static_cast<std::uint64_t>(kJournalSlots) * kJournalSlotBytes;
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::io_error(errno_text("fstat", path));
  }
  if (static_cast<std::uint64_t>(st.st_size) != kJournalBytes &&
      ::ftruncate(fd, static_cast<off_t>(kJournalBytes)) != 0) {
    ::close(fd);
    return Status::io_error(errno_text("ftruncate", path));
  }
  journal_->fd = fd;
  journal_->busy.assign(kJournalSlots, false);
  journal_->next_seq = 0;
  return replay_journal();
}

Status FileBackend::replay_journal() {
  const std::string path =
      (std::filesystem::path(options_.directory) / kJournalName).string();

  // Collect the valid un-retired records, ordered by sequence so replay
  // reproduces the original write order when records overlap.
  struct Pending {
    std::uint32_t slot = 0;
    std::uint64_t seq = 0;
  };
  std::vector<Pending> pending;
  for (std::uint32_t slot = 0; slot < kJournalSlots; ++slot) {
    const std::uint64_t base = slot * kJournalSlotBytes;
    JournalHeader header;
    if (!pread_all(journal_->fd, reinterpret_cast<std::uint8_t*>(&header),
                   sizeof header, base))
      return Status::io_error(errno_text("pread", path));
    if (header.magic != kJournalMagic) continue;  // free / retired slot
    pending.push_back({slot, header.seq});
    journal_->next_seq = std::max(journal_->next_seq, header.seq);
  }
  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) { return a.seq < b.seq; });

  std::vector<std::uint8_t> record;
  for (const Pending& p : pending) {
    const std::uint64_t base = p.slot * kJournalSlotBytes;
    JournalHeader header;
    if (!pread_all(journal_->fd, reinterpret_cast<std::uint8_t*>(&header),
                   sizeof header, base))
      return Status::io_error(errno_text("pread", path));

    // Structural validation before trusting any field, then the body
    // checksum: anything off means the append itself tore -- its
    // in-place writes were never issued, so discarding loses nothing.
    bool valid = header.body_bytes <= kJournalSlotBytes - sizeof header &&
                 header.count > 0 &&
                 static_cast<std::uint64_t>(header.count) *
                         sizeof(JournalEntry) <=
                     header.body_bytes;
    if (valid) {
      record.resize(header.body_bytes);
      if (!pread_all(journal_->fd, record.data(), record.size(),
                     base + sizeof header))
        return Status::io_error(errno_text("pread", path));
      valid = core::crc32c(record) == header.crc;
    }
    if (valid) {
      // Entry-table sanity against the payload region and the geometry.
      std::uint64_t payload = header.count * sizeof(JournalEntry);
      for (std::uint32_t i = 0; valid && i < header.count; ++i) {
        JournalEntry entry;
        std::memcpy(&entry, record.data() + i * sizeof entry, sizeof entry);
        valid = entry.disk < geometry_.num_disks &&
                entry.offset <= geometry_.disk_bytes &&
                entry.size <= geometry_.disk_bytes - entry.offset &&
                payload + entry.size <= header.body_bytes;
        payload += entry.size;
      }
      valid = valid && payload == header.body_bytes;
    }

    if (valid) {
      // Re-apply the whole record: replay is idempotent (full new
      // payloads, not deltas), landing every addressed range in the
      // batch's post-image regardless of how far the crashed process
      // got with its in-place writes.
      std::uint64_t payload = header.count * sizeof(JournalEntry);
      for (std::uint32_t i = 0; i < header.count; ++i) {
        JournalEntry entry;
        std::memcpy(&entry, record.data() + i * sizeof entry, sizeof entry);
        if (!pwrite_all(fds_[entry.disk], record.data() + payload, entry.size,
                        entry.offset))
          return Status::io_error(errno_text("pwrite", disk_path(entry.disk)));
        payload += entry.size;
      }
      ++journal_->stats.replayed;
    } else {
      ++journal_->stats.discarded;
    }

    // Retire the slot either way.
    const std::uint64_t zero = 0;
    if (!pwrite_all(journal_->fd,
                    reinterpret_cast<const std::uint8_t*>(&zero), sizeof zero,
                    base))
      return Status::io_error(errno_text("pwrite", path));
  }
  return OkStatus();
}

Result<std::uint64_t> FileBackend::journal_begin(
    std::span<const IoRequest> batch) {
  if (!options_.journal || journal_->fd < 0)
    return Status::unsupported("file backend journal is disabled");

  std::uint32_t count = 0;
  std::uint64_t body_bytes = 0;
  for (const IoRequest& request : batch) {
    if (request.op != IoRequest::Op::kWrite) continue;
    ++count;
    body_bytes += sizeof(JournalEntry) + request.write_buf.size();
  }
  if (count == 0)
    return Status::unsupported("batch holds no writes to journal");
  if (sizeof(JournalHeader) + body_bytes > kJournalSlotBytes)
    return Status::unsupported(
        "batch exceeds the journal record capacity (" +
        std::to_string(body_bytes) + " bytes)");

  std::uint32_t slot = 0;
  std::uint64_t seq = 0;
  {
    std::unique_lock lock(journal_->mutex);
    journal_->cv.wait(lock, [&] {
      for (std::uint32_t s = 0; s < kJournalSlots; ++s)
        if (!journal_->busy[s]) {
          slot = s;
          return true;
        }
      return false;
    });
    journal_->busy[slot] = true;
    seq = ++journal_->next_seq;
    ++journal_->stats.records;
  }

  // One contiguous record -- header, entry table, payloads -- appended
  // with a single pwrite so a crash tears at most this record (and the
  // body CRC then invalidates it wholesale).
  std::vector<std::uint8_t> record(sizeof(JournalHeader) +
                                   static_cast<std::size_t>(body_bytes));
  std::size_t entry_at = sizeof(JournalHeader);
  std::size_t payload_at =
      sizeof(JournalHeader) + count * sizeof(JournalEntry);
  for (const IoRequest& request : batch) {
    if (request.op != IoRequest::Op::kWrite) continue;
    JournalEntry entry;
    entry.disk = request.disk;
    entry.size = static_cast<std::uint32_t>(request.write_buf.size());
    entry.offset = request.offset;
    std::memcpy(record.data() + entry_at, &entry, sizeof entry);
    entry_at += sizeof entry;
    std::memcpy(record.data() + payload_at, request.write_buf.data(),
                request.write_buf.size());
    payload_at += request.write_buf.size();
  }
  JournalHeader header;
  header.magic = kJournalMagic;
  header.seq = seq;
  header.count = count;
  header.body_bytes = static_cast<std::uint32_t>(body_bytes);
  header.crc = core::crc32c(
      std::span<const std::uint8_t>(record).subspan(sizeof(JournalHeader)));
  std::memcpy(record.data(), &header, sizeof header);

  const std::uint64_t base =
      static_cast<std::uint64_t>(slot) * kJournalSlotBytes;
  bool wrote = pwrite_all(journal_->fd, record.data(), record.size(), base);
  if (wrote && options_.sync_on_write)
    wrote = ::fdatasync(journal_->fd) == 0;
  if (!wrote) {
    Status failed = Status::io_error(errno_text(
        "pwrite",
        (std::filesystem::path(options_.directory) / kJournalName).string()));
    std::lock_guard lock(journal_->mutex);
    journal_->busy[slot] = false;
    --journal_->stats.records;
    journal_->cv.notify_one();
    return failed;
  }
  return static_cast<std::uint64_t>(slot);
}

Status FileBackend::journal_commit(std::uint64_t token) {
  if (!options_.journal || journal_->fd < 0)
    return Status::unsupported("file backend journal is disabled");
  if (token >= kJournalSlots)
    return Status::invalid_argument("journal token " + std::to_string(token) +
                                    " out of range");
  {
    std::lock_guard lock(journal_->mutex);
    if (!journal_->busy[static_cast<std::uint32_t>(token)])
      return Status::failed_precondition(
          "journal token " + std::to_string(token) + " is not outstanding");
  }
  // Retire by zeroing the magic BEFORE releasing the slot, so a new
  // record can never race its own slot's retirement.
  const std::uint64_t zero = 0;
  if (!pwrite_all(journal_->fd, reinterpret_cast<const std::uint8_t*>(&zero),
                  sizeof zero, token * kJournalSlotBytes))
    return Status::io_error(errno_text(
        "pwrite",
        (std::filesystem::path(options_.directory) / kJournalName).string()));
  std::lock_guard lock(journal_->mutex);
  journal_->busy[static_cast<std::uint32_t>(token)] = false;
  ++journal_->stats.commits;
  journal_->cv.notify_one();
  return OkStatus();
}

FileJournalStats FileBackend::journal_stats() const {
  std::lock_guard lock(journal_->mutex);
  return journal_->stats;
}

Status FileBackend::read_direct(DiskId disk, std::uint64_t offset,
                                std::span<std::uint8_t> out) {
  // Offset/size alignment is the caller's (checked in read()); the
  // buffer-address leg is discharged here via the thread-local bounce.
  const bool bounce = !pointer_aligned(out.data());
  std::uint8_t* target = bounce ? thread_bounce().get(out.size()) : out.data();
  if (!pread_all(fds_[disk], target, out.size(), offset)) {
    if (errno == EINVAL) {
      // The filesystem accepted O_DIRECT at open but refuses the
      // transfer: downgrade and serve buffered.
      fall_back_to_buffered();
      if (!pread_all(fds_[disk], out.data(), out.size(), offset))
        return Status::io_error(errno_text("pread", disk_path(disk)));
      return OkStatus();
    }
    return Status::io_error(errno_text("pread", disk_path(disk)));
  }
  if (bounce) std::memcpy(out.data(), target, out.size());
  return OkStatus();
}

Status FileBackend::write_direct(DiskId disk, std::uint64_t offset,
                                 std::span<const std::uint8_t> data) {
  const std::uint8_t* source = data.data();
  if (!pointer_aligned(source)) {
    std::uint8_t* staged = thread_bounce().get(data.size());
    std::memcpy(staged, source, data.size());
    source = staged;
  }
  if (!pwrite_all(fds_[disk], source, data.size(), offset)) {
    if (errno == EINVAL) {
      fall_back_to_buffered();
      if (!pwrite_all(fds_[disk], data.data(), data.size(), offset))
        return Status::io_error(errno_text("pwrite", disk_path(disk)));
      return OkStatus();
    }
    return Status::io_error(errno_text("pwrite", disk_path(disk)));
  }
  return OkStatus();
}

Status FileBackend::read(DiskId disk, std::uint64_t offset,
                         std::span<std::uint8_t> out) {
  if (Status ok = check(disk, offset, out.size()); !ok.ok()) return ok;
  if (direct_io_active()) {
    if (offset % kDirectAlignment == 0 && out.size() % kDirectAlignment == 0)
      return read_direct(disk, offset, out);
    // Misaligned offset/size cannot be fixed without read-amplifying
    // neighbouring bytes: the documented sticky downgrade.
    fall_back_to_buffered();
  }
  if (!pread_all(fds_[disk], out.data(), out.size(), offset))
    return Status::io_error(errno_text("pread", disk_path(disk)));
  return OkStatus();
}

Status FileBackend::write(DiskId disk, std::uint64_t offset,
                          std::span<const std::uint8_t> data) {
  if (Status ok = check(disk, offset, data.size()); !ok.ok()) return ok;
  Status wrote;
  if (direct_io_active() && offset % kDirectAlignment == 0 &&
      data.size() % kDirectAlignment == 0) {
    wrote = write_direct(disk, offset, data);
  } else {
    if (direct_io_active()) fall_back_to_buffered();
    if (!pwrite_all(fds_[disk], data.data(), data.size(), offset))
      wrote = Status::io_error(errno_text("pwrite", disk_path(disk)));
  }
  if (!wrote.ok()) return wrote;
  if (options_.sync_on_write && ::fdatasync(fds_[disk]) != 0)
    return Status::io_error(errno_text("fdatasync", disk_path(disk)));
  return OkStatus();
}

Status FileBackend::sync(DiskId disk) {
  if (Status ok = check(disk, 0, 0); !ok.ok()) return ok;
  if (::fdatasync(fds_[disk]) != 0)
    return Status::io_error(errno_text("fdatasync", disk_path(disk)));
  return OkStatus();
}

Status FileBackend::discard(DiskId disk, std::uint8_t fill) {
  if (Status ok = check(disk, 0, 0); !ok.ok()) return ok;
  // Overwrite the whole image in chunks; 1 MiB keeps the buffer modest
  // while amortizing syscalls.
  constexpr std::size_t kChunk = 1u << 20;
  std::vector<std::uint8_t> chunk(
      static_cast<std::size_t>(std::min<std::uint64_t>(kChunk,
                                                       geometry_.disk_bytes)),
      fill);
  std::uint64_t offset = 0;
  while (offset < geometry_.disk_bytes) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunk.size(), geometry_.disk_bytes - offset));
    // Route through write() so direct-I/O staging/fallback applies to
    // the fill too (the vector buffer is not 4096-aligned).
    if (Status wrote = write(disk, offset, {chunk.data(), n}); !wrote.ok())
      return wrote;
    offset += n;
  }
  return OkStatus();
}

}  // namespace pdl::io
