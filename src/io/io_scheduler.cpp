#include "io/io_scheduler.hpp"

#include <limits>
#include <stdexcept>
#include <string>

namespace pdl::io {

namespace {

[[nodiscard]] bool is_background(IoClass io_class) noexcept {
  return io_class == IoClass::kRebuild || io_class == IoClass::kScrub;
}

/// Index of the lowest-seq entry satisfying `predicate`, or npos.
template <typename Predicate>
[[nodiscard]] std::size_t min_seq_where(std::span<const PendingIo> pending,
                                        Predicate predicate) noexcept {
  std::size_t best = std::numeric_limits<std::size_t>::max();
  std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < pending.size(); ++i)
    if (predicate(pending[i]) && pending[i].seq < best_seq) {
      best = i;
      best_seq = pending[i].seq;
    }
  return best;
}

class FifoIoScheduler final : public IoScheduler {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "fifo";
  }
  [[nodiscard]] std::size_t pick(std::span<const PendingIo> pending,
                                 std::uint64_t) override {
    return min_seq_where(pending, [](const PendingIo&) { return true; });
  }
};

class DeadlineIoScheduler final : public IoScheduler {
 public:
  explicit DeadlineIoScheduler(const DeadlineTargets& targets)
      : targets_(targets) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "deadline";
  }
  [[nodiscard]] std::size_t pick(std::span<const PendingIo> pending,
                                 std::uint64_t) override {
    std::size_t best = 0;
    std::uint64_t best_deadline = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const std::uint64_t deadline =
          pending[i].enqueue_us + targets_.of(pending[i].io_class);
      if (deadline < best_deadline ||
          (deadline == best_deadline && pending[i].seq < best_seq)) {
        best = i;
        best_deadline = deadline;
        best_seq = pending[i].seq;
      }
    }
    return best;
  }

 private:
  DeadlineTargets targets_;
};

class RebuildDeprioritizingIoScheduler final : public IoScheduler {
 public:
  explicit RebuildDeprioritizingIoScheduler(std::uint64_t max_delay_us)
      : max_delay_us_(max_delay_us) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "rebuild-deprioritizing";
  }
  [[nodiscard]] std::size_t pick(std::span<const PendingIo> pending,
                                 std::uint64_t now_us) override {
    // Anti-starvation first: a background request past its bounded
    // delay outranks everything (oldest such wins, so the bound holds
    // for each request individually, not just the class).
    const std::size_t overdue =
        min_seq_where(pending, [&](const PendingIo& p) {
          return is_background(p.io_class) &&
                 now_us - p.enqueue_us >= max_delay_us_;
        });
    if (overdue != std::numeric_limits<std::size_t>::max()) return overdue;

    const std::size_t foreground = min_seq_where(
        pending, [](const PendingIo& p) { return !is_background(p.io_class); });
    if (foreground != std::numeric_limits<std::size_t>::max())
      return foreground;
    return min_seq_where(pending, [](const PendingIo&) { return true; });
  }

 private:
  std::uint64_t max_delay_us_;
};

}  // namespace

std::uint64_t DeadlineTargets::of(IoClass io_class) const noexcept {
  switch (io_class) {
    case IoClass::kForegroundRead: return foreground_read_us;
    case IoClass::kForegroundWrite: return foreground_write_us;
    case IoClass::kRebuild: return rebuild_us;
    case IoClass::kScrub: return scrub_us;
  }
  return scrub_us;
}

std::unique_ptr<IoScheduler> make_fifo_io_scheduler() {
  return std::make_unique<FifoIoScheduler>();
}

std::unique_ptr<IoScheduler> make_deadline_io_scheduler(
    const DeadlineTargets& targets) {
  return std::make_unique<DeadlineIoScheduler>(targets);
}

std::unique_ptr<IoScheduler> make_rebuild_deprioritizing_io_scheduler(
    std::uint64_t max_background_delay_us) {
  return std::make_unique<RebuildDeprioritizingIoScheduler>(
      max_background_delay_us);
}

std::unique_ptr<IoScheduler> make_io_scheduler(std::string_view name) {
  if (name == "fifo") return make_fifo_io_scheduler();
  if (name == "deadline") return make_deadline_io_scheduler();
  if (name == "rebuild-deprioritizing")
    return make_rebuild_deprioritizing_io_scheduler();
  throw std::invalid_argument("unknown IoScheduler \"" + std::string(name) +
                              "\" (fifo|deadline|rebuild-deprioritizing)");
}

std::vector<std::string_view> io_scheduler_names() {
  return {"fifo", "deadline", "rebuild-deprioritizing"};
}

}  // namespace pdl::io
