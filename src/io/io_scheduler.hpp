#pragma once
/// @file
/// pdl::io::IoScheduler -- pluggable per-disk request scheduling for the
/// async I/O engine (async_backend.hpp).
///
/// AsyncDiskBackend owns one submission queue per disk; each time a
/// disk's drain loop is ready to dispatch it asks that disk's scheduler
/// which pending request goes next.  This is the real-data-path
/// analogue of the simulator's sim::RebuildScheduler: where the sim
/// policies order *rebuild job batches*, these policies order *live I/O
/// requests* competing for a disk -- foreground reads and writes
/// against rebuild and scrub traffic (see io::IoClass).
///
/// Three policies ship:
///
///   * fifo                    -- strict submission order, the baseline;
///   * deadline                -- every request gets a class-dependent
///                               latency target; earliest deadline
///                               first.  Foreground targets are tight,
///                               background targets loose, so user I/O
///                               overtakes rebuild bursts without ever
///                               starving them;
///   * rebuild-deprioritizing  -- foreground strictly first, rebuild /
///                               scrub only when the disk is otherwise
///                               idle -- EXCEPT that a background
///                               request waiting longer than
///                               max_background_delay_us jumps the
///                               queue (bounded delay, so rebuild makes
///                               progress under any foreground load and
///                               mean-time-to-repair stays bounded).
///
/// Scheduler instances are per-disk and may keep state, but must be
/// deterministic: the same sequence of pick() calls over the same
/// pending sets yields the same choices.  Calls are made under the
/// owning queue's lock -- implementations must not block.

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "io/disk_backend.hpp"

namespace pdl::io {

/// Scheduler-visible summary of one queued request.  `seq` is a global
/// submission counter (FIFO order across the whole backend);
/// `enqueue_us` is microseconds since the engine started.
struct PendingIo {
  IoClass io_class = IoClass::kForegroundRead;
  IoRequest::Op op = IoRequest::Op::kRead;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t seq = 0;
  std::uint64_t enqueue_us = 0;
};

/// Per-disk dispatch policy.  See the file comment for the contract.
class IoScheduler {
 public:
  virtual ~IoScheduler() = default;

  /// Stable policy name ("fifo", "deadline", "rebuild-deprioritizing").
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Index into `pending` (never empty) of the request to dispatch
  /// next.  `now_us` is the engine clock at dispatch time, same epoch
  /// as PendingIo::enqueue_us.
  [[nodiscard]] virtual std::size_t pick(std::span<const PendingIo> pending,
                                         std::uint64_t now_us) = 0;
};

/// Class-dependent latency targets for the deadline policy, in
/// microseconds from enqueue.
struct DeadlineTargets {
  std::uint64_t foreground_read_us = 500;
  std::uint64_t foreground_write_us = 1000;
  std::uint64_t rebuild_us = 20000;
  std::uint64_t scrub_us = 50000;

  /// The target for one class.
  [[nodiscard]] std::uint64_t of(IoClass io_class) const noexcept;
};

/// Strict submission order (lowest seq first).
[[nodiscard]] std::unique_ptr<IoScheduler> make_fifo_io_scheduler();

/// Earliest deadline first under `targets`; ties broken by seq.
[[nodiscard]] std::unique_ptr<IoScheduler> make_deadline_io_scheduler(
    const DeadlineTargets& targets = {});

/// Foreground first; rebuild/scrub only on an otherwise-idle disk or
/// once a background request has waited `max_background_delay_us`
/// (bounded delay -- the anti-starvation guarantee tests assert).
[[nodiscard]] std::unique_ptr<IoScheduler>
make_rebuild_deprioritizing_io_scheduler(
    std::uint64_t max_background_delay_us = 10000);

/// Scheduler by name: "fifo", "deadline", or "rebuild-deprioritizing"
/// (default knobs).  Throws std::invalid_argument for unknown names --
/// a configuration bug, not a runtime condition.
[[nodiscard]] std::unique_ptr<IoScheduler> make_io_scheduler(
    std::string_view name);

/// The names make_io_scheduler accepts, for bench/CLI enumeration.
[[nodiscard]] std::vector<std::string_view> io_scheduler_names();

}  // namespace pdl::io
