#include "io/scrubber.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace pdl::io {

struct Scrubber::Impl {
  mutable std::mutex mutex;        ///< pass serialization + totals
  std::condition_variable cv;      ///< interruptible background sleep
  ScrubReport total;
  std::uint64_t passes = 0;
  Status last_error;
  bool stop_requested = false;
  bool thread_running = false;
  std::thread sweeper;
};

namespace {

void fold(ScrubReport& total, const ScrubReport& pass) {
  total.instances += pass.instances;
  total.mismatches += pass.mismatches;
  total.healed += pass.healed;
  total.unhealable += pass.unhealable;
  total.skipped += pass.skipped;
}

}  // namespace

Scrubber::Scrubber(StripeStore& store, ScrubberOptions options)
    : store_(store),
      options_(options),
      impl_(std::make_unique<Impl>()) {
  if (options_.instances_per_pass == 0) options_.instances_per_pass = 1;
}

Scrubber::~Scrubber() { stop(); }

Result<ScrubReport> Scrubber::run_pass() {
  // One pass in flight: a second caller queues here rather than racing
  // the cursor (scrub parallelism belongs across stores, not within).
  std::unique_lock<std::mutex> lock(impl_->mutex);
  // The pass reads every unit of each instance's stripe; that footprint
  // is the pacing currency, refunded pro rata for a short final slice.
  const std::uint64_t per_instance =
      store_.array().max_stripe_bytes(store_.unit_bytes());
  const std::uint64_t estimate = options_.instances_per_pass * per_instance;
  if (options_.pacer.acquire) {
    lock.unlock();  // acquire may block a long time; don't hold the pass
    options_.pacer.acquire(estimate);
    lock.lock();
  }
  auto report = store_.scrub_some(options_.instances_per_pass);
  const std::uint64_t used =
      report.ok() ? report.value().instances * per_instance : 0;
  if (options_.pacer.refund && used < estimate)
    options_.pacer.refund(estimate - used);
  if (!report.ok()) return report;
  fold(impl_->total, report.value());
  ++impl_->passes;
  return report;
}

Result<ScrubReport> Scrubber::run_sweep() {
  const std::uint64_t instances =
      static_cast<std::uint64_t>(store_.array().num_stripes()) *
      store_.iterations();
  ScrubReport sweep;
  for (std::uint64_t done = 0; done < instances;
       done += options_.instances_per_pass) {
    auto pass = run_pass();
    if (!pass.ok()) return pass;
    fold(sweep, pass.value());
    if (pass.value().instances == 0) break;  // integrity off: nothing to do
  }
  return sweep;
}

void Scrubber::start() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->thread_running) return;
  impl_->stop_requested = false;
  impl_->thread_running = true;
  impl_->sweeper = std::thread([this] {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(impl_->mutex);
        if (impl_->stop_requested) break;
      }
      auto pass = run_pass();
      std::unique_lock<std::mutex> lock(impl_->mutex);
      if (!pass.ok()) {
        // Substrate failure: record it and park (spinning on a broken
        // backend would just melt the error counters).
        if (impl_->last_error.ok()) impl_->last_error = pass.status();
        impl_->cv.wait(lock, [&] { return impl_->stop_requested; });
        break;
      }
      if (impl_->stop_requested) break;
      if (options_.pass_interval_us > 0)
        impl_->cv.wait_for(lock,
                           std::chrono::microseconds(options_.pass_interval_us),
                           [&] { return impl_->stop_requested; });
    }
  });
}

void Scrubber::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop_requested = true;
  }
  impl_->cv.notify_all();
  if (impl_->sweeper.joinable()) impl_->sweeper.join();
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->thread_running = false;
}

bool Scrubber::running() const noexcept {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->thread_running;
}

ScrubReport Scrubber::total() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->total;
}

std::uint64_t Scrubber::passes() const noexcept {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->passes;
}

Status Scrubber::last_error() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->last_error;
}

}  // namespace pdl::io
