#pragma once
/// @file
/// pdl::io::Scrubber -- the background integrity sweep.
///
/// Checksums only pay off when something reads the cold data: a unit
/// that rots and is never touched again silently burns one of the
/// stripe's erasures, and the loss is discovered exactly when a disk
/// failure spends the rest.  The scrubber closes that window: it walks
/// every stripe instance of a StripeStore in slices (the store's
/// round-robin scrub cursor), verifying every present unit against its
/// stored CRC32C and healing mismatches through the codec -- the same
/// heal-in-place the foreground read path uses, just driven proactively
/// and tagged IoClass::kScrub so schedulers and governors can hold it
/// behind foreground traffic.
///
/// Pacing is pluggable, not built in: ScrubberOptions::pacer carries an
/// acquire/refund hook pair called around every pass with the pass's
/// estimated read footprint in bytes.  fleet::Fleet wires these to its
/// RebuildGovernor (acquire blocks until the shared background-bytes
/// budget covers the pass); a standalone deployment can leave them null
/// and scrub at full speed, or rate-limit with a token bucket of its
/// own.
///
/// Drive it one of two ways:
///   * synchronously -- run_pass() for one governed slice, run_sweep()
///     for one full cycle over the array (bench and test harnesses);
///   * in the background -- start() spawns one sweeper thread issuing a
///     pass every pass_interval_us; stop() (or the destructor) joins it.
///
/// Thread safety: all entry points are safe from any thread; passes
/// themselves serialize on an internal mutex (one pass in flight --
/// scrub parallelism comes from running stores in parallel, not from
/// racing cursors on one store).

#include <cstdint>
#include <functional>
#include <memory>

#include "core/status.hpp"
#include "io/stripe_store.hpp"

namespace pdl::io {

/// Acquire/refund hooks called around every pass with its estimated
/// scrub read bytes.  acquire may block (that is the point: the fleet
/// parks the sweep until the rebuild governor's budget covers it);
/// refund returns the unused remainder.  Either may be null.
struct ScrubPacer {
  std::function<void(std::uint64_t bytes)> acquire;
  std::function<void(std::uint64_t bytes)> refund;
};

/// Construction knobs for Scrubber.
struct ScrubberOptions {
  /// Stripe instances verified per pass (the pacing granule).
  std::uint64_t instances_per_pass = 16;
  /// Background mode: microseconds the sweeper thread sleeps between
  /// passes (0 = back to back).
  std::uint64_t pass_interval_us = 10000;
  /// Bandwidth hooks; see ScrubPacer.
  ScrubPacer pacer = {};
};

/// The background integrity sweep.  See the file comment for the model.
class Scrubber {
 public:
  /// The store must outlive the scrubber.  A store without integrity
  /// enabled is legal; every pass is then an empty report.
  explicit Scrubber(StripeStore& store, ScrubberOptions options = {});
  /// stop()s the background thread if running.
  ~Scrubber();

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// One paced slice: acquire the pass's byte estimate, verify/heal up
  /// to instances_per_pass stripe instances at the store's cursor,
  /// refund the unused budget.  Returns the pass's report; substrate
  /// errors pass through (rot and torn instances are counted, not
  /// fatal).
  [[nodiscard]] Result<ScrubReport> run_pass();

  /// One full cycle over the array (every stripe instance once), as a
  /// sequence of paced passes.  Returns the aggregated report.
  [[nodiscard]] Result<ScrubReport> run_sweep();

  /// Spawns the background sweeper thread (idempotent).
  void start();
  /// Joins the background sweeper (idempotent; the destructor calls it).
  void stop();
  /// Whether the background sweeper is running.
  [[nodiscard]] bool running() const noexcept;

  /// Aggregated report over every pass since construction.
  [[nodiscard]] ScrubReport total() const;
  /// Passes completed since construction.
  [[nodiscard]] std::uint64_t passes() const noexcept;
  /// First substrate error a background pass hit (OK if none); the
  /// sweeper parks itself after recording it.
  [[nodiscard]] Status last_error() const;

 private:
  struct Impl;

  StripeStore& store_;
  ScrubberOptions options_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pdl::io
