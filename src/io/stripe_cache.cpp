#include "io/stripe_cache.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace pdl::io {

namespace {

/// splitmix64 finalizer -- the repo's canonical cheap mixer (same shape
/// as workload_driver's content generator), here keyed per sketch row.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

[[nodiscard]] std::uint32_t pow2_at_least(std::uint32_t n) noexcept {
  std::uint32_t p = 1;
  while (p < n && p < (1u << 30)) p <<= 1;
  return p;
}

[[nodiscard]] std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StripeCache::StripeCache(const StripeCacheOptions& options,
                         std::uint32_t unit_bytes)
    : options_(options), unit_bytes_(unit_bytes) {
  const std::uint32_t width =
      pow2_at_least(std::max<std::uint32_t>(options_.sketch_width, 16));
  sketch_mask_ = width - 1;
  sketch_ = std::vector<std::atomic<std::uint32_t>>(
      static_cast<std::size_t>(kSketchRows) * width);
  for (auto& counter : sketch_) counter.store(0, relaxed);

  const std::uint32_t num_shards =
      pow2_at_least(std::max<std::uint32_t>(options_.cache_shards, 1));
  shard_mask_ = num_shards - 1;
  shard_budget_ = options_.read_cache_bytes / num_shards;
  shards_ = std::vector<CacheShard>(num_shards);

  decay_at_.store(options_.decay_interval, relaxed);
  last_flush_ns_.store(now_ns(), relaxed);
}

// ------------------------------------------------------------- hotness

std::size_t StripeCache::sketch_slot(std::uint32_t row,
                                     std::uint64_t instance) const noexcept {
  // Row-keyed mixing gives kSketchRows independent hash functions.
  const std::uint64_t h = mix64(instance ^ (0xA24BAED4963EE407ull * (row + 1)));
  return static_cast<std::size_t>(row) * (sketch_mask_ + 1) +
         static_cast<std::size_t>(h & sketch_mask_);
}

std::uint32_t StripeCache::note(std::uint64_t instance) noexcept {
  std::uint32_t est = UINT32_MAX;
  for (std::uint32_t row = 0; row < kSketchRows; ++row) {
    // Saturating: a counter pinned at max keeps the estimate an upper
    // bound without wrapping to a tiny value.
    auto& counter = sketch_[sketch_slot(row, instance)];
    std::uint32_t current = counter.load(relaxed);
    while (current != UINT32_MAX &&
           !counter.compare_exchange_weak(current, current + 1, relaxed))
      ;
    est = std::min(est, current == UINT32_MAX ? current : current + 1);
  }

  const std::uint64_t n = notes_.fetch_add(1, relaxed) + 1;
  if (options_.decay_interval > 0) {
    std::uint64_t due = decay_at_.load(relaxed);
    // One caller crosses the threshold, wins the CAS, and sweeps; the
    // rest see the re-armed threshold and move on.
    if (n >= due &&
        decay_at_.compare_exchange_strong(due, n + options_.decay_interval,
                                          relaxed))
      decay();
  }
  return est;
}

std::uint32_t StripeCache::estimate(std::uint64_t instance) const noexcept {
  std::uint32_t est = UINT32_MAX;
  for (std::uint32_t row = 0; row < kSketchRows; ++row)
    est = std::min(est, sketch_[sketch_slot(row, instance)].load(relaxed));
  return est;
}

void StripeCache::decay() noexcept {
  for (auto& counter : sketch_) {
    std::uint32_t current = counter.load(relaxed);
    // CAS so a decay never erases increments that landed after the
    // load; losing the race just retries on the fresher value.
    while (!counter.compare_exchange_weak(current, current / 2, relaxed))
      ;
  }
  decays_.fetch_add(1, relaxed);
}

// --------------------------------------------------------- read cache

bool StripeCache::lookup(std::uint64_t logical, std::span<std::uint8_t> out) {
  CacheShard& shard = shards_[mix64(logical) & shard_mask_];
  std::lock_guard lock(shard.mutex);
  const auto it = shard.index.find(logical);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, relaxed);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  std::memcpy(out.data(), it->second->second.data(),
              std::min(out.size(), it->second->second.size()));
  hits_.fetch_add(1, relaxed);
  return true;
}

void StripeCache::fill(std::uint64_t logical,
                       std::span<const std::uint8_t> bytes) {
  if (bytes.size() > shard_budget_) return;  // budget can't ever hold it
  CacheShard& shard = shards_[mix64(logical) & shard_mask_];
  std::lock_guard lock(shard.mutex);
  if (const auto it = shard.index.find(logical); it != shard.index.end()) {
    it->second->second.assign(bytes.begin(), bytes.end());
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  while (shard.bytes + bytes.size() > shard_budget_ && !shard.lru.empty()) {
    shard.bytes -= shard.lru.back().second.size();
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, relaxed);
  }
  shard.lru.emplace_front(logical,
                          std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
  shard.index.emplace(logical, shard.lru.begin());
  shard.bytes += bytes.size();
  fills_.fetch_add(1, relaxed);
}

void StripeCache::invalidate(std::uint64_t logical) {
  CacheShard& shard = shards_[mix64(logical) & shard_mask_];
  std::lock_guard lock(shard.mutex);
  const auto it = shard.index.find(logical);
  if (it == shard.index.end()) return;
  shard.bytes -= it->second->second.size();
  shard.lru.erase(it->second);
  shard.index.erase(it);
  invalidations_.fetch_add(1, relaxed);
}

// --------------------------------------------- dirty-delta table

StripeCache::DirtyUnit* StripeCache::DirtyEntry::find(
    std::uint64_t logical) noexcept {
  for (DirtyUnit& unit : units)
    if (unit.logical == logical) return &unit;
  return nullptr;
}

StripeCache::DirtyEntry* StripeCache::dirty_find(std::uint64_t instance) {
  std::lock_guard lock(dirty_mutex_);
  const auto it = dirty_.find(instance);
  return it == dirty_.end() ? nullptr : it->second.get();
}

StripeCache::DirtyEntry* StripeCache::dirty_ensure(std::uint64_t instance,
                                                   std::uint32_t num_parity,
                                                   bool* created) {
  if (created) *created = false;
  std::lock_guard lock(dirty_mutex_);
  if (const auto it = dirty_.find(instance); it != dirty_.end())
    return it->second.get();
  if (dirty_.size() >= options_.max_dirty_instances) return nullptr;
  auto entry = std::make_unique<DirtyEntry>();
  entry->num_parity = num_parity;
  for (std::uint32_t j = 0; j < num_parity; ++j)
    entry->delta[j].assign(unit_bytes_, 0);
  DirtyEntry* raw = entry.get();
  dirty_.emplace(instance, std::move(entry));
  dirty_count_.store(dirty_.size(), std::memory_order_release);
  if (created) *created = true;
  return raw;
}

void StripeCache::dirty_erase(std::uint64_t instance) {
  std::lock_guard lock(dirty_mutex_);
  dirty_.erase(instance);
  dirty_count_.store(dirty_.size(), std::memory_order_release);
}

std::vector<std::uint64_t> StripeCache::dirty_instances() const {
  std::lock_guard lock(dirty_mutex_);
  std::vector<std::uint64_t> keys;
  keys.reserve(dirty_.size());
  for (const auto& [instance, entry] : dirty_) keys.push_back(instance);
  std::sort(keys.begin(), keys.end());
  return keys;
}

bool StripeCache::flush_due() noexcept {
  if (options_.flush_interval_us == 0) return false;
  const std::int64_t interval_ns =
      static_cast<std::int64_t>(options_.flush_interval_us) * 1000;
  std::int64_t last = last_flush_ns_.load(relaxed);
  const std::int64_t now = now_ns();
  return now - last >= interval_ns &&
         last_flush_ns_.compare_exchange_strong(last, now, relaxed);
}

// --------------------------------------------------------------- stats

HotnessStats StripeCache::stats() const noexcept {
  HotnessStats s;
  s.tracked = notes_.load(relaxed);
  s.decays = decays_.load(relaxed);
  s.hits = hits_.load(relaxed);
  s.misses = misses_.load(relaxed);
  s.fills = fills_.load(relaxed);
  s.invalidations = invalidations_.load(relaxed);
  s.evictions = evictions_.load(relaxed);
  s.absorbed_writes = absorbed_.load(relaxed);
  s.folds = folds_.load(relaxed);
  s.folded_units = folded_units_.load(relaxed);
  s.dirty_instances = dirty_count_.load(std::memory_order_acquire);
  return s;
}

}  // namespace pdl::io
