#pragma once
/// @file
/// pdl::io::StripeCache -- workload-aware hot-stripe caching state.
///
/// The paper's declustered layouts spread REBUILD load evenly, but real
/// traffic is skewed: a zipfian write stream pays a full read-modify-write
/// (data read + parity read + data write + parity write, journaled) per
/// op on the same few hot stripes.  StripeCache is the state that lets
/// io::StripeStore stop paying that tax on the hot set.  It bundles three
/// structures, all sized at construction and allocation-stable after:
///
///   1. A count-min hotness sketch fed by every foreground read and
///      write (`note`), with periodic CAS-gated halving decay so the hot
///      set tracks the CURRENT workload, not history.  `estimate` is a
///      classic count-min upper bound: never an undercount, overcounts
///      only on (bounded-probability) row collisions.
///   2. A sharded, bounded, LRU read cache of unit payloads keyed by
///      logical address (`lookup` / `fill` / `invalidate`).  The store
///      fills it only for hot units, invalidates on every write, and
///      bypasses it entirely for scrub/rebuild traffic, so the cache can
///      never mask media rot from the integrity layer.
///   3. A dirty-delta table for parity-delta batching: RMW writes to a
///      hot stripe instance pin their new data bytes here and accumulate
///      the codec delta (sum of c_j * (old ^ new)) per surviving parity,
///      deferring ALL media traffic until the instance is folded -- one
///      journaled batch writing every dirty data unit plus each parity's
///      old bytes XOR its accumulated delta.  Linearity over GF(2^8)
///      (and trivially over GF(2)) makes the folded parity byte-identical
///      to what per-op RMW would have produced.
///
/// Concurrency contract (the store's lock discipline, restated here
/// because this class is where the shared state lives): the sketch is
/// lock-free (relaxed atomics -- it is statistics, approximate by
/// design); each read-cache shard has its own mutex; the dirty-table MAP
/// is guarded by its own mutex, but an ENTRY's contents are only touched
/// while the store holds that instance's stripe-shard lock exclusively
/// (entries are heap-allocated, so map rehash never moves them).  A
/// reader probing pinned bytes holds the instance's shard lock shared;
/// the folder that would free those bytes holds it exclusively -- same
/// exclusion that already orders readers against RMW.
///
/// StripeCache knows nothing about disks, codecs, or journals; the store
/// drives it.  See stripe_store.cpp for the absorb/fold state machine
/// and docs/ARCHITECTURE.md "Caching and write batching".

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "api/array.hpp"

namespace pdl::io {

/// Construction knobs for the cache layer (StripeStoreOptions::cache).
struct StripeCacheOptions {
  /// Master switch: when false the store never constructs a StripeCache
  /// and every path behaves exactly as before (zero overhead).
  bool enabled = false;
  /// Total read-cache payload budget, split evenly across shards.
  std::uint64_t read_cache_bytes = 4ull << 20;
  /// Read-cache shard count (rounded up to a power of two).
  std::uint32_t cache_shards = 16;
  /// Count-min estimate at which a stripe instance counts as hot --
  /// hot instances get read-cache fills and write absorption.
  std::uint32_t hot_threshold = 8;
  /// Sketch notes between halving decays (0 disables decay).
  std::uint64_t decay_interval = 1 << 14;
  /// Counter columns per sketch row (rounded up to a power of two).
  std::uint32_t sketch_width = 1024;
  /// Dirty-delta table capacity in stripe instances; an absorb that
  /// would exceed it falls back to immediate RMW.
  std::uint32_t max_dirty_instances = 64;
  /// Dirty data units per instance at which the store folds inline
  /// (the size trigger; also bounds the fold's journal record).
  std::uint32_t max_dirty_units = 8;
  /// Microseconds between write-path flush sweeps of the whole dirty
  /// table (the time trigger; 0 disables it -- folds then happen only
  /// on size triggers and explicit flush points).
  std::uint64_t flush_interval_us = 20000;
};

/// Monotonic counters of the cache layer (all zero when disabled).
struct HotnessStats {
  std::uint64_t tracked = 0;        ///< sketch notes (reads + writes)
  std::uint64_t decays = 0;         ///< halving decay sweeps applied
  std::uint64_t hits = 0;           ///< read-cache hits
  std::uint64_t misses = 0;         ///< read-cache misses
  std::uint64_t fills = 0;          ///< read-cache insertions
  std::uint64_t invalidations = 0;  ///< entries dropped by writes
  std::uint64_t evictions = 0;      ///< entries dropped by LRU pressure
  std::uint64_t absorbed_writes = 0;  ///< RMWs absorbed into the table
  std::uint64_t folds = 0;            ///< dirty instances folded to media
  std::uint64_t folded_units = 0;     ///< data units written by folds
  std::uint64_t dirty_instances = 0;  ///< instances dirty RIGHT NOW

  /// Fraction of read-cache probes served from memory.
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t probes = hits + misses;
    return probes > 0 ? static_cast<double>(hits) /
                            static_cast<double>(probes)
                      : 0.0;
  }
};

/// The cache state bundle.  Thread-safety per structure as described in
/// the file comment; geometry (unit_bytes) is fixed at construction.
class StripeCache {
 public:
  StripeCache(const StripeCacheOptions& options, std::uint32_t unit_bytes);

  [[nodiscard]] const StripeCacheOptions& options() const noexcept {
    return options_;
  }

  // ----------------------------------------------------------- hotness

  /// Counts one access to the instance and returns its new count-min
  /// estimate.  Lock-free; triggers a halving decay sweep every
  /// decay_interval notes (one caller wins the CAS and pays the sweep).
  std::uint32_t note(std::uint64_t instance) noexcept;

  /// Current count-min estimate (min over rows) without counting.
  [[nodiscard]] std::uint32_t estimate(std::uint64_t instance) const noexcept;

  /// Whether the instance's estimate has reached hot_threshold.
  [[nodiscard]] bool hot(std::uint64_t instance) const noexcept {
    return estimate(instance) >= options_.hot_threshold;
  }

  // -------------------------------------------------------- read cache

  /// Copies the cached payload for `logical` into `out` and returns
  /// true, or counts a miss and returns false.  A hit refreshes LRU.
  [[nodiscard]] bool lookup(std::uint64_t logical,
                            std::span<std::uint8_t> out);

  /// Inserts (or refreshes) the payload for `logical`, evicting LRU
  /// entries from its shard as needed to stay within budget.
  void fill(std::uint64_t logical, std::span<const std::uint8_t> bytes);

  /// Drops `logical`'s entry if present (every write path calls this --
  /// the cache's only coherence rule).
  void invalidate(std::uint64_t logical);

  // -------------------------------------------- dirty-delta table

  /// One absorbed (not yet on media) data-unit write.
  struct DirtyUnit {
    std::uint64_t logical = 0;   ///< logical address (read-your-writes key)
    api::Physical home;          ///< where the fold will store it
    std::uint32_t data_index = 0;  ///< codec data index within the stripe
    std::vector<std::uint8_t> bytes;  ///< pinned NEW payload
  };

  /// Per-instance accumulation state.  Contents are only touched while
  /// the owner holds the instance's stripe-shard lock exclusively (or
  /// shared, for read-only probes racing no folder -- see file comment).
  struct DirtyEntry {
    std::uint32_t num_parity = 0;  ///< surviving parities at first absorb
    std::array<api::Physical, api::kMaxParityUnits> parity_home;
    std::array<std::uint32_t, api::kMaxParityUnits> parity_index;
    /// delta[j] = sum over absorbed writes of c_j * (old ^ new); the
    /// fold stores parity_old ^ delta[j].  Zeroed at entry creation.
    std::array<std::vector<std::uint8_t>, api::kMaxParityUnits> delta;
    std::vector<DirtyUnit> units;  ///< absorbed writes, oldest first

    /// The absorbed write for `logical`, or nullptr.
    [[nodiscard]] DirtyUnit* find(std::uint64_t logical) noexcept;
  };

  /// The instance's entry, or nullptr when it is clean.  Entries are
  /// pointer-stable until dirty_erase.
  [[nodiscard]] DirtyEntry* dirty_find(std::uint64_t instance);

  /// The instance's entry, creating a zero-delta one (num_parity
  /// parities, unit_bytes-wide deltas) if absent -- unless the table is
  /// at max_dirty_instances, then nullptr (caller falls back to
  /// immediate RMW).  `created` reports whether this call created it.
  [[nodiscard]] DirtyEntry* dirty_ensure(std::uint64_t instance,
                                         std::uint32_t num_parity,
                                         bool* created);

  /// Frees the instance's entry (after a successful fold, or when a
  /// fold-superseding path re-encoded the stripe wholesale).
  void dirty_erase(std::uint64_t instance);

  /// Whether ANY instance is dirty (cheap gate for flush points).
  [[nodiscard]] bool any_dirty() const noexcept {
    return dirty_count_.load(std::memory_order_acquire) > 0;
  }

  /// Snapshot of the dirty instance keys (for a flush sweep; entries
  /// may be folded by others between snapshot and visit).
  [[nodiscard]] std::vector<std::uint64_t> dirty_instances() const;

  /// Nanosecond-free time trigger: returns true (and re-arms) when at
  /// least flush_interval_us elapsed since the last true return.
  [[nodiscard]] bool flush_due() noexcept;

  // ------------------------------------------------------------- stats

  [[nodiscard]] HotnessStats stats() const noexcept;

  // Counter hooks for the store (relaxed -- statistics only).
  void count_hit() noexcept { hits_.fetch_add(1, relaxed); }
  void count_absorb() noexcept { absorbed_.fetch_add(1, relaxed); }
  void count_fold(std::uint64_t units) noexcept {
    folds_.fetch_add(1, relaxed);
    folded_units_.fetch_add(units, relaxed);
  }

 private:
  static constexpr auto relaxed = std::memory_order_relaxed;
  static constexpr std::uint32_t kSketchRows = 4;

  /// Column of `instance` in sketch row `row`.
  [[nodiscard]] std::size_t sketch_slot(std::uint32_t row,
                                        std::uint64_t instance) const noexcept;
  void decay() noexcept;

  struct CacheShard {
    std::mutex mutex;
    /// LRU list, most recent first; payloads live in the nodes.
    std::list<std::pair<std::uint64_t, std::vector<std::uint8_t>>> lru;
    std::unordered_map<std::uint64_t, decltype(lru)::iterator> index;
    std::uint64_t bytes = 0;  ///< payload bytes currently held
  };

  StripeCacheOptions options_;
  std::uint32_t unit_bytes_ = 0;
  std::uint32_t sketch_mask_ = 0;   ///< width - 1 (power of two)
  std::uint32_t shard_mask_ = 0;    ///< cache_shards - 1 (power of two)
  std::uint64_t shard_budget_ = 0;  ///< read_cache_bytes / cache_shards

  /// kSketchRows x width relaxed counters, row-major.
  std::vector<std::atomic<std::uint32_t>> sketch_;
  std::vector<CacheShard> shards_;

  /// Dirty-table map guard (entry CONTENTS are shard-lock territory).
  mutable std::mutex dirty_mutex_;
  std::unordered_map<std::uint64_t, std::unique_ptr<DirtyEntry>> dirty_;
  std::atomic<std::uint64_t> dirty_count_{0};

  std::atomic<std::uint64_t> notes_{0};
  std::atomic<std::uint64_t> decay_at_{0};  ///< note count of next decay
  std::atomic<std::int64_t> last_flush_ns_{0};

  std::atomic<std::uint64_t> decays_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> fills_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> absorbed_{0};
  std::atomic<std::uint64_t> folds_{0};
  std::atomic<std::uint64_t> folded_units_{0};
};

}  // namespace pdl::io
