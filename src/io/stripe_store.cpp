#include "io/stripe_store.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "core/xor_codec.hpp"

namespace pdl::io {

namespace {

/// Poison byte for failed platters: any read that erroneously touches a
/// failed disk shows up as garbage, not as stale-but-plausible data.
constexpr std::uint8_t kPoison = 0xDD;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

[[nodiscard]] std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = kFnvOffset;
  for (const std::uint8_t b : bytes) {
    hash ^= b;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

StripeStore::StripeStore(api::Array array, const StripeStoreOptions& options)
    : array_(std::move(array)),
      unit_bytes_(options.unit_bytes),
      iterations_(options.iterations),
      sync_(std::make_unique<Sync>(std::max(1u, options.lock_shards))) {
  disks_.assign(array_.num_disks(),
                std::vector<std::uint8_t>(disk_bytes(), 0));
}

Result<StripeStore> StripeStore::create(api::Array array,
                                        const StripeStoreOptions& options) {
  if (options.unit_bytes == 0)
    return Status::invalid_argument("unit_bytes must be positive");
  if (options.iterations == 0)
    return Status::invalid_argument("iterations must be positive");
  if (!array.healthy())
    return Status::failed_precondition(
        "StripeStore::create needs a healthy array: the store's disks "
        "start zero-filled, which is only parity-consistent with no "
        "pre-existing failure state");
  return StripeStore(std::move(array), options);
}

std::mutex& StripeStore::shard_for(std::uint64_t logical) noexcept {
  const api::Array::LogicalRef ref = array_.logical_ref(logical);
  const std::uint64_t instance =
      ref.stripe + ref.iteration * array_.num_stripes();
  return sync_->shards[instance % sync_->shards.size()];
}

// -------------------------------------------------------------- data path

Status StripeStore::read(std::uint64_t logical, std::span<std::uint8_t> out,
                         ReadReceipt* receipt) {
  if (logical >= num_logical_units())
    return Status::out_of_range("logical " + std::to_string(logical) +
                                " past the address space (" +
                                std::to_string(num_logical_units()) +
                                " units)");
  if (out.size() != unit_bytes_)
    return Status::invalid_argument(
        "read buffer is " + std::to_string(out.size()) + " bytes; units are " +
        std::to_string(unit_bytes_));

  std::shared_lock state(sync_->state);
  std::lock_guard stripe(shard_for(logical));

  std::array<Physical, 64> survivors;
  const auto plan = array_.locate(logical, survivors);
  if (!plan.ok()) return plan.status();

  switch (plan->kind) {
    case api::ReadPlan::Kind::kDirect: {
      const auto src = unit_cspan(plan->target);
      std::memcpy(out.data(), src.data(), unit_bytes_);
      if (receipt) {
        receipt->kind = plan->kind;
        receipt->num_touched = 1;
        receipt->touched[0] = plan->target;
      }
      return OkStatus();
    }
    case api::ReadPlan::Kind::kDegraded: {
      std::array<std::span<const std::uint8_t>, 64> srcs;
      for (std::uint32_t i = 0; i < plan->num_survivors; ++i)
        srcs[i] = unit_cspan(survivors[i]);
      core::xor_reconstruct_into(out, {srcs.data(), plan->num_survivors});
      if (receipt) {
        receipt->kind = plan->kind;
        receipt->num_touched = plan->num_survivors;
        std::copy_n(survivors.begin(), plan->num_survivors,
                    receipt->touched.begin());
      }
      return OkStatus();
    }
    case api::ReadPlan::Kind::kUnrecoverable:
      break;
  }
  if (receipt) {
    receipt->kind = api::ReadPlan::Kind::kUnrecoverable;
    receipt->num_touched = 0;
  }
  return Status::data_loss("logical " + std::to_string(logical) +
                           " is on a stripe that lost two units");
}

Status StripeStore::write(std::uint64_t logical,
                          std::span<const std::uint8_t> data,
                          WriteReceipt* receipt) {
  if (logical >= num_logical_units())
    return Status::out_of_range("logical " + std::to_string(logical) +
                                " past the address space (" +
                                std::to_string(num_logical_units()) +
                                " units)");
  if (data.size() != unit_bytes_)
    return Status::invalid_argument(
        "write buffer is " + std::to_string(data.size()) +
        " bytes; units are " + std::to_string(unit_bytes_));

  std::shared_lock state(sync_->state);
  std::lock_guard stripe(shard_for(logical));

  std::array<Physical, 64> peers;
  const auto plan = array_.plan_write(logical, peers);
  if (!plan.ok()) return plan.status();
  if (receipt) {
    receipt->kind = plan->kind;
    receipt->num_reads = 0;
    receipt->num_writes = 0;
  }

  switch (plan->kind) {
    case api::WritePlan::Kind::kReadModifyWrite: {
      // parity ^= old ^ new, then the data unit takes the new bytes.
      const auto d = unit_span(plan->data);
      const auto p = unit_span(plan->parity);
      for (std::uint32_t i = 0; i < unit_bytes_; ++i)
        p[i] ^= static_cast<std::uint8_t>(d[i] ^ data[i]);
      std::memcpy(d.data(), data.data(), unit_bytes_);
      if (receipt) {
        receipt->num_reads = 2;
        receipt->reads[0] = plan->data;
        receipt->reads[1] = plan->parity;
        receipt->num_writes = 2;
        receipt->writes[0] = plan->data;
        receipt->writes[1] = plan->parity;
      }
      return OkStatus();
    }
    case api::WritePlan::Kind::kReconstructWrite: {
      // The data unit's disk is gone: fold the new value into parity so a
      // degraded read reconstructs it.  parity = XOR(peers) ^ new data.
      std::array<std::span<const std::uint8_t>, 64> srcs;
      for (std::uint32_t i = 0; i < plan->num_peer_reads; ++i)
        srcs[i] = unit_cspan(peers[i]);
      srcs[plan->num_peer_reads] = data;
      core::xor_parity_into(unit_span(plan->parity),
                            {srcs.data(), plan->num_peer_reads + 1u});
      if (receipt) {
        receipt->num_reads = plan->num_peer_reads;
        std::copy_n(peers.begin(), plan->num_peer_reads,
                    receipt->reads.begin());
        receipt->num_writes = 1;
        receipt->writes[0] = plan->parity;
      }
      return OkStatus();
    }
    case api::WritePlan::Kind::kUnprotectedWrite: {
      const auto d = unit_span(plan->data);
      std::memcpy(d.data(), data.data(), unit_bytes_);
      if (receipt) {
        receipt->num_writes = 1;
        receipt->writes[0] = plan->data;
      }
      return OkStatus();
    }
    case api::WritePlan::Kind::kUnrecoverable:
      break;
  }
  return Status::data_loss("logical " + std::to_string(logical) +
                           " is on a stripe that lost two units");
}

// ------------------------------------------------- failure & rebuild

Status StripeStore::fail_disk(DiskId disk) {
  std::unique_lock lock(sync_->state);
  if (Status failed = array_.fail_disk(disk); !failed.ok()) return failed;
  std::fill(disks_[disk].begin(), disks_[disk].end(), kPoison);
  return OkStatus();
}

Status StripeStore::replace_disk(DiskId disk) {
  std::unique_lock lock(sync_->state);
  if (Status replaced = array_.replace_disk(disk); !replaced.ok())
    return replaced;
  std::fill(disks_[disk].begin(), disks_[disk].end(), std::uint8_t{0});
  return OkStatus();
}

Status StripeStore::apply_step_bytes(const api::RebuildStep& step) {
  // Bytes first, every iteration of the stripe (the step reports
  // iteration-0 offsets), then the array's state transition.
  std::array<std::span<const std::uint8_t>, 64> srcs;
  const std::uint32_t n = static_cast<std::uint32_t>(step.reads.size());
  for (std::uint32_t it = 0; it < iterations_; ++it) {
    const std::uint64_t lift =
        static_cast<std::uint64_t>(it) * array_.units_per_disk();
    for (std::uint32_t i = 0; i < n; ++i)
      srcs[i] = unit_cspan(
          {step.reads[i].disk, step.reads[i].offset + lift});
    core::xor_reconstruct_into(
        unit_span({step.target.disk, step.target.offset + lift}),
        {srcs.data(), n});
  }
  return array_.apply_rebuild_step(step);
}

Result<std::uint64_t> StripeStore::rebuild_some(std::uint64_t max_steps,
                                                std::uint64_t* blocked) {
  std::unique_lock lock(sync_->state);
  auto plan = array_.plan_rebuild();
  if (!plan.ok()) return plan.status();
  if (blocked) *blocked = plan->blocked;
  std::uint64_t applied = 0;
  for (const api::RebuildStep& step : plan->steps) {
    if (applied >= max_steps) break;
    if (Status done = apply_step_bytes(step); !done.ok()) return done;
    ++applied;
  }
  return applied;
}

Result<api::RebuildOutcome> StripeStore::rebuild() {
  api::RebuildOutcome outcome;
  for (;;) {
    // The pass that finds nothing left to apply has already planned the
    // final state, so its blocked count is the outcome's.
    std::uint64_t blocked = 0;
    auto applied = rebuild_some(~0ull, &blocked);
    if (!applied.ok()) return applied.status();
    if (*applied == 0) {
      outcome.blocked = blocked;
      return outcome;
    }
    outcome.applied += *applied;
  }
}

// ------------------------------------------------------------ verification

std::uint64_t StripeStore::checksum_disk(DiskId disk) const {
  std::unique_lock lock(sync_->state);  // exclude in-flight writers
  return fnv1a(disks_[disk]);
}

std::vector<std::uint64_t> StripeStore::checksum_disks() const {
  std::unique_lock lock(sync_->state);
  std::vector<std::uint64_t> sums;
  sums.reserve(disks_.size());
  for (const auto& disk : disks_) sums.push_back(fnv1a(disk));
  return sums;
}

}  // namespace pdl::io
