#include "io/stripe_store.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "core/xor_codec.hpp"

namespace pdl::io {

namespace {

/// Poison byte for failed platters: any read that erroneously touches a
/// failed disk shows up as garbage, not as stale-but-plausible data.
constexpr std::uint8_t kPoison = 0xDD;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

[[nodiscard]] std::uint64_t fnv1a(std::uint64_t hash,
                                  std::span<const std::uint8_t> bytes) {
  for (const std::uint8_t b : bytes) {
    hash ^= b;
    hash *= kFnvPrime;
  }
  return hash;
}

/// Per-thread staging buffers for the backend (no-view) paths, so the
/// serving hot loop stays allocation-free after warm-up.  Index selects
/// one of two independent buffers (some paths need a pair).
[[nodiscard]] std::span<std::uint8_t> scratch(std::size_t which,
                                              std::size_t size) {
  thread_local std::vector<std::uint8_t> buffers[2];
  auto& buffer = buffers[which];
  if (buffer.size() < size) buffer.resize(size);
  return {buffer.data(), size};
}

}  // namespace

StripeStore::StripeStore(api::Array array, const StripeStoreOptions& options,
                         std::unique_ptr<DiskBackend> backend)
    : array_(std::move(array)),
      unit_bytes_(options.unit_bytes),
      iterations_(options.iterations),
      backend_(std::move(backend)),
      sync_(std::make_unique<Sync>(std::max(1u, options.lock_shards))) {}

Result<StripeStore> StripeStore::create(api::Array array,
                                        const StripeStoreOptions& options,
                                        std::unique_ptr<DiskBackend> backend) {
  if (options.unit_bytes == 0)
    return Status::invalid_argument("unit_bytes must be positive");
  if (options.iterations == 0)
    return Status::invalid_argument("iterations must be positive");
  if (!array.healthy())
    return Status::failed_precondition(
        "StripeStore::create needs a healthy array: the backend's disks "
        "start zero-filled (or carry a prior store's parity-consistent "
        "image), which is only consistent with no pre-existing failure "
        "state");
  if (!backend) backend = make_memory_backend();

  StripeStore store(std::move(array), options, std::move(backend));
  const BackendGeometry geometry{store.array_.num_disks(),
                                 store.disk_bytes()};
  if (Status opened = store.backend_->open(geometry); !opened.ok())
    return opened;

  // Cache zero-copy views when the backend offers them (all disks or
  // none, per the DiskBackend contract).
  std::vector<std::span<std::uint8_t>> views;
  views.reserve(geometry.num_disks);
  for (DiskId disk = 0; disk < geometry.num_disks; ++disk) {
    const auto view = store.backend_->memory_view(disk);
    if (view.size() != geometry.disk_bytes) break;
    views.push_back(view);
  }
  if (views.size() == geometry.num_disks) store.views_ = std::move(views);
  return store;
}

std::mutex& StripeStore::shard_for(std::uint64_t logical) noexcept {
  const api::Array::LogicalRef ref = array_.logical_ref(logical);
  const std::uint64_t instance =
      ref.stripe + ref.iteration * array_.num_stripes();
  return sync_->shards[instance % sync_->shards.size()];
}

// ------------------------------------------------------- unit primitives

Status StripeStore::load_unit(Physical p, std::span<std::uint8_t> out) {
  if (const auto view = unit_view(p); !view.empty()) {
    std::memcpy(out.data(), view.data(), unit_bytes_);
    return OkStatus();
  }
  return backend_->read(p.disk, byte_offset(p.offset), out);
}

Status StripeStore::xor_unit_into(Physical p, std::span<std::uint8_t> acc,
                                  std::span<std::uint8_t> staging) {
  if (const auto view = unit_view(p); !view.empty()) {
    core::xor_into(acc, view);
    return OkStatus();
  }
  if (Status read = backend_->read(p.disk, byte_offset(p.offset), staging);
      !read.ok())
    return read;
  core::xor_into(acc, staging);
  return OkStatus();
}

Status StripeStore::store_unit(Physical p,
                               std::span<const std::uint8_t> data) {
  if (const auto view = unit_view(p); !view.empty()) {
    std::memcpy(view.data(), data.data(), unit_bytes_);
    return OkStatus();
  }
  return backend_->write(p.disk, byte_offset(p.offset), data);
}

// -------------------------------------------------------------- data path

Status StripeStore::read(std::uint64_t logical, std::span<std::uint8_t> out,
                         ReadReceipt* receipt) {
  if (logical >= num_logical_units())
    return Status::out_of_range("logical " + std::to_string(logical) +
                                " past the address space (" +
                                std::to_string(num_logical_units()) +
                                " units)");
  if (out.size() != unit_bytes_)
    return Status::invalid_argument(
        "read buffer is " + std::to_string(out.size()) + " bytes; units are " +
        std::to_string(unit_bytes_));

  std::shared_lock state(sync_->state);
  std::lock_guard stripe(shard_for(logical));

  std::array<Physical, 64> survivors;
  const auto plan = array_.locate(logical, survivors);
  if (!plan.ok()) return plan.status();

  switch (plan->kind) {
    case api::ReadPlan::Kind::kDirect: {
      if (Status loaded = load_unit(plan->target, out); !loaded.ok())
        return loaded;
      if (receipt) {
        receipt->kind = plan->kind;
        receipt->num_touched = 1;
        receipt->touched[0] = plan->target;
      }
      return OkStatus();
    }
    case api::ReadPlan::Kind::kDegraded: {
      if (!views_.empty()) {
        // Zero-copy: XOR every survivor straight out of the disk images
        // in one blocked pass over `out`.
        std::array<std::span<const std::uint8_t>, 64> srcs;
        for (std::uint32_t i = 0; i < plan->num_survivors; ++i)
          srcs[i] = unit_view(survivors[i]);
        core::xor_reconstruct_into(out, {srcs.data(), plan->num_survivors});
      } else {
        // Streamed: first survivor lands in `out`, the rest fold in
        // through one staging buffer.
        if (Status loaded = load_unit(survivors[0], out); !loaded.ok())
          return loaded;
        const auto staging = scratch(0, unit_bytes_);
        for (std::uint32_t i = 1; i < plan->num_survivors; ++i)
          if (Status folded = xor_unit_into(survivors[i], out, staging);
              !folded.ok())
            return folded;
      }
      if (receipt) {
        receipt->kind = plan->kind;
        receipt->num_touched = plan->num_survivors;
        std::copy_n(survivors.begin(), plan->num_survivors,
                    receipt->touched.begin());
      }
      return OkStatus();
    }
    case api::ReadPlan::Kind::kUnrecoverable:
      break;
  }
  if (receipt) {
    receipt->kind = api::ReadPlan::Kind::kUnrecoverable;
    receipt->num_touched = 0;
  }
  return Status::data_loss("logical " + std::to_string(logical) +
                           " is on a stripe that lost two units");
}

Status StripeStore::write(std::uint64_t logical,
                          std::span<const std::uint8_t> data,
                          WriteReceipt* receipt) {
  if (logical >= num_logical_units())
    return Status::out_of_range("logical " + std::to_string(logical) +
                                " past the address space (" +
                                std::to_string(num_logical_units()) +
                                " units)");
  if (data.size() != unit_bytes_)
    return Status::invalid_argument(
        "write buffer is " + std::to_string(data.size()) +
        " bytes; units are " + std::to_string(unit_bytes_));

  std::shared_lock state(sync_->state);
  std::lock_guard stripe(shard_for(logical));

  std::array<Physical, 64> peers;
  const auto plan = array_.plan_write(logical, peers);
  if (!plan.ok()) return plan.status();
  if (receipt) {
    receipt->kind = plan->kind;
    receipt->num_reads = 0;
    receipt->num_writes = 0;
  }

  switch (plan->kind) {
    case api::WritePlan::Kind::kReadModifyWrite: {
      // parity ^= old ^ new, then the data unit takes the new bytes.
      if (const auto p = unit_view(plan->parity); !p.empty()) {
        // Zero-copy: one blocked pass folds old parity, old data, and
        // new data into the parity image in place.
        const std::span<const std::uint8_t> srcs[] = {
            p, unit_view(plan->data), data};
        core::xor_parity_into(p, srcs);
        std::memcpy(unit_view(plan->data).data(), data.data(), unit_bytes_);
      } else {
        const auto parity = scratch(0, unit_bytes_);
        const auto staging = scratch(1, unit_bytes_);
        if (Status loaded = load_unit(plan->parity, parity); !loaded.ok())
          return loaded;
        // staging keeps the old data bytes for the rollback path below.
        if (Status loaded = load_unit(plan->data, staging); !loaded.ok())
          return loaded;
        core::xor_into(parity, staging);
        core::xor_into(parity, data);
        if (Status stored = store_unit(plan->parity, parity); !stored.ok())
          return stored;
        if (Status stored = store_unit(plan->data, data); !stored.ok()) {
          // Torn RMW: new parity landed but the data write failed.  A
          // bare retry of the whole write would fold the delta into the
          // NEW parity and corrupt the stripe, so restore the old parity
          // (P_old = P_new ^ D_old ^ D_new) first -- then the stripe is
          // back in its consistent pre-write state and the caller's
          // retry is safe.  Only a second I/O failure right here leaves
          // the stripe torn.
          core::xor_into(parity, staging);
          core::xor_into(parity, data);
          (void)store_unit(plan->parity, parity);
          return stored;
        }
      }
      if (receipt) {
        receipt->num_reads = 2;
        receipt->reads[0] = plan->data;
        receipt->reads[1] = plan->parity;
        receipt->num_writes = 2;
        receipt->writes[0] = plan->data;
        receipt->writes[1] = plan->parity;
      }
      return OkStatus();
    }
    case api::WritePlan::Kind::kReconstructWrite: {
      // The data unit's disk is gone: fold the new value into parity so a
      // degraded read reconstructs it.  parity = XOR(peers) ^ new data.
      if (!views_.empty()) {
        std::array<std::span<const std::uint8_t>, 64> srcs;
        for (std::uint32_t i = 0; i < plan->num_peer_reads; ++i)
          srcs[i] = unit_view(peers[i]);
        srcs[plan->num_peer_reads] = data;
        core::xor_parity_into(unit_view(plan->parity),
                              {srcs.data(), plan->num_peer_reads + 1u});
      } else {
        const auto parity = scratch(0, unit_bytes_);
        const auto staging = scratch(1, unit_bytes_);
        std::memcpy(parity.data(), data.data(), unit_bytes_);
        for (std::uint32_t i = 0; i < plan->num_peer_reads; ++i)
          if (Status folded = xor_unit_into(peers[i], parity, staging);
              !folded.ok())
            return folded;
        if (Status stored = store_unit(plan->parity, parity); !stored.ok())
          return stored;
      }
      if (receipt) {
        receipt->num_reads = plan->num_peer_reads;
        std::copy_n(peers.begin(), plan->num_peer_reads,
                    receipt->reads.begin());
        receipt->num_writes = 1;
        receipt->writes[0] = plan->parity;
      }
      return OkStatus();
    }
    case api::WritePlan::Kind::kUnprotectedWrite: {
      if (Status stored = store_unit(plan->data, data); !stored.ok())
        return stored;
      if (receipt) {
        receipt->num_writes = 1;
        receipt->writes[0] = plan->data;
      }
      return OkStatus();
    }
    case api::WritePlan::Kind::kUnrecoverable:
      break;
  }
  return Status::data_loss("logical " + std::to_string(logical) +
                           " is on a stripe that lost two units");
}

Status StripeStore::sync() {
  std::unique_lock lock(sync_->state);  // exclude in-flight writers
  for (DiskId disk = 0; disk < array_.num_disks(); ++disk)
    if (Status synced = backend_->sync(disk); !synced.ok()) return synced;
  return OkStatus();
}

// ------------------------------------------------- failure & rebuild

Status StripeStore::fail_disk(DiskId disk) {
  std::unique_lock lock(sync_->state);
  if (Status failed = array_.fail_disk(disk); !failed.ok()) return failed;
  return backend_->discard(disk, kPoison);
}

Status StripeStore::replace_disk(DiskId disk) {
  std::unique_lock lock(sync_->state);
  if (Status replaced = array_.replace_disk(disk); !replaced.ok())
    return replaced;
  return backend_->discard(disk, 0);
}

Status StripeStore::apply_step_bytes(const api::RebuildStep& step) {
  // Bytes first, every iteration of the stripe (the step reports
  // iteration-0 offsets), then the array's state transition.
  const std::uint32_t n = static_cast<std::uint32_t>(step.reads.size());
  for (std::uint32_t it = 0; it < iterations_; ++it) {
    const std::uint64_t lift =
        static_cast<std::uint64_t>(it) * array_.units_per_disk();
    const Physical target{step.target.disk, step.target.offset + lift};
    if (!views_.empty()) {
      std::array<std::span<const std::uint8_t>, 64> srcs;
      for (std::uint32_t i = 0; i < n; ++i)
        srcs[i] = unit_view({step.reads[i].disk, step.reads[i].offset + lift});
      core::xor_reconstruct_into(unit_view(target), {srcs.data(), n});
    } else {
      const auto acc = scratch(0, unit_bytes_);
      const auto staging = scratch(1, unit_bytes_);
      if (Status loaded = load_unit(
              {step.reads[0].disk, step.reads[0].offset + lift}, acc);
          !loaded.ok())
        return loaded;
      for (std::uint32_t i = 1; i < n; ++i)
        if (Status folded = xor_unit_into(
                {step.reads[i].disk, step.reads[i].offset + lift}, acc,
                staging);
            !folded.ok())
          return folded;
      if (Status stored = store_unit(target, acc); !stored.ok())
        return stored;
    }
  }
  return array_.apply_rebuild_step(step);
}

Result<std::uint64_t> StripeStore::rebuild_some(std::uint64_t max_steps,
                                                std::uint64_t* blocked) {
  std::unique_lock lock(sync_->state);
  auto plan = array_.plan_rebuild();
  if (!plan.ok()) return plan.status();
  if (blocked) *blocked = plan->blocked;
  std::uint64_t applied = 0;
  for (const api::RebuildStep& step : plan->steps) {
    if (applied >= max_steps) break;
    if (Status done = apply_step_bytes(step); !done.ok()) return done;
    ++applied;
  }
  return applied;
}

Result<api::RebuildOutcome> StripeStore::rebuild() {
  api::RebuildOutcome outcome;
  for (;;) {
    // The pass that finds nothing left to apply has already planned the
    // final state, so its blocked count is the outcome's.
    std::uint64_t blocked = 0;
    auto applied = rebuild_some(~0ull, &blocked);
    if (!applied.ok()) return applied.status();
    if (*applied == 0) {
      outcome.blocked = blocked;
      return outcome;
    }
    outcome.applied += *applied;
  }
}

// ------------------------------------------------------------ verification

Result<std::uint64_t> StripeStore::checksum_disk_locked(DiskId disk) const {
  if (!views_.empty() && disk < views_.size())
    return fnv1a(kFnvOffset, views_[disk]);

  // Stream the image through a bounded buffer.
  constexpr std::uint64_t kChunk = 1u << 18;
  std::vector<std::uint8_t> chunk(
      static_cast<std::size_t>(std::min<std::uint64_t>(kChunk, disk_bytes())));
  std::uint64_t hash = kFnvOffset;
  std::uint64_t offset = 0;
  while (offset < disk_bytes()) {
    const std::uint64_t n =
        std::min<std::uint64_t>(chunk.size(), disk_bytes() - offset);
    const std::span<std::uint8_t> window{chunk.data(),
                                         static_cast<std::size_t>(n)};
    if (Status read = backend_->read(disk, offset, window); !read.ok())
      return read;
    hash = fnv1a(hash, window);
    offset += n;
  }
  return hash;
}

Result<std::uint64_t> StripeStore::checksum_disk(DiskId disk) const {
  std::unique_lock lock(sync_->state);  // exclude in-flight writers
  return checksum_disk_locked(disk);
}

Result<std::vector<std::uint64_t>> StripeStore::checksum_disks() const {
  // One exclusive lock across ALL disks: the vector is a cross-disk-
  // consistent snapshot (no write can land between two entries).
  std::unique_lock lock(sync_->state);
  std::vector<std::uint64_t> sums;
  sums.reserve(array_.num_disks());
  for (DiskId disk = 0; disk < array_.num_disks(); ++disk) {
    auto sum = checksum_disk_locked(disk);
    if (!sum.ok()) return sum.status();
    sums.push_back(*sum);
  }
  return sums;
}

}  // namespace pdl::io
