#include "io/stripe_store.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "core/codec.hpp"
#include "core/crc32c.hpp"
#include "core/xor_codec.hpp"

namespace pdl::io {

namespace {

/// Poison byte for failed platters: any read that erroneously touches a
/// failed disk shows up as garbage, not as stale-but-plausible data.
constexpr std::uint8_t kPoison = 0xDD;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

[[nodiscard]] std::uint64_t fnv1a(std::uint64_t hash,
                                  std::span<const std::uint8_t> bytes) {
  for (const std::uint8_t b : bytes) {
    hash ^= b;
    hash *= kFnvPrime;
  }
  return hash;
}

/// Per-thread staging buffers for the backend (no-view) paths, so the
/// serving hot loop stays allocation-free after warm-up.  Index selects
/// one of two independent buffers (some paths need a pair).
[[nodiscard]] std::span<std::uint8_t> scratch(std::size_t which,
                                              std::size_t size) {
  thread_local std::vector<std::uint8_t> buffers[2];
  auto& buffer = buffers[which];
  if (buffer.size() < size) buffer.resize(size);
  return {buffer.data(), size};
}

/// Per-thread arena for the batched fan-in paths: one contiguous block
/// the caller carves into unit-sized slices (survivor sets, rebuild
/// waves).  Grow-only, independent of scratch(), so a path may use both.
[[nodiscard]] std::span<std::uint8_t> arena(std::size_t size) {
  thread_local std::vector<std::uint8_t> buffer;
  if (buffer.size() < size) buffer.resize(size);
  return {buffer.data(), size};
}

/// Decodes erased_index[0]'s bytes into `out` from gathered survivor
/// bytes through the codec; other erased units are decoded internally
/// but not materialized.  For XOR parity this is exactly
/// core::xor_reconstruct_into.
void decode_unit(const core::Codec& codec, std::uint32_t num_data,
                 std::span<const std::span<const std::uint8_t>> srcs,
                 std::span<const std::uint32_t> src_index,
                 std::span<const std::uint32_t> erased_index,
                 std::span<std::uint8_t> out) {
  std::array<std::span<std::uint8_t>, api::kMaxParityUnits> outs{};
  outs[0] = out;
  codec.reconstruct(num_data, srcs, src_index, erased_index,
                    {outs.data(), erased_index.size()});
}

/// Whether a rebuild step must TRUST parity bytes (it decodes at least
/// one data unit) as opposed to merely re-encoding parity from data.
[[nodiscard]] bool step_decodes_data(const api::RebuildStep& step) {
  for (std::uint32_t e = 0; e < step.num_erased; ++e)
    if (step.erased_index[e] < step.num_data) return true;
  return false;
}

}  // namespace

StripeStore::StripeStore(api::Array array, const StripeStoreOptions& options,
                         std::unique_ptr<DiskBackend> backend)
    : array_(std::move(array)),
      unit_bytes_(options.unit_bytes),
      iterations_(options.iterations),
      backend_(std::move(backend)),
      sync_(std::make_unique<Sync>(std::max(1u, options.lock_shards))) {}

Result<StripeStore> StripeStore::create(api::Array array,
                                        const StripeStoreOptions& options,
                                        std::unique_ptr<DiskBackend> backend) {
  if (options.unit_bytes == 0)
    return Status::invalid_argument("unit_bytes must be positive");
  if (options.iterations == 0)
    return Status::invalid_argument("iterations must be positive");
  if (!array.healthy())
    return Status::failed_precondition(
        "StripeStore::create needs a healthy array: the backend's disks "
        "start zero-filled (or carry a prior store's parity-consistent "
        "image), which is only consistent with no pre-existing failure "
        "state");
  if (!backend) backend = make_memory_backend();

  StripeStore store(std::move(array), options, std::move(backend));
  store.integrity_ = store.array_.integrity();
  store.crc_base_ = store.disk_bytes();
  if (options.cache.enabled)
    store.cache_ = std::make_unique<StripeCache>(options.cache,
                                                 options.unit_bytes);
  // Under integrity each disk's media grows by a checksum region: one
  // CRC32C word per physical unit, appended after the data region.  A
  // persistent backend's manifest pins the extended size, so reopening
  // an image with the wrong integrity setting fails the geometry check
  // instead of silently mixing formats.
  const std::uint64_t units_per_disk = store.disk_bytes() / options.unit_bytes;
  const std::uint64_t media_bytes =
      store.disk_bytes() + (store.integrity_ ? units_per_disk * 4 : 0);
  const BackendGeometry geometry{store.array_.num_disks(), media_bytes};
  if (Status opened = store.backend_->open(geometry); !opened.ok())
    return opened;

  // Cache zero-copy views when the backend offers them (all disks or
  // none, per the DiskBackend contract).
  std::vector<std::span<std::uint8_t>> views;
  views.reserve(geometry.num_disks);
  for (DiskId disk = 0; disk < geometry.num_disks; ++disk) {
    const auto view = store.backend_->memory_view(disk);
    if (view.size() != geometry.disk_bytes) break;
    views.push_back(view);
  }
  if (views.size() == geometry.num_disks) store.views_ = std::move(views);

  // Load the checksum cache from media: fresh disks are all-zero
  // ("unverified" -- scrub adopts them), a reopened image supplies the
  // previous process's checksums.
  if (store.integrity_) {
    const std::size_t units = static_cast<std::size_t>(units_per_disk);
    store.crc_.resize(geometry.num_disks);
    std::vector<std::uint8_t> raw(units * 4);
    for (DiskId disk = 0; disk < geometry.num_disks; ++disk) {
      if (!store.views_.empty()) {
        std::memcpy(raw.data(),
                    store.views_[disk].data() + store.crc_base_, units * 4);
      } else if (Status read = store.backend_->read(
                     disk, store.crc_base_, {raw.data(), raw.size()});
                 !read.ok()) {
        return read;
      }
      store.crc_[disk].resize(units);
      std::memcpy(store.crc_[disk].data(), raw.data(), units * 4);
    }
  }
  return store;
}

std::uint64_t StripeStore::instance_of(std::uint64_t logical) const noexcept {
  const api::Array::LogicalRef ref = array_.logical_ref(logical);
  return ref.stripe + ref.iteration * array_.num_stripes();
}

std::shared_mutex& StripeStore::shard_for(std::uint64_t logical) noexcept {
  return sync_->shards[instance_of(logical) % sync_->shards.size()];
}

// ---------------------------------------------------------- torn parity

bool StripeStore::is_torn(std::uint64_t instance) const {
  // Relaxed fast path: the happy path (no torn stripe anywhere, ever)
  // never takes torn_mutex.  A racing mark_torn publishes its set insert
  // before the count bump, so a non-zero count always finds a coherent
  // set under the mutex.
  if (sync_->torn_count.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard<std::mutex> lock(sync_->torn_mutex);
  return sync_->torn.count(instance) != 0;
}

void StripeStore::mark_torn(std::uint64_t instance) {
  std::lock_guard<std::mutex> lock(sync_->torn_mutex);
  if (sync_->torn.insert(instance).second)
    sync_->torn_count.fetch_add(1, std::memory_order_release);
}

void StripeStore::clear_torn(std::uint64_t instance) {
  std::lock_guard<std::mutex> lock(sync_->torn_mutex);
  if (sync_->torn.erase(instance) != 0)
    sync_->torn_count.fetch_sub(1, std::memory_order_release);
}

bool StripeStore::parity_torn(std::uint32_t stripe,
                              std::uint64_t iteration) const {
  return is_torn(stripe + iteration * array_.num_stripes());
}

// ------------------------------------------------------- unit primitives

Status StripeStore::load_unit(Physical p, std::span<std::uint8_t> out) {
  if (const auto view = unit_view(p); !view.empty()) {
    std::memcpy(out.data(), view.data(), unit_bytes_);
    return OkStatus();
  }
  return backend_->read(p.disk, byte_offset(p.offset), out);
}

Status StripeStore::xor_unit_into(Physical p, std::span<std::uint8_t> acc,
                                  std::span<std::uint8_t> staging) {
  if (const auto view = unit_view(p); !view.empty()) {
    core::xor_into(acc, view);
    return OkStatus();
  }
  if (Status read = backend_->read(p.disk, byte_offset(p.offset), staging);
      !read.ok())
    return read;
  core::xor_into(acc, staging);
  return OkStatus();
}

Status StripeStore::store_unit(Physical p,
                               std::span<const std::uint8_t> data) {
  if (const auto view = unit_view(p); !view.empty()) {
    std::memcpy(view.data(), data.data(), unit_bytes_);
    return OkStatus();
  }
  return backend_->write(p.disk, byte_offset(p.offset), data);
}

// ---------------------------------------------------- integrity internals

bool StripeStore::verify_unit_crc(Physical p,
                                  std::span<const std::uint8_t> bytes) {
  if (!integrity_) return true;
  const std::uint32_t stored = crc_[p.disk][p.offset];
  if (stored == 0) return true;  // unverified: no claim to check against
  if (core::crc32c_nonzero(bytes) == stored) {
    sync_->crc_verified.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  sync_->crc_mismatches.fetch_add(1, std::memory_order_relaxed);
  return false;
}

Status StripeStore::crc_persist(Physical p) {
  if (!integrity_) return OkStatus();
  const std::uint32_t value = crc_[p.disk][p.offset];
  std::array<std::uint8_t, 4> word;
  std::memcpy(word.data(), &value, 4);
  if (!views_.empty()) {
    std::memcpy(views_[p.disk].data() + crc_media_offset(p.offset),
                word.data(), 4);
    return OkStatus();
  }
  return backend_->write(p.disk, crc_media_offset(p.offset), word);
}

Status StripeStore::set_fresh_crc(Physical p,
                                  std::span<const std::uint8_t> bytes) {
  if (!integrity_) return OkStatus();
  crc_[p.disk][p.offset] = core::crc32c_nonzero(bytes);
  return crc_persist(p);
}

std::uint32_t StripeStore::stage_crc_writes(
    std::span<IoRequest> requests, std::uint32_t count,
    std::span<std::array<std::uint8_t, 4>> staging) {
  if (!integrity_) return count;
  std::uint32_t total = count;
  for (std::uint32_t i = 0; i < count; ++i) {
    const IoRequest& w = requests[i];
    const std::uint64_t unit = w.offset / unit_bytes_;
    const std::uint32_t crc = core::crc32c_nonzero(w.write_buf);
    std::memcpy(staging[i].data(), &crc, 4);
    requests[total++] = IoRequest::write_of(w.io_class, w.disk,
                                            crc_media_offset(unit),
                                            staging[i]);
  }
  return total;
}

void StripeStore::commit_staged_crcs(
    std::span<const IoRequest> units,
    std::span<const std::array<std::uint8_t, 4>> staging) {
  if (!integrity_) return;
  for (std::size_t i = 0; i < units.size(); ++i) {
    std::uint32_t crc = 0;
    std::memcpy(&crc, staging[i].data(), 4);
    crc_[units[i].disk][units[i].offset / unit_bytes_] = crc;
  }
}

Status StripeStore::execute_batch_journaled(std::span<IoRequest> batch) {
  if (!backend_->journaled()) return backend_->execute_batch(batch);
  auto token = backend_->journal_begin(batch);
  if (!token.ok()) {
    // kUnsupported (no writes, record too big) degrades to the plain
    // unjournaled batch; a real journal failure aborts before any
    // in-place write starts.
    if (token.status().code() == StatusCode::kUnsupported)
      return backend_->execute_batch(batch);
    return token.status();
  }
  const Status executed = backend_->execute_batch(batch);
  // Retire the record on EVERY exit: on success the writes are all
  // in place; on partial failure the caller compensates back to the
  // pre-write image -- either way the record must not replay over the
  // state this call reports.  A crash BETWEEN the in-place writes and
  // this retire replays the full record, which is exactly the
  // consistent post-image.
  (void)backend_->journal_commit(*token);
  return executed;
}

// -------------------------------------------------------------- data path

Status StripeStore::read(std::uint64_t logical, std::span<std::uint8_t> out,
                         ReadReceipt* receipt) {
  if (logical >= num_logical_units())
    return Status::out_of_range("logical " + std::to_string(logical) +
                                " past the address space (" +
                                std::to_string(num_logical_units()) +
                                " units)");
  if (out.size() != unit_bytes_)
    return Status::invalid_argument(
        "read buffer is " + std::to_string(out.size()) + " bytes; units are " +
        std::to_string(unit_bytes_));

  std::shared_lock state(sync_->state);
  for (int attempt = 0;; ++attempt) {
    Status served;
    {
      std::shared_lock stripe(shard_for(logical));
      served = read_locked(logical, out, receipt);
    }
    if (served.code() != StatusCode::kChecksumMismatch || attempt > 0)
      return served;
    // Detected rot: upgrade to the writer lock, heal the instance
    // through the codec, and retry the read once.  An unhealable
    // instance (rot past the codec's tolerance) surfaces the mismatch.
    const api::Array::LogicalRef ref = array_.logical_ref(logical);
    std::unique_lock stripe(shard_for(logical));
    (void)heal_instance_locked(ref.stripe,
                               static_cast<std::uint32_t>(ref.iteration),
                               nullptr);
  }
}

Status StripeStore::read_locked(std::uint64_t logical,
                                std::span<std::uint8_t> out,
                                ReadReceipt* receipt) {
  std::array<Physical, 64> survivors;
  std::array<std::uint32_t, 64> survivor_idx;
  const auto plan = array_.locate(
      logical, survivors, {survivor_idx.data(), survivor_idx.size()});
  if (!plan.ok()) return plan.status();

  switch (plan->kind) {
    case api::ReadPlan::Kind::kDirect: {
      if (cache_) {
        const std::uint64_t instance = instance_of(logical);
        const std::uint32_t heat = cache_->note(instance);
        // Read-your-writes: an absorbed (not yet folded) write's pinned
        // bytes are the unit's current value; media is one fold behind.
        if (StripeCache::DirtyEntry* entry = cache_->dirty_find(instance))
          if (const StripeCache::DirtyUnit* unit = entry->find(logical)) {
            std::memcpy(out.data(), unit->bytes.data(), unit_bytes_);
            cache_->count_hit();
            if (receipt) {
              receipt->kind = plan->kind;
              receipt->num_touched = 0;
            }
            return OkStatus();
          }
        if (cache_->lookup(logical, out)) {
          // Cached payloads were CRC-verified at fill and invalidated
          // on every write -- serving them touches no disk.
          if (receipt) {
            receipt->kind = plan->kind;
            receipt->num_touched = 0;
          }
          return OkStatus();
        }
        if (Status loaded = load_unit(plan->target, out); !loaded.ok())
          return loaded;
        if (!verify_unit_crc(plan->target, out))
          return Status::checksum_mismatch(
              "logical " + std::to_string(logical) + " (disk " +
              std::to_string(plan->target.disk) + ", unit " +
              std::to_string(plan->target.offset) +
              ") failed CRC32C verification");
        if (heat >= cache_->options().hot_threshold)
          cache_->fill(logical, out);
        if (receipt) {
          receipt->kind = plan->kind;
          receipt->num_touched = 1;
          receipt->touched[0] = plan->target;
        }
        return OkStatus();
      }
      if (Status loaded = load_unit(plan->target, out); !loaded.ok())
        return loaded;
      if (!verify_unit_crc(plan->target, out))
        return Status::checksum_mismatch(
            "logical " + std::to_string(logical) + " (disk " +
            std::to_string(plan->target.disk) + ", unit " +
            std::to_string(plan->target.offset) +
            ") failed CRC32C verification");
      if (receipt) {
        receipt->kind = plan->kind;
        receipt->num_touched = 1;
        receipt->touched[0] = plan->target;
      }
      return OkStatus();
    }
    case api::ReadPlan::Kind::kDegraded: {
      if (is_torn(instance_of(logical)))
        return Status::parity_inconsistent(
            "logical " + std::to_string(logical) +
            " needs degraded reconstruction, but its stripe instance is "
            "parity-torn (a prior write's compensation failed)");
      std::uint32_t heat = 0;
      if (cache_) {
        // The cache is keyed by LOGICAL address and holds logical
        // content, so a hit legitimately short-circuits the whole
        // survivor fan-in + decode (dirty instances are never degraded
        // -- fail_disk flushes the table first -- so no pin check).
        heat = cache_->note(instance_of(logical));
        if (cache_->lookup(logical, out)) {
          if (receipt) {
            receipt->kind = plan->kind;
            receipt->num_touched = 0;
          }
          return OkStatus();
        }
      }
      const std::uint32_t n = plan->num_survivors;
      const std::span<const std::uint32_t> erased{plan->erased_index.data(),
                                                  plan->num_erased};
      std::array<std::span<const std::uint8_t>, 64> srcs;
      if (!views_.empty()) {
        // Zero-copy: decode every survivor straight out of the disk
        // images in one pass over `out`.
        for (std::uint32_t i = 0; i < n; ++i) srcs[i] = unit_view(survivors[i]);
      } else {
        // Streamed: ONE batched submission fans every survivor read out
        // to its disk (an async backend serves them concurrently), then
        // a single decode pass folds the arena into `out`.
        const auto slab = arena(static_cast<std::size_t>(n) * unit_bytes_);
        std::array<IoRequest, 64> requests;
        for (std::uint32_t i = 0; i < n; ++i) {
          const auto slice = slab.subspan(
              static_cast<std::size_t>(i) * unit_bytes_, unit_bytes_);
          requests[i] = IoRequest::read_of(IoClass::kForegroundRead,
                                           survivors[i].disk,
                                           byte_offset(survivors[i].offset),
                                           slice);
          srcs[i] = slice;
        }
        if (Status fanned = backend_->execute_batch({requests.data(), n});
            !fanned.ok())
          return fanned;
      }
      // A degraded decode trusts every survivor byte: rot in ANY of
      // them would silently materialize as the "reconstructed" unit.
      for (std::uint32_t i = 0; i < n && integrity_; ++i)
        if (!verify_unit_crc(survivors[i], srcs[i]))
          return Status::checksum_mismatch(
              "degraded read of logical " + std::to_string(logical) +
              ": survivor (disk " + std::to_string(survivors[i].disk) +
              ", unit " + std::to_string(survivors[i].offset) +
              ") failed CRC32C verification");
      decode_unit(array_.codec(), plan->num_data, {srcs.data(), n},
                  {survivor_idx.data(), n}, erased, out);
      // Caching the decoded content lets the NEXT read of this hot unit
      // skip the whole fan-in; invalidate-on-write keeps it coherent.
      if (cache_ && heat >= cache_->options().hot_threshold)
        cache_->fill(logical, out);
      if (receipt) {
        receipt->kind = plan->kind;
        receipt->num_touched = n;
        std::copy_n(survivors.begin(), n, receipt->touched.begin());
      }
      return OkStatus();
    }
    case api::ReadPlan::Kind::kUnrecoverable:
      break;
  }
  if (receipt) {
    receipt->kind = api::ReadPlan::Kind::kUnrecoverable;
    receipt->num_touched = 0;
  }
  return Status::data_loss("logical " + std::to_string(logical) +
                           " is on a stripe that lost more units than its "
                           "codec tolerates");
}

Status StripeStore::read_batch(std::span<const std::uint64_t> logicals,
                               std::span<std::uint8_t> out,
                               std::span<Status> statuses,
                               std::span<ReadReceipt> receipts) {
  Status first = read_batch_once(logicals, out, statuses, receipts);
  if (!integrity_ || statuses.size() != logicals.size()) return first;
  bool any_mismatch = false;
  for (const Status& s : statuses)
    if (s.code() == StatusCode::kChecksumMismatch) any_mismatch = true;
  if (!any_mismatch) return first;
  // Heal-and-retry pass: the batch's locks are released, so each
  // mismatched unit goes back through read(), whose writer-locked heal
  // reconstructs the rotten bytes before re-serving.
  first = OkStatus();
  for (std::size_t i = 0; i < logicals.size(); ++i) {
    if (statuses[i].code() == StatusCode::kChecksumMismatch)
      statuses[i] = read(logicals[i],
                         out.subspan(i * unit_bytes_, unit_bytes_),
                         receipts.empty() ? nullptr : &receipts[i]);
    if (!statuses[i].ok() && first.ok()) first = statuses[i];
  }
  return first;
}

Status StripeStore::read_batch_once(std::span<const std::uint64_t> logicals,
                                    std::span<std::uint8_t> out,
                                    std::span<Status> statuses,
                                    std::span<ReadReceipt> receipts) {
  if (out.size() != logicals.size() * unit_bytes_)
    return Status::invalid_argument(
        "read_batch buffer is " + std::to_string(out.size()) + " bytes; " +
        std::to_string(logicals.size()) + " units need " +
        std::to_string(logicals.size() * static_cast<std::uint64_t>(
                                             unit_bytes_)));
  if (statuses.size() != logicals.size())
    return Status::invalid_argument(
        "read_batch statuses span is " + std::to_string(statuses.size()) +
        " wide; need one per unit (" + std::to_string(logicals.size()) + ")");
  if (!receipts.empty() && receipts.size() != logicals.size())
    return Status::invalid_argument(
        "read_batch receipts span is " + std::to_string(receipts.size()) +
        " wide; need none or one per unit (" +
        std::to_string(logicals.size()) + ")");
  if (logicals.empty()) return OkStatus();

  // Lock every involved stripe shard in a deadlock-free global order
  // (sorted by address, deduplicated) -- the batch-wide analogue of
  // read()'s single shard lock.  Shared: reads exclude only writers.
  // A batch that sweeps more than kMaxHeldShards distinct shards takes
  // the state lock exclusively instead -- writers hold state shared,
  // so an exclusive hold excludes them wholesale -- which bounds how
  // many locks one thread holds (ThreadSanitizer's deadlock detector
  // aborts past 64).
  std::vector<std::shared_mutex*> shards;
  shards.reserve(logicals.size());
  for (const std::uint64_t logical : logicals)
    if (logical < num_logical_units()) shards.push_back(&shard_for(logical));
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  constexpr std::size_t kMaxHeldShards = 16;
  std::shared_lock<std::shared_mutex> state(sync_->state, std::defer_lock);
  std::unique_lock<std::shared_mutex> exclusive(sync_->state,
                                                std::defer_lock);
  std::vector<std::shared_lock<std::shared_mutex>> held;
  if (shards.size() > kMaxHeldShards) {
    exclusive.lock();
  } else {
    state.lock();
    held.reserve(shards.size());
    for (std::shared_mutex* shard : shards) held.emplace_back(*shard);
  }

  const auto out_slice = [&](std::size_t i) {
    return out.subspan(i * unit_bytes_, unit_bytes_);
  };

  if (!views_.empty()) {
    // Zero-copy backends gain nothing from gathering: serve in place.
    Status first;
    for (std::size_t i = 0; i < logicals.size(); ++i) {
      statuses[i] = read_locked(logicals[i], out_slice(i),
                                receipts.empty() ? nullptr : &receipts[i]);
      if (!statuses[i].ok() && first.ok()) first = statuses[i];
    }
    return first;
  }

  // Gather phase: plan every unit, emitting backend requests for direct
  // targets (straight into the caller's slice) and degraded survivor
  // sets (into arena slices, XORed after the fan-out completes).
  struct Planned {
    api::ReadPlan::Kind kind = api::ReadPlan::Kind::kUnrecoverable;
    std::size_t first_request = 0;  ///< index into `requests`
    std::uint32_t num_requests = 0;
    bool served = false;     ///< resolved from the cache in the gather phase
    std::uint32_t heat = 0;  ///< hotness estimate, for fill-on-miss
  };
  std::vector<Planned> planned(logicals.size());
  std::vector<IoRequest> requests;
  std::vector<Physical> touched;  ///< per-request physical, for receipts
  requests.reserve(logicals.size());
  touched.reserve(logicals.size());
  Status first;
  const auto fail = [&](std::size_t i, Status status) {
    statuses[i] = std::move(status);
    if (!statuses[i].ok() && first.ok()) first = statuses[i];
  };

  std::size_t degraded_slices = 0;
  std::vector<std::uint32_t> survivor_counts(logicals.size(), 0);
  std::vector<std::array<Physical, 64>> survivor_sets(logicals.size());
  std::vector<std::array<std::uint32_t, 64>> survivor_indices(logicals.size());
  std::vector<Result<api::ReadPlan>> plans;
  plans.reserve(logicals.size());
  for (std::size_t i = 0; i < logicals.size(); ++i) {
    if (logicals[i] >= num_logical_units()) {
      plans.emplace_back(Status::out_of_range(
          "logical " + std::to_string(logicals[i]) +
          " past the address space (" + std::to_string(num_logical_units()) +
          " units)"));
      continue;
    }
    plans.emplace_back(array_.locate(
        logicals[i], survivor_sets[i],
        {survivor_indices[i].data(), survivor_indices[i].size()}));
    if (plans.back().ok() &&
        plans.back()->kind == api::ReadPlan::Kind::kDegraded) {
      survivor_counts[i] = plans.back()->num_survivors;
      degraded_slices += plans.back()->num_survivors;
    }
  }
  const auto slab = arena(degraded_slices * unit_bytes_);
  std::size_t next_slice = 0;

  for (std::size_t i = 0; i < logicals.size(); ++i) {
    statuses[i] = OkStatus();
    if (!receipts.empty()) {
      receipts[i].kind = api::ReadPlan::Kind::kUnrecoverable;
      receipts[i].num_touched = 0;
    }
    if (!plans[i].ok()) {
      fail(i, plans[i].status());
      continue;
    }
    const auto& plan = *plans[i];
    planned[i].kind = plan.kind;
    planned[i].first_request = requests.size();
    // Cache probe: pinned dirty bytes, then the read cache -- a hit
    // drops the unit from the fan-out entirely.  Torn degraded units
    // must still fail below, exactly as an uncached batch would.
    if (cache_ && (plan.kind == api::ReadPlan::Kind::kDirect ||
                   plan.kind == api::ReadPlan::Kind::kDegraded)) {
      const std::uint64_t instance = instance_of(logicals[i]);
      planned[i].heat = cache_->note(instance);
      if (plan.kind == api::ReadPlan::Kind::kDirect)
        if (StripeCache::DirtyEntry* entry = cache_->dirty_find(instance))
          if (const StripeCache::DirtyUnit* unit = entry->find(logicals[i])) {
            std::memcpy(out_slice(i).data(), unit->bytes.data(), unit_bytes_);
            cache_->count_hit();
            planned[i].served = true;
          }
      if (!planned[i].served &&
          !(plan.kind == api::ReadPlan::Kind::kDegraded &&
            is_torn(instance)) &&
          cache_->lookup(logicals[i], out_slice(i)))
        planned[i].served = true;
      if (planned[i].served) {
        if (!receipts.empty()) {
          receipts[i].kind = plan.kind;
          receipts[i].num_touched = 0;
        }
        continue;
      }
    }
    switch (plan.kind) {
      case api::ReadPlan::Kind::kDirect:
        requests.push_back(IoRequest::read_of(IoClass::kForegroundRead,
                                              plan.target.disk,
                                              byte_offset(plan.target.offset),
                                              out_slice(i)));
        touched.push_back(plan.target);
        planned[i].num_requests = 1;
        break;
      case api::ReadPlan::Kind::kDegraded:
        if (is_torn(instance_of(logicals[i]))) {
          fail(i, Status::parity_inconsistent(
                      "logical " + std::to_string(logicals[i]) +
                      " needs degraded reconstruction, but its stripe "
                      "instance is parity-torn (a prior write's compensation "
                      "failed)"));
          break;
        }
        for (std::uint32_t s = 0; s < survivor_counts[i]; ++s) {
          const Physical survivor = survivor_sets[i][s];
          requests.push_back(IoRequest::read_of(
              IoClass::kForegroundRead, survivor.disk,
              byte_offset(survivor.offset),
              slab.subspan(next_slice * unit_bytes_, unit_bytes_)));
          touched.push_back(survivor);
          ++next_slice;
        }
        planned[i].num_requests = survivor_counts[i];
        break;
      case api::ReadPlan::Kind::kUnrecoverable:
        fail(i, Status::data_loss("logical " + std::to_string(logicals[i]) +
                                  " is on a stripe that lost more units than "
                                  "its codec tolerates"));
        break;
    }
  }

  // Fan-out phase: the whole batch crosses the backend seam ONCE.
  if (!requests.empty()) (void)backend_->execute_batch(requests);

  // Resolve phase: per-unit statuses, XOR folds, receipts.
  for (std::size_t i = 0; i < logicals.size(); ++i) {
    if (!statuses[i].ok()) continue;  // planning already failed it
    const Planned& p = planned[i];
    if (p.served) continue;  // cache hit: bytes and receipt already final
    Status unit;
    for (std::uint32_t r = 0; r < p.num_requests && unit.ok(); ++r)
      unit = requests[p.first_request + r].status;
    if (!unit.ok()) {
      fail(i, unit);
      continue;
    }
    if (integrity_) {
      // Verify everything this unit's resolution touched: the direct
      // target (caller's slice) or every degraded survivor (arena).
      Status verified;
      for (std::uint32_t r = 0; r < p.num_requests && verified.ok(); ++r) {
        const Physical touched_unit = touched[p.first_request + r];
        const auto bytes =
            p.kind == api::ReadPlan::Kind::kDirect
                ? std::span<const std::uint8_t>(out_slice(i))
                : std::span<const std::uint8_t>(
                      requests[p.first_request + r].read_buf);
        if (!verify_unit_crc(touched_unit, bytes))
          verified = Status::checksum_mismatch(
              "batched read of logical " + std::to_string(logicals[i]) +
              ": unit (disk " + std::to_string(touched_unit.disk) +
              ", unit " + std::to_string(touched_unit.offset) +
              ") failed CRC32C verification");
      }
      if (!verified.ok()) {
        fail(i, std::move(verified));
        continue;
      }
    }
    if (p.kind == api::ReadPlan::Kind::kDegraded) {
      std::array<std::span<const std::uint8_t>, 64> srcs;
      for (std::uint32_t r = 0; r < p.num_requests; ++r)
        srcs[r] = requests[p.first_request + r].read_buf;
      decode_unit(array_.codec(), plans[i]->num_data,
                  {srcs.data(), p.num_requests},
                  {survivor_indices[i].data(), p.num_requests},
                  {plans[i]->erased_index.data(), plans[i]->num_erased},
                  out_slice(i));
    }
    if (cache_ && p.heat >= cache_->options().hot_threshold)
      cache_->fill(logicals[i], out_slice(i));
    if (!receipts.empty()) {
      receipts[i].kind = p.kind;
      receipts[i].num_touched = p.num_requests;
      std::copy_n(touched.begin() + static_cast<std::ptrdiff_t>(
                                        p.first_request),
                  p.num_requests, receipts[i].touched.begin());
    }
  }
  return first;
}

Status StripeStore::write(std::uint64_t logical,
                          std::span<const std::uint8_t> data,
                          WriteReceipt* receipt) {
  if (logical >= num_logical_units())
    return Status::out_of_range("logical " + std::to_string(logical) +
                                " past the address space (" +
                                std::to_string(num_logical_units()) +
                                " units)");
  if (data.size() != unit_bytes_)
    return Status::invalid_argument(
        "write buffer is " + std::to_string(data.size()) +
        " bytes; units are " + std::to_string(unit_bytes_));

  std::shared_lock state(sync_->state);
  // Time-triggered flush sweep, BEFORE taking this write's own shard
  // lock (the sweep takes each dirty instance's shard lock in turn --
  // including, possibly, this write's).  One writer wins the interval
  // CAS and pays the sweep; errors are not this write's to report (the
  // entries stay dirty and the next trigger retries).
  if (cache_ && cache_->any_dirty() && cache_->flush_due())
    (void)flush_dirty_shared();
  std::unique_lock stripe(shard_for(logical));
  // Any landed bytes invalidate concurrently staged rebuild reads; a
  // spurious bump (e.g. a write that then fails) only costs a retry.
  sync_->write_epoch.fetch_add(1, std::memory_order_relaxed);

  for (int attempt = 0;; ++attempt) {
    Status wrote = write_locked(logical, data, receipt);
    if (wrote.code() != StatusCode::kChecksumMismatch || attempt > 0)
      return wrote;
    // A unit loaded for parity maintenance (old data, old parity, or a
    // reconstruct peer) failed verification: heal the instance under
    // the already-held writer lock and retry the plan once.
    const api::Array::LogicalRef ref = array_.logical_ref(logical);
    (void)heal_instance_locked(ref.stripe,
                               static_cast<std::uint32_t>(ref.iteration),
                               nullptr);
  }
}

Status StripeStore::write_locked(std::uint64_t logical,
                                 std::span<const std::uint8_t> data,
                                 WriteReceipt* receipt) {
  std::array<Physical, 64> peers;
  std::array<std::uint32_t, 64> peer_idx;
  const auto plan = array_.plan_write(logical, peers,
                                      {peer_idx.data(), peer_idx.size()});
  if (!plan.ok()) return plan.status();
  if (receipt) {
    receipt->kind = plan->kind;
    receipt->num_reads = 0;
    receipt->num_writes = 0;
  }
  const std::uint64_t instance = instance_of(logical);
  if (cache_) {
    cache_->note(instance);
    // The ONE coherence rule: every write drops the unit's cached
    // payload (the absorb path re-pins the new bytes itself).
    cache_->invalidate(logical);
  }

  switch (plan->kind) {
    case api::WritePlan::Kind::kReadModifyWrite: {
      // A torn instance's parity cannot absorb a delta -- but all data
      // units are intact here, so the write doubles as the heal: store
      // the new data, re-encode every parity from scratch.
      if (is_torn(instance)) {
        if (cache_)
          if (StripeCache::DirtyEntry* entry = cache_->dirty_find(instance)) {
            // Torn WITH absorbed writes pending: a plain write_heal
            // would re-encode from stale media peers.  Pin this write
            // into the entry and fold the whole instance as one
            // re-encode (media data with the pinned bytes overlaid),
            // which heals the parity AND lands every absorbed write.
            if (StripeCache::DirtyUnit* unit = entry->find(logical)) {
              unit->bytes.assign(data.begin(), data.end());
            } else {
              entry->units.push_back(
                  {logical, plan->data, plan->data_index,
                   std::vector<std::uint8_t>(data.begin(), data.end())});
            }
            return fold_reencode_locked(instance, entry);
          }
        return write_heal(logical, *plan, data, instance, receipt);
      }
      if (cache_ && array_.healthy()) {
        bool handled = false;
        Status absorbed = absorb_rmw(*plan, logical, data, instance,
                                     receipt, &handled);
        if (handled) return absorbed;
      }
      // The legacy single-parity fold below is XOR-only; any array whose
      // codec keeps more than one parity (even if only one SURVIVES --
      // the surviving one may carry a non-unit coefficient) goes through
      // the codec-aware path.
      if (array_.num_parity_units() > 1)
        return write_rmw_multi(*plan, data, instance, receipt);
      // parity ^= old ^ new, then the data unit takes the new bytes.
      if (const auto p = unit_view(plan->parity); !p.empty()) {
        // Verify BEFORE the in-place fold: rot in the old parity or old
        // data would otherwise be laundered into the new parity.
        if (!verify_unit_crc(plan->parity, p) ||
            !verify_unit_crc(plan->data, unit_view(plan->data)))
          return Status::checksum_mismatch(
              "RMW of logical " + std::to_string(logical) +
              ": a pre-image unit failed CRC32C verification");
        // Zero-copy: one blocked pass folds old parity, old data, and
        // new data into the parity image in place.
        const std::span<const std::uint8_t> srcs[] = {
            p, unit_view(plan->data), data};
        core::xor_parity_into(p, srcs);
        std::memcpy(unit_view(plan->data).data(), data.data(), unit_bytes_);
        if (Status crc = set_fresh_crc(plan->parity, p); !crc.ok()) return crc;
        if (Status crc = set_fresh_crc(plan->data, data); !crc.ok()) return crc;
      } else {
        const auto parity = scratch(0, unit_bytes_);
        const auto staging = scratch(1, unit_bytes_);
        // Both RMW reads (old parity + old data) go out as ONE batched
        // submission -- they hit different disks by construction, so an
        // async backend overlaps them.  staging keeps the old data bytes
        // for the compensation paths below.
        std::array<IoRequest, 2> loads = {
            IoRequest::read_of(IoClass::kForegroundWrite, plan->parity.disk,
                               byte_offset(plan->parity.offset), parity),
            IoRequest::read_of(IoClass::kForegroundWrite, plan->data.disk,
                               byte_offset(plan->data.offset), staging)};
        if (Status loaded = backend_->execute_batch(loads); !loaded.ok())
          return loaded;
        if (!verify_unit_crc(plan->parity, parity) ||
            !verify_unit_crc(plan->data, staging))
          return Status::checksum_mismatch(
              "RMW of logical " + std::to_string(logical) +
              ": a pre-image unit failed CRC32C verification");
        core::xor_into(parity, staging);
        core::xor_into(parity, data);
        // Both RMW writes batched too.  The writes are concurrent, so
        // EITHER may land alone; each partial outcome has a
        // compensation that restores the consistent pre-write state:
        //   * parity landed, data failed -> restore old parity
        //     (P_old = P_new ^ D_old ^ D_new);
        //   * data landed, parity failed -> restore the old data bytes
        //     held in staging (old parity still on disk matches them).
        // Either way a caller retry is then safe.  Both-failed needs no
        // compensation (nothing landed); only a failure of the
        // compensating write itself leaves the stripe torn -- the same
        // window the sequential path had.
        std::array<IoRequest, 4> stores;
        stores[0] =
            IoRequest::write_of(IoClass::kForegroundWrite, plan->parity.disk,
                                byte_offset(plan->parity.offset), parity);
        stores[1] =
            IoRequest::write_of(IoClass::kForegroundWrite, plan->data.disk,
                                byte_offset(plan->data.offset), data);
        std::array<std::array<std::uint8_t, 4>, 2> crc_staging;
        const std::uint32_t total =
            stage_crc_writes(stores, 2, crc_staging);
        if (Status stored =
                execute_batch_journaled({stores.data(), total});
            !stored.ok()) {
          Status compensation;
          if (stores[0].status.ok() && !stores[1].status.ok()) {
            core::xor_into(parity, staging);
            core::xor_into(parity, data);
            compensation = store_unit(plan->parity, parity);
          } else if (!stores[0].status.ok() && stores[1].status.ok()) {
            compensation = store_unit(plan->data, staging);
          }
          if (compensation.ok() && integrity_) {
            // Restore the PRE-write checksums too (the cache still
            // holds them): a landed checksum write would otherwise
            // leave media claiming the new bytes.  Best-effort -- a
            // stale media checksum only costs a reopen-time heal.
            (void)crc_persist(plan->parity);
            (void)crc_persist(plan->data);
          }
          if (!compensation.ok()) {
            // The compensating write ALSO failed: parity and data now
            // disagree on disk and nothing in the stripe says so.  Record
            // the tear so parity-trusting paths (degraded reads, rebuild
            // decodes) refuse the instance until a heal re-encodes it.
            mark_torn(instance);
            return Status::parity_inconsistent(
                "RMW compensation failed after a partial stripe write (" +
                compensation.message() +
                "); stripe instance marked parity-torn");
          }
          return stored;
        }
        commit_staged_crcs({stores.data(), 2}, crc_staging);
      }
      if (receipt) {
        receipt->num_reads = 2;
        receipt->reads[0] = plan->data;
        receipt->reads[1] = plan->parity;
        receipt->num_writes = 2;
        receipt->writes[0] = plan->data;
        receipt->writes[1] = plan->parity;
      }
      return OkStatus();
    }
    case api::WritePlan::Kind::kReconstructWrite: {
      // The addressed data unit is lost, so the stripe's OTHER lost data
      // (if any) can only be recovered through parity -- which a torn
      // instance forbids trusting.  Healing is impossible too (a data
      // unit is gone), so the write must fail until a rebuild re-creates
      // the lost unit.
      if (is_torn(instance))
        return Status::parity_inconsistent(
            "logical " + std::to_string(logical) +
            " needs a reconstruct-write, but its stripe instance is "
            "parity-torn and degraded (unhealable until rebuilt)");
      if (array_.num_parity_units() > 1)
        return write_reconstruct_multi(
            *plan, {peers.data(), plan->num_peer_reads},
            {peer_idx.data(), plan->num_peer_reads}, data, instance, receipt);
      // The data unit's disk is gone: fold the new value into parity so a
      // degraded read reconstructs it.  parity = XOR(peers) ^ new data.
      if (!views_.empty()) {
        std::array<std::span<const std::uint8_t>, 64> srcs;
        for (std::uint32_t i = 0; i < plan->num_peer_reads; ++i) {
          srcs[i] = unit_view(peers[i]);
          if (!verify_unit_crc(peers[i], srcs[i]))
            return Status::checksum_mismatch(
                "reconstruct-write of logical " + std::to_string(logical) +
                ": peer (disk " + std::to_string(peers[i].disk) + ", unit " +
                std::to_string(peers[i].offset) +
                ") failed CRC32C verification");
        }
        srcs[plan->num_peer_reads] = data;
        core::xor_parity_into(unit_view(plan->parity),
                              {srcs.data(), plan->num_peer_reads + 1u});
        if (Status crc = set_fresh_crc(plan->parity, unit_view(plan->parity));
            !crc.ok())
          return crc;
      } else {
        // ONE batched submission fans the peer reads out (each peer is
        // on a distinct disk), then parity = XOR(peers) ^ new data in a
        // single pass over the arena.
        const std::uint32_t n = plan->num_peer_reads;
        const auto parity = scratch(0, unit_bytes_);
        const auto slab = arena(static_cast<std::size_t>(n) * unit_bytes_);
        std::array<IoRequest, 64> requests;
        for (std::uint32_t i = 0; i < n; ++i)
          requests[i] = IoRequest::read_of(
              IoClass::kForegroundWrite, peers[i].disk,
              byte_offset(peers[i].offset),
              slab.subspan(static_cast<std::size_t>(i) * unit_bytes_,
                           unit_bytes_));
        if (Status fanned = backend_->execute_batch({requests.data(), n});
            !fanned.ok())
          return fanned;
        for (std::uint32_t i = 0; i < n && integrity_; ++i)
          if (!verify_unit_crc(peers[i], requests[i].read_buf))
            return Status::checksum_mismatch(
                "reconstruct-write of logical " + std::to_string(logical) +
                ": peer (disk " + std::to_string(peers[i].disk) + ", unit " +
                std::to_string(peers[i].offset) +
                ") failed CRC32C verification");
        std::memcpy(parity.data(), data.data(), unit_bytes_);
        for (std::uint32_t i = 0; i < n; ++i)
          core::xor_into(parity, requests[i].read_buf);
        std::array<IoRequest, 2> stores;
        stores[0] =
            IoRequest::write_of(IoClass::kForegroundWrite, plan->parity.disk,
                                byte_offset(plan->parity.offset), parity);
        std::array<std::array<std::uint8_t, 4>, 1> crc_staging;
        const std::uint32_t total = stage_crc_writes(stores, 1, crc_staging);
        if (Status stored = execute_batch_journaled({stores.data(), total});
            !stored.ok())
          return stored;
        commit_staged_crcs({stores.data(), 1}, crc_staging);
      }
      if (receipt) {
        receipt->num_reads = plan->num_peer_reads;
        std::copy_n(peers.begin(), plan->num_peer_reads,
                    receipt->reads.begin());
        receipt->num_writes = 1;
        receipt->writes[0] = plan->parity;
      }
      return OkStatus();
    }
    case api::WritePlan::Kind::kUnprotectedWrite: {
      if (Status stored = store_unit(plan->data, data); !stored.ok())
        return stored;
      if (Status crc = set_fresh_crc(plan->data, data); !crc.ok()) return crc;
      if (receipt) {
        receipt->num_writes = 1;
        receipt->writes[0] = plan->data;
      }
      return OkStatus();
    }
    case api::WritePlan::Kind::kUnrecoverable:
      break;
  }
  return Status::data_loss("logical " + std::to_string(logical) +
                           " is on a stripe that lost more units than its "
                           "codec tolerates");
}

Status StripeStore::write_rmw_multi(const api::WritePlan& plan,
                                    std::span<const std::uint8_t> data,
                                    std::uint64_t instance,
                                    WriteReceipt* receipt) {
  const core::Codec& codec = array_.codec();
  const std::uint32_t np = plan.num_parities;
  const auto fill_receipt = [&] {
    if (!receipt) return;
    receipt->num_reads = 1 + np;
    receipt->reads[0] = plan.data;
    receipt->num_writes = 1 + np;
    receipt->writes[0] = plan.data;
    for (std::uint32_t j = 0; j < np; ++j) {
      receipt->reads[1 + j] = plan.parity_targets[j];
      receipt->writes[1 + j] = plan.parity_targets[j];
    }
  };

  if (!views_.empty()) {
    // Zero-copy: fold c_j * (old ^ new) into every surviving parity
    // image in place, then the data unit takes the new bytes.  Verify
    // every pre-image unit BEFORE the first in-place fold.
    const auto delta = scratch(0, unit_bytes_);
    const auto old_data = unit_view(plan.data);
    if (!verify_unit_crc(plan.data, old_data))
      return Status::checksum_mismatch(
          "RMW: the old data unit failed CRC32C verification");
    for (std::uint32_t j = 0; j < np && integrity_; ++j)
      if (!verify_unit_crc(plan.parity_targets[j],
                           unit_view(plan.parity_targets[j])))
        return Status::checksum_mismatch(
            "RMW: an old parity unit failed CRC32C verification");
    std::memcpy(delta.data(), old_data.data(), unit_bytes_);
    core::xor_into(delta, data);
    for (std::uint32_t j = 0; j < np; ++j)
      codec.update(unit_view(plan.parity_targets[j]), plan.parity_index[j],
                   plan.data_index, delta);
    std::memcpy(old_data.data(), data.data(), unit_bytes_);
    if (integrity_) {
      if (Status crc = set_fresh_crc(plan.data, data); !crc.ok()) return crc;
      for (std::uint32_t j = 0; j < np; ++j)
        if (Status crc = set_fresh_crc(plan.parity_targets[j],
                                       unit_view(plan.parity_targets[j]));
            !crc.ok())
          return crc;
    }
    fill_receipt();
    return OkStatus();
  }

  // Streamed: ONE batched submission loads the old data plus every
  // surviving parity (distinct disks by construction), the coefficient
  // folds happen in memory, then ONE batched submission stores the new
  // data plus every new parity.
  const auto staging = scratch(1, unit_bytes_);  // old data bytes
  const auto delta = scratch(0, unit_bytes_);
  const auto slab = arena(static_cast<std::size_t>(np) * unit_bytes_);
  const auto parity_buf = [&](std::uint32_t j) {
    return slab.subspan(static_cast<std::size_t>(j) * unit_bytes_,
                        unit_bytes_);
  };
  std::array<IoRequest, 1 + api::kMaxParityUnits> loads;
  loads[0] = IoRequest::read_of(IoClass::kForegroundWrite, plan.data.disk,
                                byte_offset(plan.data.offset), staging);
  for (std::uint32_t j = 0; j < np; ++j)
    loads[1 + j] = IoRequest::read_of(
        IoClass::kForegroundWrite, plan.parity_targets[j].disk,
        byte_offset(plan.parity_targets[j].offset), parity_buf(j));
  if (Status loaded = backend_->execute_batch({loads.data(), 1u + np});
      !loaded.ok())
    return loaded;
  if (integrity_) {
    if (!verify_unit_crc(plan.data, staging))
      return Status::checksum_mismatch(
          "RMW: the old data unit failed CRC32C verification");
    for (std::uint32_t j = 0; j < np; ++j)
      if (!verify_unit_crc(plan.parity_targets[j], parity_buf(j)))
        return Status::checksum_mismatch(
            "RMW: an old parity unit failed CRC32C verification");
  }
  std::memcpy(delta.data(), staging.data(), unit_bytes_);
  core::xor_into(delta, data);
  for (std::uint32_t j = 0; j < np; ++j)
    codec.update(parity_buf(j), plan.parity_index[j], plan.data_index, delta);

  std::array<IoRequest, 2 * (1 + api::kMaxParityUnits)> stores;
  stores[0] = IoRequest::write_of(IoClass::kForegroundWrite, plan.data.disk,
                                  byte_offset(plan.data.offset), data);
  for (std::uint32_t j = 0; j < np; ++j)
    stores[1 + j] = IoRequest::write_of(
        IoClass::kForegroundWrite, plan.parity_targets[j].disk,
        byte_offset(plan.parity_targets[j].offset), parity_buf(j));
  std::array<std::array<std::uint8_t, 4>, 1 + api::kMaxParityUnits>
      crc_staging;
  const std::uint32_t total = stage_crc_writes(stores, 1u + np, crc_staging);
  if (Status stored = execute_batch_journaled({stores.data(), total});
      !stored.ok()) {
    // Roll every LANDED write back to the consistent pre-write state:
    // the data unit takes its old bytes back, and a landed parity takes
    // a second identical fold (update is an involution) before being
    // rewritten.  A caller retry is then safe.  Only a failure of the
    // compensation itself leaves the stripe torn.
    Status compensation;
    if (stores[0].status.ok()) compensation = store_unit(plan.data, staging);
    for (std::uint32_t j = 0; j < np; ++j) {
      if (!stores[1 + j].status.ok()) continue;
      codec.update(parity_buf(j), plan.parity_index[j], plan.data_index,
                   delta);
      if (Status undone = store_unit(plan.parity_targets[j], parity_buf(j));
          !undone.ok() && compensation.ok())
        compensation = undone;
    }
    if (compensation.ok() && integrity_) {
      // Best-effort restore of the pre-write checksums (the cache
      // still holds them); a stale media word is caught by the
      // reopen-time heal.
      (void)crc_persist(plan.data);
      for (std::uint32_t j = 0; j < np; ++j)
        (void)crc_persist(plan.parity_targets[j]);
    }
    if (!compensation.ok()) {
      mark_torn(instance);
      return Status::parity_inconsistent(
          "RMW compensation failed after a partial stripe write (" +
          compensation.message() + "); stripe instance marked parity-torn");
    }
    return stored;
  }
  commit_staged_crcs({stores.data(), 1u + np}, crc_staging);
  fill_receipt();
  return OkStatus();
}

Status StripeStore::write_reconstruct_multi(
    const api::WritePlan& plan, std::span<const Physical> peers,
    std::span<const std::uint32_t> peer_index,
    std::span<const std::uint8_t> data, std::uint64_t instance,
    WriteReceipt* receipt) {
  const core::Codec& codec = array_.codec();
  const std::uint32_t n = static_cast<std::uint32_t>(peers.size());
  const std::uint32_t np = plan.num_parities;
  const std::uint32_t m = array_.num_parity_units();
  const std::uint32_t kd = plan.num_data;

  // Slab layout: n peer slices | np old-parity slices | m decode
  // buffers | m re-encoded parity buffers.  The view path reads peers
  // and old parities straight out of the disk images and skips the
  // first two sections.
  const auto slab = arena(
      (static_cast<std::size_t>(n) + np + 2 * static_cast<std::size_t>(m)) *
      unit_bytes_);
  const auto slice = [&](std::size_t i) {
    return slab.subspan(i * unit_bytes_, unit_bytes_);
  };

  // Survivor set for the decode AND the compensation: peers first, then
  // the surviving OLD parities (read before anything is overwritten).
  std::array<std::span<const std::uint8_t>, 64> survivors;
  std::array<std::uint32_t, 64> survivor_idx;
  if (!views_.empty()) {
    for (std::uint32_t i = 0; i < n; ++i) survivors[i] = unit_view(peers[i]);
    for (std::uint32_t j = 0; j < np; ++j)
      survivors[n + j] = unit_view(plan.parity_targets[j]);
  } else {
    std::array<IoRequest, 64> loads;
    for (std::uint32_t i = 0; i < n; ++i) {
      survivors[i] = slice(i);
      loads[i] = IoRequest::read_of(IoClass::kForegroundWrite, peers[i].disk,
                                    byte_offset(peers[i].offset), slice(i));
    }
    for (std::uint32_t j = 0; j < np; ++j) {
      survivors[n + j] = slice(n + j);
      loads[n + j] = IoRequest::read_of(
          IoClass::kForegroundWrite, plan.parity_targets[j].disk,
          byte_offset(plan.parity_targets[j].offset), slice(n + j));
    }
    if (Status loaded = backend_->execute_batch({loads.data(), n + np});
        !loaded.ok())
      return loaded;
  }
  for (std::uint32_t i = 0; i < n; ++i) survivor_idx[i] = peer_index[i];
  for (std::uint32_t j = 0; j < np; ++j)
    survivor_idx[n + j] = kd + plan.parity_index[j];
  if (integrity_) {
    // The decode AND the re-encode below trust every survivor byte.
    for (std::uint32_t i = 0; i < n; ++i)
      if (!verify_unit_crc(peers[i], survivors[i]))
        return Status::checksum_mismatch(
            "reconstruct-write: a peer unit failed CRC32C verification");
    for (std::uint32_t j = 0; j < np; ++j)
      if (!verify_unit_crc(plan.parity_targets[j], survivors[n + j]))
        return Status::checksum_mismatch(
            "reconstruct-write: an old parity unit failed CRC32C "
            "verification");
  }

  // Assemble the full data set: the new bytes stand in for the lost
  // addressed unit, and any OTHER erased data unit is decoded from the
  // old stripe state first (the survivor set excludes every erased
  // unit, so the decode sees a consistent code word).
  std::array<std::span<const std::uint8_t>, 64> data_spans;
  for (std::uint32_t i = 0; i < n; ++i) data_spans[peer_index[i]] = survivors[i];
  data_spans[plan.data_index] = data;
  bool any_decode = false;
  std::array<std::span<std::uint8_t>, api::kMaxParityUnits> outs{};
  for (std::uint32_t e = 1; e < plan.num_erased; ++e) {
    if (plan.erased_index[e] >= kd) continue;  // erased parity: re-encoded below
    outs[e] = slice(static_cast<std::size_t>(n) + np + e);
    any_decode = true;
  }
  if (any_decode) {
    codec.reconstruct(kd, {survivors.data(), n + np},
                      {survivor_idx.data(), n + np},
                      {plan.erased_index.data(), plan.num_erased},
                      {outs.data(), plan.num_erased});
    for (std::uint32_t e = 1; e < plan.num_erased; ++e)
      if (plan.erased_index[e] < kd) data_spans[plan.erased_index[e]] = outs[e];
  }

  // Re-encode EVERY parity from the assembled data, then store the
  // surviving ones (the erased parities have nowhere to go -- rebuild
  // re-creates them).
  std::array<std::span<std::uint8_t>, api::kMaxParityUnits> parity_out;
  for (std::uint32_t j = 0; j < m; ++j)
    parity_out[j] = slice(static_cast<std::size_t>(n) + np + m + j);
  codec.encode({data_spans.data(), kd}, {parity_out.data(), m});

  if (!views_.empty()) {
    for (std::uint32_t j = 0; j < np; ++j) {
      std::memcpy(unit_view(plan.parity_targets[j]).data(),
                  parity_out[plan.parity_index[j]].data(), unit_bytes_);
      if (Status crc = set_fresh_crc(plan.parity_targets[j],
                                     parity_out[plan.parity_index[j]]);
          !crc.ok())
        return crc;
    }
  } else {
    std::array<IoRequest, 2 * api::kMaxParityUnits> stores;
    for (std::uint32_t j = 0; j < np; ++j)
      stores[j] = IoRequest::write_of(
          IoClass::kForegroundWrite, plan.parity_targets[j].disk,
          byte_offset(plan.parity_targets[j].offset),
          parity_out[plan.parity_index[j]]);
    std::array<std::array<std::uint8_t, 4>, api::kMaxParityUnits> crc_staging;
    const std::uint32_t total = stage_crc_writes(stores, np, crc_staging);
    if (Status stored = execute_batch_journaled({stores.data(), total});
        !stored.ok()) {
      // Restore every LANDED parity from the old bytes read above, so
      // the stripe still encodes the OLD value of the lost unit and a
      // degraded read stays consistent.  Only a failed restore tears it.
      Status compensation;
      for (std::uint32_t j = 0; j < np; ++j) {
        if (!stores[j].status.ok()) continue;
        if (Status undone =
                store_unit(plan.parity_targets[j], survivors[n + j]);
            !undone.ok() && compensation.ok())
          compensation = undone;
      }
      if (compensation.ok() && integrity_)
        for (std::uint32_t j = 0; j < np; ++j)
          (void)crc_persist(plan.parity_targets[j]);
      if (!compensation.ok()) {
        mark_torn(instance);
        return Status::parity_inconsistent(
            "reconstruct-write compensation failed after a partial parity "
            "update (" +
            compensation.message() + "); stripe instance marked parity-torn");
      }
      return stored;
    }
    commit_staged_crcs({stores.data(), np}, crc_staging);
  }
  if (receipt) {
    receipt->num_reads = n + np;
    for (std::uint32_t i = 0; i < n; ++i) receipt->reads[i] = peers[i];
    for (std::uint32_t j = 0; j < np; ++j)
      receipt->reads[n + j] = plan.parity_targets[j];
    receipt->num_writes = np;
    for (std::uint32_t j = 0; j < np; ++j)
      receipt->writes[j] = plan.parity_targets[j];
  }
  return OkStatus();
}

Status StripeStore::write_heal(std::uint64_t logical,
                               const api::WritePlan& plan,
                               std::span<const std::uint8_t> data,
                               std::uint64_t instance,
                               WriteReceipt* receipt) {
  const core::Codec& codec = array_.codec();
  const std::uint32_t kd = plan.num_data;
  const std::uint32_t m = array_.num_parity_units();
  std::array<Physical, 64> peers;
  std::array<std::uint32_t, 64> peer_idx;
  const auto count =
      array_.stripe_peers(logical, peers, {peer_idx.data(), peer_idx.size()});
  if (!count.ok()) return count.status();
  if (*count + 1 != kd)
    return Status::parity_inconsistent(
        "stripe instance is parity-torn AND degraded: a peer data unit is "
        "lost, so its parity cannot be re-encoded from data (unhealable "
        "until the lost unit is rebuilt from a replacement image)");

  // Heal = full-stripe re-encode: every peer's bytes plus the incoming
  // write give the complete data set; the codec then yields parity that
  // is consistent BY CONSTRUCTION, regardless of what the torn parity
  // units currently hold.  Heals are rare (they need a double fault
  // first), so the peer reads go out sequentially.
  const auto slab = arena(
      (static_cast<std::size_t>(*count) + m) * unit_bytes_);
  std::array<std::span<const std::uint8_t>, 64> data_spans;
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto buf =
        slab.subspan(static_cast<std::size_t>(i) * unit_bytes_, unit_bytes_);
    if (Status loaded = load_unit(peers[i], buf); !loaded.ok()) return loaded;
    data_spans[peer_idx[i]] = buf;
  }
  data_spans[plan.data_index] = data;
  std::array<std::span<std::uint8_t>, api::kMaxParityUnits> parity_out;
  for (std::uint32_t j = 0; j < m; ++j)
    parity_out[j] = slab.subspan(
        (static_cast<std::size_t>(*count) + j) * unit_bytes_, unit_bytes_);
  codec.encode({data_spans.data(), kd}, {parity_out.data(), m});

  // Data first: if a parity write then fails, the stripe simply STAYS
  // torn and the heal can be retried.  Clearing the tear before all
  // writes land would let a parity-trusting read through too early.
  // (Peer checksums are NOT verified here: a torn instance's parity is
  // untrustworthy by definition, so rot in a peer would be unhealable
  // anyway -- the re-encode takes the peers as ground truth.)
  if (Status stored = store_unit(plan.data, data); !stored.ok())
    return stored;
  if (Status crc = set_fresh_crc(plan.data, data); !crc.ok()) return crc;
  for (std::uint32_t j = 0; j < plan.num_parities; ++j) {
    if (Status stored = store_unit(plan.parity_targets[j],
                                   parity_out[plan.parity_index[j]]);
        !stored.ok())
      return stored;
    if (Status crc = set_fresh_crc(plan.parity_targets[j],
                                   parity_out[plan.parity_index[j]]);
        !crc.ok())
      return crc;
  }
  clear_torn(instance);
  if (receipt) {
    receipt->num_reads = *count;
    std::copy_n(peers.begin(), *count, receipt->reads.begin());
    receipt->num_writes = 1 + plan.num_parities;
    receipt->writes[0] = plan.data;
    for (std::uint32_t j = 0; j < plan.num_parities; ++j)
      receipt->writes[1 + j] = plan.parity_targets[j];
  }
  return OkStatus();
}

// ------------------------------------------------------ cache internals

Status StripeStore::absorb_rmw(const api::WritePlan& plan,
                               std::uint64_t logical,
                               std::span<const std::uint8_t> data,
                               std::uint64_t instance, WriteReceipt* receipt,
                               bool* handled) {
  *handled = false;
  StripeCache::DirtyEntry* entry = cache_->dirty_find(instance);
  if (!entry) {
    // Only HOT instances are worth pinning memory for; everything else
    // falls through to the immediate RMW paths.  So does a hot
    // instance when the table is full.
    if (!cache_->hot(instance)) return OkStatus();
    bool created = false;
    entry = cache_->dirty_ensure(instance, plan.num_parities, &created);
    if (!entry) return OkStatus();
    if (created)
      for (std::uint32_t j = 0; j < plan.num_parities; ++j) {
        entry->parity_home[j] = plan.parity_targets[j];
        entry->parity_index[j] = plan.parity_index[j];
      }
  }
  *handled = true;

  // Old bytes: the previously PINNED value when re-writing an
  // already-dirty unit (zero media traffic -- this is where the hot
  // set's RMW tax disappears), otherwise the unit's media pre-image.
  const core::Codec& codec = array_.codec();
  StripeCache::DirtyUnit* unit = entry->find(logical);
  std::span<const std::uint8_t> old;
  if (unit) {
    old = unit->bytes;
  } else {
    const auto staging = scratch(1, unit_bytes_);
    Status pre;
    if (Status loaded = load_unit(plan.data, staging); !loaded.ok())
      pre = loaded;
    else if (!verify_unit_crc(plan.data, staging))
      pre = Status::checksum_mismatch(
          "absorbed RMW: the old data unit failed CRC32C verification");
    if (!pre.ok()) {
      if (entry->units.empty()) cache_->dirty_erase(instance);
      return pre;
    }
    old = staging;
  }

  // Accumulate c_j * (old ^ new) into each parity's delta, then pin
  // the new bytes as the unit's current value.  Re-absorbing the same
  // unit is exact: its pinned bytes are the "old" the delta folds
  // against, so the accumulated sum telescopes.
  const auto delta = scratch(0, unit_bytes_);
  std::memcpy(delta.data(), old.data(), unit_bytes_);
  core::xor_into(delta, data);
  for (std::uint32_t j = 0; j < entry->num_parity; ++j)
    codec.update(entry->delta[j], entry->parity_index[j], plan.data_index,
                 delta);
  if (unit) {
    unit->bytes.assign(data.begin(), data.end());
  } else {
    entry->units.push_back(
        {logical, plan.data, plan.data_index,
         std::vector<std::uint8_t>(data.begin(), data.end())});
  }
  cache_->count_absorb();
  if (receipt) {
    // Same shape an immediate RMW would report: the units the write
    // LOGICALLY involves (the fold does the physical I/O later).
    receipt->num_reads = 1 + entry->num_parity;
    receipt->reads[0] = plan.data;
    receipt->num_writes = 1 + entry->num_parity;
    receipt->writes[0] = plan.data;
    for (std::uint32_t j = 0; j < entry->num_parity; ++j) {
      receipt->reads[1 + j] = entry->parity_home[j];
      receipt->writes[1 + j] = entry->parity_home[j];
    }
  }

  // Size trigger: a full entry folds inline under the already-held
  // locks (this bounds the fold's journal record too).  Capped at the
  // stripe's data width -- a narrow stripe (RS P+Q keeps few data
  // units) fills completely before a large max_dirty_units would ever
  // fire.  A kChecksumMismatch propagates to write()'s heal-and-retry
  // loop; the retried write re-absorbs idempotently and re-triggers.
  const std::size_t fold_at = std::min<std::size_t>(
      cache_->options().max_dirty_units, plan.num_data);
  if (entry->units.size() >= std::max<std::size_t>(fold_at, 1))
    return fold_instance_locked(instance);
  return OkStatus();
}

Status StripeStore::fold_instance_locked(std::uint64_t instance) {
  StripeCache::DirtyEntry* entry = cache_->dirty_find(instance);
  if (!entry) return OkStatus();
  if (entry->units.empty()) {
    cache_->dirty_erase(instance);
    return OkStatus();
  }
  if (is_torn(instance)) return fold_reencode_locked(instance, entry);

  const std::uint32_t np = entry->num_parity;
  const auto nd = static_cast<std::uint32_t>(entry->units.size());
  // Local slab, NOT the thread_local scratch/arena (the inline-fold
  // caller is mid-absorb and may hold both): np parity pre-images,
  // then nd dirty-unit media pre-images (compensation needs them).
  std::vector<std::uint8_t> slab(
      (static_cast<std::size_t>(np) + nd) * unit_bytes_);
  const auto slice = [&](std::size_t i) {
    return std::span<std::uint8_t>(slab).subspan(i * unit_bytes_,
                                                 unit_bytes_);
  };
  if (!views_.empty()) {
    for (std::uint32_t j = 0; j < np; ++j)
      std::memcpy(slice(j).data(), unit_view(entry->parity_home[j]).data(),
                  unit_bytes_);
    for (std::uint32_t i = 0; i < nd; ++i)
      std::memcpy(slice(np + i).data(),
                  unit_view(entry->units[i].home).data(), unit_bytes_);
  } else {
    std::vector<IoRequest> loads;
    loads.reserve(static_cast<std::size_t>(np) + nd);
    for (std::uint32_t j = 0; j < np; ++j)
      loads.push_back(IoRequest::read_of(
          IoClass::kForegroundWrite, entry->parity_home[j].disk,
          byte_offset(entry->parity_home[j].offset), slice(j)));
    for (std::uint32_t i = 0; i < nd; ++i)
      loads.push_back(IoRequest::read_of(
          IoClass::kForegroundWrite, entry->units[i].home.disk,
          byte_offset(entry->units[i].home.offset), slice(np + i)));
    if (Status loaded = backend_->execute_batch(loads); !loaded.ok())
      return loaded;
  }
  if (integrity_) {
    // Verify every pre-image BEFORE folding -- rot would otherwise be
    // laundered into the new parity.  The entry survives the failure:
    // the caller heals (which restores the original code word, keeping
    // the accumulated deltas applicable) and retries.
    for (std::uint32_t j = 0; j < np; ++j)
      if (!verify_unit_crc(entry->parity_home[j], slice(j)))
        return Status::checksum_mismatch(
            "parity-delta fold: an old parity unit failed CRC32C "
            "verification");
    for (std::uint32_t i = 0; i < nd; ++i)
      if (!verify_unit_crc(entry->units[i].home, slice(np + i)))
        return Status::checksum_mismatch(
            "parity-delta fold: a dirty unit's media pre-image failed "
            "CRC32C verification");
  }

  // parity_new = parity_old ^ accumulated delta.  Linearity over the
  // codec's field makes this byte-identical to folding every absorbed
  // write through per-op RMW, in any order.
  for (std::uint32_t j = 0; j < np; ++j)
    core::xor_into(slice(j), entry->delta[j]);

  // The folded bytes are landed state: staged rebuild chunks replan.
  sync_->write_epoch.fetch_add(1, std::memory_order_relaxed);
  if (!views_.empty()) {
    for (std::uint32_t i = 0; i < nd; ++i) {
      const StripeCache::DirtyUnit& u = entry->units[i];
      std::memcpy(unit_view(u.home).data(), u.bytes.data(), unit_bytes_);
      if (Status crc = set_fresh_crc(u.home, u.bytes); !crc.ok()) return crc;
    }
    for (std::uint32_t j = 0; j < np; ++j) {
      std::memcpy(unit_view(entry->parity_home[j]).data(), slice(j).data(),
                  unit_bytes_);
      if (Status crc = set_fresh_crc(entry->parity_home[j], slice(j));
          !crc.ok())
        return crc;
    }
  } else {
    // ONE journaled batch: every dirty data unit, every folded parity,
    // and their checksums.  A crash mid-fold replays the whole record
    // -- the consistent post-image -- on reopen.
    std::vector<IoRequest> stores(2 * (static_cast<std::size_t>(np) + nd));
    std::vector<std::array<std::uint8_t, 4>> crc_staging(
        static_cast<std::size_t>(np) + nd);
    for (std::uint32_t i = 0; i < nd; ++i)
      stores[i] = IoRequest::write_of(
          IoClass::kForegroundWrite, entry->units[i].home.disk,
          byte_offset(entry->units[i].home.offset), entry->units[i].bytes);
    for (std::uint32_t j = 0; j < np; ++j)
      stores[nd + j] = IoRequest::write_of(
          IoClass::kForegroundWrite, entry->parity_home[j].disk,
          byte_offset(entry->parity_home[j].offset), slice(j));
    const std::uint32_t total =
        stage_crc_writes(stores, nd + np, crc_staging);
    if (Status stored = execute_batch_journaled({stores.data(), total});
        !stored.ok()) {
      // Roll every LANDED write back to its pre-image so the stripe
      // returns to the consistent pre-fold code word; the entry is
      // KEPT (its deltas are still valid against that image) and a
      // later flush retries.  Only a failed compensation tears.
      Status compensation;
      for (std::uint32_t i = 0; i < nd; ++i) {
        if (!stores[i].status.ok()) continue;
        if (Status undone = store_unit(entry->units[i].home, slice(np + i));
            !undone.ok() && compensation.ok())
          compensation = undone;
      }
      for (std::uint32_t j = 0; j < np; ++j) {
        if (!stores[nd + j].status.ok()) continue;
        core::xor_into(slice(j), entry->delta[j]);  // involution: pre-image
        if (Status undone = store_unit(entry->parity_home[j], slice(j));
            !undone.ok() && compensation.ok())
          compensation = undone;
      }
      if (compensation.ok() && integrity_) {
        for (std::uint32_t i = 0; i < nd; ++i)
          (void)crc_persist(entry->units[i].home);
        for (std::uint32_t j = 0; j < np; ++j)
          (void)crc_persist(entry->parity_home[j]);
      }
      if (!compensation.ok()) {
        mark_torn(instance);
        return Status::parity_inconsistent(
            "parity-delta fold compensation failed after a partial batch "
            "(" +
            compensation.message() + "); stripe instance marked parity-torn");
      }
      return stored;
    }
    commit_staged_crcs({stores.data(), nd + np}, crc_staging);
  }
  cache_->count_fold(nd);
  cache_->dirty_erase(instance);
  return OkStatus();
}

Status StripeStore::fold_reencode_locked(std::uint64_t instance,
                                         StripeCache::DirtyEntry* entry) {
  // Torn + dirty: the accumulated deltas are useless (the parity they
  // would fold into no longer matches the data), but the instance is
  // still FULLY PRESENT (dirty implies healthy), so re-encode every
  // parity from the complete data set -- media bytes with the pinned
  // dirty writes overlaid -- exactly like write_heal, landing the
  // absorbed writes and clearing the tear in one journaled batch.
  // Like write_heal, pre-images are NOT checksum-verified: a torn
  // instance's parity is untrustworthy by definition, so the re-encode
  // takes the data bytes as ground truth.
  const core::Codec& codec = array_.codec();
  const std::uint32_t m = array_.num_parity_units();
  const auto stripe = static_cast<std::uint32_t>(instance %
                                                 array_.num_stripes());
  const auto iteration = static_cast<std::uint32_t>(instance /
                                                    array_.num_stripes());
  const std::uint64_t lift =
      static_cast<std::uint64_t>(iteration) * array_.units_per_disk();
  std::array<api::Array::StripeUnitStatus, 64> units;
  const auto width_r = array_.stripe_units(stripe, units);
  if (!width_r.ok()) return width_r.status();
  const std::uint32_t width = *width_r;
  const std::uint32_t kd = width - m;
  const auto nd = static_cast<std::uint32_t>(entry->units.size());

  // Slab: width media pre-images (compensation), then m new parities.
  std::vector<std::uint8_t> slab(
      (static_cast<std::size_t>(width) + m) * unit_bytes_);
  const auto slice = [&](std::size_t i) {
    return std::span<std::uint8_t>(slab).subspan(i * unit_bytes_,
                                                 unit_bytes_);
  };
  std::array<Physical, 64> homes;
  for (std::uint32_t u = 0; u < width; ++u)
    homes[u] = Physical{units[u].unit.disk, units[u].unit.offset + lift};
  if (!views_.empty()) {
    for (std::uint32_t u = 0; u < width; ++u)
      std::memcpy(slice(u).data(), unit_view(homes[u]).data(), unit_bytes_);
  } else {
    std::vector<IoRequest> loads;
    loads.reserve(width);
    for (std::uint32_t u = 0; u < width; ++u)
      loads.push_back(IoRequest::read_of(IoClass::kForegroundWrite,
                                         homes[u].disk,
                                         byte_offset(homes[u].offset),
                                         slice(u)));
    if (Status loaded = backend_->execute_batch(loads); !loaded.ok())
      return loaded;
  }

  // Data set = media bytes with every pinned dirty write overlaid.
  std::array<std::span<const std::uint8_t>, 64> data_spans;
  for (std::uint32_t u = 0; u < kd; ++u) data_spans[u] = slice(u);
  for (const StripeCache::DirtyUnit& u : entry->units)
    data_spans[u.data_index] = u.bytes;
  std::array<std::span<std::uint8_t>, api::kMaxParityUnits> parity_out;
  for (std::uint32_t j = 0; j < m; ++j)
    parity_out[j] = slice(static_cast<std::size_t>(width) + j);
  codec.encode({data_spans.data(), kd}, {parity_out.data(), m});

  sync_->write_epoch.fetch_add(1, std::memory_order_relaxed);
  if (!views_.empty()) {
    for (const StripeCache::DirtyUnit& u : entry->units) {
      std::memcpy(unit_view(u.home).data(), u.bytes.data(), unit_bytes_);
      if (Status crc = set_fresh_crc(u.home, u.bytes); !crc.ok()) return crc;
    }
    for (std::uint32_t j = 0; j < m; ++j) {
      std::memcpy(unit_view(homes[kd + j]).data(), parity_out[j].data(),
                  unit_bytes_);
      if (Status crc = set_fresh_crc(homes[kd + j], parity_out[j]);
          !crc.ok())
        return crc;
    }
  } else {
    std::vector<IoRequest> stores(2 * (static_cast<std::size_t>(nd) + m));
    std::vector<std::array<std::uint8_t, 4>> crc_staging(
        static_cast<std::size_t>(nd) + m);
    for (std::uint32_t i = 0; i < nd; ++i)
      stores[i] = IoRequest::write_of(
          IoClass::kForegroundWrite, entry->units[i].home.disk,
          byte_offset(entry->units[i].home.offset), entry->units[i].bytes);
    for (std::uint32_t j = 0; j < m; ++j)
      stores[nd + j] = IoRequest::write_of(IoClass::kForegroundWrite,
                                           homes[kd + j].disk,
                                           byte_offset(homes[kd + j].offset),
                                           parity_out[j]);
    const std::uint32_t total = stage_crc_writes(stores, nd + m, crc_staging);
    if (Status stored = execute_batch_journaled({stores.data(), total});
        !stored.ok()) {
      // Restore every landed write from its media pre-image: the
      // instance returns to its pre-fold (still torn) state and the
      // entry is kept for a later retry.
      Status compensation;
      for (std::uint32_t i = 0; i < nd; ++i) {
        if (!stores[i].status.ok()) continue;
        if (Status undone = store_unit(entry->units[i].home,
                                       slice(entry->units[i].data_index));
            !undone.ok() && compensation.ok())
          compensation = undone;
      }
      for (std::uint32_t j = 0; j < m; ++j) {
        if (!stores[nd + j].status.ok()) continue;
        if (Status undone = store_unit(homes[kd + j], slice(kd + j));
            !undone.ok() && compensation.ok())
          compensation = undone;
      }
      if (compensation.ok() && integrity_) {
        for (std::uint32_t i = 0; i < nd; ++i)
          (void)crc_persist(entry->units[i].home);
        for (std::uint32_t j = 0; j < m; ++j)
          (void)crc_persist(homes[kd + j]);
      }
      // The instance was torn coming in and stays torn; a failed
      // compensation changes nothing about that.
      return stored;
    }
    commit_staged_crcs({stores.data(), nd + m}, crc_staging);
  }
  clear_torn(instance);
  cache_->count_fold(nd);
  cache_->dirty_erase(instance);
  return OkStatus();
}

Status StripeStore::flush_dirty_shared() {
  Status first;
  for (const std::uint64_t instance : cache_->dirty_instances()) {
    std::unique_lock shard(sync_->shards[instance % sync_->shards.size()]);
    Status folded = fold_instance_locked(instance);
    if (folded.code() == StatusCode::kChecksumMismatch) {
      // A rotten pre-image: heal it in place (we hold the instance's
      // shard exclusively) and retry the fold once.
      (void)heal_instance_locked(
          static_cast<std::uint32_t>(instance % array_.num_stripes()),
          static_cast<std::uint32_t>(instance / array_.num_stripes()),
          nullptr);
      folded = fold_instance_locked(instance);
    }
    if (!folded.ok() && first.ok()) first = folded;
  }
  return first;
}

Status StripeStore::flush_dirty_exclusive() {
  if (!cache_ || !cache_->any_dirty()) return OkStatus();
  Status first;
  for (const std::uint64_t instance : cache_->dirty_instances()) {
    Status folded = fold_instance_locked(instance);
    if (folded.code() == StatusCode::kChecksumMismatch) {
      (void)heal_instance_locked(
          static_cast<std::uint32_t>(instance % array_.num_stripes()),
          static_cast<std::uint32_t>(instance / array_.num_stripes()),
          nullptr);
      folded = fold_instance_locked(instance);
    }
    if (!folded.ok() && first.ok()) first = folded;
  }
  return first;
}

Status StripeStore::flush_cache() {
  if (!cache_) return OkStatus();
  std::shared_lock state(sync_->state);
  return flush_dirty_shared();
}

Status StripeStore::sync() {
  std::unique_lock lock(sync_->state);  // exclude in-flight writers
  // Absorbed writes are not durable until folded: flush first, so the
  // backend sync below covers them.
  if (Status flushed = flush_dirty_exclusive(); !flushed.ok())
    return flushed;
  for (DiskId disk = 0; disk < array_.num_disks(); ++disk)
    if (Status synced = backend_->sync(disk); !synced.ok()) return synced;
  return OkStatus();
}

// ------------------------------------------------- failure & rebuild

Status StripeStore::fail_disk(DiskId disk) {
  std::unique_lock lock(sync_->state);
  // Fold every absorbed write FIRST: the dirty-table invariant (dirty
  // implies a fully healthy stripe) must hold before the failure lands,
  // and folding against the still-complete array is the only fold that
  // is consistent.  On a fold error the failure is refused -- the
  // caller retries after the underlying fault clears.
  if (Status flushed = flush_dirty_exclusive(); !flushed.ok())
    return flushed;
  sync_->write_epoch.fetch_add(1, std::memory_order_relaxed);
  if (Status failed = array_.fail_disk(disk); !failed.ok()) return failed;
  if (Status discarded = backend_->discard(disk, kPoison); !discarded.ok())
    return discarded;
  return reset_disk_crcs(disk);
}

Status StripeStore::replace_disk(DiskId disk) {
  std::unique_lock lock(sync_->state);
  sync_->write_epoch.fetch_add(1, std::memory_order_relaxed);
  if (Status replaced = array_.replace_disk(disk); !replaced.ok())
    return replaced;
  if (Status discarded = backend_->discard(disk, 0); !discarded.ok())
    return discarded;
  return reset_disk_crcs(disk);
}

Status StripeStore::reset_disk_crcs(DiskId disk) {
  // A discarded disk's units carry no valid checksums: zero the cache
  // and the media region ("unverified") so rebuilt units start clean --
  // discard() itself filled the region with the fill byte, which for
  // the poison fill would read as garbage claims.
  if (!integrity_) return OkStatus();
  std::fill(crc_[disk].begin(), crc_[disk].end(), 0u);
  if (!views_.empty()) {
    std::memset(views_[disk].data() + crc_base_, 0, crc_[disk].size() * 4);
    return OkStatus();
  }
  const std::vector<std::uint8_t> zeros(crc_[disk].size() * 4, 0);
  return backend_->write(disk, crc_base_, zeros);
}

Status StripeStore::apply_step_bytes(const api::RebuildStep& step) {
  // A step that decodes DATA through parity must refuse torn instances:
  // their parity no longer encodes the on-disk data, so the decode would
  // materialize garbage as if it were the lost unit.  (A step that only
  // re-encodes parity FROM data is safe -- it overwrites, not trusts,
  // the parity bytes.)
  if (step_decodes_data(step))
    for (std::uint32_t it = 0; it < iterations_; ++it)
      if (is_torn(step.stripe +
                  static_cast<std::uint64_t>(it) * array_.num_stripes()))
        return Status::parity_inconsistent(
            "rebuild step for stripe " + std::to_string(step.stripe) +
            " would decode data through a parity-torn instance");

  // Bytes first, every iteration of the stripe (the step reports
  // iteration-0 offsets), then the array's state transition.
  const std::uint32_t n = static_cast<std::uint32_t>(step.reads.size());
  if (!views_.empty()) {
    // This commit changes survivor bytes other rebuilders may have
    // staged: bump the epoch so their commits replan instead of landing
    // stale bytes (the caller holds the exclusive state lock).
    sync_->write_epoch.fetch_add(1, std::memory_order_relaxed);
    const std::span<const std::uint32_t> erased{step.erased_index.data(),
                                                step.num_erased};
    for (std::uint32_t it = 0; it < iterations_; ++it) {
      const std::uint64_t lift =
          static_cast<std::uint64_t>(it) * array_.units_per_disk();
      const Physical target{step.target.disk, step.target.offset + lift};
      std::array<std::span<const std::uint8_t>, 64> srcs;
      for (std::uint32_t i = 0; i < n; ++i) {
        const Physical src{step.reads[i].disk, step.reads[i].offset + lift};
        srcs[i] = unit_view(src);
        if (!verify_unit_crc(src, srcs[i]))
          return Status::checksum_mismatch(
              "rebuild of stripe " + std::to_string(step.stripe) +
              ": a survivor unit failed CRC32C verification");
      }
      decode_unit(array_.codec(), step.num_data, {srcs.data(), n},
                  step.read_indices, erased, unit_view(target));
      if (Status crc = set_fresh_crc(target, unit_view(target)); !crc.ok())
        return crc;
    }
    return array_.apply_rebuild_step(step);
  }

  // Streamed: stage (survivor fan-in + XOR) then commit (target writes
  // + state transition), back to back -- the caller already holds the
  // exclusive lock.
  std::vector<std::uint8_t> slab;
  std::vector<IoRequest> writes;
  if (Status staged = stage_step_streamed(step, slab, writes); !staged.ok())
    return staged;
  return commit_step_streamed(step, writes);
}

Status StripeStore::stage_step_streamed(const api::RebuildStep& step,
                                        std::vector<std::uint8_t>& buffer,
                                        std::vector<IoRequest>& writes) {
  // The step's ENTIRE survivor fan-in -- every survivor of every
  // iteration -- goes out as one kRebuild-tagged submission (so a
  // rebuild-deprioritizing scheduler can hold it behind foreground
  // I/O), then one XOR pass per iteration leaves the rebuilt units at
  // the tail of `buffer`, which the caller keeps alive through the
  // commit (several steps may be staged before any of them commits).
  if (step_decodes_data(step))
    for (std::uint32_t it = 0; it < iterations_; ++it)
      if (is_torn(step.stripe +
                  static_cast<std::uint64_t>(it) * array_.num_stripes()))
        return Status::parity_inconsistent(
            "rebuild step for stripe " + std::to_string(step.stripe) +
            " would decode data through a parity-torn instance");
  const std::uint32_t n = static_cast<std::uint32_t>(step.reads.size());
  const std::size_t total = static_cast<std::size_t>(n) * iterations_;
  buffer.resize((total + iterations_) * unit_bytes_);
  const std::span<std::uint8_t> slab{buffer.data(), buffer.size()};
  std::vector<IoRequest> reads;
  reads.reserve(total);
  for (std::uint32_t it = 0; it < iterations_; ++it) {
    const std::uint64_t lift =
        static_cast<std::uint64_t>(it) * array_.units_per_disk();
    for (std::uint32_t i = 0; i < n; ++i)
      reads.push_back(IoRequest::read_of(
          IoClass::kRebuild, step.reads[i].disk,
          byte_offset(step.reads[i].offset + lift),
          slab.subspan((static_cast<std::size_t>(it) * n + i) * unit_bytes_,
                       unit_bytes_)));
  }
  if (Status fanned = backend_->execute_batch(reads); !fanned.ok())
    return fanned;
  if (integrity_)
    for (std::uint32_t it = 0; it < iterations_; ++it) {
      const std::uint64_t lift =
          static_cast<std::uint64_t>(it) * array_.units_per_disk();
      for (std::uint32_t i = 0; i < n; ++i) {
        const Physical src{step.reads[i].disk, step.reads[i].offset + lift};
        if (!verify_unit_crc(
                src, reads[static_cast<std::size_t>(it) * n + i].read_buf))
          return Status::checksum_mismatch(
              "rebuild of stripe " + std::to_string(step.stripe) +
              ": a survivor unit failed CRC32C verification");
      }
    }

  writes.clear();
  writes.reserve(iterations_);
  const std::span<const std::uint32_t> erased{step.erased_index.data(),
                                              step.num_erased};
  for (std::uint32_t it = 0; it < iterations_; ++it) {
    const std::uint64_t lift =
        static_cast<std::uint64_t>(it) * array_.units_per_disk();
    const auto rebuilt =
        slab.subspan((total + it) * unit_bytes_, unit_bytes_);
    std::array<std::span<const std::uint8_t>, 64> srcs;
    for (std::uint32_t i = 0; i < n; ++i)
      srcs[i] = reads[static_cast<std::size_t>(it) * n + i].read_buf;
    decode_unit(array_.codec(), step.num_data, {srcs.data(), n},
                step.read_indices, erased, rebuilt);
    writes.push_back(IoRequest::write_of(IoClass::kRebuild, step.target.disk,
                                         byte_offset(step.target.offset + lift),
                                         rebuilt));
  }
  return OkStatus();
}

Status StripeStore::commit_step_streamed(const api::RebuildStep& step,
                                         std::span<IoRequest> writes) {
  if (Status stored = backend_->execute_batch(writes); !stored.ok())
    return stored;
  // Rebuilt targets get fresh checksums.  (Not journaled: a crash here
  // leaves at most the target units checksum-stale, which the
  // reopen-time heal reconstructs -- rebuild is re-runnable anyway.)
  if (integrity_)
    for (const IoRequest& w : writes) {
      const Physical target{w.disk, w.offset / unit_bytes_};
      if (Status crc = set_fresh_crc(target, w.write_buf); !crc.ok())
        return crc;
    }
  // The landed target bytes are survivor bytes from any OTHER
  // rebuilder's perspective: bump the epoch so a concurrently staged
  // chunk replans instead of committing stale reads.  (Before this
  // bump, a second rebuilder's staleness was only caught by
  // apply_rebuild_step's kFailedPrecondition -- a hard error rather
  // than a retry.)  The caller holds the exclusive state lock, and
  // every epoch access happens under the state mutex, so relaxed
  // ordering suffices.
  sync_->write_epoch.fetch_add(1, std::memory_order_relaxed);
  return array_.apply_rebuild_step(step);
}

Status StripeStore::apply_step_healing(const api::RebuildStep& step) {
  Status done = apply_step_bytes(step);
  if (done.code() != StatusCode::kChecksumMismatch) return done;
  // A survivor failed verification: heal every iteration instance of
  // the stripe (the exclusive state lock excludes all other traffic),
  // then retry the step once.  Unhealable rot surfaces the mismatch.
  for (std::uint32_t it = 0; it < iterations_; ++it)
    (void)heal_instance_locked(step.stripe, it, nullptr);
  return apply_step_bytes(step);
}

Result<std::uint64_t> StripeStore::rebuild_some(std::uint64_t max_steps,
                                                std::uint64_t* blocked) {
  std::uint64_t applied = 0;
  if (blocked) *blocked = 0;
  for (;;) {
    // Plan one batch under the exclusive lock.  The whole batch is
    // applied before re-planning -- the same plan-once-apply-all
    // discipline as api::Array::rebuild, so the store's target choices
    // (spare vs replacement slot) match a bare array's step for step.
    // View-backed stores apply the batch right here: zero-copy XOR is
    // pure memory bandwidth, there is no disk queue to compete in.
    std::vector<api::RebuildStep> steps;
    std::uint64_t epoch = 0;
    {
      std::unique_lock lock(sync_->state);
      auto plan = array_.plan_rebuild();
      if (!plan.ok()) return plan.status();
      if (blocked) *blocked = plan->blocked;
      if (plan->steps.empty() || applied >= max_steps) return applied;
      if (!views_.empty()) {
        for (const api::RebuildStep& step : plan->steps) {
          if (applied >= max_steps) break;
          if (Status done = apply_step_healing(step); !done.ok()) return done;
          ++applied;
        }
        continue;
      }
      steps = std::move(plan->steps);
      epoch = sync_->write_epoch.load(std::memory_order_relaxed);
    }

    std::size_t next = 0;
    bool replan = false;
    while (next < steps.size() && !replan) {
      if (applied >= max_steps) return applied;
      // Chunk bounds: kMaxStageChunk keeps the exclusive commit hold
      // short, and kMaxStageShards keeps the number of simultaneously
      // held locks small (ThreadSanitizer's deadlock detector aborts a
      // thread holding 64+).
      constexpr std::size_t kMaxStageChunk = 8;
      constexpr std::size_t kMaxStageShards = 16;
      const std::size_t chunk = static_cast<std::size_t>(std::min<std::uint64_t>(
          {steps.size() - next, max_steps - applied, kMaxStageChunk}));

      // The chunk's stripe shard locks -- shared, one per iteration
      // instance, sorted like read_batch's -- exclude byte-level
      // overlap with foreground writes to the staged stripes without
      // stalling foreground reads; writes elsewhere proceed and are
      // caught by the epoch check below.
      std::vector<std::shared_mutex*> shards;
      shards.reserve(chunk * iterations_);
      for (std::size_t j = 0; j < chunk; ++j)
        for (std::uint32_t it = 0; it < iterations_; ++it) {
          const std::uint64_t instance =
              steps[next + j].stripe +
              static_cast<std::uint64_t>(it) * array_.num_stripes();
          shards.push_back(&sync_->shards[instance % sync_->shards.size()]);
        }
      std::sort(shards.begin(), shards.end());
      shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
      if (shards.size() > kMaxStageShards) {
        // Degenerate geometry (huge iteration counts sweep most of the
        // shard pool): apply the chunk under the exclusive lock rather
        // than hold half the pool across a scheduler-delayed wave.
        std::unique_lock lock(sync_->state);
        if (sync_->write_epoch.load(std::memory_order_relaxed) != epoch) {
          Status done = apply_step_healing(steps[next]);
          if (done.ok())
            ++applied;
          else if (done.code() != StatusCode::kFailedPrecondition)
            return done;
          replan = true;
          break;
        }
        for (std::size_t j = 0; j < chunk; ++j) {
          if (Status done = apply_step_healing(steps[next + j]); !done.ok())
            return done;
          ++applied;
        }
        // Our own commits bumped the epoch; re-snapshot under the still-
        // held exclusive lock so the NEXT chunk is not spuriously
        // replanned.  Sound: staged reads never include lost targets,
        // so this thread's commits cannot invalidate its later chunks.
        epoch = sync_->write_epoch.load(std::memory_order_relaxed);
        next += chunk;
        continue;
      }

      // Stage the chunk under ONE SHARED lock hold: foreground reads
      // and writes keep submitting, so rebuild reads genuinely compete
      // in the disk queues, and the store pays one state-lock
      // round-trip per chunk instead of per step.
      std::vector<std::vector<std::uint8_t>> slabs(chunk);
      std::vector<std::vector<IoRequest>> writes(chunk);
      Status staging_rot;
      std::size_t rot_step = 0;
      {
        std::shared_lock lock(sync_->state);
        std::vector<std::shared_lock<std::shared_mutex>> held;
        held.reserve(shards.size());
        for (std::shared_mutex* shard : shards) held.emplace_back(*shard);
        for (std::size_t j = 0; j < chunk; ++j)
          if (Status staged = stage_step_streamed(steps[next + j], slabs[j],
                                                  writes[j]);
              !staged.ok()) {
            if (staged.code() != StatusCode::kChecksumMismatch) return staged;
            staging_rot = std::move(staged);
            rot_step = j;
            break;
          }
      }
      if (!staging_rot.ok()) {
        // A staged survivor failed verification: heal the step's
        // instances under the exclusive lock (the heal's writes bump
        // the epoch, invalidating any other rebuilder's staged bytes)
        // and re-plan.  Unhealable rot surfaces on the retried stage.
        std::unique_lock lock(sync_->state);
        Status healed;
        for (std::uint32_t it = 0; it < iterations_; ++it) {
          Status one =
              heal_instance_locked(steps[next + rot_step].stripe, it, nullptr);
          if (!one.ok() && healed.ok()) healed = one;
        }
        if (!healed.ok()) return staging_rot;  // unhealable (or torn): stop
        replan = true;
        break;
      }

      // Commit the chunk under ONE exclusive lock hold.  An unchanged
      // epoch proves no write / fail / replace landed since the plan,
      // so the staged bytes are current and every step is exactly as
      // valid as when planned.  Otherwise restage one step under the
      // exclusive lock (writers are excluded now -- progress is
      // guaranteed) and re-plan: the interloper may have been a
      // fail/replace that reshaped the plan, which
      // apply_rebuild_step's own staleness checks surface as
      // kFailedPrecondition.
      std::unique_lock lock(sync_->state);
      if (sync_->write_epoch.load(std::memory_order_relaxed) != epoch) {
        Status done = apply_step_healing(steps[next]);
        if (done.ok())
          ++applied;
        else if (done.code() != StatusCode::kFailedPrecondition)
          return done;
        replan = true;
        break;
      }
      for (std::size_t j = 0; j < chunk; ++j) {
        if (Status done = commit_step_streamed(steps[next + j], writes[j]);
            !done.ok())
          return done;
        ++applied;
      }
      // Re-snapshot: the commits above bumped the epoch (see
      // commit_step_streamed), and this thread's own commits never
      // invalidate its later staged chunks (staged reads exclude every
      // lost target), so the next chunk must not replan on our account.
      epoch = sync_->write_epoch.load(std::memory_order_relaxed);
      next += chunk;
    }
  }
}

Result<api::RebuildOutcome> StripeStore::rebuild() {
  api::RebuildOutcome outcome;
  for (;;) {
    // The pass that finds nothing left to apply has already planned the
    // final state, so its blocked count is the outcome's.
    std::uint64_t blocked = 0;
    auto applied = rebuild_some(~0ull, &blocked);
    if (!applied.ok()) return applied.status();
    if (*applied == 0) {
      outcome.blocked = blocked;
      return outcome;
    }
    outcome.applied += *applied;
  }
}

// ------------------------------------------------------------ verification

Result<std::uint64_t> StripeStore::checksum_disk_locked(DiskId disk) const {
  // Data region only: the checksum region (under integrity) is derived
  // state, and two stores with identical content must checksum equal
  // regardless of which units have been verified/adopted so far.
  if (!views_.empty() && disk < views_.size())
    return fnv1a(kFnvOffset,
                 views_[disk].first(static_cast<std::size_t>(disk_bytes())));

  // Stream the image through a bounded buffer.
  constexpr std::uint64_t kChunk = 1u << 18;
  std::vector<std::uint8_t> chunk(
      static_cast<std::size_t>(std::min<std::uint64_t>(kChunk, disk_bytes())));
  std::uint64_t hash = kFnvOffset;
  std::uint64_t offset = 0;
  while (offset < disk_bytes()) {
    const std::uint64_t n =
        std::min<std::uint64_t>(chunk.size(), disk_bytes() - offset);
    const std::span<std::uint8_t> window{chunk.data(),
                                         static_cast<std::size_t>(n)};
    if (Status read = backend_->read(disk, offset, window); !read.ok())
      return read;
    hash = fnv1a(hash, window);
    offset += n;
  }
  return hash;
}

Result<std::uint64_t> StripeStore::checksum_disk(DiskId disk) const {
  std::unique_lock lock(sync_->state);  // exclude in-flight writers
  return checksum_disk_locked(disk);
}

Result<std::vector<std::uint64_t>> StripeStore::checksum_disks() const {
  // One exclusive lock across ALL disks: the vector is a cross-disk-
  // consistent snapshot (no write can land between two entries).
  std::unique_lock lock(sync_->state);
  std::vector<std::uint64_t> sums;
  sums.reserve(array_.num_disks());
  for (DiskId disk = 0; disk < array_.num_disks(); ++disk) {
    auto sum = checksum_disk_locked(disk);
    if (!sum.ok()) return sum.status();
    sums.push_back(*sum);
  }
  return sums;
}

// --------------------------------------------------------------- integrity

IntegrityStats StripeStore::integrity_stats() const noexcept {
  IntegrityStats s;
  s.verified = sync_->crc_verified.load(std::memory_order_relaxed);
  s.mismatches = sync_->crc_mismatches.load(std::memory_order_relaxed);
  s.healed = sync_->crc_healed.load(std::memory_order_relaxed);
  s.unhealable = sync_->crc_unhealable.load(std::memory_order_relaxed);
  s.adopted = sync_->crc_adopted.load(std::memory_order_relaxed);
  s.scrubbed = sync_->scrubbed.load(std::memory_order_relaxed);
  return s;
}

Status StripeStore::heal_instance_locked(std::uint32_t stripe,
                                         std::uint32_t iteration,
                                         ScrubReport* report) {
  if (!integrity_) return OkStatus();
  if (stripe >= array_.num_stripes() || iteration >= iterations_)
    return Status::invalid_argument("heal: stripe/iteration out of range");
  const std::uint64_t instance =
      stripe + static_cast<std::uint64_t>(iteration) * array_.num_stripes();
  if (is_torn(instance)) {
    // A torn instance's parity is untrustworthy independent of
    // checksums; the write-path heal (full re-encode) owns it.
    if (report) ++report->skipped;
    return Status::parity_inconsistent(
        "stripe instance is parity-torn; a successful write heals it");
  }
  const core::Codec& codec = array_.codec();
  const std::uint32_t m = array_.num_parity_units();
  std::array<api::Array::StripeUnitStatus, 64> units;
  const auto width_r = array_.stripe_units(stripe, units);
  if (!width_r.ok()) return width_r.status();
  const std::uint32_t width = *width_r;
  const std::uint32_t kd = width - m;
  const std::uint64_t lift =
      static_cast<std::uint64_t>(iteration) * array_.units_per_disk();

  // Load every present unit: views in place, one kScrub batch else.
  const auto slab = arena(static_cast<std::size_t>(width) * unit_bytes_);
  std::array<std::span<const std::uint8_t>, 64> bytes{};
  std::array<Physical, 64> homes;
  std::array<bool, 64> present{};
  std::array<IoRequest, 64> loads;
  std::uint32_t num_loads = 0;
  for (std::uint32_t u = 0; u < width; ++u) {
    if (units[u].lost) continue;
    present[u] = true;
    homes[u] = Physical{units[u].unit.disk, units[u].unit.offset + lift};
    if (!views_.empty()) {
      bytes[u] = unit_view(homes[u]);
    } else {
      const auto slice =
          slab.subspan(static_cast<std::size_t>(u) * unit_bytes_, unit_bytes_);
      loads[num_loads++] = IoRequest::read_of(
          IoClass::kScrub, homes[u].disk, byte_offset(homes[u].offset), slice);
      bytes[u] = slice;
    }
  }
  if (num_loads > 0)
    if (Status fanned = backend_->execute_batch({loads.data(), num_loads});
        !fanned.ok())
      return fanned;

  // Classify: lost units are erased; present units whose stored
  // checksum disagrees with their bytes are erased too (detected rot).
  std::array<std::uint32_t, 64> erased_idx;
  std::uint32_t num_erased = 0;
  std::array<bool, 64> bad{};
  std::uint32_t num_bad = 0;
  for (std::uint32_t u = 0; u < width; ++u) {
    if (!present[u]) {
      erased_idx[num_erased++] = u;
      continue;
    }
    const std::uint32_t stored = crc_[homes[u].disk][homes[u].offset];
    if (stored == 0) continue;  // unverified: adopted below
    if (core::crc32c_nonzero(bytes[u]) == stored) {
      sync_->crc_verified.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    sync_->crc_mismatches.fetch_add(1, std::memory_order_relaxed);
    if (report) ++report->mismatches;
    bad[u] = true;
    erased_idx[num_erased++] = u;
    ++num_bad;
  }

  if (num_erased > m) {
    sync_->crc_unhealable.fetch_add(1, std::memory_order_relaxed);
    if (report) ++report->unhealable;
    return Status::checksum_mismatch(
        "stripe " + std::to_string(stripe) + " iteration " +
        std::to_string(iteration) + ": " + std::to_string(num_bad) +
        " checksum-bad unit(s) plus " + std::to_string(num_erased - num_bad) +
        " lost unit(s) exceed the codec's tolerance of " + std::to_string(m));
  }

  if (num_bad > 0) {
    // Mismatch == erasure: reconstruct each bad unit from the good
    // survivors (lost units stay erased but unmaterialized) and
    // rewrite it with a fresh checksum -- one journaled record on
    // streamed backends, so a crash mid-heal replays whole.
    std::array<std::span<const std::uint8_t>, 64> survivors;
    std::array<std::uint32_t, 64> survivor_idx;
    std::uint32_t ns = 0;
    for (std::uint32_t u = 0; u < width; ++u)
      if (present[u] && !bad[u]) {
        survivors[ns] = bytes[u];
        survivor_idx[ns++] = u;
      }
    const auto heal_slab =
        scratch(0, static_cast<std::size_t>(num_bad) * unit_bytes_);
    std::array<std::span<std::uint8_t>, api::kMaxParityUnits> outs{};
    std::uint32_t buf = 0;
    for (std::uint32_t e = 0; e < num_erased; ++e)
      if (bad[erased_idx[e]])
        outs[e] = heal_slab.subspan(
            static_cast<std::size_t>(buf++) * unit_bytes_, unit_bytes_);
    codec.reconstruct(kd, {survivors.data(), ns}, {survivor_idx.data(), ns},
                      {erased_idx.data(), num_erased},
                      {outs.data(), num_erased});
    // The healed bytes are landed state: bump the epoch so any
    // concurrently staged rebuild chunk replans over them.
    sync_->write_epoch.fetch_add(1, std::memory_order_relaxed);
    if (!views_.empty()) {
      for (std::uint32_t e = 0; e < num_erased; ++e) {
        const std::uint32_t u = erased_idx[e];
        if (!bad[u]) continue;
        std::memcpy(unit_view(homes[u]).data(), outs[e].data(), unit_bytes_);
        if (Status crc = set_fresh_crc(homes[u], outs[e]); !crc.ok())
          return crc;
      }
    } else {
      std::array<IoRequest, 2 * api::kMaxParityUnits> stores;
      std::array<std::array<std::uint8_t, 4>, api::kMaxParityUnits> staging;
      std::uint32_t num_stores = 0;
      for (std::uint32_t e = 0; e < num_erased; ++e) {
        const std::uint32_t u = erased_idx[e];
        if (!bad[u]) continue;
        stores[num_stores++] =
            IoRequest::write_of(IoClass::kScrub, homes[u].disk,
                                byte_offset(homes[u].offset), outs[e]);
      }
      const std::uint32_t total = stage_crc_writes(stores, num_stores, staging);
      if (Status stored = execute_batch_journaled({stores.data(), total});
          !stored.ok())
        return stored;
      commit_staged_crcs({stores.data(), num_stores}, staging);
    }
    sync_->crc_healed.fetch_add(num_bad, std::memory_order_relaxed);
    if (report) report->healed += num_bad;
  }

  // Adopt unverified good units: their current bytes become the claim,
  // so future reads of them are actually verified.
  for (std::uint32_t u = 0; u < width; ++u) {
    if (!present[u] || bad[u]) continue;
    if (crc_[homes[u].disk][homes[u].offset] != 0) continue;
    if (Status crc = set_fresh_crc(homes[u], bytes[u]); !crc.ok()) return crc;
    sync_->crc_adopted.fetch_add(1, std::memory_order_relaxed);
  }
  return OkStatus();
}

Result<ScrubReport> StripeStore::scrub_some(std::uint64_t max_instances) {
  ScrubReport report;
  if (!integrity_) return report;
  const std::uint64_t total =
      static_cast<std::uint64_t>(array_.num_stripes()) * iterations_;
  for (std::uint64_t i = 0; i < max_instances; ++i) {
    const std::uint64_t instance =
        sync_->scrub_cursor.fetch_add(1, std::memory_order_relaxed) % total;
    const std::uint32_t stripe =
        static_cast<std::uint32_t>(instance % array_.num_stripes());
    const std::uint32_t iteration =
        static_cast<std::uint32_t>(instance / array_.num_stripes());
    std::shared_lock state(sync_->state);
    std::unique_lock shard(sync_->shards[instance % sync_->shards.size()]);
    const Status healed = heal_instance_locked(stripe, iteration, &report);
    ++report.instances;
    sync_->scrubbed.fetch_add(1, std::memory_order_relaxed);
    // Rot past tolerance and torn instances are counted, not fatal (the
    // sweep continues); only substrate errors abort the slice.
    if (!healed.ok() && healed.code() != StatusCode::kChecksumMismatch &&
        healed.code() != StatusCode::kParityInconsistent)
      return healed;
  }
  return report;
}

Result<ScrubReport> StripeStore::scrub() {
  return scrub_some(static_cast<std::uint64_t>(array_.num_stripes()) *
                    iterations_);
}

Result<std::uint64_t> StripeStore::verify_stripes() {
  std::unique_lock lock(sync_->state);
  // Media is only a consistent code word modulo the dirty table: fold
  // everything first so the sweep verifies the real current state.
  if (Status flushed = flush_dirty_exclusive(); !flushed.ok())
    return flushed;
  const core::Codec& codec = array_.codec();
  const std::uint32_t m = array_.num_parity_units();
  std::uint64_t inconsistent = 0;
  std::array<api::Array::StripeUnitStatus, 64> units;
  for (std::uint32_t stripe = 0; stripe < array_.num_stripes(); ++stripe) {
    const auto width_r = array_.stripe_units(stripe, units);
    if (!width_r.ok()) return width_r.status();
    const std::uint32_t width = *width_r;
    const std::uint32_t kd = width - m;
    bool complete = true;
    for (std::uint32_t u = 0; u < width; ++u)
      if (units[u].lost) complete = false;
    if (!complete) continue;  // degraded stripes cannot be byte-verified
    for (std::uint32_t it = 0; it < iterations_; ++it) {
      const std::uint64_t lift =
          static_cast<std::uint64_t>(it) * array_.units_per_disk();
      const auto slab =
          arena(static_cast<std::size_t>(width + m) * unit_bytes_);
      bool bad = is_torn(stripe +
                         static_cast<std::uint64_t>(it) * array_.num_stripes());
      std::array<std::span<const std::uint8_t>, 64> data_spans{};
      std::array<std::span<const std::uint8_t>, api::kMaxParityUnits> actual{};
      Status io;
      for (std::uint32_t u = 0; u < width && io.ok(); ++u) {
        const Physical home{units[u].unit.disk, units[u].unit.offset + lift};
        const auto buf = slab.subspan(
            static_cast<std::size_t>(u) * unit_bytes_, unit_bytes_);
        io = load_unit(home, buf);
        if (!io.ok()) break;
        if (integrity_) {
          const std::uint32_t stored = crc_[home.disk][home.offset];
          if (stored != 0 && core::crc32c_nonzero(buf) != stored) bad = true;
        }
        if (u < kd)
          data_spans[u] = buf;
        else
          actual[u - kd] = buf;
      }
      if (!io.ok()) return io;
      // Parity must re-encode byte-identically from the stored data.
      std::array<std::span<std::uint8_t>, api::kMaxParityUnits> expect{};
      for (std::uint32_t j = 0; j < m; ++j)
        expect[j] = slab.subspan(
            static_cast<std::size_t>(width + j) * unit_bytes_, unit_bytes_);
      codec.encode({data_spans.data(), kd}, {expect.data(), m});
      for (std::uint32_t j = 0; j < m; ++j)
        if (std::memcmp(expect[j].data(), actual[j].data(), unit_bytes_) != 0)
          bad = true;
      if (bad) ++inconsistent;
    }
  }
  return inconsistent;
}

}  // namespace pdl::io
