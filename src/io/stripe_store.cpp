#include "io/stripe_store.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "core/xor_codec.hpp"

namespace pdl::io {

namespace {

/// Poison byte for failed platters: any read that erroneously touches a
/// failed disk shows up as garbage, not as stale-but-plausible data.
constexpr std::uint8_t kPoison = 0xDD;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

[[nodiscard]] std::uint64_t fnv1a(std::uint64_t hash,
                                  std::span<const std::uint8_t> bytes) {
  for (const std::uint8_t b : bytes) {
    hash ^= b;
    hash *= kFnvPrime;
  }
  return hash;
}

/// Per-thread staging buffers for the backend (no-view) paths, so the
/// serving hot loop stays allocation-free after warm-up.  Index selects
/// one of two independent buffers (some paths need a pair).
[[nodiscard]] std::span<std::uint8_t> scratch(std::size_t which,
                                              std::size_t size) {
  thread_local std::vector<std::uint8_t> buffers[2];
  auto& buffer = buffers[which];
  if (buffer.size() < size) buffer.resize(size);
  return {buffer.data(), size};
}

/// Per-thread arena for the batched fan-in paths: one contiguous block
/// the caller carves into unit-sized slices (survivor sets, rebuild
/// waves).  Grow-only, independent of scratch(), so a path may use both.
[[nodiscard]] std::span<std::uint8_t> arena(std::size_t size) {
  thread_local std::vector<std::uint8_t> buffer;
  if (buffer.size() < size) buffer.resize(size);
  return {buffer.data(), size};
}

}  // namespace

StripeStore::StripeStore(api::Array array, const StripeStoreOptions& options,
                         std::unique_ptr<DiskBackend> backend)
    : array_(std::move(array)),
      unit_bytes_(options.unit_bytes),
      iterations_(options.iterations),
      backend_(std::move(backend)),
      sync_(std::make_unique<Sync>(std::max(1u, options.lock_shards))) {}

Result<StripeStore> StripeStore::create(api::Array array,
                                        const StripeStoreOptions& options,
                                        std::unique_ptr<DiskBackend> backend) {
  if (options.unit_bytes == 0)
    return Status::invalid_argument("unit_bytes must be positive");
  if (options.iterations == 0)
    return Status::invalid_argument("iterations must be positive");
  if (!array.healthy())
    return Status::failed_precondition(
        "StripeStore::create needs a healthy array: the backend's disks "
        "start zero-filled (or carry a prior store's parity-consistent "
        "image), which is only consistent with no pre-existing failure "
        "state");
  if (!backend) backend = make_memory_backend();

  StripeStore store(std::move(array), options, std::move(backend));
  const BackendGeometry geometry{store.array_.num_disks(),
                                 store.disk_bytes()};
  if (Status opened = store.backend_->open(geometry); !opened.ok())
    return opened;

  // Cache zero-copy views when the backend offers them (all disks or
  // none, per the DiskBackend contract).
  std::vector<std::span<std::uint8_t>> views;
  views.reserve(geometry.num_disks);
  for (DiskId disk = 0; disk < geometry.num_disks; ++disk) {
    const auto view = store.backend_->memory_view(disk);
    if (view.size() != geometry.disk_bytes) break;
    views.push_back(view);
  }
  if (views.size() == geometry.num_disks) store.views_ = std::move(views);
  return store;
}

std::shared_mutex& StripeStore::shard_for(std::uint64_t logical) noexcept {
  const api::Array::LogicalRef ref = array_.logical_ref(logical);
  const std::uint64_t instance =
      ref.stripe + ref.iteration * array_.num_stripes();
  return sync_->shards[instance % sync_->shards.size()];
}

// ------------------------------------------------------- unit primitives

Status StripeStore::load_unit(Physical p, std::span<std::uint8_t> out) {
  if (const auto view = unit_view(p); !view.empty()) {
    std::memcpy(out.data(), view.data(), unit_bytes_);
    return OkStatus();
  }
  return backend_->read(p.disk, byte_offset(p.offset), out);
}

Status StripeStore::xor_unit_into(Physical p, std::span<std::uint8_t> acc,
                                  std::span<std::uint8_t> staging) {
  if (const auto view = unit_view(p); !view.empty()) {
    core::xor_into(acc, view);
    return OkStatus();
  }
  if (Status read = backend_->read(p.disk, byte_offset(p.offset), staging);
      !read.ok())
    return read;
  core::xor_into(acc, staging);
  return OkStatus();
}

Status StripeStore::store_unit(Physical p,
                               std::span<const std::uint8_t> data) {
  if (const auto view = unit_view(p); !view.empty()) {
    std::memcpy(view.data(), data.data(), unit_bytes_);
    return OkStatus();
  }
  return backend_->write(p.disk, byte_offset(p.offset), data);
}

// -------------------------------------------------------------- data path

Status StripeStore::read(std::uint64_t logical, std::span<std::uint8_t> out,
                         ReadReceipt* receipt) {
  if (logical >= num_logical_units())
    return Status::out_of_range("logical " + std::to_string(logical) +
                                " past the address space (" +
                                std::to_string(num_logical_units()) +
                                " units)");
  if (out.size() != unit_bytes_)
    return Status::invalid_argument(
        "read buffer is " + std::to_string(out.size()) + " bytes; units are " +
        std::to_string(unit_bytes_));

  std::shared_lock state(sync_->state);
  std::shared_lock stripe(shard_for(logical));
  return read_locked(logical, out, receipt);
}

Status StripeStore::read_locked(std::uint64_t logical,
                                std::span<std::uint8_t> out,
                                ReadReceipt* receipt) {
  std::array<Physical, 64> survivors;
  const auto plan = array_.locate(logical, survivors);
  if (!plan.ok()) return plan.status();

  switch (plan->kind) {
    case api::ReadPlan::Kind::kDirect: {
      if (Status loaded = load_unit(plan->target, out); !loaded.ok())
        return loaded;
      if (receipt) {
        receipt->kind = plan->kind;
        receipt->num_touched = 1;
        receipt->touched[0] = plan->target;
      }
      return OkStatus();
    }
    case api::ReadPlan::Kind::kDegraded: {
      const std::uint32_t n = plan->num_survivors;
      if (!views_.empty()) {
        // Zero-copy: XOR every survivor straight out of the disk images
        // in one blocked pass over `out`.
        std::array<std::span<const std::uint8_t>, 64> srcs;
        for (std::uint32_t i = 0; i < n; ++i) srcs[i] = unit_view(survivors[i]);
        core::xor_reconstruct_into(out, {srcs.data(), n});
      } else {
        // Streamed: ONE batched submission fans every survivor read out
        // to its disk (an async backend serves them concurrently), then
        // a single multi-source XOR pass folds the arena into `out`.
        const auto slab = arena(static_cast<std::size_t>(n) * unit_bytes_);
        std::array<IoRequest, 64> requests;
        std::array<std::span<const std::uint8_t>, 64> srcs;
        for (std::uint32_t i = 0; i < n; ++i) {
          const auto slice = slab.subspan(
              static_cast<std::size_t>(i) * unit_bytes_, unit_bytes_);
          requests[i] = IoRequest::read_of(IoClass::kForegroundRead,
                                           survivors[i].disk,
                                           byte_offset(survivors[i].offset),
                                           slice);
          srcs[i] = slice;
        }
        if (Status fanned = backend_->execute_batch({requests.data(), n});
            !fanned.ok())
          return fanned;
        core::xor_reconstruct_into(out, {srcs.data(), n});
      }
      if (receipt) {
        receipt->kind = plan->kind;
        receipt->num_touched = n;
        std::copy_n(survivors.begin(), n, receipt->touched.begin());
      }
      return OkStatus();
    }
    case api::ReadPlan::Kind::kUnrecoverable:
      break;
  }
  if (receipt) {
    receipt->kind = api::ReadPlan::Kind::kUnrecoverable;
    receipt->num_touched = 0;
  }
  return Status::data_loss("logical " + std::to_string(logical) +
                           " is on a stripe that lost two units");
}

Status StripeStore::read_batch(std::span<const std::uint64_t> logicals,
                               std::span<std::uint8_t> out,
                               std::span<Status> statuses,
                               std::span<ReadReceipt> receipts) {
  if (out.size() != logicals.size() * unit_bytes_)
    return Status::invalid_argument(
        "read_batch buffer is " + std::to_string(out.size()) + " bytes; " +
        std::to_string(logicals.size()) + " units need " +
        std::to_string(logicals.size() * static_cast<std::uint64_t>(
                                             unit_bytes_)));
  if (statuses.size() != logicals.size())
    return Status::invalid_argument(
        "read_batch statuses span is " + std::to_string(statuses.size()) +
        " wide; need one per unit (" + std::to_string(logicals.size()) + ")");
  if (!receipts.empty() && receipts.size() != logicals.size())
    return Status::invalid_argument(
        "read_batch receipts span is " + std::to_string(receipts.size()) +
        " wide; need none or one per unit (" +
        std::to_string(logicals.size()) + ")");
  if (logicals.empty()) return OkStatus();

  // Lock every involved stripe shard in a deadlock-free global order
  // (sorted by address, deduplicated) -- the batch-wide analogue of
  // read()'s single shard lock.  Shared: reads exclude only writers.
  // A batch that sweeps more than kMaxHeldShards distinct shards takes
  // the state lock exclusively instead -- writers hold state shared,
  // so an exclusive hold excludes them wholesale -- which bounds how
  // many locks one thread holds (ThreadSanitizer's deadlock detector
  // aborts past 64).
  std::vector<std::shared_mutex*> shards;
  shards.reserve(logicals.size());
  for (const std::uint64_t logical : logicals)
    if (logical < num_logical_units()) shards.push_back(&shard_for(logical));
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  constexpr std::size_t kMaxHeldShards = 16;
  std::shared_lock<std::shared_mutex> state(sync_->state, std::defer_lock);
  std::unique_lock<std::shared_mutex> exclusive(sync_->state,
                                                std::defer_lock);
  std::vector<std::shared_lock<std::shared_mutex>> held;
  if (shards.size() > kMaxHeldShards) {
    exclusive.lock();
  } else {
    state.lock();
    held.reserve(shards.size());
    for (std::shared_mutex* shard : shards) held.emplace_back(*shard);
  }

  const auto out_slice = [&](std::size_t i) {
    return out.subspan(i * unit_bytes_, unit_bytes_);
  };

  if (!views_.empty()) {
    // Zero-copy backends gain nothing from gathering: serve in place.
    Status first;
    for (std::size_t i = 0; i < logicals.size(); ++i) {
      statuses[i] = read_locked(logicals[i], out_slice(i),
                                receipts.empty() ? nullptr : &receipts[i]);
      if (!statuses[i].ok() && first.ok()) first = statuses[i];
    }
    return first;
  }

  // Gather phase: plan every unit, emitting backend requests for direct
  // targets (straight into the caller's slice) and degraded survivor
  // sets (into arena slices, XORed after the fan-out completes).
  struct Planned {
    api::ReadPlan::Kind kind = api::ReadPlan::Kind::kUnrecoverable;
    std::size_t first_request = 0;  ///< index into `requests`
    std::uint32_t num_requests = 0;
  };
  std::vector<Planned> planned(logicals.size());
  std::vector<IoRequest> requests;
  std::vector<Physical> touched;  ///< per-request physical, for receipts
  requests.reserve(logicals.size());
  touched.reserve(logicals.size());
  Status first;
  const auto fail = [&](std::size_t i, Status status) {
    statuses[i] = std::move(status);
    if (!statuses[i].ok() && first.ok()) first = statuses[i];
  };

  std::size_t degraded_slices = 0;
  std::vector<std::uint32_t> survivor_counts(logicals.size(), 0);
  std::vector<std::array<Physical, 64>> survivor_sets(logicals.size());
  std::vector<Result<api::ReadPlan>> plans;
  plans.reserve(logicals.size());
  for (std::size_t i = 0; i < logicals.size(); ++i) {
    if (logicals[i] >= num_logical_units()) {
      plans.emplace_back(Status::out_of_range(
          "logical " + std::to_string(logicals[i]) +
          " past the address space (" + std::to_string(num_logical_units()) +
          " units)"));
      continue;
    }
    plans.emplace_back(array_.locate(logicals[i], survivor_sets[i]));
    if (plans.back().ok() &&
        plans.back()->kind == api::ReadPlan::Kind::kDegraded) {
      survivor_counts[i] = plans.back()->num_survivors;
      degraded_slices += plans.back()->num_survivors;
    }
  }
  const auto slab = arena(degraded_slices * unit_bytes_);
  std::size_t next_slice = 0;

  for (std::size_t i = 0; i < logicals.size(); ++i) {
    statuses[i] = OkStatus();
    if (!receipts.empty()) {
      receipts[i].kind = api::ReadPlan::Kind::kUnrecoverable;
      receipts[i].num_touched = 0;
    }
    if (!plans[i].ok()) {
      fail(i, plans[i].status());
      continue;
    }
    const auto& plan = *plans[i];
    planned[i].kind = plan.kind;
    planned[i].first_request = requests.size();
    switch (plan.kind) {
      case api::ReadPlan::Kind::kDirect:
        requests.push_back(IoRequest::read_of(IoClass::kForegroundRead,
                                              plan.target.disk,
                                              byte_offset(plan.target.offset),
                                              out_slice(i)));
        touched.push_back(plan.target);
        planned[i].num_requests = 1;
        break;
      case api::ReadPlan::Kind::kDegraded:
        for (std::uint32_t s = 0; s < survivor_counts[i]; ++s) {
          const Physical survivor = survivor_sets[i][s];
          requests.push_back(IoRequest::read_of(
              IoClass::kForegroundRead, survivor.disk,
              byte_offset(survivor.offset),
              slab.subspan(next_slice * unit_bytes_, unit_bytes_)));
          touched.push_back(survivor);
          ++next_slice;
        }
        planned[i].num_requests = survivor_counts[i];
        break;
      case api::ReadPlan::Kind::kUnrecoverable:
        fail(i, Status::data_loss("logical " + std::to_string(logicals[i]) +
                                  " is on a stripe that lost two units"));
        break;
    }
  }

  // Fan-out phase: the whole batch crosses the backend seam ONCE.
  if (!requests.empty()) (void)backend_->execute_batch(requests);

  // Resolve phase: per-unit statuses, XOR folds, receipts.
  for (std::size_t i = 0; i < logicals.size(); ++i) {
    if (!statuses[i].ok()) continue;  // planning already failed it
    const Planned& p = planned[i];
    Status unit;
    for (std::uint32_t r = 0; r < p.num_requests && unit.ok(); ++r)
      unit = requests[p.first_request + r].status;
    if (!unit.ok()) {
      fail(i, unit);
      continue;
    }
    if (p.kind == api::ReadPlan::Kind::kDegraded) {
      std::array<std::span<const std::uint8_t>, 64> srcs;
      for (std::uint32_t r = 0; r < p.num_requests; ++r)
        srcs[r] = requests[p.first_request + r].read_buf;
      core::xor_reconstruct_into(out_slice(i), {srcs.data(), p.num_requests});
    }
    if (!receipts.empty()) {
      receipts[i].kind = p.kind;
      receipts[i].num_touched = p.num_requests;
      std::copy_n(touched.begin() + static_cast<std::ptrdiff_t>(
                                        p.first_request),
                  p.num_requests, receipts[i].touched.begin());
    }
  }
  return first;
}

Status StripeStore::write(std::uint64_t logical,
                          std::span<const std::uint8_t> data,
                          WriteReceipt* receipt) {
  if (logical >= num_logical_units())
    return Status::out_of_range("logical " + std::to_string(logical) +
                                " past the address space (" +
                                std::to_string(num_logical_units()) +
                                " units)");
  if (data.size() != unit_bytes_)
    return Status::invalid_argument(
        "write buffer is " + std::to_string(data.size()) +
        " bytes; units are " + std::to_string(unit_bytes_));

  std::shared_lock state(sync_->state);
  std::unique_lock stripe(shard_for(logical));
  // Any landed bytes invalidate concurrently staged rebuild reads; a
  // spurious bump (e.g. a write that then fails) only costs a retry.
  sync_->write_epoch.fetch_add(1, std::memory_order_relaxed);

  std::array<Physical, 64> peers;
  const auto plan = array_.plan_write(logical, peers);
  if (!plan.ok()) return plan.status();
  if (receipt) {
    receipt->kind = plan->kind;
    receipt->num_reads = 0;
    receipt->num_writes = 0;
  }

  switch (plan->kind) {
    case api::WritePlan::Kind::kReadModifyWrite: {
      // parity ^= old ^ new, then the data unit takes the new bytes.
      if (const auto p = unit_view(plan->parity); !p.empty()) {
        // Zero-copy: one blocked pass folds old parity, old data, and
        // new data into the parity image in place.
        const std::span<const std::uint8_t> srcs[] = {
            p, unit_view(plan->data), data};
        core::xor_parity_into(p, srcs);
        std::memcpy(unit_view(plan->data).data(), data.data(), unit_bytes_);
      } else {
        const auto parity = scratch(0, unit_bytes_);
        const auto staging = scratch(1, unit_bytes_);
        // Both RMW reads (old parity + old data) go out as ONE batched
        // submission -- they hit different disks by construction, so an
        // async backend overlaps them.  staging keeps the old data bytes
        // for the compensation paths below.
        std::array<IoRequest, 2> loads = {
            IoRequest::read_of(IoClass::kForegroundWrite, plan->parity.disk,
                               byte_offset(plan->parity.offset), parity),
            IoRequest::read_of(IoClass::kForegroundWrite, plan->data.disk,
                               byte_offset(plan->data.offset), staging)};
        if (Status loaded = backend_->execute_batch(loads); !loaded.ok())
          return loaded;
        core::xor_into(parity, staging);
        core::xor_into(parity, data);
        // Both RMW writes batched too.  The writes are concurrent, so
        // EITHER may land alone; each partial outcome has a
        // compensation that restores the consistent pre-write state:
        //   * parity landed, data failed -> restore old parity
        //     (P_old = P_new ^ D_old ^ D_new);
        //   * data landed, parity failed -> restore the old data bytes
        //     held in staging (old parity still on disk matches them).
        // Either way a caller retry is then safe.  Both-failed needs no
        // compensation (nothing landed); only a failure of the
        // compensating write itself leaves the stripe torn -- the same
        // window the sequential path had.
        std::array<IoRequest, 2> stores = {
            IoRequest::write_of(IoClass::kForegroundWrite, plan->parity.disk,
                                byte_offset(plan->parity.offset), parity),
            IoRequest::write_of(IoClass::kForegroundWrite, plan->data.disk,
                                byte_offset(plan->data.offset), data)};
        if (Status stored = backend_->execute_batch(stores); !stored.ok()) {
          if (stores[0].status.ok() && !stores[1].status.ok()) {
            core::xor_into(parity, staging);
            core::xor_into(parity, data);
            (void)store_unit(plan->parity, parity);
          } else if (!stores[0].status.ok() && stores[1].status.ok()) {
            (void)store_unit(plan->data, staging);
          }
          return stored;
        }
      }
      if (receipt) {
        receipt->num_reads = 2;
        receipt->reads[0] = plan->data;
        receipt->reads[1] = plan->parity;
        receipt->num_writes = 2;
        receipt->writes[0] = plan->data;
        receipt->writes[1] = plan->parity;
      }
      return OkStatus();
    }
    case api::WritePlan::Kind::kReconstructWrite: {
      // The data unit's disk is gone: fold the new value into parity so a
      // degraded read reconstructs it.  parity = XOR(peers) ^ new data.
      if (!views_.empty()) {
        std::array<std::span<const std::uint8_t>, 64> srcs;
        for (std::uint32_t i = 0; i < plan->num_peer_reads; ++i)
          srcs[i] = unit_view(peers[i]);
        srcs[plan->num_peer_reads] = data;
        core::xor_parity_into(unit_view(plan->parity),
                              {srcs.data(), plan->num_peer_reads + 1u});
      } else {
        // ONE batched submission fans the peer reads out (each peer is
        // on a distinct disk), then parity = XOR(peers) ^ new data in a
        // single pass over the arena.
        const std::uint32_t n = plan->num_peer_reads;
        const auto parity = scratch(0, unit_bytes_);
        const auto slab = arena(static_cast<std::size_t>(n) * unit_bytes_);
        std::array<IoRequest, 64> requests;
        for (std::uint32_t i = 0; i < n; ++i)
          requests[i] = IoRequest::read_of(
              IoClass::kForegroundWrite, peers[i].disk,
              byte_offset(peers[i].offset),
              slab.subspan(static_cast<std::size_t>(i) * unit_bytes_,
                           unit_bytes_));
        if (Status fanned = backend_->execute_batch({requests.data(), n});
            !fanned.ok())
          return fanned;
        std::memcpy(parity.data(), data.data(), unit_bytes_);
        for (std::uint32_t i = 0; i < n; ++i)
          core::xor_into(parity, requests[i].read_buf);
        if (Status stored = store_unit(plan->parity, parity); !stored.ok())
          return stored;
      }
      if (receipt) {
        receipt->num_reads = plan->num_peer_reads;
        std::copy_n(peers.begin(), plan->num_peer_reads,
                    receipt->reads.begin());
        receipt->num_writes = 1;
        receipt->writes[0] = plan->parity;
      }
      return OkStatus();
    }
    case api::WritePlan::Kind::kUnprotectedWrite: {
      if (Status stored = store_unit(plan->data, data); !stored.ok())
        return stored;
      if (receipt) {
        receipt->num_writes = 1;
        receipt->writes[0] = plan->data;
      }
      return OkStatus();
    }
    case api::WritePlan::Kind::kUnrecoverable:
      break;
  }
  return Status::data_loss("logical " + std::to_string(logical) +
                           " is on a stripe that lost two units");
}

Status StripeStore::sync() {
  std::unique_lock lock(sync_->state);  // exclude in-flight writers
  for (DiskId disk = 0; disk < array_.num_disks(); ++disk)
    if (Status synced = backend_->sync(disk); !synced.ok()) return synced;
  return OkStatus();
}

// ------------------------------------------------- failure & rebuild

Status StripeStore::fail_disk(DiskId disk) {
  std::unique_lock lock(sync_->state);
  sync_->write_epoch.fetch_add(1, std::memory_order_relaxed);
  if (Status failed = array_.fail_disk(disk); !failed.ok()) return failed;
  return backend_->discard(disk, kPoison);
}

Status StripeStore::replace_disk(DiskId disk) {
  std::unique_lock lock(sync_->state);
  sync_->write_epoch.fetch_add(1, std::memory_order_relaxed);
  if (Status replaced = array_.replace_disk(disk); !replaced.ok())
    return replaced;
  return backend_->discard(disk, 0);
}

Status StripeStore::apply_step_bytes(const api::RebuildStep& step) {
  // Bytes first, every iteration of the stripe (the step reports
  // iteration-0 offsets), then the array's state transition.
  const std::uint32_t n = static_cast<std::uint32_t>(step.reads.size());
  if (!views_.empty()) {
    for (std::uint32_t it = 0; it < iterations_; ++it) {
      const std::uint64_t lift =
          static_cast<std::uint64_t>(it) * array_.units_per_disk();
      const Physical target{step.target.disk, step.target.offset + lift};
      std::array<std::span<const std::uint8_t>, 64> srcs;
      for (std::uint32_t i = 0; i < n; ++i)
        srcs[i] = unit_view({step.reads[i].disk, step.reads[i].offset + lift});
      core::xor_reconstruct_into(unit_view(target), {srcs.data(), n});
    }
    return array_.apply_rebuild_step(step);
  }

  // Streamed: stage (survivor fan-in + XOR) then commit (target writes
  // + state transition), back to back -- the caller already holds the
  // exclusive lock.
  std::vector<std::uint8_t> slab;
  std::vector<IoRequest> writes;
  if (Status staged = stage_step_streamed(step, slab, writes); !staged.ok())
    return staged;
  return commit_step_streamed(step, writes);
}

Status StripeStore::stage_step_streamed(const api::RebuildStep& step,
                                        std::vector<std::uint8_t>& buffer,
                                        std::vector<IoRequest>& writes) {
  // The step's ENTIRE survivor fan-in -- every survivor of every
  // iteration -- goes out as one kRebuild-tagged submission (so a
  // rebuild-deprioritizing scheduler can hold it behind foreground
  // I/O), then one XOR pass per iteration leaves the rebuilt units at
  // the tail of `buffer`, which the caller keeps alive through the
  // commit (several steps may be staged before any of them commits).
  const std::uint32_t n = static_cast<std::uint32_t>(step.reads.size());
  const std::size_t total = static_cast<std::size_t>(n) * iterations_;
  buffer.resize((total + iterations_) * unit_bytes_);
  const std::span<std::uint8_t> slab{buffer.data(), buffer.size()};
  std::vector<IoRequest> reads;
  reads.reserve(total);
  for (std::uint32_t it = 0; it < iterations_; ++it) {
    const std::uint64_t lift =
        static_cast<std::uint64_t>(it) * array_.units_per_disk();
    for (std::uint32_t i = 0; i < n; ++i)
      reads.push_back(IoRequest::read_of(
          IoClass::kRebuild, step.reads[i].disk,
          byte_offset(step.reads[i].offset + lift),
          slab.subspan((static_cast<std::size_t>(it) * n + i) * unit_bytes_,
                       unit_bytes_)));
  }
  if (Status fanned = backend_->execute_batch(reads); !fanned.ok())
    return fanned;

  writes.clear();
  writes.reserve(iterations_);
  for (std::uint32_t it = 0; it < iterations_; ++it) {
    const std::uint64_t lift =
        static_cast<std::uint64_t>(it) * array_.units_per_disk();
    const auto rebuilt =
        slab.subspan((total + it) * unit_bytes_, unit_bytes_);
    std::array<std::span<const std::uint8_t>, 64> srcs;
    for (std::uint32_t i = 0; i < n; ++i)
      srcs[i] = reads[static_cast<std::size_t>(it) * n + i].read_buf;
    core::xor_reconstruct_into(rebuilt, {srcs.data(), n});
    writes.push_back(IoRequest::write_of(IoClass::kRebuild, step.target.disk,
                                         byte_offset(step.target.offset + lift),
                                         rebuilt));
  }
  return OkStatus();
}

Status StripeStore::commit_step_streamed(const api::RebuildStep& step,
                                         std::span<IoRequest> writes) {
  if (Status stored = backend_->execute_batch(writes); !stored.ok())
    return stored;
  return array_.apply_rebuild_step(step);
}

Result<std::uint64_t> StripeStore::rebuild_some(std::uint64_t max_steps,
                                                std::uint64_t* blocked) {
  std::uint64_t applied = 0;
  if (blocked) *blocked = 0;
  for (;;) {
    // Plan one batch under the exclusive lock.  The whole batch is
    // applied before re-planning -- the same plan-once-apply-all
    // discipline as api::Array::rebuild, so the store's target choices
    // (spare vs replacement slot) match a bare array's step for step.
    // View-backed stores apply the batch right here: zero-copy XOR is
    // pure memory bandwidth, there is no disk queue to compete in.
    std::vector<api::RebuildStep> steps;
    std::uint64_t epoch = 0;
    {
      std::unique_lock lock(sync_->state);
      auto plan = array_.plan_rebuild();
      if (!plan.ok()) return plan.status();
      if (blocked) *blocked = plan->blocked;
      if (plan->steps.empty() || applied >= max_steps) return applied;
      if (!views_.empty()) {
        for (const api::RebuildStep& step : plan->steps) {
          if (applied >= max_steps) break;
          if (Status done = apply_step_bytes(step); !done.ok()) return done;
          ++applied;
        }
        continue;
      }
      steps = std::move(plan->steps);
      epoch = sync_->write_epoch.load(std::memory_order_relaxed);
    }

    std::size_t next = 0;
    bool replan = false;
    while (next < steps.size() && !replan) {
      if (applied >= max_steps) return applied;
      // Chunk bounds: kMaxStageChunk keeps the exclusive commit hold
      // short, and kMaxStageShards keeps the number of simultaneously
      // held locks small (ThreadSanitizer's deadlock detector aborts a
      // thread holding 64+).
      constexpr std::size_t kMaxStageChunk = 8;
      constexpr std::size_t kMaxStageShards = 16;
      const std::size_t chunk = static_cast<std::size_t>(std::min<std::uint64_t>(
          {steps.size() - next, max_steps - applied, kMaxStageChunk}));

      // The chunk's stripe shard locks -- shared, one per iteration
      // instance, sorted like read_batch's -- exclude byte-level
      // overlap with foreground writes to the staged stripes without
      // stalling foreground reads; writes elsewhere proceed and are
      // caught by the epoch check below.
      std::vector<std::shared_mutex*> shards;
      shards.reserve(chunk * iterations_);
      for (std::size_t j = 0; j < chunk; ++j)
        for (std::uint32_t it = 0; it < iterations_; ++it) {
          const std::uint64_t instance =
              steps[next + j].stripe +
              static_cast<std::uint64_t>(it) * array_.num_stripes();
          shards.push_back(&sync_->shards[instance % sync_->shards.size()]);
        }
      std::sort(shards.begin(), shards.end());
      shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
      if (shards.size() > kMaxStageShards) {
        // Degenerate geometry (huge iteration counts sweep most of the
        // shard pool): apply the chunk under the exclusive lock rather
        // than hold half the pool across a scheduler-delayed wave.
        std::unique_lock lock(sync_->state);
        if (sync_->write_epoch.load(std::memory_order_relaxed) != epoch) {
          Status done = apply_step_bytes(steps[next]);
          if (done.ok())
            ++applied;
          else if (done.code() != StatusCode::kFailedPrecondition)
            return done;
          replan = true;
          break;
        }
        for (std::size_t j = 0; j < chunk; ++j) {
          if (Status done = apply_step_bytes(steps[next + j]); !done.ok())
            return done;
          ++applied;
        }
        next += chunk;
        continue;
      }

      // Stage the chunk under ONE SHARED lock hold: foreground reads
      // and writes keep submitting, so rebuild reads genuinely compete
      // in the disk queues, and the store pays one state-lock
      // round-trip per chunk instead of per step.
      std::vector<std::vector<std::uint8_t>> slabs(chunk);
      std::vector<std::vector<IoRequest>> writes(chunk);
      {
        std::shared_lock lock(sync_->state);
        std::vector<std::shared_lock<std::shared_mutex>> held;
        held.reserve(shards.size());
        for (std::shared_mutex* shard : shards) held.emplace_back(*shard);
        for (std::size_t j = 0; j < chunk; ++j)
          if (Status staged = stage_step_streamed(steps[next + j], slabs[j],
                                                  writes[j]);
              !staged.ok())
            return staged;
      }

      // Commit the chunk under ONE exclusive lock hold.  An unchanged
      // epoch proves no write / fail / replace landed since the plan,
      // so the staged bytes are current and every step is exactly as
      // valid as when planned.  Otherwise restage one step under the
      // exclusive lock (writers are excluded now -- progress is
      // guaranteed) and re-plan: the interloper may have been a
      // fail/replace that reshaped the plan, which
      // apply_rebuild_step's own staleness checks surface as
      // kFailedPrecondition.
      std::unique_lock lock(sync_->state);
      if (sync_->write_epoch.load(std::memory_order_relaxed) != epoch) {
        Status done = apply_step_bytes(steps[next]);
        if (done.ok())
          ++applied;
        else if (done.code() != StatusCode::kFailedPrecondition)
          return done;
        replan = true;
        break;
      }
      for (std::size_t j = 0; j < chunk; ++j) {
        if (Status done = commit_step_streamed(steps[next + j], writes[j]);
            !done.ok())
          return done;
        ++applied;
      }
      next += chunk;
    }
  }
}

Result<api::RebuildOutcome> StripeStore::rebuild() {
  api::RebuildOutcome outcome;
  for (;;) {
    // The pass that finds nothing left to apply has already planned the
    // final state, so its blocked count is the outcome's.
    std::uint64_t blocked = 0;
    auto applied = rebuild_some(~0ull, &blocked);
    if (!applied.ok()) return applied.status();
    if (*applied == 0) {
      outcome.blocked = blocked;
      return outcome;
    }
    outcome.applied += *applied;
  }
}

// ------------------------------------------------------------ verification

Result<std::uint64_t> StripeStore::checksum_disk_locked(DiskId disk) const {
  if (!views_.empty() && disk < views_.size())
    return fnv1a(kFnvOffset, views_[disk]);

  // Stream the image through a bounded buffer.
  constexpr std::uint64_t kChunk = 1u << 18;
  std::vector<std::uint8_t> chunk(
      static_cast<std::size_t>(std::min<std::uint64_t>(kChunk, disk_bytes())));
  std::uint64_t hash = kFnvOffset;
  std::uint64_t offset = 0;
  while (offset < disk_bytes()) {
    const std::uint64_t n =
        std::min<std::uint64_t>(chunk.size(), disk_bytes() - offset);
    const std::span<std::uint8_t> window{chunk.data(),
                                         static_cast<std::size_t>(n)};
    if (Status read = backend_->read(disk, offset, window); !read.ok())
      return read;
    hash = fnv1a(hash, window);
    offset += n;
  }
  return hash;
}

Result<std::uint64_t> StripeStore::checksum_disk(DiskId disk) const {
  std::unique_lock lock(sync_->state);  // exclude in-flight writers
  return checksum_disk_locked(disk);
}

Result<std::vector<std::uint64_t>> StripeStore::checksum_disks() const {
  // One exclusive lock across ALL disks: the vector is a cross-disk-
  // consistent snapshot (no write can land between two entries).
  std::unique_lock lock(sync_->state);
  std::vector<std::uint64_t> sums;
  sums.reserve(array_.num_disks());
  for (DiskId disk = 0; disk < array_.num_disks(); ++disk) {
    auto sum = checksum_disk_locked(disk);
    if (!sum.ok()) return sum.status();
    sums.push_back(*sum);
  }
  return sums;
}

}  // namespace pdl::io
