#pragma once
/// @file
/// pdl::io::StripeStore -- the byte-moving data path.
///
/// Everything below src/io counts unit accesses; this class actually moves
/// bytes.  A StripeStore owns a pdl::api::Array (the layout, mapping
/// tables, and online failure state) plus a DiskBackend (the storage
/// substrate -- in-memory buffers, one file per disk, or any future
/// substrate), and routes every logical read/write through Array::locate /
/// Array::plan_write:
///
///   * healthy reads copy the unit's bytes straight out of its home disk;
///   * degraded reads decode the survivor units into the caller's buffer
///     through the array's core::Codec (XOR parity: Figure 1's "any
///     single lost unit is the XOR of the survivors"; Reed-Solomon P+Q:
///     a GF(2^8) two-erasure decode -- both executed for real);
///   * small writes do a real read-modify-write delta fold into every
///     surviving parity (parity ^= c * (old ^ new)), a reconstruct-write
///     when the data unit is lost (surviving parities re-encoded from
///     the peers, decoding any second erased unit first), or an
///     unprotected data write when every parity unit is lost;
///   * fail_disk physically destroys the disk's contents (poison fill),
///     replace_disk attaches zeroed platters, and rebuild() regenerates
///     every lost unit from survivor bytes into its spare or replacement
///     slot -- under Reed-Solomon through TWO concurrent disk failures --
///     after which the store serves the exact bytes written before the
///     failure (checksum-identical for in-place rebuilds).
///
/// Torn parity: when a write's compensation path itself fails (two
/// substrate faults inside one RMW), the stripe instance's parity no
/// longer matches its data.  The store marks the instance TORN and every
/// parity-trusting operation on it (degraded reads, RMW, rebuild of a
/// data unit) returns a typed kParityInconsistent Status instead of
/// serving silently-wrong reconstructions.  A later successful write to
/// the instance heals it: the store re-encodes every surviving parity
/// from the full data set and clears the flag.
///
/// Backends: when the backend exposes zero-copy memory views
/// (MemoryBackend), the store serves straight out of the disk images with
/// no copies or syscalls; otherwise (FileBackend, decorators) every unit
/// moves through DiskBackend::read/write and substrate errors surface as
/// typed kIoError Statuses from the store's own calls.  A store re-created
/// over a persistent backend's existing image (file reopen) serves the
/// bytes a previous process wrote -- parity was maintained write-by-write,
/// so degraded reads and rebuilds work across restarts.
///
/// Concurrency: the store layers the readers-writer discipline that
/// api::Array's external-synchronization contract asks for.  A
/// shared_mutex guards the array's online state (read/write take it
/// shared; fail/replace take it exclusive), and a fixed pool of
/// stripe-instance rw-locks -- sharded by (stripe, iteration) -- keeps
/// parity updates atomic with their data writes: writers hold a stripe's
/// shard exclusively, while readers (and rebuild staging, which only
/// reads survivors) hold it shared, so reads of the same stripe proceed
/// in parallel and only writer/reader pairs exclude each other.  Lock
/// order is always state-then-shard; shard locks are only ever taken
/// together in one sorted pass (read_batch, rebuild staging), so the
/// scheme is deadlock-free.  The same sharding is what discharges the
/// backend's "overlapping writes are externally serialized" demand.
///
/// Online rebuild stages each streamed step's survivor fan-in under the
/// SHARED state lock (plus the step's stripe shard locks, also shared),
/// so foreground reads and writes keep submitting while rebuild reads
/// sit in the same disk queues -- this is what makes an IoScheduler's
/// rebuild policy observable.  The commit (target writes + array state
/// transition) re-takes the exclusive lock and validates via a global
/// write-epoch counter that no write / fail / replace landed since the
/// batch was planned; an invalidated stage is re-run under the
/// exclusive lock before re-planning, so progress is always guaranteed.
///
/// Address space: logical units 0 .. num_logical_units()-1, each
/// unit_bytes() wide; the layout tiles vertically `iterations` times, so
/// num_logical_units() = Array::data_units_per_iteration() * iterations.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_set>
#include <vector>

#include "api/array.hpp"
#include "core/status.hpp"
#include "io/disk_backend.hpp"
#include "io/stripe_cache.hpp"

namespace pdl::io {

using api::Physical;
using layout::DiskId;

/// Monotonic counters of the end-to-end integrity layer.  All zero when
/// the store's array was created without api::ArrayOptions::integrity.
struct IntegrityStats {
  std::uint64_t verified = 0;    ///< unit checks whose checksum matched
  std::uint64_t mismatches = 0;  ///< checksum mismatches detected
  std::uint64_t healed = 0;      ///< units reconstructed and rewritten
  std::uint64_t unhealable = 0;  ///< heal attempts past codec tolerance
  std::uint64_t adopted = 0;     ///< unverified units given a checksum
  std::uint64_t scrubbed = 0;    ///< stripe instances swept by scrub
};

/// What one scrub slice (scrub_some) actually did.
struct ScrubReport {
  std::uint64_t instances = 0;   ///< stripe instances swept
  std::uint64_t mismatches = 0;  ///< bad units found
  std::uint64_t healed = 0;      ///< bad units healed in place
  std::uint64_t unhealable = 0;  ///< instances past codec tolerance
  std::uint64_t skipped = 0;     ///< parity-torn instances left alone
};

/// Construction knobs for StripeStore::create.
struct StripeStoreOptions {
  /// Bytes per stripe unit (the store's I/O granularity).
  std::uint32_t unit_bytes = 4096;
  /// Vertical layout repetitions per disk (disk capacity multiplier).
  std::uint32_t iterations = 1;
  /// Stripe-instance lock pool size (power of parallelism vs memory).
  std::uint32_t lock_shards = 64;
  /// Workload-aware cache layer (hotness tracking, hot-unit read cache,
  /// parity-delta write batching).  Off by default; see
  /// docs/ARCHITECTURE.md "Caching and write batching".
  StripeCacheOptions cache = {};
};

/// What one read physically did: its resolution kind and every unit it
/// touched (the direct target, or the survivor set XORed together).
/// Inline storage -- filling a receipt never allocates.
struct ReadReceipt {
  /// How the read resolved under the failure state at serving time.
  api::ReadPlan::Kind kind = api::ReadPlan::Kind::kDirect;
  /// Valid prefix length of `touched`.
  std::uint32_t num_touched = 0;
  std::array<Physical, 64> touched;  ///< first num_touched are valid

  /// The units actually touched, as a span over the inline storage.
  [[nodiscard]] std::span<const Physical> units() const noexcept {
    return {touched.data(), num_touched};
  }
};

/// What one write physically did: the units it read and the units it
/// wrote under the parity-update strategy plan_write selected.
struct WriteReceipt {
  /// Which parity-maintenance strategy the write used.
  api::WritePlan::Kind kind = api::WritePlan::Kind::kReadModifyWrite;
  /// Valid prefix length of `reads`.
  std::uint32_t num_reads = 0;
  /// Valid prefix length of `writes`.
  std::uint32_t num_writes = 0;
  std::array<Physical, 64> reads;  ///< first num_reads are valid
  /// First num_writes are valid: the data unit and every maintained
  /// parity (one under XOR, up to api::kMaxParityUnits under RS).
  std::array<Physical, 1 + api::kMaxParityUnits> writes;

  /// Units read for parity maintenance, over the inline storage.
  [[nodiscard]] std::span<const Physical> read_units() const noexcept {
    return {reads.data(), num_reads};
  }
  /// Units physically written, over the inline storage.
  [[nodiscard]] std::span<const Physical> written_units() const noexcept {
    return {writes.data(), num_writes};
  }
};

/// The byte-serving engine: one api::Array (layout + online state) bound
/// to one DiskBackend (the bytes), with parity maintained on every write
/// and reconstruction executed on real bytes.  See the file comment for
/// the full data-path and concurrency story.
class StripeStore {
 public:
  /// Binds a (healthy) array to a backend and opens the backend with the
  /// derived geometry.  A null backend means a fresh MemoryBackend (the
  /// zero-dependency default).  kInvalidArgument for zero
  /// unit_bytes/iterations; kFailedPrecondition for an array already
  /// carrying failure state (a fresh backend's zero-filled disks are only
  /// parity-consistent with a healthy array -- a reopened persistent
  /// image is parity-consistent because the previous store maintained it
  /// write-by-write); any backend open() failure is passed through.
  [[nodiscard]] static Result<StripeStore> create(
      api::Array array, const StripeStoreOptions& options = {},
      std::unique_ptr<DiskBackend> backend = nullptr);

  // ------------------------------------------------------------ geometry

  /// Logical units addressable through the store.
  [[nodiscard]] std::uint64_t num_logical_units() const noexcept {
    return array_.capacity_units(iterations_);
  }
  /// Bytes per logical unit (the I/O granularity).
  [[nodiscard]] std::uint32_t unit_bytes() const noexcept {
    return unit_bytes_;
  }
  /// Logical byte capacity of the store (num_logical_units x unit_bytes
  /// -- the extent of addressable user bytes, e.g. for a fleet router
  /// sizing shard extents).
  [[nodiscard]] std::uint64_t logical_bytes() const noexcept {
    return array_.capacity_bytes(unit_bytes_, iterations_);
  }
  /// Vertical layout repetitions per disk.
  [[nodiscard]] std::uint32_t iterations() const noexcept {
    return iterations_;
  }
  /// Bytes per physical disk image.
  [[nodiscard]] std::uint64_t disk_bytes() const noexcept {
    return array_.disk_bytes(unit_bytes_, iterations_);
  }
  /// The owned array's read-only surface.  Do NOT mutate the array's
  /// online state behind the store's back -- use the store's own
  /// fail_disk / replace_disk / rebuild, which keep bytes and state in
  /// lockstep under the store's locks.
  [[nodiscard]] const api::Array& array() const noexcept { return array_; }
  /// The owned storage substrate.  Do NOT write through it behind the
  /// store's back; read-only surfaces (name(), stats on a decorator) are
  /// fair game.
  [[nodiscard]] DiskBackend& backend() noexcept { return *backend_; }

  // ----------------------------------------------------------- data path

  /// Reads one logical unit into `out` (exactly unit_bytes() wide).
  /// Degraded units are reconstructed from survivor bytes on the fly.
  /// kOutOfRange past the address space, kInvalidArgument for a wrong
  /// buffer size, kDataLoss when the unit's stripe lost two units,
  /// kIoError passed through from the backend (possibly transient --
  /// retrying is safe, reads don't mutate).  On any non-OK status the
  /// contents of `out` are unspecified.  Thread-safe against concurrent
  /// read/write.
  [[nodiscard]] Status read(std::uint64_t logical,
                            std::span<std::uint8_t> out,
                            ReadReceipt* receipt = nullptr);

  /// Reads many logical units in ONE batched backend submission:
  /// `out` is logicals.size() unit-slices back to back, `statuses[i]`
  /// receives unit i's individual outcome (the per-unit contract of
  /// read(): kOutOfRange, kDataLoss, kIoError, ...), and the return
  /// value is the first non-OK status (OkStatus when every unit was
  /// served).  One failed unit does not veto its batchmates.  Every
  /// direct target and every degraded survivor set across the whole
  /// batch is gathered into a single DiskBackend::execute_batch call,
  /// so an async backend sees the full fan-out at once -- this is the
  /// driver-facing path that turns queue_depth into real in-flight
  /// parallelism.  `receipts`, when non-empty, must be
  /// logicals.size() long.  Thread-safe against concurrent read/write.
  [[nodiscard]] Status read_batch(std::span<const std::uint64_t> logicals,
                                  std::span<std::uint8_t> out,
                                  std::span<Status> statuses,
                                  std::span<ReadReceipt> receipts = {});

  /// Writes one logical unit from `data` (exactly unit_bytes() wide),
  /// keeping parity consistent via RMW / reconstruct-write / unprotected
  /// write as the failure state dictates.  Error contract mirrors read(),
  /// with one addition: when the data write of an RMW fails after the
  /// new parity already landed, the store rolls the parity back to its
  /// pre-write value before returning the kIoError, so the stripe is
  /// consistent and retrying the write is safe.  A second substrate
  /// failure during that rollback (the window a crash leaves on real
  /// arrays) marks the stripe instance TORN and returns
  /// kParityInconsistent; parity-trusting operations on the instance
  /// keep returning kParityInconsistent until a successful write to it
  /// heals the parity (full re-encode).  Thread-safe against concurrent
  /// read/write.
  [[nodiscard]] Status write(std::uint64_t logical,
                             std::span<const std::uint8_t> data,
                             WriteReceipt* receipt = nullptr);

  /// Flushes every disk to the backend's durability point (fdatasync per
  /// image file for FileBackend; no-op for memory).
  [[nodiscard]] Status sync();

  // ------------------------------------------- failure & rebuild (bytes)

  /// Marks the disk failed and physically destroys its contents (poison
  /// fill), so any buggy read from it would be caught byte-wise.
  [[nodiscard]] Status fail_disk(DiskId disk);

  /// Attaches zero-filled replacement platters to a failed disk.
  [[nodiscard]] Status replace_disk(DiskId disk);

  /// Regenerates up to max_steps lost stripes (every iteration of each)
  /// from survivor bytes into their spare/replacement slots, then
  /// advances the array's rebuild state.  Returns the number of stripes
  /// repaired; 0 means nothing is currently rebuildable (`blocked`, when
  /// given, receives the count still waiting on replace_disk).  On
  /// streamed backends each step's survivor fan-in runs under the SHARED
  /// state lock -- foreground reads and writes proceed concurrently with
  /// rebuild I/O, competing in the backend's disk queues -- and only the
  /// short commit (target writes + state transition) excludes them; see
  /// the file comment for the validation protocol.  Drive it from a
  /// rebuilder thread for online rebuild.
  [[nodiscard]] Result<std::uint64_t> rebuild_some(
      std::uint64_t max_steps, std::uint64_t* blocked = nullptr);

  /// rebuild_some until quiescent: everything rebuildable without
  /// further replace_disk calls is rebuilt.
  [[nodiscard]] Result<api::RebuildOutcome> rebuild();

  // -------------------------------------------------------- verification

  /// FNV-1a 64 over the disk's raw bytes (failure-state agnostic).
  /// kIoError passed through from the backend.
  [[nodiscard]] Result<std::uint64_t> checksum_disk(DiskId disk) const;
  /// checksum_disk for every disk, in disk order, under ONE exclusive
  /// lock -- the vector is a cross-disk-consistent snapshot.
  [[nodiscard]] Result<std::vector<std::uint64_t>> checksum_disks() const;

  // ----------------------------------------------------------- integrity

  /// Whether the per-unit CRC32C layer is active (the bound array was
  /// created with api::ArrayOptions::integrity).  When active, every
  /// read path verifies the touched units against a per-disk checksum
  /// region appended after the data region, a mismatch is treated as an
  /// erasure and healed through the codec, and every store refreshes
  /// the written units' checksums.
  [[nodiscard]] bool integrity() const noexcept { return integrity_; }

  /// Snapshot of the integrity counters (verify / mismatch / heal /
  /// scrub activity since create).
  [[nodiscard]] IntegrityStats integrity_stats() const noexcept;

  /// Sweeps up to max_instances stripe instances from a persistent
  /// cursor (wrapping), verifying every present unit's checksum under
  /// kScrub-tagged reads and healing mismatches in place through the
  /// codec.  Unverified units (checksum 0: written before the layer
  /// existed, or a replaced disk's zeroed platters) are ADOPTED -- given
  /// a checksum over their current bytes.  Torn instances are skipped
  /// (a successful write heals them); unhealable instances (rot beyond
  /// the codec's tolerance) are counted and left for rebuild.  A no-op
  /// (empty report) when integrity is off.  Thread-safe; pace it from a
  /// scrubber thread (io::Scrubber) or a fleet's governed driver.
  [[nodiscard]] Result<ScrubReport> scrub_some(std::uint64_t max_instances);

  /// One full scrub cycle: every stripe instance swept exactly once.
  [[nodiscard]] Result<ScrubReport> scrub();

  /// Counts stripe instances whose stored parity does NOT byte-identical
  /// re-encode from their stored data (plus any instance still marked
  /// torn), under one exclusive lock.  Degraded stripes (a lost unit)
  /// are skipped -- they cannot be byte-verified.  0 on a consistent
  /// store; the crash-recovery harness's acceptance check.
  [[nodiscard]] Result<std::uint64_t> verify_stripes();

  // ------------------------------------------------------------- cache

  /// Whether the workload-aware cache layer is active
  /// (StripeStoreOptions::cache.enabled at create).
  [[nodiscard]] bool cache_enabled() const noexcept {
    return cache_ != nullptr;
  }

  /// Snapshot of the cache layer's counters (all zero when disabled).
  [[nodiscard]] HotnessStats hotness_stats() const noexcept {
    return cache_ ? cache_->stats() : HotnessStats{};
  }

  /// Current count-min hotness estimate of one stripe instance (an
  /// upper bound on its recent foreground accesses; 0 when the cache
  /// layer is off).  The fleet tier aggregates this per shard for the
  /// governor's foreground-protecting policy.
  [[nodiscard]] std::uint32_t hotness(std::uint32_t stripe,
                                      std::uint64_t iteration) const noexcept {
    return cache_ ? cache_->estimate(stripe +
                                     iteration * array_.num_stripes())
                  : 0;
  }

  /// Folds every dirty stripe instance's batched parity deltas (and
  /// pinned data) to media, one journaled batch per instance.  A no-op
  /// without the cache layer.  sync(), fail_disk(), and
  /// verify_stripes() flush implicitly; call this before comparing
  /// media checksums against an uncached store.  Thread-safe.
  [[nodiscard]] Status flush_cache();

  // ------------------------------------------------------- torn parity

  /// Stripe instances currently marked parity-torn (see the file
  /// comment).  0 on the happy path.
  [[nodiscard]] std::uint64_t torn_parity_instances() const noexcept {
    return sync_->torn_count.load(std::memory_order_relaxed);
  }
  /// Whether one (stripe, iteration) instance is marked parity-torn.
  [[nodiscard]] bool parity_torn(std::uint32_t stripe,
                                 std::uint64_t iteration) const;

 private:
  StripeStore(api::Array array, const StripeStoreOptions& options,
              std::unique_ptr<DiskBackend> backend);

  /// Byte offset of a physical unit within its disk image.
  [[nodiscard]] std::uint64_t byte_offset(std::uint64_t unit_offset)
      const noexcept {
    return unit_offset * unit_bytes_;
  }
  /// Zero-copy view of a unit, or empty when the backend has none.
  [[nodiscard]] std::span<std::uint8_t> unit_view(Physical p) const noexcept {
    if (views_.empty()) return {};
    return views_[p.disk].subspan(
        static_cast<std::size_t>(byte_offset(p.offset)), unit_bytes_);
  }
  /// Loads a unit's bytes into `out` (view memcpy or backend read).
  [[nodiscard]] Status load_unit(Physical p, std::span<std::uint8_t> out);
  /// acc ^= unit's bytes, staging through `scratch` when there is no
  /// zero-copy view.  Both spans are unit_bytes() wide.
  [[nodiscard]] Status xor_unit_into(Physical p, std::span<std::uint8_t> acc,
                                     std::span<std::uint8_t> scratch);
  /// Stores `data` as the unit's bytes (view memcpy or backend write).
  [[nodiscard]] Status store_unit(Physical p,
                                  std::span<const std::uint8_t> data);
  [[nodiscard]] std::shared_mutex& shard_for(std::uint64_t logical) noexcept;
  /// The (stripe, iteration) instance key of a logical unit -- the torn
  /// set's and the shard hash's common currency.
  [[nodiscard]] std::uint64_t instance_of(std::uint64_t logical)
      const noexcept;
  [[nodiscard]] bool is_torn(std::uint64_t instance) const;
  void mark_torn(std::uint64_t instance);
  void clear_torn(std::uint64_t instance);
  /// read()'s body; caller holds the state lock (shared) and the
  /// logical's shard lock.  kChecksumMismatch (internal sentinel) when a
  /// touched unit fails verification -- the public read() heals and
  /// retries before surfacing it.
  [[nodiscard]] Status read_locked(std::uint64_t logical,
                                   std::span<std::uint8_t> out,
                                   ReadReceipt* receipt);
  /// read_batch's single-pass body (locks, gather, fan-out, resolve);
  /// the public read_batch retries kChecksumMismatch units through
  /// read() -- which heals -- after this returns.
  [[nodiscard]] Status read_batch_once(std::span<const std::uint64_t> logicals,
                                       std::span<std::uint8_t> out,
                                       std::span<Status> statuses,
                                       std::span<ReadReceipt> receipts);
  /// write()'s plan-and-dispatch body; caller holds the state lock
  /// (shared) and the logical's shard lock (exclusive) and has bumped
  /// the epoch.  kChecksumMismatch when a unit loaded for parity
  /// maintenance fails verification -- write() heals and retries.
  [[nodiscard]] Status write_locked(std::uint64_t logical,
                                    std::span<const std::uint8_t> data,
                                    WriteReceipt* receipt);
  /// RMW fold into multiple surviving parities (Reed-Solomon data path);
  /// caller holds the locks and has bumped the epoch.
  [[nodiscard]] Status write_rmw_multi(const api::WritePlan& plan,
                                       std::span<const std::uint8_t> data,
                                       std::uint64_t instance,
                                       WriteReceipt* receipt);
  /// Reconstruct-write re-encoding multiple surviving parities (decoding
  /// any second erased unit first); caller holds the locks.
  [[nodiscard]] Status write_reconstruct_multi(
      const api::WritePlan& plan, std::span<const Physical> peers,
      std::span<const std::uint32_t> peer_index,
      std::span<const std::uint8_t> data, std::uint64_t instance,
      WriteReceipt* receipt);
  /// Torn-parity heal: write the data unit and re-encode EVERY surviving
  /// parity from the full data set, clearing the torn flag on success.
  [[nodiscard]] Status write_heal(std::uint64_t logical,
                                  const api::WritePlan& plan,
                                  std::span<const std::uint8_t> data,
                                  std::uint64_t instance,
                                  WriteReceipt* receipt);
  /// One rebuild step, bytes first (all iterations), then array state.
  [[nodiscard]] Status apply_step_bytes(const api::RebuildStep& step);
  /// Streamed-step staging: survivor fan-in (one kRebuild-tagged batch)
  /// plus the XOR folds, leaving the rebuilt units in `slab` (resized as
  /// needed; must stay alive through the commit) and the target-write
  /// requests in `writes`.  Caller holds the state lock (shared or
  /// exclusive) and, when shared, the step's stripe shard locks.
  [[nodiscard]] Status stage_step_streamed(const api::RebuildStep& step,
                                           std::vector<std::uint8_t>& slab,
                                           std::vector<IoRequest>& writes);
  /// Streamed-step commit: issues the staged target writes and advances
  /// the array's rebuild state.  Caller holds the exclusive state lock
  /// and has validated the step (or never released the lock).
  [[nodiscard]] Status commit_step_streamed(const api::RebuildStep& step,
                                            std::span<IoRequest> writes);
  /// checksum_disk's body; caller holds the exclusive state lock.
  [[nodiscard]] Result<std::uint64_t> checksum_disk_locked(DiskId disk) const;

  // ------------------------------------------------- integrity internals

  /// Byte offset of a unit's stored checksum within its disk's media
  /// (the checksum region starts at crc_base_ == disk_bytes()).
  [[nodiscard]] std::uint64_t crc_media_offset(std::uint64_t unit_offset)
      const noexcept {
    return crc_base_ + unit_offset * 4;
  }
  /// Verifies `bytes` against the unit's cached checksum, counting the
  /// outcome.  true when they match, the layer is off, or the stored
  /// checksum is 0 (unverified -- never written through this layer).
  [[nodiscard]] bool verify_unit_crc(Physical p,
                                     std::span<const std::uint8_t> bytes);
  /// Writes the unit's CACHED checksum to its media slot (view memcpy
  /// or backend write) -- the compensation paths' restore primitive.
  [[nodiscard]] Status crc_persist(Physical p);
  /// Computes, caches, and persists a fresh checksum over `bytes`.
  /// No-op when the layer is off.
  [[nodiscard]] Status set_fresh_crc(Physical p,
                                     std::span<const std::uint8_t> bytes);
  /// Appends one checksum-region write per unit-write in
  /// requests[0..count) (staging the 4 bytes in `staging`, which must
  /// outlive the batch) and returns the new total count.  The checksums
  /// ride in the SAME batch -- and the same journal record -- as the
  /// unit writes, so replay restores units and checksums together.
  [[nodiscard]] std::uint32_t stage_crc_writes(
      std::span<IoRequest> requests, std::uint32_t count,
      std::span<std::array<std::uint8_t, 4>> staging);
  /// Adopts the staged checksums into the cache after their batch
  /// landed (units[i] is the i'th unit write, staging[i] its checksum).
  void commit_staged_crcs(std::span<const IoRequest> units,
                          std::span<const std::array<std::uint8_t, 4>> staging);
  /// execute_batch through the backend's write-ahead journal when it
  /// has one: the record is durable before the in-place writes start
  /// and retired after they finish, closing the crash-mid-RMW hole.
  [[nodiscard]] Status execute_batch_journaled(std::span<IoRequest> batch);
  /// Verifies every present unit of one stripe instance and
  /// reconstructs + rewrites the mismatching ones through the codec
  /// (mismatch == erasure; healable while lost + bad <= m).  Unverified
  /// units are adopted.  Caller holds the state lock (shared or
  /// exclusive) and, when shared, the instance's shard lock
  /// exclusively.  kParityInconsistent for torn instances,
  /// kChecksumMismatch when rot exceeds the codec's tolerance.
  [[nodiscard]] Status heal_instance_locked(std::uint32_t stripe,
                                            std::uint32_t iteration,
                                            ScrubReport* report);
  /// apply_step_bytes with one heal-and-retry round on detected rot;
  /// caller holds the exclusive state lock.
  [[nodiscard]] Status apply_step_healing(const api::RebuildStep& step);
  /// Zeroes a discarded disk's checksum cache and media region
  /// ("unverified"); caller holds the exclusive state lock.
  [[nodiscard]] Status reset_disk_crcs(DiskId disk);

  // ----------------------------------------------------- cache internals

  /// Absorbs an RMW write into the dirty-delta table when the instance
  /// is hot (or already dirty): pins the new bytes, accumulates the
  /// codec delta per surviving parity, and touches NO media except a
  /// possible pre-image read.  Sets *handled=false (and returns OK)
  /// when the write should fall through to the immediate RMW paths
  /// (cold instance, table full).  Caller holds write_locked's locks;
  /// plan must be a zero-erasure kReadModifyWrite on a non-torn
  /// instance.  Folds inline when the entry hits max_dirty_units.
  [[nodiscard]] Status absorb_rmw(const api::WritePlan& plan,
                                  std::uint64_t logical,
                                  std::span<const std::uint8_t> data,
                                  std::uint64_t instance,
                                  WriteReceipt* receipt, bool* handled);
  /// Folds one dirty instance to media: one journaled batch writing
  /// every pinned data unit plus each parity's old bytes XOR its
  /// accumulated delta (linearity makes that byte-identical to per-op
  /// RMW).  Partial failure compensates back to the pre-fold image
  /// (entry kept -- the deltas stay valid); a failed compensation
  /// marks the instance torn.  kChecksumMismatch when a pre-image
  /// fails verification -- callers heal and retry.  Caller holds the
  /// state lock (shared, with the instance's shard lock exclusive) or
  /// the exclusive state lock.
  [[nodiscard]] Status fold_instance_locked(std::uint64_t instance);
  /// Torn-instance fold: full-stripe re-encode from media data with
  /// the pinned dirty bytes overlaid (the dirty-table analogue of
  /// write_heal), clearing the torn flag on success.
  [[nodiscard]] Status fold_reencode_locked(std::uint64_t instance,
                                            StripeCache::DirtyEntry* entry);
  /// Folds every dirty instance, taking each instance's shard lock
  /// exclusively in turn; caller holds the state lock shared.
  [[nodiscard]] Status flush_dirty_shared();
  /// Folds every dirty instance; caller holds the exclusive state lock.
  [[nodiscard]] Status flush_dirty_exclusive();

  api::Array array_;
  std::uint32_t unit_bytes_ = 0;
  std::uint32_t iterations_ = 0;
  std::unique_ptr<DiskBackend> backend_;
  /// Cached zero-copy views, one per disk, covering the FULL media
  /// (data region plus, under integrity, the checksum region); empty
  /// when the backend does not expose them (then every access goes
  /// through read/write).
  std::vector<std::span<std::uint8_t>> views_;
  /// Whether the per-unit checksum layer is active (array integrity).
  bool integrity_ = false;
  /// Start of the per-disk checksum region (== disk_bytes()).
  std::uint64_t crc_base_ = 0;
  /// In-process checksum cache, [disk][physical unit offset] -- the
  /// authority for verification (loaded from media at create).  0 means
  /// unverified.  An entry is only touched under its instance's shard
  /// lock (or the exclusive state lock), like the unit bytes it covers.
  std::vector<std::vector<std::uint32_t>> crc_;
  /// The workload-aware cache layer; null unless options.cache.enabled.
  /// Dirty entries only ever cover FULLY HEALTHY stripe instances: the
  /// absorb path requires a zero-erasure plan, and fail_disk flushes
  /// the whole table before introducing an erasure.
  std::unique_ptr<StripeCache> cache_;

  /// Heap-allocated so the store stays movable (Result<StripeStore>).
  struct Sync {
    std::shared_mutex state;
    /// Stripe-instance rw-locks: writers exclusive, readers/staging
    /// shared (see the file comment's concurrency story).
    std::vector<std::shared_mutex> shards;
    /// Bumped by every byte-mutating operation -- write, fail, replace,
    /// AND every rebuild commit (commit_step_streamed / the view-path
    /// apply) -- so one rebuilder's committed step invalidates another
    /// rebuilder's concurrently staged chunk instead of surfacing as a
    /// spurious hard kFailedPrecondition at its commit.  Rebuild staging
    /// snapshots the epoch under the exclusive lock and re-checks at
    /// commit: an unchanged epoch proves the staged survivor bytes are
    /// still current.  Relaxed ordering suffices: every load and store
    /// of the epoch happens with the state mutex held (shared or
    /// exclusive), so the mutex provides the happens-before edges and
    /// the counter only needs atomicity against torn increments from
    /// concurrent shared-lock holders.
    std::atomic<std::uint64_t> write_epoch{0};
    /// Torn-parity tracking (see the file comment): instances whose
    /// parity no longer matches their data after a double substrate
    /// fault.  torn_count is a relaxed fast-path gate so the happy path
    /// never takes torn_mutex.
    std::atomic<std::uint64_t> torn_count{0};
    mutable std::mutex torn_mutex;
    std::unordered_set<std::uint64_t> torn;
    /// Integrity counters (IntegrityStats snapshot source) and the
    /// scrub sweep cursor.  Relaxed: they are statistics, ordered by
    /// the locks their bumping paths already hold.
    std::atomic<std::uint64_t> crc_verified{0};
    std::atomic<std::uint64_t> crc_mismatches{0};
    std::atomic<std::uint64_t> crc_healed{0};
    std::atomic<std::uint64_t> crc_unhealable{0};
    std::atomic<std::uint64_t> crc_adopted{0};
    std::atomic<std::uint64_t> scrubbed{0};
    std::atomic<std::uint64_t> scrub_cursor{0};
    explicit Sync(std::uint32_t n) : shards(n) {}
  };
  std::unique_ptr<Sync> sync_;
};

}  // namespace pdl::io
