#pragma once
// pdl::io::StripeStore -- the byte-moving data path.
//
// Everything below src/io counts unit accesses; this class actually moves
// bytes.  A StripeStore owns a pdl::api::Array (the layout, mapping
// tables, and online failure state) plus one in-memory byte buffer per
// disk, and routes every logical read/write through Array::locate /
// Array::plan_write:
//
//   * healthy reads copy the unit's bytes straight out of its home disk;
//   * degraded reads XOR the survivor units into the caller's buffer
//     (core::xor_reconstruct_into -- Figure 1's "any single lost unit is
//     the XOR of the survivors", executed for real);
//   * small writes do a real read-modify-write parity update (parity ^=
//     old ^ new), a reconstruct-write when the data unit is lost (parity
//     = XOR(surviving peers) ^ new data), or an unprotected data write
//     when the parity unit is lost;
//   * fail_disk physically destroys the disk's contents (poison fill),
//     replace_disk attaches zeroed platters, and rebuild() regenerates
//     every lost unit from survivor bytes into its spare or replacement
//     slot -- after which the store serves the exact bytes written before
//     the failure (checksum-identical for in-place rebuilds).
//
// Concurrency: the store layers the readers-writer discipline that
// api::Array's external-synchronization contract asks for.  A
// shared_mutex guards the array's online state (read/write take it
// shared; fail/replace/rebuild take it exclusive), and a fixed pool of
// stripe-instance locks -- sharded by (stripe, iteration) -- serializes
// byte access per stripe so parity updates are atomic with their data
// writes while different stripes proceed in parallel.  Lock order is
// always state-then-shard; each operation holds exactly one shard lock,
// so the scheme is deadlock-free.
//
// Address space: logical units 0 .. num_logical_units()-1, each
// unit_bytes() wide; the layout tiles vertically `iterations` times, so
// num_logical_units() = Array::data_units_per_iteration() * iterations.

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "api/array.hpp"
#include "core/status.hpp"

namespace pdl::io {

using api::Physical;
using layout::DiskId;

struct StripeStoreOptions {
  /// Bytes per stripe unit (the store's I/O granularity).
  std::uint32_t unit_bytes = 4096;
  /// Vertical layout repetitions per disk (disk capacity multiplier).
  std::uint32_t iterations = 1;
  /// Stripe-instance lock pool size (power of parallelism vs memory).
  std::uint32_t lock_shards = 64;
};

/// What one read physically did: its resolution kind and every unit it
/// touched (the direct target, or the survivor set XORed together).
/// Inline storage -- filling a receipt never allocates.
struct ReadReceipt {
  api::ReadPlan::Kind kind = api::ReadPlan::Kind::kDirect;
  std::uint32_t num_touched = 0;
  std::array<Physical, 64> touched;  ///< first num_touched are valid

  [[nodiscard]] std::span<const Physical> units() const noexcept {
    return {touched.data(), num_touched};
  }
};

/// What one write physically did: the units it read and the units it
/// wrote under the parity-update strategy plan_write selected.
struct WriteReceipt {
  api::WritePlan::Kind kind = api::WritePlan::Kind::kReadModifyWrite;
  std::uint32_t num_reads = 0;
  std::uint32_t num_writes = 0;
  std::array<Physical, 64> reads;
  std::array<Physical, 2> writes;

  [[nodiscard]] std::span<const Physical> read_units() const noexcept {
    return {reads.data(), num_reads};
  }
  [[nodiscard]] std::span<const Physical> written_units() const noexcept {
    return {writes.data(), num_writes};
  }
};

class StripeStore {
 public:
  /// Wraps a (healthy) array with zero-filled disks.  kInvalidArgument
  /// for zero unit_bytes/iterations or an array already carrying failure
  /// state.
  [[nodiscard]] static Result<StripeStore> create(
      api::Array array, const StripeStoreOptions& options = {});

  // ------------------------------------------------------------ geometry

  [[nodiscard]] std::uint64_t num_logical_units() const noexcept {
    return array_.data_units_per_iteration() * iterations_;
  }
  [[nodiscard]] std::uint32_t unit_bytes() const noexcept {
    return unit_bytes_;
  }
  [[nodiscard]] std::uint32_t iterations() const noexcept {
    return iterations_;
  }
  [[nodiscard]] std::uint64_t disk_bytes() const noexcept {
    return static_cast<std::uint64_t>(array_.units_per_disk()) *
           iterations_ * unit_bytes_;
  }
  /// The owned array's read-only surface.  Do NOT mutate the array's
  /// online state behind the store's back -- use the store's own
  /// fail_disk / replace_disk / rebuild, which keep bytes and state in
  /// lockstep under the store's locks.
  [[nodiscard]] const api::Array& array() const noexcept { return array_; }

  // ----------------------------------------------------------- data path

  /// Reads one logical unit into `out` (exactly unit_bytes() wide).
  /// Degraded units are reconstructed from survivor bytes on the fly.
  /// kOutOfRange past the address space, kInvalidArgument for a wrong
  /// buffer size, kDataLoss when the unit's stripe lost two units.
  /// Thread-safe against concurrent read/write.
  [[nodiscard]] Status read(std::uint64_t logical,
                            std::span<std::uint8_t> out,
                            ReadReceipt* receipt = nullptr);

  /// Writes one logical unit from `data` (exactly unit_bytes() wide),
  /// keeping parity consistent via RMW / reconstruct-write / unprotected
  /// write as the failure state dictates.  Error contract mirrors read().
  /// Thread-safe against concurrent read/write.
  [[nodiscard]] Status write(std::uint64_t logical,
                             std::span<const std::uint8_t> data,
                             WriteReceipt* receipt = nullptr);

  // ------------------------------------------- failure & rebuild (bytes)

  /// Marks the disk failed and physically destroys its contents (poison
  /// fill), so any buggy read from it would be caught byte-wise.
  [[nodiscard]] Status fail_disk(DiskId disk);

  /// Attaches zero-filled replacement platters to a failed disk.
  [[nodiscard]] Status replace_disk(DiskId disk);

  /// Regenerates up to max_steps lost stripes (every iteration of each)
  /// from survivor bytes into their spare/replacement slots, then
  /// advances the array's rebuild state.  Returns the number of stripes
  /// repaired; 0 means nothing is currently rebuildable (`blocked`, when
  /// given, receives the count still waiting on replace_disk).  Takes
  /// the exclusive lock per batch, so serving threads interleave between
  /// calls -- drive it from a rebuilder thread for online rebuild.
  [[nodiscard]] Result<std::uint64_t> rebuild_some(
      std::uint64_t max_steps, std::uint64_t* blocked = nullptr);

  /// rebuild_some until quiescent: everything rebuildable without
  /// further replace_disk calls is rebuilt.
  [[nodiscard]] Result<api::RebuildOutcome> rebuild();

  // -------------------------------------------------------- verification

  /// FNV-1a 64 over the disk's raw bytes (failure-state agnostic).
  [[nodiscard]] std::uint64_t checksum_disk(DiskId disk) const;
  [[nodiscard]] std::vector<std::uint64_t> checksum_disks() const;

 private:
  StripeStore(api::Array array, const StripeStoreOptions& options);

  /// Byte offset of a physical unit within its disk buffer.
  [[nodiscard]] std::size_t byte_offset(std::uint64_t unit_offset)
      const noexcept {
    return static_cast<std::size_t>(unit_offset) * unit_bytes_;
  }
  [[nodiscard]] std::span<std::uint8_t> unit_span(Physical p) noexcept {
    return {disks_[p.disk].data() + byte_offset(p.offset), unit_bytes_};
  }
  [[nodiscard]] std::span<const std::uint8_t> unit_cspan(
      Physical p) const noexcept {
    return {disks_[p.disk].data() + byte_offset(p.offset), unit_bytes_};
  }
  [[nodiscard]] std::mutex& shard_for(std::uint64_t logical) noexcept;
  /// One rebuild step, bytes first (all iterations), then array state.
  [[nodiscard]] Status apply_step_bytes(const api::RebuildStep& step);

  api::Array array_;
  std::uint32_t unit_bytes_ = 0;
  std::uint32_t iterations_ = 0;
  std::vector<std::vector<std::uint8_t>> disks_;

  /// Heap-allocated so the store stays movable (Result<StripeStore>).
  struct Sync {
    std::shared_mutex state;
    std::vector<std::mutex> shards;
    explicit Sync(std::uint32_t n) : shards(n) {}
  };
  std::unique_ptr<Sync> sync_;
};

}  // namespace pdl::io
