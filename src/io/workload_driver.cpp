#include "io/workload_driver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <mutex>
#include <random>
#include <thread>

namespace pdl::io {

namespace {

[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

double zipf_zetan(std::uint64_t n, double theta) {
  static std::mutex mutex;
  static std::vector<std::pair<std::pair<std::uint64_t, double>, double>>
      cache;
  {
    std::lock_guard lock(mutex);
    for (const auto& entry : cache)
      if (entry.first.first == n && entry.first.second == theta)
        return entry.second;
  }
  double zetan = 0;
  for (std::uint64_t i = 1; i <= n; ++i)
    zetan += 1.0 / std::pow(static_cast<double>(i), theta);
  std::lock_guard lock(mutex);
  cache.push_back({{n, theta}, zetan});
  return zetan;
}

const char* access_pattern_name(AccessPattern pattern) noexcept {
  switch (pattern) {
    case AccessPattern::kUniform: return "uniform";
    case AccessPattern::kSequential: return "sequential";
    case AccessPattern::kZipfian: return "zipfian";
  }
  return "?";
}

void WorkloadStats::merge(const WorkloadStats& other) {
  reads += other.reads;
  writes += other.writes;
  direct_reads += other.direct_reads;
  degraded_reads += other.degraded_reads;
  rmw_writes += other.rmw_writes;
  reconstruct_writes += other.reconstruct_writes;
  unprotected_writes += other.unprotected_writes;
  data_loss_ops += other.data_loss_ops;
  errors += other.errors;
  verify_failures += other.verify_failures;
  bytes_moved += other.bytes_moved;
  read_batches += other.read_batches;
  batched_reads += other.batched_reads;
  read_latency_us.insert(read_latency_us.end(), other.read_latency_us.begin(),
                         other.read_latency_us.end());
  write_latency_us.insert(write_latency_us.end(),
                          other.write_latency_us.begin(),
                          other.write_latency_us.end());
  // elapsed_seconds is wall time of the whole run; the caller sets it
  // once rather than summing per-thread times.
}

namespace {

[[nodiscard]] std::uint32_t latency_quantile_us(
    const std::vector<std::uint32_t>& samples, double p) {
  // Nearest-rank convention: the p-quantile of n samples is the
  // ceil(p*n)-th smallest (1-based), clamped into [1, n].  The previous
  // floor(p*(n-1)) spelling sat one rank low on small sample sets --
  // e.g. p99 of 100 samples returned the 99th value, not the 100th --
  // systematically underreporting tail latency.
  if (samples.empty()) return 0;
  std::vector<std::uint32_t> sorted(samples);
  const double clamped = std::clamp(p, 0.0, 1.0);
  const auto wanted = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(sorted.size())));
  const std::size_t rank = std::clamp<std::size_t>(wanted, 1, sorted.size()) - 1;
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(rank),
                   sorted.end());
  return sorted[rank];
}

}  // namespace

std::uint32_t WorkloadStats::read_latency_quantile_us(double p) const {
  return latency_quantile_us(read_latency_us, p);
}

std::uint32_t WorkloadStats::write_latency_quantile_us(double p) const {
  return latency_quantile_us(write_latency_us, p);
}

void canonical_fill(std::uint64_t logical, std::uint64_t seed,
                    std::span<std::uint8_t> out) noexcept {
  std::uint64_t state = seed ^ (logical * 0xD1B54A32D192ED03ull);
  std::size_t i = 0;
  for (; i + 8 <= out.size(); i += 8) {
    const std::uint64_t word = splitmix64(state);
    std::memcpy(out.data() + i, &word, 8);
  }
  if (i < out.size()) {
    const std::uint64_t word = splitmix64(state);
    std::memcpy(out.data() + i, &word, out.size() - i);
  }
}

Status fill_canonical(StripeStore& store, std::uint64_t first,
                      std::uint64_t last, std::uint64_t seed) {
  std::vector<std::uint8_t> unit(store.unit_bytes());
  for (std::uint64_t logical = first; logical < last; ++logical) {
    canonical_fill(logical, seed, unit);
    if (Status written = store.write(logical, unit); !written.ok())
      return written;
  }
  return OkStatus();
}

WorkloadDriver::WorkloadDriver(StripeStore& store, WorkloadOptions options)
    : store_(store), options_(options) {
  if (options_.num_threads == 0) options_.num_threads = 1;
  if (options_.queue_depth == 0) options_.queue_depth = 1;
  options_.read_fraction = std::clamp(options_.read_fraction, 0.0, 1.0);

  if (options_.pattern == AccessPattern::kZipfian) {
    // YCSB ZipfianGenerator parameters; theta = 1 is a pole, so clamp.
    const double theta = std::clamp(options_.zipf_theta, 0.01, 0.99);
    const auto n = static_cast<double>(store_.num_logical_units());
    const double zetan = zipf_zetan(store_.num_logical_units(), theta);
    zipf_zetan_ = zetan;
    zipf_zeta2_ = 1.0 + 1.0 / std::pow(2.0, theta);
    zipf_alpha_ = 1.0 / (1.0 - theta);
    zipf_eta_ = (1.0 - std::pow(2.0 / n, 1.0 - theta)) /
                (1.0 - zipf_zeta2_ / zetan);
    options_.zipf_theta = theta;
  }
}

std::uint64_t WorkloadDriver::zipf_sample(double u) const noexcept {
  const std::uint64_t n = store_.num_logical_units();
  const double uz = u * zipf_zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, options_.zipf_theta)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n) *
      std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_));
  return std::min(rank, n - 1);
}

void WorkloadDriver::worker(std::uint32_t thread_index,
                            WorkloadStats& stats) const {
  const std::uint64_t n = store_.num_logical_units();
  const std::uint32_t unit_bytes = store_.unit_bytes();
  // Against an async backend the batch's reads go out as one
  // StripeStore::read_batch submission (queue_depth genuinely in
  // flight); a synchronous backend would gain nothing, so reads are
  // issued one by one exactly as before.
  const bool batch_reads = store_.backend().async();
  std::mt19937_64 rng(options_.seed * 0x9E3779B97F4A7C15ull + thread_index);
  std::uniform_real_distribution<double> unit_dist(0.0, 1.0);

  std::vector<std::uint8_t> buffer(unit_bytes);
  std::vector<std::uint8_t> expected(unit_bytes);
  std::vector<std::uint64_t> batch(options_.queue_depth);
  std::vector<bool> is_read(options_.queue_depth);
  std::vector<std::uint64_t> read_addrs(options_.queue_depth);
  std::vector<std::uint8_t> read_bytes(
      static_cast<std::size_t>(options_.queue_depth) * unit_bytes);
  std::vector<Status> read_statuses(options_.queue_depth);
  std::vector<ReadReceipt> read_receipts(options_.queue_depth);
  std::uint64_t cursor = (n / options_.num_threads) * thread_index;

  using clock = std::chrono::steady_clock;
  const auto elapsed_us = [](clock::time_point since) {
    return static_cast<std::uint32_t>(std::min<std::int64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                              since)
            .count(),
        std::numeric_limits<std::int64_t>::max()));
  };
  const auto tally_read = [&](std::uint64_t logical, const Status& status,
                              const ReadReceipt& receipt,
                              std::span<const std::uint8_t> bytes,
                              std::uint32_t latency_us) {
    if (status.ok()) {
      ++stats.reads;
      stats.bytes_moved += unit_bytes;
      stats.read_latency_us.push_back(latency_us);
      if (receipt.kind == api::ReadPlan::Kind::kDegraded)
        ++stats.degraded_reads;
      else
        ++stats.direct_reads;
      if (options_.verify_reads) {
        canonical_fill(logical, options_.seed, expected);
        if (!std::equal(bytes.begin(), bytes.end(), expected.begin()))
          ++stats.verify_failures;
      }
    } else if (status.code() == StatusCode::kDataLoss) {
      ++stats.data_loss_ops;
    } else {
      ++stats.errors;
    }
  };

  std::uint64_t remaining = options_.ops_per_thread;
  while (remaining > 0) {
    const std::uint64_t batch_size =
        std::min<std::uint64_t>(options_.queue_depth, remaining);
    for (std::uint64_t i = 0; i < batch_size; ++i) {
      switch (options_.pattern) {
        case AccessPattern::kUniform:
          batch[i] = rng() % n;
          break;
        case AccessPattern::kSequential:
          batch[i] = cursor;
          cursor = (cursor + 1) % n;
          break;
        case AccessPattern::kZipfian:
          batch[i] = zipf_sample(unit_dist(rng));
          break;
      }
      is_read[i] = unit_dist(rng) < options_.read_fraction;
    }

    // Writes first, one by one (each is already a batched parity
    // transaction inside the store)...
    for (std::uint64_t i = 0; i < batch_size; ++i) {
      if (is_read[i]) continue;
      const std::uint64_t logical = batch[i];
      canonical_fill(logical, options_.seed, buffer);
      WriteReceipt receipt;
      const auto write_started = clock::now();
      const Status status = store_.write(logical, buffer, &receipt);
      if (status.ok()) {
        ++stats.writes;
        stats.bytes_moved += unit_bytes;
        stats.write_latency_us.push_back(elapsed_us(write_started));
        switch (receipt.kind) {
          case api::WritePlan::Kind::kReadModifyWrite:
            ++stats.rmw_writes;
            break;
          case api::WritePlan::Kind::kReconstructWrite:
            ++stats.reconstruct_writes;
            break;
          case api::WritePlan::Kind::kUnprotectedWrite:
            ++stats.unprotected_writes;
            break;
          case api::WritePlan::Kind::kUnrecoverable:
            break;
        }
      } else if (status.code() == StatusCode::kDataLoss) {
        ++stats.data_loss_ops;
      } else {
        ++stats.errors;
      }
    }

    // ...then the batch's reads, as one deep submission when the
    // backend is async.
    std::uint32_t num_reads = 0;
    for (std::uint64_t i = 0; i < batch_size; ++i)
      if (is_read[i]) read_addrs[num_reads++] = batch[i];
    if (batch_reads && num_reads > 0) {
      const auto started = clock::now();
      (void)store_.read_batch(
          {read_addrs.data(), num_reads},
          {read_bytes.data(),
           static_cast<std::size_t>(num_reads) * unit_bytes},
          {read_statuses.data(), num_reads},
          {read_receipts.data(), num_reads});
      // Batched reads complete together: the submission's wall time is
      // each op's caller-visible latency.
      const std::uint32_t latency = elapsed_us(started);
      ++stats.read_batches;
      stats.batched_reads += num_reads;
      for (std::uint32_t i = 0; i < num_reads; ++i)
        tally_read(read_addrs[i], read_statuses[i], read_receipts[i],
                   {read_bytes.data() + static_cast<std::size_t>(i) *
                                            unit_bytes,
                    unit_bytes},
                   latency);
    } else {
      for (std::uint32_t i = 0; i < num_reads; ++i) {
        ReadReceipt receipt;
        const auto started = clock::now();
        const Status status = store_.read(read_addrs[i], buffer, &receipt);
        tally_read(read_addrs[i], status, receipt, buffer,
                   elapsed_us(started));
      }
    }
    remaining -= batch_size;
  }
}

WorkloadStats WorkloadDriver::run() {
  std::vector<WorkloadStats> per_thread(options_.num_threads);
  std::vector<std::thread> threads;
  threads.reserve(options_.num_threads);

  const auto start = std::chrono::steady_clock::now();
  for (std::uint32_t t = 0; t < options_.num_threads; ++t)
    threads.emplace_back(
        [this, t, &per_thread] { worker(t, per_thread[t]); });
  for (std::thread& thread : threads) thread.join();
  const auto end = std::chrono::steady_clock::now();

  WorkloadStats merged;
  for (const WorkloadStats& stats : per_thread) merged.merge(stats);
  merged.elapsed_seconds =
      std::chrono::duration<double>(end - start).count();
  return merged;
}

}  // namespace pdl::io
