#pragma once
// Concurrent workload driver for the byte-level data path: a fixed pool
// of threads hammers a StripeStore with a configurable read/write mix
// over uniform, sequential, or zipfian address distributions, so one
// process can push millions of unit accesses through the store and
// measure healthy vs degraded vs rebuilding throughput.
//
// Content discipline: every write stores the canonical pattern for its
// logical address (a seeded splitmix64 stream), so concurrent writers
// racing on the same address still leave canonical bytes behind and
// reads can verify content integrity at any moment (verify_reads) --
// including degraded reads reconstructed from survivors mid-rebuild.
// A verification mismatch is counted, never asserted, so the driver is
// usable both as a benchmark loop and as a stress-test oracle.
//
// The driver is storage-substrate-agnostic: it hammers whatever
// DiskBackend the store was constructed over (zero-copy memory, file
// images, a fault-injecting decorator), and backend kIoError statuses
// are tallied under `errors` rather than aborting the run.

#include <cstdint>
#include <span>
#include <vector>

#include "io/stripe_store.hpp"

namespace pdl::io {

enum class AccessPattern : std::uint8_t {
  kUniform = 0,     ///< independent uniform addresses
  kSequential = 1,  ///< per-thread contiguous scan, wrapping
  kZipfian = 2,     ///< YCSB-style zipfian (hot-spot) addresses
};

[[nodiscard]] const char* access_pattern_name(AccessPattern pattern) noexcept;

struct WorkloadOptions {
  std::uint32_t num_threads = 4;
  std::uint64_t ops_per_thread = 10000;
  double read_fraction = 0.7;        ///< probability an op is a read
  AccessPattern pattern = AccessPattern::kUniform;
  double zipf_theta = 0.99;          ///< zipfian skew (0 = uniform-ish)
  /// Addresses drawn per batch.  Against a synchronous backend the
  /// batch is issued back-to-back (queue depth is a modelling fiction);
  /// against an async backend (DiskBackend::async()) each thread's
  /// reads go out as ONE StripeStore::read_batch submission, so up to
  /// queue_depth ops are genuinely in flight per thread and the stats
  /// report the depth actually achieved.
  std::uint32_t queue_depth = 8;
  std::uint64_t seed = 1;
  /// Check every successful read against the canonical pattern.  Only
  /// meaningful once the addressed range holds canonical content (see
  /// fill_canonical / the write-side discipline).
  bool verify_reads = false;
};

struct WorkloadStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t direct_reads = 0;
  std::uint64_t degraded_reads = 0;
  std::uint64_t rmw_writes = 0;
  std::uint64_t reconstruct_writes = 0;
  std::uint64_t unprotected_writes = 0;
  std::uint64_t data_loss_ops = 0;   ///< ops refused with kDataLoss
  std::uint64_t errors = 0;          ///< any other non-OK status
  std::uint64_t verify_failures = 0; ///< reads whose bytes were wrong
  std::uint64_t bytes_moved = 0;     ///< user payload (reads + writes)
  std::uint64_t read_batches = 0;    ///< batched read submissions issued
  std::uint64_t batched_reads = 0;   ///< reads carried by those submissions
  /// Caller-visible completion latency of every successful read, in
  /// microseconds (batched reads share their submission's wall time --
  /// that IS what the caller waited).  merge() concatenates.
  std::vector<std::uint32_t> read_latency_us;
  /// Caller-visible completion latency of every successful write, in
  /// microseconds (the full parity transaction -- RMW fan-in included --
  /// is what the caller waited).  merge() concatenates.
  std::vector<std::uint32_t> write_latency_us;
  double elapsed_seconds = 0;

  [[nodiscard]] double mb_per_second() const noexcept {
    return elapsed_seconds > 0
               ? static_cast<double>(bytes_moved) / 1e6 / elapsed_seconds
               : 0.0;
  }
  /// Mean ops actually in flight per batched submission -- the ACHIEVED
  /// queue depth, as opposed to WorkloadOptions::queue_depth, which is
  /// merely configured.  1.0 for a synchronous run (no batching).
  [[nodiscard]] double achieved_depth() const noexcept {
    return read_batches > 0 ? static_cast<double>(batched_reads) /
                                  static_cast<double>(read_batches)
                            : 1.0;
  }
  /// The p-quantile (0 <= p <= 1) of read_latency_us, or 0 with no
  /// samples.  p = 0.99 is the foreground-p99 the benches report.
  [[nodiscard]] std::uint32_t read_latency_quantile_us(double p) const;
  /// The p-quantile (0 <= p <= 1) of write_latency_us, or 0 with no
  /// samples.
  [[nodiscard]] std::uint32_t write_latency_quantile_us(double p) const;
  void merge(const WorkloadStats& other);
};

/// The canonical content of a logical unit under `seed`: what every
/// driver write stores and what verify_reads checks against.
void canonical_fill(std::uint64_t logical, std::uint64_t seed,
                    std::span<std::uint8_t> out) noexcept;

/// Writes canonical content to every logical unit in [first, last).
/// Handy to seed the store before a read-mostly or verifying run.
[[nodiscard]] Status fill_canonical(StripeStore& store, std::uint64_t first,
                                    std::uint64_t last, std::uint64_t seed);

/// The zipfian harmonic normalizer zeta(n, theta) = sum_{i=1..n}
/// i^-theta, cached process-wide per (n, theta): the sum is an O(n)
/// pass, noticeable on multi-million-unit spaces, and every driver over
/// the same geometry (multi-phase harnesses, fleet shards) would
/// otherwise pay it per construction.  Pure in its arguments, so the
/// cache also pins determinism: every caller sees the identical value.
[[nodiscard]] double zipf_zetan(std::uint64_t n, double theta);

class WorkloadDriver {
 public:
  /// The store must outlive the driver; run() may be called repeatedly
  /// (e.g. once per phase of a failure scenario).
  WorkloadDriver(StripeStore& store, WorkloadOptions options);

  /// Spawns num_threads workers, runs ops_per_thread ops on each, joins,
  /// and returns the merged stats (elapsed_seconds is wall time of the
  /// whole run, counted once).
  [[nodiscard]] WorkloadStats run();

 private:
  StripeStore& store_;
  WorkloadOptions options_;
  // Precomputed zipfian parameters (YCSB ZipfianGenerator shape).
  double zipf_zetan_ = 0;
  double zipf_zeta2_ = 0;
  double zipf_alpha_ = 0;
  double zipf_eta_ = 0;

  void worker(std::uint32_t thread_index, WorkloadStats& stats) const;
  [[nodiscard]] std::uint64_t zipf_sample(double u) const noexcept;
};

}  // namespace pdl::io
